// Table II — effect of precision customization on the U-Net model:
// accuracy (fraction of outputs within 0.20 of the float reference, per
// channel) and ALUT utilization for the three precision strategies.
//
//   ./bench_table2 [--frames=1000] [--seed=42]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 1000));
  cli.check_unknown();

  bench::print_header(
      "Table II: precision customization on the U-Net",
      "uniform<18,10>: 98.8%/99.3%/115% | uniform<16,7>: 16.7%/36.5%/22% | "
      "layer-based<16,x>: 99.1%/99.9%/31%");

  bench::DeployedUnet unet(opts);
  const auto inputs = unet.eval_inputs(frames, opts.seed + 2);

  util::Table t({"Strategy", "Accuracy MI", "Accuracy RR", "Resource ALUTs",
                 "fits?", "overflow events"});
  const auto row = [&](const std::string& label, hls::QuantConfig quant) {
    const auto fw = unet.firmware(std::move(quant));
    const auto res = hls::ResourceModel().estimate(fw);
    const hls::QuantizedModel qm(fw);
    const auto acc = hls::evaluate_quantization(unet.bundle.model, qm, inputs);
    t.add_row({label, util::Table::pct(acc.accuracy_mi),
               util::Table::pct(acc.accuracy_rr),
               util::Table::pct(res.alut_utilization(), 0),
               res.fits() ? "yes" : "NO",
               std::to_string(acc.overflow_events)});
  };

  row("Uniform Precision ac_fixed<18, 10>", hls::QuantConfig::uniform({18, 10}));
  row("Uniform Precision ac_fixed<16, 7>", hls::QuantConfig::uniform({16, 7}));
  row("Layer-based Precision ac_fixed<16, x>",
      hls::layer_based_config(unet.bundle.model, unet.profile, 16));

  t.print(std::cout);
  std::cout << "\n(" << frames << " input arrays; tolerance 0.20 of the "
            << "full [0,1] output range; device: Arria 10 SX 660)\n";
  return 0;
}
