// Chaos campaign: drive the full facility pipeline and the serving gateway
// through every fault scenario in fault::Plan and gate on the robustness
// contract of the 3 ms loop (paper §VI runs one decision per 3 ms tick;
// here: the decision must survive hub outages, corrupt packets, NN-IP
// hangs and replica crashes without ever skipping a tick).
//
//   ./bench_chaos [--ticks=600] [--quick] [--frames=1200]
//                 [--fault_scenario=<name>] [--fault_seed=N]
//                 [--threads=0] [--seed=7] [--out=BENCH_chaos.json]
//
// Pipeline campaign (one FacilityNode per scenario, same seed as the
// fault-free reference run). Gates, per scenario:
//   (a) a decision is produced on EVERY tick — no exception, no skipped
//       frame, a probability tensor on each report;
//   (b) the scenario's defense actually engaged (CRC rejects for corrupt,
//       layout rejects for malform, duplicate rejects, dropped packets +
//       degraded flag for outage, plausibility substitutions for
//       saturate/nan, watchdog timeouts for ip_hang, HPS fallback for
//       ip_wedge) — a chaos run whose faults are silently absorbed by
//       accident is a broken harness, not a robust pipeline;
//   (c) bounded recovery: every tick after last_fault_tick + the LKV
//       staleness bound + 1 is bit-identical to the reference run and not
//       degraded;
//   (d) zero-perturbation: the "none" scenario (tap installed, empty plan)
//       is bit-identical to the reference on every tick, as are the
//       scenarios whose defense is exactness-preserving by design
//       (duplicate: second copy rejected; reorder: assembly is
//       order-independent; ip_hang: the watchdog's reset-and-retry reruns
//       the same frame).
//
// Serving campaign ("crash"): 4 replicas behind serve::Gateway, each
// backend wrapped in fault::ChaosBackend so scheduled ops throw mid-batch.
// Gates: every submitted frame is admitted (no deadline, capacity sized to
// the run), answered exactly once, bit-identical to the direct-inference
// oracle; the fault machinery visibly engaged (backend faults and
// quarantines > 0 in serve::Metrics).
//
// Exits non-zero if any gate fails. All placement is derived from
// --fault_seed (default --seed), so a failure is replayable bit-for-bit.
#include <algorithm>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/facility_node.hpp"
#include "fault/chaos_backend.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/packet.hpp"
#include "serve/gateway.hpp"
#include "util/table.hpp"

namespace {

using namespace reads;

struct TickRef {
  tensor::Tensor probabilities;
  core::MitigationTarget target = core::MitigationTarget::kNone;
  bool degraded = false;
};

struct ScenarioResult {
  std::string name;
  std::uint64_t ticks_requested = 0;
  std::uint64_t ticks_decided = 0;  ///< reports with a probability tensor
  std::uint64_t injected = 0;
  net::AssemblerCounters counters;
  std::uint64_t watchdog_timeouts = 0;
  std::uint64_t ip_resets = 0;
  std::uint64_t fallback_frames = 0;
  std::uint64_t degraded_ticks = 0;
  std::uint64_t mismatched_ticks = 0;  ///< vs reference, anywhere in the run
  std::uint64_t tail_bad_ticks = 0;    ///< vs reference, after recovery bound
  std::uint64_t recovery_tail = 0;     ///< ticks the recovery gate covered
  bool every_tick = false;
  bool defense_engaged = false;
  bool recovered = false;
  bool identical_required = false;
  bool identical = false;
  std::string error;

  bool pass() const {
    return error.empty() && every_tick && defense_engaged && recovered &&
           (!identical_required || identical);
  }
};

bool same_decision(const core::TickReport& got, const TickRef& ref) {
  return got.decision.target == ref.target &&
         got.decision.probabilities == ref.probabilities;
}

/// One pipeline scenario: fresh node (same seed as the reference), the
/// scenario's plan wired into the delivery tap and the NN-IP hang hook.
ScenarioResult run_scenario(const std::string& name,
                            const core::FacilityNodeConfig& cfg,
                            std::uint64_t ticks, std::uint64_t fault_seed,
                            const std::vector<TickRef>& ref,
                            bool plausibility_armed) {
  ScenarioResult r;
  r.name = name;
  r.ticks_requested = ticks;
  r.identical_required = name == "none" || name == "duplicate" ||
                         name == "reorder" || name == "ip_hang";

  auto node = core::FacilityNode::build(cfg);
  fault::ScenarioParams sp;
  sp.seed = fault_seed;
  sp.ticks = ticks;
  sp.hubs = cfg.facility.hubs;
  auto injector = std::make_shared<fault::Injector>(
      fault::Plan::scenario(name, sp), fault_seed);
  node.facility_mutable().set_delivery_tap(
      [injector](std::uint32_t seq, std::vector<net::Delivery>& ds) {
        injector->apply(seq, ds);
      });
  node.deblender().soc().set_ip_hang_hook(injector->ip_hang_hook());

  // Recovery bound: the LKV staleness window plus one clean tick to re-arm
  // every hub's age; after this, the faulted timeline must rejoin the
  // reference bit-for-bit.
  const std::uint64_t last = injector->plan().last_fault_tick();
  const std::uint64_t tail_start =
      name == "none" ? 0
                     : last + cfg.facility.assembler.max_stale_ticks + 2;

  std::vector<core::TickReport> reports;
  reports.reserve(ticks);
  try {
    for (std::uint64_t t = 0; t < ticks; ++t) reports.push_back(node.tick());
  } catch (const std::exception& e) {
    r.error = e.what();
  }

  r.ticks_decided = 0;
  bool saw_stale_degraded = false;
  bool saw_fallback_degraded = false;
  r.identical = true;
  for (std::uint64_t t = 0; t < reports.size(); ++t) {
    const auto& rep = reports[t];
    if (rep.decision.probabilities.numel() > 0) ++r.ticks_decided;
    if (rep.degraded) ++r.degraded_ticks;
    if (rep.degraded && rep.stale_hubs > 0) saw_stale_degraded = true;
    if (rep.nn_source == core::DecisionSource::kHpsFloatFallback &&
        rep.degraded) {
      saw_fallback_degraded = true;
    }
    const bool match = same_decision(rep, ref[t]);
    if (!match) ++r.mismatched_ticks;
    if (!match || r.identical_required) r.identical = r.identical && match;
    if (t >= tail_start && (!match || rep.degraded)) ++r.tail_bad_ticks;
  }
  r.recovery_tail = ticks > tail_start ? ticks - tail_start : 0;
  r.every_tick = r.error.empty() && reports.size() == ticks &&
                 r.ticks_decided == ticks;
  // The campaign must actually contain a post-fault tail to certify
  // recovery on; the scenario factory places windows in the first 80% of
  // the run, so a zero-length tail means the bench was misconfigured.
  r.recovered = r.recovery_tail > 0 && r.tail_bad_ticks == 0;

  r.injected = injector->injected_total();
  r.counters = node.facility().assembler().counters();
  r.watchdog_timeouts = node.deblender().soc().watchdog_timeouts();
  r.ip_resets = node.deblender().soc().ip_resets();
  r.fallback_frames = node.deblender().soc().fallback_frames();

  const auto& c = r.counters;
  if (name == "none") {
    r.defense_engaged = r.injected == 0 && c.total_rejects() == 0;
  } else if (name == "corrupt") {
    r.defense_engaged = c.crc_rejects > 0;
  } else if (name == "malform") {
    r.defense_engaged = c.malformed_rejects > 0;
  } else if (name == "duplicate") {
    r.defense_engaged = c.duplicate_rejects > 0;
  } else if (name == "reorder") {
    r.defense_engaged =
        injector->injected(fault::FaultKind::kPacketReorder) > 0;
  } else if (name == "outage") {
    r.defense_engaged = c.dropped_packets > 0 && saw_stale_degraded;
  } else if (name == "saturate") {
    r.defense_engaged = c.implausible_readings > 0;
  } else if (name == "nan") {
    // NaN readings encode as zero counts; only a plausibility floor above
    // zero can tell them from a clean quiet monitor.
    r.defense_engaged = plausibility_armed ? c.implausible_readings > 0
                                           : r.injected > 0;
  } else if (name == "ip_hang") {
    r.defense_engaged = r.watchdog_timeouts > 0 && r.ip_resets > 0 &&
                        r.fallback_frames == 0;
  } else if (name == "ip_wedge") {
    r.defense_engaged = r.fallback_frames > 0 && saw_fallback_degraded;
  } else if (name == "storm") {
    r.defense_engaged = r.injected > 0 && c.total_rejects() > 0;
  } else {
    r.defense_engaged = r.injected > 0;
  }
  return r;
}

struct CrashResult {
  std::size_t frames = 0;
  std::size_t admitted = 0;
  std::size_t answered = 0;
  std::size_t lost = 0;
  std::size_t duplicated = 0;
  std::size_t mismatched = 0;
  std::uint64_t injected = 0;
  serve::MetricsSnapshot metrics;
  double wall_s = 0.0;

  bool exact() const {
    return admitted == frames && answered == frames && lost == 0 &&
           duplicated == 0 && mismatched == 0;
  }
  bool engaged() const {
    return injected > 0 && metrics.backend_faults > 0 &&
           metrics.quarantines > 0;
  }
  bool pass() const { return exact() && engaged(); }
};

/// The serving-side campaign: scheduled backend crashes mid-batch, the
/// gateway must still deliver exactly one bit-exact answer per frame.
CrashResult run_crash_campaign(const bench::DeployedUnet& unet,
                               std::size_t frames_n, std::size_t replicas,
                               std::uint64_t fault_seed, std::uint64_t seed) {
  const auto firmware = unet.deployed_firmware();
  const auto frames = unet.eval_inputs(32, seed + 2);
  const hls::QuantizedModel direct(firmware);
  std::vector<tensor::Tensor> oracle;
  for (const auto& f : frames) oracle.push_back(direct.forward(f));

  // Crash events live on each replica's backend-op axis, and batching
  // compresses ops: with even sharding a replica performs at least
  // frames / (replicas * max_batch) ops, so size the op-axis campaign to
  // that floor or the scheduled windows would land beyond the run.
  constexpr std::size_t kMaxBatch = 4;
  fault::ScenarioParams sp;
  sp.seed = fault_seed;
  sp.ticks = std::max<std::uint64_t>(10, frames_n / (replicas * kMaxBatch));
  sp.replicas = replicas;
  auto injector = std::make_shared<fault::Injector>(
      fault::Plan::scenario("crash", sp), fault_seed, replicas);

  std::vector<std::unique_ptr<serve::Backend>> backends;
  for (std::size_t r = 0; r < replicas; ++r) {
    backends.push_back(std::make_unique<fault::ChaosBackend>(
        std::make_unique<serve::QuantizedBackend>(firmware), r, injector));
  }
  serve::GatewayConfig cfg;
  cfg.queue_capacity = frames_n;  // capacity-shedding off: audit all frames
  cfg.max_batch = kMaxBatch;
  cfg.deadline_ms = 0.0;  // no admission deadline: every frame is admitted
  cfg.backoff_initial_ms = 0.25;  // keep quarantine pauses bench-friendly
  cfg.backoff_max_ms = 2.0;
  serve::Gateway gateway(std::move(backends), cfg);

  struct Rec {
    serve::Ticket ticket;
    std::size_t idx;
  };
  std::vector<Rec> records;
  records.reserve(frames_n);
  const auto t0 = serve::Clock::now();
  for (std::size_t i = 0; i < frames_n; ++i) {
    const std::size_t idx = i % frames.size();
    records.push_back({gateway.submit(frames[idx], i % replicas), idx});
  }

  // Audit with the shards still open: a replica that faults mid-drain can
  // actually re-home its batch to a healthy peer (stop() first would close
  // every queue and force all recovery onto the local-retry path).
  CrashResult res;
  res.frames = frames_n;
  std::set<std::uint64_t> seen;
  for (auto& rec : records) {
    if (!rec.ticket.admitted) continue;
    ++res.admitted;
    serve::Response resp;
    try {
      resp = rec.ticket.response.get();
    } catch (const std::future_error&) {
      ++res.lost;
      continue;
    }
    ++res.answered;
    if (!seen.insert(resp.id).second) ++res.duplicated;
    if (!(resp.output == oracle[rec.idx])) ++res.mismatched;
  }
  gateway.stop();
  res.wall_s =
      std::chrono::duration<double>(serve::Clock::now() - t0).count();
  res.injected = injector->injected(fault::FaultKind::kReplicaCrash);
  res.metrics = gateway.metrics().snapshot();
  return res;
}

std::string json_scenario(const ScenarioResult& r) {
  std::ostringstream j;
  j << "{\"scenario\": \"" << r.name << "\", \"pass\": "
    << (r.pass() ? "true" : "false") << ", \"ticks\": " << r.ticks_requested
    << ", \"decided\": " << r.ticks_decided
    << ", \"injected\": " << r.injected
    << ", \"rejects\": {\"crc\": " << r.counters.crc_rejects
    << ", \"malformed\": " << r.counters.malformed_rejects
    << ", \"duplicate\": " << r.counters.duplicate_rejects
    << ", \"sequence\": " << r.counters.sequence_rejects
    << ", \"late\": " << r.counters.late_packets
    << ", \"dropped\": " << r.counters.dropped_packets
    << ", \"implausible\": " << r.counters.implausible_readings << "}"
    << ", \"watchdog_timeouts\": " << r.watchdog_timeouts
    << ", \"ip_resets\": " << r.ip_resets
    << ", \"fallback_frames\": " << r.fallback_frames
    << ", \"degraded_ticks\": " << r.degraded_ticks
    << ", \"mismatched_ticks\": " << r.mismatched_ticks
    << ", \"recovery_tail\": " << r.recovery_tail
    << ", \"tail_bad_ticks\": " << r.tail_bad_ticks
    << ", \"gates\": {\"every_tick\": " << (r.every_tick ? "true" : "false")
    << ", \"defense_engaged\": " << (r.defense_engaged ? "true" : "false")
    << ", \"recovered\": " << (r.recovered ? "true" : "false")
    << ", \"identical\": "
    << (r.identical_required ? (r.identical ? "\"pass\"" : "\"fail\"")
                             : "\"not_required\"")
    << "}";
  if (!r.error.empty()) j << ", \"error\": \"" << r.error << "\"";
  j << "}";
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto flags = bench::StandardFlags::parse(cli);
  const bool quick = cli.get_bool("quick", false);
  const auto ticks = static_cast<std::uint64_t>(
      cli.get_int("ticks", quick ? 160 : 600));
  const auto crash_frames = static_cast<std::size_t>(
      cli.get_int("frames", quick ? 400 : 1200));
  const std::string out_path = cli.get_string("out", "BENCH_chaos.json");
  cli.check_unknown();
  flags.apply_threads();

  bench::print_header(
      "chaos campaign: fault injection vs the 3 ms decision loop",
      "one decision per 3 ms tick (paper SVI); here: hub outages, corrupt "
      "packets, NN-IP hangs and replica crashes, with recovery gates");
  std::cout << "ticks " << ticks << ", crash frames " << crash_frames
            << ", seed " << flags.seed << ", fault_seed " << flags.fault_seed
            << "\n\n";

  // -------------------------------------------------- fault-free reference
  // Same node config every run; the reference also calibrates the
  // plausibility window from the clean reading distribution, so the
  // saturate/nan defenses never misfire on honest data.
  core::FacilityNodeConfig cfg;
  cfg.seed = flags.seed;
  auto ref_node = core::FacilityNode::build(cfg);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  ref_node.facility_mutable().set_delivery_tap(
      [&lo, &hi](std::uint32_t, std::vector<net::Delivery>& ds) {
        for (const auto& d : ds) {
          if (d.dropped) continue;
          for (const auto raw : d.packet.readings) {
            const double v = net::decode_reading(raw);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
      });
  std::vector<TickRef> ref;
  ref.reserve(ticks);
  for (std::uint64_t t = 0; t < ticks; ++t) {
    auto rep = ref_node.tick();
    ref.push_back({std::move(rep.decision.probabilities),
                   rep.decision.target, rep.degraded});
  }
  const bool plausibility_armed = lo > 0.0;
  if (plausibility_armed) {
    cfg.facility.assembler.plausible_min = lo * 0.5;
    cfg.facility.assembler.plausible_max = hi * 2.0 + 16.0;
  } else {
    // Clean data reaches zero counts, so a floor would substitute honest
    // readings; leave min unarmed and keep the saturation ceiling.
    cfg.facility.assembler.plausible_max = hi * 2.0 + 16.0;
  }
  std::cout << "reference: " << ref.size() << " ticks, clean readings ["
            << util::Table::fmt(lo, 3) << ", " << util::Table::fmt(hi, 3)
            << "], plausibility window "
            << (plausibility_armed ? "armed" : "ceiling-only") << "\n\n";

  // ------------------------------------------------------ scenario sweep
  std::vector<std::string> names;
  bool run_crash = false;
  if (!flags.fault_scenario.empty()) {
    if (flags.fault_scenario == "crash") {
      run_crash = true;
    } else {
      names.push_back(flags.fault_scenario);
    }
  } else {
    names = fault::Plan::scenario_names();
    run_crash = true;
  }

  std::vector<ScenarioResult> results;
  util::Table table({"scenario", "injected", "rejects", "degraded", "mismatch",
                     "tail bad", "verdict"});
  for (const auto& name : names) {
    auto r = run_scenario(name, cfg, ticks, flags.fault_seed, ref,
                          plausibility_armed);
    table.add_row({r.name, std::to_string(r.injected),
                   std::to_string(r.counters.total_rejects() +
                                  r.counters.implausible_readings),
                   std::to_string(r.degraded_ticks),
                   std::to_string(r.mismatched_ticks),
                   std::to_string(r.tail_bad_ticks),
                   r.pass() ? "pass" : "FAIL"});
    if (!r.pass()) {
      std::cout << "scenario " << r.name << ": every_tick="
                << r.every_tick << " defense=" << r.defense_engaged
                << " recovered=" << r.recovered << " identical="
                << (r.identical_required ? (r.identical ? "yes" : "NO")
                                         : "n/a")
                << (r.error.empty() ? "" : " error=" + r.error) << "\n";
    }
    results.push_back(std::move(r));
  }
  if (!results.empty()) std::cout << table.to_string() << "\n";

  // -------------------------------------------------- replica-crash audit
  CrashResult crash;
  if (run_crash) {
    const bench::DeployedUnet unet;
    crash = run_crash_campaign(unet, crash_frames, 4, flags.fault_seed,
                               flags.seed);
    std::cout << "crash campaign: " << crash.frames << " frames, "
              << crash.injected << " injected crashes, "
              << crash.metrics.backend_faults << " backend faults, "
              << crash.metrics.quarantines << " quarantines, "
              << crash.metrics.restarts << " restarts, "
              << crash.metrics.redispatched << " redispatched ("
              << util::Table::fmt(crash.wall_s, 2) << " s)\n"
              << "  exactness: " << crash.answered << "/" << crash.frames
              << " answered, " << crash.lost << " lost, " << crash.duplicated
              << " duplicated, " << crash.mismatched << " divergent -> "
              << (crash.exact() ? "pass" : "FAIL") << "\n"
              << "  self-healing engaged: "
              << (crash.engaged() ? "pass" : "FAIL") << "\n\n";
  }

  bool ok = true;
  for (const auto& r : results) ok = ok && r.pass();
  if (run_crash) ok = ok && crash.pass();
  std::cout << "chaos verdict: " << (ok ? "pass" : "FAIL") << "\n";

  // -------------------------------------------------------------- JSON
  std::ostringstream json;
  json << "{\n  \"bench\": \"chaos\",\n  \"ticks\": " << ticks
       << ",\n  \"seed\": " << flags.seed
       << ",\n  \"fault_seed\": " << flags.fault_seed
       << ",\n  \"plausibility_armed\": "
       << (plausibility_armed ? "true" : "false")
       << ",\n  \"verdict\": " << (ok ? "\"pass\"" : "\"fail\"")
       << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    json << "    " << json_scenario(results[i])
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]";
  if (run_crash) {
    json << ",\n  \"crash\": {\"frames\": " << crash.frames
         << ", \"pass\": " << (crash.pass() ? "true" : "false")
         << ", \"injected\": " << crash.injected
         << ", \"admitted\": " << crash.admitted
         << ", \"answered\": " << crash.answered
         << ", \"lost\": " << crash.lost
         << ", \"duplicated\": " << crash.duplicated
         << ", \"mismatched\": " << crash.mismatched
         << ", \"wall_s\": " << crash.wall_s
         << ",\n    \"metrics\": " << crash.metrics.to_json(crash.wall_s)
         << "}";
  }
  json << "\n}";
  std::ofstream(out_path) << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
