// Precision/reuse autotuner campaign (ROADMAP item 2, src/autotune/).
//
// Searches the joint per-layer <W, I, reuse> space of the deployed U-Net
// from the layer_based_config seed point, under the Arria-10 device budget
// and the paper's 3 ms control deadline, and emits the validated
// accuracy/latency/ALUT/DSP/BRAM Pareto front as BENCH_autotune.json.
//
// Gates (exit non-zero on any failure):
//   * front:     >= --min_front validated, mutually non-dominated points;
//   * dominance: the selected point dominates the layer_based_config
//                baseline (>= accuracy on both channels AND lower predicted
//                latency or no-worse/strictly-better resources), both under
//                the device budget and the deadline;
//   * surrogate: Spearman rank correlation of predicted-vs-measured cost
//                >= --min_spearman over >= --min_scored validated pairs.
//
// Deterministic: one (--seed, --tune_seed) pair reproduces the whole
// campaign bit-for-bit, regardless of --threads.
//
//   ./bench_autotune [--tune_quick] [--tune_budget=N] [--tune_seed=N]
//                    [--out=BENCH_autotune.json]
#include <fstream>
#include <sstream>

#include "autotune/evaluator.hpp"
#include "autotune/tuner.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  if (cli.get_bool("help", false)) {
    std::cout << "bench_autotune: surrogate-guided precision/reuse search\n"
              << bench::StandardFlags::help();
    return 0;
  }
  auto flags = bench::StandardFlags::parse(cli);
  const std::string out_path = cli.get_string("out", "BENCH_autotune.json");
  const auto min_front =
      static_cast<std::size_t>(cli.get_int("min_front", 8));
  const double min_spearman = cli.get_double("min_spearman", 0.7);
  const auto min_scored =
      static_cast<std::size_t>(cli.get_int("min_scored", 8));
  const bool cli_dump_pairs = cli.get_bool("dump_pairs", false);
  cli.check_unknown();
  flags.apply_threads();

  const bool quick = flags.tune_quick;
  const std::size_t frame_count = quick ? 24 : 48;

  bench::print_header(
      "bench_autotune",
      "joint <W, I, reuse> search seeded at layer-based PTQ (Table II row 3) "
      "under the Arria 10 budget (Table III) and the 3 ms control deadline");

  // The deployed U-Net; held-out evaluation frames are drawn from a stream
  // disjoint from the PTQ calibration frames (opts.seed + 1).
  bench::DeployedUnet unet;
  const auto eval_frames = unet.eval_inputs(frame_count, flags.seed + 2);

  autotune::SearchSpace space(unet.deployed_firmware(16));
  autotune::Evaluator evaluator(space, unet.bundle.model, eval_frames);

  autotune::TuneConfig tune;
  tune.budget = flags.tune_budget != 0 ? flags.tune_budget : (quick ? 36 : 64);
  tune.proposals_per_round = quick ? 32 : 48;
  tune.shortlist = quick ? 4 : 6;
  // Quick mode validates fewer points per round, so a second off-policy
  // explorer keeps the scored pairs spread over a wide enough cost range
  // for the rank-correlation gate to measure signal, not frame noise.
  tune.explorers = quick ? 2 : 1;
  tune.seed = flags.tune_seed;

  std::cout << "search: " << space.tunable_layers().size()
            << " tunable layers, budget " << tune.budget << " validations, "
            << frame_count << " held-out frames, tuner seed " << tune.seed
            << (quick ? " (quick)" : "") << "\n\n";

  const auto outcome = autotune::Autotuner(space, evaluator, tune).run();
  const auto& base = outcome.baseline();
  const auto* selected = outcome.selected();

  const auto row = [](const autotune::Validation& v) {
    return std::vector<std::string>{
        util::Table::fmt(v.quant_err() * 1e3, 3),
        util::Table::fmt(v.accuracy_mi, 4),
        util::Table::fmt(v.accuracy_rr, 4),
        util::Table::fmt(v.cheap.latency_ms, 3) + " ms",
        util::Table::pct(v.cheap.alut_utilization, 0),
        std::to_string(v.cheap.dsps),
        std::to_string(v.cheap.ram_blocks),
        v.cheap.feasible() ? "yes" : "NO"};
  };
  util::Table t({"point", "err x1e3", "acc MI", "acc RR", "latency",
                 "ALUT %", "DSPs", "RAM", "feasible?"});
  {
    auto r = row(base.result);
    r.insert(r.begin(), "baseline");
    t.add_row(r);
  }
  for (std::size_t i = 0; i < outcome.front.size(); ++i) {
    const auto& ev = outcome.evaluated[outcome.front[i].eval_index];
    auto r = row(ev.result);
    std::string label = "front[" + std::to_string(i) + "]";
    if (selected && ev.index == selected->index) label += " *";
    if (ev.index == base.index) label += " (baseline)";
    r.insert(r.begin(), std::move(label));
    t.add_row(r);
  }
  t.print(std::cout);
  std::cout << "(* = selected point)\n\n";

  std::cout << "evaluated " << outcome.evaluated.size() << "/" << tune.budget
            << " candidates in " << outcome.rounds << " rounds ("
            << outcome.proposals << " proposals, "
            << outcome.infeasible_skipped << " infeasible, "
            << outcome.duplicates_skipped << " duplicates screened out)\n";
  if (cli_dump_pairs) {
    for (const auto& [p, m] : outcome.scored) {
      std::cout << "PAIR " << p << " " << m << "\n";
    }
  }
  std::cout << "surrogate: " << outcome.scored_pairs
            << " predicted-then-measured pairs, Spearman "
            << util::Table::fmt(outcome.spearman_rank, 3) << "\n";
  if (selected) {
    std::cout << "selected: latency "
              << util::Table::fmt(selected->result.cheap.latency_ms, 3)
              << " ms vs baseline "
              << util::Table::fmt(base.result.cheap.latency_ms, 3)
              << " ms, ALUT "
              << util::Table::pct(selected->result.cheap.alut_utilization, 1)
              << " vs " << util::Table::pct(base.result.cheap.alut_utilization, 1)
              << "\n";
  } else {
    std::cout << "selected: none (no candidate dominates the baseline)\n";
  }

  const bool g_front = outcome.front.size() >= min_front;
  const bool g_dominance = outcome.selected_dominates && selected &&
                           selected->result.cheap.feasible() &&
                           base.result.cheap.feasible();
  const bool g_surrogate = outcome.scored_pairs >= min_scored &&
                           outcome.spearman_rank >= min_spearman;
  const bool ok = g_front && g_dominance && g_surrogate;
  const auto flag = [](bool b) { return b ? "pass" : "FAIL"; };
  std::cout << "gates: front>=" << min_front << " " << flag(g_front)
            << ", dominates-baseline " << flag(g_dominance) << ", spearman>="
            << min_spearman << " " << flag(g_surrogate) << "\n";

  const auto point_json = [&](const autotune::EvaluatedCandidate& ev) {
    std::ostringstream p;
    const auto& v = ev.result;
    p << "{\"index\": " << ev.index << ", \"quant_err\": " << v.quant_err()
      << ", \"accuracy_mi\": " << v.accuracy_mi
      << ", \"accuracy_rr\": " << v.accuracy_rr
      << ", \"latency_ms\": " << v.cheap.latency_ms
      << ", \"aluts\": " << v.cheap.aluts << ", \"dsps\": " << v.cheap.dsps
      << ", \"ram_blocks\": " << v.cheap.ram_blocks
      << ", \"alut_utilization\": " << v.cheap.alut_utilization
      << ", \"feasible\": " << (v.cheap.feasible() ? "true" : "false") << "}";
    return p.str();
  };

  std::ostringstream json;
  json << "{\n  \"bench\": \"autotune\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"seed\": " << flags.seed
       << ",\n  \"tune_seed\": " << tune.seed << ",\n  \"frames\": "
       << frame_count << ",\n  \"budget\": " << tune.budget
       << ",\n  \"evaluated\": " << outcome.evaluated.size()
       << ",\n  \"rounds\": " << outcome.rounds << ",\n  \"proposals\": "
       << outcome.proposals << ",\n  \"infeasible_skipped\": "
       << outcome.infeasible_skipped << ",\n  \"duplicates_skipped\": "
       << outcome.duplicates_skipped << ",\n  \"baseline\": "
       << point_json(base) << ",\n  \"selected\": ";
  if (selected) {
    const auto cfg = space.materialize(selected->candidate);
    json << "{\n    \"point\": " << point_json(*selected)
         << ",\n    \"dominates_baseline\": true,\n    \"layers\": [";
    bool first = true;
    for (const auto& [name, gene] : selected->candidate.genes) {
      const auto lq = cfg.quant.layer(name);
      json << (first ? "" : ",") << "\n      {\"layer\": \"" << name
           << "\", \"width\": " << gene.width
           << ", \"act_int_bits\": " << lq.activation.int_bits
           << ", \"weight_int_bits\": " << lq.weight.int_bits
           << ", \"reuse\": " << gene.reuse << "}";
      first = false;
    }
    json << "\n    ]\n  }";
  } else {
    json << "null";
  }
  json << ",\n  \"front\": [";
  for (std::size_t i = 0; i < outcome.front.size(); ++i) {
    json << (i ? "," : "") << "\n    "
         << point_json(outcome.evaluated[outcome.front[i].eval_index]);
  }
  json << "\n  ],\n  \"surrogate\": {\"scored_pairs\": " << outcome.scored_pairs
       << ", \"spearman\": " << outcome.spearman_rank
       << ", \"min_spearman\": " << min_spearman
       << "},\n  \"gates\": {\"front\": " << (g_front ? "true" : "false")
       << ", \"min_front\": " << min_front
       << ", \"dominates_baseline\": " << (g_dominance ? "true" : "false")
       << ", \"surrogate_rank\": " << (g_surrogate ? "true" : "false")
       << "},\n  \"pass\": " << (ok ? "true" : "false") << "\n}";
  std::ofstream(out_path) << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  std::cout << (ok ? "AUTOTUNE GATES: all pass\n" : "AUTOTUNE GATES: FAILED\n");
  return ok ? 0 : 1;
}
