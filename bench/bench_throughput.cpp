// Microbenchmarks (google-benchmark) of the building blocks, plus the
// paper's headline throughput claims verified on the streaming harness:
// 575 fps back-to-back capability and the deployed 320 fps / 3 ms
// requirement (paper §I, §VI).
//
//   ./bench_throughput [--threads=N] [--duration_s=S] [--seed=K]
//                      [--benchmark_filter=...]
//
// The headline check streams ~320 * duration_s frames and reports
// capacity_fps (back-to-back) vs observed_fps (at the offered 320 fps),
// the same two numbers bench_serve reports per load point.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common.hpp"

namespace {

using namespace reads;

const bench::DeployedUnet& deployed() {
  static bench::DeployedUnet unet;
  return unet;
}

void BM_FloatForwardUNet(benchmark::State& state) {
  const auto& d = deployed();
  const auto in = d.eval_inputs(1, 1001).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.bundle.model.forward(in));
  }
}
BENCHMARK(BM_FloatForwardUNet)->Unit(benchmark::kMillisecond);

void BM_QuantizedForwardUNet(benchmark::State& state) {
  const auto& d = deployed();
  const hls::QuantizedModel qm(d.deployed_firmware());
  const auto in = d.eval_inputs(1, 1002).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.forward(in));
  }
}
BENCHMARK(BM_QuantizedForwardUNet)->Unit(benchmark::kMillisecond);

void BM_SocFrameFunctional(benchmark::State& state) {
  const auto& d = deployed();
  const hls::QuantizedModel qm(d.deployed_firmware());
  soc::ArriaSocSystem system(qm, soc::SocParams{}, 7);
  const auto in = d.eval_inputs(1, 1003).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.process(in).timing.total_ms);
  }
}
BENCHMARK(BM_SocFrameFunctional)->Unit(benchmark::kMillisecond);

void BM_SocFrameTimingOnly(benchmark::State& state) {
  const auto& d = deployed();
  const hls::QuantizedModel qm(d.deployed_firmware());
  soc::SocParams params;
  params.functional_ip = false;
  soc::ArriaSocSystem system(qm, params, 7);
  const tensor::Tensor zero({260, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.process(zero).timing.total_ms);
  }
}
BENCHMARK(BM_SocFrameTimingOnly)->Unit(benchmark::kMicrosecond);

void BM_EventSimScheduling(benchmark::State& state) {
  for (auto _ : state) {
    soc::EventSim sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<soc::SimTime>((i * 7919) % 10000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
}
BENCHMARK(BM_EventSimScheduling);

void BM_FrameGeneration(benchmark::State& state) {
  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_FrameGeneration)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reads::util::Cli cli(argc, argv);
  const auto flags = reads::bench::StandardFlags::parse(cli, /*duration*/ 0.2);
  cli.check_unknown();
  flags.apply_threads();

  // Headline throughput check first (plain output), then the micro table.
  {
    const auto& d = deployed();
    const hls::QuantizedModel qm(d.deployed_firmware());
    soc::SocParams params;
    params.functional_ip = false;
    soc::ArriaSocSystem system(qm, params, flags.seed);
    const auto n_frames = std::max<std::size_t>(
        16, static_cast<std::size_t>(320.0 * flags.duration_s));
    const std::vector<tensor::Tensor> frames(n_frames,
                                             tensor::Tensor({260, 1}));
    const auto at_rate = system.run_stream(frames, 320.0);
    std::cout << "=== throughput / deadline checks (paper: 575 fps capable, "
                 "320 fps @ 3 ms deployed) ===\n";
    std::cout << "back-to-back capability: "
              << reads::util::Table::fmt(at_rate.capacity_fps, 0)
              << " fps (paper: 575 fps)\n";
    std::cout << "at 320 fps: observed "
              << reads::util::Table::fmt(at_rate.observed_fps, 0)
              << " fps, deadline misses " << at_rate.deadline_misses
              << "/" << at_rate.frames << ", worst latency "
              << reads::util::Table::fmt(at_rate.max_latency_ms, 2)
              << " ms (requirement: 3 ms)\n\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
