// Fig. 5a — change of accuracy on MI and RR predictions as the number of
// total bits increases (layer-based integer-bit assignment throughout).
// Also reports the mean |quantized - float| difference per channel; the
// paper quotes 0.025 (MI) and 0.005 (RR) at the deployed precision.
//
//   ./bench_fig5a [--frames=250] [--min-bits=8] [--max-bits=20] [--seed=42]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 250));
  const int min_bits = static_cast<int>(cli.get_int("min-bits", 8));
  const int max_bits = static_cast<int>(cli.get_int("max-bits", 20));
  cli.check_unknown();

  bench::print_header(
      "Fig. 5a: accuracy vs total bits (layer-based precision)",
      "accuracy rises with total bits; MI loses more than RR (mean diff "
      "0.025 vs 0.005) because max-abs quantization favours the larger RR "
      "magnitudes");

  bench::DeployedUnet unet(opts);
  const auto inputs = unet.eval_inputs(frames, opts.seed + 6);

  util::Table t({"total bits", "accuracy MI", "accuracy RR", "mean diff MI",
                 "mean diff RR", "max diff MI", "max diff RR"});
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    const hls::QuantizedModel qm(unet.firmware(
        hls::layer_based_config(unet.bundle.model, unet.profile, bits)));
    const auto acc = hls::evaluate_quantization(unet.bundle.model, qm, inputs);
    t.add_row({std::to_string(bits), util::Table::pct(acc.accuracy_mi),
               util::Table::pct(acc.accuracy_rr),
               util::Table::fmt(acc.mean_diff_mi, 4),
               util::Table::fmt(acc.mean_diff_rr, 4),
               util::Table::fmt(acc.max_diff_mi, 3),
               util::Table::fmt(acc.max_diff_rr, 3)});
  }
  t.print(std::cout);
  std::cout << "\n(" << frames << " input arrays per point; tolerance 0.20)\n";
  return 0;
}
