// Interface ablation (paper §II / Table I discussion): DMA engines are
// built for bulk transfers, and their setup + completion-interrupt overhead
// makes them slower than per-word memory-mapped bridge I/O for the 260-word
// control frames of this application. This bench sweeps frame sizes to show
// the crossover.
//
//   ./bench_interface_ablation
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  cli.check_unknown();

  bench::print_header(
      "Transfer-interface ablation: MM bridge vs DMA",
      "\"DMA is tailored for transferring large chunks of data at a time and "
      "its use in these ML hardware solutions results in higher latencies\"");

  const soc::SocParams params;
  util::Table t({"frame (16-bit values in+out)", "MMIO", "DMA", "winner"});
  for (std::size_t values : {64u, 260u, 780u, 2'048u, 8'192u, 65'536u,
                             524'288u}) {
    const auto est = soc::compare_transfer(values / 3, values - values / 3,
                                           params);
    t.add_row({std::to_string(values),
               util::Table::fmt(est.mmio_us, 1) + " us",
               util::Table::fmt(est.dma_us, 1) + " us",
               est.mmio_us <= est.dma_us ? "MM bridge" : "DMA"});
  }
  t.print(std::cout);

  const auto frame = soc::compare_transfer(260, 520, params);
  std::cout << "\nDeployed frame (260 in / 520 out): MMIO "
            << util::Table::fmt(frame.mmio_us, 1) << " us vs DMA "
            << util::Table::fmt(frame.dma_us, 1)
            << " us -> the paper's MM-bridge choice.\n";
  return 0;
}
