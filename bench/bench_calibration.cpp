// Calibration ablation (methodology extension): the paper sizes each
// layer's integer bits from the *maximum* absolute activation seen during
// profiling. Max-abs calibration is famously sensitive to single outlier
// spikes — one hot frame can cost every layer a fraction bit. This bench
// sweeps the coverage quantile (1.0 = paper's rule) across total widths and
// reports the accuracy / outlier / overflow trade.
//
//   ./bench_calibration [--frames=200] [--seed=42]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 200));
  cli.check_unknown();

  bench::print_header(
      "Calibration ablation: max-abs vs coverage-quantile integer bits",
      "the paper's max-abs rule 'favors larger values and sacrifices the "
      "accuracy for smaller values' — sub-max coverage trades rare "
      "saturations for fraction precision");

  bench::DeployedUnet unet(opts);
  const auto inputs = unet.eval_inputs(frames, opts.seed + 13);

  util::Table t({"total bits", "coverage", "acc MI", "acc RR", "mean diff MI",
                 "mean diff RR", "outliers", "overflows"});
  for (int bits : {12, 14, 16}) {
    for (double coverage : {1.0, 0.9999, 0.999, 0.99}) {
      const hls::QuantizedModel qm(unet.firmware(hls::layer_based_config(
          unet.bundle.model, unet.profile, bits, 0, coverage)));
      const auto acc =
          hls::evaluate_quantization(unet.bundle.model, qm, inputs);
      t.add_row({std::to_string(bits), util::Table::fmt(coverage, 4),
                 util::Table::pct(acc.accuracy_mi),
                 util::Table::pct(acc.accuracy_rr),
                 util::Table::fmt(acc.mean_diff_mi, 4),
                 util::Table::fmt(acc.mean_diff_rr, 4),
                 std::to_string(acc.outliers_total()),
                 std::to_string(acc.overflow_events)});
    }
  }
  t.print(std::cout);
  std::cout << "\n(" << frames << " eval frames; calibration on "
            << unet.calibration.size() << " frames; coverage applies to "
            << "activation integer bits only)\n";
  return 0;
}
