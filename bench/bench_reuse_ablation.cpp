// Reuse-factor ablation (paper §IV-D): the reuse factor is the primary
// resource-latency trade-off of the HLS flow — higher reuse means fewer
// multipliers (less area) and proportionally more cycles. This bench sweeps
// the default reuse factor of the deployed U-Net firmware and reports the
// trade-off curve, including which configurations actually fit the device.
//
//   ./bench_reuse_ablation [--seed=42]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.check_unknown();

  bench::print_header(
      "Reuse-factor ablation (paper §IV-D)",
      "deployed plan: default 32, fat layers + Dense/Sigmoid head at 260");

  bench::DeployedUnet unet(opts);
  const auto quant =
      hls::layer_based_config(unet.bundle.model, unet.profile, 16);

  util::Table t({"default reuse", "mults", "ALUT %", "DSP %", "RAM blocks",
                 "IP cycles", "IP latency", "fits?", "meets 3 ms?"});
  for (std::size_t reuse : {4u, 8u, 16u, 32u, 64u, 128u, 260u}) {
    hls::HlsConfig cfg;
    cfg.quant = quant;
    cfg.reuse = hls::ReusePolicy::deployed_unet();
    cfg.reuse.default_reuse = reuse;
    const auto fw = hls::compile(unet.bundle.model, cfg);
    std::size_t mults = 0;
    for (const auto& l : fw.layers) mults += l.instantiated_mults;
    const auto res = hls::ResourceModel().estimate(fw);
    const auto lat = hls::LatencyModel().estimate(fw);
    t.add_row({std::to_string(reuse), std::to_string(mults),
               util::Table::pct(res.alut_utilization(), 0),
               util::Table::pct(res.dsp_utilization(), 0),
               std::to_string(res.total_ram_blocks),
               std::to_string(lat.total_cycles),
               util::Table::fmt(lat.total_ms(), 2) + " ms",
               res.fits() ? "yes" : "NO",
               lat.total_ms() <= 3.0 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nThe deployed configuration keeps reuse 32 where it is "
               "cheap and serializes the fat inner layers and the head at "
               "260 — the sweet spot that fits the device and the 3 ms "
               "budget simultaneously.\n";
  return 0;
}
