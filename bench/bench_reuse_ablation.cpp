// Reuse-factor ablation (paper §IV-D): the reuse factor is the primary
// resource-latency trade-off of the HLS flow — higher reuse means fewer
// multipliers (less area) and proportionally more cycles. This bench sweeps
// the default reuse factor of the deployed U-Net firmware and reports the
// trade-off curve, including which configurations actually fit the device.
//
// The sweep drives the autotuner's SearchSpace/Evaluator cheap path (the
// per-candidate skeleton screen) instead of a hand-rolled compile loop, and
// regression-pins every emitted number against a direct compile of the same
// configuration: any divergence between the tuner's screen and ground truth
// exits non-zero.
//
//   ./bench_reuse_ablation [--seed=42]
#include "autotune/evaluator.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.check_unknown();

  bench::print_header(
      "Reuse-factor ablation (paper §IV-D)",
      "deployed plan: default 32, fat layers + Dense/Sigmoid head at 260");

  bench::DeployedUnet unet(opts);
  const auto quant =
      hls::layer_based_config(unet.bundle.model, unet.profile, 16);

  // The deployed plan's serialized layers keep their 260 override across
  // the sweep, exactly like the original hand-rolled loop (which swept
  // default_reuse under ReusePolicy::deployed_unet()).
  const auto deployed = hls::ReusePolicy::deployed_unet();
  const autotune::SearchSpace space(unet.firmware(quant));
  const autotune::Evaluator screen(space);  // cheap-only: no reference model

  std::size_t pin_failures = 0;
  util::Table t({"default reuse", "mults", "ALUT %", "DSP %", "RAM blocks",
                 "IP cycles", "IP latency", "fits?", "meets 3 ms?"});
  for (std::size_t reuse : {4u, 8u, 16u, 32u, 64u, 128u, 260u}) {
    autotune::Candidate c = space.baseline_candidate();
    for (auto& [name, gene] : c.genes) {
      const auto it = deployed.overrides.find(name);
      gene.reuse = it != deployed.overrides.end() ? it->second : reuse;
    }
    c = space.clamped(std::move(c));
    const auto e = screen.cheap(c);

    // Regression pin: the skeleton screen must agree exactly with a full
    // compile of the same configuration through the original flow.
    hls::HlsConfig cfg;
    cfg.quant = quant;
    cfg.reuse = deployed;
    cfg.reuse.default_reuse = reuse;
    const auto fw = hls::compile(unet.bundle.model, cfg);
    std::size_t mults = 0;
    for (const auto& l : fw.layers) mults += l.instantiated_mults;
    const auto res = hls::ResourceModel().estimate(fw);
    const auto lat = hls::LatencyModel().estimate(fw);
    if (e.mults != mults || e.aluts != res.total_aluts ||
        e.dsps != res.total_dsps || e.ram_blocks != res.total_ram_blocks ||
        e.total_cycles != lat.total_cycles || e.fits != res.fits()) {
      ++pin_failures;
      std::cout << "PIN MISMATCH at reuse " << reuse << ": screen {mults "
                << e.mults << ", aluts " << e.aluts << ", dsps " << e.dsps
                << ", ram " << e.ram_blocks << ", cycles " << e.total_cycles
                << "} vs compile {mults " << mults << ", aluts "
                << res.total_aluts << ", dsps " << res.total_dsps << ", ram "
                << res.total_ram_blocks << ", cycles " << lat.total_cycles
                << "}\n";
    }

    t.add_row({std::to_string(reuse), std::to_string(e.mults),
               util::Table::pct(e.alut_utilization, 0),
               util::Table::pct(e.dsp_utilization, 0),
               std::to_string(e.ram_blocks),
               std::to_string(e.total_cycles),
               util::Table::fmt(e.latency_ms, 2) + " ms",
               e.fits ? "yes" : "NO",
               e.meets_deadline ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nThe deployed configuration keeps reuse 32 where it is "
               "cheap and serializes the fat inner layers and the head at "
               "260 — the sweet spot that fits the device and the 3 ms "
               "budget simultaneously.\n";
  if (pin_failures != 0) {
    std::cout << "\nREUSE ABLATION: " << pin_failures
              << " autotune-screen regression pin failure(s)\n";
    return 1;
  }
  return 0;
}
