// Multi-process cluster exactness bench: a router process front-ending N
// replica-server child processes (real fork/exec, real sockets) under
// client load, with live resharding and graceful shutdown, audited
// bit-for-bit against single-process direct inference.
//
//   ./bench_cluster [--transport=both|tcp|uds] [--replica_procs=0 (default)]
//                   [--listen=<ep>] [--streams=6] [--deadline_ms=3]
//                   [--quick] [--duration_s=2] [--seed=7] [--threads=0]
//                   [--out=BENCH_cluster.json] [--help]
//
// Each transport run spawns real replica processes (this binary re-executed
// with --role=replica), routes client ticks (seven raw hub packets each)
// through the cluster, and gates on:
//   (a) exactness: every submitted tick gets exactly one terminal reply
//       (result or shed) and every result's output is bit-identical to
//       direct single-process inference on the same frame — zero lost,
//       duplicated, or divergent accepted frames;
//   (b) live resharding: a replica process is added and another removed
//       mid-traffic; the removal must drain exactly-once (deferred ack) and
//       move pinned streams without violating gate (a);
//   (c) graceful shutdown: the router drains close-then-drain and every
//       replica child exits cleanly on SIGTERM;
//   (d) scaling: with >= 4 hardware threads and >= 4 replica processes,
//       aggregate goodput must reach 3x a single replica's capacity
//       (skipped and reported as such on smaller hosts).
// Full (non --quick) runs also crash-inject: one replica child is
// SIGKILLed mid-traffic and gate (a) must still hold through the
// redispatch (bit-identical re-execution makes the crash invisible).
//
// Writes BENCH_cluster.json: per-transport verify counts, router stats
// (cluster counters + admission metrics), and the N replica-process
// MetricsSnapshots merged into one cluster-wide snapshot via
// serve::MetricsSnapshot::merge (exact merged percentiles from retained
// samples).
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/proc.hpp"
#include "cluster/replica_server.hpp"
#include "cluster/router.hpp"
#include "common.hpp"
#include "net/assembler.hpp"
#include "net/hub.hpp"
#include "net/packet.hpp"
#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace reads;
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- shared frame pipeline ----------------------------------------------
// The replica process and the oracle MUST run the same decode: counts ->
// raw floats -> standardize. Bit-identity of the whole cluster path reduces
// to this function being the one used on both sides.
tensor::Tensor decode_frame(std::span<const std::uint32_t> readings,
                            const train::Standardizer& standardizer) {
  tensor::Tensor raw({readings.size(), 1});
  auto dst = raw.flat();
  for (std::size_t i = 0; i < readings.size(); ++i) {
    dst[i] = static_cast<float>(net::decode_reading(readings[i]));
  }
  return standardizer.transform(raw);
}

// ---- replica role --------------------------------------------------------

cluster::ReplicaServer* g_server = nullptr;
extern "C" void on_sigterm(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int replica_main(util::Cli& cli) {
  const std::string listen =
      cli.get_string("replica_listen", "tcp:127.0.0.1:0");
  const double deadline_ms = cli.get_double("deadline_ms", 3.0);
  const auto queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue_capacity", 64));
  const auto max_batch =
      static_cast<std::size_t>(cli.get_int("max_batch", 4));
  cli.check_unknown();

  // Deployed 16-bit U-Net from the shared on-disk model cache (the
  // orchestrator warms it before spawning, so every process loads the same
  // bytes -> bit-identical firmware across replicas).
  const bench::DeployedUnet unet;
  const auto firmware = unet.deployed_firmware();

  serve::GatewayConfig gcfg;
  gcfg.queue_capacity = queue_capacity;
  gcfg.max_batch = max_batch;
  gcfg.deadline_ms = deadline_ms;
  gcfg.sharding = serve::ShardPolicy::kByStream;
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<serve::QuantizedBackend>(firmware));

  cluster::ReplicaServerConfig rcfg;
  rcfg.listen = cluster::Endpoint::parse(listen);
  rcfg.gateway = gcfg;
  const train::Standardizer& standardizer = unet.bundle.standardizer;
  cluster::ReplicaServer server(
      rcfg, std::move(backends),
      [&standardizer](std::span<const std::uint32_t> readings,
                      tensor::Tensor& out) {
        out = decode_frame(readings, standardizer);
      });
  g_server = &server;
  std::signal(SIGTERM, on_sigterm);
  std::cout << "LISTENING " << server.bound().str() << "\n" << std::flush;
  server.run();
  return 0;
}

// ---- orchestrator: tick material ----------------------------------------

struct TickSet {
  std::size_t monitors = 0;
  std::size_t hubs = 0;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> layout;
  std::vector<std::vector<std::uint32_t>> enc;  ///< [frame][monitor] counts
  std::vector<tensor::Tensor> oracle;           ///< direct-inference outputs

  std::size_t frame_of(std::uint64_t stream, std::uint32_t seq) const {
    return static_cast<std::size_t>(stream * 131 +
                                    std::uint64_t{seq} * 7) %
           enc.size();
  }

  /// The seven raw hub packets of one tick.
  std::vector<net::BlmPacket> packets_for(std::uint64_t stream,
                                          std::uint32_t seq) const {
    const auto& counts = enc[frame_of(stream, seq)];
    std::vector<net::BlmPacket> packets(hubs);
    for (std::size_t h = 0; h < hubs; ++h) {
      auto& p = packets[h];
      p.hub_id = static_cast<std::uint8_t>(h);
      p.sequence = seq;
      p.first_monitor = layout[h].first;
      p.readings.assign(
          counts.begin() + layout[h].first,
          counts.begin() + layout[h].first + layout[h].second);
      net::seal_packet(p);
    }
    return packets;
  }
};

TickSet build_ticks(const hls::QuantizedModel& direct,
                    const train::Standardizer& standardizer,
                    std::size_t n_frames, std::uint64_t seed) {
  TickSet ts;
  net::AssemblerParams ap;  // facility defaults: 260 monitors, 7 hubs
  ts.monitors = ap.monitors;
  ts.hubs = ap.hubs;
  ts.layout = net::hub_layout(ap.monitors, ap.hubs);
  util::Xoshiro256 rng(util::derive_seed(seed, 42));
  ts.enc.resize(n_frames);
  ts.oracle.reserve(n_frames);
  for (std::size_t f = 0; f < n_frames; ++f) {
    auto& counts = ts.enc[f];
    counts.resize(ts.monitors);
    for (std::size_t m = 0; m < ts.monitors; ++m) {
      // Paper-plausible BLM magnitudes (105k-120k); at count scale 16 this
      // range round-trips encode/decode/float exactly, which is what makes
      // the whole re-sealed cluster path bit-exact.
      counts[m] = net::encode_reading(105000.0 + 15000.0 * rng.uniform());
    }
    ts.oracle.push_back(direct.forward(decode_frame(counts, standardizer)));
  }
  return ts;
}

// ---- orchestrator: client audit -----------------------------------------

struct TickState {
  std::size_t frame = 0;
  bool terminal = false;
  bool accepted = false;
};

struct Audit {
  std::unordered_map<std::uint64_t, TickState> ledger;  ///< by req_id
  std::size_t submitted = 0;
  std::size_t results = 0;
  std::size_t sheds = 0;
  std::size_t duplicated = 0;
  std::size_t mismatched = 0;
  std::size_t terminal = 0;

  std::size_t pending() const { return submitted - terminal; }
  std::size_t lost() const { return pending(); }
  bool exact() const {
    return lost() == 0 && duplicated == 0 && mismatched == 0 && results > 0;
  }
};

void note_message(Audit& a, const TickSet& ts, const cluster::Message& msg) {
  std::uint64_t id = 0;
  bool is_result = false;
  cluster::Result res;
  if (msg.type == cluster::MsgType::kResult) {
    res = cluster::decode_result(msg.payload);
    id = res.id;
    is_result = true;
  } else if (msg.type == cluster::MsgType::kShed) {
    id = cluster::decode_shed(msg.payload).id;
  } else {
    return;  // hello echoes etc.
  }
  auto it = a.ledger.find(id);
  if (it == a.ledger.end() || it->second.terminal) {
    ++a.duplicated;
    return;
  }
  it->second.terminal = true;
  ++a.terminal;
  if (!is_result) {
    ++a.sheds;
    return;
  }
  it->second.accepted = true;
  ++a.results;
  const auto& want = ts.oracle[it->second.frame];
  bool match = res.dims.size() == want.rank() &&
               res.data.size() == want.numel();
  if (match) {
    for (std::size_t d = 0; d < res.dims.size(); ++d) {
      match = match && res.dims[d] == want.dim(d);
    }
    const auto flat = want.flat();
    for (std::size_t i = 0; match && i < flat.size(); ++i) {
      match = res.data[i] == flat[i];  // bitwise: both sides are floats
    }
  }
  if (!match) ++a.mismatched;
}

/// Drain whatever the router has answered; the first poll may wait
/// `wait_ms`, the rest are non-blocking.
void drain(cluster::ClusterClient& client, Audit& a, const TickSet& ts,
           double wait_ms) {
  double budget = wait_ms;
  while (auto msg = client.poll(budget)) {
    budget = 0.0;
    note_message(a, ts, *msg);
  }
}

bool submit_tick(cluster::ClusterClient& client, Audit& a, const TickSet& ts,
                 std::uint64_t stream, std::uint32_t seq) {
  cluster::Submit s;
  s.stream = stream;
  s.req_id = (stream << 32) | seq;
  s.slo = static_cast<std::uint8_t>(stream % 4 == 0 ? 0 : 1);  // 1-in-4 hard-RT
  s.packets = ts.packets_for(stream, seq);
  a.ledger.emplace(s.req_id, TickState{ts.frame_of(stream, seq), false, false});
  ++a.submitted;
  return client.submit(s);
}

/// `rounds` ticks per stream with a bounded in-flight window (closed-loop:
/// the audit is about exactness, not offered load).
void run_rounds(cluster::ClusterClient& client, Audit& a, const TickSet& ts,
                std::size_t streams, std::uint32_t& seq, std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r, ++seq) {
    for (std::uint64_t st = 0; st < streams; ++st) {
      submit_tick(client, a, ts, st, seq);
    }
    drain(client, a, ts, 1.0);
    while (a.pending() > streams * 4) drain(client, a, ts, 20.0);
  }
}

// ---- orchestrator: cluster lifecycle ------------------------------------

struct Fleet {
  std::vector<cluster::ChildProcess> children;
  std::vector<std::string> endpoints;
  std::string transport;
  std::string uds_dir = "/tmp";
  std::size_t spawned = 0;

  std::string next_listen_spec() {
    if (transport == "uds") {
      return "uds:" + uds_dir + "/reads-cluster-" +
             std::to_string(::getpid()) + "-r" + std::to_string(spawned) +
             ".sock";
    }
    return "tcp:127.0.0.1:0";
  }

  /// Spawn one replica child and wait for its LISTENING handshake.
  /// Returns the resolved endpoint ("" on failure).
  std::string spawn_replica(double deadline_ms) {
    const std::string listen = next_listen_spec();
    ++spawned;
    auto child = cluster::spawn(
        {"/proc/self/exe", "--role=replica", "--replica_listen=" + listen,
         "--deadline_ms=" + std::to_string(deadline_ms)});
    // The model cache is warm, but firmware compilation still takes a
    // moment; skip any stray startup chatter until the handshake line.
    const auto t0 = Clock::now();
    std::string ep;
    while (elapsed_s(t0) < 120.0) {
      const std::string line = child.read_line(120000.0);
      if (line.rfind("LISTENING ", 0) == 0) {
        ep = line.substr(10);
        break;
      }
      if (line.empty() && !child.running()) break;
    }
    if (ep.empty()) return {};
    children.push_back(std::move(child));
    endpoints.push_back(ep);
    return ep;
  }

  void shutdown_all(bool& clean) {
    for (auto& c : children) {
      if (!c.terminate(10000.0)) clean = false;
    }
  }
};

std::uint64_t scan_counter(const std::string& json, const std::string& key) {
  const auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0;
  std::size_t p = pos + key.size() + 3;
  while (p < json.size() && json[p] == ' ') ++p;
  std::uint64_t v = 0;
  while (p < json.size() && json[p] >= '0' && json[p] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(json[p] - '0');
    ++p;
  }
  return v;
}

struct RunOutcome {
  std::string transport;
  std::string endpoint;
  double wall_s = 0.0;
  Audit audit;
  std::uint64_t added_node = 0;
  bool remove_ok = false;
  std::uint64_t resharded = 0;
  std::uint64_t redispatched = 0;
  std::uint64_t crashes = 0;
  bool children_clean = true;
  bool crash_phase = false;
  bool scaling_applicable = false;
  double goodput_fps = 0.0;
  double scaling_bound_fps = 0.0;
  std::string router_stats;
  serve::MetricsSnapshot merged;
  std::size_t replica_snapshots = 0;

  bool exactness() const { return audit.exact(); }
  bool resharding() const {
    return added_node != 0 && remove_ok && resharded >= 1;
  }
  bool scaling_pass() const {
    return !scaling_applicable || goodput_fps >= scaling_bound_fps;
  }
  bool pass() const {
    return exactness() && resharding() && children_clean && scaling_pass();
  }
};

struct RunParams {
  std::string transport;
  std::string listen;  ///< empty = auto
  std::size_t replica_procs = 2;
  std::size_t streams = 4;
  std::size_t rounds_steady = 8;
  std::size_t rounds_reshard = 8;
  std::size_t rounds_crash = 0;  ///< 0 = no crash injection
  double deadline_ms = 3.0;
  double capacity_fps = 0.0;
  double scaling_duration_s = 2.0;
  bool scaling_applicable = false;
  std::uint64_t seed = 7;
};

RunOutcome run_transport(const RunParams& rp, const TickSet& ts) {
  RunOutcome out;
  out.transport = rp.transport;
  const auto t0 = Clock::now();

  Fleet fleet;
  fleet.transport = rp.transport;
  std::cout << "[" << rp.transport << "] spawning " << rp.replica_procs
            << " replica processes...\n";
  for (std::size_t i = 0; i < rp.replica_procs; ++i) {
    if (fleet.spawn_replica(rp.deadline_ms).empty()) {
      std::cout << "[" << rp.transport << "] replica " << i
                << " failed to start\n";
      out.children_clean = false;
      return out;
    }
  }

  cluster::RouterConfig cfg;
  cfg.listen = cluster::Endpoint::parse(
      !rp.listen.empty() ? rp.listen
      : rp.transport == "uds"
          ? "uds:/tmp/reads-cluster-" + std::to_string(::getpid()) +
                "-router.sock"
          : "tcp:127.0.0.1:0");
  cfg.replicas = fleet.endpoints;
  cfg.hard_deadline_ms = rp.deadline_ms;
  cluster::Router router(cfg);
  out.endpoint = router.bound().str();
  std::thread router_thread([&router] { router.run(); });

  {
    cluster::ClusterClient client(out.endpoint);
    std::uint32_t seq = 0;

    // Phase 1: steady traffic across the initial fleet.
    run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_steady);

    // Phase 2: live resharding under traffic — grow the fleet by one
    // process, then drain node 1 out while the client keeps submitting.
    const std::string grown = fleet.spawn_replica(rp.deadline_ms);
    if (!grown.empty()) out.added_node = router.add_replica(grown);
    std::thread remover(
        [&router, &out] { out.remove_ok = router.remove_replica(1); });
    run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_reshard);
    remover.join();

    // Phase 3 (full mode): crash a replica process mid-traffic; the
    // redispatch must stay invisible to the exactness audit.
    if (rp.rounds_crash > 0 && fleet.children.size() > 2) {
      out.crash_phase = true;
      fleet.children[1].kill_hard();
      run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_crash);
    }

    // Phase 4 (capable hosts): open-loop load for the scaling gate.
    if (rp.scaling_applicable) {
      out.scaling_applicable = true;
      out.scaling_bound_fps = 3.0 * rp.capacity_fps;
      const double target_fps =
          1.5 * rp.capacity_fps * static_cast<double>(rp.replica_procs);
      util::Xoshiro256 rng(util::derive_seed(rp.seed, 77));
      const std::size_t before = out.audit.results;
      const auto s0 = Clock::now();
      auto next = s0;
      while (elapsed_s(s0) < rp.scaling_duration_s) {
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(rng.exponential(target_fps)));
        std::this_thread::sleep_until(next);
        submit_tick(client, out.audit, ts, rng.uniform_int(rp.streams), seq);
        drain(client, out.audit, ts, 0.0);
        ++seq;
      }
      const auto d0 = Clock::now();
      while (out.audit.pending() > 0 && elapsed_s(d0) < 60.0) {
        drain(client, out.audit, ts, 50.0);
      }
      out.goodput_fps = static_cast<double>(out.audit.results - before) /
                        elapsed_s(s0);
    }

    // Drain every pending tick to a terminal reply.
    const auto d1 = Clock::now();
    while (out.audit.pending() > 0 && elapsed_s(d1) < 120.0) {
      drain(client, out.audit, ts, 100.0);
      if (!client.connected()) break;
    }

    // Stats: router view + every surviving replica process's own
    // MetricsSnapshot, merged into one cluster-wide snapshot.
    out.router_stats = router.stats_json();
    out.resharded = scan_counter(out.router_stats, "resharded_streams");
    out.redispatched = scan_counter(out.router_stats, "redispatched_jobs");
    out.crashes = scan_counter(out.router_stats, "replica_crashes");
    for (std::size_t i = 0; i < fleet.endpoints.size(); ++i) {
      if (!fleet.children[i].running()) continue;
      try {
        cluster::ClusterClient sc(fleet.endpoints[i], cluster::Role::kAdmin);
        const std::string js = sc.stats(10000.0);
        if (js.empty()) continue;
        out.merged.merge(serve::MetricsSnapshot::from_json(js));
        ++out.replica_snapshots;
      } catch (const std::exception&) {
        // a crashed/unreachable replica simply contributes no snapshot
      }
    }
  }

  // Graceful shutdown: router close-then-drain, then SIGTERM each child.
  router.request_stop();
  router_thread.join();
  fleet.shutdown_all(out.children_clean);
  if (rp.transport == "uds") {
    for (const auto& ep : fleet.endpoints) {
      if (ep.rfind("uds:", 0) == 0) ::unlink(ep.c_str() + 4);
    }
    ::unlink(cfg.listen.path.c_str());
  }
  out.wall_s = elapsed_s(t0);
  return out;
}

std::string gate_str(bool pass) { return pass ? "\"pass\"" : "\"fail\""; }

void print_outcome(const RunOutcome& o) {
  const auto& a = o.audit;
  std::cout << "[" << o.transport << "] " << a.submitted << " ticks: "
            << a.results << " results, " << a.sheds << " sheds, " << a.lost()
            << " lost, " << a.duplicated << " duplicated, " << a.mismatched
            << " divergent\n"
            << "[" << o.transport << "] reshard: added node " << o.added_node
            << ", removed node 1 (" << (o.remove_ok ? "drained" : "FAILED")
            << "), " << o.resharded << " streams moved, " << o.redispatched
            << " jobs redispatched, " << o.crashes << " crashes\n"
            << "[" << o.transport << "] gates: exactness "
            << (o.exactness() ? "pass" : "FAIL") << ", resharding "
            << (o.resharding() ? "pass" : "FAIL") << ", shutdown "
            << (o.children_clean ? "pass" : "FAIL") << ", scaling "
            << (o.scaling_applicable
                    ? (o.scaling_pass() ? "pass" : "FAIL")
                    : "skipped")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string role = cli.get_string("role", "bench");
  if (role == "replica") return replica_main(cli);

  if (cli.get_bool("help", false)) {
    std::cout
        << "bench_cluster: multi-process serving tier exactness bench\n\n"
        << bench::StandardFlags::help()
        << "bench_cluster flags:\n"
           "  --streams=N          client streams (default 6, quick 4)\n"
           "  --deadline_ms=D      hard-real-time SLO budget (default 3)\n"
           "  --quick              small fleet + short phases (CI mode)\n"
           "  --out=PATH           JSON artifact (BENCH_cluster.json)\n"
           "  --role=replica       internal: run as a replica server\n";
    return 0;
  }

  auto flags = bench::StandardFlags::parse(cli);
  const bool quick = cli.get_bool("quick", false);
  const double deadline_ms = cli.get_double("deadline_ms", 3.0);
  auto streams = static_cast<std::size_t>(
      cli.get_int("streams", quick ? 4 : 6));
  const std::string out_path = cli.get_string("out", "BENCH_cluster.json");
  cli.check_unknown();
  flags.apply_threads();

  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::size_t replica_procs = flags.replica_procs;
  if (replica_procs == 0) replica_procs = quick ? 2 : 3;

  bench::print_header(
      "multi-process cluster serving tier",
      "one 3 ms stream per node (paper SVI), scaled out: router + " +
          std::to_string(replica_procs) + " replica processes");

  // Warm the model cache and build the oracle BEFORE spawning anything, so
  // the children only ever load cached weights (same bytes everywhere).
  const bench::DeployedUnet unet;
  const auto firmware = unet.deployed_firmware();
  const hls::QuantizedModel direct(firmware);
  const auto ticks =
      build_ticks(direct, unet.bundle.standardizer, 16, flags.seed);

  // Single-replica capacity: the scaling gate's yardstick.
  std::size_t warm = 0;
  const auto cap0 = Clock::now();
  tensor::Tensor probe =
      decode_frame(ticks.enc[0], unet.bundle.standardizer);
  while (elapsed_s(cap0) < 0.3) {
    (void)direct.forward(probe);
    ++warm;
  }
  const double capacity_fps = static_cast<double>(warm) / elapsed_s(cap0);
  const bool scaling_applicable = hw >= 4 && replica_procs >= 4;
  std::cout << "single replica capacity: " << static_cast<int>(capacity_fps)
            << " fps; " << hw << " hardware threads; scaling gate "
            << (scaling_applicable ? "armed" : "skipped (needs >= 4 threads "
                                              "and >= 4 replica processes)")
            << "\n\n";

  RunParams rp;
  rp.listen = flags.listen;
  rp.replica_procs = replica_procs;
  rp.streams = streams;
  rp.rounds_steady = quick ? 8 : 20;
  rp.rounds_reshard = quick ? 8 : 20;
  rp.rounds_crash = quick ? 0 : 8;
  rp.deadline_ms = deadline_ms;
  rp.capacity_fps = capacity_fps;
  rp.scaling_duration_s = flags.duration_s;
  rp.scaling_applicable = scaling_applicable;
  rp.seed = flags.seed;

  std::vector<std::string> transports;
  if (flags.transport == "both") {
    transports = {"tcp", "uds"};
  } else {
    transports = {flags.transport};
  }

  std::vector<RunOutcome> runs;
  bool ok = true;
  for (const auto& t : transports) {
    rp.transport = t;
    runs.push_back(run_transport(rp, ticks));
    print_outcome(runs.back());
    std::cout << "\n";
    ok = ok && runs.back().pass();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"cluster\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"replica_procs\": " << replica_procs << ",\n"
       << "  \"streams\": " << streams << ",\n"
       << "  \"hard_deadline_ms\": " << deadline_ms << ",\n"
       << "  \"seed\": " << flags.seed << ",\n"
       << "  \"single_replica\": {\"capacity_fps\": "
       << util::json_double(capacity_fps) << "},\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    auto& o = runs[i];
    const auto& a = o.audit;
    json << "    {\"transport\": \"" << o.transport << "\", \"endpoint\": \""
         << o.endpoint << "\", \"wall_s\": " << util::json_double(o.wall_s)
         << ",\n"
         << "     \"verify\": {\"submitted\": " << a.submitted
         << ", \"results\": " << a.results << ", \"sheds\": " << a.sheds
         << ", \"lost\": " << a.lost() << ", \"duplicated\": " << a.duplicated
         << ", \"mismatched\": " << a.mismatched << "},\n"
         << "     \"reshard\": {\"added_node\": " << o.added_node
         << ", \"removed_node\": 1, \"remove_ok\": "
         << (o.remove_ok ? "true" : "false")
         << ", \"resharded_streams\": " << o.resharded
         << ", \"redispatched_jobs\": " << o.redispatched
         << ", \"replica_crashes\": " << o.crashes << ", \"crash_phase\": "
         << (o.crash_phase ? "true" : "false") << "},\n"
         << "     \"gates\": {\"exactness\": " << gate_str(o.exactness())
         << ", \"resharding\": " << gate_str(o.resharding())
         << ", \"shutdown\": " << gate_str(o.children_clean)
         << ", \"scaling\": "
         << (o.scaling_applicable ? gate_str(o.scaling_pass()) : "\"skipped\"")
         << "},\n"
         << "     \"scaling\": {\"applicable\": "
         << (o.scaling_applicable ? "true" : "false")
         << ", \"goodput_fps\": " << util::json_double(o.goodput_fps)
         << ", \"bound_fps\": " << util::json_double(o.scaling_bound_fps)
         << "},\n"
         << "     \"router_stats\": " << o.router_stats << ",\n"
         << "     \"replica_snapshots\": " << o.replica_snapshots << ",\n"
         << "     \"replicas_merged\": " << o.merged.to_json(o.wall_s)
         << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}";
  std::ofstream(out_path) << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  std::cout << "overall: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
