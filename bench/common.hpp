// Shared plumbing for the benchmark binaries: the deployed U-Net / MLP
// configurations (trained via the model cache), their firmware, and the
// evaluation inputs. Every bench accepts --seed/--frames style flags and
// prints paper-style tables.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "blm/data.hpp"
#include "core/pretrained.hpp"
#include "hls/accuracy.hpp"
#include "hls/firmware.hpp"
#include "hls/latency.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "hls/resource.hpp"
#include "soc/system.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace reads::bench {

/// Flags every load-driving bench shares, parsed with the same names and
/// defaults everywhere: `--threads` (0 = size from the hardware),
/// `--duration_s` (wall-clock budget of the measured section) and `--seed`.
/// `--fault_scenario`/`--fault_seed` let any bench replay a specific chaos
/// schedule (fault/plan.hpp) deterministically; the default is no faults,
/// and `--fault_seed=0` reuses `--seed` so one number reproduces the whole
/// run, faults included. `--net_fault_scenario`/`--net_fault_seed` are the
/// socket-level counterpart (fault/net_plan.hpp): any process in a
/// multi-process bench can be told to torment its own wire. The cluster
/// trio (`--listen`, `--replica_procs`, `--transport`) configures the
/// multi-process benches; single-process benches parse and ignore them so
/// flag spellings stay uniform.
struct StandardFlags {
  std::size_t threads = 0;
  double duration_s = 2.0;
  std::uint64_t seed = 7;
  std::string fault_scenario;  ///< empty = fault-free
  std::uint64_t fault_seed = 0;
  std::string net_fault_scenario;  ///< empty = clean sockets
  std::uint64_t net_fault_seed = 0;
  /// Seeds a blm::DriftSchedule where a bench drives a drifting machine;
  /// 0 reuses --seed so one number reproduces the run, drift included.
  std::uint64_t drift_seed = 0;
  /// Fraction of admitted frames mirrored during shadow rollout.
  double shadow_fraction = 0.25;
  /// Multi-process cluster benches: router listen endpoint ("tcp:host:port"
  /// or "uds:/path.sock"; empty = auto per --transport), replica process
  /// count (0 = bench-specific default) and transport selection
  /// ("tcp" | "uds" | "both").
  std::string listen;
  std::size_t replica_procs = 0;
  std::string transport = "both";
  /// Autotune trio (bench_autotune; other benches parse and ignore them):
  /// validation budget (0 = bench default), tuner seed (0 = reuse --seed)
  /// and the CI-sized quick mode.
  std::size_t tune_budget = 0;
  std::uint64_t tune_seed = 0;
  bool tune_quick = false;

  static StandardFlags parse(util::Cli& cli, double default_duration_s = 2.0) {
    StandardFlags f;
    f.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
    f.duration_s = cli.get_double("duration_s", default_duration_s);
    f.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    f.fault_scenario = cli.get_string("fault_scenario", "");
    f.fault_seed = static_cast<std::uint64_t>(cli.get_int("fault_seed", 0));
    if (f.fault_seed == 0) f.fault_seed = f.seed;
    f.net_fault_scenario = cli.get_string("net_fault_scenario", "");
    f.net_fault_seed =
        static_cast<std::uint64_t>(cli.get_int("net_fault_seed", 0));
    if (f.net_fault_seed == 0) f.net_fault_seed = f.seed;
    f.drift_seed = static_cast<std::uint64_t>(cli.get_int("drift_seed", 0));
    if (f.drift_seed == 0) f.drift_seed = f.seed;
    f.shadow_fraction = cli.get_double("shadow_fraction", 0.25);
    f.listen = cli.get_string("listen", "");
    f.replica_procs =
        static_cast<std::size_t>(cli.get_int("replica_procs", 0));
    f.transport = cli.get_string("transport", "both");
    f.tune_budget = static_cast<std::size_t>(cli.get_int("tune_budget", 0));
    f.tune_seed = static_cast<std::uint64_t>(cli.get_int("tune_seed", 0));
    if (f.tune_seed == 0) f.tune_seed = f.seed;
    f.tune_quick = cli.get_bool("tune_quick", false);
    if (f.duration_s <= 0.0) {
      throw std::invalid_argument("--duration_s must be > 0");
    }
    if (f.shadow_fraction <= 0.0 || f.shadow_fraction > 1.0) {
      throw std::invalid_argument("--shadow_fraction must be in (0, 1]");
    }
    if (f.transport != "tcp" && f.transport != "uds" &&
        f.transport != "both") {
      throw std::invalid_argument("--transport must be tcp, uds or both");
    }
    return f;
  }

  /// Shared flag documentation for benches that honor `--help`.
  static const char* help() {
    return
        "shared flags:\n"
        "  --threads=N          global pool size (0 = hardware)\n"
        "  --duration_s=S       wall-clock budget of measured sections\n"
        "  --seed=N             master seed (load, frames, schedules)\n"
        "  --fault_scenario=S   chaos schedule name (empty = fault-free)\n"
        "  --fault_seed=N       chaos seed (0 = reuse --seed)\n"
        "  --net_fault_scenario=S  socket chaos schedule (empty = clean)\n"
        "  --net_fault_seed=N   socket chaos seed (0 = reuse --seed)\n"
        "  --drift_seed=N       drift schedule seed (0 = reuse --seed)\n"
        "  --shadow_fraction=F  shadow-rollout mirror fraction (0, 1]\n"
        "cluster flags (multi-process benches):\n"
        "  --listen=EP          router endpoint, tcp:host:port or\n"
        "                       uds:/path.sock (empty = auto per transport)\n"
        "  --replica_procs=N    replica server processes (0 = default)\n"
        "  --transport=T        tcp | uds | both (default both)\n"
        "autotune flags (bench_autotune):\n"
        "  --tune_budget=N      candidate validation budget (0 = default)\n"
        "  --tune_seed=N        tuner seed (0 = reuse --seed)\n"
        "  --tune_quick         CI-sized search (smaller budget + frames)\n";
  }

  /// Pin the global pool size before anything constructs it, so
  /// `--threads=N` reproducibly bounds every parallel_for in the run.
  void apply_threads() const {
    if (threads == 0) return;
    try {
      util::ThreadPool::set_global_threads(threads);
    } catch (const std::logic_error&) {
      std::cerr << "warning: --threads ignored (global pool already built)\n";
    }
  }
};

struct DeployedUnet {
  core::TrainedBundle bundle;
  std::vector<tensor::Tensor> calibration;
  hls::Profile profile;

  explicit DeployedUnet(const core::PretrainedOptions& opts = {},
                        std::size_t calibration_frames = 64)
      : bundle(core::pretrained_unet(opts)) {
    calibration =
        blm::build_eval_inputs(calibration_frames, opts.seed + 1,
                               bundle.standardizer, bundle.machine);
    profile = hls::profile_model(bundle.model, calibration);
  }

  hls::FirmwareModel firmware(hls::QuantConfig quant) const {
    hls::HlsConfig cfg;
    cfg.quant = std::move(quant);
    cfg.reuse = hls::ReusePolicy::deployed_unet();
    return hls::compile(bundle.model, cfg);
  }

  hls::FirmwareModel deployed_firmware(int total_bits = 16) const {
    return firmware(hls::layer_based_config(bundle.model, profile, total_bits));
  }

  std::vector<tensor::Tensor> eval_inputs(std::size_t n,
                                          std::uint64_t seed) const {
    return blm::build_eval_inputs(n, seed, bundle.standardizer, bundle.machine);
  }
};

struct DeployedMlp {
  core::TrainedBundle bundle;
  std::vector<tensor::Tensor> calibration;
  hls::Profile profile;

  explicit DeployedMlp(const core::PretrainedOptions& opts = {},
                       std::size_t calibration_frames = 64)
      : bundle(core::pretrained_mlp(opts)) {
    auto frames = blm::build_eval_inputs(calibration_frames, opts.seed + 1,
                                         bundle.standardizer, bundle.machine);
    for (auto& f : frames) {
      calibration.push_back(f.reshaped({1, f.numel()}));
    }
    profile = hls::profile_model(bundle.model, calibration);
  }

  hls::FirmwareModel deployed_firmware(int total_bits = 16) const {
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(bundle.model, profile, total_bits);
    cfg.reuse = hls::ReusePolicy::deployed_mlp();
    return hls::compile(bundle.model, cfg);
  }

  std::vector<tensor::Tensor> eval_inputs(std::size_t n,
                                          std::uint64_t seed) const {
    std::vector<tensor::Tensor> out;
    for (auto& f :
         blm::build_eval_inputs(n, seed, bundle.standardizer, bundle.machine)) {
      out.push_back(f.reshaped({1, f.numel()}));
    }
    return out;
  }
};

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "paper reference: " << paper << "\n\n";
}

}  // namespace reads::bench
