// Lifecycle campaign: drive the full drift -> requalify -> hot-swap loop
// end to end, then rehearse the same rollout discipline on the serving
// gateway (shadow -> promote, shadow -> rollback).
//
//   ./bench_lifecycle [--quick] [--cycles=3] [--replicas=3]
//                     [--max_ticks=N] [--seed=7] [--drift_seed=N]
//                     [--shadow_fraction=0.25] [--threads=0]
//                     [--out=BENCH_lifecycle.json]
//
// Phase A — decision loop (core::DeblendingSystem + LifecycleManager at the
// paper's 320 fps tick). A blm::FrameGenerator with a deterministic
// DriftSchedule slowly rotates the loss geometry and raises the loss rate;
// the DriftMonitor must latch, the Requalifier must retrain/quantize/gate a
// candidate in the background, and the swap must land through the SoC's
// partial-reconfiguration window. Before the second cycle a weight-corrupting
// mutator is injected into exactly one candidate. Gates:
//   (a) >= --cycles completed drift->requalify->swap cycles;
//   (b) a decision on EVERY tick (no lost, no duplicated, none late:
//       zero deadline misses across the run);
//   (c) every reconfiguration window fully covered by degraded-flagged HPS
//       float-fallback decisions (reconfig ticks == swaps * window, each
//       tagged reconfiguring+degraded+kHpsFloatFallback);
//   (d) the corrupted candidate is rejected by the qualification gates
//       before ever reaching shadow or fabric, and every artifact the
//       registry holds passed qualification;
//   (e) recovery: for every swap, windowed decision-vs-truth MSE right
//       after the swap is below the window right before the reconfiguration
//       opened (the new generation actually tracks the drifted machine).
//
// Phase B — serving rollout (serve::Gateway of per-replica artifact
// backends on registry v1, drifted traffic, ground-truth shadow judge).
// A qualified candidate from Phase A's registry is shadow-evaluated and
// must be promoted; frames submitted after promotion must be served
// bit-identical to the candidate oracle and stamped with its epoch. Then a
// regressing candidate (outputs scaled x3) is shadowed and must be rolled
// back, after which serving must remain bit-identical to the promoted
// generation. Every admitted frame is answered exactly once and none late.
//
// Exits non-zero if any gate fails. The whole campaign is a pure function
// of (--seed, --drift_seed): failures replay bit-for-bit.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blm/generator.hpp"
#include "common.hpp"
#include "core/deblender.hpp"
#include "lifecycle/manager.hpp"
#include "nn/builders.hpp"
#include "serve/gateway.hpp"
#include "util/table.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

double frame_mse(const Tensor& a, const Tensor& b) {
  if (a.numel() == 0 || a.numel() != b.numel()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.data()[i]) -
                     static_cast<double>(b.data()[i]);
    sum += d * d;
  }
  return sum / static_cast<double>(a.numel());
}

double window_mean(const std::vector<double>& xs, std::size_t begin,
                   std::size_t end) {
  if (begin >= end || end > xs.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += xs[i];
  return sum / static_cast<double>(end - begin);
}

/// Serves a registry artifact the way a deployed box would: the artifact's
/// own standardizer in front of its own quantized firmware. Each backend
/// owns a private QuantizedModel (scratch buffers are per-instance), so
/// replicas never share mutable state.
class ArtifactBackend final : public serve::Backend {
 public:
  explicit ArtifactBackend(
      std::shared_ptr<const lifecycle::ModelArtifact> artifact)
      : artifact_(std::move(artifact)),
        model_(artifact_->quantized->firmware()) {}

  std::string_view name() const noexcept override { return "artifact"; }

  Tensor infer(const Tensor& raw) override {
    return model_.forward(artifact_->standardizer.transform(raw));
  }

 private:
  std::shared_ptr<const lifecycle::ModelArtifact> artifact_;
  hls::QuantizedModel model_;
};

/// The shadow-regression injection: a candidate whose outputs are wrong by
/// construction (scaled), which the ground-truth judge must reject.
class ScaledBackend final : public serve::Backend {
 public:
  ScaledBackend(std::unique_ptr<serve::Backend> inner, float gain)
      : inner_(std::move(inner)), gain_(gain) {}

  std::string_view name() const noexcept override { return "scaled"; }

  Tensor infer(const Tensor& raw) override {
    Tensor out = inner_->infer(raw);
    for (std::size_t i = 0; i < out.numel(); ++i) out.data()[i] *= gain_;
    return out;
  }

 private:
  std::unique_ptr<serve::Backend> inner_;
  float gain_;
};

struct PhaseAResult {
  bool ran = false;
  std::uint64_t ticks = 0;
  std::uint64_t cycles = 0;
  std::uint64_t triggers = 0;
  std::uint64_t rejected = 0;
  std::uint64_t reconfig_ticks = 0;
  std::size_t window_frames = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t empty_decisions = 0;
  std::uint64_t bad_reconfig_ticks = 0;  ///< reconfig tick not degraded+HPS
  bool mutator_rejected = false;
  bool registry_all_passed = false;
  /// Every requalified generation (version >= 2) went through the autotune
  /// stage before its quality gates.
  bool autotuned_published = false;
  bool epochs_monotone = true;
  std::vector<lifecycle::SwapRecord> swaps;
  std::vector<double> pre_mse;   ///< per swap: window before reconfig opened
  std::vector<double> post_mse;  ///< per swap: window after the swap landed
  std::vector<double> cf_mse;    ///< prior generation on the same post window
  double wall_s = 0.0;

  /// Recovery gate: on the identical post-swap frames, the new generation
  /// must beat the generation it replaced (counterfactual replay removes
  /// traffic nonstationarity from the comparison).
  bool recovery_ok() const {
    for (std::size_t i = 0; i < post_mse.size(); ++i) {
      if (!(post_mse[i] < cf_mse[i])) return false;
    }
    return !post_mse.empty();
  }
  bool pass(std::uint64_t want_cycles) const {
    return ran && cycles >= want_cycles && deadline_misses == 0 &&
           empty_decisions == 0 && bad_reconfig_ticks == 0 &&
           reconfig_ticks == cycles * window_frames && mutator_rejected &&
           registry_all_passed && autotuned_published && epochs_monotone &&
           recovery_ok();
  }
};

struct PhaseBResult {
  bool ran = false;
  bool promoted = false;
  bool rolled_back = false;
  bool post_promote_bit_identical = false;
  bool post_rollback_bit_identical = false;
  bool epoch_tags_ok = false;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t duplicate_ids = 0;
  std::uint64_t deadline_misses = 0;
  serve::ShadowStatus promote_status;
  serve::ShadowStatus rollback_status;
  double promote_wall_s = 0.0;
  double rollback_wall_s = 0.0;

  bool pass() const {
    return ran && promoted && rolled_back && post_promote_bit_identical &&
           post_rollback_bit_identical && epoch_tags_ok &&
           answered == admitted && duplicate_ids == 0 && deadline_misses == 0;
  }
};

std::string flag(bool ok) { return ok ? "pass" : "FAIL"; }

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto flags = reads::bench::StandardFlags::parse(cli);
  const bool quick = cli.get_bool("quick", false);
  const auto want_cycles =
      static_cast<std::uint64_t>(cli.get_int("cycles", 3));
  const auto replicas = static_cast<std::size_t>(cli.get_int("replicas", 3));
  const auto max_ticks = static_cast<std::uint64_t>(
      cli.get_int("max_ticks", quick ? 60000 : 150000));
  const std::string out_path = cli.get_string("out", "BENCH_lifecycle.json");
  cli.check_unknown();
  flags.apply_threads();

  reads::bench::print_header(
      "bench_lifecycle",
      "model lifecycle: drift detection, background requalification, "
      "zero-downtime hot-swap (paper SS IV deployment loop, extended)");

  // ---------------------------------------------------------------- Phase A
  core::DeblendConfig dc;
  dc.seed = flags.seed;
  auto system = core::DeblendingSystem::build(dc);
  const auto machine = blm::MachineConfig::fermilab_like();
  const std::size_t monitors = machine.monitors;

  lifecycle::LifecycleConfig lc;
  lc.drift.window = 32;
  lc.drift.baseline_windows = 2;
  lc.drift.trigger_threshold = 6.0;
  lc.drift.clear_threshold = 2.0;
  lc.drift.consecutive = 2;
  lc.requalify.epochs = quick ? 2 : 3;
  lc.requalify.batch_size = 16;
  lc.requalify.learning_rate = 1e-3;
  lc.requalify.holdout_fraction = 0.25;
  lc.requalify.total_bits = system.config().total_bits;
  lc.requalify.min_quant_accuracy = 0.90;
  lc.requalify.max_mse_ratio = 1.10;
  // Requalification runs the precision/reuse autotuner before publishing:
  // every post-drift generation ships a tuned <W, I, reuse> plan that
  // cleared the same Arria-10 budget + 3 ms deadline guard the offline
  // campaign (bench_autotune) enforces.
  lc.requalify.autotune = true;
  lc.requalify.tune.budget = quick ? 10 : 14;
  lc.requalify.tune.proposals_per_round = 24;
  lc.requalify.tune.shortlist = 3;
  lc.requalify.tune.greedy_descent_steps = 2;
  lc.recent_capacity = quick ? 96 : 192;
  lc.min_frames = quick ? 64 : 128;
  lc.reconfig_window_ms = 40.0;
  lc.fps = 320.0;
  lc.seed = flags.seed;
  lifecycle::LifecycleManager manager(
      system, lc, [] { return nn::build_unet(nn::UNetConfig{}); });

  blm::DriftSchedule drift;
  drift.enabled = true;
  drift.onset_frame = lc.drift.window * (lc.drift.baseline_windows + 2);
  drift.rotation_monitors_per_kframe = 3.0;
  drift.event_rate_shift_per_kframe = 0.35;
  drift.intensity_shift_per_kframe = 0.15;
  blm::FrameGenerator gen(machine, flags.drift_seed, drift);

  PhaseAResult a;
  a.ran = true;
  a.window_frames = manager.reconfig_window_frames();
  const std::size_t rw = lc.drift.window;  ///< recovery comparison window
  std::vector<double> tick_mse;
  tick_mse.reserve(max_ticks);
  std::vector<std::uint64_t> tick_epoch;
  tick_epoch.reserve(max_ticks);
  std::vector<blm::BlmFrame> trace;  ///< every frame, for replay audits
  trace.reserve(max_ticks);
  bool mutator_armed = false;
  std::uint64_t mutator_rejected_before = 0;
  const auto a_start = std::chrono::steady_clock::now();

  std::cout << "phase A: drifting decision loop (" << monitors
            << " monitors, reconfig window " << a.window_frames
            << " ticks, target " << want_cycles << " cycles)\n";

  auto run_tick = [&] {
    auto frame = gen.next();
    auto decision = manager.tick(frame.raw, frame.target);

    if (decision.probabilities.numel() != monitors * 2) ++a.empty_decisions;
    if (!decision.timing.deadline_met) ++a.deadline_misses;
    if (decision.reconfiguring &&
        !(decision.degraded &&
          decision.source == core::DecisionSource::kHpsFloatFallback)) {
      ++a.bad_reconfig_ticks;
    }
    tick_mse.push_back(frame_mse(decision.probabilities, frame.target));
    tick_epoch.push_back(decision.model_epoch);
    trace.push_back(std::move(frame));

    // Arm the corrupting mutator once, after the first clean swap: the
    // second cycle's first candidate must be rejected by the gates.
    if (!mutator_armed && manager.cycles() == 1) {
      mutator_armed = true;
      mutator_rejected_before = manager.rejected_candidates();
      manager.set_next_candidate_mutator([](nn::Model& m) {
        for (auto* p : m.parameters()) {
          for (std::size_t i = 0; i < p->numel(); ++i) p->data()[i] *= 8.0f;
        }
      });
    }
  };

  while (manager.cycles() < want_cycles && manager.ticks() < max_ticks) {
    run_tick();
  }
  // Tail: keep serving past the last swap so its post-swap recovery window
  // is fully populated (the loop above exits at the landing tick).
  for (std::size_t i = 0; i < rw; ++i) run_tick();
  a.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           a_start)
                 .count();

  a.ticks = manager.ticks();
  a.cycles = manager.cycles();
  a.triggers = manager.triggers();
  a.rejected = manager.rejected_candidates();
  a.reconfig_ticks = manager.reconfig_ticks();
  a.swaps = manager.swaps();
  a.mutator_rejected =
      mutator_armed && manager.rejected_candidates() > mutator_rejected_before;

  a.registry_all_passed = manager.registry().size() == a.cycles + 1;
  a.autotuned_published = manager.registry().size() > 1;
  for (std::uint64_t v = 1; v <= manager.registry().size(); ++v) {
    auto artifact = manager.registry().version(v);
    if (!artifact || !artifact->report.passed) a.registry_all_passed = false;
    // v1 is the pre-drift seed deployment; every requalified generation
    // after it must have been published through the autotune stage.
    if (v > 1 && (!artifact || !artifact->report.autotuned)) {
      a.autotuned_published = false;
    }
  }

  for (const auto& s : a.swaps) {
    // Pre window: the rw ticks before the reconfiguration window opened
    // (incumbent serving a fully drifted machine). Post window: the rw
    // ticks from the landing tick on (new generation serving).
    const std::size_t landed = static_cast<std::size_t>(s.landed_tick);
    const std::size_t pre_end = landed - 1 - s.reconfig_ticks;
    const std::size_t post_begin = landed - 1;
    const std::size_t post_end = std::min(tick_mse.size(), post_begin + rw);
    a.pre_mse.push_back(
        window_mean(tick_mse, pre_end >= rw ? pre_end - rw : 0, pre_end));
    a.post_mse.push_back(window_mean(tick_mse, post_begin, post_end));

    // Counterfactual: replay the identical post-swap frames through the
    // generation the swap replaced; the new one must beat it.
    auto prev = manager.registry().version(s.from_version);
    double cf = std::numeric_limits<double>::infinity();
    if (prev && post_begin < post_end) {
      hls::QuantizedModel replay(prev->quantized->firmware());
      double sum = 0.0;
      for (std::size_t i = post_begin; i < post_end; ++i) {
        sum += frame_mse(
            replay.forward(prev->standardizer.transform(trace[i].raw)),
            trace[i].target);
      }
      cf = sum / static_cast<double>(post_end - post_begin);
    }
    a.cf_mse.push_back(cf);

    // Epoch stamps must step exactly at the landing tick.
    if (landed >= 2 && !(tick_epoch[landed - 1] == tick_epoch[landed - 2] + 1))
      a.epochs_monotone = false;
  }

  util::Table cycle_table({"cycle", "trigger_tick", "landed_tick",
                           "reconfig_ticks", "rejected", "pre_mse",
                           "post_mse", "prior_on_post", "epoch"});
  for (std::size_t i = 0; i < a.swaps.size(); ++i) {
    const auto& s = a.swaps[i];
    cycle_table.add_row({std::to_string(i + 1),
                         std::to_string(s.trigger_tick),
                         std::to_string(s.landed_tick),
                         std::to_string(s.reconfig_ticks),
                         std::to_string(s.rejected_candidates),
                         util::Table::fmt(a.pre_mse[i], 5),
                         util::Table::fmt(a.post_mse[i], 5),
                         util::Table::fmt(a.cf_mse[i], 5),
                         std::to_string(s.to_version)});
  }
  cycle_table.print(std::cout);
  std::cout << "ticks " << a.ticks << ", triggers " << a.triggers
            << ", rejected candidates " << a.rejected << ", reconfig ticks "
            << a.reconfig_ticks << " (HPS fallback), wall "
            << util::Table::fmt(a.wall_s, 1) << " s\n";
  std::cout << "gates: cycles " << flag(a.cycles >= want_cycles)
            << ", every-tick " << flag(a.empty_decisions == 0)
            << ", zero-late " << flag(a.deadline_misses == 0)
            << ", reconfig-coverage "
            << flag(a.bad_reconfig_ticks == 0 &&
                    a.reconfig_ticks == a.cycles * a.window_frames)
            << ", bad-candidate-rejected " << flag(a.mutator_rejected)
            << ", registry-qualified " << flag(a.registry_all_passed)
            << ", autotuned-published " << flag(a.autotuned_published)
            << ", epoch-step " << flag(a.epochs_monotone) << ", recovery "
            << flag(a.recovery_ok()) << "\n\n";

  // ---------------------------------------------------------------- Phase B
  PhaseBResult b;
  auto v1 = manager.registry().version(1);
  auto candidate = manager.registry().current();
  if (a.cycles >= 1 && v1 && candidate && candidate->version > 1) {
    b.ran = true;
    std::cout << "phase B: serving rollout (" << replicas
              << " replicas on v1, shadow candidate v" << candidate->version
              << ", mirror fraction " << flags.shadow_fraction << ")\n";

    // Drifted traffic with ground truth, indexed by stream id.
    const std::size_t pool =
        quick ? 1024 : 4096;
    std::vector<Tensor> raws, truths;
    raws.reserve(pool);
    truths.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      auto f = gen.next();
      raws.push_back(std::move(f.raw));
      truths.push_back(std::move(f.target));
    }

    // Oracles for bit-identity audits (single-threaded reference path).
    ArtifactBackend candidate_oracle(candidate);

    std::vector<std::unique_ptr<serve::Backend>> fleet;
    for (std::size_t i = 0; i < replicas; ++i) {
      fleet.push_back(std::make_unique<ArtifactBackend>(v1));
    }
    serve::GatewayConfig gc;
    gc.queue_capacity = 512;
    gc.max_batch = 2;
    gc.deadline_ms = 250.0;
    gc.admission_control = false;
    serve::Gateway gateway(std::move(fleet), gc);

    auto judge = [&truths](std::uint64_t stream, const Tensor&,
                           const Tensor& primary, const Tensor& shadow) {
      const auto& truth = truths[stream];
      const double pm = frame_mse(primary, truth);
      const double sm = frame_mse(shadow, truth);
      return sm <= std::max(pm * 1.25, pm + 1e-3);
    };

    serve::ShadowConfig sc;
    sc.fraction = flags.shadow_fraction;
    sc.window = quick ? 16 : 32;
    sc.max_rejects = sc.window / 8;
    sc.promote_after = 2;
    sc.queue_capacity = 256;

    std::set<std::uint64_t> seen_ids;
    std::size_t next_frame = 0;
    // expect_epoch == 0: don't check the stamp.
    auto pump_one = [&](std::uint64_t expect_epoch,
                        bool audit_against_candidate) {
      const std::size_t i = next_frame++ % pool;
      auto ticket = gateway.submit(raws[i], /*stream=*/i);
      ++b.submitted;
      if (!ticket.admitted) return;
      ++b.admitted;
      auto resp = ticket.response.get();
      ++b.answered;
      if (!seen_ids.insert(resp.id).second) ++b.duplicate_ids;
      if (!resp.deadline_met) ++b.deadline_misses;
      if (expect_epoch != 0 && resp.model_epoch != expect_epoch) {
        b.epoch_tags_ok = false;
      }
      if (audit_against_candidate &&
          !(resp.output == candidate_oracle.infer(raws[i]))) {
        b.post_promote_bit_identical = false;
        b.post_rollback_bit_identical = false;
      }
    };

    // Warm-up outside the audited run (replica threads, scratch buffers,
    // cold caches): no deadline, so start-up cost cannot read as "late".
    for (std::size_t i = 0; i < replicas * 8; ++i) {
      const std::size_t f = next_frame++ % pool;
      auto ticket = gateway.submit(raws[f], /*stream=*/f, /*deadline_ms=*/0.0);
      ++b.submitted;
      if (!ticket.admitted) continue;
      ++b.admitted;
      auto resp = ticket.response.get();
      ++b.answered;
      if (!seen_ids.insert(resp.id).second) ++b.duplicate_ids;
    }

    // --- Rollout 1: the qualified candidate must be promoted.
    const auto p_start = std::chrono::steady_clock::now();
    if (!gateway.begin_shadow(
            [&candidate] { return std::make_unique<ArtifactBackend>(candidate); },
            sc, judge)) {
      std::cout << "begin_shadow refused\n";
      b.ran = false;
    }
    const std::size_t promote_budget = quick ? 6000 : 20000;
    for (std::size_t i = 0; b.ran && i < promote_budget; ++i) {
      pump_one(/*expect_epoch=*/0, /*audit=*/false);
      if (gateway.shadow_status().outcome == serve::ShadowOutcome::kPromoted) {
        break;
      }
    }
    b.promote_status = gateway.end_shadow();
    b.promoted = b.promote_status.outcome == serve::ShadowOutcome::kPromoted;
    b.promote_wall_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - p_start)
                           .count();
    const std::uint64_t promoted_epoch = gateway.model_epoch();

    // Post-promotion: every frame served by the candidate generation,
    // bit-identical to its oracle and stamped with its epoch.
    b.epoch_tags_ok = b.promoted && promoted_epoch == 2;
    b.post_promote_bit_identical = b.promoted;
    for (std::size_t i = 0; b.promoted && i < (quick ? 64u : 256u); ++i) {
      pump_one(promoted_epoch, /*audit=*/true);
    }
    b.post_rollback_bit_identical = b.post_promote_bit_identical;

    // --- Rollout 2: a regressing candidate must be rolled back, leaving
    // serving bit-identical to the promoted generation.
    const auto r_start = std::chrono::steady_clock::now();
    bool shadow2 = b.promoted &&
                   gateway.begin_shadow(
                       [&candidate] {
                         return std::make_unique<ScaledBackend>(
                             std::make_unique<ArtifactBackend>(candidate),
                             3.0f);
                       },
                       sc, judge);
    const std::size_t rollback_budget = quick ? 6000 : 20000;
    for (std::size_t i = 0; shadow2 && i < rollback_budget; ++i) {
      pump_one(promoted_epoch, /*audit=*/true);
      if (gateway.shadow_status().outcome ==
          serve::ShadowOutcome::kRolledBack) {
        break;
      }
    }
    b.rollback_status = gateway.end_shadow();
    b.rolled_back =
        b.rollback_status.outcome == serve::ShadowOutcome::kRolledBack;
    b.rollback_wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - r_start)
                            .count();

    for (std::size_t i = 0; b.rolled_back && i < (quick ? 64u : 256u); ++i) {
      pump_one(promoted_epoch, /*audit=*/true);
    }
    gateway.stop();

    std::cout << "promote: " << to_string(b.promote_status.outcome)
              << " after " << b.promote_status.judged << " judged mirrors ("
              << b.promote_status.mirrored << " mirrored, "
              << b.promote_status.dropped << " dropped, "
              << util::Table::fmt(b.promote_wall_s, 2) << " s)\n";
    std::cout << "rollback: " << to_string(b.rollback_status.outcome)
              << " after " << b.rollback_status.judged << " judged mirrors ("
              << b.rollback_status.rejects << " rejects, "
              << util::Table::fmt(b.rollback_wall_s, 2) << " s)\n";
    std::cout << "frames: " << b.submitted << " submitted, " << b.admitted
              << " admitted, " << b.answered << " answered\n";
    std::cout << "gates: promoted " << flag(b.promoted) << ", rolled-back "
              << flag(b.rolled_back) << ", post-promote-bits "
              << flag(b.post_promote_bit_identical)
              << ", post-rollback-bits "
              << flag(b.post_rollback_bit_identical) << ", epoch-tags "
              << flag(b.epoch_tags_ok) << ", exactly-once "
              << flag(b.answered == b.admitted && b.duplicate_ids == 0)
              << ", zero-late " << flag(b.deadline_misses == 0) << "\n\n";
  } else {
    std::cout << "phase B skipped: phase A produced no qualified candidate\n";
  }

  const bool ok = a.pass(want_cycles) && b.pass();

  std::ostringstream json;
  json << "{\n  \"bench\": \"lifecycle\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"seed\": " << flags.seed
       << ",\n  \"drift_seed\": " << flags.drift_seed
       << ",\n  \"phase_a\": {\n    \"ticks\": " << a.ticks
       << ",\n    \"cycles\": " << a.cycles << ",\n    \"triggers\": "
       << a.triggers << ",\n    \"rejected_candidates\": " << a.rejected
       << ",\n    \"reconfig_window_ticks\": " << a.window_frames
       << ",\n    \"reconfig_fallback_ticks\": " << a.reconfig_ticks
       << ",\n    \"deadline_misses\": " << a.deadline_misses
       << ",\n    \"autotuned_published\": "
       << (a.autotuned_published ? "true" : "false")
       << ",\n    \"wall_s\": " << a.wall_s << ",\n    \"swaps\": [";
  for (std::size_t i = 0; i < a.swaps.size(); ++i) {
    const auto& s = a.swaps[i];
    json << (i ? "," : "") << "\n      {\"to_version\": " << s.to_version
         << ", \"trigger_tick\": " << s.trigger_tick
         << ", \"landed_tick\": " << s.landed_tick
         << ", \"swap_latency_ticks\": " << (s.landed_tick - s.trigger_tick)
         << ", \"rejected\": " << s.rejected_candidates
         << ", \"pre_mse\": " << a.pre_mse[i]
         << ", \"post_mse\": " << a.post_mse[i]
         << ", \"prior_on_post_mse\": " << a.cf_mse[i] << "}";
  }
  json << "\n    ],\n    \"pass\": " << (a.pass(want_cycles) ? "true" : "false")
       << "\n  },\n  \"phase_b\": {\n    \"ran\": "
       << (b.ran ? "true" : "false")
       << ",\n    \"promoted\": " << (b.promoted ? "true" : "false")
       << ",\n    \"rolled_back\": " << (b.rolled_back ? "true" : "false")
       << ",\n    \"promote_judged\": " << b.promote_status.judged
       << ",\n    \"promote_mirrored\": " << b.promote_status.mirrored
       << ",\n    \"promote_wall_s\": " << b.promote_wall_s
       << ",\n    \"rollback_judged\": " << b.rollback_status.judged
       << ",\n    \"rollback_rejects\": " << b.rollback_status.rejects
       << ",\n    \"rollback_wall_s\": " << b.rollback_wall_s
       << ",\n    \"submitted\": " << b.submitted << ",\n    \"admitted\": "
       << b.admitted << ",\n    \"answered\": " << b.answered
       << ",\n    \"deadline_misses\": " << b.deadline_misses
       << ",\n    \"pass\": " << (b.pass() ? "true" : "false")
       << "\n  },\n  \"pass\": " << (ok ? "true" : "false") << "\n}";
  std::ofstream(out_path) << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  std::cout << (ok ? "LIFECYCLE GATES: all pass\n"
                   : "LIFECYCLE GATES: FAILED\n");
  return ok ? 0 : 1;
}
