// Fig. 5b — the number of outliers ("abnormal points", |quant - float| >
// 0.20) decreases as total bits increase; the paper observed that half of
// the outliers are mitigated by one extra integer bit, because they stem
// from inner-layer accumulator overflows. Both claims are regenerated here:
// the outlier-vs-bits series, the same series with +1 integer guard bit,
// and the measured accumulator overflow counts.
//
//   ./bench_fig5b [--frames=250] [--min-bits=10] [--max-bits=18] [--seed=42]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 250));
  const int min_bits = static_cast<int>(cli.get_int("min-bits", 10));
  const int max_bits = static_cast<int>(cli.get_int("max-bits", 18));
  cli.check_unknown();

  bench::print_header(
      "Fig. 5b: outliers vs total bits (and the +1 integer bit mitigation)",
      "outliers shrink with width; ~half of the remaining outliers vanish "
      "with one extra integer bit (inner-layer overflows)");

  bench::DeployedUnet unet(opts);
  const auto inputs = unet.eval_inputs(frames, opts.seed + 7);

  util::Table t({"total bits", "outliers MI", "outliers RR", "outliers total",
                 "overflows", "outliers w/ +1 guard bit", "overflows w/ +1"});
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    hls::AccuracyReport base;
    hls::AccuracyReport guarded;
    {
      const hls::QuantizedModel qm(unet.firmware(
          hls::layer_based_config(unet.bundle.model, unet.profile, bits)));
      base = hls::evaluate_quantization(unet.bundle.model, qm, inputs);
    }
    {
      // "Adding one extra bit to the integer part": a pure guard bit —
      // integer range doubles, fraction resolution unchanged (width + 1).
      const hls::QuantizedModel qm(unet.firmware(hls::layer_based_config(
          unet.bundle.model, unet.profile, bits + 1, /*extra_int_bits=*/1)));
      guarded = hls::evaluate_quantization(unet.bundle.model, qm, inputs);
    }
    t.add_row({std::to_string(bits), std::to_string(base.outliers_mi),
               std::to_string(base.outliers_rr),
               std::to_string(base.outliers_total()),
               std::to_string(base.overflow_events),
               std::to_string(guarded.outliers_total()),
               std::to_string(guarded.overflow_events)});
  }
  t.print(std::cout);
  std::cout << "\n(" << frames << " input arrays per point; outlier = "
            << "|quant - float| > 0.20 on one output)\n";
  return 0;
}
