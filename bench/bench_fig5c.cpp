// Fig. 5c — distribution of the end-to-end system latency (steps 1-8 of
// Fig. 2) over many frames. The paper reports: U-Net mean 1.74 ms, range
// 1.73-2.27 ms, 99.97% of frames below 1.9 ms, rare >2 ms stragglers from
// OS scheduling; MLP mean 0.31 ms, range 0.26-0.91 ms; throughput 575 fps.
//
// The latency of the pipeline is data-independent, so the long run uses the
// timing-only IP mode; functional equivalence is covered by the tests.
//
//   ./bench_fig5c [--frames=10000] [--seed=42]
#include "common.hpp"

#include "util/stats.hpp"

namespace {

void distribution(const char* name, const reads::hls::FirmwareModel& fw,
                  std::size_t frames, std::uint64_t seed) {
  using namespace reads;
  const hls::QuantizedModel qm(fw);
  soc::SocParams params;
  params.functional_ip = false;
  soc::ArriaSocSystem system(qm, params, seed);
  const tensor::Tensor zero_frame(
      {fw.layers.front().positions, fw.layers.front().out_channels});

  util::RunningStats stats;
  util::Percentiles pct;
  pct.reserve(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    const double ms = system.process(zero_frame).timing.total_ms;
    stats.add(ms);
    pct.add(ms);
  }

  std::cout << "--- " << name << " (" << frames << " frames) ---\n";
  std::cout << "mean " << util::Table::fmt(stats.mean(), 3) << " ms, min "
            << util::Table::fmt(stats.min(), 3) << " ms, max "
            << util::Table::fmt(stats.max(), 3) << " ms\n";
  std::cout << "p50 " << util::Table::fmt(pct.percentile(50), 3) << "  p99 "
            << util::Table::fmt(pct.percentile(99), 3) << "  p99.97 "
            << util::Table::fmt(pct.percentile(99.97), 3) << " ms\n";
  std::cout << "throughput (back-to-back): "
            << util::Table::fmt(1e3 / stats.mean(), 0) << " fps\n";
  util::Histogram hist(stats.min() * 0.98, stats.max() * 1.02, 24);
  for (double v : pct.values()) hist.add(v);
  std::cout << hist.ascii(44) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 10'000));
  cli.check_unknown();

  bench::print_header(
      "Fig. 5c: system latency distribution (steps 1-8)",
      "U-Net mean 1.74 ms, 1.73-2.27 ms, 99.97% < 1.9 ms, 575 fps; "
      "MLP mean 0.31 ms, 0.26-0.91 ms");

  bench::DeployedUnet unet(opts);
  distribution("U-Net", unet.deployed_firmware(), frames, opts.seed);
  bench::DeployedMlp mlp(opts);
  distribution("MLP", mlp.deployed_firmware(), frames, opts.seed);
  return 0;
}
