// Standardization ablation (paper §IV-D): training on raw 105k-120k BLM
// magnitudes with an in-model BatchNorm doing the scaling gives dynamic
// ranges hostile to 16-bit quantization; standardizing the data *before*
// training fixes it at the same quantization limits. Both configurations
// are trained and quantized here.
//
//   ./bench_standardization [--frames=200] [--seed=42]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 200));
  cli.check_unknown();

  bench::print_header(
      "Standardization ablation (paper §IV-D)",
      "BatchNorm-on-raw trains but quantizes poorly at 16 bits; "
      "standardize-before-training reaches the desired accuracy at the same "
      "quantization limits");

  util::Table t({"training data", "model", "float loss", "max |act|",
                 "accuracy MI @16b", "accuracy RR @16b"});

  const auto evaluate = [&](const char* label, blm::InputScaling scaling) {
    auto o = opts;
    o.scaling = scaling;
    const auto bundle = core::pretrained_unet(o);
    // Calibration/eval inputs in the same scaling the model was trained on.
    blm::FrameGenerator gen(bundle.machine, o.seed + 11);
    std::vector<tensor::Tensor> inputs;
    for (std::size_t i = 0; i < frames; ++i) {
      auto raw = gen.next().raw;
      inputs.push_back(scaling == blm::InputScaling::kRaw
                           ? raw
                           : bundle.standardizer.transform(raw));
    }
    const auto profile = hls::profile_model(bundle.model, inputs);
    double max_act = 0.0;
    for (const auto& [name, v] : profile.max_activation) {
      max_act = std::max(max_act, v);
    }
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(bundle.model, profile, 16);
    cfg.reuse = hls::ReusePolicy::deployed_unet();
    const hls::QuantizedModel qm(hls::compile(bundle.model, cfg));
    const auto acc = hls::evaluate_quantization(bundle.model, qm, inputs);
    t.add_row({label,
               scaling == blm::InputScaling::kRaw ? "U-Net + BatchNorm"
                                                  : "U-Net",
               bundle.loaded_from_cache
                   ? "(cached)"
                   : util::Table::fmt(bundle.final_loss, 4),
               util::Table::fmt(max_act, 0), util::Table::pct(acc.accuracy_mi),
               util::Table::pct(acc.accuracy_rr)});
  };

  evaluate("raw magnitudes (105k-120k)", blm::InputScaling::kRaw);
  evaluate("standardized before training", blm::InputScaling::kStandardized);

  t.print(std::cout);
  std::cout << "\n(layer-based 16-bit quantization in both rows; " << frames
            << " frames; the raw-trained model carries its scaling inside "
               "the quantized pipeline and inherits the raw dynamic range)\n";
  return 0;
}
