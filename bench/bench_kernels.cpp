// Hot-path kernel benchmark: quantized U-Net forward through the blocked
// transposed-weight kernels (forward_raw) vs the seed per-output reference
// executor (forward_raw_reference), plus the float path and the batched
// API, with bit-identity of outputs and ForwardStats asserted while timing.
//
//   ./bench_kernels [--frames=8] [--reps=5] [--seed=17]
//                   [--out=BENCH_kernels.json] [--min_speedup=1.5]
//
// Emits one JSON object (schema documented in DESIGN.md) to stdout and to
// --out; exits non-zero if the fast path diverges from the reference or the
// speedup falls below --min_speedup.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "hls/qkernels.hpp"

namespace {

using namespace reads;

/// Best-of-`reps` wall-clock seconds for one invocation of `fn`.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  fn();  // warm-up (page in weights, populate scratch arenas)
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool stats_equal(const hls::ForwardStats& a, const hls::ForwardStats& b) {
  return a.saturations == b.saturations && a.overflows == b.overflows;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 8));
  const int reps = static_cast<int>(cli.get_int("reps", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const std::string out_path = cli.get_string("out", "BENCH_kernels.json");
  const double min_speedup = cli.get_double("min_speedup", 1.5);
  cli.check_unknown();

  bench::print_header("hot-path kernels: blocked vs reference executor",
                      "enables the 575 fps / 3 ms deployment rates "
                      "(paper §I, §VI)");

  const bench::DeployedUnet d;
  const hls::QuantizedModel qm(d.deployed_firmware());
  const auto inputs = d.eval_inputs(frames, seed);
  std::vector<std::vector<std::int64_t>> raw;
  raw.reserve(frames);
  for (const auto& in : inputs) raw.push_back(qm.quantize_input(in));

  // Bit-identity gate: the blocked kernels must reproduce the reference
  // executor exactly — raw output words AND per-layer stats counters.
  bool bit_identical = true;
  for (const auto& r : raw) {
    hls::ForwardStats fast_stats;
    hls::ForwardStats ref_stats;
    const auto fast = qm.forward_raw(r, &fast_stats);
    const auto ref = qm.forward_raw_reference(r, &ref_stats);
    if (fast != ref || !stats_equal(fast_stats, ref_stats)) {
      bit_identical = false;
      break;
    }
  }

  const double fast_s = time_best(reps, [&] {
    for (const auto& r : raw) {
      volatile std::int64_t sink = qm.forward_raw(r).back();
      (void)sink;
    }
  });
  const double ref_s = time_best(reps, [&] {
    for (const auto& r : raw) {
      volatile std::int64_t sink = qm.forward_raw_reference(r).back();
      (void)sink;
    }
  });
  const double float_s = time_best(reps, [&] {
    for (const auto& in : inputs) {
      volatile float sink = d.bundle.model.forward(in)[0];
      (void)sink;
    }
  });
  const double batch_s = time_best(reps, [&] {
    volatile float sink = qm.forward_batch(inputs).back()[0];
    (void)sink;
  });

  const double n = static_cast<double>(frames);
  const double fast_ms = fast_s / n * 1e3;
  const double ref_ms = ref_s / n * 1e3;
  const double float_ms = float_s / n * 1e3;
  const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
  const double batch_fps = batch_s > 0.0 ? n / batch_s : 0.0;

  std::ostringstream json;
  json << "{\"bench\": \"kernels\""
       << ", \"variant\": \"" << hls::kernels::variant() << "\""
       << ", \"frames\": " << frames << ", \"reps\": " << reps
       << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ", \"quant_reference_ms_per_frame\": "
       << util::Table::fmt(ref_ms, 4)
       << ", \"quant_fast_ms_per_frame\": " << util::Table::fmt(fast_ms, 4)
       << ", \"float_ms_per_frame\": " << util::Table::fmt(float_ms, 4)
       << ", \"speedup\": " << util::Table::fmt(speedup, 3)
       << ", \"batch_fps\": " << util::Table::fmt(batch_fps, 1) << "}";

  std::cout << json.str() << "\n";
  std::ofstream(out_path) << json.str() << "\n";

  if (!bit_identical) {
    std::cerr << "FAIL: fast path diverged from reference executor\n";
    return 1;
  }
  if (speedup < min_speedup) {
    std::cerr << "FAIL: speedup " << util::Table::fmt(speedup, 3)
              << "x below required " << util::Table::fmt(min_speedup, 3)
              << "x\n";
    return 1;
  }
  return 0;
}
