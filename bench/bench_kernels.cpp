// Hot-path kernel benchmark: quantized U-Net forward through the blocked
// transposed-weight kernels (forward_raw) vs the seed per-output reference
// executor (forward_raw_reference), plus the float path and the batched
// API, with bit-identity of outputs and ForwardStats asserted while timing.
//
//   ./bench_kernels [--frames=32] [--reps=9] [--warmup=2] [--seed=17]
//                   [--out=BENCH_kernels.json] [--min_speedup=1.5]
//                   [--min_narrow_fraction=0.0]
//
// Emits one JSON object (schema documented in DESIGN.md §5b) to stdout and
// to --out; exits non-zero if the fast path diverges from the reference,
// the speedup falls below --min_speedup, or fewer than
// --min_narrow_fraction of the MAC layers run on narrow lanes.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "hls/qkernels.hpp"

namespace {

using namespace reads;

struct Timing {
  double best = 1e300;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Best / mean / stddev wall-clock seconds over `reps` invocations, after
/// `warmup` untimed invocations (page in weights, populate scratch arenas,
/// settle the frequency governor — the seed benchmark's single untimed call
/// left the first timed rep carrying warm-up noise at reps=2).
template <typename Fn>
Timing time_reps(int reps, int warmup, Fn&& fn) {
  for (int w = 0; w < warmup; ++w) fn();
  Timing t;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  for (double s : samples) {
    t.best = std::min(t.best, s);
    t.mean += s;
  }
  t.mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - t.mean) * (s - t.mean);
  t.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return t;
}

bool stats_equal(const hls::ForwardStats& a, const hls::ForwardStats& b) {
  return a.saturations == b.saturations && a.overflows == b.overflows;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 32));
  const int reps = static_cast<int>(cli.get_int("reps", 9));
  const int warmup = static_cast<int>(cli.get_int("warmup", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const std::string out_path = cli.get_string("out", "BENCH_kernels.json");
  const double min_speedup = cli.get_double("min_speedup", 1.5);
  const double min_narrow_fraction = cli.get_double("min_narrow_fraction", 0.0);
  cli.check_unknown();

  bench::print_header("hot-path kernels: narrow-lane vs reference executor",
                      "enables the 575 fps / 3 ms deployment rates "
                      "(paper §I, §VI)");

  const bench::DeployedUnet d;
  const hls::QuantizedModel qm(d.deployed_firmware());
  const auto inputs = d.eval_inputs(frames, seed);
  std::vector<std::vector<std::int64_t>> raw;
  raw.reserve(frames);
  for (const auto& in : inputs) raw.push_back(qm.quantize_input(in));

  // Bit-identity gate: the blocked kernels must reproduce the reference
  // executor exactly — raw output words AND per-layer stats counters.
  bool bit_identical = true;
  for (const auto& r : raw) {
    hls::ForwardStats fast_stats;
    hls::ForwardStats ref_stats;
    const auto fast = qm.forward_raw(r, &fast_stats);
    const auto ref = qm.forward_raw_reference(r, &ref_stats);
    if (fast != ref || !stats_equal(fast_stats, ref_stats)) {
      bit_identical = false;
      break;
    }
  }

  const Timing fast_t = time_reps(reps, warmup, [&] {
    for (const auto& r : raw) {
      volatile std::int64_t sink = qm.forward_raw(r).back();
      (void)sink;
    }
  });
  const Timing ref_t = time_reps(reps, warmup, [&] {
    for (const auto& r : raw) {
      volatile std::int64_t sink = qm.forward_raw_reference(r).back();
      (void)sink;
    }
  });
  const Timing float_t = time_reps(reps, warmup, [&] {
    for (const auto& in : inputs) {
      volatile float sink = d.bundle.model.forward(in)[0];
      (void)sink;
    }
  });
  const Timing batch_t = time_reps(reps, warmup, [&] {
    volatile float sink = qm.forward_batch(inputs).back()[0];
    (void)sink;
  });

  const double n = static_cast<double>(frames);
  const double fast_ms = fast_t.best / n * 1e3;
  const double ref_ms = ref_t.best / n * 1e3;
  const double float_ms = float_t.best / n * 1e3;
  const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
  const double batch_fps = batch_t.best > 0.0 ? n / batch_t.best : 0.0;

  // Per-layer lane report from the range prover.
  const auto& lanes = qm.lanes();
  const auto& fw = qm.firmware();
  const double narrow_fraction =
      lanes.mac_layers == 0 ? 0.0
                            : static_cast<double>(lanes.narrow_layers) /
                                  static_cast<double>(lanes.mac_layers);
  std::ostringstream lanes_json;
  lanes_json << "[";
  bool first = true;
  for (std::size_t i = 0; i < fw.layers.size(); ++i) {
    if (!lanes.decisions[i].mac_layer) continue;
    if (!first) lanes_json << ", ";
    first = false;
    lanes_json << "{\"layer\": \"" << fw.layers[i].name << "\", \"lane\": \""
               << hls::to_string(lanes.decisions[i].lane) << "\"}";
  }
  lanes_json << "]";

  std::ostringstream json;
  json << "{\"bench\": \"kernels\""
       << ", \"variant\": \"" << hls::kernels::variant() << "\""
       << ", \"narrow_variant\": \"" << hls::kernels::narrow_variant() << "\""
       << ", \"narrow_dp_variant\": \"" << hls::kernels::narrow_dp_variant()
       << "\""
       << ", \"frames\": " << frames << ", \"reps\": " << reps
       << ", \"warmup\": " << warmup
       << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ", \"quant_reference_ms_per_frame\": "
       << util::Table::fmt(ref_ms, 4)
       << ", \"quant_fast_ms_per_frame\": " << util::Table::fmt(fast_ms, 4)
       << ", \"quant_fast_rep_stddev_ms\": "
       << util::Table::fmt(fast_t.stddev / n * 1e3, 4)
       << ", \"quant_reference_rep_stddev_ms\": "
       << util::Table::fmt(ref_t.stddev / n * 1e3, 4)
       << ", \"float_ms_per_frame\": " << util::Table::fmt(float_ms, 4)
       << ", \"speedup\": " << util::Table::fmt(speedup, 3)
       << ", \"batch_fps\": " << util::Table::fmt(batch_fps, 1)
       << ", \"mac_layers\": " << lanes.mac_layers
       << ", \"narrow_layers\": " << lanes.narrow_layers
       << ", \"narrow_fraction\": " << util::Table::fmt(narrow_fraction, 3)
       << ", \"lanes\": " << lanes_json.str() << "}";

  std::cout << json.str() << "\n";
  std::ofstream(out_path) << json.str() << "\n";

  if (!bit_identical) {
    std::cerr << "FAIL: fast path diverged from reference executor\n";
    return 1;
  }
  if (speedup < min_speedup) {
    std::cerr << "FAIL: speedup " << util::Table::fmt(speedup, 3)
              << "x below required " << util::Table::fmt(min_speedup, 3)
              << "x\n";
    return 1;
  }
  if (narrow_fraction < min_narrow_fraction) {
    std::cerr << "FAIL: narrow lanes on " << lanes.narrow_layers << "/"
              << lanes.mac_layers << " MAC layers, below required fraction "
              << util::Table::fmt(min_narrow_fraction, 3) << "\n";
    return 1;
  }
  return 0;
}
