// QAT extension bench: post-training quantization (the paper's flow) vs
// quantization-aware training at narrow widths. PTQ's accuracy falls off a
// cliff as weights lose fraction bits; projecting weights during training
// lets the optimizer absorb that error, buying 2-4 bits of width — a
// natural "future work" extension of the paper's co-design methodology.
//
//   ./bench_qat [--frames=80] [--seed=42]
#include "common.hpp"

#include "nn/init.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/qat.hpp"

namespace {

using namespace reads;

struct Scenario {
  nn::Model model;
  blm::MachineConfig machine;
  train::Dataset data;
  train::Standardizer standardizer;

  explicit Scenario(std::uint64_t seed)
      : model(nn::build_unet({.monitors = 64, .c1 = 6, .c2 = 9, .c3 = 12})) {
    machine = blm::MachineConfig::fermilab_like();
    machine.monitors = 64;
    machine.mi.source_positions = {4, 14, 25, 37, 49, 58};
    machine.rr.source_positions = {2, 9, 20, 30, 41, 52, 61};
    auto built =
        blm::build_data(96, seed, blm::InputScaling::kStandardized, machine);
    data = std::move(built.dataset);
    standardizer = std::move(built.standardizer);
    nn::init_he_uniform(model, seed + 1);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 80));
  cli.check_unknown();

  bench::print_header(
      "Extension: post-training quantization vs quantization-aware training",
      "the paper uses PTQ; QAT is the natural co-design extension");

  util::Table t({"weight bits", "PTQ acc MI", "PTQ acc RR", "QAT acc MI",
                 "QAT acc RR"});

  for (int bits : {4, 5, 6, 8}) {
    double acc[2][2] = {};
    for (int mode = 0; mode < 2; ++mode) {
      Scenario s(seed);  // identical data + init per mode
      train::MseLoss loss;
      train::Adam adam(2e-3);
      train::QatConfig qcfg;
      qcfg.weight_bits = bits;
      qcfg.train.epochs = 8;
      qcfg.train.batch_size = 8;
      if (mode == 0) {
        train::Trainer trainer(s.model, loss, adam);
        trainer.fit(s.data, qcfg.train);  // plain float training (PTQ)
      } else {
        train::qat_fit(s.model, loss, adam, s.data, qcfg);
      }
      const auto calib =
          blm::build_eval_inputs(frames, seed + 5, s.standardizer, s.machine);
      const auto profile = hls::profile_model(s.model, calib);
      // Quantize weights at `bits` but keep 16-bit activations so the
      // comparison isolates the weight-width effect.
      auto quant = hls::layer_based_config(s.model, profile, 16);
      for (auto& [name, lq] : quant.per_layer) {
        lq.weight.width = bits;
        lq.weight.int_bits = std::min(lq.weight.int_bits, bits);
        lq.bias.width = bits;
        lq.bias.int_bits = std::min(lq.bias.int_bits, bits);
      }
      hls::HlsConfig cfg;
      cfg.quant = std::move(quant);
      const hls::QuantizedModel qm(hls::compile(s.model, cfg));
      const auto report = hls::evaluate_quantization(s.model, qm, calib);
      acc[mode][0] = report.accuracy_mi;
      acc[mode][1] = report.accuracy_rr;
    }
    t.add_row({std::to_string(bits), util::Table::pct(acc[0][0]),
               util::Table::pct(acc[0][1]), util::Table::pct(acc[1][0]),
               util::Table::pct(acc[1][1])});
  }
  t.print(std::cout);
  std::cout << "\n(64-monitor U-Net; activations fixed at layer-based 16 "
               "bits; weight width swept; " << frames << " eval frames)\n";
  return 0;
}
