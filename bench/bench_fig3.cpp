// Fig. 3 — system latency across models and platforms at batch size 1,
// plus the GPU batch-amortization sweep that motivates the FPGA choice.
// CPU rows are real host measurements of the float engine; GPU rows use the
// documented analytical model; FPGA rows run the SoC simulation.
//
//   ./bench_fig3 [--frames=30] [--cpu-reps=5] [--seed=42]
#include "common.hpp"

#include "platform/comparison.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 30));
  const auto cpu_reps = static_cast<std::size_t>(cli.get_int("cpu-reps", 5));
  cli.check_unknown();

  bench::print_header(
      "Fig. 3: system latency across platforms (batch size 1)",
      "CPU ~ms, GPU ~CPU at batch 1 but us-class amortized, FPGA best at "
      "batch 1 (MLP 0.31 ms, U-Net 1.74 ms)");

  util::Table t({"model", "platform", "batch", "latency/frame", "note"});
  const auto add_rows = [&](const std::vector<platform::ComparisonRow>& rows) {
    for (const auto& r : rows) {
      t.add_row({r.model, r.platform, std::to_string(r.batch),
                 util::Table::fmt(r.latency_ms, 3) + " ms", r.note});
    }
  };

  bench::DeployedMlp mlp(opts);
  bench::DeployedUnet unet(opts);

  const auto mlp_in = mlp.eval_inputs(1, opts.seed + 4).front();
  const auto unet_in = unet.eval_inputs(1, opts.seed + 4).front();
  add_rows(platform::host_platform_rows("MLP", mlp.bundle.model, mlp_in,
                                        {1, 32, 256}, cpu_reps));
  add_rows(platform::host_platform_rows("U-Net", unet.bundle.model, unet_in,
                                        {1, 32, 256}, cpu_reps));

  {
    const hls::QuantizedModel qm(mlp.deployed_firmware());
    soc::ArriaSocSystem system(qm, soc::SocParams{}, opts.seed);
    const auto inputs = mlp.eval_inputs(frames, opts.seed + 5);
    add_rows({platform::fpga_row("MLP", system, inputs)});
  }
  {
    const hls::QuantizedModel qm(unet.deployed_firmware());
    soc::ArriaSocSystem system(qm, soc::SocParams{}, opts.seed);
    const auto inputs = unet.eval_inputs(frames, opts.seed + 5);
    add_rows({platform::fpga_row("U-Net", system, inputs)});
  }

  t.print(std::cout);
  std::cout << "\nThe control application receives one 260-value frame every "
               "3 ms, so only batch-1 latency matters: GPU batching is "
               "unusable and the FPGA SoC wins.\n"
               "Note: the paper's CPU/GPU baselines ran Keras, whose ~ms "
               "per-predict framework overhead is modelled in the GPU rows; "
               "the CPU rows here are native C++ measurements and therefore "
               "faster than the paper's absolute CPU numbers.\n";
  return 0;
}
