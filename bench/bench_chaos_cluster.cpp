// Network-chaos cluster failover bench: the serving tier of bench_cluster
// under a hostile wire and dying processes, audited bit-for-bit against
// single-process direct inference.
//
//   ./bench_chaos_cluster [--transport=both|tcp|uds] [--streams=4]
//                         [--deadline_ms=3] [--quick] [--seed=7]
//                         [--out=BENCH_chaos_cluster.json] [--help]
//
// The router runs as a CHILD process here (unlike bench_cluster) so it can
// be SIGKILLed and restarted on the same endpoint. Each transport run
// drives four phases, all against one cumulative exactness ledger:
//
//   1. Wire-chaos sweep — every fault::NetPlan scenario (torn, short_write,
//      eagain, corrupt, refuse, stall) is injected into the orchestrator's
//      own sockets via fault::NetInjector while a ResilientClient submits
//      ticks; torn streams force reconnect + resubmission, corrupt bytes
//      are caught by the envelope CRC, refusals exercise backoff + jitter.
//   2. Replica SIGKILL — a replica child dies mid-traffic; the router
//      redispatches its outstanding jobs (bit-identical re-execution).
//   3. Router SIGKILL + restart — the router child dies mid-traffic and is
//      respawned on the same endpoint with the same WAL journal; it
//      recovers membership + dedup state, the client auto-resumes via
//      reconnect + idempotent resubmission, and the time from kill to the
//      first post-restart result is reported as recovery latency.
//   4. Router-side net_storm — the restarted router is cycled once more
//      with --net_fault_scenario=net_storm so chaos also lands on the
//      router<->replica legs and the router's own client writes.
//
// Gates, per transport: exactness (0 lost, 0 duplicated, 0 bit-divergent
// accepted frames, results > 0 — at-least-once wire, exactly-once effect),
// chaos actually fired, the client reconnected at least once, the restarted
// router recovered journaled membership, post-restart results flowed, and
// every child exited cleanly.
//
// Writes BENCH_chaos_cluster.json: per-transport verify counts, per-
// scenario injected-fault counts, failover timings (recovery latency),
// client resilience counters and the final router stats JSON.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/proc.hpp"
#include "cluster/replica_server.hpp"
#include "cluster/resilient_client.hpp"
#include "cluster/router.hpp"
#include "common.hpp"
#include "fault/net_chaos.hpp"
#include "fault/net_plan.hpp"
#include "net/assembler.hpp"
#include "net/hub.hpp"
#include "net/packet.hpp"
#include "serve/backend.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace reads;
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---- shared frame pipeline (identical to bench_cluster's oracle path) ----

tensor::Tensor decode_frame(std::span<const std::uint32_t> readings,
                            const train::Standardizer& standardizer) {
  tensor::Tensor raw({readings.size(), 1});
  auto dst = raw.flat();
  for (std::size_t i = 0; i < readings.size(); ++i) {
    dst[i] = static_cast<float>(net::decode_reading(readings[i]));
  }
  return standardizer.transform(raw);
}

// ---- replica role --------------------------------------------------------

cluster::ReplicaServer* g_server = nullptr;
extern "C" void on_replica_sigterm(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int replica_main(util::Cli& cli) {
  const std::string listen =
      cli.get_string("replica_listen", "tcp:127.0.0.1:0");
  const double deadline_ms = cli.get_double("deadline_ms", 3.0);
  cli.check_unknown();

  const bench::DeployedUnet unet;
  const auto firmware = unet.deployed_firmware();

  serve::GatewayConfig gcfg;
  gcfg.queue_capacity = 64;
  gcfg.max_batch = 4;
  gcfg.deadline_ms = deadline_ms;
  gcfg.sharding = serve::ShardPolicy::kByStream;
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<serve::QuantizedBackend>(firmware));

  cluster::ReplicaServerConfig rcfg;
  rcfg.listen = cluster::Endpoint::parse(listen);
  rcfg.gateway = gcfg;
  const train::Standardizer& standardizer = unet.bundle.standardizer;
  cluster::ReplicaServer server(
      rcfg, std::move(backends),
      [&standardizer](std::span<const std::uint32_t> readings,
                      tensor::Tensor& out) {
        out = decode_frame(readings, standardizer);
      });
  g_server = &server;
  std::signal(SIGTERM, on_replica_sigterm);
  std::cout << "LISTENING " << server.bound().str() << "\n" << std::flush;
  server.run();
  return 0;
}

// ---- router role ---------------------------------------------------------
// The router lives in its own process so the orchestrator can SIGKILL it;
// --journal makes the incarnation survivable, --net_fault_scenario turns
// this process's own sockets hostile (fault/net_chaos.hpp).

cluster::Router* g_router = nullptr;
extern "C" void on_router_sigterm(int) {
  if (g_router != nullptr) g_router->request_stop();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int router_main(util::Cli& cli) {
  const std::string listen = cli.get_string("listen", "tcp:127.0.0.1:0");
  const std::string replicas = cli.get_string("replicas", "");
  const std::string journal = cli.get_string("journal", "");
  const double deadline_ms = cli.get_double("deadline_ms", 3.0);
  const std::string scenario = cli.get_string("net_fault_scenario", "");
  const auto net_seed =
      static_cast<std::uint64_t>(cli.get_int("net_fault_seed", 7));
  const auto net_ops =
      static_cast<std::uint64_t>(cli.get_int("net_fault_ops", 300));
  const auto net_sites =
      static_cast<std::size_t>(cli.get_int("net_fault_sites", 6));
  cli.check_unknown();

  std::optional<fault::NetInjector> injector;
  std::optional<fault::NetChaosGuard> guard;
  if (!scenario.empty()) {
    fault::NetScenarioParams np;
    np.seed = net_seed;
    np.ops = net_ops;
    np.sites = net_sites;
    injector.emplace(fault::NetPlan::scenario(scenario, np), net_seed);
    guard.emplace(*injector);
  }

  cluster::RouterConfig cfg;
  cfg.listen = cluster::Endpoint::parse(listen);
  cfg.replicas = split_csv(replicas);
  cfg.hard_deadline_ms = deadline_ms;
  cfg.journal_path = journal;
  cfg.reconnect_attempts = 50;
  cfg.reconnect_backoff_initial_ms = 20.0;
  cfg.reconnect_backoff_max_ms = 200.0;
  cfg.stall_timeout_ms = 1500.0;
  try {
    cluster::Router router(cfg);
    g_router = &router;
    std::signal(SIGTERM, on_router_sigterm);
    std::cout << "LISTENING " << router.bound().str() << "\n" << std::flush;
    router.run();
  } catch (const std::exception& e) {
    std::cout << "FAILED " << e.what() << "\n" << std::flush;
    return 1;
  }
  return 0;
}

// ---- orchestrator: tick material + exactness ledger ----------------------

struct TickSet {
  std::size_t monitors = 0;
  std::size_t hubs = 0;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> layout;
  std::vector<std::vector<std::uint32_t>> enc;
  std::vector<tensor::Tensor> oracle;

  std::size_t frame_of(std::uint64_t stream, std::uint32_t seq) const {
    return static_cast<std::size_t>(stream * 131 + std::uint64_t{seq} * 7) %
           enc.size();
  }

  std::vector<net::BlmPacket> packets_for(std::uint64_t stream,
                                          std::uint32_t seq) const {
    const auto& counts = enc[frame_of(stream, seq)];
    std::vector<net::BlmPacket> packets(hubs);
    for (std::size_t h = 0; h < hubs; ++h) {
      auto& p = packets[h];
      p.hub_id = static_cast<std::uint8_t>(h);
      p.sequence = seq;
      p.first_monitor = layout[h].first;
      p.readings.assign(counts.begin() + layout[h].first,
                        counts.begin() + layout[h].first + layout[h].second);
      net::seal_packet(p);
    }
    return packets;
  }
};

TickSet build_ticks(const hls::QuantizedModel& direct,
                    const train::Standardizer& standardizer,
                    std::size_t n_frames, std::uint64_t seed) {
  TickSet ts;
  net::AssemblerParams ap;
  ts.monitors = ap.monitors;
  ts.hubs = ap.hubs;
  ts.layout = net::hub_layout(ap.monitors, ap.hubs);
  util::Xoshiro256 rng(util::derive_seed(seed, 42));
  ts.enc.resize(n_frames);
  ts.oracle.reserve(n_frames);
  for (std::size_t f = 0; f < n_frames; ++f) {
    auto& counts = ts.enc[f];
    counts.resize(ts.monitors);
    for (std::size_t m = 0; m < ts.monitors; ++m) {
      counts[m] = net::encode_reading(105000.0 + 15000.0 * rng.uniform());
    }
    ts.oracle.push_back(direct.forward(decode_frame(counts, standardizer)));
  }
  return ts;
}

struct TickState {
  std::size_t frame = 0;
  bool terminal = false;
};

struct Audit {
  std::unordered_map<std::uint64_t, TickState> ledger;  ///< by req_id
  std::size_t submitted = 0;
  std::size_t results = 0;
  std::size_t sheds = 0;
  std::size_t duplicated = 0;
  std::size_t mismatched = 0;
  std::size_t terminal = 0;

  std::size_t pending() const { return submitted - terminal; }
  std::size_t lost() const { return pending(); }
  bool exact() const {
    return lost() == 0 && duplicated == 0 && mismatched == 0 && results > 0;
  }
};

void note_message(Audit& a, const TickSet& ts, const cluster::Message& msg) {
  std::uint64_t id = 0;
  bool is_result = false;
  cluster::Result res;
  if (msg.type == cluster::MsgType::kResult) {
    res = cluster::decode_result(msg.payload);
    id = res.id;
    is_result = true;
  } else if (msg.type == cluster::MsgType::kShed) {
    id = cluster::decode_shed(msg.payload).id;
  } else {
    return;
  }
  auto it = a.ledger.find(id);
  if (it == a.ledger.end() || it->second.terminal) {
    ++a.duplicated;
    return;
  }
  it->second.terminal = true;
  ++a.terminal;
  if (!is_result) {
    ++a.sheds;
    return;
  }
  ++a.results;
  const auto& want = ts.oracle[it->second.frame];
  bool match =
      res.dims.size() == want.rank() && res.data.size() == want.numel();
  if (match) {
    for (std::size_t d = 0; d < res.dims.size(); ++d) {
      match = match && res.dims[d] == want.dim(d);
    }
    const auto flat = want.flat();
    for (std::size_t i = 0; match && i < flat.size(); ++i) {
      match = res.data[i] == flat[i];  // bitwise: both sides are floats
    }
  }
  if (!match) ++a.mismatched;
}

void drain(cluster::ResilientClient& client, Audit& a, const TickSet& ts,
           double wait_ms) {
  double budget = wait_ms;
  while (auto msg = client.poll(budget)) {
    budget = 0.0;
    note_message(a, ts, *msg);
  }
}

void submit_tick(cluster::ResilientClient& client, Audit& a,
                 const TickSet& ts, std::uint64_t stream, std::uint32_t seq) {
  cluster::Submit s;
  s.stream = stream;
  s.req_id = (stream << 32) | seq;
  s.slo = static_cast<std::uint8_t>(stream % 4 == 0 ? 0 : 1);
  s.packets = ts.packets_for(stream, seq);
  a.ledger.emplace(s.req_id, TickState{ts.frame_of(stream, seq), false});
  ++a.submitted;
  // submit() refuses only on a full unacked window; poll until it opens.
  while (!client.submit(s)) drain(client, a, ts, 20.0);
}

void run_rounds(cluster::ResilientClient& client, Audit& a, const TickSet& ts,
                std::size_t streams, std::uint32_t& seq, std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r, ++seq) {
    for (std::uint64_t st = 0; st < streams; ++st) {
      submit_tick(client, a, ts, st, seq);
    }
    drain(client, a, ts, 1.0);
    while (a.pending() > streams * 4) drain(client, a, ts, 20.0);
  }
}

/// Drain until nothing is pending (fault-free wire assumed).
bool drain_all(cluster::ResilientClient& client, Audit& a, const TickSet& ts,
               double timeout_s) {
  const auto t0 = Clock::now();
  while (a.pending() > 0 && elapsed_s(t0) < timeout_s) {
    drain(client, a, ts, 100.0);
  }
  return a.pending() == 0;
}

// ---- orchestrator: process fleet -----------------------------------------

std::uint64_t scan_counter(const std::string& json, const std::string& key) {
  const auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0;
  std::size_t p = pos + key.size() + 3;
  while (p < json.size() && json[p] == ' ') ++p;
  std::uint64_t v = 0;
  while (p < json.size() && json[p] >= '0' && json[p] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(json[p] - '0');
    ++p;
  }
  return v;
}

struct Fleet {
  std::vector<cluster::ChildProcess> replicas;
  std::vector<std::string> endpoints;
  std::string transport;
  std::size_t spawned = 0;

  std::string next_listen_spec() {
    if (transport == "uds") {
      return "uds:/tmp/reads-chaos-" + std::to_string(::getpid()) + "-r" +
             std::to_string(spawned) + ".sock";
    }
    return "tcp:127.0.0.1:0";
  }

  std::string spawn_replica(double deadline_ms) {
    const std::string listen = next_listen_spec();
    ++spawned;
    auto child = cluster::spawn(
        {"/proc/self/exe", "--role=replica", "--replica_listen=" + listen,
         "--deadline_ms=" + std::to_string(deadline_ms)});
    const auto t0 = Clock::now();
    std::string ep;
    while (elapsed_s(t0) < 120.0) {
      const std::string line = child.read_line(120000.0);
      if (line.rfind("LISTENING ", 0) == 0) {
        ep = line.substr(10);
        break;
      }
      if (line.empty() && !child.running()) break;
    }
    if (ep.empty()) return {};
    replicas.push_back(std::move(child));
    endpoints.push_back(ep);
    return ep;
  }
};

/// The router child, respawnable on a fixed endpoint with a shared journal.
struct RouterProc {
  std::optional<cluster::ChildProcess> child;
  std::string endpoint;  ///< resolved after first spawn; reused verbatim
  std::string journal;
  double deadline_ms = 3.0;

  bool spawn(const std::string& listen_spec,
             const std::vector<std::string>& replica_eps,
             const std::string& net_scenario, std::uint64_t net_seed,
             std::uint64_t net_ops, std::size_t net_sites) {
    std::string reps;
    for (std::size_t i = 0; i < replica_eps.size(); ++i) {
      if (i > 0) reps += ",";
      reps += replica_eps[i];
    }
    std::vector<std::string> argv = {
        "/proc/self/exe",      "--role=router",
        "--listen=" + listen_spec, "--replicas=" + reps,
        "--journal=" + journal,
        "--deadline_ms=" + std::to_string(deadline_ms)};
    if (!net_scenario.empty()) {
      argv.push_back("--net_fault_scenario=" + net_scenario);
      argv.push_back("--net_fault_seed=" + std::to_string(net_seed));
      argv.push_back("--net_fault_ops=" + std::to_string(net_ops));
      argv.push_back("--net_fault_sites=" + std::to_string(net_sites));
    }
    child.emplace(cluster::spawn(argv));
    const auto t0 = Clock::now();
    std::string ep;
    while (elapsed_s(t0) < 30.0) {
      const std::string line = child->read_line(30000.0);
      if (line.rfind("LISTENING ", 0) == 0) {
        ep = line.substr(10);
        break;
      }
      if (line.rfind("FAILED ", 0) == 0 || (line.empty() && !child->running()))
        break;
    }
    if (ep.empty()) return false;
    endpoint = ep;
    return true;
  }

  void kill_hard() {
    if (child) child->kill_hard();
  }

  bool terminate(double timeout_ms) {
    return !child || child->terminate(timeout_ms);
  }
};

// ---- orchestrator: one transport run -------------------------------------

struct ScenarioStat {
  std::string name;
  std::uint64_t injected = 0;
  std::uint64_t reconnects = 0;     ///< client reconnects during it
  std::uint64_t resubmissions = 0;  ///< client resubmissions during it
};

struct RunOutcome {
  std::string transport;
  std::string endpoint;
  double wall_s = 0.0;
  Audit audit;
  std::vector<ScenarioStat> scenarios;
  std::uint64_t chaos_injected = 0;  ///< sweep total, orchestrator side
  std::uint64_t client_reconnects = 0;
  std::uint64_t client_resubmissions = 0;
  double recovery_ms = 0.0;  ///< router SIGKILL -> first post-restart result
  std::size_t post_restart_results = 0;
  std::uint64_t journal_recovered_nodes = 0;
  std::uint64_t journal_recovered_replies = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t inflight_rebinds = 0;
  std::uint64_t malformed_disconnects = 0;
  std::uint64_t redispatched = 0;
  std::uint64_t crashes = 0;
  bool storm_ran = false;
  bool children_clean = true;
  std::string router_stats;

  bool all_scenarios_fired() const {
    for (const auto& s : scenarios) {
      if (s.injected == 0) return false;
    }
    return !scenarios.empty();
  }

  bool pass() const {
    return audit.exact() && all_scenarios_fired() && client_reconnects > 0 &&
           post_restart_results > 0 && journal_recovered_nodes >= 1 &&
           children_clean;
  }
};

struct RunParams {
  std::string transport;
  std::size_t replica_procs = 2;
  std::size_t streams = 4;
  std::size_t rounds_scenario = 6;
  std::size_t rounds_kill = 8;
  std::size_t rounds_storm = 6;
  double deadline_ms = 3.0;
  std::uint64_t seed = 7;
};

/// Router counters reset with each incarnation; scrape and accumulate at
/// the end of every incarnation so the run total is complete.
void accumulate_stats(RunOutcome& out, const std::string& js) {
  out.dedup_hits += scan_counter(js, "dedup_hits");
  out.inflight_rebinds += scan_counter(js, "inflight_rebinds");
  out.malformed_disconnects += scan_counter(js, "malformed_disconnects");
  out.redispatched += scan_counter(js, "redispatched_jobs");
  out.crashes += scan_counter(js, "replica_crashes");
}

cluster::ResilientClientConfig client_config(std::uint64_t seed) {
  cluster::ResilientClientConfig ccfg;
  ccfg.connect_timeout_ms = 500.0;
  ccfg.backoff_initial_ms = 5.0;
  ccfg.backoff_max_ms = 100.0;
  ccfg.jitter_seed = seed;
  ccfg.max_unacked = 64;  // below the router's dedup_window (256)
  return ccfg;
}

RunOutcome run_transport(const RunParams& rp, const TickSet& ts) {
  RunOutcome out;
  out.transport = rp.transport;
  const auto t0 = Clock::now();

  Fleet fleet;
  fleet.transport = rp.transport;
  std::cout << "[" << rp.transport << "] spawning " << rp.replica_procs
            << " replica processes...\n";
  for (std::size_t i = 0; i < rp.replica_procs; ++i) {
    if (fleet.spawn_replica(rp.deadline_ms).empty()) {
      std::cout << "[" << rp.transport << "] replica " << i
                << " failed to start\n";
      out.children_clean = false;
      return out;
    }
  }

  RouterProc router;
  router.journal = "/tmp/reads-chaos-" + std::to_string(::getpid()) + "-" +
                   rp.transport + ".journal";
  ::unlink(router.journal.c_str());
  router.deadline_ms = rp.deadline_ms;
  const std::string listen_spec =
      rp.transport == "uds" ? "uds:/tmp/reads-chaos-" +
                                  std::to_string(::getpid()) + "-router.sock"
                            : "tcp:127.0.0.1:0";
  if (!router.spawn(listen_spec, fleet.endpoints, "", 0, 0, 0)) {
    std::cout << "[" << rp.transport << "] router failed to start\n";
    out.children_clean = false;
    return out;
  }
  out.endpoint = router.endpoint;
  std::uint32_t seq = 0;

  // Phase 1: wire-chaos sweep, one fresh injector + client per scenario so
  // site numbering (= connection open order) restarts at 0 every time and
  // the campaign stays deterministic.
  std::cout << "[" << rp.transport << "] phase 1: wire-chaos sweep\n";
  for (const char* name :
       {"torn", "short_write", "eagain", "corrupt", "refuse", "stall"}) {
    fault::NetScenarioParams np;
    np.seed = util::derive_seed(rp.seed, std::hash<std::string>{}(name));
    // The op horizon must match what the client actually performs, or the
    // scheduled windows land beyond the campaign: ~1 write op per submit.
    np.ops = rp.rounds_scenario * rp.streams;
    np.sites = 4;
    fault::NetInjector injector(fault::NetPlan::scenario(name, np), np.seed);
    cluster::ResilientClient client(router.endpoint,
                                    client_config(np.seed));
    {
      fault::NetChaosGuard guard(injector);
      run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_scenario);
    }
    // Tap removed: the tail drains over a clean wire.
    drain_all(client, out.audit, ts, 60.0);
    ScenarioStat st;
    st.name = name;
    st.injected = injector.injected_total();
    st.reconnects = client.reconnects() > 0 ? client.reconnects() - 1 : 0;
    st.resubmissions = client.resubmissions();
    out.chaos_injected += st.injected;
    out.client_reconnects += st.reconnects;
    out.client_resubmissions += st.resubmissions;
    out.scenarios.push_back(st);
    std::cout << "  " << name << ": " << st.injected << " faults injected, "
              << st.reconnects << " reconnects, " << st.resubmissions
              << " resubmissions, pending " << out.audit.pending() << "\n";
  }

  // Phase 2: replica SIGKILL mid-traffic; redispatch must stay invisible.
  std::cout << "[" << rp.transport << "] phase 2: replica SIGKILL\n";
  {
    cluster::ResilientClient client(router.endpoint, client_config(rp.seed));
    run_rounds(client, out.audit, ts, rp.streams, seq, 2);
    fleet.replicas.back().kill_hard();
    run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_kill);
    drain_all(client, out.audit, ts, 60.0);
  }
  {  // First incarnation's counters, before the SIGKILL wipes them.
    cluster::ClusterClient admin(router.endpoint, cluster::Role::kAdmin);
    accumulate_stats(out, admin.stats(10000.0));
  }

  // Phase 3: router SIGKILL + restart on the same endpoint + journal. One
  // round is submitted and deliberately NOT drained first, so the kill
  // lands with ticks in flight — the restart serves answered ones from the
  // recovered dedup window and re-executes the rest on resubmission.
  std::cout << "[" << rp.transport << "] phase 3: router SIGKILL + restart\n";
  {
    cluster::ResilientClient client(router.endpoint, client_config(rp.seed));
    run_rounds(client, out.audit, ts, rp.streams, seq, 2);
    for (std::uint64_t st = 0; st < rp.streams; ++st) {
      submit_tick(client, out.audit, ts, st, seq);
    }
    ++seq;
    router.kill_hard();
    const auto kill_t = Clock::now();
    if (!router.spawn(router.endpoint, fleet.endpoints, "", 0, 0, 0)) {
      std::cout << "[" << rp.transport << "] router failed to RESTART\n";
      out.children_clean = false;
      return out;
    }
    const std::size_t before = out.audit.results;
    while (out.audit.results == before && elapsed_s(kill_t) < 60.0) {
      drain(client, out.audit, ts, 50.0);
    }
    out.recovery_ms = elapsed_ms(kill_t);
    run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_kill);
    drain_all(client, out.audit, ts, 60.0);
    out.post_restart_results = out.audit.results - before;
    out.client_reconnects +=
        client.reconnects() > 1 ? client.reconnects() - 1 : 0;
    out.client_resubmissions += client.resubmissions();
  }

  {  // Journal recovery + incarnation counters of the restarted router.
    cluster::ClusterClient admin(router.endpoint, cluster::Role::kAdmin);
    const std::string js = admin.stats(10000.0);
    out.journal_recovered_nodes = scan_counter(js, "journal_recovered_nodes");
    out.journal_recovered_replies =
        scan_counter(js, "journal_recovered_replies");
    accumulate_stats(out, js);
  }

  // Phase 4: cycle the router once more with net_storm on ITS side of the
  // wire, so chaos also lands on the router<->replica legs.
  std::cout << "[" << rp.transport << "] phase 4: router-side net_storm\n";
  {
    if (!router.terminate(10000.0)) out.children_clean = false;
    const std::uint64_t storm_ops = rp.rounds_storm * rp.streams * 2;
    if (!router.spawn(router.endpoint, fleet.endpoints, "net_storm",
                      util::derive_seed(rp.seed, 0x570), storm_ops, 6)) {
      std::cout << "[" << rp.transport << "] router failed storm restart\n";
      out.children_clean = false;
      return out;
    }
    out.storm_ran = true;
    cluster::ResilientClient client(router.endpoint, client_config(rp.seed));
    run_rounds(client, out.audit, ts, rp.streams, seq, rp.rounds_storm);
    drain_all(client, out.audit, ts, 60.0);
    out.client_reconnects += client.reconnects() > 1
                                 ? client.reconnects() - 1
                                 : 0;
    out.client_resubmissions += client.resubmissions();
  }

  // Final stats + graceful teardown.
  {
    cluster::ClusterClient admin(router.endpoint, cluster::Role::kAdmin);
    out.router_stats = admin.stats(10000.0);
    accumulate_stats(out, out.router_stats);
    admin.shutdown_router();
  }
  if (!router.terminate(15000.0)) out.children_clean = false;
  // The killed replica cannot terminate cleanly; count only survivors.
  for (std::size_t i = 0; i + 1 < fleet.replicas.size(); ++i) {
    if (!fleet.replicas[i].terminate(10000.0)) out.children_clean = false;
  }
  fleet.replicas.back().kill_hard();
  if (rp.transport == "uds") {
    for (const auto& ep : fleet.endpoints) {
      if (ep.rfind("uds:", 0) == 0) ::unlink(ep.c_str() + 4);
    }
    if (out.endpoint.rfind("uds:", 0) == 0) {
      ::unlink(out.endpoint.c_str() + 4);
    }
  }
  ::unlink(router.journal.c_str());
  out.wall_s = elapsed_s(t0);
  return out;
}

std::string gate_str(bool pass) { return pass ? "\"pass\"" : "\"fail\""; }

void print_outcome(const RunOutcome& o) {
  const auto& a = o.audit;
  std::cout << "[" << o.transport << "] " << a.submitted << " ticks: "
            << a.results << " results, " << a.sheds << " sheds, " << a.lost()
            << " lost, " << a.duplicated << " duplicated, " << a.mismatched
            << " divergent\n"
            << "[" << o.transport << "] chaos: " << o.chaos_injected
            << " faults injected client-side, " << o.client_reconnects
            << " reconnects, " << o.client_resubmissions << " resubmissions, "
            << o.dedup_hits << " dedup hits, " << o.inflight_rebinds
            << " in-flight rebinds, " << o.malformed_disconnects
            << " malformed disconnects\n"
            << "[" << o.transport << "] failover: " << o.crashes
            << " replica crashes, " << o.redispatched
            << " jobs redispatched, router recovery "
            << static_cast<int>(o.recovery_ms) << " ms ("
            << o.journal_recovered_nodes << " nodes, "
            << o.journal_recovered_replies << " replies from journal), "
            << o.post_restart_results << " post-restart results\n"
            << "[" << o.transport << "] gates: exactness "
            << (a.exact() ? "pass" : "FAIL") << ", chaos-fired "
            << (o.all_scenarios_fired() ? "pass" : "FAIL") << ", reconnected "
            << (o.client_reconnects > 0 ? "pass" : "FAIL") << ", recovery "
            << (o.journal_recovered_nodes >= 1 && o.post_restart_results > 0
                    ? "pass"
                    : "FAIL")
            << ", shutdown " << (o.children_clean ? "pass" : "FAIL") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string role = cli.get_string("role", "bench");
  if (role == "replica") return replica_main(cli);
  if (role == "router") return router_main(cli);

  if (cli.get_bool("help", false)) {
    std::cout
        << "bench_chaos_cluster: network chaos + cluster failover bench\n\n"
        << bench::StandardFlags::help()
        << "bench_chaos_cluster flags:\n"
           "  --streams=N          client streams (default 4)\n"
           "  --deadline_ms=D      hard-real-time SLO budget (default 3)\n"
           "  --quick              short phases (CI mode)\n"
           "  --out=PATH           JSON artifact (BENCH_chaos_cluster.json)\n"
           "  --role=replica       internal: run as a replica server\n"
           "  --role=router        internal: run as the router process\n";
    return 0;
  }

  auto flags = bench::StandardFlags::parse(cli);
  const bool quick = cli.get_bool("quick", false);
  const double deadline_ms = cli.get_double("deadline_ms", 3.0);
  const auto streams =
      static_cast<std::size_t>(cli.get_int("streams", 4));
  const std::string out_path =
      cli.get_string("out", "BENCH_chaos_cluster.json");
  cli.check_unknown();
  flags.apply_threads();

  bench::print_header(
      "network chaos + cluster failover",
      "one 3 ms stream per node (paper SVI) served through a router that "
      "must survive torn sockets, slow peers, and its own death");

  // Warm the model cache + build the oracle before spawning children.
  const bench::DeployedUnet unet;
  const auto firmware = unet.deployed_firmware();
  const hls::QuantizedModel direct(firmware);
  const auto ticks =
      build_ticks(direct, unet.bundle.standardizer, 16, flags.seed);

  RunParams rp;
  rp.replica_procs = 2;
  rp.streams = streams;
  rp.rounds_scenario = quick ? 6 : 14;
  rp.rounds_kill = quick ? 8 : 16;
  rp.rounds_storm = quick ? 6 : 14;
  rp.deadline_ms = deadline_ms;
  rp.seed = flags.seed;

  std::vector<std::string> transports;
  if (flags.transport == "both") {
    transports = {"tcp", "uds"};
  } else {
    transports = {flags.transport};
  }

  std::vector<RunOutcome> runs;
  bool ok = true;
  for (const auto& t : transports) {
    rp.transport = t;
    runs.push_back(run_transport(rp, ticks));
    print_outcome(runs.back());
    std::cout << "\n";
    ok = ok && runs.back().pass();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"chaos_cluster\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"streams\": " << streams << ",\n"
       << "  \"hard_deadline_ms\": " << deadline_ms << ",\n"
       << "  \"seed\": " << flags.seed << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    auto& o = runs[i];
    const auto& a = o.audit;
    json << "    {\"transport\": \"" << o.transport << "\", \"endpoint\": \""
         << o.endpoint << "\", \"wall_s\": " << util::json_double(o.wall_s)
         << ",\n"
         << "     \"verify\": {\"submitted\": " << a.submitted
         << ", \"results\": " << a.results << ", \"sheds\": " << a.sheds
         << ", \"lost\": " << a.lost() << ", \"duplicated\": " << a.duplicated
         << ", \"mismatched\": " << a.mismatched << "},\n"
         << "     \"scenarios\": [";
    for (std::size_t s = 0; s < o.scenarios.size(); ++s) {
      const auto& sc = o.scenarios[s];
      json << (s > 0 ? ", " : "") << "{\"name\": \"" << sc.name
           << "\", \"injected\": " << sc.injected
           << ", \"reconnects\": " << sc.reconnects
           << ", \"resubmissions\": " << sc.resubmissions << "}";
    }
    json << "],\n"
         << "     \"resilience\": {\"client_reconnects\": "
         << o.client_reconnects
         << ", \"client_resubmissions\": " << o.client_resubmissions
         << ", \"dedup_hits\": " << o.dedup_hits
         << ", \"inflight_rebinds\": " << o.inflight_rebinds
         << ", \"malformed_disconnects\": " << o.malformed_disconnects
         << "},\n"
         << "     \"failover\": {\"replica_crashes\": " << o.crashes
         << ", \"redispatched_jobs\": " << o.redispatched
         << ", \"recovery_ms\": " << util::json_double(o.recovery_ms)
         << ", \"post_restart_results\": " << o.post_restart_results
         << ", \"journal_recovered_nodes\": " << o.journal_recovered_nodes
         << ", \"journal_recovered_replies\": "
         << o.journal_recovered_replies << ", \"storm_ran\": "
         << (o.storm_ran ? "true" : "false") << "},\n"
         << "     \"gates\": {\"exactness\": " << gate_str(a.exact())
         << ", \"chaos_fired\": " << gate_str(o.all_scenarios_fired())
         << ", \"reconnected\": " << gate_str(o.client_reconnects > 0)
         << ", \"recovery\": "
         << gate_str(o.journal_recovered_nodes >= 1 &&
                     o.post_restart_results > 0)
         << ", \"shutdown\": " << gate_str(o.children_clean) << "},\n"
         << "     \"router_stats\": "
         << (o.router_stats.empty() ? "null" : o.router_stats) << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}";
  std::ofstream(out_path) << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  std::cout << "overall: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
