// Table III — model/system summary for the deployed U-Net: parameters,
// precision strategy, reuse factors, latency, and FPGA resources.
//
//   ./bench_table3 [--frames=50] [--seed=42]
#include "common.hpp"

#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 50));
  cli.check_unknown();

  bench::print_header(
      "Table III: model summary (deployed U-Net)",
      "134,434 params | <16,7>/layer-based | reuse 32 & 260 | 1.74 ms system "
      "| 1.57 ms IP | 223,674 ALMs (89%) | 406k regs | 25.3M BRAM bits (58%) "
      "| 1,818 RAM blocks (85%) | 273 DSP (16%)");

  bench::DeployedUnet unet(opts);
  const auto fw = unet.deployed_firmware();
  const auto res = hls::ResourceModel().estimate(fw);
  const auto lat = hls::LatencyModel().estimate(fw);
  const hls::QuantizedModel qm(fw);
  soc::ArriaSocSystem system(qm, soc::SocParams{}, opts.seed);
  util::RunningStats sys_lat;
  for (const auto& in : unet.eval_inputs(frames, opts.seed + 3)) {
    sys_lat.add(system.process(in).timing.total_ms);
  }

  const auto pct = [](double frac) { return util::Table::pct(frac, 0); };
  util::Table t({"System Properties", "U-Net Model (this repo)", "Paper"});
  t.add_row({"Trainable Parameters",
             std::to_string(unet.bundle.model.param_count()), "134434"});
  t.add_row({"Default Precision", "ac_fixed<16, 7>", "ac_fixed<16, 7>"});
  t.add_row({"Precision Strategy", "Layer-based", "Layer-based"});
  t.add_row({"Default Reuse Factor", "32", "32"});
  t.add_row({"Dense/Sigmoid Reuse Factor",
             std::to_string(fw.config.reuse.requested("head")) +
                 " (effective " + std::to_string(fw.layer("head").reuse) + ")",
             "260"});
  t.add_row({"Average System Latency",
             util::Table::fmt(sys_lat.mean(), 2) + " ms", "1.74 ms"});
  t.add_row({"FPGA U-Net Latency", util::Table::fmt(lat.total_ms(), 2) + " ms",
             "1.57 ms"});
  t.add_row({"Logic Utilization",
             std::to_string(res.total_alms) + " (" +
                 pct(res.alm_utilization()) + ")",
             "223674 (89%)"});
  t.add_row({"Total Registers", std::to_string(res.total_registers), "406123"});
  t.add_row({"Total Block Memory Bits",
             std::to_string(res.total_bram_bits) + " (" +
                 pct(res.bram_bit_utilization()) + ")",
             "25275808 (58%)"});
  t.add_row({"Total RAM Blocks",
             std::to_string(res.total_ram_blocks) + " (" +
                 pct(res.ram_utilization()) + ")",
             "1818 (85%)"});
  t.add_row({"Total DSP Blocks",
             std::to_string(res.total_dsps) + " (" +
                 pct(res.dsp_utilization()) + ")",
             "273 (16%)"});
  t.print(std::cout);

  std::cout << "\nper-layer breakdown (precision / reuse / mults / cycles):\n";
  util::Table pl({"layer", "activation", "reuse", "mults", "cycles"});
  const auto lat_layers = lat.layers;
  for (std::size_t i = 1; i < fw.layers.size(); ++i) {
    const auto& l = fw.layers[i];
    pl.add_row({l.name, l.quant.activation.to_string(),
                l.mults_per_output ? std::to_string(l.reuse) : "-",
                std::to_string(l.instantiated_mults),
                std::to_string(lat_layers[i - 1].cycles)});
  }
  pl.print(std::cout);
  return 0;
}
