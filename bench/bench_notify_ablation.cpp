// Notification-path ablation: completion interrupt through the Linux kernel
// (the paper's deployment) vs user-space busy-polling of the control IP's
// status register. Polling removes the ~110 us kernel wakeup and its
// scheduling tail (the >2 ms stragglers of Fig. 5c) at the cost of a pinned
// CPU and continuous bridge reads — the trade a machine-protection reviewer
// would weigh for a 3 ms hard deadline.
//
//   ./bench_notify_ablation [--frames=4000] [--seed=42]
#include "common.hpp"

#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 4000));
  cli.check_unknown();

  bench::print_header(
      "Notification ablation: completion IRQ vs status polling",
      "the paper's >2 ms stragglers 'may originate from the task scheduling "
      "in the operating system' — polling eliminates that path");

  bench::DeployedUnet unet(opts);
  const hls::QuantizedModel qm(unet.deployed_firmware());

  util::Table t({"mode", "mean", "p99", "max", "bridge reads/frame",
                 "CPU while waiting"});
  for (const auto mode : {soc::NotifyMode::kInterrupt, soc::NotifyMode::kPolling}) {
    soc::SocParams params;
    params.functional_ip = false;
    params.os.notify = mode;
    soc::ArriaSocSystem system(qm, params, opts.seed);
    const tensor::Tensor zero({260, 1});
    util::RunningStats stats;
    util::Percentiles pct;
    for (std::size_t i = 0; i < frames; ++i) {
      const double ms = system.process(zero).timing.total_ms;
      stats.add(ms);
      pct.add(ms);
    }
    const double reads_per_frame =
        static_cast<double>(system.transfer_counters().bridge_reads) /
        static_cast<double>(frames);
    t.add_row({mode == soc::NotifyMode::kInterrupt ? "interrupt (deployed)"
                                                   : "status polling",
               util::Table::fmt(stats.mean(), 3) + " ms",
               util::Table::fmt(pct.percentile(99), 3) + " ms",
               util::Table::fmt(stats.max(), 3) + " ms",
               util::Table::fmt(reads_per_frame, 0),
               mode == soc::NotifyMode::kInterrupt ? "sleeps (shared core)"
                                                   : "spins (pinned core)"});
  }
  t.print(std::cout);
  std::cout << "\n(" << frames << " timing-only frames per mode)\n";
  return 0;
}
