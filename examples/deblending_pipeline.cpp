// The deployed system: the paper's full beam-loss de-blending central node.
//
// Builds (or loads from the model cache) the 134,434-parameter U-Net,
// lowers it to the deployed firmware (layer-based 16-bit, reuse 32/260) and
// streams live synthetic BLM frames through the simulated Arria 10 SoC at
// the facility's 320 fps rate, printing the per-frame mitigation decision
// exactly as the ACNET-facing application would.
//
//   ./deblending_pipeline [--frames=24] [--seed=42]
#include <iomanip>
#include <iostream>

#include "blm/generator.hpp"
#include "core/deblender.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 24));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.check_unknown();

  core::DeblendConfig config;
  config.model.seed = seed;
  config.model.verbose = true;
  std::cout << "building the de-blending system (trains the U-Net on first "
               "run; cached afterwards)...\n";
  auto system = core::DeblendingSystem::build(config);

  std::cout << "model: " << system.float_model().param_count()
            << " parameters; firmware: "
            << system.resources().total_alms << " ALMs ("
            << static_cast<int>(system.resources().alm_utilization() * 100)
            << "%), IP latency "
            << util::Table::fmt(system.ip_latency().total_ms(), 2) << " ms\n\n";

  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(), seed + 100);
  util::RunningStats latency;
  std::size_t trips_mi = 0;
  std::size_t trips_rr = 0;
  std::cout << "frame  decision  MI-score  RR-score  latency\n";
  for (std::size_t i = 0; i < frames; ++i) {
    const auto frame = gen.next();
    const auto decision = system.process(frame.raw);
    latency.add(decision.timing.total_ms);
    if (decision.target == core::MitigationTarget::kMainInjector) ++trips_mi;
    if (decision.target == core::MitigationTarget::kRecyclerRing) ++trips_rr;
    std::cout << std::setw(5) << i << "  " << std::setw(8)
              << core::to_string(decision.target) << "  " << std::setw(8)
              << util::Table::fmt(decision.mi_score, 1) << "  " << std::setw(8)
              << util::Table::fmt(decision.rr_score, 1) << "  "
              << util::Table::fmt(decision.timing.total_ms, 3) << " ms"
              << (decision.timing.deadline_met ? "" : "  ** DEADLINE MISS **")
              << "\n";
  }

  std::cout << "\nsummary over " << frames << " frames: mean latency "
            << util::Table::fmt(latency.mean(), 3) << " ms (max "
            << util::Table::fmt(latency.max(), 3) << " ms, budget 3 ms), "
            << "mitigations: MI " << trips_mi << ", RR " << trips_rr << ", none "
            << frames - trips_mi - trips_rr << "\n";
  std::cout << "equivalent throughput capability: "
            << util::Table::fmt(1e3 / latency.mean(), 0)
            << " fps (paper: 575 fps; deployment requires 320 fps)\n";
  return 0;
}
