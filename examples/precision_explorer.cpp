// Precision/reuse co-design exploration — the paper's §IV-D methodology as
// an automated tool. Evaluates the paper's three headline precision
// strategies plus a layer-based bit-width ladder against the Arria 10
// resource budget, the 3 ms latency requirement, and a 95% accuracy floor,
// then reports which configuration the optimizer would deploy.
//
//   ./precision_explorer [--calib=48] [--min-accuracy=0.95] [--seed=42]
#include <iostream>

#include "blm/data.hpp"
#include "core/codesign.hpp"
#include "core/pretrained.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  const auto calib_n = static_cast<std::size_t>(cli.get_int("calib", 48));
  const double min_acc = cli.get_double("min-accuracy", 0.95);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.check_unknown();

  core::PretrainedOptions opts;
  opts.seed = seed;
  std::cout << "loading/training the deployed U-Net...\n";
  const auto bundle = core::pretrained_unet(opts);
  const auto calib = blm::build_eval_inputs(calib_n, seed + 21,
                                            bundle.standardizer, bundle.machine);

  core::CodesignConstraints constraints;
  constraints.min_accuracy = min_acc;
  core::CodesignOptimizer optimizer(bundle.model, calib, constraints);

  std::cout << "evaluating " << optimizer.default_candidates().size()
            << " candidates on " << calib_n << " calibration frames...\n\n";
  const auto outcome = optimizer.run(optimizer.default_candidates());

  util::Table t({"candidate", "acc MI", "acc RR", "ALUT %", "DSP %",
                 "IP latency", "fits", "accurate", "fast", "FEASIBLE"});
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    const auto& r = outcome.results[i];
    const auto mark = [](bool b) { return b ? std::string("yes") : "no"; };
    t.add_row({r.candidate.label + (i == outcome.selected ? "  <== selected" : ""),
               util::Table::pct(r.accuracy.accuracy_mi),
               util::Table::pct(r.accuracy.accuracy_rr),
               util::Table::pct(r.alut_utilization, 0),
               util::Table::pct(r.dsp_utilization, 0),
               util::Table::fmt(r.ip_latency_ms, 2) + " ms", mark(r.fits),
               mark(r.meets_accuracy), mark(r.meets_latency),
               mark(r.feasible())});
  }
  t.print(std::cout);

  if (outcome.found()) {
    std::cout << "\nselected deployment: "
              << outcome.results[outcome.selected].candidate.label
              << " — the paper reached the same conclusion by hand: uniform "
                 "18-bit is accurate but does not fit; uniform 16-bit fits "
                 "but is inaccurate; layer-based 16-bit satisfies both.\n";
  } else {
    std::cout << "\nno feasible configuration under these constraints\n";
  }
  return 0;
}
