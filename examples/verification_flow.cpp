// The staged bring-up checklist of paper §IV-C, runnable as one command:
// control-IP FSM, hls4ml flow on the baseline MLP, the Cyclone V subsystem
// sizing, the Avalon-bridge single-adder test, the interrupt path, and the
// combined system equivalence check.
//
//   ./verification_flow [--seed=99]
#include <iostream>

#include "core/verification.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 99));
  cli.check_unknown();

  std::cout << "running the six-stage verification flow (paper §IV-C)...\n\n";
  const auto report = core::run_verification_flow(seed);

  util::Table t({"stage", "name", "result", "detail"});
  for (const auto& s : report.stages) {
    t.add_row({std::to_string(s.stage), s.name, s.passed ? "PASS" : "FAIL",
               s.detail});
  }
  t.print(std::cout);
  std::cout << "\noverall: " << (report.all_passed() ? "ALL STAGES PASSED"
                                                     : "FAILURES PRESENT")
            << "\n";
  return report.all_passed() ? 0 : 1;
}
