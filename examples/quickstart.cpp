// Quickstart: the whole READS-Edge flow on a small model in under a minute.
//
//  1. generate synthetic beam-loss frames (the facility data substitute),
//  2. train a small U-Net to de-blend MI vs RR losses,
//  3. profile it and lower it to layer-based 16-bit firmware (hls4ml-style),
//  4. check quantized accuracy and FPGA resource/latency budgets,
//  5. run a frame through the simulated Arria 10 SoC end to end.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples-build/quickstart
#include <iostream>

#include "blm/data.hpp"
#include "hls/accuracy.hpp"
#include "hls/latency.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "hls/resource.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "soc/system.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace reads;

  // 1. Data: 96 frames of blended MI/RR losses over a 64-monitor ring.
  auto machine = blm::MachineConfig::fermilab_like();
  machine.monitors = 64;
  machine.mi.source_positions = {4, 14, 25, 37, 49, 58};
  machine.rr.source_positions = {2, 9, 20, 30, 41, 52, 61};
  auto data = blm::build_data(96, /*seed=*/1, blm::InputScaling::kStandardized,
                              machine);
  std::cout << "generated " << data.dataset.size() << " frames\n";

  // 2. Model: a small U-Net (same topology as the paper's, fewer channels).
  auto model = nn::build_unet({.monitors = 64, .c1 = 6, .c2 = 9, .c3 = 12});
  nn::init_he_uniform(model, /*seed=*/2);
  std::cout << model.summary() << "\n";

  train::MseLoss loss;
  train::Adam adam(2e-3);
  train::Trainer trainer(model, loss, adam);
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.on_epoch = [](std::size_t e, double l) {
    std::cout << "epoch " << e << "  loss " << l << "\n";
  };
  trainer.fit(data.dataset, tc);

  // 3. hls4ml-style lowering: profile ranges, assign per-layer precision.
  const auto calib =
      blm::build_eval_inputs(16, /*seed=*/3, data.standardizer, machine);
  const auto profile = hls::profile_model(model, calib);
  hls::HlsConfig hcfg;
  hcfg.quant = hls::layer_based_config(model, profile, /*total_bits=*/16);
  const auto firmware = hls::compile(model, hcfg);
  const hls::QuantizedModel quantized(firmware);

  // 4. Budgets.
  const auto acc = hls::evaluate_quantization(model, quantized, calib);
  const auto res = hls::ResourceModel().estimate(firmware);
  const auto lat = hls::LatencyModel().estimate(firmware);
  std::cout << "\nquantized accuracy: MI " << acc.accuracy_mi * 100.0
            << "%  RR " << acc.accuracy_rr * 100.0 << "%\n";
  std::cout << "resources: " << res.total_alms << " ALMs ("
            << res.alm_utilization() * 100.0 << "%), " << res.total_dsps
            << " DSPs; IP latency " << lat.total_ms() << " ms\n";

  // 5. One frame through the SoC (HPS -> bridge -> IP -> interrupt -> HPS).
  soc::ArriaSocSystem system(quantized, soc::SocParams{}, /*seed=*/4);
  const auto result = system.process(calib.front());
  std::cout << "\nSoC frame: total " << result.timing.total_ms
            << " ms (write " << result.timing.write_us << " us, IP "
            << result.timing.ip_us << " us, irq+OS " << result.timing.irq_os_us
            << " us, read " << result.timing.read_us << " us), deadline met: "
            << (result.timing.deadline_met ? "yes" : "no") << "\n";
  return 0;
}
