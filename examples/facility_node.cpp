// The complete facility deployment: seven BLM hub crates stream digitizer
// packets over Ethernet, the central node assembles frames, the Arria 10
// SoC de-blends them, and verdicts go out to ACNET — steps 0 through 9 of
// the paper's Fig. 2, including packet loss on the hub links.
//
//   ./facility_node [--ticks=16] [--drop=0.02] [--seed=42]
#include <iomanip>
#include <iostream>

#include "core/facility_node.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  const auto ticks = static_cast<std::size_t>(cli.get_int("ticks", 16));
  const double drop = cli.get_double("drop", 0.02);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.check_unknown();

  core::FacilityNodeConfig config;
  config.seed = seed;
  config.deblend.model.seed = seed;
  config.facility.link.drop_probability = drop;
  std::cout << "standing up the facility node (7 hubs, drop p=" << drop
            << ")...\n";
  auto node = core::FacilityNode::build(config);

  util::RunningStats e2e;
  std::size_t incomplete = 0;
  std::cout << "\ntick  verdict  network   SoC       publish   end-to-end\n";
  for (std::size_t i = 0; i < ticks; ++i) {
    const auto r = node.tick();
    e2e.add(r.end_to_end_ms);
    if (!r.frame_complete) ++incomplete;
    std::cout << std::setw(4) << r.sequence << "  " << std::setw(7)
              << core::to_string(r.decision.target) << "  "
              << std::setw(7) << util::Table::fmt(r.network_us, 1) << "us "
              << std::setw(7) << util::Table::fmt(r.soc_ms, 3) << "ms "
              << std::setw(7) << util::Table::fmt(r.publish_us, 1) << "us "
              << std::setw(8) << util::Table::fmt(r.end_to_end_ms, 3) << "ms"
              << (r.frame_complete ? "" : "   [hub packet lost -> last-known]")
              << "\n";
  }

  std::cout << "\nover " << ticks << " ticks: mean end-to-end "
            << util::Table::fmt(e2e.mean(), 3) << " ms (max "
            << util::Table::fmt(e2e.max(), 3) << " ms), incomplete frames "
            << incomplete << ", ACNET messages " << node.acnet().published()
            << " (MI trips " << node.acnet().trips_mi() << ", RR trips "
            << node.acnet().trips_rr() << ")\n";
  return 0;
}
