# Empty compiler generated dependencies file for hlsgen.
# This may be replaced when dependencies are built.
