file(REMOVE_RECURSE
  "CMakeFiles/hlsgen.dir/hlsgen.cpp.o"
  "CMakeFiles/hlsgen.dir/hlsgen.cpp.o.d"
  "hlsgen"
  "hlsgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
