file(REMOVE_RECURSE
  "CMakeFiles/test_qat.dir/test_qat.cpp.o"
  "CMakeFiles/test_qat.dir/test_qat.cpp.o.d"
  "test_qat"
  "test_qat.pdb"
  "test_qat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
