file(REMOVE_RECURSE
  "CMakeFiles/test_blm.dir/test_blm.cpp.o"
  "CMakeFiles/test_blm.dir/test_blm.cpp.o.d"
  "test_blm"
  "test_blm.pdb"
  "test_blm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
