# Empty dependencies file for test_blm.
# This may be replaced when dependencies are built.
