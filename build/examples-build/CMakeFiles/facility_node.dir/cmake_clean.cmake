file(REMOVE_RECURSE
  "CMakeFiles/facility_node.dir/facility_node.cpp.o"
  "CMakeFiles/facility_node.dir/facility_node.cpp.o.d"
  "facility_node"
  "facility_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
