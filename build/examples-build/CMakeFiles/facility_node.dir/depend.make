# Empty dependencies file for facility_node.
# This may be replaced when dependencies are built.
