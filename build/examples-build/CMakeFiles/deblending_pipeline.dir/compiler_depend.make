# Empty compiler generated dependencies file for deblending_pipeline.
# This may be replaced when dependencies are built.
