file(REMOVE_RECURSE
  "CMakeFiles/deblending_pipeline.dir/deblending_pipeline.cpp.o"
  "CMakeFiles/deblending_pipeline.dir/deblending_pipeline.cpp.o.d"
  "deblending_pipeline"
  "deblending_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deblending_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
