
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/precision_explorer.cpp" "examples-build/CMakeFiles/precision_explorer.dir/precision_explorer.cpp.o" "gcc" "examples-build/CMakeFiles/precision_explorer.dir/precision_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reads_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/reads_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/reads_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/reads_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reads_net.dir/DependInfo.cmake"
  "/root/repo/build/src/blm/CMakeFiles/reads_blm.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/reads_train.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/reads_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reads_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reads_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/reads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
