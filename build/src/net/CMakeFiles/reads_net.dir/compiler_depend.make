# Empty compiler generated dependencies file for reads_net.
# This may be replaced when dependencies are built.
