
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/acnet.cpp" "src/net/CMakeFiles/reads_net.dir/acnet.cpp.o" "gcc" "src/net/CMakeFiles/reads_net.dir/acnet.cpp.o.d"
  "/root/repo/src/net/assembler.cpp" "src/net/CMakeFiles/reads_net.dir/assembler.cpp.o" "gcc" "src/net/CMakeFiles/reads_net.dir/assembler.cpp.o.d"
  "/root/repo/src/net/facility.cpp" "src/net/CMakeFiles/reads_net.dir/facility.cpp.o" "gcc" "src/net/CMakeFiles/reads_net.dir/facility.cpp.o.d"
  "/root/repo/src/net/hub.cpp" "src/net/CMakeFiles/reads_net.dir/hub.cpp.o" "gcc" "src/net/CMakeFiles/reads_net.dir/hub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blm/CMakeFiles/reads_blm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/reads_util.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/reads_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reads_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/reads_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reads_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
