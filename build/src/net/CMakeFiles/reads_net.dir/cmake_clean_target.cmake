file(REMOVE_RECURSE
  "libreads_net.a"
)
