file(REMOVE_RECURSE
  "CMakeFiles/reads_net.dir/acnet.cpp.o"
  "CMakeFiles/reads_net.dir/acnet.cpp.o.d"
  "CMakeFiles/reads_net.dir/assembler.cpp.o"
  "CMakeFiles/reads_net.dir/assembler.cpp.o.d"
  "CMakeFiles/reads_net.dir/facility.cpp.o"
  "CMakeFiles/reads_net.dir/facility.cpp.o.d"
  "CMakeFiles/reads_net.dir/hub.cpp.o"
  "CMakeFiles/reads_net.dir/hub.cpp.o.d"
  "libreads_net.a"
  "libreads_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
