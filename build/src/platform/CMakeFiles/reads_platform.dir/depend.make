# Empty dependencies file for reads_platform.
# This may be replaced when dependencies are built.
