file(REMOVE_RECURSE
  "libreads_platform.a"
)
