file(REMOVE_RECURSE
  "CMakeFiles/reads_platform.dir/comparison.cpp.o"
  "CMakeFiles/reads_platform.dir/comparison.cpp.o.d"
  "CMakeFiles/reads_platform.dir/cpu.cpp.o"
  "CMakeFiles/reads_platform.dir/cpu.cpp.o.d"
  "CMakeFiles/reads_platform.dir/gpu.cpp.o"
  "CMakeFiles/reads_platform.dir/gpu.cpp.o.d"
  "libreads_platform.a"
  "libreads_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
