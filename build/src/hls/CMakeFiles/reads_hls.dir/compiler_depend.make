# Empty compiler generated dependencies file for reads_hls.
# This may be replaced when dependencies are built.
