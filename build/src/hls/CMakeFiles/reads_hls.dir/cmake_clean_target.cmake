file(REMOVE_RECURSE
  "libreads_hls.a"
)
