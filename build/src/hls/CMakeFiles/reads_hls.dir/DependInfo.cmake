
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/accuracy.cpp" "src/hls/CMakeFiles/reads_hls.dir/accuracy.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/accuracy.cpp.o.d"
  "/root/repo/src/hls/codegen.cpp" "src/hls/CMakeFiles/reads_hls.dir/codegen.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/codegen.cpp.o.d"
  "/root/repo/src/hls/firmware.cpp" "src/hls/CMakeFiles/reads_hls.dir/firmware.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/firmware.cpp.o.d"
  "/root/repo/src/hls/latency.cpp" "src/hls/CMakeFiles/reads_hls.dir/latency.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/latency.cpp.o.d"
  "/root/repo/src/hls/precision.cpp" "src/hls/CMakeFiles/reads_hls.dir/precision.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/precision.cpp.o.d"
  "/root/repo/src/hls/profiler.cpp" "src/hls/CMakeFiles/reads_hls.dir/profiler.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/profiler.cpp.o.d"
  "/root/repo/src/hls/qmodel.cpp" "src/hls/CMakeFiles/reads_hls.dir/qmodel.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/qmodel.cpp.o.d"
  "/root/repo/src/hls/resource.cpp" "src/hls/CMakeFiles/reads_hls.dir/resource.cpp.o" "gcc" "src/hls/CMakeFiles/reads_hls.dir/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/reads_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/reads_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/reads_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reads_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
