file(REMOVE_RECURSE
  "CMakeFiles/reads_hls.dir/accuracy.cpp.o"
  "CMakeFiles/reads_hls.dir/accuracy.cpp.o.d"
  "CMakeFiles/reads_hls.dir/codegen.cpp.o"
  "CMakeFiles/reads_hls.dir/codegen.cpp.o.d"
  "CMakeFiles/reads_hls.dir/firmware.cpp.o"
  "CMakeFiles/reads_hls.dir/firmware.cpp.o.d"
  "CMakeFiles/reads_hls.dir/latency.cpp.o"
  "CMakeFiles/reads_hls.dir/latency.cpp.o.d"
  "CMakeFiles/reads_hls.dir/precision.cpp.o"
  "CMakeFiles/reads_hls.dir/precision.cpp.o.d"
  "CMakeFiles/reads_hls.dir/profiler.cpp.o"
  "CMakeFiles/reads_hls.dir/profiler.cpp.o.d"
  "CMakeFiles/reads_hls.dir/qmodel.cpp.o"
  "CMakeFiles/reads_hls.dir/qmodel.cpp.o.d"
  "CMakeFiles/reads_hls.dir/resource.cpp.o"
  "CMakeFiles/reads_hls.dir/resource.cpp.o.d"
  "libreads_hls.a"
  "libreads_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
