# Empty compiler generated dependencies file for reads_util.
# This may be replaced when dependencies are built.
