file(REMOVE_RECURSE
  "libreads_util.a"
)
