file(REMOVE_RECURSE
  "CMakeFiles/reads_util.dir/cli.cpp.o"
  "CMakeFiles/reads_util.dir/cli.cpp.o.d"
  "CMakeFiles/reads_util.dir/stats.cpp.o"
  "CMakeFiles/reads_util.dir/stats.cpp.o.d"
  "CMakeFiles/reads_util.dir/table.cpp.o"
  "CMakeFiles/reads_util.dir/table.cpp.o.d"
  "CMakeFiles/reads_util.dir/thread_pool.cpp.o"
  "CMakeFiles/reads_util.dir/thread_pool.cpp.o.d"
  "libreads_util.a"
  "libreads_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
