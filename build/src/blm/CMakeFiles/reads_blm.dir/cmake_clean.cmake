file(REMOVE_RECURSE
  "CMakeFiles/reads_blm.dir/data.cpp.o"
  "CMakeFiles/reads_blm.dir/data.cpp.o.d"
  "CMakeFiles/reads_blm.dir/generator.cpp.o"
  "CMakeFiles/reads_blm.dir/generator.cpp.o.d"
  "CMakeFiles/reads_blm.dir/machine.cpp.o"
  "CMakeFiles/reads_blm.dir/machine.cpp.o.d"
  "libreads_blm.a"
  "libreads_blm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_blm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
