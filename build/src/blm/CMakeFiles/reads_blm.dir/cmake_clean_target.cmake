file(REMOVE_RECURSE
  "libreads_blm.a"
)
