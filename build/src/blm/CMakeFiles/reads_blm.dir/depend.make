# Empty dependencies file for reads_blm.
# This may be replaced when dependencies are built.
