file(REMOVE_RECURSE
  "CMakeFiles/reads_soc.dir/control_ip.cpp.o"
  "CMakeFiles/reads_soc.dir/control_ip.cpp.o.d"
  "CMakeFiles/reads_soc.dir/event_sim.cpp.o"
  "CMakeFiles/reads_soc.dir/event_sim.cpp.o.d"
  "CMakeFiles/reads_soc.dir/hps.cpp.o"
  "CMakeFiles/reads_soc.dir/hps.cpp.o.d"
  "CMakeFiles/reads_soc.dir/nn_ip.cpp.o"
  "CMakeFiles/reads_soc.dir/nn_ip.cpp.o.d"
  "CMakeFiles/reads_soc.dir/ocram.cpp.o"
  "CMakeFiles/reads_soc.dir/ocram.cpp.o.d"
  "CMakeFiles/reads_soc.dir/system.cpp.o"
  "CMakeFiles/reads_soc.dir/system.cpp.o.d"
  "libreads_soc.a"
  "libreads_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
