# Empty compiler generated dependencies file for reads_soc.
# This may be replaced when dependencies are built.
