
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/control_ip.cpp" "src/soc/CMakeFiles/reads_soc.dir/control_ip.cpp.o" "gcc" "src/soc/CMakeFiles/reads_soc.dir/control_ip.cpp.o.d"
  "/root/repo/src/soc/event_sim.cpp" "src/soc/CMakeFiles/reads_soc.dir/event_sim.cpp.o" "gcc" "src/soc/CMakeFiles/reads_soc.dir/event_sim.cpp.o.d"
  "/root/repo/src/soc/hps.cpp" "src/soc/CMakeFiles/reads_soc.dir/hps.cpp.o" "gcc" "src/soc/CMakeFiles/reads_soc.dir/hps.cpp.o.d"
  "/root/repo/src/soc/nn_ip.cpp" "src/soc/CMakeFiles/reads_soc.dir/nn_ip.cpp.o" "gcc" "src/soc/CMakeFiles/reads_soc.dir/nn_ip.cpp.o.d"
  "/root/repo/src/soc/ocram.cpp" "src/soc/CMakeFiles/reads_soc.dir/ocram.cpp.o" "gcc" "src/soc/CMakeFiles/reads_soc.dir/ocram.cpp.o.d"
  "/root/repo/src/soc/system.cpp" "src/soc/CMakeFiles/reads_soc.dir/system.cpp.o" "gcc" "src/soc/CMakeFiles/reads_soc.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/reads_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/reads_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reads_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reads_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/reads_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
