file(REMOVE_RECURSE
  "libreads_soc.a"
)
