# Empty compiler generated dependencies file for reads_core.
# This may be replaced when dependencies are built.
