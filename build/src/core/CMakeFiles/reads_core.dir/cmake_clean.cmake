file(REMOVE_RECURSE
  "CMakeFiles/reads_core.dir/codesign.cpp.o"
  "CMakeFiles/reads_core.dir/codesign.cpp.o.d"
  "CMakeFiles/reads_core.dir/deblender.cpp.o"
  "CMakeFiles/reads_core.dir/deblender.cpp.o.d"
  "CMakeFiles/reads_core.dir/facility_node.cpp.o"
  "CMakeFiles/reads_core.dir/facility_node.cpp.o.d"
  "CMakeFiles/reads_core.dir/pretrained.cpp.o"
  "CMakeFiles/reads_core.dir/pretrained.cpp.o.d"
  "CMakeFiles/reads_core.dir/verification.cpp.o"
  "CMakeFiles/reads_core.dir/verification.cpp.o.d"
  "libreads_core.a"
  "libreads_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
