file(REMOVE_RECURSE
  "libreads_core.a"
)
