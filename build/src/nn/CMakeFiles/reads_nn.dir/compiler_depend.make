# Empty compiler generated dependencies file for reads_nn.
# This may be replaced when dependencies are built.
