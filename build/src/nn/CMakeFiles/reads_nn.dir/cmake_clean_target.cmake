file(REMOVE_RECURSE
  "libreads_nn.a"
)
