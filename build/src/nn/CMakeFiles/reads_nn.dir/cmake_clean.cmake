file(REMOVE_RECURSE
  "CMakeFiles/reads_nn.dir/builders.cpp.o"
  "CMakeFiles/reads_nn.dir/builders.cpp.o.d"
  "CMakeFiles/reads_nn.dir/init.cpp.o"
  "CMakeFiles/reads_nn.dir/init.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/activations.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/activations.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/batchnorm.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/batchnorm.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/concat.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/concat.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/conv1d.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/conv1d.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/dense.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/dense.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/flatten.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/flatten.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/pool.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/pool.cpp.o.d"
  "CMakeFiles/reads_nn.dir/layers/upsample.cpp.o"
  "CMakeFiles/reads_nn.dir/layers/upsample.cpp.o.d"
  "CMakeFiles/reads_nn.dir/model.cpp.o"
  "CMakeFiles/reads_nn.dir/model.cpp.o.d"
  "CMakeFiles/reads_nn.dir/serialize.cpp.o"
  "CMakeFiles/reads_nn.dir/serialize.cpp.o.d"
  "libreads_nn.a"
  "libreads_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
