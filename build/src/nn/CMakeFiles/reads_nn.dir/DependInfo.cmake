
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/builders.cpp" "src/nn/CMakeFiles/reads_nn.dir/builders.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/builders.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/reads_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layers/activations.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/activations.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/activations.cpp.o.d"
  "/root/repo/src/nn/layers/batchnorm.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/batchnorm.cpp.o.d"
  "/root/repo/src/nn/layers/concat.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/concat.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/concat.cpp.o.d"
  "/root/repo/src/nn/layers/conv1d.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/conv1d.cpp.o.d"
  "/root/repo/src/nn/layers/dense.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/dense.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/dense.cpp.o.d"
  "/root/repo/src/nn/layers/flatten.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/flatten.cpp.o.d"
  "/root/repo/src/nn/layers/pool.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/pool.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/pool.cpp.o.d"
  "/root/repo/src/nn/layers/upsample.cpp" "src/nn/CMakeFiles/reads_nn.dir/layers/upsample.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/layers/upsample.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/reads_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/reads_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/reads_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/reads_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/reads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
