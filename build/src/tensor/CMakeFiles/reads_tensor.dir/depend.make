# Empty dependencies file for reads_tensor.
# This may be replaced when dependencies are built.
