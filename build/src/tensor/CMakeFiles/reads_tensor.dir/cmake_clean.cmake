file(REMOVE_RECURSE
  "CMakeFiles/reads_tensor.dir/tensor.cpp.o"
  "CMakeFiles/reads_tensor.dir/tensor.cpp.o.d"
  "libreads_tensor.a"
  "libreads_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
