file(REMOVE_RECURSE
  "libreads_tensor.a"
)
