file(REMOVE_RECURSE
  "CMakeFiles/reads_fixed.dir/format.cpp.o"
  "CMakeFiles/reads_fixed.dir/format.cpp.o.d"
  "libreads_fixed.a"
  "libreads_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
