file(REMOVE_RECURSE
  "libreads_fixed.a"
)
