# Empty dependencies file for reads_fixed.
# This may be replaced when dependencies are built.
