file(REMOVE_RECURSE
  "libreads_train.a"
)
