file(REMOVE_RECURSE
  "CMakeFiles/reads_train.dir/dataset.cpp.o"
  "CMakeFiles/reads_train.dir/dataset.cpp.o.d"
  "CMakeFiles/reads_train.dir/loss.cpp.o"
  "CMakeFiles/reads_train.dir/loss.cpp.o.d"
  "CMakeFiles/reads_train.dir/optimizer.cpp.o"
  "CMakeFiles/reads_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/reads_train.dir/qat.cpp.o"
  "CMakeFiles/reads_train.dir/qat.cpp.o.d"
  "CMakeFiles/reads_train.dir/standardize.cpp.o"
  "CMakeFiles/reads_train.dir/standardize.cpp.o.d"
  "CMakeFiles/reads_train.dir/trainer.cpp.o"
  "CMakeFiles/reads_train.dir/trainer.cpp.o.d"
  "libreads_train.a"
  "libreads_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reads_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
