# Empty dependencies file for reads_train.
# This may be replaced when dependencies are built.
