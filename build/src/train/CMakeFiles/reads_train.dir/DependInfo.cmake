
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/dataset.cpp" "src/train/CMakeFiles/reads_train.dir/dataset.cpp.o" "gcc" "src/train/CMakeFiles/reads_train.dir/dataset.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/reads_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/reads_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/optimizer.cpp" "src/train/CMakeFiles/reads_train.dir/optimizer.cpp.o" "gcc" "src/train/CMakeFiles/reads_train.dir/optimizer.cpp.o.d"
  "/root/repo/src/train/qat.cpp" "src/train/CMakeFiles/reads_train.dir/qat.cpp.o" "gcc" "src/train/CMakeFiles/reads_train.dir/qat.cpp.o.d"
  "/root/repo/src/train/standardize.cpp" "src/train/CMakeFiles/reads_train.dir/standardize.cpp.o" "gcc" "src/train/CMakeFiles/reads_train.dir/standardize.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/reads_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/reads_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/reads_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/reads_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/reads_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reads_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
