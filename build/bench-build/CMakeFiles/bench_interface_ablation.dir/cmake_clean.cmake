file(REMOVE_RECURSE
  "../bench/bench_interface_ablation"
  "../bench/bench_interface_ablation.pdb"
  "CMakeFiles/bench_interface_ablation.dir/bench_interface_ablation.cpp.o"
  "CMakeFiles/bench_interface_ablation.dir/bench_interface_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interface_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
