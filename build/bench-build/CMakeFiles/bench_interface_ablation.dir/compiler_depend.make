# Empty compiler generated dependencies file for bench_interface_ablation.
# This may be replaced when dependencies are built.
