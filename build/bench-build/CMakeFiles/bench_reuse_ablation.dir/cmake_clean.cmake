file(REMOVE_RECURSE
  "../bench/bench_reuse_ablation"
  "../bench/bench_reuse_ablation.pdb"
  "CMakeFiles/bench_reuse_ablation.dir/bench_reuse_ablation.cpp.o"
  "CMakeFiles/bench_reuse_ablation.dir/bench_reuse_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reuse_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
