# Empty compiler generated dependencies file for bench_qat.
# This may be replaced when dependencies are built.
