file(REMOVE_RECURSE
  "../bench/bench_qat"
  "../bench/bench_qat.pdb"
  "CMakeFiles/bench_qat.dir/bench_qat.cpp.o"
  "CMakeFiles/bench_qat.dir/bench_qat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
