file(REMOVE_RECURSE
  "../bench/bench_notify_ablation"
  "../bench/bench_notify_ablation.pdb"
  "CMakeFiles/bench_notify_ablation.dir/bench_notify_ablation.cpp.o"
  "CMakeFiles/bench_notify_ablation.dir/bench_notify_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_notify_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
