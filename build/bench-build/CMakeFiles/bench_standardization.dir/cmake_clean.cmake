file(REMOVE_RECURSE
  "../bench/bench_standardization"
  "../bench/bench_standardization.pdb"
  "CMakeFiles/bench_standardization.dir/bench_standardization.cpp.o"
  "CMakeFiles/bench_standardization.dir/bench_standardization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_standardization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
