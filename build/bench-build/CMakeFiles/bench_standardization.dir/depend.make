# Empty dependencies file for bench_standardization.
# This may be replaced when dependencies are built.
