file(REMOVE_RECURSE
  "../bench/bench_calibration"
  "../bench/bench_calibration.pdb"
  "CMakeFiles/bench_calibration.dir/bench_calibration.cpp.o"
  "CMakeFiles/bench_calibration.dir/bench_calibration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
