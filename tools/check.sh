#!/usr/bin/env bash
# Tier-1 verification: plain Release build + ctest, then an ASan/UBSan
# build + ctest (READS_SANITIZE=ON), then a ThreadSanitizer build
# (READS_TSAN=ON) of the concurrency-heavy targets running the serve/queue/
# thread-pool tests. Run from the repo root:
#
#   tools/check.sh [extra ctest args...]
#
# Build trees: build/ (plain), build-asan/ and build-tsan/ (sanitized).
# All are incremental across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)" "$@")

echo "== chaos campaign (fault-injection gates) =="
# Every fault scenario plus the replica-crash audit; exits non-zero on a
# skipped tick, a lost/duplicated frame, or unbounded recovery.
(cd build && ./bench/bench_chaos --quick --out=BENCH_chaos.json)

echo "== lifecycle campaign (drift -> requalify -> hot-swap gates) =="
# Drives >=3 drift/requalify/swap cycles plus a shadow promote and a shadow
# rollback; exits non-zero on a lost/duplicated/late frame, an uncovered
# reconfiguration window, or an unqualified candidate reaching traffic.
(cd build && ./bench/bench_lifecycle --quick --out=BENCH_lifecycle.json)

echo "== autotune campaign (Pareto front / dominance / surrogate gates) =="
# Surrogate-guided precision/reuse search on the deployed U-Net; exits
# non-zero when the validated front is too small, the selected point fails
# to dominate the layer_based_config baseline under the Arria-10 budget and
# the 3 ms deadline, or the surrogate's predicted-vs-measured Spearman rank
# correlation drops below 0.7.
(cd build && ./bench/bench_autotune --tune_quick --out=BENCH_autotune.json)

echo "== kernel engine gates (bit-identity / speedup / narrow lanes) =="
# Fast path must stay bit-identical to the reference executor, beat it by
# >= 8x (committed artifact shows ~11.9x; the lower bar absorbs CI host
# noise), and prove >= half the MAC layers onto narrow int16 lanes.
(cd build && ./bench/bench_kernels --min_speedup=8 --min_narrow_fraction=0.5 \
  --out=BENCH_kernels.json)

echo "== serving gates (exactness / overload / zero-allocation frames) =="
# Poisson sweep gates plus the allocation audit: 1024 steady-state frames
# through assemble -> submit_into -> replica -> slot with exactly 0 heap
# allocations (counted by util::allocguard's global operator new).
(cd build && ./bench/bench_serve --replicas=1 --out=BENCH_serve.json)

echo "== cluster gates (multi-process exactness / live resharding) =="
# Router + replica child processes over both TCP and Unix-domain sockets;
# exits non-zero on a lost/duplicated/bit-divergent accepted frame or a
# reshard that fails to drain exactly-once. The >= 3x goodput scaling gate
# self-skips (recorded in the artifact) on hosts with < 4 hardware threads
# or < 4 replica processes, so the phase degrades gracefully on small CI
# runners instead of failing.
(cd build && ./bench/bench_cluster --quick --out=BENCH_cluster.json)

echo "== chaos-cluster gates (network faults / failover / exactly-once) =="
# The same multi-process tier with a hostile wire and dying processes: every
# socket-fault scenario (torn, short_write, eagain, corrupt, refuse, stall)
# injected client-side, a replica SIGKILL, a router SIGKILL + journal
# recovery on the same endpoint, and a router-side net_storm — over both
# transports. Exits non-zero on a lost/duplicated/bit-divergent accepted
# frame, a scenario that failed to inject, a client that never had to
# reconnect, or a restart that failed to recover journaled membership.
(cd build && ./bench/bench_chaos_cluster --quick --out=BENCH_chaos_cluster.json)

echo "== sanitizer build (address,undefined) =="
cmake -B build-asan -S . -DREADS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$(nproc)"
(cd build-asan && ctest --output-on-failure -j"$(nproc)" "$@")

echo "== thread sanitizer build (serve / concurrency tests) =="
cmake -B build-tsan -S . -DREADS_TSAN=ON >/dev/null
cmake --build build-tsan -j"$(nproc)" \
  --target test_serve test_util test_fault test_lifecycle test_cluster \
  test_autotune
# Model-cache-backed integration tests (DeblendServing, FaultPipeline) are
# covered by the plain and ASan runs; under TSan we run the
# pure-concurrency suites, including the scheduled-crash recovery path,
# the lifecycle registry/requalifier publication races, the router's
# connection table (admin add/remove + stats concurrent with traffic), and
# the failover machinery (stall quarantine + redispatch, journal recovery
# across an in-process restart, resilient-client reconnect/resubmit).
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" \
  -R 'BoundedQueue|Replica|GatewayTest|ServeMetrics|ThreadPool|Stats|Histogram|Percentiles|FaultPlan|FaultInjector|NetPlan|NetInjector|ChaosServe|ModelRegistry|Requalifier|DriftMonitor|RouterCluster|RouterAdmin|RouterFailover|RouterJournal|ClusterProtocol|HashRing|Surrogate|ParetoFront|Autotuner')

echo "== all checks passed =="
