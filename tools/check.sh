#!/usr/bin/env bash
# Tier-1 verification: plain Release build + ctest, then an ASan/UBSan
# build + ctest (READS_SANITIZE=ON). Run from the repo root:
#
#   tools/check.sh [extra ctest args...]
#
# Build trees: build/ (plain) and build-asan/ (sanitized). Both are
# incremental across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)" "$@")

echo "== sanitizer build (address,undefined) =="
cmake -B build-asan -S . -DREADS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$(nproc)"
(cd build-asan && ctest --output-on-failure -j"$(nproc)" "$@")

echo "== all checks passed =="
