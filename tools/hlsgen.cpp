// hlsgen — emit the generated HLS C++ project for the deployed U-Net (what
// hls4ml + the paper's interface customization would hand to the Intel HLS
// compiler).
//
//   ./hlsgen [--out=generated_hls] [--bits=16] [--seed=42]
#include <iostream>

#include "blm/data.hpp"
#include "core/pretrained.hpp"
#include "hls/codegen.hpp"
#include "hls/profiler.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  const auto out_dir = cli.get_string("out", "generated_hls");
  const int bits = static_cast<int>(cli.get_int("bits", 16));
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.check_unknown();

  std::cout << "loading/training the deployed U-Net...\n";
  const auto bundle = core::pretrained_unet(opts);
  const auto calib = blm::build_eval_inputs(48, opts.seed + 1,
                                            bundle.standardizer, bundle.machine);
  const auto profile = hls::profile_model(bundle.model, calib);

  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(bundle.model, profile, bits);
  cfg.reuse = hls::ReusePolicy::deployed_unet();
  const auto fw = hls::compile(bundle.model, cfg);

  hls::write_project(fw, out_dir, "unet_ip");
  std::cout << "wrote parameters.h, weights.h, nnet_layers.h, firmware.cpp, "
               "README.txt to "
            << out_dir << "/ (" << fw.weight_count() << " weight words, "
            << bits << "-bit layer-based precision)\n";
  return 0;
}
