// train_models — warms the model cache used by the benches and examples and
// prints diagnostic information: training losses, per-layer dynamic ranges,
// the derived layer-based precision plan, and a quick Table II preview.
//
//   ./train_models [--seed=42] [--frames=256] [--epochs=14] [--eval=64]
#include <iostream>

#include "blm/data.hpp"
#include "core/pretrained.hpp"
#include "hls/accuracy.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "hls/resource.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reads;
  util::Cli cli(argc, argv);
  core::PretrainedOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opts.train_frames = static_cast<std::size_t>(cli.get_int("frames", 256));
  opts.epochs = static_cast<std::size_t>(cli.get_int("epochs", 14));
  opts.verbose = cli.get_bool("verbose", true);
  const auto eval_n = static_cast<std::size_t>(cli.get_int("eval", 64));
  cli.check_unknown();

  const auto tstats = blm::compute_target_stats(256, opts.seed + 3);
  std::cout << "machine model: mean target MI=" << tstats.mean_mi
            << " RR=" << tstats.mean_rr
            << " (paper: 0.17 / 0.42), max standardized input |z|="
            << tstats.max_standardized_input << "\n";

  std::cout << "=== training/loading MLP ===\n";
  auto mlp = core::pretrained_mlp(opts);
  std::cout << (mlp.loaded_from_cache ? "loaded from cache" : "trained")
            << ", final loss " << mlp.final_loss << "\n";

  std::cout << "=== training/loading U-Net ===\n";
  auto unet = core::pretrained_unet(opts);
  std::cout << (unet.loaded_from_cache ? "loaded from cache" : "trained")
            << ", final loss " << unet.final_loss << "\n";
  std::cout << unet.model.summary() << "\n";

  const auto calib = blm::build_eval_inputs(eval_n, opts.seed + 1,
                                            unet.standardizer, unet.machine);
  const auto profile = hls::profile_model(unet.model, calib);

  util::Table ranges({"layer", "max |activation|", "max |weight|", "int bits"});
  for (const auto& node : unet.model.nodes()) {
    const double act = profile.max_activation.at(node.name);
    const auto wit = profile.max_weight.find(node.name);
    ranges.add_row({node.name, util::Table::fmt(act, 3),
                    wit != profile.max_weight.end()
                        ? util::Table::fmt(wit->second, 3)
                        : "-",
                    std::to_string(hls::int_bits_for(act))});
  }
  std::cout << "\nprofiled dynamic ranges (" << eval_n << " frames):\n"
            << ranges.to_string();

  // Quick Table II preview.
  util::Table t2({"strategy", "acc MI", "acc RR", "ALUT %"});
  const auto reuse = hls::ReusePolicy::deployed_unet();
  const auto preview = [&](const std::string& label, hls::QuantConfig quant) {
    hls::HlsConfig cfg;
    cfg.quant = std::move(quant);
    cfg.reuse = reuse;
    auto fw = hls::compile(unet.model, cfg);
    const auto res = hls::ResourceModel().estimate(fw);
    const hls::QuantizedModel qm(std::move(fw));
    const auto acc = hls::evaluate_quantization(unet.model, qm, calib);
    t2.add_row({label, util::Table::pct(acc.accuracy_mi),
                util::Table::pct(acc.accuracy_rr),
                util::Table::pct(res.alut_utilization(), 0)});
  };
  preview("uniform <18,10>", hls::QuantConfig::uniform({18, 10}));
  preview("uniform <16,7>", hls::QuantConfig::uniform({16, 7}));
  preview("layer-based <16,x>",
          hls::layer_based_config(unet.model, profile, 16));
  std::cout << "\nTable II preview (" << eval_n << " frames):\n"
            << t2.to_string();
  return 0;
}
