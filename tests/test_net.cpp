// Network substrate tests: packet encoding, hub layout/transmission, frame
// assembly (including loss and straggler handling), ACNET journaling, and
// the facility link end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "net/acnet.hpp"
#include "net/assembler.hpp"
#include "net/facility.hpp"
#include "net/hub.hpp"
#include "net/packet.hpp"
#include "net/wire.hpp"

namespace {

using namespace reads;

TEST(Packet, ReadingCodecRoundTripsWithinQuantum) {
  for (double v : {0.0, 1.5, 104'987.25, 119'999.9375}) {
    EXPECT_NEAR(net::decode_reading(net::encode_reading(v)), v,
                1.0 / net::kCountScale);
  }
}

TEST(Packet, CodecClampsNegativeAndHuge) {
  EXPECT_EQ(net::encode_reading(-5.0), 0u);
  EXPECT_EQ(net::encode_reading(1e12), 4294967295u);
}

TEST(Packet, CodecEncodesNanAsZeroCounts) {
  // A glitched digitizer front-end can emit NaN; the cast to unsigned would
  // be UB without the guard.
  EXPECT_EQ(net::encode_reading(std::numeric_limits<double>::quiet_NaN()), 0u);
}

TEST(Packet, WireBytesIncludeFramingAndCrc) {
  net::BlmPacket p;
  p.readings.resize(37);
  EXPECT_EQ(p.wire_bytes(), 12u + 37u * 4u + 42u);
}

TEST(Packet, CrcDetectsCorruption) {
  net::BlmPacket p;
  p.hub_id = 3;
  p.sequence = 41;
  p.first_monitor = 100;
  p.readings = {1u, 2u, 3u};
  net::seal_packet(p);
  EXPECT_TRUE(net::packet_crc_ok(p));
  p.readings[1] ^= 0x00010000u;  // single flipped bit in flight
  EXPECT_FALSE(net::packet_crc_ok(p));
  p.readings[1] ^= 0x00010000u;
  EXPECT_TRUE(net::packet_crc_ok(p));
  p.sequence ^= 1u;  // header corruption is caught too
  EXPECT_FALSE(net::packet_crc_ok(p));
}

TEST(HubLayout, CoversRingExactlyOnce) {
  const auto spans = net::hub_layout(260, 7);
  ASSERT_EQ(spans.size(), 7u);
  std::size_t covered = 0;
  std::uint16_t cursor = 0;
  for (const auto& [first, count] : spans) {
    EXPECT_EQ(first, cursor);
    covered += count;
    cursor = static_cast<std::uint16_t>(cursor + count);
  }
  EXPECT_EQ(covered, 260u);
  // 260 = 7*37 + 1: one hub gets an extra monitor.
  EXPECT_EQ(spans[0].second, 38u);
  EXPECT_EQ(spans[1].second, 37u);
}

TEST(HubLayout, RejectsDegenerateRequests) {
  EXPECT_THROW(net::hub_layout(3, 7), std::invalid_argument);
  EXPECT_THROW(net::hub_layout(10, 0), std::invalid_argument);
}

TEST(BlmHub, TransmitsItsSpan) {
  net::BlmHub hub(2, 10, 5, net::LinkParams{}, 1);
  std::vector<double> frame(260, 0.0);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = 100'000.0 + static_cast<double>(i);
  }
  const auto d = hub.transmit(7, frame);
  EXPECT_FALSE(d.dropped);
  EXPECT_EQ(d.packet.hub_id, 2);
  EXPECT_EQ(d.packet.sequence, 7u);
  EXPECT_EQ(d.packet.first_monitor, 10);
  ASSERT_EQ(d.packet.readings.size(), 5u);
  EXPECT_NEAR(net::decode_reading(d.packet.readings[0]), 100'010.0, 0.1);
  EXPECT_GT(d.arrival_us, 0.0);
  EXPECT_EQ(hub.packets_sent(), 1u);
}

TEST(BlmHub, DropProbabilityOneDropsEverything) {
  net::LinkParams link;
  link.drop_probability = 1.0;
  net::BlmHub hub(0, 0, 4, link, 2);
  const std::vector<double> frame(4, 1.0);
  const auto d = hub.transmit(0, frame);
  EXPECT_TRUE(d.dropped);
  EXPECT_EQ(hub.packets_dropped(), 1u);
}

TEST(BlmHub, ArrivalIncludesSerializationTime) {
  net::LinkParams slow;
  slow.bandwidth_gbps = 0.001;  // make wire time dominate
  slow.jitter_sigma_us = 0.0;
  net::BlmHub hub(0, 0, 100, slow, 3);
  const std::vector<double> frame(100, 1.0);
  const auto d = hub.transmit(0, frame);
  const double wire_us =
      static_cast<double>(d.packet.wire_bytes()) * 8.0 / (0.001 * 1e3);
  EXPECT_NEAR(d.arrival_us, slow.base_latency_us + wire_us, 1.0);
}

std::vector<net::Delivery> make_deliveries(std::uint32_t seq,
                                           std::size_t monitors,
                                           std::size_t hubs, double value) {
  const auto layout = net::hub_layout(monitors, hubs);
  std::vector<net::Delivery> ds;
  for (std::size_t h = 0; h < hubs; ++h) {
    net::Delivery d;
    d.packet.hub_id = static_cast<std::uint8_t>(h);
    d.packet.sequence = seq;
    d.packet.first_monitor = layout[h].first;
    for (std::uint16_t i = 0; i < layout[h].second; ++i) {
      d.packet.readings.push_back(net::encode_reading(value));
    }
    net::seal_packet(d.packet);
    d.arrival_us = 20.0 + static_cast<double>(h);
    ds.push_back(std::move(d));
  }
  return ds;
}

TEST(FrameAssembler, CompleteFrameUsesLatestArrival) {
  net::FrameAssembler asm_({.monitors = 21, .hubs = 7, .deadline_us = 400.0});
  const auto frame = asm_.assemble(0, make_deliveries(0, 21, 7, 5.0));
  EXPECT_TRUE(frame.complete());
  EXPECT_EQ(frame.packets_used, 7u);
  EXPECT_DOUBLE_EQ(frame.assembly_us, 26.0);  // slowest hub
  for (std::size_t m = 0; m < 21; ++m) EXPECT_NEAR(frame.raw[m], 5.0f, 0.1f);
}

TEST(FrameAssembler, LostPacketFallsBackToLastKnown) {
  net::FrameAssembler asm_({.monitors = 21, .hubs = 7, .deadline_us = 400.0});
  asm_.assemble(0, make_deliveries(0, 21, 7, 9.0));  // prime last-known
  auto ds = make_deliveries(1, 21, 7, 3.0);
  ds[2].dropped = true;
  const auto frame = asm_.assemble(1, ds);
  EXPECT_FALSE(frame.complete());
  EXPECT_EQ(frame.packets_missing, 1u);
  // Hub 2's monitors (6..8) keep the previous value 9; others update to 3.
  EXPECT_NEAR(frame.raw[6], 9.0f, 0.1f);
  EXPECT_NEAR(frame.raw[0], 3.0f, 0.1f);
  // We held the line until the deadline for the missing packet.
  EXPECT_DOUBLE_EQ(frame.assembly_us, 400.0);
}

TEST(FrameAssembler, StragglerBeyondDeadlineCountsAsLost) {
  net::FrameAssembler asm_({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  auto ds = make_deliveries(0, 14, 7, 2.0);
  ds[5].arrival_us = 250.0;
  const auto frame = asm_.assemble(0, ds);
  EXPECT_EQ(frame.packets_missing, 1u);
  EXPECT_EQ(asm_.packets_lost(), 1u);
}

TEST(FrameAssembler, RejectsStaleSequenceWithoutSkippingTheTick) {
  // A stale (or replayed) packet must not crash the tick — it is counted,
  // its hub falls back to last-known values, and the frame still goes out.
  net::FrameAssembler asm_({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  auto ds = make_deliveries(3, 14, 7, 2.0);
  const auto frame = asm_.assemble(4, ds);
  EXPECT_EQ(frame.packets_used, 0u);
  EXPECT_EQ(frame.packets_missing, 7u);
  EXPECT_EQ(frame.packets_rejected, 7u);
  EXPECT_EQ(asm_.counters().sequence_rejects, 7u);
}

TEST(FrameAssembler, RejectsCorruptPacket) {
  net::FrameAssembler asm_({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  auto ds = make_deliveries(0, 14, 7, 2.0);
  ds[3].packet.readings[0] ^= 0x40u;  // bit flip on the wire; CRC now stale
  const auto frame = asm_.assemble(0, ds);
  EXPECT_EQ(frame.packets_used, 6u);
  EXPECT_EQ(frame.packets_missing, 1u);
  EXPECT_EQ(asm_.counters().crc_rejects, 1u);
}

TEST(FrameAssembler, RejectsDuplicateHubDelivery) {
  // A duplicated datagram must not double-count packets_used or overwrite
  // the span twice.
  net::FrameAssembler asm_({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  auto ds = make_deliveries(0, 14, 7, 2.0);
  ds.push_back(ds[4]);  // exact duplicate of hub 4
  const auto frame = asm_.assemble(0, ds);
  EXPECT_TRUE(frame.complete());
  EXPECT_EQ(frame.packets_used, 7u);
  EXPECT_EQ(frame.packets_rejected, 1u);
  EXPECT_EQ(asm_.counters().duplicate_rejects, 1u);
}

TEST(FrameAssembler, MalformedPacketIsCountedNotIndexed) {
  // hub_id/first_monitor/readings.size() are attacker-controlled from the
  // assembler's point of view; a packet disagreeing with the canonical
  // layout must be refused before any indexing happens.
  net::FrameAssembler asm_({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  auto ds = make_deliveries(0, 14, 7, 2.0);
  ds[1].packet.first_monitor = 9000;  // far beyond the ring
  net::seal_packet(ds[1].packet);     // valid CRC: malformation is upstream
  ds[2].packet.hub_id = 200;
  net::seal_packet(ds[2].packet);
  ds[6].packet.readings.resize(1);  // truncated payload
  net::seal_packet(ds[6].packet);
  const auto frame = asm_.assemble(0, ds);
  EXPECT_EQ(frame.packets_used, 4u);
  EXPECT_EQ(asm_.counters().malformed_rejects, 3u);
}

TEST(FrameAssembler, ReorderedDeliveriesAssembleIdentically) {
  net::FrameAssembler a({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  net::FrameAssembler b({.monitors = 14, .hubs = 7, .deadline_us = 100.0});
  auto ds = make_deliveries(0, 14, 7, 2.0);
  auto reversed = ds;
  std::reverse(reversed.begin(), reversed.end());
  const auto fa = a.assemble(0, ds);
  const auto fb = b.assemble(0, reversed);
  EXPECT_EQ(fa.raw, fb.raw);
  EXPECT_EQ(fb.packets_used, 7u);
}

TEST(FrameAssembler, MultiTickOutageAgesThenRecovers) {
  // Sustained hub outage: last-known substitution holds for max_stale_ticks,
  // then the frame is flagged degraded; the first good packet clears it.
  net::AssemblerParams params{.monitors = 14, .hubs = 7, .deadline_us = 100.0};
  params.max_stale_ticks = 2;
  net::FrameAssembler asm_(params);
  asm_.assemble(0, make_deliveries(0, 14, 7, 9.0));  // prime last-known
  EXPECT_EQ(asm_.hub_age(3), 0u);

  for (std::uint32_t t = 1; t <= 4; ++t) {
    auto ds = make_deliveries(t, 14, 7, 3.0);
    ds[3].dropped = true;
    const auto frame = asm_.assemble(t, ds);
    EXPECT_EQ(frame.packets_missing, 1u);
    EXPECT_EQ(asm_.hub_age(3), t);
    EXPECT_EQ(frame.max_staleness_ticks, t);
    // Hub 3's span (monitors 6..7) still carries the primed value.
    EXPECT_NEAR(frame.raw[6], 9.0f, 0.1f);
    EXPECT_NEAR(frame.raw[0], 3.0f, 0.1f);
    // Within the bound the substitution is trusted; beyond it, degraded.
    if (t <= params.max_stale_ticks) {
      EXPECT_FALSE(frame.degraded) << "tick " << t;
      EXPECT_EQ(frame.stale_hubs, 0u);
    } else {
      EXPECT_TRUE(frame.degraded) << "tick " << t;
      EXPECT_EQ(frame.stale_hubs, 1u);
    }
  }

  // Recovery on the first good packet: age resets, degraded clears, and the
  // hub's monitors snap to live data.
  const auto frame = asm_.assemble(5, make_deliveries(5, 14, 7, 4.0));
  EXPECT_TRUE(frame.complete());
  EXPECT_FALSE(frame.degraded);
  EXPECT_EQ(asm_.hub_age(3), 0u);
  EXPECT_NEAR(frame.raw[6], 4.0f, 0.1f);
}

TEST(FrameAssembler, ImplausibleReadingsAreSubstituted) {
  // With a plausibility window configured, saturated counts (all-ones from
  // a dead ADC) keep the monitor's last-known value instead of poisoning
  // the standardized frame.
  net::AssemblerParams params{.monitors = 14, .hubs = 7, .deadline_us = 100.0};
  params.plausible_min = 1.0;
  params.plausible_max = 1e6;
  net::FrameAssembler asm_(params);
  asm_.assemble(0, make_deliveries(0, 14, 7, 9.0));
  auto ds = make_deliveries(1, 14, 7, 3.0);
  ds[0].packet.readings[0] = 0xFFFFFFFFu;  // ~268e6 decoded: saturated
  net::seal_packet(ds[0].packet);
  const auto frame = asm_.assemble(1, ds);
  EXPECT_TRUE(frame.complete());
  EXPECT_NEAR(frame.raw[0], 9.0f, 0.1f);  // substituted
  EXPECT_NEAR(frame.raw[1], 3.0f, 0.1f);  // live
  EXPECT_EQ(asm_.counters().implausible_readings, 1u);
}

TEST(AcnetPublisher, JournalsAndCountsTrips) {
  net::AcnetPublisher acnet({.uplink_latency_us = 45.0, .journal_depth = 2});
  acnet.publish(0, "RR", 1.0, 9.0);
  acnet.publish(1, "none", 0.1, 0.2);
  const auto& msg = acnet.publish(2, "MI", 7.0, 1.0);
  EXPECT_EQ(msg.publish_latency_us, 45.0);
  EXPECT_EQ(acnet.published(), 3u);
  EXPECT_EQ(acnet.trips_mi(), 1u);
  EXPECT_EQ(acnet.trips_rr(), 1u);
  EXPECT_EQ(acnet.journal().size(), 2u);  // bounded
  EXPECT_EQ(acnet.journal().front().sequence, 1u);
}

TEST(FacilityLink, TicksProduceSequencedFrames) {
  net::FacilityParams params;
  net::FacilityLink link(params, 5);
  ASSERT_EQ(link.hubs().size(), 7u);
  const auto f0 = link.tick();
  const auto f1 = link.tick();
  EXPECT_EQ(f0.sequence, 0u);
  EXPECT_EQ(f1.sequence, 1u);
  EXPECT_EQ(f0.raw.shape(), (std::vector<std::size_t>{260, 1}));
  EXPECT_TRUE(f0.complete());
  EXPECT_GT(f0.assembly_us, 0.0);
  EXPECT_LT(f0.assembly_us, params.assembler.deadline_us);
  // Raw magnitudes in the facility regime.
  EXPECT_GT(f0.raw.max_abs(), 100'000.0f);
}

TEST(FacilityLink, DeterministicPerSeed) {
  net::FacilityParams params;
  net::FacilityLink a(params, 9);
  net::FacilityLink b(params, 9);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.tick().raw, b.tick().raw);
  }
}

TEST(FacilityLink, LossyLinkStillDeliversFrames) {
  net::FacilityParams params;
  params.link.drop_probability = 0.5;
  net::FacilityLink link(params, 11);
  std::size_t incomplete = 0;
  for (int i = 0; i < 20; ++i) {
    if (!link.tick().complete()) ++incomplete;
  }
  EXPECT_GT(incomplete, 0u);  // losses happened...
  EXPECT_EQ(link.assembler().frames_assembled(), 20u);  // ...frames kept coming
}

// ---- PacketDecoder: adversarial read() chunking --------------------------
// A TCP/UDS read() returns whatever the kernel has: a packet may arrive one
// byte at a time, split inside any header field, or coalesced with its
// neighbors. Framing must reassemble the identical packet in every case.

std::vector<std::uint8_t> wire_stream(
    const std::vector<net::BlmPacket>& packets) {
  std::vector<std::uint8_t> bytes;
  for (const auto& p : packets) net::append_packet(bytes, p);
  return bytes;
}

std::vector<net::BlmPacket> sealed_ring(std::uint32_t seq, std::size_t monitors,
                                        std::size_t hubs) {
  std::vector<net::BlmPacket> packets;
  const auto layout = net::hub_layout(monitors, hubs);
  for (std::size_t h = 0; h < hubs; ++h) {
    net::BlmPacket p;
    p.hub_id = static_cast<std::uint8_t>(h);
    p.sequence = seq;
    p.first_monitor = layout[h].first;
    for (std::uint16_t i = 0; i < layout[h].second; ++i) {
      p.readings.push_back(net::encode_reading(
          100'000.0 + static_cast<double>(layout[h].first + i)));
    }
    net::seal_packet(p);
    packets.push_back(std::move(p));
  }
  return packets;
}

void expect_same_packet(const net::BlmPacket& got, const net::BlmPacket& want) {
  EXPECT_EQ(got.hub_id, want.hub_id);
  EXPECT_EQ(got.sequence, want.sequence);
  EXPECT_EQ(got.first_monitor, want.first_monitor);
  EXPECT_EQ(got.crc, want.crc);
  EXPECT_EQ(got.readings, want.readings);
  EXPECT_TRUE(net::packet_crc_ok(got));
}

TEST(PacketDecoder, OneByteReadsDecodeIdentically) {
  const auto packets = sealed_ring(3, 21, 7);
  const auto bytes = wire_stream(packets);
  net::PacketDecoder dec;
  std::size_t got = 0;
  for (const auto b : bytes) {
    ASSERT_TRUE(dec.feed(&b, 1));
    while (auto p = dec.next()) {
      expect_same_packet(*p, packets[got]);
      ++got;
    }
  }
  EXPECT_EQ(got, packets.size());
  EXPECT_EQ(dec.pending_bytes(), 0u);
  EXPECT_FALSE(dec.broken());
}

TEST(PacketDecoder, SplitInsideCrcFieldReassembles) {
  const auto packets = sealed_ring(4, 21, 3);
  const auto bytes = wire_stream(packets);
  // The CRC occupies wire bytes [7, 11) of each packet; cut the stream in
  // the middle of the first packet's CRC and again inside its length field.
  for (const std::size_t cut : {9u, 12u}) {
    net::PacketDecoder dec;
    ASSERT_TRUE(dec.feed(bytes.data(), cut));
    EXPECT_EQ(dec.ready(), 0u);  // nothing complete yet
    EXPECT_GT(dec.pending_bytes(), 0u);
    ASSERT_TRUE(dec.feed(bytes.data() + cut, bytes.size() - cut));
    for (const auto& want : packets) {
      auto p = dec.next();
      ASSERT_TRUE(p.has_value());
      expect_same_packet(*p, want);
    }
    EXPECT_FALSE(dec.next().has_value());
  }
}

TEST(PacketDecoder, CoalescedPacketsPlusPartialTailDecodeInOrder) {
  const auto packets = sealed_ring(5, 40, 4);
  auto bytes = wire_stream(packets);
  // One read() delivering three whole packets plus half of the fourth.
  const std::size_t tail = net::packet_wire_size(packets[3]) / 2;
  const std::size_t head = bytes.size() - tail;
  net::PacketDecoder dec;
  ASSERT_TRUE(dec.feed(bytes.data(), head));
  EXPECT_EQ(dec.ready(), 3u);
  ASSERT_TRUE(dec.feed(bytes.data() + head, tail));
  for (const auto& want : packets) {
    auto p = dec.next();
    ASSERT_TRUE(p.has_value());
    expect_same_packet(*p, want);
  }
  EXPECT_EQ(dec.packets_decoded(), 4u);
}

TEST(PacketDecoder, ImplausibleLengthFieldBreaksTheStreamPermanently) {
  net::BlmPacket p = sealed_ring(6, 21, 3)[0];
  std::vector<std::uint8_t> bytes;
  net::append_packet(bytes, p);
  // Corrupt the reading-count field (wire bytes [11, 15)) to an absurd
  // value: framing has no boundaries left to trust after that.
  bytes[11] = 0xff;
  bytes[12] = 0xff;
  bytes[13] = 0xff;
  bytes[14] = 0x7f;
  net::PacketDecoder dec;
  EXPECT_FALSE(dec.feed(bytes.data(), bytes.size()));
  EXPECT_TRUE(dec.broken());
  EXPECT_FALSE(dec.next().has_value());
  // Even pristine further input is refused — the caller must drop the
  // connection, not resynchronize.
  net::BlmPacket fresh = sealed_ring(7, 21, 3)[0];
  std::vector<std::uint8_t> more;
  net::append_packet(more, fresh);
  EXPECT_FALSE(dec.feed(more.data(), more.size()));
  EXPECT_EQ(dec.ready(), 0u);
}

TEST(PacketDecoder, ChunkedStreamFeedsAssemblerToIdenticalFrame) {
  // End-to-end: the same tick's packets, once assembled from pristine
  // deliveries and once rebuilt from a 1-byte-at-a-time wire stream, must
  // produce bit-identical frames.
  const std::size_t monitors = 21;
  const std::size_t hubs = 7;
  const auto packets = sealed_ring(1, monitors, hubs);

  const net::AssemblerParams params{.monitors = monitors, .hubs = hubs};
  net::FrameAssembler direct(params);
  std::vector<net::Delivery> ds;
  for (const auto& p : packets) {
    ds.push_back(net::Delivery{p, 25.0, false});
  }
  const auto want = direct.assemble(1, ds);
  ASSERT_TRUE(want.complete());

  const auto bytes = wire_stream(packets);
  net::PacketDecoder dec;
  std::vector<net::Delivery> rebuilt;
  for (const auto b : bytes) {
    ASSERT_TRUE(dec.feed(&b, 1));
    while (auto p = dec.next()) {
      rebuilt.push_back(net::Delivery{std::move(*p), 25.0, false});
    }
  }
  ASSERT_EQ(rebuilt.size(), hubs);
  net::FrameAssembler chunked(params);
  const auto got = chunked.assemble(1, rebuilt);
  ASSERT_TRUE(got.complete());
  EXPECT_EQ(got.raw, want.raw);
}

}  // namespace
