// Fixed-point semantics tests: round/truncate, saturate/wrap, requantize,
// and parameterized sweeps over widths/integer bits (property-style).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fixed/fixed.hpp"
#include "fixed/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads::fixed;

TEST(FixedFormat, RangeAndEpsilon) {
  const FixedFormat f(16, 7);  // paper default
  EXPECT_EQ(f.frac_bits(), 9);
  EXPECT_DOUBLE_EQ(f.epsilon(), std::ldexp(1.0, -9));
  EXPECT_DOUBLE_EQ(f.max_value(), (std::ldexp(1.0, 15) - 1) / 512.0);
  EXPECT_DOUBLE_EQ(f.min_value(), -64.0);
}

TEST(FixedFormat, TruncateRoundsTowardNegativeInfinity) {
  const FixedFormat f(8, 4, true, QuantMode::kTruncate);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(1.30)), 1.25);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(-1.30)), -1.3125);
}

TEST(FixedFormat, RoundToNearest) {
  const FixedFormat f(8, 4, true, QuantMode::kRound);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(1.30)), 1.3125);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(-1.30)), -1.3125);
}

TEST(FixedFormat, SaturatesAtBounds) {
  const FixedFormat f(8, 4);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(100.0)), f.max_value());
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(-100.0)), f.min_value());
}

TEST(FixedFormat, WrapIsModular) {
  const FixedFormat f(8, 8, true, QuantMode::kTruncate, OverflowMode::kWrap);
  // 8-bit all-integer: 130 wraps to 130 - 256 = -126.
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(130.0)), -126.0);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(-130.0)), 126.0);
}

TEST(FixedFormat, NanQuantizesToZero) {
  const FixedFormat f(16, 7);
  EXPECT_EQ(f.quantize(std::nan("")), 0);
}

TEST(FixedFormat, InfinitySaturates) {
  const FixedFormat f(16, 7);
  EXPECT_EQ(f.quantize(1e300), f.raw_max());
  EXPECT_EQ(f.quantize(-1e300), f.raw_min());
}

TEST(FixedFormat, UnsignedRange) {
  const FixedFormat f(8, 4, /*is_signed=*/false);
  EXPECT_EQ(f.raw_min(), 0);
  EXPECT_EQ(f.raw_max(), 255);
  EXPECT_DOUBLE_EQ(f.to_double(f.quantize(-3.0)), 0.0);
}

TEST(FixedFormat, RequantizeDownShiftTruncates) {
  const FixedFormat to(8, 4, true, QuantMode::kTruncate);
  // raw 0b...0111 at 6 frac bits = 7/64; to 4 frac bits (floor) = 1/16.
  EXPECT_EQ(to.requantize_raw(7, 6), 1);
  EXPECT_EQ(to.requantize_raw(-7, 6), -2);  // floor(-7/4) = -2
}

TEST(FixedFormat, RequantizeDownShiftRounds) {
  const FixedFormat to(8, 4, true, QuantMode::kRound);
  EXPECT_EQ(to.requantize_raw(7, 6), 2);   // 7/4 = 1.75 -> 2
  EXPECT_EQ(to.requantize_raw(-7, 6), -2);  // ties-away from zero
}

TEST(FixedFormat, RequantizeUpShiftWidens) {
  const FixedFormat to(16, 8);
  EXPECT_EQ(to.requantize_raw(3, 2), 3 << 6);
}

TEST(FixedFormat, RequantizeSaturatesOnOverflow) {
  const FixedFormat to(8, 4);
  EXPECT_EQ(to.requantize_raw(std::int64_t{1} << 40, 4), to.raw_max());
}

TEST(FixedFormat, ToStringMatchesAcFixedSpelling) {
  EXPECT_EQ(FixedFormat(16, 7).to_string(), "ac_fixed<16, 7>");
  EXPECT_EQ(FixedFormat(8, 3, false).to_string(), "ac_fixed<8, 3, false>");
}

TEST(FixedFormat, RejectsBadWidth) {
  EXPECT_THROW(FixedFormat(0, 0), std::invalid_argument);
  EXPECT_THROW(FixedFormat(49, 10), std::invalid_argument);
}

TEST(FixedTyped, ArithmeticMatchesDoubleWithinEpsilon) {
  using F = Fixed<16, 7>;
  const F a(1.5);
  const F b(2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -0.75);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 3.375);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.5);
}

TEST(FixedTyped, AdditionSaturates) {
  using F = Fixed<8, 8>;  // integer range [-128, 127]
  const F a(100.0);
  const F b(100.0);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 127.0);
}

TEST(FixedTyped, CrossFormatConversion) {
  const Fixed<18, 10> wide(3.140625);
  using Narrow = Fixed<16, 7>;
  const auto narrow = Narrow::from(wide);
  EXPECT_NEAR(narrow.to_double(), 3.140625, Narrow::format().epsilon());
}

TEST(FixedTyped, ComparisonOperators) {
  using F = Fixed<16, 7>;
  EXPECT_LT(F(1.0), F(2.0));
  EXPECT_EQ(F(1.5), F(1.5));
}

// Property sweep: quantize->dequantize error is bounded by the quantum, for
// every (width, int_bits) combination used anywhere in the paper's sweeps.
class FormatSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FormatSweep, RoundTripErrorBounded) {
  const auto [width, int_bits] = GetParam();
  const FixedFormat f(width, int_bits, true, QuantMode::kRound);
  reads::util::Xoshiro256 rng(314);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(f.min_value(), f.max_value());
    EXPECT_LE(std::fabs(f.apply(v) - v), f.epsilon() * 0.5 + 1e-15)
        << f.to_string() << " v=" << v;
  }
}

TEST_P(FormatSweep, RawStaysInContainerBounds) {
  const auto [width, int_bits] = GetParam();
  const FixedFormat f(width, int_bits);
  reads::util::Xoshiro256 rng(159);
  for (int i = 0; i < 500; ++i) {
    const auto raw = f.quantize(rng.normal(0.0, f.max_value()));
    EXPECT_GE(raw, f.raw_min());
    EXPECT_LE(raw, f.raw_max());
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndIntBits, FormatSweep,
    ::testing::Combine(::testing::Values(8, 10, 12, 14, 16, 18, 20),
                       ::testing::Values(2, 4, 7, 10)),
    [](const auto& param_info) {
      return "w" + std::to_string(std::get<0>(param_info.param)) + "i" +
             std::to_string(std::get<1>(param_info.param));
    });

// Requantization between formats preserves value when the destination can
// represent it exactly.
class RequantSweep : public ::testing::TestWithParam<int> {};

TEST_P(RequantSweep, LosslessWhenRepresentable) {
  const int from_frac = GetParam();
  const FixedFormat to(20, 8, true, QuantMode::kRound);
  for (std::int64_t v : {-5, -1, 0, 1, 3, 7}) {
    // value v at `from_frac` frac bits == v * 2^-from_frac
    const double value = std::ldexp(static_cast<double>(v), -from_frac);
    if (std::fabs(value) > to.max_value()) continue;
    const auto raw = to.requantize_raw(v, from_frac);
    EXPECT_DOUBLE_EQ(to.to_double(raw), value) << "from_frac=" << from_frac;
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, RequantSweep, ::testing::Range(0, 12));

}  // namespace
