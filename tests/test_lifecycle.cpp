// Lifecycle subsystem tests: versioned RCU registry, windowed drift
// detection with hysteresis, and background requalification gates. All on
// a 16-monitor machine + tiny U-Net so the full retrain->quantize->qualify
// path runs in milliseconds.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "blm/generator.hpp"
#include "hls/firmware.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "lifecycle/drift.hpp"
#include "lifecycle/registry.hpp"
#include "lifecycle/requalify.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "train/standardize.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

blm::MachineConfig tiny_machine() {
  auto cfg = blm::MachineConfig::fermilab_like();
  cfg.monitors = 16;
  cfg.mi.source_positions = {2, 9};
  cfg.rr.source_positions = {5, 13};
  return cfg;
}

nn::Model tiny_unet() {
  return nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
}

lifecycle::RequalifyConfig tiny_requalify_config() {
  lifecycle::RequalifyConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 8;
  cfg.holdout_fraction = 0.25;
  cfg.reuse = {};  // the deployed plan is sized for the 260-monitor U-Net
  cfg.min_quant_accuracy = 0.5;
  cfg.max_mse_ratio = 1.05;
  return cfg;
}

std::vector<blm::BlmFrame> tiny_frames(std::size_t n, std::uint64_t seed) {
  blm::FrameGenerator gen(tiny_machine(), seed);
  std::vector<blm::BlmFrame> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(gen.next());
  return out;
}

/// An artifact with randomly initialized weights (enough structure for
/// registry tests; requalification tests build trained ones).
lifecycle::ModelArtifact random_artifact(std::uint64_t seed) {
  auto model = tiny_unet();
  nn::init_he_uniform(model, seed);
  auto frames = tiny_frames(8, seed + 1);
  std::vector<Tensor> raws;
  for (const auto& f : frames) raws.push_back(f.raw);
  train::Standardizer standardizer;
  standardizer.fit_global(raws);
  std::vector<Tensor> calib;
  for (const auto& r : raws) calib.push_back(standardizer.transform(r));
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(
      model, hls::profile_model(model, calib), 16);
  auto quantized = std::make_shared<const hls::QuantizedModel>(
      hls::compile(model, cfg));
  return lifecycle::ModelArtifact(std::move(model), std::move(standardizer),
                                  std::move(quantized));
}

// ---------------------------------------------------------- ModelRegistry

TEST(ModelRegistry, PublishAssignsDenseVersionsAndContentHashes) {
  lifecycle::ModelRegistry registry;
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.size(), 0u);

  auto v1 = registry.publish(random_artifact(1));
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->content_hash, nn::weights_hash(v1->model));
  EXPECT_NE(v1->content_hash, 0u);
  EXPECT_EQ(registry.current(), v1);

  auto v2 = registry.publish(random_artifact(2));
  EXPECT_EQ(v2->version, 2u);
  EXPECT_NE(v2->content_hash, v1->content_hash);
  EXPECT_EQ(registry.current(), v2);
  EXPECT_EQ(registry.size(), 2u);

  EXPECT_EQ(registry.version(1), v1);
  EXPECT_EQ(registry.version(2), v2);
  EXPECT_EQ(registry.version(3), nullptr);
  EXPECT_EQ(registry.version(0), nullptr);
}

TEST(ModelRegistry, RejectsArtifactWithoutFirmware) {
  lifecycle::ModelRegistry registry;
  auto artifact = random_artifact(3);
  artifact.quantized = nullptr;
  EXPECT_THROW(registry.publish(std::move(artifact)), std::invalid_argument);
}

TEST(ModelRegistry, RollbackWalksBackThroughHistory) {
  lifecycle::ModelRegistry registry;
  EXPECT_EQ(registry.rollback(), nullptr);  // nothing published yet

  registry.publish(random_artifact(4));
  registry.publish(random_artifact(5));
  auto back = registry.rollback();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->version, 1u);
  EXPECT_EQ(registry.current()->version, 1u);

  // No generation before v1: rollback refuses and current is unchanged.
  EXPECT_EQ(registry.rollback(), nullptr);
  EXPECT_EQ(registry.current()->version, 1u);

  // History survives a rollback: v2 is still addressable and a new publish
  // continues the dense numbering.
  EXPECT_NE(registry.version(2), nullptr);
  EXPECT_EQ(registry.publish(random_artifact(6))->version, 3u);
}

TEST(ModelRegistry, PersistsWeightsLoadableByContentHash) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "reads_registry_test";
  std::filesystem::remove_all(dir);
  lifecycle::ModelRegistry registry(dir.string());
  auto v1 = registry.publish(random_artifact(7));

  std::filesystem::path expect;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    expect = entry.path();
  }
  ASSERT_FALSE(expect.empty());
  EXPECT_NE(expect.string().find("v1_"), std::string::npos);

  auto reloaded = tiny_unet();
  nn::load_weights(reloaded, expect.string());
  EXPECT_EQ(nn::weights_hash(reloaded), v1->content_hash);
  std::filesystem::remove_all(dir);
}

TEST(ModelRegistry, ConcurrentReadersNeverSeeTornState) {
  lifecycle::ModelRegistry registry;
  registry.publish(random_artifact(10));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_seen{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto cur = registry.current();
        ASSERT_NE(cur, nullptr);
        ASSERT_GE(cur->version, 1u);
        ASSERT_NE(cur->quantized, nullptr);
        std::uint64_t seen = max_seen.load(std::memory_order_relaxed);
        while (cur->version > seen &&
               !max_seen.compare_exchange_weak(seen, cur->version)) {
        }
      }
    });
  }
  for (std::uint64_t i = 0; i < 6; ++i) {
    registry.publish(random_artifact(20 + i));
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(registry.current()->version, 7u);
  EXPECT_LE(max_seen.load(), 7u);
}

// ----------------------------------------------------------- DriftMonitor

constexpr std::size_t kMon = 16;

Tensor const_frame(float v) {
  Tensor t({kMon, 1});
  for (auto& x : t.flat()) x = v;
  return t;
}

Tensor const_probs(float p) {
  Tensor t({kMon, 2});
  for (auto& x : t.flat()) x = p;
  return t;
}

void feed_windows(lifecycle::DriftMonitor& m, std::size_t windows,
                  float input, float prob) {
  const std::size_t w = m.config().window;
  for (std::size_t i = 0; i < windows * w; ++i) {
    m.observe(const_frame(input), const_probs(prob));
  }
}

lifecycle::DriftConfig small_drift_config() {
  lifecycle::DriftConfig cfg;
  cfg.window = 8;
  cfg.baseline_windows = 1;
  cfg.trigger_threshold = 4.0;
  cfg.clear_threshold = 2.0;
  cfg.consecutive = 2;
  return cfg;
}

TEST(DriftMonitor, StableStreamNeverTriggers) {
  lifecycle::DriftMonitor m(small_drift_config());
  feed_windows(m, 6, 0.25f, 0.2f);
  EXPECT_FALSE(m.triggered());
  const auto snap = m.snapshot();
  EXPECT_TRUE(snap.baseline_frozen);
  EXPECT_EQ(snap.alarm_streak, 0u);
  EXPECT_DOUBLE_EQ(snap.score, 0.0);
  EXPECT_EQ(snap.windows, 5u);  // 6 minus the baseline window
}

TEST(DriftMonitor, InputShiftLatchesAfterConsecutiveWindows) {
  lifecycle::DriftMonitor m(small_drift_config());
  feed_windows(m, 2, 0.25f, 0.2f);  // baseline + one quiet window
  EXPECT_FALSE(m.triggered());

  feed_windows(m, 1, 1.25f, 0.2f);  // first alarmed window: streak, no latch
  EXPECT_FALSE(m.triggered());
  EXPECT_EQ(m.snapshot().alarm_streak, 1u);
  EXPECT_GE(m.snapshot().input_shift, m.config().trigger_threshold);

  feed_windows(m, 1, 1.25f, 0.2f);  // second consecutive: latched
  EXPECT_TRUE(m.triggered());

  // Latched: returning to nominal does not clear it.
  feed_windows(m, 2, 0.25f, 0.2f);
  EXPECT_TRUE(m.triggered());
}

TEST(DriftMonitor, OutputShiftAloneLatches) {
  lifecycle::DriftMonitor m(small_drift_config());
  feed_windows(m, 2, 0.25f, 0.2f);
  feed_windows(m, 2, 0.25f, 0.6f);  // inputs nominal, output mass tripled
  EXPECT_TRUE(m.triggered());
  EXPECT_GE(m.snapshot().output_shift, m.config().trigger_threshold);
}

TEST(DriftMonitor, HysteresisSingleSpikeWindowDoesNotLatch) {
  lifecycle::DriftMonitor m(small_drift_config());
  feed_windows(m, 2, 0.25f, 0.2f);
  feed_windows(m, 1, 1.25f, 0.2f);  // one alarmed window...
  feed_windows(m, 1, 0.25f, 0.2f);  // ...cleared before the second
  EXPECT_FALSE(m.triggered());
  EXPECT_EQ(m.snapshot().alarm_streak, 0u);
  // The same spike pattern repeated never accumulates a streak of 2.
  for (int i = 0; i < 4; ++i) {
    feed_windows(m, 1, 1.25f, 0.2f);
    feed_windows(m, 1, 0.25f, 0.2f);
  }
  EXPECT_FALSE(m.triggered());
}

TEST(DriftMonitor, RearmClearsLatchAndAdoptsNewNormal) {
  lifecycle::DriftMonitor m(small_drift_config());
  feed_windows(m, 2, 0.25f, 0.2f);
  feed_windows(m, 2, 1.25f, 0.2f);
  ASSERT_TRUE(m.triggered());

  m.rearm();
  EXPECT_FALSE(m.triggered());
  EXPECT_FALSE(m.snapshot().baseline_frozen);

  // The shifted level is the new baseline: staying there is quiet...
  feed_windows(m, 4, 1.25f, 0.2f);
  EXPECT_FALSE(m.triggered());
  // ...and shifting AGAIN latches again (the cycle can repeat).
  feed_windows(m, 2, 2.5f, 0.2f);
  EXPECT_TRUE(m.triggered());
}

TEST(DriftMonitor, ValidatesConfigAndGeometry) {
  lifecycle::DriftConfig bad = small_drift_config();
  bad.window = 0;
  EXPECT_THROW(lifecycle::DriftMonitor{bad}, std::invalid_argument);
  bad = small_drift_config();
  bad.clear_threshold = bad.trigger_threshold + 1.0;
  EXPECT_THROW(lifecycle::DriftMonitor{bad}, std::invalid_argument);

  lifecycle::DriftMonitor m(small_drift_config());
  m.observe(const_frame(0.1f), const_probs(0.2f));
  Tensor wrong({kMon + 1, 1});
  for (auto& x : wrong.flat()) x = 0.1f;
  EXPECT_THROW(m.observe(wrong, const_probs(0.2f)), std::invalid_argument);
  Tensor bad_probs({kMon, 1});
  EXPECT_THROW(m.observe(const_frame(0.1f), bad_probs),
               std::invalid_argument);
}

// ------------------------------------------------------------ Requalifier

TEST(Requalifier, ColdStartTrainsAndQualifies) {
  lifecycle::Requalifier req(tiny_requalify_config(), tiny_unet);
  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(32, 100);
  request.seed = 5;

  auto result = req.run(std::move(request));
  ASSERT_TRUE(result.qualified) << result.report.reason;
  ASSERT_TRUE(result.artifact.has_value());
  EXPECT_TRUE(result.report.passed);
  EXPECT_EQ(result.report.reason, "qualified");
  EXPECT_EQ(result.report.holdout_frames, 8u);
  EXPECT_GT(result.report.quant_accuracy_mi, 0.5);
  EXPECT_GT(result.report.quant_accuracy_rr, 0.5);
  EXPECT_GT(result.report.holdout_mse, 0.0);
  EXPECT_NE(result.artifact->quantized, nullptr);
}

TEST(Requalifier, WarmStartBeatsItsIncumbentOnDriftedTraffic) {
  lifecycle::Requalifier req(tiny_requalify_config(), tiny_unet);

  lifecycle::RequalifyRequest first;
  first.frames = tiny_frames(32, 100);
  first.seed = 5;
  auto incumbent = req.run(std::move(first));
  ASSERT_TRUE(incumbent.qualified);

  // Drifted machine: different loss geometry than the incumbent saw.
  auto drifted = tiny_machine();
  drifted.mi.source_positions = {6, 14};
  drifted.mi.event_probability =
      std::min(1.0, drifted.mi.event_probability * 1.5);
  blm::FrameGenerator gen(drifted, 200);
  lifecycle::RequalifyRequest second;
  for (int i = 0; i < 32; ++i) second.frames.push_back(gen.next());
  second.seed = 6;
  second.incumbent = std::make_shared<const lifecycle::ModelArtifact>(
      std::move(*incumbent.artifact));

  auto result = req.run(std::move(second));
  ASSERT_TRUE(result.qualified) << result.report.reason;
  EXPECT_LE(result.report.holdout_mse,
            1.05 * result.report.incumbent_holdout_mse);
}

TEST(Requalifier, CorruptingMutatorIsRejectedByTheGates) {
  lifecycle::Requalifier req(tiny_requalify_config(), tiny_unet);

  lifecycle::RequalifyRequest first;
  first.frames = tiny_frames(32, 100);
  first.seed = 5;
  auto incumbent = req.run(std::move(first));
  ASSERT_TRUE(incumbent.qualified);
  auto incumbent_ptr = std::make_shared<const lifecycle::ModelArtifact>(
      std::move(*incumbent.artifact));

  lifecycle::RequalifyRequest second;
  second.frames = tiny_frames(32, 300);
  second.seed = 6;
  second.incumbent = incumbent_ptr;
  second.mutate = [](nn::Model& m) {
    for (auto* p : m.parameters()) {
      for (std::size_t i = 0; i < p->numel(); ++i) p->data()[i] *= 64.0f;
    }
  };

  auto result = req.run(std::move(second));
  EXPECT_FALSE(result.qualified);
  EXPECT_FALSE(result.artifact.has_value());
  EXPECT_FALSE(result.report.passed);
  EXPECT_NE(result.report.reason, "qualified");
}

TEST(Requalifier, AutotuneStagePublishesTunedPlanThroughTheGates) {
  auto cfg = tiny_requalify_config();
  cfg.autotune = true;
  cfg.tune.budget = 6;
  cfg.tune.proposals_per_round = 12;
  cfg.tune.shortlist = 2;
  cfg.tune.greedy_descent_steps = 2;
  lifecycle::Requalifier req(cfg, tiny_unet);

  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(32, 100);
  request.seed = 5;
  auto result = req.run(std::move(request));
  ASSERT_TRUE(result.qualified) << result.report.reason;
  EXPECT_TRUE(result.report.autotuned);
  EXPECT_EQ(result.report.reject_code, lifecycle::RejectCode::kNone);
  // The compiled plan was measured against the budget before publication.
  EXPECT_GT(result.report.predicted_latency_ms, 0.0);
  EXPECT_GT(result.report.alut_utilization, 0.0);
  EXPECT_EQ(req.budget_rejects(), 0u);
  // Determinism: the same request reproduces the same tuned plan.
  lifecycle::RequalifyRequest again;
  again.frames = tiny_frames(32, 100);
  again.seed = 5;
  auto result2 = req.run(std::move(again));
  ASSERT_TRUE(result2.qualified);
  EXPECT_EQ(result2.report.tuned_dominates, result.report.tuned_dominates);
  EXPECT_DOUBLE_EQ(result2.report.predicted_latency_ms,
                   result.report.predicted_latency_ms);
}

TEST(Requalifier, BudgetGuardRejectsViolatingFirmwarePreTraffic) {
  // Forced violation: a device far too small for even the tiny U-Net, so
  // whatever plan the autotune stage picks (or falls back to) compiles to
  // firmware that breaks the resource budget. The guard must reject it
  // before it can ever serve traffic, with a counted reason code.
  auto cfg = tiny_requalify_config();
  cfg.autotune = true;
  cfg.tune.budget = 4;
  cfg.tune.proposals_per_round = 8;
  cfg.tune.shortlist = 2;
  cfg.tune.greedy_descent_steps = 1;
  cfg.tune_eval.device.alms = 1000;
  cfg.tune_eval.device.aluts = 2000;
  cfg.tune_eval.device.dsp_blocks = 4;
  cfg.tune_eval.device.m20k_blocks = 8;
  cfg.tune_eval.device.bram_bits = 8 * 20480;
  lifecycle::Requalifier req(cfg, tiny_unet);

  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(32, 100);
  request.seed = 5;
  auto result = req.run(std::move(request));
  EXPECT_FALSE(result.qualified);
  EXPECT_FALSE(result.artifact.has_value());
  EXPECT_EQ(result.report.reject_code, lifecycle::RejectCode::kResourceBudget);
  EXPECT_EQ(lifecycle::to_string(result.report.reject_code),
            "resource_budget");
  EXPECT_EQ(req.budget_rejects(), 1u);
  EXPECT_NE(result.report.reason.find("resource budget"), std::string::npos)
      << result.report.reason;
}

TEST(Requalifier, DeadlineGuardRejectsViaMutateHlsHook) {
  // The mutate_hls fault-injection hook serializes every layer to reuse
  // mults_per_output after the autotune stage; on the measured estimate
  // the firmware then misses an aggressive deadline and must be rejected.
  auto cfg = tiny_requalify_config();
  cfg.enforce_budget = true;
  cfg.tune_eval.deadline_ms = 1e-4;
  lifecycle::Requalifier req(cfg, tiny_unet);

  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(32, 100);
  request.seed = 5;
  request.mutate_hls = [](hls::HlsConfig& hls_cfg) {
    hls_cfg.reuse.default_reuse = 1u << 16;  // clamped to full serialization
    hls_cfg.reuse.overrides.clear();
  };
  auto result = req.run(std::move(request));
  EXPECT_FALSE(result.qualified);
  EXPECT_EQ(result.report.reject_code, lifecycle::RejectCode::kDeadline);
  EXPECT_EQ(lifecycle::to_string(result.report.reject_code), "deadline");
  EXPECT_FALSE(result.report.autotuned);  // enforce_budget alone, no tuner
  EXPECT_EQ(req.budget_rejects(), 1u);
}

TEST(Requalifier, RejectsRequestsWithTooFewFrames) {
  lifecycle::Requalifier req(tiny_requalify_config(), tiny_unet);
  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(4, 100);
  EXPECT_THROW(req.run(std::move(request)), std::invalid_argument);
}

TEST(Requalifier, BackgroundSubmitRunsOnWorkerAndReportsBusy) {
  lifecycle::Requalifier req(tiny_requalify_config(), tiny_unet);
  EXPECT_FALSE(req.busy());
  EXPECT_EQ(req.completed(), 0u);

  std::promise<lifecycle::RequalifyResult> done;
  auto future = done.get_future();
  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(32, 100);
  request.seed = 5;
  ASSERT_TRUE(req.submit(std::move(request), [&done](auto result) {
    done.set_value(std::move(result));
  }));

  // A second submission while the worker is training is refused (the
  // manager retries on a later tick with fresher frames).
  lifecycle::RequalifyRequest rival;
  rival.frames = tiny_frames(32, 101);
  EXPECT_FALSE(req.submit(std::move(rival), [](auto) {}));

  auto result = future.get();
  EXPECT_TRUE(result.qualified) << result.report.reason;
  EXPECT_EQ(req.completed(), 1u);
  EXPECT_FALSE(req.busy());
}

TEST(Requalifier, WorkerSurvivesThrowingJobAndReportsFailure) {
  lifecycle::Requalifier req(tiny_requalify_config(), tiny_unet);
  std::promise<lifecycle::RequalifyResult> done;
  auto future = done.get_future();
  lifecycle::RequalifyRequest request;
  request.frames = tiny_frames(4, 100);  // too few: run() throws inside
  ASSERT_TRUE(req.submit(std::move(request), [&done](auto result) {
    done.set_value(std::move(result));
  }));
  auto result = future.get();
  EXPECT_FALSE(result.qualified);
  EXPECT_NE(result.report.reason.find("requalification error"),
            std::string::npos);

  // The worker is alive and accepts the next job.
  std::promise<lifecycle::RequalifyResult> again;
  auto again_future = again.get_future();
  lifecycle::RequalifyRequest good;
  good.frames = tiny_frames(32, 100);
  good.seed = 5;
  ASSERT_TRUE(req.submit(std::move(good), [&again](auto result) {
    again.set_value(std::move(result));
  }));
  EXPECT_TRUE(again_future.get().qualified);
}

}  // namespace
