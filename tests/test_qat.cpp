// Quantization-aware training tests: weight projection semantics and the
// end-to-end property that QAT leaves weights exactly representable while
// still fitting the task.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fixed/format.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "nn/layers/activations.hpp"
#include "nn/layers/dense.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/qat.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

/// Every weight must sit exactly on some `bits`-wide fixed-point grid.
bool weights_on_grid(nn::Model& model, int bits) {
  for (auto* p : model.parameters()) {
    const double max_abs = p->max_abs();
    int int_bits = 1;
    if (max_abs > 0.0) {
      int_bits = std::max(
          1, static_cast<int>(std::ceil(std::log2(max_abs * (1.0 + 1e-9)))) + 1);
    }
    int_bits = std::min(int_bits, bits);
    const fixed::FixedFormat fmt(bits, int_bits, true,
                                 fixed::QuantMode::kRound);
    for (std::size_t i = 0; i < p->numel(); ++i) {
      if (std::fabs(fmt.apply((*p)[i]) - (*p)[i]) > 1e-9) return false;
    }
  }
  return true;
}

TEST(Qat, ProjectionLandsWeightsOnGrid) {
  auto model = nn::build_mlp({.inputs = 8, .hidden = 6, .outputs = 4});
  nn::init_he_uniform(model, 3);
  EXPECT_FALSE(weights_on_grid(model, 10));  // float init is off-grid
  const double moved = train::project_weights(model, 10);
  EXPECT_GT(moved, 0.0);
  EXPECT_TRUE(weights_on_grid(model, 10));
}

TEST(Qat, ProjectionIsIdempotent) {
  auto model = nn::build_mlp({.inputs = 8, .hidden = 6, .outputs = 4});
  nn::init_he_uniform(model, 5);
  train::project_weights(model, 12);
  const double second = train::project_weights(model, 12);
  EXPECT_EQ(second, 0.0);
}

TEST(Qat, ProjectionDistanceBoundedByQuantum) {
  auto model = nn::build_mlp({.inputs = 8, .hidden = 6, .outputs = 4});
  nn::init_he_uniform(model, 7);
  // With int bits sized from max |w|, the rounding move is at most half of
  // the largest tensor quantum: 2^-(bits - int_bits - 1).
  const double moved = train::project_weights(model, 8);
  EXPECT_LT(moved, 0.5);  // generous bound for 8-bit weights with |w| < 2
}

TEST(Qat, FitsTinyTaskAndStaysOnGrid) {
  nn::Model model("in", {1, 4});
  model.add("d", std::make_unique<nn::Dense>(4, 4), {"in"});
  model.add("s", std::make_unique<nn::Sigmoid>());
  nn::init_he_uniform(model, 9);

  util::Xoshiro256 rng(10);
  train::Dataset data;
  for (int i = 0; i < 48; ++i) {
    Tensor x({1, 4});
    Tensor y({1, 4});
    for (std::size_t j = 0; j < 4; ++j) {
      x[j] = static_cast<float>(rng.normal());
      y[j] = 1.0f / (1.0f + std::exp(-2.0f * x[j]));
    }
    data.add(std::move(x), std::move(y));
  }

  train::MseLoss loss;
  train::Adam adam(3e-2);
  train::QatConfig qat;
  qat.weight_bits = 10;
  qat.train.epochs = 40;
  qat.train.batch_size = 8;
  const auto result = train::qat_fit(model, loss, adam, data, qat);
  EXPECT_LT(result.final_loss(), result.epoch_loss.front() * 0.5);
  EXPECT_TRUE(weights_on_grid(model, 10));
}

TEST(Qat, AfterBatchHookChains) {
  nn::Model model("in", {1, 2});
  model.add("d", std::make_unique<nn::Dense>(2, 1), {"in"});
  nn::init_he_uniform(model, 1);
  train::Dataset data;
  data.add(Tensor({1, 2}), Tensor({1, 1}));
  train::MseLoss loss;
  train::Sgd sgd(0.01);
  train::QatConfig qat;
  qat.weight_bits = 12;
  qat.train.epochs = 2;
  qat.train.batch_size = 1;
  std::size_t hook_calls = 0;
  qat.train.after_batch = [&] { ++hook_calls; };
  train::qat_fit(model, loss, sgd, data, qat);
  EXPECT_EQ(hook_calls, 2u);  // chained through the projection hook
}

}  // namespace
