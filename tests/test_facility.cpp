// FacilityNode integration tests: the end-to-end tick (hubs -> assembler ->
// SoC -> ACNET) with budget accounting and loss tolerance.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/facility_node.hpp"

namespace {

using namespace reads;

core::FacilityNodeConfig tiny_config(const std::string& tag) {
  core::FacilityNodeConfig cfg;
  cfg.deblend.model.train_frames = 24;
  cfg.deblend.model.epochs = 2;
  cfg.deblend.model.batch_size = 8;
  cfg.deblend.model.seed = 999;
  cfg.deblend.model.cache_dir = ::testing::TempDir() + "/facility-" + tag;
  cfg.deblend.calibration_frames = 8;
  std::filesystem::remove_all(cfg.deblend.model.cache_dir);
  return cfg;
}

TEST(FacilityNode, TicksEndToEndWithinBudget) {
  auto node = core::FacilityNode::build(tiny_config("budget"));
  for (int i = 0; i < 4; ++i) {
    const auto report = node.tick();
    EXPECT_EQ(report.sequence, static_cast<std::uint32_t>(i));
    EXPECT_TRUE(report.frame_complete);
    EXPECT_GT(report.network_us, 0.0);
    EXPECT_GT(report.publish_us, 0.0);
    EXPECT_NEAR(report.end_to_end_ms,
                report.network_us / 1e3 + report.soc_ms +
                    report.publish_us / 1e3,
                1e-9);
    EXPECT_TRUE(report.deadline_met);
  }
  EXPECT_EQ(node.acnet().published(), 4u);
}

TEST(FacilityNode, AcnetJournalRecordsVerdicts) {
  auto node = core::FacilityNode::build(tiny_config("journal"));
  const auto report = node.tick();
  ASSERT_EQ(node.acnet().journal().size(), 1u);
  const auto& msg = node.acnet().journal().front();
  EXPECT_EQ(msg.verdict, std::string(core::to_string(report.decision.target)));
  EXPECT_DOUBLE_EQ(msg.mi_score, report.decision.mi_score);
}

TEST(FacilityNode, SurvivesLossyNetwork) {
  auto cfg = tiny_config("lossy");
  cfg.facility.link.drop_probability = 0.3;
  auto node = core::FacilityNode::build(cfg);
  std::size_t incomplete = 0;
  for (int i = 0; i < 8; ++i) {
    const auto report = node.tick();
    if (!report.frame_complete) ++incomplete;
    // A verdict still goes out every tick (machine protection requirement).
    EXPECT_EQ(node.acnet().published(), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_GT(incomplete, 0u);
}

}  // namespace
