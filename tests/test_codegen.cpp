// Code-generator tests: the emitted HLS project must be structurally
// complete and consistent with the firmware it was generated from.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "hls/codegen.hpp"
#include "hls/profiler.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;

hls::FirmwareModel tiny_firmware() {
  static auto fw = [] {
    auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
    nn::init_he_uniform(model, 7);
    util::Xoshiro256 rng(8);
    std::vector<tensor::Tensor> calib;
    for (int i = 0; i < 4; ++i) {
      tensor::Tensor t({16, 1});
      for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
      calib.push_back(std::move(t));
    }
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(model, hls::profile_model(model, calib), 16);
    return hls::compile(model, cfg);
  }();
  return fw;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Codegen, ParametersDeclareEveryLayerType) {
  const auto fw = tiny_firmware();
  const auto project = hls::generate_project(fw, "unet_ip");
  for (const auto& l : fw.layers) {
    EXPECT_NE(project.parameters_h.find(l.name + "_act_t"), std::string::npos)
        << l.name;
    if (l.has_weights()) {
      EXPECT_NE(project.parameters_h.find(l.name + "_weight_t"),
                std::string::npos)
          << l.name;
    }
  }
  EXPECT_NE(project.parameters_h.find("kInputValues = 16"), std::string::npos);
  EXPECT_NE(project.parameters_h.find("kOutputValues = 32"), std::string::npos);
}

TEST(Codegen, ParameterTypesCarryTheQuantPlan) {
  const auto fw = tiny_firmware();
  const auto project = hls::generate_project(fw);
  const auto& head = fw.layer("head");
  std::ostringstream expected;
  expected << "typedef ac_fixed<" << head.quant.activation.width << ", "
           << head.quant.activation.int_bits << ", true, AC_RND, AC_SAT> "
           << "head_act_t;";
  EXPECT_NE(project.parameters_h.find(expected.str()), std::string::npos);
}

TEST(Codegen, WeightsMatchFirmwareWordForWord) {
  const auto fw = tiny_firmware();
  const auto project = hls::generate_project(fw);
  const auto& enc1a = fw.layer("enc1a");
  std::ostringstream decl;
  decl << "static const int32_t w_enc1a[" << enc1a.weights_raw.size() << "]";
  EXPECT_NE(project.weights_h.find(decl.str()), std::string::npos);
  // Spot-check the first weight value appears right after the declaration.
  const auto pos = project.weights_h.find(decl.str());
  const auto first = std::to_string(enc1a.weights_raw.front());
  EXPECT_NE(project.weights_h.find(first, pos), std::string::npos);
}

TEST(Codegen, FirmwareCallsEveryLayerOnce) {
  const auto fw = tiny_firmware();
  const auto project = hls::generate_project(fw, "unet_ip");
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "conv_1d_same<"), 10u);
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "dense_pointwise<"), 1u);
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "maxpool_1d<"), 2u);
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "upsample_1d<"), 2u);
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "concat_channels<"), 2u);
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "relu<"), 10u);
  EXPECT_EQ(count_occurrences(project.firmware_cpp, "sigmoid_lut<"), 1u);
  EXPECT_NE(project.firmware_cpp.find("component void unet_ip("),
            std::string::npos);
}

TEST(Codegen, LayerLibraryHasEveryTemplate) {
  const auto project = hls::generate_project(tiny_firmware());
  for (const char* fn :
       {"read_input", "write_output", "dense_pointwise", "conv_1d_same",
        "batchnorm_scale_shift", "maxpool_1d", "upsample_1d",
        "concat_channels", "relu", "sigmoid_lut", "flatten"}) {
    EXPECT_NE(project.nnet_layers_h.find(fn), std::string::npos) << fn;
  }
  EXPECT_NE(project.nnet_layers_h.find("#pragma unroll"), std::string::npos);
}

TEST(Codegen, WriteProjectEmitsAllFiles) {
  const auto dir = ::testing::TempDir() + "/hls-project";
  std::filesystem::remove_all(dir);
  hls::write_project(tiny_firmware(), dir, "unet_ip");
  for (const char* f : {"parameters.h", "weights.h", "nnet_layers.h",
                        "firmware.cpp", "README.txt"}) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / f)) << f;
  }
  std::ifstream in(std::filesystem::path(dir) / "firmware.cpp");
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("unet_ip"), std::string::npos);
}

TEST(Codegen, DeterministicOutput) {
  const auto a = hls::generate_project(tiny_firmware());
  const auto b = hls::generate_project(tiny_firmware());
  EXPECT_EQ(a.firmware_cpp, b.firmware_cpp);
  EXPECT_EQ(a.weights_h, b.weights_h);
}

}  // namespace
