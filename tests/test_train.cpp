// Trainer stack tests: losses (values + gradients), optimizers (analytic
// convergence on a quadratic), standardizer, dataset plumbing, and a small
// end-to-end fit that must drive the loss down.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "nn/layers/activations.hpp"
#include "nn/layers/dense.hpp"
#include "nn/model.hpp"
#include "train/dataset.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/standardize.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

TEST(MseLoss, ValueAndGradient) {
  train::MseLoss mse;
  const auto pred = Tensor::from({1, 2}, {1.0f, 3.0f});
  const auto target = Tensor::from({1, 2}, {0.0f, 0.0f});
  Tensor grad;
  EXPECT_DOUBLE_EQ(mse.compute(pred, target, grad), 5.0);
  EXPECT_FLOAT_EQ(grad[0], 1.0f);   // 2*(1-0)/2
  EXPECT_FLOAT_EQ(grad[1], 3.0f);
}

TEST(BceLoss, PerfectPredictionNearZeroLoss) {
  train::BceLoss bce;
  const auto pred = Tensor::from({1, 2}, {0.9999f, 0.0001f});
  const auto target = Tensor::from({1, 2}, {1.0f, 0.0f});
  Tensor grad;
  EXPECT_LT(bce.compute(pred, target, grad), 1e-3);
}

TEST(BceLoss, GradientMatchesFiniteDifference) {
  train::BceLoss bce;
  auto pred = Tensor::from({1, 2}, {0.3f, 0.7f});
  const auto target = Tensor::from({1, 2}, {1.0f, 0.0f});
  Tensor grad;
  bce.compute(pred, target, grad);
  const float eps = 1e-4f;
  for (std::size_t i = 0; i < 2; ++i) {
    Tensor g2;
    pred[i] += eps;
    const double lp = bce.compute(pred, target, g2);
    pred[i] -= 2 * eps;
    const double lm = bce.compute(pred, target, g2);
    pred[i] += eps;
    EXPECT_NEAR(grad[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

TEST(Losses, ShapeMismatchThrows) {
  train::MseLoss mse;
  Tensor grad;
  EXPECT_THROW(mse.compute(Tensor({1, 2}), Tensor({2, 1}), grad),
               std::invalid_argument);
}

/// Minimize f(w) = (w - 3)^2 with each optimizer via a fake 1-param model.
template <typename Opt>
double minimize_quadratic(Opt&& opt, int steps) {
  Tensor w({1});
  std::vector<Tensor*> params{&w};
  nn::GradStore grads(std::vector<nn::Shape>{{1}});
  for (int i = 0; i < steps; ++i) {
    grads.tensors()[0][0] = 2.0f * (w[0] - 3.0f);
    opt.step(params, grads);
  }
  return w[0];
}

TEST(Sgd, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic(train::Sgd(0.1), 100), 3.0, 1e-4);
}

TEST(SgdMomentum, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic(train::Sgd(0.05, 0.9), 200), 3.0, 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic(train::Adam(0.1), 300), 3.0, 1e-3);
}

TEST(Optimizers, RejectBadLayout) {
  train::Adam adam(0.1);
  Tensor w({2});
  std::vector<Tensor*> params{&w};
  nn::GradStore grads(std::vector<nn::Shape>{{3}});
  EXPECT_THROW(adam.step(params, grads), std::invalid_argument);
}

TEST(Optimizers, RejectNonPositiveLr) {
  EXPECT_THROW(train::Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(train::Adam(-1.0), std::invalid_argument);
}

TEST(Standardizer, PerFeatureTransformIsZeroMeanUnitStd) {
  util::Xoshiro256 rng(5);
  std::vector<Tensor> frames;
  for (int i = 0; i < 200; ++i) {
    Tensor t({3});
    t[0] = static_cast<float>(rng.normal(100.0, 5.0));
    t[1] = static_cast<float>(rng.normal(-7.0, 0.5));
    t[2] = static_cast<float>(rng.normal(0.0, 50.0));
    frames.push_back(std::move(t));
  }
  train::Standardizer st;
  st.fit(frames);
  double mean0 = 0.0;
  double var0 = 0.0;
  for (const auto& f : frames) {
    const auto z = st.transform(f);
    mean0 += z[0];
    var0 += z[0] * z[0];
  }
  mean0 /= 200.0;
  EXPECT_NEAR(mean0, 0.0, 0.05);
  EXPECT_NEAR(var0 / 200.0, 1.0, 0.1);
}

TEST(Standardizer, GlobalFitUsesOneScale) {
  std::vector<Tensor> frames = {Tensor::from({2}, {0.0f, 10.0f}),
                                Tensor::from({2}, {0.0f, 10.0f})};
  train::Standardizer st;
  st.fit_global(frames);
  // Global mean 5, global sd ~5.77: feature 1 keeps a constant offset.
  const auto z = st.transform(frames[0]);
  EXPECT_LT(z[0], 0.0f);
  EXPECT_GT(z[1], 0.0f);
  EXPECT_FLOAT_EQ(st.mean()[0], st.mean()[1]);
  EXPECT_FLOAT_EQ(st.stddev()[0], st.stddev()[1]);
}

TEST(Standardizer, InverseRoundTrips) {
  std::vector<Tensor> frames = {Tensor::from({2}, {1.0f, 2.0f}),
                                Tensor::from({2}, {3.0f, 8.0f})};
  train::Standardizer st;
  st.fit(frames);
  const auto z = st.transform(frames[1]);
  const auto back = st.inverse(z);
  EXPECT_NEAR(back[0], 3.0f, 1e-5);
  EXPECT_NEAR(back[1], 8.0f, 1e-5);
}

TEST(Standardizer, UnfittedThrows) {
  train::Standardizer st;
  EXPECT_THROW(st.transform(Tensor({2})), std::logic_error);
}

TEST(Dataset, ShuffleIsDeterministicPermutation) {
  train::Dataset a;
  for (int i = 0; i < 32; ++i) {
    a.add(Tensor::from({1}, {static_cast<float>(i)}),
          Tensor::from({1}, {static_cast<float>(i)}));
  }
  auto b = a;
  a.shuffle(9);
  b.shuffle(9);
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.inputs[i][0], b.inputs[i][0]);       // same permutation
    EXPECT_EQ(a.inputs[i][0], a.targets[i][0]);      // pairs stay together
    sum += a.inputs[i][0];
  }
  EXPECT_DOUBLE_EQ(sum, 31.0 * 32.0 / 2.0);          // still a permutation
}

TEST(Dataset, SplitFractions) {
  train::Dataset d;
  for (int i = 0; i < 10; ++i) d.add(Tensor({1}), Tensor({1}));
  const auto [tr, held] = d.split(0.8);
  EXPECT_EQ(tr.size(), 8u);
  EXPECT_EQ(held.size(), 2u);
  EXPECT_THROW(d.split(0.0), std::invalid_argument);
}

TEST(Trainer, FitsTinyRegressionProblem) {
  // y = sigmoid(2x) elementwise, learnable by a 1-layer net.
  nn::Model model("in", {1, 4});
  model.add("d", std::make_unique<nn::Dense>(4, 4), {"in"});
  model.add("s", std::make_unique<nn::Sigmoid>());
  nn::init_he_uniform(model, 3);

  util::Xoshiro256 rng(4);
  train::Dataset data;
  for (int i = 0; i < 64; ++i) {
    Tensor x({1, 4});
    Tensor y({1, 4});
    for (std::size_t j = 0; j < 4; ++j) {
      x[j] = static_cast<float>(rng.normal());
      y[j] = 1.0f / (1.0f + std::exp(-2.0f * x[j]));
    }
    data.add(std::move(x), std::move(y));
  }

  train::MseLoss loss;
  train::Adam adam(5e-2);
  train::Trainer trainer(model, loss, adam);
  train::TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 8;
  const auto result = trainer.fit(data, cfg);
  EXPECT_LT(result.final_loss(), result.epoch_loss.front() * 0.2);
  EXPECT_LT(trainer.evaluate(data), 0.01);
}

TEST(Trainer, EpochCallbackFires) {
  nn::Model model("in", {1, 2});
  model.add("d", std::make_unique<nn::Dense>(2, 1), {"in"});
  nn::init_he_uniform(model, 1);
  train::Dataset data;
  data.add(Tensor({1, 2}), Tensor({1, 1}));
  train::MseLoss loss;
  train::Sgd sgd(0.01);
  train::Trainer trainer(model, loss, sgd);
  train::TrainConfig cfg;
  cfg.epochs = 3;
  std::size_t calls = 0;
  cfg.on_epoch = [&](std::size_t, double) { ++calls; };
  trainer.fit(data, cfg);
  EXPECT_EQ(calls, 3u);
}

TEST(Trainer, RejectsEmptyDatasetAndZeroBatch) {
  nn::Model model("in", {1, 2});
  model.add("d", std::make_unique<nn::Dense>(2, 1), {"in"});
  train::MseLoss loss;
  train::Sgd sgd(0.01);
  train::Trainer trainer(model, loss, sgd);
  EXPECT_THROW(trainer.fit({}, {}), std::invalid_argument);
  train::Dataset data;
  data.add(Tensor({1, 2}), Tensor({1, 1}));
  train::TrainConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(trainer.fit(data, cfg), std::invalid_argument);
}

}  // namespace
