// Unit tests for util: RNG determinism and distribution sanity, running
// stats, percentiles, histograms, thread pool, tables, CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace reads::util;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounded) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalIsPositive) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, DeriveSeedDecorrelatesPurposes) {
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_EQ(derive_seed(42, 3), derive_seed(42, 3));
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_EQ(p.percentile(50), 50.0);
  EXPECT_EQ(p.percentile(99), 99.0);
  EXPECT_EQ(p.percentile(100), 100.0);
  EXPECT_EQ(p.percentile(0), 1.0);
}

TEST(Percentiles, InsertAfterQueryResorts) {
  Percentiles p;
  p.add(10.0);
  EXPECT_EQ(p.median(), 10.0);
  p.add(1.0);
  p.add(2.0);
  EXPECT_EQ(p.median(), 2.0);
}

TEST(Percentiles, ThrowsOnEmpty) {
  Percentiles p;
  EXPECT_THROW(p.percentile(50), std::logic_error);
}

TEST(Histogram, BinningAndOutOfRangeCounters) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);   // underflow — counter only, not folded into bin 0
  h.add(100.0);  // overflow — counter only, not folded into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

// Regression: out-of-range samples used to be counted twice — once in the
// underflow/overflow tallies AND once in the edge bins — so bin sums
// exceeded total(). The invariant is sum(bins) + underflow + overflow ==
// total, and the ascii rendering reports the out-of-range rows explicitly.
TEST(Histogram, OutOfRangeSamplesAreNotDoubleCounted) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 7; ++i) h.add(-0.5);
  for (int i = 0; i < 3; ++i) h.add(2.0);
  h.add(0.1);
  h.add(0.9);
  std::size_t in_bins = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) in_bins += h.bin_count(b);
  EXPECT_EQ(in_bins, 2u);
  EXPECT_EQ(in_bins + h.underflow() + h.overflow(), h.total());
  const std::string chart = h.ascii();
  EXPECT_NE(chart.find("< 0.0000"), std::string::npos);
  EXPECT_NE(chart.find(">= 1.0000"), std::string::npos);
  EXPECT_NE(chart.find(" 7\n"), std::string::npos);
  EXPECT_NE(chart.find(" 3\n"), std::string::npos);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, LocalPoolIndependentOfGlobal) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(Table, RendersAlignedAndCsvEscapes) {
  Table t({"a", "b"});
  t.add_row({"x", "1,2"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(t.to_csv().find("\"1,2\""), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.315, 1), "31.5%");
}

TEST(Cli, ParsesTypesAndDefaults) {
  const char* argv[] = {"prog", "--n=5", "--x=2.5", "--name=abc", "--flag"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_NO_THROW(cli.check_unknown());
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv);
  cli.get_int("n", 0);
  EXPECT_THROW(cli.check_unknown(), std::invalid_argument);
}

TEST(Cli, RejectsNonFlagArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

}  // namespace
