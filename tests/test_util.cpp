// Unit tests for util: RNG determinism and distribution sanity, running
// stats, percentiles, histograms, thread pool, tables, CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace reads::util;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounded) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalIsPositive) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, DeriveSeedDecorrelatesPurposes) {
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_EQ(derive_seed(42, 3), derive_seed(42, 3));
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_EQ(p.percentile(50), 50.0);
  EXPECT_EQ(p.percentile(99), 99.0);
  EXPECT_EQ(p.percentile(100), 100.0);
  EXPECT_EQ(p.percentile(0), 1.0);
}

TEST(Percentiles, InsertAfterQueryResorts) {
  Percentiles p;
  p.add(10.0);
  EXPECT_EQ(p.median(), 10.0);
  p.add(1.0);
  p.add(2.0);
  EXPECT_EQ(p.median(), 2.0);
}

TEST(Percentiles, ThrowsOnEmpty) {
  Percentiles p;
  EXPECT_THROW(p.percentile(50), std::logic_error);
}

TEST(Histogram, BinningAndOutOfRangeCounters) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);   // underflow — counter only, not folded into bin 0
  h.add(100.0);  // overflow — counter only, not folded into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

// Regression: out-of-range samples used to be counted twice — once in the
// underflow/overflow tallies AND once in the edge bins — so bin sums
// exceeded total(). The invariant is sum(bins) + underflow + overflow ==
// total, and the ascii rendering reports the out-of-range rows explicitly.
TEST(Histogram, OutOfRangeSamplesAreNotDoubleCounted) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 7; ++i) h.add(-0.5);
  for (int i = 0; i < 3; ++i) h.add(2.0);
  h.add(0.1);
  h.add(0.9);
  std::size_t in_bins = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) in_bins += h.bin_count(b);
  EXPECT_EQ(in_bins, 2u);
  EXPECT_EQ(in_bins + h.underflow() + h.overflow(), h.total());
  const std::string chart = h.ascii();
  EXPECT_NE(chart.find("< 0.0000"), std::string::npos);
  EXPECT_NE(chart.find(">= 1.0000"), std::string::npos);
  EXPECT_NE(chart.find(" 7\n"), std::string::npos);
  EXPECT_NE(chart.find(" 3\n"), std::string::npos);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, JsonRoundTripPreservesEverything) {
  Histogram h(0.25, 4.75, 9);
  Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) h.add(rng.normal(2.5, 2.0));  // spills both ends
  h.add(-100.0);
  h.add(1e9);
  ASSERT_GT(h.underflow(), 0u);
  ASSERT_GT(h.overflow(), 0u);

  const auto json = h.to_json();
  const auto back = Histogram::from_json(json);
  EXPECT_EQ(back.bins(), h.bins());
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.underflow(), h.underflow());
  EXPECT_EQ(back.overflow(), h.overflow());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_EQ(back.bin_count(i), h.bin_count(i)) << "bin " << i;
    EXPECT_DOUBLE_EQ(back.bin_lo(i), h.bin_lo(i));
    EXPECT_DOUBLE_EQ(back.bin_hi(i), h.bin_hi(i));
  }
  // Re-serializing the reconstruction is byte-identical: the export uses
  // round-trip-exact float formatting, so to_json is a fixed point.
  EXPECT_EQ(back.to_json(), json);
}

TEST(Histogram, FromJsonRejectsMalformed) {
  EXPECT_THROW(Histogram::from_json("not json"), std::invalid_argument);
  EXPECT_THROW(Histogram::from_json("{\"lo\": 0.0, \"hi\": 1.0}"),
               std::invalid_argument);
  // Totals that do not match the bin contents must be rejected, not trusted.
  EXPECT_THROW(Histogram::from_json(
                   "{\"lo\": 0, \"hi\": 1, \"bins\": [1, 2], "
                   "\"underflow\": 0, \"overflow\": 0, \"total\": 99}"),
               std::invalid_argument);
  // Degenerate ranges are invalid through this door too.
  EXPECT_THROW(Histogram::from_json(
                   "{\"lo\": 1, \"hi\": 1, \"bins\": [0], "
                   "\"underflow\": 0, \"overflow\": 0, \"total\": 0}"),
               std::invalid_argument);
}

TEST(Percentiles, SummaryJsonNearestRankAndEmpty) {
  Percentiles p;
  for (int i = 1; i <= 1000; ++i) p.add(static_cast<double>(i));
  const auto json = p.summary_json();
  EXPECT_NE(json.find("\"count\": 1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": 990"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99.97\": 1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 1000"), std::string::npos) << json;

  Percentiles empty;
  EXPECT_EQ(empty.summary_json(), "{\"count\": 0}");
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, LocalPoolIndependentOfGlobal) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ExecCallerRunsInlineOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  parallel_for(
      0, 64,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) ++off_thread;
      },
      Exec::kCaller);
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPool, ConcurrentParallelForCallersShareOnePool) {
  // Shutdown-safety audit, part 1: many threads driving the same pool's
  // blocking parallel_for concurrently must neither lose indices nor race.
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kIters = 25;
  constexpr std::size_t kRange = 200;
  std::atomic<std::size_t> hits{0};
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (std::size_t it = 0; it < kIters; ++it) {
        pool.parallel_for(0, kRange, [&](std::size_t) { hits.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(hits.load(), kCallers * kIters * kRange);
}

TEST(ThreadPool, ConstructDestroyChurnDrainsAllWork) {
  // Shutdown-safety audit, part 2: destruction immediately after blocking
  // work must drain and join cleanly every time (no stranded tasks, no
  // use-after-free; TSan verifies the absence of races in check.sh).
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> done{0};
    ThreadPool pool(2);
    pool.parallel_for(0, 50, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 50u);
  }  // ~ThreadPool here
}

TEST(ThreadPool, SetGlobalThreadsAfterGlobalExistsThrows) {
  ThreadPool::global();  // ensure the lazy singleton is constructed
  EXPECT_THROW(ThreadPool::set_global_threads(2), std::logic_error);
}

TEST(Table, RendersAlignedAndCsvEscapes) {
  Table t({"a", "b"});
  t.add_row({"x", "1,2"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(t.to_csv().find("\"1,2\""), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.315, 1), "31.5%");
}

TEST(Cli, ParsesTypesAndDefaults) {
  const char* argv[] = {"prog", "--n=5", "--x=2.5", "--name=abc", "--flag"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_NO_THROW(cli.check_unknown());
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv);
  cli.get_int("n", 0);
  EXPECT_THROW(cli.check_unknown(), std::invalid_argument);
}

TEST(Cli, RejectsNonFlagArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

// ----------------------------------------------- reset (re-arm) behaviour

TEST(RunningStats, ResetForgetsEverySample) {
  RunningStats s;
  for (double v : {3.0, -1.0, 12.0}) s.add(v);
  ASSERT_EQ(s.count(), 3u);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
  // The re-armed window behaves exactly like a fresh instance.
  s.add(4.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Percentiles, ResetDropsSamplesAndKeepsCapacity) {
  Percentiles p;
  p.reserve(64);
  for (double v : {9.0, 1.0, 5.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.median(), 5.0);
  const auto cap = p.values().capacity();
  p.reset();
  EXPECT_EQ(p.count(), 0u);
  EXPECT_GE(p.values().capacity(), cap);  // buffer retained for re-arming
  EXPECT_THROW(p.percentile(50.0), std::logic_error);
  p.add(2.0);
  p.add(8.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 8.0);
}

TEST(Histogram, ResetZeroesBinsAndOutOfRangeCounters) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);   // underflow
  h.add(42.0);   // overflow
  h.add(1.0);
  h.add(9.5);
  ASSERT_EQ(h.total(), 4u);
  ASSERT_EQ(h.underflow(), 1u);
  ASSERT_EQ(h.overflow(), 1u);

  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_EQ(h.bin_count(i), 0u);
  }
  // The bin layout survives: the same samples land in the same bins.
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  h.add(1.0);
  h.add(-3.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 2u);
}

}  // namespace
