// Cluster tier tests: endpoint parsing, the consistent-hash ring, envelope
// framing under adversarial read() chunking, the replica server's wire
// contract, and the router's core guarantees — exactly-once terminal
// replies, live resharding, crash redispatch, and close-then-drain
// shutdown — exercised over real sockets with cheap synthetic backends.
//
// The router/replica suites here run the full multi-component stack in one
// process (real TCP connections, real poll loops, no forking) so they stay
// fast and debuggable; the multi-process path is bench_cluster's job. The
// RouterAdmin suite drives the thread-safe admin API concurrently with
// traffic and is a ThreadSanitizer target (tools/check.sh).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/io.hpp"
#include "cluster/journal.hpp"
#include "cluster/protocol.hpp"
#include "cluster/replica_server.hpp"
#include "cluster/resilient_client.hpp"
#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "net/hub.hpp"
#include "net/packet.hpp"
#include "serve/backend.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using namespace std::chrono_literals;
using tensor::Tensor;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kMonitors = 21;
constexpr std::size_t kHubs = 7;

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---- Endpoint ------------------------------------------------------------

TEST(Endpoint, ParsesTcpAndUdsSpecs) {
  const auto tcp = cluster::Endpoint::parse("tcp:127.0.0.1:8700");
  EXPECT_EQ(tcp.transport, cluster::Transport::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8700);
  EXPECT_EQ(tcp.str(), "tcp:127.0.0.1:8700");

  const auto uds = cluster::Endpoint::parse("uds:/tmp/reads-test.sock");
  EXPECT_EQ(uds.transport, cluster::Transport::kUds);
  EXPECT_EQ(uds.path, "/tmp/reads-test.sock");
  EXPECT_EQ(uds.str(), "uds:/tmp/reads-test.sock");
}

TEST(Endpoint, RejectsMalformedSpecs) {
  for (const char* bad :
       {"127.0.0.1:80", "tcp:", "tcp:host", "tcp:host:", "tcp:host:x",
        "tcp:host:70000", "uds:", "http:host:80"}) {
    EXPECT_THROW(cluster::Endpoint::parse(bad), std::invalid_argument) << bad;
  }
}

// ---- HashRing ------------------------------------------------------------

TEST(HashRing, OwnershipIsDeterministicAndCoversAllNodes) {
  cluster::HashRing a(64);
  cluster::HashRing b(64);
  for (std::uint64_t n : {1u, 2u, 3u}) {
    a.add(n);
    b.add(n);
  }
  std::map<std::uint64_t, std::size_t> owned;
  for (std::uint64_t s = 0; s < 200; ++s) {
    EXPECT_EQ(a.owner(s), b.owner(s));  // identical across instances
    ++owned[a.owner(s)];
  }
  // Every node owns a share (64 vnodes spread 3 nodes well over 200 keys).
  EXPECT_EQ(owned.size(), 3u);
}

TEST(HashRing, RemovingANodeMovesOnlyItsStreams) {
  cluster::HashRing ring(64);
  ring.add(1);
  ring.add(2);
  ring.add(3);
  std::map<std::uint64_t, std::uint64_t> before;
  for (std::uint64_t s = 0; s < 200; ++s) before[s] = ring.owner(s);
  ring.remove(2);
  EXPECT_FALSE(ring.contains(2));
  for (std::uint64_t s = 0; s < 200; ++s) {
    if (before[s] == 2) {
      EXPECT_NE(ring.owner(s), 2u);  // moved somewhere live
    } else {
      EXPECT_EQ(ring.owner(s), before[s]);  // everything else stays put
    }
  }
}

TEST(HashRing, EmptyRingThrowsOnOwnership) {
  cluster::HashRing ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.owner(7), std::logic_error);
  ring.add(5);
  EXPECT_EQ(ring.owner(7), 5u);
  ring.remove(5);
  EXPECT_THROW(ring.owner(7), std::logic_error);
}

// ---- protocol codecs + MessageReader ------------------------------------

net::BlmPacket sealed_packet(std::uint8_t hub, std::uint32_t seq,
                             std::uint16_t first, std::size_t count,
                             std::uint32_t base) {
  net::BlmPacket p;
  p.hub_id = hub;
  p.sequence = seq;
  p.first_monitor = first;
  for (std::size_t i = 0; i < count; ++i) {
    p.readings.push_back(base + static_cast<std::uint32_t>(i));
  }
  net::seal_packet(p);
  return p;
}

TEST(ClusterProtocol, SubmitRoundTripsThroughOneByteChunks) {
  cluster::Submit s;
  s.stream = 0x1234'5678'9abcULL;
  s.req_id = 42;
  s.slo = 0;
  s.packets.push_back(sealed_packet(0, 7, 0, 3, 1600));
  s.packets.push_back(sealed_packet(1, 7, 3, 4, 1700));
  std::vector<std::uint8_t> bytes;
  cluster::append_submit(bytes, s);

  cluster::MessageReader reader;
  std::size_t got = 0;
  for (const auto b : bytes) {
    ASSERT_TRUE(reader.feed(&b, 1));
    while (auto m = reader.next()) {
      ASSERT_EQ(m->type, cluster::MsgType::kSubmit);
      const auto back = cluster::decode_submit(m->payload);
      EXPECT_EQ(back.stream, s.stream);
      EXPECT_EQ(back.req_id, s.req_id);
      EXPECT_EQ(back.slo, s.slo);
      ASSERT_EQ(back.packets.size(), 2u);
      EXPECT_EQ(back.packets[0].readings, s.packets[0].readings);
      EXPECT_EQ(back.packets[1].crc, s.packets[1].crc);
      EXPECT_TRUE(net::packet_crc_ok(back.packets[1]));
      ++got;
    }
  }
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ClusterProtocol, CoalescedMessagesSplitMidEnvelopeReassemble) {
  std::vector<std::uint8_t> bytes;
  cluster::append_hello(bytes, cluster::Hello{cluster::Role::kReplica,
                                              cluster::kProtocolVersion});
  cluster::Result r;
  r.id = 99;
  r.deadline_met = 0;
  r.model_epoch = 3;
  r.dims = {static_cast<std::uint32_t>(kMonitors), 1u};
  r.data = {-0.0f, 1.5f, 3.25e-40f};  // signed zero + denormal stay bit-exact
  cluster::append_result(bytes, r);
  cluster::Shed sh;
  sh.id = 100;
  sh.reason = cluster::ShedReason::kHeldTooLong;
  cluster::append_shed(bytes, sh);

  // One read() delivering everything up to mid-way through the last
  // envelope's length field, then the rest.
  const std::size_t cut = bytes.size() - 8;
  cluster::MessageReader reader;
  ASSERT_TRUE(reader.feed(bytes.data(), cut));
  ASSERT_TRUE(reader.feed(bytes.data() + cut, bytes.size() - cut));

  auto m1 = reader.next();
  ASSERT_TRUE(m1 && m1->type == cluster::MsgType::kHello);
  EXPECT_EQ(cluster::decode_hello(m1->payload).role, cluster::Role::kReplica);
  auto m2 = reader.next();
  ASSERT_TRUE(m2 && m2->type == cluster::MsgType::kResult);
  const auto rb = cluster::decode_result(m2->payload);
  EXPECT_EQ(rb.id, 99u);
  EXPECT_EQ(rb.deadline_met, 0);
  EXPECT_EQ(rb.model_epoch, 3u);
  EXPECT_EQ(rb.dims, r.dims);
  ASSERT_EQ(rb.data.size(), 3u);
  EXPECT_EQ(std::signbit(rb.data[0]), true);
  EXPECT_EQ(rb.data[1], 1.5f);
  EXPECT_EQ(rb.data[2], 3.25e-40f);
  auto m3 = reader.next();
  ASSERT_TRUE(m3 && m3->type == cluster::MsgType::kShed);
  EXPECT_EQ(cluster::decode_shed(m3->payload).reason,
            cluster::ShedReason::kHeldTooLong);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ClusterProtocol, ImplausibleEnvelopeLengthBreaksTheStream) {
  std::vector<std::uint8_t> bytes(cluster::kEnvelopeHeader, 0);
  bytes[0] = 0xff;  // payload_len LE = 0xffffffff
  bytes[1] = 0xff;
  bytes[2] = 0xff;
  bytes[3] = 0xff;
  bytes[4] = static_cast<std::uint8_t>(cluster::MsgType::kSubmit);
  cluster::MessageReader reader;
  EXPECT_FALSE(reader.feed(bytes.data(), bytes.size()));
  EXPECT_TRUE(reader.broken());
  std::vector<std::uint8_t> fine;
  cluster::append_stats_request(fine);
  EXPECT_FALSE(reader.feed(fine.data(), fine.size()));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ClusterProtocol, FuzzedCorruptionNeverMisframesOrHangs) {
  // A clean multi-message stream, then 300 seeded mutations of it: random
  // bit flips, truncation, or both, fed through the reader in random read()
  // chunk sizes. The contract under arbitrary damage: whatever parses must
  // be an exact prefix of the original message sequence (the envelope CRC
  // rejects everything downstream of the first damaged record by latching
  // broken()), and the reader never crashes, hangs, or invents a message.
  std::vector<std::uint8_t> clean;
  cluster::append_hello(clean, {cluster::Role::kClient,
                                cluster::kProtocolVersion});
  cluster::Result r;
  r.id = 7;
  r.model_epoch = 2;
  r.dims = {3u, 1u};
  r.data = {0.5f, -2.0f, 1e-20f};
  cluster::append_result(clean, r);
  cluster::Submit s;
  s.stream = 11;
  s.req_id = (11ull << 32) | 4u;
  s.slo = 1;
  s.packets.push_back(sealed_packet(0, 4, 0, 9, 1500));
  cluster::append_submit(clean, s);
  cluster::append_shed(clean, {9, cluster::ShedReason::kQueueFull});
  cluster::append_stats_request(clean);

  std::vector<cluster::Message> originals;
  {
    cluster::MessageReader ref;
    ASSERT_TRUE(ref.feed(clean.data(), clean.size()));
    while (auto m = ref.next()) originals.push_back(std::move(*m));
    ASSERT_EQ(originals.size(), 5u);
  }

  util::Xoshiro256 rng(0xF022u);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::uint8_t> bytes = clean;
    const auto mode = rng.uniform_int(3);  // 0: flips, 1: truncate, 2: both
    if (mode != 0) {
      bytes.resize(1 + rng.uniform_int(bytes.size() - 1));
    }
    if (mode != 1) {
      const auto flips = 1 + rng.uniform_int(4);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const auto at = rng.uniform_int(bytes.size());
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
    }

    cluster::MessageReader reader;
    std::size_t parsed = 0;
    bool refused = false;
    std::size_t off = 0;
    while (off < bytes.size() && !refused) {
      const std::size_t chunk =
          std::min(bytes.size() - off,
                   static_cast<std::size_t>(1 + rng.uniform_int(16)));
      refused = !reader.feed(bytes.data() + off, chunk);
      off += chunk;
      while (auto m = reader.next()) {
        ASSERT_LT(parsed, originals.size()) << "iter " << iter;
        EXPECT_EQ(m->type, originals[parsed].type) << "iter " << iter;
        EXPECT_EQ(m->payload, originals[parsed].payload) << "iter " << iter;
        ++parsed;
      }
    }
    if (refused) {
      EXPECT_TRUE(reader.broken());
      // Latched: clean bytes afterwards must not revive the stream.
      EXPECT_FALSE(reader.feed(clean.data(), clean.size()));
      EXPECT_FALSE(reader.next().has_value());
    }
  }
}

TEST(ClusterProtocol, AdminCodecsRoundTrip) {
  std::vector<std::uint8_t> bytes;
  cluster::append_add_replica(bytes, {"tcp:127.0.0.1:9000"});
  cluster::append_remove_replica(bytes, {17});
  cluster::append_admin_ok(bytes, {17, "drained"});
  cluster::append_stats_reply(bytes, {"{\"ok\": true}"});
  cluster::MessageReader reader;
  ASSERT_TRUE(reader.feed(bytes.data(), bytes.size()));
  EXPECT_EQ(cluster::decode_add_replica(reader.next()->payload).endpoint,
            "tcp:127.0.0.1:9000");
  EXPECT_EQ(cluster::decode_remove_replica(reader.next()->payload).node, 17u);
  const auto ok = cluster::decode_admin_ok(reader.next()->payload);
  EXPECT_EQ(ok.token, 17u);
  EXPECT_EQ(ok.info, "drained");
  EXPECT_EQ(cluster::decode_stats_reply(reader.next()->payload).json,
            "{\"ok\": true}");
}

// ---- shared cluster harness ---------------------------------------------

/// Deterministic stand-in for the quantized model: out = 2 * in + 1,
/// element-wise. Bit-exact across "replicas" like QuantizedBackend is.
class SyntheticBackend final : public serve::Backend {
 public:
  explicit SyntheticBackend(std::chrono::microseconds service = 0us)
      : service_(service) {}
  std::string_view name() const noexcept override { return "synthetic"; }
  Tensor infer(const Tensor& frame) override {
    if (service_ > 0us) std::this_thread::sleep_for(service_);
    Tensor out = frame;
    for (auto& v : out.flat()) v = 2.0f * v + 1.0f;
    return out;
  }

 private:
  std::chrono::microseconds service_;
};

cluster::FrameDecoder raw_decoder() {
  return [](std::span<const std::uint32_t> readings, Tensor& out) {
    out.resize({readings.size(), 1});
    auto dst = out.flat();
    for (std::size_t i = 0; i < readings.size(); ++i) {
      dst[i] = static_cast<float>(net::decode_reading(readings[i]));
    }
  };
}

/// One in-process "replica process": a real socket server on its own thread.
struct ReplicaProc {
  std::unique_ptr<cluster::ReplicaServer> server;
  std::thread thread;
  std::string endpoint;

  ReplicaProc(std::size_t monitors, std::chrono::microseconds service) {
    cluster::ReplicaServerConfig cfg;
    cfg.listen = cluster::Endpoint::parse("tcp:127.0.0.1:0");
    cfg.monitors = monitors;
    cfg.gateway.sharding = serve::ShardPolicy::kByStream;
    cfg.gateway.deadline_ms = 1000.0;
    std::vector<std::unique_ptr<serve::Backend>> backends;
    backends.push_back(std::make_unique<SyntheticBackend>(service));
    server = std::make_unique<cluster::ReplicaServer>(
        std::move(cfg), std::move(backends), raw_decoder());
    endpoint = server->bound().str();
    thread = std::thread([s = server.get()] { s->run(); });
  }
  ~ReplicaProc() { stop(); }
  void stop() {
    if (server) server->request_stop();
    if (thread.joinable()) thread.join();
  }
};

/// Router on its own thread, stopped (and drained) on destruction.
struct RouterRun {
  cluster::Router router;
  std::thread thread;
  explicit RouterRun(cluster::RouterConfig cfg)
      : router(std::move(cfg)),
        thread([this] { router.run(); }) {}
  ~RouterRun() {
    router.request_stop();
    if (thread.joinable()) thread.join();
  }
};

cluster::RouterConfig router_config(const std::vector<std::string>& replicas) {
  cluster::RouterConfig cfg;
  cfg.listen = cluster::Endpoint::parse("tcp:127.0.0.1:0");
  cfg.replicas = replicas;
  cfg.assembler.monitors = kMonitors;
  cfg.assembler.hubs = kHubs;
  // Logical-property tests must not time out on a loaded 1-core CI host.
  cfg.best_effort_deadline_ms = 5000.0;
  return cfg;
}

/// Per-tick readings: a deterministic function of (stream, seq, monitor).
std::vector<std::uint32_t> tick_counts(std::uint64_t stream,
                                       std::uint32_t seq) {
  std::vector<std::uint32_t> counts(kMonitors);
  for (std::size_t m = 0; m < kMonitors; ++m) {
    counts[m] = net::encode_reading(
        100'000.0 + static_cast<double>(stream * 131 + seq * 7 + m));
  }
  return counts;
}

std::vector<float> expected_output(const std::vector<std::uint32_t>& counts) {
  std::vector<float> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] =
        2.0f * static_cast<float>(net::decode_reading(counts[i])) + 1.0f;
  }
  return out;
}

cluster::Submit make_tick(std::uint64_t stream, std::uint32_t seq,
                          std::uint8_t slo = 1) {
  const auto counts = tick_counts(stream, seq);
  const auto layout = net::hub_layout(kMonitors, kHubs);
  cluster::Submit s;
  s.stream = stream;
  s.req_id = (stream << 32) | seq;
  s.slo = slo;
  for (std::size_t h = 0; h < kHubs; ++h) {
    net::BlmPacket p;
    p.hub_id = static_cast<std::uint8_t>(h);
    p.sequence = seq;
    p.first_monitor = layout[h].first;
    p.readings.assign(counts.begin() + layout[h].first,
                      counts.begin() + layout[h].first + layout[h].second);
    net::seal_packet(p);
    s.packets.push_back(std::move(p));
  }
  return s;
}

/// Client-side exactly-once audit.
struct Ledger {
  std::map<std::uint64_t, int> replies;  ///< req_id -> terminal replies seen
  std::size_t submitted = 0;
  std::size_t results = 0;
  std::size_t sheds = 0;
  std::size_t mismatched = 0;
  std::map<std::uint64_t, std::int64_t> last_seq;  ///< per-stream FIFO check
  bool fifo_ok = true;

  std::size_t terminal() const { return results + sheds; }
  std::size_t duplicated() const {
    std::size_t dup = 0;
    for (const auto& [id, n] : replies) {
      dup += n > 1 ? static_cast<std::size_t>(n - 1) : 0u;
    }
    return dup;
  }
};

void submit_tick(cluster::ClusterClient& client, Ledger& led,
                 std::uint64_t stream, std::uint32_t seq,
                 std::uint8_t slo = 1) {
  ASSERT_TRUE(client.submit(make_tick(stream, seq, slo)));
  ++led.submitted;
}

void note_reply(Ledger& led, const cluster::Message& msg) {
  if (msg.type == cluster::MsgType::kResult) {
    const auto r = cluster::decode_result(msg.payload);
    ++led.replies[r.id];
    ++led.results;
    const std::uint64_t stream = r.id >> 32;
    const auto seq = static_cast<std::int64_t>(r.id & 0xffffffffu);
    auto [it, fresh] = led.last_seq.try_emplace(stream, -1);
    if (!fresh && seq <= it->second) led.fifo_ok = false;
    it->second = seq;
    const auto want =
        expected_output(tick_counts(stream, static_cast<std::uint32_t>(seq)));
    const std::vector<std::uint32_t> want_dims{
        static_cast<std::uint32_t>(kMonitors), 1u};
    if (r.data != want || r.dims != want_dims) ++led.mismatched;
  } else if (msg.type == cluster::MsgType::kShed) {
    ++led.replies[cluster::decode_shed(msg.payload).id];
    ++led.sheds;
  }
}

/// Poll until every submitted tick has a terminal reply (or `timeout_ms`).
void drain_all(cluster::ClusterClient& client, Ledger& led,
               double timeout_ms = 30000.0) {
  const auto t0 = Clock::now();
  while (led.terminal() < led.submitted && elapsed_ms(t0) < timeout_ms) {
    if (auto msg = client.poll(100.0)) {
      note_reply(led, *msg);
    } else if (!client.connected()) {
      break;
    }
  }
}

std::uint64_t scan_counter(const std::string& json, const std::string& key) {
  const auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0;
  std::size_t p = pos + key.size() + 3;
  while (p < json.size() && json[p] == ' ') ++p;
  std::uint64_t v = 0;
  while (p < json.size() && json[p] >= '0' && json[p] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(json[p] - '0');
    ++p;
  }
  return v;
}

// ---- ReplicaServer wire contract ----------------------------------------

std::optional<cluster::Message> read_message(int fd,
                                             cluster::MessageReader& reader,
                                             double timeout_ms) {
  const auto t0 = Clock::now();
  for (;;) {
    if (auto m = reader.next()) return m;
    if (elapsed_ms(t0) > timeout_ms) return std::nullopt;
    cluster::Poller poller;
    poller.want(fd, true, false);
    poller.wait(50);
    std::uint8_t buf[4096];
    const auto n = cluster::read_some(fd, buf, sizeof(buf));
    if (n < 0) return std::nullopt;
    if (n > 0) reader.feed(buf, static_cast<std::size_t>(n));
  }
}

TEST(ReplicaServerWire, AnswersJobsAndShedsBadFrames) {
  ReplicaProc replica(kMonitors, 0us);
  auto fd = cluster::connect_to(cluster::Endpoint::parse(replica.endpoint),
                                2000.0);
  std::vector<std::uint8_t> out;
  cluster::append_hello(out, {cluster::Role::kClient,
                              cluster::kProtocolVersion});

  // A valid jumbo job: one whole-ring packet.
  const auto counts = tick_counts(3, 9);
  cluster::Job job;
  job.gid = 501;
  job.stream = 3;
  job.slo = 1;
  job.deadline_ms = 1000.0;
  job.packet.hub_id = 0;
  job.packet.sequence = 9;
  job.packet.first_monitor = 0;
  job.packet.readings = counts;
  net::seal_packet(job.packet);
  cluster::append_job(out, job);

  // Wrong monitor count: framing-level refusal.
  cluster::Job runt = job;
  runt.gid = 502;
  runt.packet.readings.resize(5);
  net::seal_packet(runt.packet);
  cluster::append_job(out, runt);

  // Corrupt content: CRC refusal.
  cluster::Job corrupt = job;
  corrupt.gid = 503;
  corrupt.packet.readings[2] ^= 1u;  // break the seal
  cluster::append_job(out, corrupt);

  ASSERT_TRUE(cluster::write_all(fd.get(), out.data(), out.size(), 2000.0));

  // Sheds are written by the event loop, results by the completion thread —
  // arrival order across the two is not guaranteed, so match by id.
  std::map<std::uint64_t, cluster::Message> by_id;
  cluster::MessageReader reader;
  while (by_id.size() < 3) {
    auto msg = read_message(fd.get(), reader, 10000.0);
    ASSERT_TRUE(msg.has_value());
    const std::uint64_t id = msg->type == cluster::MsgType::kResult
                                 ? cluster::decode_result(msg->payload).id
                                 : cluster::decode_shed(msg->payload).id;
    by_id.emplace(id, std::move(*msg));
  }
  ASSERT_EQ(by_id.at(501).type, cluster::MsgType::kResult);
  const auto r = cluster::decode_result(by_id.at(501).payload);
  EXPECT_EQ(r.data, expected_output(counts));
  ASSERT_EQ(by_id.at(502).type, cluster::MsgType::kShed);
  EXPECT_EQ(cluster::decode_shed(by_id.at(502).payload).reason,
            cluster::ShedReason::kBadFrame);
  ASSERT_EQ(by_id.at(503).type, cluster::MsgType::kShed);
  EXPECT_EQ(cluster::decode_shed(by_id.at(503).payload).reason,
            cluster::ShedReason::kBadFrame);
}

// ---- Router end-to-end ---------------------------------------------------

TEST(RouterCluster, ServesExactlyOnceBitIdenticalInStreamOrder) {
  ReplicaProc a(kMonitors, 0us);
  ReplicaProc b(kMonitors, 0us);
  RouterRun run(router_config({a.endpoint, b.endpoint}));

  cluster::ClusterClient client(run.router.bound().str());
  Ledger led;
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    for (std::uint64_t stream = 0; stream < 6; ++stream) {
      submit_tick(client, led, stream, seq);
    }
  }
  drain_all(client, led);

  EXPECT_EQ(led.terminal(), led.submitted);
  EXPECT_EQ(led.results, 48u);  // nothing shed at these budgets
  EXPECT_EQ(led.sheds, 0u);
  EXPECT_EQ(led.duplicated(), 0u);
  EXPECT_EQ(led.mismatched, 0u);
  EXPECT_TRUE(led.fifo_ok);  // per-stream response order = submit order
}

TEST(RouterCluster, MalformedTickIsShedNotServed) {
  ReplicaProc a(kMonitors, 0us);
  RouterRun run(router_config({a.endpoint}));
  cluster::ClusterClient client(run.router.bound().str());

  auto tick = make_tick(1, 0);
  tick.packets[2].readings[0] ^= 1u;  // breaks that packet's CRC
  ASSERT_TRUE(client.submit(tick));
  auto msg = client.poll(10000.0);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->type, cluster::MsgType::kShed);
  const auto shed = cluster::decode_shed(msg->payload);
  EXPECT_EQ(shed.id, tick.req_id);
  EXPECT_EQ(shed.reason, cluster::ShedReason::kBadFrame);
}

TEST(RouterCluster, LiveReshardingDrainsExactlyOnce) {
  ReplicaProc a(kMonitors, 200us);
  ReplicaProc b(kMonitors, 200us);
  RouterRun run(router_config({a.endpoint, b.endpoint}));

  // The ring is deterministic: confirm node 1 owns at least one of our
  // streams once node 3 joined, so the removal below must move pins.
  cluster::HashRing sim(64);
  sim.add(1);
  sim.add(2);
  sim.add(3);
  bool node1_owns = false;
  for (std::uint64_t s = 0; s < 12; ++s) node1_owns |= sim.owner(s) == 1;
  ASSERT_TRUE(node1_owns);

  cluster::ClusterClient client(run.router.bound().str());
  Ledger led;
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    for (std::uint64_t stream = 0; stream < 12; ++stream) {
      submit_tick(client, led, stream, seq);
    }
  }

  // Grow the fleet, then drain node 1 out while traffic keeps flowing.
  ReplicaProc c(kMonitors, 200us);
  EXPECT_NE(run.router.add_replica(c.endpoint), 0u);
  std::atomic<bool> removed{false};
  std::thread remover([&] {
    removed.store(run.router.remove_replica(1));
  });
  for (std::uint32_t seq = 4; seq < 8; ++seq) {
    for (std::uint64_t stream = 0; stream < 12; ++stream) {
      submit_tick(client, led, stream, seq);
    }
    while (auto msg = client.poll(0.0)) note_reply(led, *msg);
  }
  remover.join();
  EXPECT_TRUE(removed.load());
  EXPECT_FALSE(run.router.remove_replica(99));  // unknown node

  drain_all(client, led);
  EXPECT_EQ(led.terminal(), led.submitted);
  EXPECT_EQ(led.results, led.submitted);
  EXPECT_EQ(led.duplicated(), 0u);
  EXPECT_EQ(led.mismatched, 0u);

  const auto stats = run.router.stats_json();
  EXPECT_GE(scan_counter(stats, "resharded_streams"), 1u);
}

/// A replica-shaped black hole: accepts the router's connection, swallows
/// jobs without ever answering, then slams the connection shut — the crash
/// the router must detect and redispatch around.
class SilentReplica {
 public:
  SilentReplica()
      : listener_(cluster::listen_on(
            cluster::Endpoint::parse("tcp:127.0.0.1:0"))),
        wake_(cluster::make_wake_pipe()),
        thread_([this] { swallow(); }) {}

  ~SilentReplica() { crash(); }

  std::string endpoint() const { return listener_.bound.str(); }

  void crash() {
    if (!thread_.joinable()) return;
    stop_.store(true);
    wake_.wake();
    thread_.join();
  }

 private:
  void swallow() {
    cluster::Fd conn;
    std::uint8_t buf[4096];
    while (!stop_.load()) {
      cluster::Poller poller;
      poller.want(listener_.fd.get(), true, false);
      poller.want(wake_.r.get(), true, false);
      if (conn.valid()) poller.want(conn.get(), true, false);
      poller.wait(100);
      wake_.drain();
      if (poller.readable(listener_.fd.get())) {
        auto c = cluster::accept_conn(listener_.fd.get());
        if (c.valid()) conn = std::move(c);
      }
      if (conn.valid() && poller.readable(conn.get())) {
        while (cluster::read_some(conn.get(), buf, sizeof(buf)) > 0) {
        }
      }
    }
    conn.reset();  // abrupt EOF at the router
    listener_.fd.reset();
  }

  cluster::Listener listener_;
  cluster::WakePipe wake_;
  std::atomic<bool> stop_{false};
  // Last: the thread reads stop_, so everything it touches must be
  // initialized before it starts.
  std::thread thread_;
};

TEST(RouterCluster, ReplicaCrashRedispatchesOutstandingJobs) {
  ReplicaProc real(kMonitors, 0us);
  SilentReplica sink;

  // Node ids follow config order: real = 1, sink = 2. Pick streams the
  // deterministic ring pins to the sink, so its crash is load-bearing.
  cluster::HashRing sim(64);
  sim.add(1);
  sim.add(2);
  std::vector<std::uint64_t> streams;
  for (std::uint64_t s = 0; s < 32 && streams.size() < 6; ++s) {
    if (sim.owner(s) == 2) streams.push_back(s);
  }
  ASSERT_FALSE(streams.empty());

  auto cfg = router_config({real.endpoint, sink.endpoint()});
  cfg.reconnect_attempts = 1;  // quarantine gives up fast
  cfg.reconnect_backoff_initial_ms = 10.0;
  cfg.reconnect_backoff_max_ms = 20.0;
  RouterRun run(std::move(cfg));

  cluster::ClusterClient client(run.router.bound().str());
  Ledger led;
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    for (const auto stream : streams) submit_tick(client, led, stream, seq);
  }
  // Give the router time to dispatch into the sink, then crash it with the
  // jobs still unanswered.
  std::this_thread::sleep_for(100ms);
  sink.crash();

  for (std::uint32_t seq = 3; seq < 5; ++seq) {
    for (const auto stream : streams) submit_tick(client, led, stream, seq);
  }
  drain_all(client, led);

  EXPECT_EQ(led.terminal(), led.submitted);
  EXPECT_EQ(led.results, led.submitted);  // re-executed, not lost
  EXPECT_EQ(led.duplicated(), 0u);
  EXPECT_EQ(led.mismatched, 0u);  // re-execution is bit-identical
  EXPECT_TRUE(led.fifo_ok);

  const auto stats = run.router.stats_json();
  EXPECT_GE(scan_counter(stats, "replica_crashes"), 1u);
  EXPECT_GE(scan_counter(stats, "redispatched_jobs"), 1u);
}

TEST(RouterCluster, GracefulShutdownLosesNoAcceptedFrame) {
  ReplicaProc a(kMonitors, 300us);
  RouterRun run(router_config({a.endpoint}));
  cluster::ClusterClient client(run.router.bound().str());

  Ledger led;
  for (std::uint32_t seq = 0; seq < 24; ++seq) {
    submit_tick(client, led, /*stream=*/5, seq);
  }
  // Wait for the first answer (the router has certainly accepted work),
  // then pull the plug with the rest still in flight.
  auto first = client.poll(10000.0);
  ASSERT_TRUE(first.has_value());
  note_reply(led, *first);
  run.router.request_stop();

  drain_all(client, led);
  // Close-then-drain: every accepted frame is answered (kResult) and every
  // frame read after the stop decision is terminally shed (kShutdown) —
  // nothing just vanishes.
  EXPECT_EQ(led.terminal(), led.submitted);
  EXPECT_GE(led.results, 1u);
  EXPECT_EQ(led.duplicated(), 0u);
  EXPECT_EQ(led.mismatched, 0u);
  EXPECT_TRUE(led.fifo_ok);
}

// ---- RouterJournal -------------------------------------------------------

std::string journal_path(const char* tag) {
  return "/tmp/reads-test-journal-" + std::to_string(::getpid()) + "-" + tag;
}

TEST(RouterJournal, RecordReplayRoundTrips) {
  const auto path = journal_path("roundtrip");
  ::unlink(path.c_str());
  {
    cluster::RouterJournal j(path);
    ASSERT_TRUE(j.open());
    j.record_node({1, "tcp:127.0.0.1:9001", true});
    j.record_node({2, "tcp:127.0.0.1:9002", true});
    j.record_slo({2.5, 80.0, 0.8});
    j.record_node({2, "", false});  // removed: last writer wins
    j.record_node({3, "uds:/tmp/r3.sock", true});
    j.record_reply(5, 42, {1, 2, 3, 4});
    j.record_reply(6, 43, {9, 8});
  }
  const auto state = cluster::RouterJournal::replay(path);
  ASSERT_EQ(state.nodes.size(), 2u);  // node 2's removal erased it
  EXPECT_EQ(state.nodes[0].node, 1u);
  EXPECT_EQ(state.nodes[0].endpoint, "tcp:127.0.0.1:9001");
  EXPECT_EQ(state.nodes[1].node, 3u);
  EXPECT_EQ(state.nodes[1].endpoint, "uds:/tmp/r3.sock");
  EXPECT_EQ(state.max_node_id, 3u);
  ASSERT_TRUE(state.slo.has_value());
  EXPECT_DOUBLE_EQ(state.slo->hard_deadline_ms, 2.5);
  EXPECT_DOUBLE_EQ(state.slo->best_effort_deadline_ms, 80.0);
  EXPECT_DOUBLE_EQ(state.slo->admission_margin, 0.8);
  ASSERT_EQ(state.replies.size(), 2u);
  EXPECT_EQ(state.replies[0].stream, 5u);
  EXPECT_EQ(state.replies[0].req_id, 42u);
  EXPECT_EQ(state.replies[0].reply, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(state.replies[1].req_id, 43u);
  ::unlink(path.c_str());
}

TEST(RouterJournal, TornTailIsDiscardedNotTrusted) {
  const auto path = journal_path("torn");
  ::unlink(path.c_str());
  {
    cluster::RouterJournal j(path);
    j.record_reply(1, 10, {0xAA, 0xBB});
    j.record_reply(1, 11, {0xCC});
    j.record_reply(1, 12, {0xDD, 0xEE, 0xFF});
  }
  // A SIGKILL mid-append leaves a short final record: chop off its tail.
  struct ::stat st = {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);

  const auto state = cluster::RouterJournal::replay(path);
  ASSERT_EQ(state.replies.size(), 2u);  // the torn third is dropped
  EXPECT_EQ(state.replies[0].req_id, 10u);
  EXPECT_EQ(state.replies[1].req_id, 11u);
  ::unlink(path.c_str());
}

TEST(RouterJournal, MissingFileReplaysEmpty) {
  const auto state =
      cluster::RouterJournal::replay(journal_path("never-written"));
  EXPECT_TRUE(state.nodes.empty());
  EXPECT_TRUE(state.replies.empty());
  EXPECT_FALSE(state.slo.has_value());
}

// ---- RouterFailover: dedup, rebind, stall defense, journal recovery ------

TEST(RouterFailover, DuplicateSubmitIsServedIdenticalBytesFromDedup) {
  ReplicaProc a(kMonitors, 0us);
  RouterRun run(router_config({a.endpoint}));
  cluster::ClusterClient client(run.router.bound().str());

  const auto tick = make_tick(4, 0);
  ASSERT_TRUE(client.submit(tick));
  auto first = client.poll(10000.0);
  ASSERT_TRUE(first && first->type == cluster::MsgType::kResult);

  // Same (stream, req_id) again: the answer must come from the dedup
  // window, byte-for-byte identical — the tick is NOT re-executed.
  ASSERT_TRUE(client.submit(tick));
  auto second = client.poll(10000.0);
  ASSERT_TRUE(second && second->type == cluster::MsgType::kResult);
  EXPECT_EQ(second->payload, first->payload);

  EXPECT_GE(scan_counter(run.router.stats_json(), "dedup_hits"), 1u);
}

TEST(RouterFailover, ResubmissionAfterClientDeathRebindsOrDedups) {
  ReplicaProc a(kMonitors, 20ms);  // slow enough that the job is in flight
  RouterRun run(router_config({a.endpoint}));

  const auto tick = make_tick(2, 0);
  {
    cluster::ClusterClient doomed(run.router.bound().str());
    ASSERT_TRUE(doomed.submit(tick));
    // Give the router time to read + dispatch, then vanish unannounced.
    std::this_thread::sleep_for(5ms);
  }
  cluster::ClusterClient heir(run.router.bound().str());
  ASSERT_TRUE(heir.submit(tick));
  auto msg = heir.poll(10000.0);
  ASSERT_TRUE(msg && msg->type == cluster::MsgType::kResult);
  const auto r = cluster::decode_result(msg->payload);
  EXPECT_EQ(r.id, tick.req_id);
  EXPECT_EQ(r.data, expected_output(tick_counts(2, 0)));

  // Depending on timing the duplicate lands while the job is in flight
  // (rebind) or after it finished (dedup); either path is exactly-once.
  const auto stats = run.router.stats_json();
  EXPECT_GE(scan_counter(stats, "inflight_rebinds") +
                scan_counter(stats, "dedup_hits"),
            1u);
}

TEST(RouterFailover, StalledReplicaIsQuarantinedAndJobsRedispatched) {
  ReplicaProc real(kMonitors, 0us);
  SilentReplica sink;  // reads jobs forever, never answers, never closes

  // Pick streams the ring pins to the sink (node 2) so the stall defense is
  // the only thing that can save them.
  cluster::HashRing sim(64);
  sim.add(1);
  sim.add(2);
  std::vector<std::uint64_t> streams;
  for (std::uint64_t s = 0; s < 32 && streams.size() < 4; ++s) {
    if (sim.owner(s) == 2) streams.push_back(s);
  }
  ASSERT_FALSE(streams.empty());

  auto cfg = router_config({real.endpoint, sink.endpoint()});
  cfg.stall_timeout_ms = 200.0;  // a slow-loris peer is cut off quickly
  cfg.reconnect_attempts = 1;
  cfg.reconnect_backoff_initial_ms = 10.0;
  cfg.reconnect_backoff_max_ms = 20.0;
  RouterRun run(std::move(cfg));

  cluster::ClusterClient client(run.router.bound().str());
  Ledger led;
  for (std::uint32_t seq = 0; seq < 2; ++seq) {
    for (const auto stream : streams) submit_tick(client, led, stream, seq);
  }
  drain_all(client, led);

  EXPECT_EQ(led.terminal(), led.submitted);
  EXPECT_EQ(led.results, led.submitted);  // re-executed on the live node
  EXPECT_EQ(led.duplicated(), 0u);
  EXPECT_EQ(led.mismatched, 0u);

  const auto stats = run.router.stats_json();
  EXPECT_GE(scan_counter(stats, "stalled_peers"), 1u);
  EXPECT_GE(scan_counter(stats, "redispatched_jobs"), 1u);
}

TEST(RouterFailover, MalformedEnvelopeGetsDisconnected) {
  ReplicaProc a(kMonitors, 0us);
  RouterRun run(router_config({a.endpoint}));

  auto fd = cluster::connect_to(run.router.bound(), 2000.0);
  std::vector<std::uint8_t> out;
  cluster::append_hello(out, {cluster::Role::kClient,
                              cluster::kProtocolVersion});
  // An envelope claiming a 4 GiB payload: implausible, instant disconnect.
  const std::size_t at = out.size();
  out.resize(out.size() + cluster::kEnvelopeHeader, 0);
  out[at] = 0xff;
  out[at + 1] = 0xff;
  out[at + 2] = 0xff;
  out[at + 3] = 0xff;
  ASSERT_TRUE(cluster::write_all(fd.get(), out.data(), out.size(), 2000.0));

  // The router must hang up on us (EOF), not keep buffering garbage.
  const auto t0 = Clock::now();
  bool hung_up = false;
  std::uint8_t buf[256];
  while (elapsed_ms(t0) < 10000.0 && !hung_up) {
    cluster::Poller poller;
    poller.want(fd.get(), true, false);
    poller.wait(50);
    hung_up = cluster::read_some(fd.get(), buf, sizeof(buf)) < 0;
  }
  EXPECT_TRUE(hung_up);
  EXPECT_GE(scan_counter(run.router.stats_json(), "malformed_disconnects"),
            1u);
}

TEST(RouterFailover, JournalRecoveryServesDedupAcrossRestart) {
  const auto path = journal_path("recovery");
  ::unlink(path.c_str());
  ReplicaProc a(kMonitors, 0us);
  const auto tick = make_tick(8, 1);

  std::string endpoint;
  std::vector<std::uint8_t> first_payload;
  {
    auto cfg = router_config({a.endpoint});
    cfg.journal_path = path;
    RouterRun run(std::move(cfg));
    endpoint = run.router.bound().str();
    cluster::ClusterClient client(endpoint);
    ASSERT_TRUE(client.submit(tick));
    auto msg = client.poll(10000.0);
    ASSERT_TRUE(msg && msg->type == cluster::MsgType::kResult);
    first_payload = msg->payload;
  }  // router gone; journal remembers the replica and the answer

  auto cfg = router_config({});  // membership comes from the journal alone
  cfg.listen = cluster::Endpoint::parse(endpoint);
  cfg.journal_path = path;
  RouterRun run(std::move(cfg));

  cluster::ClusterClient client(endpoint);
  ASSERT_TRUE(client.submit(tick));  // the resubmission a real client sends
  auto msg = client.poll(10000.0);
  ASSERT_TRUE(msg && msg->type == cluster::MsgType::kResult);
  EXPECT_EQ(msg->payload, first_payload);  // bit-identical across death

  const auto stats = run.router.stats_json();
  EXPECT_GE(scan_counter(stats, "journal_recovered_nodes"), 1u);
  EXPECT_GE(scan_counter(stats, "journal_recovered_replies"), 1u);
  EXPECT_GE(scan_counter(stats, "dedup_hits"), 1u);
  ::unlink(path.c_str());
}

TEST(RouterFailover, ResilientClientRidesThroughRouterRestart) {
  const auto path = journal_path("resilient");
  ::unlink(path.c_str());
  ReplicaProc a(kMonitors, 0us);

  cluster::ResilientClientConfig ccfg;
  ccfg.connect_timeout_ms = 300.0;
  ccfg.backoff_initial_ms = 5.0;
  ccfg.backoff_max_ms = 50.0;
  std::string endpoint;
  {
    auto cfg = router_config({a.endpoint});
    cfg.journal_path = path;
    RouterRun run(std::move(cfg));
    endpoint = run.router.bound().str();
    cluster::ResilientClient rc(endpoint, ccfg);
    for (std::uint32_t seq = 0; seq < 3; ++seq) {
      ASSERT_TRUE(rc.submit(make_tick(7, seq)));
      auto msg = rc.poll(10000.0);
      ASSERT_TRUE(msg && msg->type == cluster::MsgType::kResult);
    }
    EXPECT_EQ(rc.unacked(), 0u);

    // Router dies between scopes; the client keeps the next tick queued.
    run.router.request_stop();
    run.thread.join();
    rc.submit(make_tick(7, 3));  // router is down: queued, not lost
    EXPECT_EQ(rc.unacked(), 1u);

    auto cfg2 = router_config({});
    cfg2.listen = cluster::Endpoint::parse(endpoint);
    cfg2.journal_path = path;
    RouterRun revived(std::move(cfg2));

    std::optional<cluster::Message> msg;
    const auto t0 = Clock::now();
    while (!msg && elapsed_ms(t0) < 15000.0) msg = rc.poll(250.0);
    ASSERT_TRUE(msg && msg->type == cluster::MsgType::kResult);
    const auto r = cluster::decode_result(msg->payload);
    EXPECT_EQ(r.id, make_tick(7, 3).req_id);
    EXPECT_EQ(r.data, expected_output(tick_counts(7, 3)));
    EXPECT_GE(rc.reconnects(), 2u);   // initial connect + post-restart
    EXPECT_GE(rc.resubmissions(), 1u);
    EXPECT_EQ(rc.unacked(), 0u);
  }
  ::unlink(path.c_str());
}

// ---- RouterAdmin: thread-safe API under concurrent traffic (TSan) -------

TEST(RouterAdmin, StatsReplyDoesNotDropInterleavedResults) {
  // Regression: waiting for an admin reply on a connection that also
  // carries traffic used to discard any result that arrived first. The
  // client now buffers non-matching messages and serves them from the
  // next poll().
  ReplicaProc a(kMonitors, 0us);
  RouterRun run(router_config({a.endpoint}));
  cluster::ClusterClient client(run.router.bound().str());

  const auto tick = make_tick(1, 0);
  ASSERT_TRUE(client.submit(tick));
  // Let the result land in our socket before the stats request goes out,
  // so wait_for(kStatsReply) must read past it.
  std::this_thread::sleep_for(100ms);
  const auto stats = client.stats(10000.0);
  EXPECT_NE(stats.find("cluster_counters"), std::string::npos);

  auto msg = client.poll(5000.0);
  ASSERT_TRUE(msg.has_value());  // the result survived the admin exchange
  ASSERT_EQ(msg->type, cluster::MsgType::kResult);
  EXPECT_EQ(cluster::decode_result(msg->payload).id, tick.req_id);
}

TEST(RouterAdmin, StatsAndMembershipConcurrentWithTraffic) {
  ReplicaProc a(kMonitors, 0us);
  ReplicaProc b(kMonitors, 0us);
  ReplicaProc extra(kMonitors, 0us);
  RouterRun run(router_config({a.endpoint, b.endpoint}));

  std::atomic<bool> done{false};
  Ledger led;
  std::thread traffic([&] {
    cluster::ClusterClient client(run.router.bound().str());
    for (std::uint32_t seq = 0; seq < 40; ++seq) {
      for (std::uint64_t stream = 0; stream < 4; ++stream) {
        submit_tick(client, led, stream, seq);
      }
      while (auto msg = client.poll(0.0)) note_reply(led, *msg);
    }
    drain_all(client, led);
    done.store(true);
  });
  std::thread stats([&] {
    while (!done.load()) {
      EXPECT_NE(run.router.stats_json().find("cluster_counters"),
                std::string::npos);
      std::this_thread::sleep_for(1ms);
    }
  });
  std::thread membership([&] {
    for (int i = 0; i < 3 && !done.load(); ++i) {
      const auto node = run.router.add_replica(extra.endpoint);
      EXPECT_NE(node, 0u);
      EXPECT_TRUE(run.router.remove_replica(node));
    }
  });
  traffic.join();
  membership.join();
  stats.join();

  EXPECT_EQ(led.terminal(), led.submitted);
  EXPECT_EQ(led.duplicated(), 0u);
  EXPECT_EQ(led.mismatched, 0u);
}

}  // namespace
