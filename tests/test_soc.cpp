// SoC simulator tests: event ordering, RAM port semantics, control FSM,
// HPS frame sequencing, end-to-end functional equivalence, OS jitter
// statistics, and the DMA-vs-MMIO transfer ablation.
#include <gtest/gtest.h>

#include <memory>

#include "hls/firmware.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "soc/control_ip.hpp"
#include "soc/event_sim.hpp"
#include "soc/hps.hpp"
#include "soc/ocram.hpp"
#include "soc/system.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

// ---------------------------------------------------------------- EventSim

TEST(EventSim, ExecutesInTimeOrder) {
  soc::EventSim sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(EventSim, StableOrderAtEqualTimestamps) {
  soc::EventSim sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSim, NestedScheduling) {
  soc::EventSim sim;
  int fired = 0;
  sim.schedule_at(5, [&] {
    sim.schedule_in(10, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
}

TEST(EventSim, RejectsPastScheduling) {
  soc::EventSim sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventSim, RunUntilAdvancesClock) {
  soc::EventSim sim;
  int fired = 0;
  sim.schedule_at(50, [&] { ++fired; });
  sim.run_until(40);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 40u);
  sim.run_until(60);
  EXPECT_EQ(fired, 1);
}

// ----------------------------------------------------------------- OCRAM

TEST(OnChipRam, SixteenBitPortRoundTrips) {
  soc::OnChipRam ram(8);
  ram.write16(3, -1234);
  EXPECT_EQ(ram.read16(3), -1234);
  EXPECT_EQ(ram.writes16(), 1u);
  EXPECT_EQ(ram.reads16(), 1u);
}

TEST(OnChipRam, ThirtyTwoBitPortPacksTwoWords) {
  soc::OnChipRam ram(4);
  ram.write32(0, 0x0002'0001u);
  EXPECT_EQ(ram.read16(0), 1);
  EXPECT_EQ(ram.read16(1), 2);
  ram.write16(2, 5);
  ram.write16(3, 6);
  EXPECT_EQ(ram.read32(1), 0x0006'0005u);
}

TEST(OnChipRam, NegativeValuesThrough32BitPort) {
  soc::OnChipRam ram(2);
  ram.write16(0, -1);
  ram.write16(1, -2);
  const auto w = ram.read32(0);
  EXPECT_EQ(static_cast<std::int16_t>(w & 0xFFFF), -1);
  EXPECT_EQ(static_cast<std::int16_t>(w >> 16), -2);
}

TEST(OnChipRam, BoundsChecked) {
  soc::OnChipRam ram(4);
  EXPECT_THROW(ram.read16(4), std::out_of_range);
  EXPECT_THROW(ram.write16(4, 0), std::out_of_range);
  EXPECT_THROW(ram.write32(2, 0), std::out_of_range);
  EXPECT_THROW(soc::OnChipRam(0), std::invalid_argument);
}

// -------------------------------------------------------------- ControlIp

TEST(ControlIp, FullHandshakeCycle) {
  soc::EventSim sim;
  soc::ControlIp ctl(sim, soc::FpgaParams{});
  int started = 0;
  int irqs = 0;
  ctl.connect([&] { ++started; ctl.ip_done(); }, [&] { ++irqs; });
  ctl.write_reg(soc::ControlIp::kCtrl, 0x1);
  EXPECT_EQ(ctl.state(), soc::ControlIp::State::kRunning);
  sim.run();
  EXPECT_EQ(started, 1);
  EXPECT_EQ(irqs, 1);
  EXPECT_EQ(ctl.state(), soc::ControlIp::State::kDone);
  EXPECT_EQ(ctl.read_reg(soc::ControlIp::kStatus), 0x2u);
  ctl.write_reg(soc::ControlIp::kCtrl, 0x2);
  EXPECT_EQ(ctl.state(), soc::ControlIp::State::kIdle);
}

TEST(ControlIp, PerfCounterMeasuresRunCycles) {
  soc::EventSim sim;
  soc::FpgaParams fpga;  // 100 MHz -> 10 ns cycles
  soc::ControlIp ctl(sim, fpga);
  ctl.connect([&] { sim.schedule_in(1000, [&] { ctl.ip_done(); }); }, [] {});
  ctl.write_reg(soc::ControlIp::kCtrl, 0x1);
  sim.run();
  // 4 control cycles (40 ns) + 1000 ns run = 104 cycles.
  EXPECT_EQ(ctl.read_reg(soc::ControlIp::kPerfCounter), 104u);
}

TEST(ControlIp, TriggerWhileBusyThrows) {
  soc::EventSim sim;
  soc::ControlIp ctl(sim, soc::FpgaParams{});
  ctl.connect([] {}, [] {});
  ctl.write_reg(soc::ControlIp::kCtrl, 0x1);
  EXPECT_THROW(ctl.write_reg(soc::ControlIp::kCtrl, 0x1), std::logic_error);
}

TEST(ControlIp, SpuriousDoneThrows) {
  soc::EventSim sim;
  soc::ControlIp ctl(sim, soc::FpgaParams{});
  EXPECT_THROW(ctl.ip_done(), std::logic_error);
}

// ------------------------------------------------------------- OS jitter

TEST(OsJitter, BaseOverheadAndDeterminism) {
  soc::OsParams os;
  soc::OsJitterModel a(os, 5);
  soc::OsJitterModel b(os, 5);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.sample();
    EXPECT_EQ(va, b.sample());
    EXPECT_GT(va, static_cast<soc::SimTime>(os.irq_base_us * 1e3 * 0.7));
    EXPECT_LT(va, static_cast<soc::SimTime>(
                      (os.irq_base_us + os.major_jitter_max_us + 500) * 1e3));
  }
}

TEST(OsJitter, MajorSpikesAreRare) {
  soc::OsParams os;
  soc::OsJitterModel m(os, 7);
  int spikes = 0;
  const auto threshold =
      static_cast<soc::SimTime>((os.irq_base_us + os.major_jitter_min_us) * 1e3);
  for (int i = 0; i < 20000; ++i) {
    if (m.sample() > threshold) ++spikes;
  }
  EXPECT_LT(spikes, 40);  // ~0.04% nominal
}

// --------------------------------------------------------- full system

struct SmallSystem {
  nn::Model model;
  std::unique_ptr<hls::QuantizedModel> qm;
  std::unique_ptr<soc::ArriaSocSystem> soc_sys;

  explicit SmallSystem(std::uint64_t seed = 1)
      : model(nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5})) {
    nn::init_he_uniform(model, seed);
    std::vector<Tensor> calib;
    util::Xoshiro256 rng(seed + 1);
    for (int i = 0; i < 4; ++i) {
      Tensor t({16, 1});
      for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
      calib.push_back(std::move(t));
    }
    const auto prof = hls::profile_model(model, calib);
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(model, prof, 16);
    qm = std::make_unique<hls::QuantizedModel>(hls::compile(model, cfg));
    soc_sys = std::make_unique<soc::ArriaSocSystem>(*qm, soc::SocParams{}, seed);
  }

  Tensor frame(std::uint64_t seed) const {
    util::Xoshiro256 rng(seed);
    Tensor t({16, 1});
    for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
    return t;
  }
};

TEST(ArriaSocSystem, OutputMatchesDirectQuantizedInference) {
  SmallSystem s;
  for (int i = 0; i < 3; ++i) {
    const auto f = s.frame(100u + static_cast<unsigned>(i));
    const auto via_soc = s.soc_sys->process(f).output;
    const auto direct = s.qm->forward(f);
    EXPECT_EQ(tensor::max_abs_diff(via_soc, direct), 0.0f) << i;
  }
}

TEST(ArriaSocSystem, TimingBreakdownIsConsistent) {
  SmallSystem s;
  const auto r = s.soc_sys->process(s.frame(7));
  const auto& t = r.timing;
  EXPECT_GT(t.write_us, 0.0);
  EXPECT_GT(t.ip_us, 0.0);
  EXPECT_GT(t.irq_os_us, 0.0);
  EXPECT_GT(t.read_us, 0.0);
  EXPECT_NEAR(t.total_ms,
              (t.write_us + t.trigger_us + t.ip_us + t.irq_os_us + t.read_us) /
                  1e3,
              1e-6);
  EXPECT_TRUE(t.deadline_met);
}

TEST(ArriaSocSystem, IpTimeMatchesLatencyModel) {
  SmallSystem s;
  const auto r = s.soc_sys->process(s.frame(8));
  const double expected_us =
      static_cast<double>(s.soc_sys->ip().run_cycles()) * 0.01;  // 100 MHz
  // plus the control handshake cycles (trigger sync + done + irq edge)
  EXPECT_NEAR(r.timing.ip_us, expected_us, 0.2);
}

TEST(ArriaSocSystem, TransferCountersMatchFrameSize) {
  SmallSystem s;
  s.soc_sys->process(s.frame(9));
  const auto& c = s.soc_sys->transfer_counters();
  // 16 inputs packed 2/word = 8 writes + trigger + done-clear = 10;
  // 32 outputs packed 2/word = 16 reads.
  EXPECT_EQ(c.bridge_writes, 10u);
  EXPECT_EQ(c.bridge_reads, 16u);
}

TEST(ArriaSocSystem, StreamMeetsPaperRates) {
  SmallSystem s;
  std::vector<Tensor> frames;
  for (int i = 0; i < 10; ++i) frames.push_back(s.frame(200u + static_cast<unsigned>(i)));
  const auto rep = s.soc_sys->run_stream(frames, 320.0);
  EXPECT_EQ(rep.frames, 10u);
  EXPECT_EQ(rep.deadline_misses, 0u);
  EXPECT_GT(rep.capacity_fps, 320.0);
  // Keeping up with the offered 320 fps: the observed wall-clock rate is the
  // offered rate (the stream spans the arrival schedule), within the slack
  // of the final frame's completion.
  EXPECT_GT(rep.observed_fps, 300.0);
  EXPECT_LE(rep.observed_fps, rep.capacity_fps + 1e-9);
}

TEST(ArriaSocSystem, LatencyVariesAcrossFramesViaOsJitter) {
  SmallSystem s;
  const auto a = s.soc_sys->process(s.frame(1)).timing.total_ms;
  const auto b = s.soc_sys->process(s.frame(1)).timing.total_ms;
  EXPECT_NE(a, b);  // same frame, different OS jitter draw
}

TEST(ArriaSocSystem, StreamCountsDeadlineMissesHonestly) {
  SmallSystem s;
  // An artificially tight deadline forces every frame to miss.
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 51);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 9});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  soc::SocParams params;
  params.deadline_ms = 0.01;
  soc::ArriaSocSystem tight(qm, params, 3);
  std::vector<Tensor> frames(4, Tensor({16, 1}));
  const auto rep = tight.run_stream(frames, 320.0);
  EXPECT_EQ(rep.deadline_misses, 4u);
  EXPECT_GT(rep.min_latency_ms, 0.01);
  ASSERT_EQ(rep.timings.size(), 4u);
  for (const auto& t : rep.timings) EXPECT_FALSE(t.deadline_met);
}

TEST(ArriaSocSystem, BacklogGrowsWhenArrivalRateExceedsService) {
  SmallSystem s;
  std::vector<Tensor> frames(6, Tensor({16, 1}));
  // Arrival period far below the service time: later frames queue, so their
  // arrival-to-completion latency must exceed a lone frame's.
  const auto solo = s.soc_sys->process(frames[0]).timing.total_ms;
  const auto rep = s.soc_sys->run_stream(frames, 1e5);
  EXPECT_GT(rep.max_latency_ms, 3.0 * solo);
}

// Regression: process() used to judge deadline_met on service time alone
// while run_stream counted misses against arrival-to-completion latency, so
// an over-subscribed stream could report misses whose frames all claimed
// deadline_met. Both now use end-to-end latency and must agree exactly.
TEST(ArriaSocSystem, StreamDeadlineVerdictsAgreeWithMissCount) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 77);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 9});
  const hls::QuantizedModel qm(hls::compile(model, cfg));

  soc::SocParams params;
  soc::ArriaSocSystem probe(qm, params, 9);
  const double solo_ms = probe.process(Tensor({16, 1})).timing.total_ms;

  // Deadline above any single service time but below the queueing delay the
  // over-subscribed arrivals build up: early frames meet it, late ones miss.
  params.deadline_ms = 2.5 * solo_ms;
  soc::ArriaSocSystem system(qm, params, 9);
  std::vector<Tensor> frames(8, Tensor({16, 1}));
  const auto rep = system.run_stream(frames, 1e5);

  ASSERT_EQ(rep.timings.size(), frames.size());
  std::size_t misses = 0;
  for (const auto& t : rep.timings) {
    EXPECT_EQ(t.deadline_met, t.latency_ms <= params.deadline_ms);
    EXPECT_NEAR(t.latency_ms, t.queue_us / 1e3 + t.total_ms, 1e-9);
    // Service time alone stays under the deadline — only the end-to-end
    // definition can catch these misses.
    EXPECT_LE(t.total_ms, params.deadline_ms);
    if (!t.deadline_met) ++misses;
  }
  EXPECT_EQ(misses, rep.deadline_misses);
  EXPECT_GT(rep.deadline_misses, 0u);
  EXPECT_LT(rep.deadline_misses, frames.size());
}

TEST(ArriaSocSystem, PollingModeIsDeterministicAndIrqFree) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 31);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 9});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  soc::SocParams params;
  params.os.notify = soc::NotifyMode::kPolling;
  soc::ArriaSocSystem system(qm, params, 5);
  const tensor::Tensor frame({16, 1});
  const auto a = system.process(frame).timing;
  const auto b = system.process(frame).timing;
  EXPECT_EQ(a.total_ms, b.total_ms);  // no OS jitter in the path
  // The irq+OS slot now holds only the final status read.
  EXPECT_LT(a.irq_os_us, 1.0);
  // Polls show up as extra bridge reads beyond the output words.
  EXPECT_GT(system.transfer_counters().bridge_reads, 2u * 16u);
}

TEST(ArriaSocSystem, PollingAndIrqProduceIdenticalOutputs) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 33);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 9});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  soc::SocParams polling;
  polling.os.notify = soc::NotifyMode::kPolling;
  soc::ArriaSocSystem sys_poll(qm, polling, 5);
  soc::ArriaSocSystem sys_irq(qm, soc::SocParams{}, 5);
  util::Xoshiro256 rng(34);
  tensor::Tensor frame({16, 1});
  for (auto& v : frame.flat()) v = static_cast<float>(rng.normal());
  EXPECT_EQ(tensor::max_abs_diff(sys_poll.process(frame).output,
                                 sys_irq.process(frame).output),
            0.0f);
}

TEST(CompareTransfer, MmioWinsForControlSizedFrames) {
  const soc::SocParams params;
  const auto small = soc::compare_transfer(260, 520, params);
  EXPECT_LT(small.mmio_us, small.dma_us);  // Table I discussion
  // DMA must win eventually for bulk transfers.
  const auto bulk = soc::compare_transfer(200'000, 200'000, params);
  EXPECT_GT(bulk.mmio_us, bulk.dma_us);
}

TEST(NnIpCore, RejectsWideFirmwareOnSixteenBitInterface) {
  auto model = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 2});
  nn::init_he_uniform(model, 3);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({18, 10});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  EXPECT_THROW(soc::ArriaSocSystem(qm, soc::SocParams{}, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------- NN-IP watchdog

TEST(Watchdog, ResetAndRetryIsBitIdenticalWithTimeoutAccounted) {
  SmallSystem s;
  const auto frame = s.frame(42);
  const auto clean = s.soc_sys->process(frame);

  soc::ArriaSocSystem sys(*s.qm, soc::SocParams{}, 1);
  sys.set_ip_hang_hook([](std::uint64_t run) { return run == 1; });
  const auto r = sys.process(frame);
  // The retried frame is the validated firmware path, bit-for-bit; only the
  // timing carries the scar (timeout + reset folded into ip_us).
  EXPECT_EQ(tensor::max_abs_diff(r.output, clean.output), 0.0f);
  EXPECT_FALSE(r.ip_fallback);
  EXPECT_EQ(r.watchdog_timeouts, 1u);
  const auto& wd = soc::SocParams{}.watchdog;
  EXPECT_GT(r.timing.ip_us, wd.timeout_us);  // penalty visible in breakdown
  EXPECT_NEAR(r.timing.total_ms,
              (r.timing.write_us + r.timing.trigger_us + r.timing.ip_us +
               r.timing.irq_os_us + r.timing.read_us) /
                  1e3,
              1e-6);
  EXPECT_EQ(sys.watchdog_timeouts(), 1u);
  EXPECT_EQ(sys.ip_resets(), 1u);
  EXPECT_EQ(sys.fallback_frames(), 0u);
}

TEST(Watchdog, ExhaustedRetriesHandTheFrameBackForFallback) {
  SmallSystem s;
  soc::ArriaSocSystem sys(*s.qm, soc::SocParams{}, 1);
  sys.set_ip_hang_hook([](std::uint64_t) { return true; });  // wedged solid
  const auto r = sys.process(s.frame(43));
  EXPECT_TRUE(r.ip_fallback);
  EXPECT_EQ(r.output.numel(), 0u);  // no fabric output to trust
  const auto& wd = soc::SocParams{}.watchdog;
  EXPECT_EQ(r.watchdog_timeouts, 1u + wd.max_retries);
  // The wedged frame costs every timeout + reset plus the float forward the
  // ARM core runs in the fabric's place.
  const double expected_us =
      static_cast<double>(1 + wd.max_retries) * (wd.timeout_us + wd.reset_us) +
      soc::SocParams{}.hps_float_forward_us;
  EXPECT_NEAR(r.timing.total_ms, expected_us / 1e3, 1e-9);
  EXPECT_EQ(sys.fallback_frames(), 1u);
  EXPECT_EQ(sys.ip_resets(), 1u + wd.max_retries);

  // The IP is reset, not poisoned: the next frame runs clean.
  const auto clean = s.soc_sys->process(s.frame(44));
  sys.set_ip_hang_hook(nullptr);
  const auto next = sys.process(s.frame(44));
  EXPECT_FALSE(next.ip_fallback);
  EXPECT_EQ(tensor::max_abs_diff(next.output, clean.output), 0.0f);
}

TEST(Watchdog, DisabledWatchdogStillFailsLoudOnAHang) {
  SmallSystem s;
  soc::SocParams params;
  params.watchdog.timeout_us = 0.0;  // watchdog off: a hang is fatal again
  soc::ArriaSocSystem sys(*s.qm, params, 1);
  sys.set_ip_hang_hook([](std::uint64_t) { return true; });
  EXPECT_THROW(sys.process(s.frame(45)), std::logic_error);
}

TEST(Watchdog, PollingModeGivesUpAtTheTimeoutInsteadOfSpinningForever) {
  SmallSystem s;
  soc::SocParams params;
  params.os.notify = soc::NotifyMode::kPolling;
  soc::ArriaSocSystem sys(*s.qm, params, 1);
  sys.set_ip_hang_hook([](std::uint64_t) { return true; });
  // Without the poll-loop's give-up bound this would never return: the
  // status register stays busy forever. With it, the watchdog path reports
  // the hang exactly like interrupt mode does.
  const auto r = sys.process(s.frame(46));
  EXPECT_TRUE(r.ip_fallback);
  EXPECT_EQ(r.watchdog_timeouts, 1u + params.watchdog.max_retries);
}

// ------------------------------------- partial reconfiguration / hot-swap

TEST(Reconfiguration, WindowServesFallbackThenResumesBitIdentically) {
  SmallSystem s;
  const auto frame = s.frame(50);
  const auto before = s.soc_sys->process(frame).output;

  s.soc_sys->begin_reconfigure(3);
  EXPECT_TRUE(s.soc_sys->reconfiguring());
  const auto& params = s.soc_sys->params();
  for (int i = 0; i < 3; ++i) {
    const auto r = s.soc_sys->process(frame);
    EXPECT_TRUE(r.ip_fallback) << i;
    EXPECT_TRUE(r.reconfiguring) << i;
    EXPECT_EQ(r.output.numel(), 0u) << "no IP output inside the window";
    // A window tick is charged the modelled HPS float-forward cost and its
    // deadline verdict is measured against it, not asserted by fiat.
    EXPECT_NEAR(r.timing.total_ms, params.hps_float_forward_us / 1e3, 1e-9);
    EXPECT_NEAR(r.timing.latency_ms, params.hps_float_forward_us / 1e3, 1e-9);
    EXPECT_EQ(r.timing.deadline_met,
              r.timing.latency_ms <= params.deadline_ms);
    EXPECT_TRUE(r.timing.deadline_met);
  }
  EXPECT_FALSE(s.soc_sys->reconfiguring());
  EXPECT_EQ(s.soc_sys->reconfig_fallback_frames(), 3u);

  // Window drained with no install: the incumbent firmware still serves,
  // bit-identical to before the window opened.
  const auto after = s.soc_sys->process(frame);
  EXPECT_FALSE(after.reconfiguring);
  EXPECT_EQ(after.output, before);
}

TEST(Reconfiguration, InstallInsideWindowThrowsAfterWindowSwaps) {
  SmallSystem s;
  SmallSystem other(2);  // same geometry, different weights
  const auto frame = s.frame(51);

  s.soc_sys->begin_reconfigure(2);
  EXPECT_THROW(s.soc_sys->install_firmware(*other.qm), std::logic_error)
      << "install while the fabric region is mid-reprogram must refuse";

  s.soc_sys->process(frame);
  s.soc_sys->process(frame);
  EXPECT_FALSE(s.soc_sys->reconfiguring());
  s.soc_sys->install_firmware(*other.qm);
  EXPECT_EQ(s.soc_sys->firmware_swaps(), 1u);

  // The swapped-in firmware serves, bit-identical to direct inference on
  // the new model — and differs from the old generation's output.
  const auto r = s.soc_sys->process(frame);
  EXPECT_EQ(r.output, other.qm->forward(frame));
  EXPECT_NE(r.output, s.qm->forward(frame));
}

TEST(Reconfiguration, InstallRejectsGeometryMismatch) {
  SmallSystem s;
  // An 8-monitor firmware cannot land in a 16-monitor system's region.
  nn::Model small = nn::build_unet({.monitors = 8, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(small, 3);
  std::vector<Tensor> calib;
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 4; ++i) {
    Tensor t({8, 1});
    for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
    calib.push_back(std::move(t));
  }
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(small, hls::profile_model(small, calib), 16);
  const hls::QuantizedModel mismatched(hls::compile(small, cfg));
  EXPECT_THROW(s.soc_sys->install_firmware(mismatched), std::invalid_argument);
}

}  // namespace
