// Autotune subsystem tests: search-space round-trips against the
// layer_based_config seed, exactness of the skeleton cheap screen,
// surrogate fitting + thread safety, Pareto front bookkeeping, analytical
// model monotonicity across every tunable layer shape, and end-to-end
// determinism of the tuner on a tiny U-Net.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/pareto.hpp"
#include "autotune/space.hpp"
#include "autotune/surrogate.hpp"
#include "autotune/tuner.hpp"
#include "blm/generator.hpp"
#include "hls/firmware.hpp"
#include "hls/latency.hpp"
#include "hls/profiler.hpp"
#include "hls/resource.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "train/standardize.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

blm::MachineConfig tiny_machine() {
  auto cfg = blm::MachineConfig::fermilab_like();
  cfg.monitors = 16;
  cfg.mi.source_positions = {2, 9};
  cfg.rr.source_positions = {5, 13};
  return cfg;
}

/// A trained-enough model + standardized frames + seed-point firmware.
struct Rig {
  nn::Model model;
  train::Standardizer standardizer;
  std::vector<Tensor> calib;  ///< standardized, model-shaped
  hls::FirmwareModel firmware;
};

Rig unet_rig(std::uint64_t seed = 1, std::size_t frames = 12) {
  Rig r{nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5}),
        {},
        {},
        {}};
  nn::init_he_uniform(r.model, seed);
  blm::FrameGenerator gen(tiny_machine(), seed + 1);
  std::vector<Tensor> raws;
  for (std::size_t i = 0; i < frames; ++i) raws.push_back(gen.next().raw);
  r.standardizer.fit_global(raws);
  for (const auto& raw : raws) r.calib.push_back(r.standardizer.transform(raw));
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(
      r.model, hls::profile_model(r.model, r.calib), 16);
  r.firmware = hls::compile(r.model, cfg);
  return r;
}

Rig mlp_rig(std::uint64_t seed = 2, std::size_t frames = 12) {
  Rig r{nn::build_mlp({.inputs = 16, .hidden = 8, .outputs = 32}), {}, {}, {}};
  nn::init_he_uniform(r.model, seed);
  blm::FrameGenerator gen(tiny_machine(), seed + 1);
  std::vector<Tensor> raws;
  for (std::size_t i = 0; i < frames; ++i) raws.push_back(gen.next().raw);
  r.standardizer.fit_global(raws);
  for (const auto& raw : raws) {
    auto t = r.standardizer.transform(raw);
    r.calib.push_back(t.reshaped({1, t.numel()}));
  }
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(
      r.model, hls::profile_model(r.model, r.calib), 16);
  r.firmware = hls::compile(r.model, cfg);
  return r;
}

// ------------------------------------------------------------ SearchSpace

TEST(SearchSpace, BaselineCandidateMaterializesByteIdentical) {
  const auto rig = unet_rig();
  const autotune::SearchSpace space(rig.firmware);
  ASSERT_FALSE(space.tunable_layers().empty());

  const auto cfg = space.materialize(space.baseline_candidate());
  EXPECT_EQ(cfg.quant, rig.firmware.config.quant);
  // Effective (post-clamp) reuse must round-trip; the baseline candidate
  // carries the compiled value, which may differ from the raw request.
  for (const auto& l : rig.firmware.layers) {
    if (l.mults_per_output == 0) continue;
    EXPECT_EQ(std::clamp<std::size_t>(cfg.reuse.requested(l.name), 1,
                                      l.mults_per_output),
              l.reuse)
        << l.name;
  }

  // The skeleton of the seed point is the baseline firmware itself.
  const auto skel = space.skeleton(space.baseline_candidate());
  ASSERT_EQ(skel.layers.size(), rig.firmware.layers.size());
  for (std::size_t i = 0; i < skel.layers.size(); ++i) {
    const auto& a = skel.layers[i];
    const auto& b = rig.firmware.layers[i];
    EXPECT_EQ(a.quant.activation.width, b.quant.activation.width) << a.name;
    EXPECT_EQ(a.quant.activation.int_bits, b.quant.activation.int_bits)
        << a.name;
    EXPECT_EQ(a.reuse, b.reuse) << a.name;
    EXPECT_EQ(a.instantiated_mults, b.instantiated_mults) << a.name;
  }
}

TEST(SearchSpace, SkeletonScreenMatchesFullCompileOffBaseline) {
  const auto rig = unet_rig();
  const autotune::SearchSpace space(rig.firmware);
  const autotune::Evaluator screen(space);

  // A candidate well off the seed point: narrower widths, shifted integer
  // headroom on one layer, halved reuse on another.
  autotune::Candidate c = space.baseline_candidate();
  auto it = c.genes.begin();
  it->second.width = 12;
  it->second.int_delta = 1;
  ++it;
  it->second.width = 10;
  it->second.reuse = std::max<std::size_t>(1, it->second.reuse / 2);
  c = space.clamped(std::move(c));

  const auto e = screen.cheap(c);
  const auto fw = hls::compile(rig.model, space.materialize(c));
  const auto res = hls::ResourceModel().estimate(fw);
  const auto lat = hls::LatencyModel().estimate(fw);
  std::size_t mults = 0;
  for (const auto& l : fw.layers) mults += l.instantiated_mults;
  EXPECT_EQ(e.mults, mults);
  EXPECT_EQ(e.aluts, res.total_aluts);
  EXPECT_EQ(e.dsps, res.total_dsps);
  EXPECT_EQ(e.ram_blocks, res.total_ram_blocks);
  EXPECT_EQ(e.total_cycles, lat.total_cycles);
  EXPECT_EQ(e.fits, res.fits());
}

TEST(SearchSpace, ClampedEnforcesBoundsAndRejectsUnknownLayers) {
  const auto rig = unet_rig();
  const autotune::SearchSpace space(rig.firmware);
  const auto& bounds = space.bounds();

  autotune::Candidate wild = space.baseline_candidate();
  for (auto& [name, gene] : wild.genes) {
    gene.width = 99;
    gene.int_delta = -99;
    gene.reuse = 1u << 20;
  }
  const auto clamped = space.clamped(wild);
  for (const auto& [name, gene] : clamped.genes) {
    EXPECT_EQ(gene.width, bounds.max_width);
    EXPECT_EQ(gene.int_delta, bounds.min_int_delta);
    EXPECT_LE(gene.reuse, space.max_reuse(name));
    EXPECT_GE(gene.reuse, 1u);
  }

  autotune::Candidate unknown;
  unknown.genes["no_such_layer"] = {};
  EXPECT_THROW((void)space.clamped(unknown), std::invalid_argument);
  EXPECT_THROW((void)space.max_reuse("no_such_layer"), std::invalid_argument);
}

TEST(SearchSpace, MutateIsDeterministicInBoundsAndMoves) {
  const auto rig = unet_rig();
  const autotune::SearchSpace space(rig.firmware);
  const auto parent = space.baseline_candidate();

  util::Xoshiro256 rng_a(7), rng_b(7);
  autotune::Candidate cursor_a = parent, cursor_b = parent;
  for (int i = 0; i < 50; ++i) {
    cursor_a = space.mutate(cursor_a, rng_a);
    cursor_b = space.mutate(cursor_b, rng_b);
    ASSERT_EQ(cursor_a.key(), cursor_b.key()) << "diverged at step " << i;
    EXPECT_NE(cursor_a.key(), parent.key());
    for (const auto& [name, gene] : cursor_a.genes) {
      EXPECT_GE(gene.width, space.bounds().min_width);
      EXPECT_LE(gene.width, space.bounds().max_width);
      EXPECT_GE(gene.int_delta, space.bounds().min_int_delta);
      EXPECT_LE(gene.int_delta, space.bounds().max_int_delta);
      EXPECT_GE(gene.reuse, 1u);
      EXPECT_LE(gene.reuse, space.max_reuse(name));
    }
  }
}

TEST(SearchSpace, FeaturesIgnoreReuseButSeeWidthAndHeadroom) {
  const auto rig = unet_rig();
  const autotune::SearchSpace space(rig.firmware);
  const auto base = space.baseline_candidate();

  // Reuse does not change quantized numerics, so the accuracy features of
  // a reuse-only variant must tie with the baseline exactly.
  autotune::Candidate reuse_only = base;
  for (auto& [name, gene] : reuse_only.genes) {
    gene.reuse = std::max<std::size_t>(1, gene.reuse / 2);
  }
  EXPECT_EQ(space.features(base), space.features(reuse_only));

  autotune::Candidate narrower = base;
  for (auto& [name, gene] : narrower.genes) gene.width -= 4;
  EXPECT_NE(space.features(base), space.features(narrower));

  autotune::Candidate squeezed = base;
  for (auto& [name, gene] : squeezed.genes) gene.int_delta = -1;
  EXPECT_NE(space.features(base), space.features(squeezed));
}

TEST(SearchSpace, LayerBasedConfigIsDeterministic) {
  const auto rig = unet_rig();
  const auto profile = hls::profile_model(rig.model, rig.calib);
  const auto a = hls::layer_based_config(rig.model, profile, 16);
  const auto b = hls::layer_based_config(rig.model, profile, 16);
  EXPECT_EQ(a, b);
  // And a fresh profile over the same frames changes nothing either.
  const auto c = hls::layer_based_config(
      rig.model, hls::profile_model(rig.model, rig.calib), 16);
  EXPECT_EQ(a, c);
}

// ----------------------------------------------- analytical monotonicity

/// Per-layer IP cycles must not decrease when a tunable layer's reuse goes
/// up — reuse serializes multiplies, it never speeds a layer up.
void check_latency_monotone_in_reuse(const Rig& rig) {
  const autotune::SearchSpace space(rig.firmware);
  const hls::LatencyModel model;
  for (const auto& layer : space.tunable_layers()) {
    std::size_t prev_cycles = 0;
    for (std::size_t reuse = 1; reuse <= space.max_reuse(layer); reuse *= 2) {
      autotune::Candidate c = space.baseline_candidate();
      c.genes[layer].reuse = reuse;
      const auto report = model.estimate(space.skeleton(c));
      const auto it = std::find_if(
          report.layers.begin(), report.layers.end(),
          [&](const hls::LayerLatency& l) { return l.name == layer; });
      ASSERT_NE(it, report.layers.end()) << layer;
      EXPECT_GE(it->cycles, prev_cycles) << layer << " reuse " << reuse;
      prev_cycles = it->cycles;
    }
  }
}

/// Per-layer ALUTs must not decrease when the uniform width goes up —
/// wider datapaths never get cheaper.
void check_aluts_monotone_in_width(const Rig& rig) {
  const autotune::SearchSpace space(rig.firmware);
  const hls::ResourceModel model;
  std::vector<std::size_t> prev;  // per report entry, sized on first sweep
  for (int width = space.bounds().min_width;
       width <= space.bounds().max_width; ++width) {
    autotune::Candidate c = space.baseline_candidate();
    for (auto& [name, gene] : c.genes) gene.width = width;
    const auto report = model.estimate(space.skeleton(c));
    if (prev.empty()) prev.assign(report.layers.size(), 0);
    ASSERT_EQ(report.layers.size(), prev.size());
    for (std::size_t i = 0; i < report.layers.size(); ++i) {
      EXPECT_GE(report.layers[i].aluts, prev[i])
          << report.layers[i].name << " at width " << width;
      prev[i] = report.layers[i].aluts;
    }
  }
}

TEST(AnalyticalModels, LatencyMonotoneInReuseAcrossUnetLayers) {
  check_latency_monotone_in_reuse(unet_rig());
}

TEST(AnalyticalModels, LatencyMonotoneInReuseAcrossMlpLayers) {
  check_latency_monotone_in_reuse(mlp_rig());
}

TEST(AnalyticalModels, AlutsMonotoneInWidthAcrossUnetLayers) {
  check_aluts_monotone_in_width(unet_rig());
}

TEST(AnalyticalModels, AlutsMonotoneInWidthAcrossMlpLayers) {
  check_aluts_monotone_in_width(mlp_rig());
}

// -------------------------------------------------------------- Surrogate

autotune::FeatureVec synthetic_features(util::Xoshiro256& rng) {
  autotune::FeatureVec f{};
  f[0] = 1.0;
  for (std::size_t i = 1; i < autotune::kFeatureCount; ++i) {
    f[i] = rng.uniform();
  }
  return f;
}

double synthetic_cost(const autotune::FeatureVec& f) {
  // log(cost) linear in the features — the surrogate's model class.
  double y = -6.0;
  for (std::size_t i = 1; i < autotune::kFeatureCount; ++i) {
    y += (i % 2 == 0 ? 0.8 : -0.5) * f[i];
  }
  return std::exp(y);
}

TEST(Surrogate, ColdUntilMinObservationsThenFitsLogLinearTarget) {
  autotune::SurrogateConfig cfg;
  cfg.min_observations = 8;
  autotune::Surrogate s(cfg);
  util::Xoshiro256 rng(3);

  for (std::size_t i = 0; i < cfg.min_observations - 1; ++i) {
    const auto f = synthetic_features(rng);
    EXPECT_FALSE(s.predict(f).has_value()) << "obs " << i;
    s.observe(f, synthetic_cost(f));
  }
  for (std::size_t i = 0; i < 256; ++i) {
    const auto f = synthetic_features(rng);
    s.observe(f, synthetic_cost(f));
  }
  EXPECT_EQ(s.observations(), cfg.min_observations - 1 + 256);

  for (std::size_t i = 0; i < 32; ++i) {
    const auto f = synthetic_features(rng);
    const auto p = s.predict(f);
    ASSERT_TRUE(p.has_value());
    const double truth = synthetic_cost(f);
    EXPECT_NEAR(std::log(*p), std::log(truth), 0.05) << "probe " << i;
  }
}

TEST(Surrogate, ConcurrentObserveAndPredictAcrossThePool) {
  // TSan target: many workers hammer one surrogate with interleaved
  // training and prediction.
  autotune::Surrogate s;
  util::Xoshiro256 seed_rng(11);
  std::vector<autotune::FeatureVec> feats;
  std::vector<double> costs;
  for (std::size_t i = 0; i < 512; ++i) {
    feats.push_back(synthetic_features(seed_rng));
    costs.push_back(synthetic_cost(feats.back()));
  }
  util::ThreadPool::global().parallel_for(0, feats.size(), [&](std::size_t i) {
    s.observe(feats[i], costs[i]);
    if (const auto p = s.predict(feats[i])) {
      EXPECT_TRUE(std::isfinite(*p));
      EXPECT_GE(*p, 0.0);
    }
  });
  EXPECT_EQ(s.observations(), feats.size());
  ASSERT_TRUE(s.predict(feats.front()).has_value());
}

TEST(Spearman, RanksWithTiesAndDegenerateInputs) {
  using autotune::spearman;
  EXPECT_DOUBLE_EQ(spearman({}), 0.0);
  EXPECT_DOUBLE_EQ(spearman({{1.0, 2.0}}), 0.0);
  // Constant on one side carries no rank information.
  EXPECT_DOUBLE_EQ(spearman({{1.0, 5.0}, {1.0, 7.0}, {1.0, 9.0}}), 0.0);

  // Perfectly concordant / discordant, regardless of scale.
  EXPECT_NEAR(spearman({{1, 10}, {2, 20}, {3, 90}, {4, 91}}), 1.0, 1e-12);
  EXPECT_NEAR(spearman({{1, 91}, {2, 90}, {3, 20}, {4, 10}}), -1.0, 1e-12);

  // Ties on both sides in the same places stay perfectly concordant under
  // average ranks.
  EXPECT_NEAR(spearman({{1, 10}, {2, 20}, {2, 20}, {3, 30}}), 1.0, 1e-12);
}

// ------------------------------------------------------------ ParetoFront

TEST(ParetoFront, InsertDominateAndEvict) {
  using autotune::Objectives;
  autotune::ParetoFront front;
  const auto obj = [](double err, double lat, double aluts) {
    Objectives o;
    o.quant_err = err;
    o.latency_ms = lat;
    o.aluts = aluts;
    o.dsps = 10.0;
    o.ram_blocks = 10.0;
    return o;
  };

  EXPECT_TRUE(front.insert({"a", obj(1.0, 1.0, 100.0), 0}));
  // Trade-off on another axis: joins the front.
  EXPECT_TRUE(front.insert({"b", obj(2.0, 0.3, 100.0), 1}));
  EXPECT_EQ(front.size(), 2u);

  // Dominated by "a" on every axis: rejected.
  EXPECT_FALSE(front.insert({"c", obj(1.5, 1.5, 200.0), 2}));
  // Same key again: rejected even if the objectives changed.
  EXPECT_FALSE(front.insert({"a", obj(0.1, 0.1, 1.0), 3}));
  // Equal objectives to "a": rejected (no strict improvement anywhere).
  EXPECT_FALSE(front.insert({"d", obj(1.0, 1.0, 100.0), 4}));
  EXPECT_EQ(front.size(), 2u);

  // Dominates "a": evicts it, front keeps "b" and the newcomer.
  EXPECT_TRUE(front.insert({"e", obj(0.5, 0.5, 50.0), 5}));
  EXPECT_EQ(front.size(), 2u);
  bool has_a = false, has_b = false, has_e = false;
  for (const auto& p : front.points()) {
    has_a |= p.key == "a";
    has_b |= p.key == "b";
    has_e |= p.key == "e";
  }
  EXPECT_FALSE(has_a);
  EXPECT_TRUE(has_b);
  EXPECT_TRUE(has_e);

  // dominates() itself: equal is not dominant.
  EXPECT_FALSE(autotune::dominates(obj(1, 1, 1), obj(1, 1, 1)));
  EXPECT_TRUE(autotune::dominates(obj(1, 1, 1), obj(1, 1, 2)));
  EXPECT_FALSE(autotune::dominates(obj(1, 1, 2), obj(2, 1, 1)));
}

// --------------------------------------------------------------- Autotuner

TEST(Autotuner, DeterministicDominatingSearchWithinBudget) {
  const auto rig = unet_rig(5, 10);
  const autotune::SearchSpace space(rig.firmware);
  autotune::Evaluator evaluator(space, rig.model, rig.calib);

  autotune::TuneConfig tune;
  tune.budget = 16;
  tune.proposals_per_round = 16;
  tune.shortlist = 3;
  tune.seed = 9;
  tune.surrogate.min_observations = 6;

  const auto run = [&] {
    return autotune::Autotuner(space, evaluator, tune).run();
  };
  const auto a = run();
  const auto b = run();

  EXPECT_LE(a.evaluated.size(), tune.budget);
  EXPECT_GE(a.front.size(), 1u);

  // The greedy reuse-descent chain guarantees a baseline-dominating point:
  // identical numerics at strictly fewer cycles.
  ASSERT_TRUE(a.selected_dominates);
  const auto* sel = a.selected();
  ASSERT_NE(sel, nullptr);
  EXPECT_TRUE(autotune::dominates_baseline(sel->result, a.baseline().result));
  EXPECT_LT(sel->result.cheap.latency_ms,
            a.baseline().result.cheap.latency_ms);
  EXPECT_GE(sel->result.accuracy_mi, a.baseline().result.accuracy_mi);
  EXPECT_GE(sel->result.accuracy_rr, a.baseline().result.accuracy_rr);

  // Bit-for-bit repeatable: same seed, same trajectory, same answers.
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_EQ(a.evaluated[i].candidate.key(), b.evaluated[i].candidate.key());
    EXPECT_DOUBLE_EQ(a.evaluated[i].result.quant_err(),
                     b.evaluated[i].result.quant_err());
  }
  EXPECT_EQ(a.selected_index, b.selected_index);
  EXPECT_DOUBLE_EQ(a.spearman_rank, b.spearman_rank);

  // The published Spearman is exactly spearman() over the published pairs.
  EXPECT_EQ(a.scored_pairs, a.scored.size());
  EXPECT_DOUBLE_EQ(a.spearman_rank, autotune::spearman(a.scored));
}

TEST(Autotuner, RejectsCheapOnlyEvaluatorAndTinyBudget) {
  const auto rig = unet_rig();
  const autotune::SearchSpace space(rig.firmware);
  const autotune::Evaluator cheap_only(space);
  EXPECT_THROW((void)autotune::Autotuner(space, cheap_only),
               std::invalid_argument);

  autotune::Evaluator full(space, rig.model, rig.calib);
  autotune::TuneConfig tune;
  tune.budget = 1;
  EXPECT_THROW((void)autotune::Autotuner(space, full, tune),
               std::invalid_argument);
}

}  // namespace
