// Fault-injection harness tests: Plan determinism and scheduling, Injector
// packet/IP/replica fault semantics, and the self-healing serving path
// under scheduled backend crashes.
//
// The ChaosServe suite is pure concurrency (synthetic backends, no model
// cache) and runs under ThreadSanitizer via tools/check.sh. The
// FaultPipeline suite stands up the full FacilityNode (pretrained model
// cache) and runs in the plain/ASan builds only.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "cluster/io.hpp"
#include "core/facility_node.hpp"
#include "fault/chaos_backend.hpp"
#include "fault/injector.hpp"
#include "fault/net_chaos.hpp"
#include "fault/net_plan.hpp"
#include "fault/plan.hpp"
#include "net/assembler.hpp"
#include "net/hub.hpp"
#include "net/packet.hpp"
#include "serve/gateway.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using fault::FaultEvent;
using fault::FaultKind;
using fault::Injector;
using fault::Plan;
using tensor::Tensor;

// ------------------------------------------------------------------ Plan

bool same_events(const Plan& a, const Plan& b) {
  if (a.events().size() != b.events().size()) return false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const auto& x = a.events()[i];
    const auto& y = b.events()[i];
    if (x.kind != y.kind || x.site != y.site || x.start_tick != y.start_tick ||
        x.duration_ticks != y.duration_ticks) {
      return false;
    }
  }
  return true;
}

TEST(FaultPlan, ScenarioIsDeterministicInSeedAndName) {
  const fault::ScenarioParams p{.seed = 42, .ticks = 600};
  for (const auto& name : Plan::scenario_names()) {
    EXPECT_TRUE(
        same_events(Plan::scenario(name, p), Plan::scenario(name, p)))
        << name;
  }
  // A different seed must move the storm's windows (replayability means the
  // seed is the only thing that does).
  const fault::ScenarioParams q{.seed = 43, .ticks = 600};
  EXPECT_FALSE(
      same_events(Plan::scenario("storm", p), Plan::scenario("storm", q)));
}

TEST(FaultPlan, ScenariosLeaveWarmupAndRecoveryTails) {
  const fault::ScenarioParams p{.seed = 7, .ticks = 600};
  for (const auto& name : Plan::scenario_names()) {
    const auto plan = Plan::scenario(name, p);
    if (name == "none") {
      EXPECT_TRUE(plan.empty());
      continue;
    }
    EXPECT_FALSE(plan.empty()) << name;
    EXPECT_LT(plan.last_fault_tick(), p.ticks) << name;
    for (const auto& e : plan.events()) {
      EXPECT_GE(e.start_tick, p.ticks / 10) << name;  // clean warm-up
    }
  }
}

TEST(FaultPlan, CrashScenarioCoversEveryReplica) {
  fault::ScenarioParams p{.seed = 7, .ticks = 200};
  p.replicas = 3;
  const auto plan = Plan::scenario("crash", p);
  std::set<std::size_t> sites;
  for (const auto& e : plan.events()) {
    EXPECT_EQ(e.kind, FaultKind::kReplicaCrash);
    sites.insert(e.site);
  }
  EXPECT_EQ(sites, (std::set<std::size_t>{0, 1, 2}));
}

TEST(FaultPlan, UnknownScenarioThrows) {
  EXPECT_THROW(Plan::scenario("gremlins", {}), std::invalid_argument);
}

TEST(FaultPlan, ActiveMatchesKindSiteAndWindow) {
  Plan plan;
  plan.add({FaultKind::kHubOutage, 2, 10, 5});
  EXPECT_FALSE(plan.active(FaultKind::kHubOutage, 2, 9));
  EXPECT_TRUE(plan.active(FaultKind::kHubOutage, 2, 10));
  EXPECT_TRUE(plan.active(FaultKind::kHubOutage, 2, 14));
  EXPECT_FALSE(plan.active(FaultKind::kHubOutage, 2, 15));
  EXPECT_FALSE(plan.active(FaultKind::kHubOutage, 3, 12));
  EXPECT_FALSE(plan.active(FaultKind::kPacketCorrupt, 2, 12));
  EXPECT_TRUE(plan.any(FaultKind::kHubOutage));
  EXPECT_FALSE(plan.any(FaultKind::kNnIpWedge));
  EXPECT_EQ(plan.last_fault_tick(), 14u);
}

// -------------------------------------------------------------- Injector

std::vector<net::Delivery> clean_deliveries(std::uint32_t seq,
                                            std::size_t monitors = 21,
                                            std::size_t hubs = 7) {
  const auto layout = net::hub_layout(monitors, hubs);
  std::vector<net::Delivery> ds;
  for (std::size_t h = 0; h < hubs; ++h) {
    net::Delivery d;
    d.packet.hub_id = static_cast<std::uint8_t>(h);
    d.packet.sequence = seq;
    d.packet.first_monitor = layout[h].first;
    for (std::uint16_t i = 0; i < layout[h].second; ++i) {
      d.packet.readings.push_back(
          net::encode_reading(5.0 + static_cast<double>(h)));
    }
    net::seal_packet(d.packet);
    d.arrival_us = 20.0 + static_cast<double>(h);
    ds.push_back(std::move(d));
  }
  return ds;
}

TEST(FaultInjector, EmptyPlanPerturbsNothing) {
  Injector inj(Plan{}, 7);
  auto ds = clean_deliveries(0);
  const auto before = ds;
  inj.apply(0, ds);
  ASSERT_EQ(ds.size(), before.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds[i].packet.readings, before[i].packet.readings);
    EXPECT_EQ(ds[i].packet.crc, before[i].packet.crc);
    EXPECT_FALSE(ds[i].dropped);
  }
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST(FaultInjector, OutageSilencesExactlyTheScheduledHub) {
  Plan plan;
  plan.add({FaultKind::kHubOutage, 3, 0, 2});
  Injector inj(plan, 7);
  auto ds = clean_deliveries(0);
  inj.apply(0, ds);
  for (std::size_t h = 0; h < ds.size(); ++h) {
    EXPECT_EQ(ds[h].dropped, h == 3) << h;
  }
  auto later = clean_deliveries(2);
  inj.apply(2, later);  // window over: everything flows again
  for (const auto& d : later) EXPECT_FALSE(d.dropped);
  EXPECT_EQ(inj.injected(FaultKind::kHubOutage), 1u);
}

TEST(FaultInjector, CorruptionBreaksTheCrcButNothingElse) {
  Plan plan;
  plan.add({FaultKind::kPacketCorrupt, 1, 0, 1});
  Injector inj(plan, 7);
  auto ds = clean_deliveries(0);
  inj.apply(0, ds);
  for (std::size_t h = 0; h < ds.size(); ++h) {
    EXPECT_EQ(net::packet_crc_ok(ds[h].packet), h != 1) << h;
  }
}

TEST(FaultInjector, MalformedPacketStaysWellChecksummed) {
  Plan plan;
  plan.add({FaultKind::kPacketMalform, 0, 0, 1});
  Injector inj(plan, 7);
  auto ds = clean_deliveries(0);
  const auto before = ds[0].packet;
  inj.apply(0, ds);
  // A firmware-bug packet is internally coherent (CRC passes) but its
  // header or span no longer matches the layout.
  EXPECT_TRUE(net::packet_crc_ok(ds[0].packet));
  EXPECT_TRUE(ds[0].packet.hub_id != before.hub_id ||
              ds[0].packet.first_monitor != before.first_monitor ||
              ds[0].packet.readings.size() != before.readings.size());
}

TEST(FaultInjector, DuplicateAppendsABitIdenticalCopy) {
  Plan plan;
  plan.add({FaultKind::kPacketDuplicate, 4, 0, 1});
  Injector inj(plan, 7);
  auto ds = clean_deliveries(0);
  const auto n = ds.size();
  inj.apply(0, ds);
  ASSERT_EQ(ds.size(), n + 1);
  EXPECT_EQ(ds.back().packet.hub_id, 4);
  EXPECT_EQ(ds.back().packet.crc, ds[4].packet.crc);
  EXPECT_EQ(ds.back().packet.readings, ds[4].packet.readings);
}

TEST(FaultInjector, SaturateAndNanStayWireValid) {
  Plan plan;
  plan.add({FaultKind::kReadingSaturate, 0, 0, 1});
  plan.add({FaultKind::kReadingNan, 1, 0, 1});
  Injector inj(plan, 7);
  auto ds = clean_deliveries(0);
  inj.apply(0, ds);
  // Content faults are the hub faithfully reporting a broken digitizer:
  // the CRC must still pass — only the plausibility gate can catch them.
  EXPECT_TRUE(net::packet_crc_ok(ds[0].packet));
  EXPECT_TRUE(net::packet_crc_ok(ds[1].packet));
  for (auto r : ds[0].packet.readings) EXPECT_EQ(r, 0xFFFFFFFFu);
  for (auto r : ds[1].packet.readings) EXPECT_EQ(r, 0u);
}

TEST(FaultInjector, ReorderIsASeedDeterministicPermutation) {
  Plan plan;
  plan.add({FaultKind::kPacketReorder, 0, 0, 1});
  Injector a(plan, 7);
  Injector b(plan, 7);
  auto da = clean_deliveries(0);
  auto db = clean_deliveries(0);
  a.apply(0, da);
  b.apply(0, db);
  std::vector<std::uint8_t> order_a;
  std::vector<std::uint8_t> order_b;
  for (const auto& d : da) order_a.push_back(d.packet.hub_id);
  for (const auto& d : db) order_b.push_back(d.packet.hub_id);
  EXPECT_EQ(order_a, order_b);  // same seed, same shuffle
  auto sorted = order_a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(FaultInjector, HangHookWedgesFirstAttemptAndYieldsToTheRetry) {
  Plan plan;
  plan.add({FaultKind::kNnIpHang, 0, 5, 1});
  Injector inj(plan, 7);
  auto hook = inj.ip_hang_hook();
  auto ds = clean_deliveries(5);
  inj.apply(5, ds);          // advances the injector's tick
  EXPECT_TRUE(hook(1));      // first attempt wedges
  EXPECT_FALSE(hook(2));     // the watchdog's retry succeeds
  auto clean = clean_deliveries(6);
  inj.apply(6, clean);
  EXPECT_FALSE(hook(3));     // outside the window: no wedge at all
}

TEST(FaultInjector, WedgeHookWedgesEveryAttempt) {
  Plan plan;
  plan.add({FaultKind::kNnIpWedge, 0, 0, 1});
  Injector inj(plan, 7);
  auto hook = inj.ip_hang_hook();
  auto ds = clean_deliveries(0);
  inj.apply(0, ds);
  EXPECT_TRUE(hook(1));
  EXPECT_TRUE(hook(2));
  EXPECT_TRUE(hook(3));  // retries exhausted -> HPS fallback territory
}

TEST(FaultInjector, CrashNextWalksThePerSiteOpAxis) {
  Plan plan;
  plan.add({FaultKind::kReplicaCrash, 0, 2, 2});
  Injector inj(plan, 7, /*replicas=*/2);
  // Site 0: ops 0,1 clean; 2,3 crash; 4 clean again.
  EXPECT_FALSE(inj.crash_next(0));
  EXPECT_FALSE(inj.crash_next(0));
  EXPECT_TRUE(inj.crash_next(0));
  EXPECT_TRUE(inj.crash_next(0));
  EXPECT_FALSE(inj.crash_next(0));
  // Site 1 has no events; site 9 is out of range.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(inj.crash_next(1));
  EXPECT_FALSE(inj.crash_next(9));
  EXPECT_EQ(inj.injected(FaultKind::kReplicaCrash), 2u);
}

// ---------------------------------------------- ChaosServe (TSan target)

/// Deterministic affine backend (same contract as test_serve's synthetic
/// one) so crash-recovery exactness is checkable without the model cache.
class AffineBackend final : public serve::Backend {
 public:
  std::string_view name() const noexcept override { return "affine"; }
  Tensor infer(const Tensor& frame) override {
    Tensor out = frame;
    for (auto& v : out.flat()) v = 2.0f * v + 1.0f;
    return out;
  }
};

Tensor chaos_frame(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Tensor t({n, 1});
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(ChaosServe, ScheduledCrashesNeverLoseOrForkAFrame) {
  Plan plan;
  plan.add({FaultKind::kReplicaCrash, 0, 1, 3});  // replica 0: ops 1-3 crash
  auto injector = std::make_shared<Injector>(plan, 7, 2);

  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;  // audit every frame: no shedding
  cfg.max_batch = 2;
  cfg.quarantine_after = 2;
  cfg.backoff_initial_ms = 0.25;
  cfg.backoff_max_ms = 1.0;
  std::vector<std::unique_ptr<serve::Backend>> backends;
  for (std::size_t r = 0; r < 2; ++r) {
    backends.push_back(std::make_unique<fault::ChaosBackend>(
        std::make_unique<AffineBackend>(), r, injector));
  }
  serve::Gateway gateway(std::move(backends), cfg);

  AffineBackend oracle;
  constexpr std::size_t kFrames = 32;
  std::vector<serve::Ticket> tickets;
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = chaos_frame(8, 500 + i);
    expected.push_back(oracle.infer(frame));
    tickets.push_back(gateway.submit(frame, i));
  }
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(tickets[i].admitted);
    auto resp = tickets[i].response.get();  // throws if the frame was lost
    EXPECT_TRUE(seen.insert(resp.id).second) << "duplicate response " << i;
    EXPECT_EQ(resp.output, expected[i]) << "frame " << i;
  }
  gateway.stop();

  const auto snap = gateway.metrics().snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.backend_faults, injector->injected(FaultKind::kReplicaCrash));
  EXPECT_GT(snap.backend_faults, 0u);
  // Ops 1-3 crash with quarantine_after = 2: the streak must have tripped
  // at least one quarantine/restart cycle, visible in the metrics.
  EXPECT_GE(snap.quarantines, 1u);
  EXPECT_GE(snap.restarts, 1u);
  EXPECT_EQ(gateway.replica(0).health(), serve::ReplicaHealth::kHealthy);
}

TEST(ChaosServe, GatewayRoutesAroundAPermanentlyCrashingReplica) {
  Plan plan;
  plan.add({FaultKind::kReplicaCrash, 0, 0, 100000});  // replica 0 never works
  auto injector = std::make_shared<Injector>(plan, 7, 2);

  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;
  cfg.quarantine_after = 1;
  cfg.backoff_initial_ms = 0.25;
  cfg.backoff_max_ms = 1.0;
  std::vector<std::unique_ptr<serve::Backend>> backends;
  for (std::size_t r = 0; r < 2; ++r) {
    backends.push_back(std::make_unique<fault::ChaosBackend>(
        std::make_unique<AffineBackend>(), r, injector));
  }
  serve::Gateway gateway(std::move(backends), cfg);

  AffineBackend oracle;
  constexpr std::size_t kFrames = 24;
  std::vector<serve::Ticket> tickets;
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = chaos_frame(8, 900 + i);
    expected.push_back(oracle.infer(frame));
    tickets.push_back(gateway.submit(frame, i));
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(tickets[i].admitted);
    auto resp = tickets[i].response.get();
    EXPECT_EQ(resp.output, expected[i]) << "frame " << i;
    // Replica 0 can never complete a batch, so every answer is replica 1's.
    EXPECT_EQ(resp.replica, 1u);
  }
  gateway.stop();

  const auto snap = gateway.metrics().snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_GT(snap.backend_faults, 0u);
  EXPECT_GE(snap.quarantines, 1u);
  // Work originally sharded to the sick replica must have been re-homed.
  EXPECT_GE(snap.redispatched, 1u);
}

// ---------------------------------------------- FaultPipeline (heavy)

TEST(FaultPipeline, OutageDegradesThenRejoinsTheReferenceBitForBit) {
  core::FacilityNodeConfig cfg;
  cfg.seed = 11;
  cfg.facility.assembler.max_stale_ticks = 2;
  constexpr std::uint64_t kTicks = 12;

  auto ref_node = core::FacilityNode::build(cfg);
  std::vector<core::TickReport> ref;
  for (std::uint64_t t = 0; t < kTicks; ++t) ref.push_back(ref_node.tick());

  Plan plan;
  plan.add({FaultKind::kHubOutage, 3, 3, 4});  // hub 3 dark, ticks 3-6
  auto injector = std::make_shared<Injector>(plan, cfg.seed);
  auto node = core::FacilityNode::build(cfg);
  node.facility_mutable().set_delivery_tap(
      [injector](std::uint32_t seq, std::vector<net::Delivery>& ds) {
        injector->apply(seq, ds);
      });

  for (std::uint64_t t = 0; t < kTicks; ++t) {
    const auto rep = node.tick();
    ASSERT_GT(rep.decision.probabilities.numel(), 0u) << t;  // never skipped
    if (t < 3) {
      EXPECT_EQ(rep.decision.probabilities, ref[t].decision.probabilities)
          << t;
      EXPECT_FALSE(rep.degraded) << t;
    } else if (t >= 3 + 2 && t < 7) {
      // Past the LKV staleness bound with the hub still dark: the decision
      // continues (on last-known data) but is flagged degraded.
      EXPECT_TRUE(rep.degraded) << t;
      EXPECT_GE(rep.stale_hubs, 1u) << t;
    } else if (t >= 8) {
      // One clean tick after the outage the LKV ages reset and the faulted
      // timeline rejoins the reference exactly.
      EXPECT_EQ(rep.decision.probabilities, ref[t].decision.probabilities)
          << t;
      EXPECT_EQ(rep.decision.target, ref[t].decision.target) << t;
      EXPECT_FALSE(rep.degraded) << t;
    }
  }
  EXPECT_GT(node.facility().assembler().counters().dropped_packets, 0u);
}

TEST(FaultPipeline, WatchdogRetryIsBitIdenticalAndWedgeFallsBackDegraded) {
  core::FacilityNodeConfig cfg;
  cfg.seed = 13;
  constexpr std::uint64_t kTicks = 6;

  auto ref_node = core::FacilityNode::build(cfg);
  std::vector<core::TickReport> ref;
  for (std::uint64_t t = 0; t < kTicks; ++t) ref.push_back(ref_node.tick());

  // Hang (first attempt wedges, retry succeeds): bit-identical, not
  // degraded, watchdog accounted.
  {
    Plan plan;
    plan.add({FaultKind::kNnIpHang, 0, 2, 2});
    auto injector = std::make_shared<Injector>(plan, cfg.seed);
    auto node = core::FacilityNode::build(cfg);
    node.facility_mutable().set_delivery_tap(
        [injector](std::uint32_t seq, std::vector<net::Delivery>& ds) {
          injector->apply(seq, ds);
        });
    node.deblender().soc().set_ip_hang_hook(injector->ip_hang_hook());
    for (std::uint64_t t = 0; t < kTicks; ++t) {
      const auto rep = node.tick();
      EXPECT_EQ(rep.decision.probabilities, ref[t].decision.probabilities)
          << t;
      EXPECT_FALSE(rep.degraded) << t;
      EXPECT_EQ(rep.nn_source, core::DecisionSource::kNnIp) << t;
      EXPECT_EQ(rep.watchdog_timeouts, t == 2 || t == 3 ? 1u : 0u) << t;
    }
    EXPECT_EQ(node.deblender().soc().watchdog_timeouts(), 2u);
    EXPECT_EQ(node.deblender().soc().fallback_frames(), 0u);
  }

  // Wedge (every attempt wedges): the HPS float fallback still delivers a
  // decision on every tick, flagged degraded and attributed.
  {
    Plan plan;
    plan.add({FaultKind::kNnIpWedge, 0, 2, 1});
    auto injector = std::make_shared<Injector>(plan, cfg.seed);
    auto node = core::FacilityNode::build(cfg);
    node.facility_mutable().set_delivery_tap(
        [injector](std::uint32_t seq, std::vector<net::Delivery>& ds) {
          injector->apply(seq, ds);
        });
    node.deblender().soc().set_ip_hang_hook(injector->ip_hang_hook());
    for (std::uint64_t t = 0; t < kTicks; ++t) {
      const auto rep = node.tick();
      ASSERT_GT(rep.decision.probabilities.numel(), 0u) << t;
      if (t == 2) {
        EXPECT_TRUE(rep.degraded);
        EXPECT_EQ(rep.nn_source, core::DecisionSource::kHpsFloatFallback);
      } else {
        EXPECT_EQ(rep.decision.probabilities, ref[t].decision.probabilities)
            << t;
        EXPECT_EQ(rep.nn_source, core::DecisionSource::kNnIp) << t;
      }
    }
    EXPECT_EQ(node.deblender().soc().fallback_frames(), 1u);
  }
}

// --------------------------------------------------------------- NetPlan

bool same_net_events(const fault::NetPlan& a, const fault::NetPlan& b) {
  if (a.events().size() != b.events().size()) return false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const auto& x = a.events()[i];
    const auto& y = b.events()[i];
    if (x.kind != y.kind || x.site != y.site || x.start_op != y.start_op ||
        x.duration_ops != y.duration_ops) {
      return false;
    }
  }
  return true;
}

TEST(NetPlan, ScenarioIsDeterministicInSeedAndName) {
  fault::NetScenarioParams p;
  p.seed = 99;
  p.ops = 200;
  p.sites = 3;
  for (const auto& name : fault::NetPlan::scenario_names()) {
    EXPECT_TRUE(same_net_events(fault::NetPlan::scenario(name, p),
                                fault::NetPlan::scenario(name, p)))
        << name;
  }
  auto p2 = p;
  p2.seed = 100;
  EXPECT_FALSE(same_net_events(fault::NetPlan::scenario("torn", p),
                               fault::NetPlan::scenario("torn", p2)));
}

TEST(NetPlan, WindowsStayInsideTheMiddleBand) {
  // Every scheduled window leaves a clean ramp before op ops/10 and a
  // clean tail after 8*ops/10 — a reconnected site must get fault-free
  // ops to resubmit through.
  fault::NetScenarioParams p;
  p.seed = 7;
  p.ops = 400;
  p.sites = 4;
  for (const char* name :
       {"torn", "short_write", "eagain", "corrupt", "stall", "net_storm"}) {
    const auto plan = fault::NetPlan::scenario(name, p);
    EXPECT_FALSE(plan.empty()) << name;
    for (const auto& e : plan.events()) {
      EXPECT_GE(e.start_op, p.ops / 10) << name;
      EXPECT_LE(e.start_op + e.duration_ops, (8 * p.ops) / 10 + 1) << name;
      EXPECT_LT(e.site, p.sites) << name;
    }
  }
}

TEST(NetPlan, EverySiteParticipatesAndStormHasAllKinds) {
  fault::NetScenarioParams p;
  p.seed = 3;
  p.ops = 300;
  p.sites = 5;
  const auto torn = fault::NetPlan::scenario("torn", p);
  std::set<std::size_t> sites;
  for (const auto& e : torn.events()) sites.insert(e.site);
  EXPECT_EQ(sites.size(), p.sites);

  const auto storm = fault::NetPlan::scenario("net_storm", p);
  for (const auto kind :
       {fault::NetFaultKind::kConnReset, fault::NetFaultKind::kShortWrite,
        fault::NetFaultKind::kEagainStorm, fault::NetFaultKind::kByteCorrupt,
        fault::NetFaultKind::kStall}) {
    EXPECT_TRUE(storm.any(kind)) << to_string(kind);
  }
  EXPECT_TRUE(fault::NetPlan::scenario("net_none", p).empty());
  EXPECT_THROW(fault::NetPlan::scenario("bogus", p), std::invalid_argument);
}

// ----------------------------------------------------------- NetInjector

TEST(NetInjector, DecisionsAreAPureFunctionOfSeedSiteAndOp) {
  // Two injectors with the same plan and seed, driven through the same
  // fd open order and op sequence, make bit-identical verdicts — no
  // sockets needed, the IoTap surface is plain calls.
  fault::NetScenarioParams p;
  p.seed = 21;
  p.ops = 100;
  p.sites = 2;
  const auto plan = fault::NetPlan::scenario("short_write", p);
  fault::NetInjector x(plan, p.seed);
  fault::NetInjector y(plan, p.seed);
  x.on_open(10, true);
  y.on_open(44, true);  // different fd, same open order = same site
  for (std::uint64_t op = 0; op < p.ops; ++op) {
    EXPECT_EQ(x.gate_write(10, 64), y.gate_write(44, 64)) << op;
  }
  EXPECT_EQ(x.injected_total(), y.injected_total());
  EXPECT_GT(x.injected(fault::NetFaultKind::kShortWrite), 0u);
}

TEST(NetInjector, UntrackedFdsAndDisabledTapPassThrough) {
  fault::NetScenarioParams p;
  p.seed = 5;
  p.ops = 50;
  p.sites = 1;
  fault::NetInjector inj(fault::NetPlan::scenario("eagain", p), p.seed);

  // Never on_open()ed: transparent regardless of the plan.
  for (std::uint64_t op = 0; op < p.ops; ++op) {
    EXPECT_EQ(inj.gate_write(99, 128), 128);
    EXPECT_TRUE(inj.gate_read(99));
  }
  EXPECT_EQ(inj.injected_total(), 0u);

  // Tracked but disabled: ops still advance (site clocks keep ticking so a
  // re-enable lands where the schedule says), yet nothing is injected.
  inj.on_open(7, true);
  inj.enable(false);
  for (std::uint64_t op = 0; op < p.ops; ++op) {
    EXPECT_EQ(inj.gate_write(7, 128), 128);
    EXPECT_TRUE(inj.gate_read(7));
  }
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST(NetInjector, TornConnectionFragmentsThenTears) {
  // kConnReset windows are two ops wide: the first hit lets a short
  // fragment through (the tear must land mid-envelope on the peer), the
  // second returns kTear.
  fault::NetPlan plan;
  plan.add({fault::NetFaultKind::kConnReset, 0, 4, 2});
  fault::NetInjector inj(plan, 77);
  inj.on_open(3, true);
  for (std::uint64_t op = 0; op < 4; ++op) {
    EXPECT_EQ(inj.gate_write(3, 100), 100) << op;
  }
  const auto fragment = inj.gate_write(3, 100);  // op 4: armed, short
  EXPECT_GT(fragment, 0);
  EXPECT_LT(fragment, 100);
  EXPECT_EQ(inj.gate_write(3, 100), fault::NetInjector::kTear);  // op 5
  EXPECT_EQ(inj.gate_write(3, 100), 100);  // past the window: clean again
  EXPECT_EQ(inj.injected(fault::NetFaultKind::kConnReset), 1u);
}

TEST(NetInjector, RefusalScheduleTracksConnectAttempts) {
  fault::NetPlan plan;
  // Refuse the first two connect attempts against the first endpoint seen.
  plan.add({fault::NetFaultKind::kConnectRefuse, 0, 0, 2});
  fault::NetInjector inj(plan, 13);
  const auto ep = cluster::Endpoint::parse("tcp:127.0.0.1:9999");
  EXPECT_TRUE(inj.refuse_connect(ep));
  EXPECT_TRUE(inj.refuse_connect(ep));
  EXPECT_FALSE(inj.refuse_connect(ep));  // third attempt goes through
  // A different endpoint is a different connect-site: untouched by site 0.
  const auto other = cluster::Endpoint::parse("tcp:127.0.0.1:9998");
  EXPECT_FALSE(inj.refuse_connect(other));
  EXPECT_EQ(inj.injected(fault::NetFaultKind::kConnectRefuse), 2u);
}

TEST(NetInjector, CorruptionFlipsBitsOnlyInsideTheWindow) {
  fault::NetPlan plan;
  plan.add({fault::NetFaultKind::kByteCorrupt, 0, 0, 64});
  fault::NetInjector inj(plan, 31);
  inj.on_open(8, true);
  std::size_t flipped = 0;
  for (std::uint64_t op = 0; op < 64; ++op) {
    std::vector<std::uint8_t> buf(32, 0xA5);
    ASSERT_EQ(inj.gate_write(8, buf.size()),
              static_cast<std::ptrdiff_t>(buf.size()));
    inj.mangle_write(8, buf.data(), buf.size());
    std::size_t diff = 0;
    for (const auto b : buf) {
      if (b != 0xA5) ++diff;
    }
    EXPECT_LE(diff, 1u) << op;  // at most one bit in one byte per write
    flipped += diff;
  }
  EXPECT_GT(flipped, 0u);
  EXPECT_EQ(inj.injected(fault::NetFaultKind::kByteCorrupt), flipped);

  // Outside any window nothing is ever touched.
  std::vector<std::uint8_t> clean(32, 0x5A);
  ASSERT_EQ(inj.gate_write(8, clean.size()),
            static_cast<std::ptrdiff_t>(clean.size()));
  inj.mangle_write(8, clean.data(), clean.size());
  EXPECT_TRUE(std::all_of(clean.begin(), clean.end(),
                          [](std::uint8_t b) { return b == 0x5A; }));
}

}  // namespace
