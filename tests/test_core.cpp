// Core API tests: staged verification flow, pretrained cache, deblending
// system decisions, and the co-design optimizer.
#include <gtest/gtest.h>

#include <filesystem>

#include "blm/data.hpp"
#include "core/codesign.hpp"
#include "core/deblender.hpp"
#include "core/pretrained.hpp"
#include "core/verification.hpp"
#include "nn/init.hpp"

namespace {

using namespace reads;

core::PretrainedOptions tiny_options(const std::string& tag) {
  core::PretrainedOptions o;
  o.train_frames = 24;
  o.epochs = 2;
  o.batch_size = 8;
  o.seed = 1234;
  o.cache_dir = ::testing::TempDir() + "/reads-cache-" + tag;
  // TempDir persists across runs; each fixture starts from a clean cache.
  std::filesystem::remove_all(o.cache_dir);
  return o;
}

TEST(VerificationFlow, AllSixStagesPass) {
  const auto report = core::run_verification_flow(99);
  ASSERT_EQ(report.stages.size(), 6u);
  for (const auto& s : report.stages) {
    EXPECT_TRUE(s.passed) << "stage " << s.stage << " (" << s.name
                          << "): " << s.detail;
  }
  EXPECT_TRUE(report.all_passed());
}

TEST(VerificationFlow, DeterministicForSeed) {
  const auto a = core::run_verification_flow(7);
  const auto b = core::run_verification_flow(7);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].detail, b.stages[i].detail);
  }
}

TEST(Pretrained, TrainsThenLoadsFromCache) {
  const auto opts = tiny_options("mlp");
  const auto first = core::pretrained_mlp(opts);
  EXPECT_FALSE(first.loaded_from_cache);
  EXPECT_GT(first.final_loss, 0.0);
  const auto second = core::pretrained_mlp(opts);
  EXPECT_TRUE(second.loaded_from_cache);
  // Identical weights after reload.
  const auto p1 = first.model.parameters();
  const auto p2 = second.model.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(*p1[i], *p2[i]);
}

TEST(Pretrained, CacheKeyDependsOnSeed) {
  auto a = tiny_options("seed");
  const auto dir = core::model_cache_dir(a);
  core::pretrained_mlp(a);
  auto b = a;
  b.seed = 4321;
  core::pretrained_mlp(b);
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    files += e.is_regular_file();
  }
  EXPECT_EQ(files, 2u);
}

TEST(Pretrained, StandardizerAlwaysFitted) {
  const auto bundle = core::pretrained_mlp(tiny_options("std"));
  EXPECT_TRUE(bundle.standardizer.fitted());
}

TEST(MitigationTarget, ToString) {
  EXPECT_EQ(core::to_string(core::MitigationTarget::kMainInjector), "MI");
  EXPECT_EQ(core::to_string(core::MitigationTarget::kRecyclerRing), "RR");
  EXPECT_EQ(core::to_string(core::MitigationTarget::kNone), "none");
}

TEST(DeblendingSystem, ProcessesRawFramesWithinDeadline) {
  core::DeblendConfig cfg;
  cfg.model = tiny_options("deblend");
  cfg.calibration_frames = 8;
  auto system = core::DeblendingSystem::build(cfg);

  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(), 777);
  for (int i = 0; i < 3; ++i) {
    const auto frame = gen.next();
    const auto decision = system.process(frame.raw);
    EXPECT_EQ(decision.probabilities.shape(),
              (std::vector<std::size_t>{260, 2}));
    EXPECT_GE(decision.mi_score, 0.0);
    EXPECT_GE(decision.rr_score, 0.0);
    EXPECT_TRUE(decision.timing.deadline_met);
    EXPECT_LT(decision.timing.total_ms, 3.0);
  }
  EXPECT_EQ(system.float_model().param_count(), 134'434u);
  EXPECT_GT(system.ip_latency().total_cycles, 0u);
}

TEST(Codesign, SelectsFeasibleLowestCost) {
  auto model = nn::build_unet({.monitors = 32, .c1 = 4, .c2 = 6, .c3 = 8});
  nn::init_he_uniform(model, 3);
  const auto built = blm::build_data(12, 5);
  std::vector<tensor::Tensor> calib;
  // Down-sample the 260-monitor frames to 32 positions for the tiny model.
  for (const auto& in : built.dataset.inputs) {
    tensor::Tensor t({32, 1});
    for (std::size_t m = 0; m < 32; ++m) t[m] = in[m * 8];
    calib.push_back(std::move(t));
  }

  core::CodesignConstraints constraints;
  constraints.min_accuracy = 0.9;
  core::CodesignOptimizer opt(model, calib, constraints);

  const auto reuse = hls::ReusePolicy{};
  std::vector<core::Candidate> candidates = {
      {hls::PrecisionStrategy::kLayerBased, 16, 0, reuse, "layer16"},
      {hls::PrecisionStrategy::kLayerBased, 20, 0, reuse, "layer20"},
  };
  const auto outcome = opt.run(candidates);
  ASSERT_EQ(outcome.results.size(), 2u);
  ASSERT_TRUE(outcome.found());
  EXPECT_TRUE(outcome.results[outcome.selected].feasible());
}

TEST(Codesign, ReportsInfeasibilityHonestly) {
  auto model = nn::build_unet({.monitors = 32, .c1 = 4, .c2 = 6, .c3 = 8});
  nn::init_he_uniform(model, 3);
  std::vector<tensor::Tensor> calib = {tensor::Tensor({32, 1})};
  core::CodesignConstraints constraints;
  constraints.min_accuracy = 1.01;  // impossible by construction
  core::CodesignOptimizer opt(model, calib, constraints);
  const auto outcome =
      opt.run({{hls::PrecisionStrategy::kLayerBased, 16, 0, {}, "x"}});
  EXPECT_FALSE(outcome.found());
}

TEST(Codesign, DefaultCandidatesIncludePaperRows) {
  auto model = nn::build_unet({.monitors = 32, .c1 = 4, .c2 = 6, .c3 = 8});
  nn::init_he_uniform(model, 3);
  std::vector<tensor::Tensor> calib = {tensor::Tensor({32, 1})};
  core::CodesignOptimizer opt(model, calib);
  const auto cs = opt.default_candidates();
  ASSERT_GE(cs.size(), 3u);
  EXPECT_EQ(cs[0].total_bits, 18);
  EXPECT_EQ(cs[0].int_bits, 10);
  EXPECT_EQ(cs[1].total_bits, 16);
  EXPECT_EQ(cs[1].int_bits, 7);
}

}  // namespace
