// Core API tests: staged verification flow, pretrained cache, deblending
// system decisions, and the co-design optimizer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "blm/data.hpp"
#include "blm/generator.hpp"
#include "core/codesign.hpp"
#include "core/deblender.hpp"
#include "core/pretrained.hpp"
#include "core/verification.hpp"
#include "lifecycle/manager.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "nn/serialize.hpp"

namespace {

using namespace reads;

core::PretrainedOptions tiny_options(const std::string& tag) {
  core::PretrainedOptions o;
  o.train_frames = 24;
  o.epochs = 2;
  o.batch_size = 8;
  o.seed = 1234;
  o.cache_dir = ::testing::TempDir() + "/reads-cache-" + tag;
  // TempDir persists across runs; each fixture starts from a clean cache.
  std::filesystem::remove_all(o.cache_dir);
  return o;
}

TEST(VerificationFlow, AllSixStagesPass) {
  const auto report = core::run_verification_flow(99);
  ASSERT_EQ(report.stages.size(), 6u);
  for (const auto& s : report.stages) {
    EXPECT_TRUE(s.passed) << "stage " << s.stage << " (" << s.name
                          << "): " << s.detail;
  }
  EXPECT_TRUE(report.all_passed());
}

TEST(VerificationFlow, DeterministicForSeed) {
  const auto a = core::run_verification_flow(7);
  const auto b = core::run_verification_flow(7);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].detail, b.stages[i].detail);
  }
}

TEST(Pretrained, TrainsThenLoadsFromCache) {
  const auto opts = tiny_options("mlp");
  const auto first = core::pretrained_mlp(opts);
  EXPECT_FALSE(first.loaded_from_cache);
  EXPECT_GT(first.final_loss, 0.0);
  const auto second = core::pretrained_mlp(opts);
  EXPECT_TRUE(second.loaded_from_cache);
  // Identical weights after reload.
  const auto p1 = first.model.parameters();
  const auto p2 = second.model.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(*p1[i], *p2[i]);
}

TEST(Pretrained, CacheKeyDependsOnSeed) {
  auto a = tiny_options("seed");
  const auto dir = core::model_cache_dir(a);
  core::pretrained_mlp(a);
  auto b = a;
  b.seed = 4321;
  core::pretrained_mlp(b);
  std::size_t weights = 0;
  std::size_t stamps = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    if (e.path().extension() == ".stamp") {
      ++stamps;
    } else {
      ++weights;
    }
  }
  EXPECT_EQ(weights, 2u);
  EXPECT_EQ(stamps, 2u);
}

TEST(Pretrained, StandardizerAlwaysFitted) {
  const auto bundle = core::pretrained_mlp(tiny_options("std"));
  EXPECT_TRUE(bundle.standardizer.fitted());
}

TEST(MitigationTarget, ToString) {
  EXPECT_EQ(core::to_string(core::MitigationTarget::kMainInjector), "MI");
  EXPECT_EQ(core::to_string(core::MitigationTarget::kRecyclerRing), "RR");
  EXPECT_EQ(core::to_string(core::MitigationTarget::kNone), "none");
}

TEST(DeblendingSystem, ProcessesRawFramesWithinDeadline) {
  core::DeblendConfig cfg;
  cfg.model = tiny_options("deblend");
  cfg.calibration_frames = 8;
  auto system = core::DeblendingSystem::build(cfg);

  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(), 777);
  for (int i = 0; i < 3; ++i) {
    const auto frame = gen.next();
    const auto decision = system.process(frame.raw);
    EXPECT_EQ(decision.probabilities.shape(),
              (std::vector<std::size_t>{260, 2}));
    EXPECT_GE(decision.mi_score, 0.0);
    EXPECT_GE(decision.rr_score, 0.0);
    EXPECT_TRUE(decision.timing.deadline_met);
    EXPECT_LT(decision.timing.total_ms, 3.0);
  }
  EXPECT_EQ(system.float_model().param_count(), 134'434u);
  EXPECT_GT(system.ip_latency().total_cycles, 0u);
}

TEST(Codesign, SelectsFeasibleLowestCost) {
  auto model = nn::build_unet({.monitors = 32, .c1 = 4, .c2 = 6, .c3 = 8});
  nn::init_he_uniform(model, 3);
  const auto built = blm::build_data(12, 5);
  std::vector<tensor::Tensor> calib;
  // Down-sample the 260-monitor frames to 32 positions for the tiny model.
  for (const auto& in : built.dataset.inputs) {
    tensor::Tensor t({32, 1});
    for (std::size_t m = 0; m < 32; ++m) t[m] = in[m * 8];
    calib.push_back(std::move(t));
  }

  core::CodesignConstraints constraints;
  constraints.min_accuracy = 0.9;
  core::CodesignOptimizer opt(model, calib, constraints);

  const auto reuse = hls::ReusePolicy{};
  std::vector<core::Candidate> candidates = {
      {hls::PrecisionStrategy::kLayerBased, 16, 0, reuse, "layer16"},
      {hls::PrecisionStrategy::kLayerBased, 20, 0, reuse, "layer20"},
  };
  const auto outcome = opt.run(candidates);
  ASSERT_EQ(outcome.results.size(), 2u);
  ASSERT_TRUE(outcome.found());
  EXPECT_TRUE(outcome.results[outcome.selected].feasible());
}

TEST(Codesign, ReportsInfeasibilityHonestly) {
  auto model = nn::build_unet({.monitors = 32, .c1 = 4, .c2 = 6, .c3 = 8});
  nn::init_he_uniform(model, 3);
  std::vector<tensor::Tensor> calib = {tensor::Tensor({32, 1})};
  core::CodesignConstraints constraints;
  constraints.min_accuracy = 1.01;  // impossible by construction
  core::CodesignOptimizer opt(model, calib, constraints);
  const auto outcome =
      opt.run({{hls::PrecisionStrategy::kLayerBased, 16, 0, {}, "x"}});
  EXPECT_FALSE(outcome.found());
}

TEST(Codesign, DefaultCandidatesIncludePaperRows) {
  auto model = nn::build_unet({.monitors = 32, .c1 = 4, .c2 = 6, .c3 = 8});
  nn::init_he_uniform(model, 3);
  std::vector<tensor::Tensor> calib = {tensor::Tensor({32, 1})};
  core::CodesignOptimizer opt(model, calib);
  const auto cs = opt.default_candidates();
  ASSERT_GE(cs.size(), 3u);
  EXPECT_EQ(cs[0].total_bits, 18);
  EXPECT_EQ(cs[0].int_bits, 10);
  EXPECT_EQ(cs[1].total_bits, 16);
  EXPECT_EQ(cs[1].int_bits, 7);
}

// ---------------------------------------------------------------------------
// Weight-cache stamps: every cached weights file carries a sidecar recording
// the serializer format version and a content hash, both verified on load.

std::string cached_weights_path(const core::PretrainedOptions& o) {
  for (const auto& e :
       std::filesystem::directory_iterator(core::model_cache_dir(o))) {
    if (e.is_regular_file() && e.path().extension() != ".stamp") {
      return e.path().string();
    }
  }
  return {};
}

TEST(Pretrained, CacheStampRoundTrip) {
  auto o = tiny_options("stamp-rt");
  const auto first = core::pretrained_mlp(o);
  EXPECT_FALSE(first.loaded_from_cache);

  const auto path = cached_weights_path(o);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(core::cache_stamp_path(path), path + ".stamp");
  const auto stamp = core::read_cache_stamp(path);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->format_version, core::kWeightCacheFormatVersion);
  EXPECT_EQ(stamp->weights_hash, nn::weights_hash(first.model));

  const auto second = core::pretrained_mlp(o);
  EXPECT_TRUE(second.loaded_from_cache);
  EXPECT_EQ(nn::weights_hash(second.model), stamp->weights_hash);
}

TEST(Pretrained, StaleStampFormatVersionForcesRetrain) {
  auto o = tiny_options("stamp-stale");
  core::pretrained_mlp(o);
  const auto path = cached_weights_path(o);
  ASSERT_FALSE(path.empty());
  {
    std::ofstream out(core::cache_stamp_path(path), std::ios::trunc);
    out << "version 1\nhash 0\n";
  }
  const auto bundle = core::pretrained_mlp(o);
  EXPECT_FALSE(bundle.loaded_from_cache);
  // Retraining rewrote both the weights and a current-format stamp.
  const auto stamp = core::read_cache_stamp(path);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->format_version, core::kWeightCacheFormatVersion);
  EXPECT_EQ(stamp->weights_hash, nn::weights_hash(bundle.model));
}

TEST(Pretrained, ContentHashMismatchForcesRetrain) {
  auto o = tiny_options("stamp-hash");
  core::pretrained_mlp(o);
  const auto path = cached_weights_path(o);
  ASSERT_FALSE(path.empty());
  {
    // Keep the claimed format current but lie about the payload hash, as a
    // silently corrupted (yet still parseable) weights file would.
    std::ofstream out(core::cache_stamp_path(path), std::ios::trunc);
    out << "version " << core::kWeightCacheFormatVersion << "\n"
        << "hash deadbeef\n";
  }
  const auto bundle = core::pretrained_mlp(o);
  EXPECT_FALSE(bundle.loaded_from_cache);
  const auto stamp = core::read_cache_stamp(path);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->weights_hash, nn::weights_hash(bundle.model));
}

TEST(Pretrained, LegacyCacheWithoutStampIsAdoptedAndStamped) {
  auto o = tiny_options("stamp-legacy");
  core::pretrained_mlp(o);
  const auto path = cached_weights_path(o);
  ASSERT_FALSE(path.empty());
  std::filesystem::remove(core::cache_stamp_path(path));
  ASSERT_FALSE(core::read_cache_stamp(path).has_value());

  // Pre-stamp caches still load (the weights parsed cleanly) and are
  // stamped on the way out so the next load is hash-verified.
  const auto bundle = core::pretrained_mlp(o);
  EXPECT_TRUE(bundle.loaded_from_cache);
  const auto stamp = core::read_cache_stamp(path);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->weights_hash, nn::weights_hash(bundle.model));
}

// ---------------------------------------------------------------------------
// Zero-downtime hot-swap through the blocking decision loop.

TEST(DeblendingSystem, HotSwapServesFallbackThenLandsBitIdentically) {
  core::DeblendConfig cfg;
  cfg.model = tiny_options("swap");
  cfg.calibration_frames = 8;
  auto system = core::DeblendingSystem::build(cfg);
  EXPECT_EQ(system.model_epoch(), 1u);
  EXPECT_FALSE(system.swap_pending());

  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(), 4242);

  // Candidate = a weight-identical clone of the deployed generation, so the
  // landed swap must reproduce the incumbent bit for bit.
  auto clone = nn::build_unet(nn::UNetConfig{});
  nn::copy_weights(system.float_model(), clone);
  EXPECT_THROW(system.swap_model(nn::build_unet(nn::UNetConfig{}),
                                 system.standardizer(), nullptr, 3),
               std::invalid_argument);
  system.swap_model(std::move(clone), system.standardizer(),
                    system.quantized_ptr(), /*reconfig_window_frames=*/3);
  EXPECT_TRUE(system.swap_pending());
  EXPECT_THROW(system.swap_model(nn::build_unet(nn::UNetConfig{}),
                                 system.standardizer(),
                                 system.quantized_ptr(), 3),
               std::logic_error);

  // Every frame inside the reconfiguration window is served by the HPS
  // float fallback, flagged degraded + reconfiguring, still epoch 1.
  for (int i = 0; i < 3; ++i) {
    const auto d = system.process(gen.next().raw);
    EXPECT_TRUE(d.reconfiguring);
    EXPECT_TRUE(d.degraded);
    EXPECT_EQ(d.source, core::DecisionSource::kHpsFloatFallback);
    EXPECT_EQ(d.model_epoch, 1u);
    EXPECT_TRUE(d.timing.deadline_met);
    EXPECT_GT(d.probabilities.numel(), 0u);
  }
  EXPECT_TRUE(system.swap_pending());

  // The first frame after the window drains lands the swap: epoch bumps and
  // the decision comes from the (new) firmware on the NN IP.
  const auto raw = gen.next().raw;
  const auto landed = system.process(raw);
  EXPECT_FALSE(system.swap_pending());
  EXPECT_EQ(system.model_epoch(), 2u);
  EXPECT_EQ(landed.model_epoch, 2u);
  EXPECT_FALSE(landed.reconfiguring);
  EXPECT_FALSE(landed.degraded);
  EXPECT_EQ(landed.source, core::DecisionSource::kNnIp);
  const auto expect =
      system.quantized().forward(system.standardizer().transform(raw));
  EXPECT_EQ(landed.probabilities, expect);
}

TEST(LifecycleManager, DestroyMidRequalificationJoinsWorkerSafely) {
  core::DeblendConfig cfg;
  cfg.model = tiny_options("lifecycle-dtor");
  cfg.calibration_frames = 8;
  auto system = core::DeblendingSystem::build(cfg);

  // Hair-trigger drift config: ordinary window-to-window traffic noise
  // alarms, so the manager submits a requalification within a few windows.
  lifecycle::LifecycleConfig lc;
  lc.drift.window = 8;
  lc.drift.baseline_windows = 1;
  lc.drift.trigger_threshold = 0.01;
  lc.drift.clear_threshold = 0.005;
  lc.drift.consecutive = 1;
  lc.recent_capacity = 32;
  lc.min_frames = 16;
  lc.requalify.epochs = 1;
  lc.requalify.batch_size = 8;
  lc.seed = 7;

  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(), 77);
  {
    lifecycle::LifecycleManager manager(
        system, lc, [] { return nn::build_unet(nn::UNetConfig{}); });
    while (manager.phase() != lifecycle::LifecyclePhase::kRequalifying &&
           manager.ticks() < 512) {
      const auto f = gen.next();
      manager.tick(f.raw, f.target);
    }
    ASSERT_EQ(manager.phase(), lifecycle::LifecyclePhase::kRequalifying);
    // Scope exit destroys the manager while the requalification job is in
    // flight (the bench's max_ticks exit does exactly this): the Requalifier
    // must join its worker — whose done callback locks result_mutex_ —
    // before that mutex and the pending-result slot are destroyed.
  }
}

}  // namespace
