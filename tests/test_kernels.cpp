// Property and regression tests for the quantized kernel engine's
// fixed-point arithmetic (hls/accum.hpp), the SIMD requant/finalize
// write-out kernels (hls/qkernels.hpp), and the narrow-lane range prover
// (hls/lanes.hpp).
//
// The arithmetic tests are phrased against *independent* wide references:
// Requant is checked against a 128-bit shift-then-clamp (the semantics the
// pre-bugfix code wanted but could not express without signed-overflow UB),
// and Accum against a wrap-after-every-add ring accumulator (the HLS
// AC_WRAP register the wrap-once-at-finalize optimization must be
// congruent to). The SIMD kernels are checked lane-for-lane against the
// scalar apply/finalize, including the event counts that feed ForwardStats.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "hls/accum.hpp"
#include "hls/firmware.hpp"
#include "hls/lanes.hpp"
#include "hls/precision.hpp"
#include "hls/profiler.hpp"
#include "hls/qkernels.hpp"
#include "hls/qmodel.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using hls::detail::Accum;
using hls::detail::Requant;
using tensor::Tensor;

// 128-bit reference requant: shift (or widen) exactly, then clamp. This is
// the mathematical spec Requant::apply implements with int64-only
// arithmetic; __int128 makes the widening overflow-free for |shift| <= 63.
std::int64_t requant_ref(std::int64_t v, const Requant& rq,
                         std::size_t& saturations) {
  __int128 x = v;
  if (rq.shift > 0) {
    const __int128 half = __int128{1} << (rq.shift - 1);
    x = x >= 0 ? (x + half) >> rq.shift : -((-x + half) >> rq.shift);
  } else if (rq.shift < 0) {
    x <<= -rq.shift;  // exact in 128 bits for k <= 63
  }
  if (x < rq.lo) {
    ++saturations;
    return rq.lo;
  }
  if (x > rq.hi) {
    ++saturations;
    return rq.hi;
  }
  return static_cast<std::int64_t>(x);
}

// Build a Requant straddling interesting shift values: shift is
// from_frac - (width - int_bits), so sweeping from_frac sweeps the shift
// through wide negative (widening) and positive (narrowing) bands.
Requant make_requant(int from_frac, int width, int int_bits) {
  return Requant(from_frac, hls::FixedSpec{width, int_bits});
}

std::vector<std::int64_t> interesting_values(const Requant& rq,
                                             util::Xoshiro256& rng) {
  std::vector<std::int64_t> vals = {
      0,  1,  -1, 2,  -2, rq.lo, rq.hi, rq.lo + 1, rq.hi - 1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max() - 1,
      std::numeric_limits<std::int64_t>::min() + 1,
  };
  if (rq.shift < 0 && rq.shift > -63) {
    // Straddle the pre-shift saturation thresholds the widening fix
    // introduced — an off-by-one there either misses a saturation or
    // saturates an in-range value.
    const int k = -rq.shift;
    const std::int64_t hi_thr = rq.hi >> k;
    const std::int64_t lo_thr = (rq.lo >> k) + ((rq.lo >> k) * (std::int64_t{1} << k) == rq.lo ? 0 : 1);
    for (std::int64_t d : {-2, -1, 0, 1, 2}) {
      vals.push_back(hi_thr + d);
      vals.push_back(lo_thr + d);
    }
  }
  for (int i = 0; i < 40; ++i) {
    const auto u = rng();
    vals.push_back(static_cast<std::int64_t>(u));
    vals.push_back(static_cast<std::int64_t>(u >> (1 + i % 48)));
  }
  return vals;
}

TEST(RequantProperty, GridMatches128BitReference) {
  util::Xoshiro256 rng(1234);
  for (int width : {4, 8, 12, 16, 24, 32, 48, 63, 64, 70}) {
    for (int int_bits : {0, 1, width / 2, width - 1}) {
      for (int from_frac : {-10, 0, 3, 8, 16, 31, 40, 60, width + 20}) {
        const Requant rq = make_requant(from_frac, width, int_bits);
        if (rq.shift <= -63) continue;  // degenerate band, pinned below
        for (std::int64_t v : interesting_values(rq, rng)) {
          if (rq.shift < 0) {
            // Keep the 128-bit reference shift exact.
            ASSERT_LT(-rq.shift, 64);
          }
          std::size_t sat_fast = 0;
          std::size_t sat_ref = 0;
          const auto fast = rq.apply(v, sat_fast);
          const auto ref = requant_ref(v, rq, sat_ref);
          ASSERT_EQ(fast, ref) << "v=" << v << " shift=" << rq.shift
                               << " <" << width << "," << int_bits << ">";
          ASSERT_EQ(sat_fast, sat_ref) << "v=" << v << " shift=" << rq.shift;
        }
      }
    }
  }
}

TEST(RequantProperty, DegenerateWideningBandSaturatesEveryNonzero) {
  // shift <= -63: any nonzero input overshoots int64 after the widening
  // shift. The old code's `v << k` was UB here; the fix routes by sign.
  for (int from_frac : {-63, -80, -200}) {
    const Requant rq = make_requant(from_frac, 16, 7);
    ASSERT_LE(rq.shift, -63);
    std::size_t sat = 0;
    EXPECT_EQ(rq.apply(0, sat), 0);
    EXPECT_EQ(sat, 0u);
    EXPECT_EQ(rq.apply(1, sat), rq.hi);
    EXPECT_EQ(rq.apply(std::numeric_limits<std::int64_t>::max(), sat), rq.hi);
    EXPECT_EQ(rq.apply(-1, sat), rq.lo);
    EXPECT_EQ(rq.apply(std::numeric_limits<std::int64_t>::min(), sat), rq.lo);
    EXPECT_EQ(sat, 4u);
  }
}

TEST(RequantProperty, WideningExtremesDoNotOverflow) {
  // Satellite regression: the widening path used to compute `v << k` on
  // int64 directly — UB for any |v| > 2^(63-k). These inputs must saturate
  // cleanly with exactly one counted event each.
  const Requant rq = make_requant(2, 16, 10);  // shift = 2 - 6 = -4
  ASSERT_EQ(rq.shift, -4);
  std::size_t sat = 0;
  EXPECT_EQ(rq.apply(std::numeric_limits<std::int64_t>::max(), sat), rq.hi);
  EXPECT_EQ(rq.apply(std::numeric_limits<std::int64_t>::min(), sat), rq.lo);
  EXPECT_EQ(sat, 2u);
  // In-range values still widen exactly.
  std::size_t sat2 = 0;
  EXPECT_EQ(rq.apply(5, sat2), 5 * 16);
  EXPECT_EQ(rq.apply(-3, sat2), -3 * 16);
  EXPECT_EQ(sat2, 0u);
}

// Ring wrap of one value into the accumulator register, exactly as
// Accum::finalize does it — reused to build the wrap-per-add reference.
std::int64_t ring_wrap(std::int64_t v, const Accum& ac) {
  if (v >= ac.ring_lo && v <= ac.ring_hi) return v;
  auto u = static_cast<std::uint64_t>(v) & ac.mask;
  if (ac.ring_bits < 64 && (u & (std::uint64_t{1} << (ac.ring_bits - 1)))) {
    u |= ~ac.mask;
  }
  return static_cast<std::int64_t>(u);
}

TEST(AccumProperty, WrapOnceMatchesWrapAfterEveryAdd) {
  // The fast kernels accumulate exactly in int64 and wrap once at
  // finalize; the HLS register wraps after every add. Modular arithmetic
  // makes the two congruent, and the requant of the wrapped value (and its
  // saturation count) must therefore be identical.
  util::Xoshiro256 rng(99);
  for (int width : {6, 10, 16, 18}) {
    for (int int_bits : {1, 3, width / 2, width - 1}) {
      for (int guard : {0, 2, 8}) {
        const hls::FixedSpec act{width, int_bits};
        const int act_frac = width - int_bits;
        const int product_frac = 2 * act_frac;
        const Accum ac(act, product_frac, act_frac, guard);
        for (int trial = 0; trial < 25; ++trial) {
          const std::size_t terms = 1 + rng.uniform_int(40);
          // Aligned term magnitudes around the ring size so wraps happen.
          const std::int64_t span =
              ac.ring_bits >= 62 ? (std::int64_t{1} << 40)
                                 : (std::int64_t{1} << ac.ring_bits);
          std::int64_t exact = 0;
          std::int64_t per_add = 0;
          for (std::size_t t = 0; t < terms; ++t) {
            const std::int64_t term =
                static_cast<std::int64_t>(rng() % (2 * static_cast<std::uint64_t>(span))) -
                span;
            exact += term;
            per_add = ring_wrap(per_add + term, ac);
          }
          std::size_t ovf = 0;
          std::size_t sat_once = 0;
          std::size_t sat_per_add = 0;
          const auto once = ac.finalize(exact, ovf, sat_once);
          const auto ref = ac.out.apply(per_add, sat_per_add);
          ASSERT_EQ(once, ref)
              << "<" << width << "," << int_bits << "> guard=" << guard;
          ASSERT_EQ(sat_once, sat_per_add);
          // finalize counts one overflow iff the exact sum left the ring.
          ASSERT_EQ(ovf, (exact < ac.ring_lo || exact > ac.ring_hi) ? 1u : 0u);
        }
      }
    }
  }
}

TEST(AccumProperty, RingBits64PlusNeverWrapsAndHasNoUB) {
  // Satellite regression: ring_bits >= 64 used to shift int64_t{1} by 63+
  // (UB). Such a ring covers the whole accumulator, so finalize must never
  // count an overflow, for any input.
  for (const hls::FixedSpec act : {hls::FixedSpec{70, 40}, hls::FixedSpec{64, 32},
                                   hls::FixedSpec{80, 16}}) {
    const Accum ac(act, /*product_frac=*/60, /*stored_bias_frac=*/30,
                   /*guard_bits=*/8);
    ASSERT_GE(ac.ring_bits, 64);
    EXPECT_EQ(ac.ring_hi, std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(ac.ring_lo, std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(ac.mask, ~std::uint64_t{0});
    for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                           std::numeric_limits<std::int64_t>::max(),
                           std::numeric_limits<std::int64_t>::min()}) {
      std::size_t ovf = 0;
      std::size_t sat = 0;
      (void)ac.finalize(v, ovf, sat);
      EXPECT_EQ(ovf, 0u) << v;
    }
  }
}

// ------------------------------------------------- SIMD vs scalar kernels

TEST(KernelEquivalence, RequantI64MatchesScalarApply) {
  // The vectorized write-out (8 int64 lanes, mask-popcount saturation
  // counting) must match a plain rq.apply loop — values AND counts — for
  // narrowing, identity, and widening shifts, with and without ReLU.
  util::Xoshiro256 rng(7);
  for (int from_frac : {20, 9, 6, 2, -5}) {  // shift = from_frac - 9
    const Requant rq = make_requant(from_frac, 16, 7);
    for (bool relu : {false, true}) {
      const std::size_t n = 1021;  // odd: exercises the vector tail
      std::vector<std::int64_t> in(n);
      for (auto& v : in) {
        // Mix magnitudes so some saturate, some don't, signs vary.
        const auto u = rng();
        v = static_cast<std::int64_t>(u) >> (u % 48);
      }
      std::vector<std::int64_t> out(n, -77);
      std::size_t sat_kernel = 0;
      hls::kernels::requant_i64(in.data(), out.data(), n, rq, relu,
                                sat_kernel);
      std::size_t sat_scalar = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t v = in[i];
        if (relu && v < 0) v = 0;
        const auto want = rq.apply(v, sat_scalar);
        ASSERT_EQ(out[i], want)
            << "i=" << i << " shift=" << rq.shift << " relu=" << relu;
      }
      EXPECT_EQ(sat_kernel, sat_scalar)
          << "shift=" << rq.shift << " relu=" << relu;
    }
  }
}

TEST(KernelEquivalence, FinalizeI32MatchesScalarFinalize) {
  // finalize_i32 turns a narrow int32 accumulator block into activations
  // with wrap + requant; overflow and saturation totals must equal the
  // scalar Accum::finalize element loop, including widening out-shifts.
  util::Xoshiro256 rng(11);
  struct Case {
    hls::FixedSpec act;
    int product_frac;
    int guard;
  };
  for (const auto& c : {Case{{16, 7}, 18, 2}, Case{{16, 3}, 26, 8},
                        Case{{12, 10}, 4, 0}, Case{{16, 14}, 2, 6}}) {
    const Accum ac(c.act, c.product_frac, c.product_frac, c.guard);
    const std::size_t positions = 33;
    const std::size_t out_ch = 21;
    const std::size_t stride = 32;  // padded narrow-kernel stride
    std::vector<std::int32_t> acc(positions * stride);
    for (auto& v : acc) {
      v = static_cast<std::int32_t>(rng());
      v >>= rng() % 24;
    }
    std::vector<std::int64_t> fast(positions * out_ch, -9);
    std::size_t ovf_fast = 0;
    std::size_t sat_fast = 0;
    hls::kernels::finalize_i32(acc.data(), fast.data(), positions, out_ch,
                               stride, ac, ovf_fast, sat_fast);
    std::size_t ovf_ref = 0;
    std::size_t sat_ref = 0;
    for (std::size_t p = 0; p < positions; ++p) {
      for (std::size_t o = 0; o < out_ch; ++o) {
        const auto want =
            ac.finalize(acc[p * stride + o], ovf_ref, sat_ref);
        ASSERT_EQ(fast[p * out_ch + o], want) << "p=" << p << " o=" << o;
      }
    }
    EXPECT_EQ(ovf_fast, ovf_ref);
    EXPECT_EQ(sat_fast, sat_ref);
  }
}

// ------------------------------------------------------------ lane prover

Tensor random_frame(const std::vector<std::size_t>& shape, std::uint64_t seed,
                    double scale = 1.0) {
  util::Xoshiro256 rng(seed);
  Tensor t(shape);
  for (auto& v : t.flat()) v = static_cast<float>(scale * rng.normal());
  return t;
}

hls::FirmwareModel compiled_unet(std::uint64_t seed, hls::QuantConfig quant) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, seed);
  hls::HlsConfig cfg;
  cfg.quant = std::move(quant);
  return hls::compile(model, cfg);
}

TEST(LaneProver, DeployedStyleUnetProvesNarrowAndStaysBitIdentical) {
  // A 16-bit layer-based U-Net is the deployment the tentpole targets:
  // every Dense/Conv1D layer's proven envelope must fit int32 (narrow
  // lane), the proof bounds must be self-consistent, and the narrow
  // execution must stay bit-identical to the reference executor on frames
  // hot enough to saturate.
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 61);
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    calib.push_back(random_frame({16, 1}, 50u + static_cast<unsigned>(i)));
  }
  const auto prof = hls::profile_model(model, calib);
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(model, prof, 16);
  const hls::QuantizedModel qm(hls::compile(model, cfg));

  const auto& report = qm.lanes();
  ASSERT_GT(report.mac_layers, 0u);
  EXPECT_EQ(report.narrow_layers, report.mac_layers)
      << "16-bit layer-based specs must prove narrow on every MAC layer";
  ASSERT_EQ(report.decisions.size(), report.ranges.size());
  for (std::size_t i = 0; i < report.decisions.size(); ++i) {
    const auto& d = report.decisions[i];
    const auto& r = report.ranges[i];
    ASSERT_LE(r.lo, r.hi) << i;
    if (!d.mac_layer) continue;
    ASSERT_LE(d.env_lo, d.env_hi) << i;
    if (d.lane != hls::Lane::kWide64) {
      // The narrow claim itself: every partial sum fits int32.
      EXPECT_GE(d.env_lo, std::numeric_limits<std::int32_t>::min()) << i;
      EXPECT_LE(d.env_hi, std::numeric_limits<std::int32_t>::max()) << i;
    }
    EXPECT_FALSE(d.reason.empty()) << i;
  }

  for (int f = 0; f < 4; ++f) {
    const double scale = f < 2 ? 1.0 : 25.0;
    const auto raw = qm.quantize_input(
        random_frame({16, 1}, 300u + static_cast<unsigned>(f), scale));
    hls::ForwardStats fast_stats;
    hls::ForwardStats ref_stats;
    EXPECT_EQ(qm.forward_raw(raw, &fast_stats),
              qm.forward_raw_reference(raw, &ref_stats))
        << "frame " << f;
    EXPECT_EQ(fast_stats.saturations, ref_stats.saturations) << "frame " << f;
    EXPECT_EQ(fast_stats.overflows, ref_stats.overflows) << "frame " << f;
  }
}

TEST(LaneProver, WideWeightsForceInt64FallbackAndStayExact) {
  // Adversarial config: 18-bit weights don't fit int16, so no layer may be
  // certified narrow — and the wide fallback must still be bit-identical.
  const hls::QuantizedModel qm(
      compiled_unet(67, hls::QuantConfig::uniform({18, 8})));
  EXPECT_EQ(qm.lanes().narrow_layers, 0u);
  for (const auto& d : qm.lanes().decisions) {
    if (d.mac_layer) EXPECT_EQ(d.lane, hls::Lane::kWide64) << d.reason;
  }
  const auto raw =
      qm.quantize_input(random_frame({16, 1}, 71, 10.0));
  hls::ForwardStats fast_stats;
  hls::ForwardStats ref_stats;
  EXPECT_EQ(qm.forward_raw(raw, &fast_stats),
            qm.forward_raw_reference(raw, &ref_stats));
  EXPECT_EQ(fast_stats.saturations, ref_stats.saturations);
  EXPECT_EQ(fast_stats.overflows, ref_stats.overflows);
}

}  // namespace
