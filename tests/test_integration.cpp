// Cross-module integration tests: the full train -> profile -> quantize ->
// deploy pipeline at reduced scale, asserting the paper's qualitative
// findings (layer-based precision dominates uniform 16-bit; uniform 18-bit
// busts the ALUT budget; the SoC path is bit-exact; the stream sustains the
// deployment rate).
#include <gtest/gtest.h>

#include <memory>

#include "blm/data.hpp"
#include "hls/accuracy.hpp"
#include "hls/latency.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "hls/resource.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "soc/system.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

/// Shared reduced-scale deployment: 64 monitors, trained on generated BLM
/// events, quantized layer-based 16-bit. Built once for the whole suite.
struct Deployment {
  nn::Model model;
  train::Standardizer standardizer;
  std::vector<Tensor> eval_inputs;
  hls::Profile profile;

  Deployment()
      : model(nn::build_unet({.monitors = 64, .c1 = 6, .c2 = 9, .c3 = 12})) {
    auto machine = blm::MachineConfig::fermilab_like();
    machine.monitors = 64;
    machine.mi.source_positions = {4, 14, 25, 37, 49, 58};
    machine.rr.source_positions = {2, 9, 20, 30, 41, 52, 61};
    auto built = blm::build_data(64, 11, blm::InputScaling::kStandardized,
                                 machine);
    standardizer = built.standardizer;

    nn::init_he_uniform(model, 12);
    train::MseLoss loss;
    train::Adam adam(2e-3);
    train::Trainer trainer(model, loss, adam);
    train::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 8;
    trainer.fit(built.dataset, cfg);

    eval_inputs = blm::build_eval_inputs(24, 13, standardizer, machine);
    profile = hls::profile_model(model, eval_inputs);
  }

  hls::FirmwareModel firmware(hls::QuantConfig quant) const {
    hls::HlsConfig cfg;
    cfg.quant = std::move(quant);
    cfg.reuse.default_reuse = 32;
    return hls::compile(model, cfg);
  }

  static const Deployment& instance() {
    static Deployment d;
    return d;
  }
};

TEST(Integration, TrainingProducedWideDynamicRanges) {
  const auto& d = Deployment::instance();
  double max_act = 0.0;
  for (const auto& [name, v] : d.profile.max_activation) {
    max_act = std::max(max_act, v);
  }
  // The paper's central premise: trained-on-real-data models have inner
  // ranges far beyond ac_fixed<16,7>'s +-64.
  EXPECT_GT(max_act, 64.0);
}

TEST(Integration, LayerBasedBeatsUniform16) {
  const auto& d = Deployment::instance();
  const hls::QuantizedModel uniform16(
      d.firmware(hls::QuantConfig::uniform({16, 7})));
  const hls::QuantizedModel layered(
      d.firmware(hls::layer_based_config(d.model, d.profile, 16)));
  const auto acc_u = hls::evaluate_quantization(d.model, uniform16, d.eval_inputs);
  const auto acc_l = hls::evaluate_quantization(d.model, layered, d.eval_inputs);
  EXPECT_GT(acc_l.accuracy_mi, 0.97);
  EXPECT_GT(acc_l.accuracy_rr, 0.97);
  EXPECT_GT(acc_l.accuracy_mi, acc_u.accuracy_mi);
  EXPECT_GT(acc_l.accuracy_rr, acc_u.accuracy_rr);
  EXPECT_GT(acc_u.overflow_events, 0u);  // inner-layer overflows occurred
}

TEST(Integration, Uniform18AccurateButOverBudgetOnFullModel) {
  // Resource budget is about the full 134k-parameter model, so use it here
  // (weights random — resources don't depend on values).
  auto full = nn::build_unet();
  nn::init_he_uniform(full, 3);
  hls::HlsConfig cfg18;
  cfg18.quant = hls::QuantConfig::uniform({18, 10});
  cfg18.reuse = hls::ReusePolicy::deployed_unet();
  const auto r18 = hls::ResourceModel().estimate(hls::compile(full, cfg18));
  hls::HlsConfig cfg16 = cfg18;
  cfg16.quant = hls::QuantConfig::uniform({16, 7});
  const auto r16 = hls::ResourceModel().estimate(hls::compile(full, cfg16));
  EXPECT_GT(r18.alut_utilization(), 1.0);
  EXPECT_LT(r16.alut_utilization(), 0.5);
}

TEST(Integration, SocPathBitExactAndSustains320Fps) {
  const auto& d = Deployment::instance();
  const hls::QuantizedModel qm(
      d.firmware(hls::layer_based_config(d.model, d.profile, 16)));
  soc::ArriaSocSystem system(qm, soc::SocParams{}, 21);
  for (int i = 0; i < 4; ++i) {
    const auto via_soc = system.process(d.eval_inputs[static_cast<std::size_t>(i)]);
    const auto direct = qm.forward(d.eval_inputs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(tensor::max_abs_diff(via_soc.output, direct), 0.0f);
    EXPECT_TRUE(via_soc.timing.deadline_met);
  }
  const auto stream = system.run_stream(
      std::span(d.eval_inputs.data(), 12), 320.0);
  EXPECT_EQ(stream.deadline_misses, 0u);
  EXPECT_GT(stream.capacity_fps, 320.0);
  EXPECT_GT(stream.observed_fps, 300.0);
}

TEST(Integration, ReuseTradeoffIsResourceLatencyMonotone) {
  const auto& d = Deployment::instance();
  double prev_alut = 1e9;
  std::size_t prev_cycles = 0;
  for (std::size_t reuse : {8u, 32u, 128u}) {
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(d.model, d.profile, 16);
    cfg.reuse.default_reuse = reuse;
    const auto fw = hls::compile(d.model, cfg);
    const auto res = hls::ResourceModel().estimate(fw);
    const auto lat = hls::LatencyModel().estimate(fw);
    EXPECT_LT(res.alut_utilization(), prev_alut);
    EXPECT_GT(lat.total_cycles, prev_cycles);
    prev_alut = res.alut_utilization();
    prev_cycles = lat.total_cycles;
  }
}

TEST(Integration, QuantizedOutputsStayInUnitInterval) {
  const auto& d = Deployment::instance();
  const hls::QuantizedModel qm(
      d.firmware(hls::layer_based_config(d.model, d.profile, 16)));
  for (const auto& in : d.eval_inputs) {
    const auto out = qm.forward(in);
    for (std::size_t i = 0; i < out.numel(); ++i) {
      EXPECT_GE(out[i], 0.0f);
      EXPECT_LE(out[i], 1.0f);
    }
  }
}

}  // namespace
