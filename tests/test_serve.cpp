// Serving gateway tests: bounded MPMC queue semantics, replica micro-
// batching, deadline-aware admission control, sharding, metrics, and the
// gateway's core guarantee — every admitted frame gets exactly one
// response, bit-identical to direct single-threaded inference.
//
// The pure-concurrency suites here (BoundedQueue*, Replica*, GatewayTest*,
// ServeMetrics*) run under ThreadSanitizer via tools/check.sh; the
// DeblendServing integration suite needs the pretrained model cache and
// runs in the plain/ASan builds only. Timing-dependent tests assert logical
// properties (counts, batch bounds, no loss), never wall-clock bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "blm/generator.hpp"
#include "blm/machine.hpp"
#include "core/serving.hpp"
#include "hls/firmware.hpp"
#include "hls/precision.hpp"
#include "hls/profiler.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "serve/backend.hpp"
#include "serve/gateway.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/replica.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using namespace std::chrono_literals;
using serve::BoundedQueue;
using serve::Clock;
using serve::RejectReason;
using tensor::Tensor;

Tensor test_frame(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Tensor t({n, 1});
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

/// Deterministic backend with a controllable service time. Sleeping (not
/// spinning) keeps single-core hosts honest: the submitting thread still
/// runs while a "busy" replica waits.
class SyntheticBackend final : public serve::Backend {
 public:
  explicit SyntheticBackend(std::chrono::microseconds service = 0us)
      : service_(service) {}

  std::string_view name() const noexcept override { return "synthetic"; }

  Tensor infer(const Tensor& frame) override {
    if (service_ > 0us) std::this_thread::sleep_for(service_);
    Tensor out = frame;
    for (auto& v : out.flat()) v = 2.0f * v + 1.0f;
    calls_.fetch_add(1);
    return out;
  }

  std::atomic<std::size_t> calls_{0};

 private:
  std::chrono::microseconds service_;
};

std::vector<std::unique_ptr<serve::Backend>> synthetic_backends(
    std::size_t n, std::chrono::microseconds service = 0us) {
  std::vector<std::unique_ptr<serve::Backend>> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<SyntheticBackend>(service));
  }
  return out;
}

// ---------------------------------------------------------- BoundedQueue

TEST(BoundedQueue, TryVariantsRespectCapacity) {
  BoundedQueue<int> q(2);
  int a = 1;
  int b = 2;
  int c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));  // full: overload is visible, not buffered
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(c));
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  int v = 7;
  ASSERT_TRUE(q.try_push(v));
  q.close();
  int w = 8;
  EXPECT_FALSE(q.try_push(w));  // no new items after close
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.pop().value(), 7);        // but queued items drain
  EXPECT_FALSE(q.pop().has_value());    // then pop reports end-of-stream
}

TEST(BoundedQueue, BlockingPopWakesOnPush) {
  BoundedQueue<int> q(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);  // parked until the producer delivers
  producer.join();
}

TEST(BoundedQueue, BlockingPushWakesOnPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(10ms);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
  });
  EXPECT_TRUE(q.push(2));  // blocks until the consumer frees a slot
  consumer.join();
}

TEST(BoundedQueue, RingWrapsPreserveFifoOrder) {
  // The ring storage reuses slots in place; order must survive arbitrary
  // interleavings of push/pop across many wraps of a small ring.
  BoundedQueue<int> q(3);
  int next = 0;
  int expect = 0;
  for (int round = 0; round < 20; ++round) {
    int a = next++;
    int b = next++;
    ASSERT_TRUE(q.try_push(a));
    ASSERT_TRUE(q.try_push(b));
    EXPECT_EQ(q.try_pop().value(), expect++);
    int c = next++;
    ASSERT_TRUE(q.try_push(c));
    EXPECT_EQ(q.try_pop().value(), expect++);
    EXPECT_EQ(q.try_pop().value(), expect++);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::atomic<long long> sum{0};
  std::atomic<std::size_t> popped{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<int>(p * kPerProducer) + i));
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), static_cast<std::size_t>(n));
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // each value exactly once
}

// --------------------------------------------------------------- Replica

serve::Request make_request(std::uint64_t id, const Tensor& frame,
                            Clock::time_point deadline,
                            std::future<serve::Response>& future) {
  serve::Request req;
  req.id = id;
  req.frame = frame;
  req.arrival = Clock::now();
  req.deadline = deadline;
  req.promise.emplace();
  future = req.promise->get_future();
  return req;
}

TEST(Replica, DrainsQueuedFramesIntoMicroBatches) {
  serve::Metrics metrics(1, 3.0);
  BoundedQueue<serve::Request> shard(16);
  const auto frame = test_frame(8, 1);
  constexpr std::size_t kFrames = 9;
  std::vector<std::future<serve::Response>> futures(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    auto req =
        make_request(i + 1, frame, Clock::time_point::max(), futures[i]);
    ASSERT_TRUE(shard.try_push(req));
  }
  shard.close();

  serve::Replica::Options opts;
  opts.max_batch = 4;
  serve::Replica replica(opts, std::make_unique<SyntheticBackend>(), metrics);
  replica.start(shard);
  replica.join();

  std::size_t max_batch = 0;
  for (auto& f : futures) {
    auto resp = f.get();
    max_batch = std::max(max_batch, resp.batch_size);
    EXPECT_LE(resp.batch_size, opts.max_batch);
  }
  // The whole backlog was waiting with no deadline pressure, so the replica
  // must have used real micro-batches (first batch drains to max_batch).
  EXPECT_EQ(max_batch, opts.max_batch);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.replicas[0].frames, kFrames);
  EXPECT_EQ(snap.replicas[0].max_batch, opts.max_batch);
  EXPECT_LT(snap.replicas[0].batches, kFrames);  // fewer batches than frames
}

TEST(Replica, ExpiredDeadlinesSuppressBatchGrowth) {
  serve::Metrics metrics(1, 3.0);
  BoundedQueue<serve::Request> shard(16);
  const auto frame = test_frame(8, 2);
  // Deadlines already in the past: growing a batch can only add delay for
  // frames that are late, so the replica serves them one at a time.
  const auto past = Clock::now() - 1ms;
  constexpr std::size_t kFrames = 6;
  std::vector<std::future<serve::Response>> futures(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    auto req = make_request(i + 1, frame, past, futures[i]);
    ASSERT_TRUE(shard.try_push(req));
  }
  shard.close();

  serve::Replica::Options opts;
  opts.max_batch = 4;
  serve::Replica replica(opts, std::make_unique<SyntheticBackend>(), metrics);
  replica.start(shard);
  replica.join();

  for (auto& f : futures) {
    auto resp = f.get();
    EXPECT_EQ(resp.batch_size, 1u);
    EXPECT_FALSE(resp.deadline_met);
  }
  EXPECT_EQ(metrics.snapshot().deadline_misses, kFrames);
}

// ------------------------------------------------- Replica self-healing

/// Backend whose first `fail_first` inference calls throw (a worker dying
/// mid-request), then behaves exactly like SyntheticBackend.
class FlakyBackend final : public serve::Backend {
 public:
  explicit FlakyBackend(std::size_t fail_first) : remaining_(fail_first) {}

  std::string_view name() const noexcept override { return "flaky"; }

  Tensor infer(const Tensor& frame) override {
    auto left = remaining_.load();
    while (left > 0 && !remaining_.compare_exchange_weak(left, left - 1)) {
    }
    if (left > 0) throw std::runtime_error("flaky backend fault");
    Tensor out = frame;
    for (auto& v : out.flat()) v = 2.0f * v + 1.0f;
    return out;
  }

 private:
  std::atomic<std::size_t> remaining_;
};

TEST(Replica, BackendFaultRetriesLocallyWithoutLosingFrames) {
  serve::Metrics metrics(1, 3.0);
  BoundedQueue<serve::Request> shard(16);
  SyntheticBackend oracle;
  constexpr std::size_t kFrames = 6;
  std::vector<std::future<serve::Response>> futures(kFrames);
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = test_frame(8, 40 + i);
    expected.push_back(oracle.infer(frame));
    auto req =
        make_request(i + 1, frame, Clock::time_point::max(), futures[i]);
    ASSERT_TRUE(shard.try_push(req));
  }
  shard.close();

  serve::Replica::Options opts;
  opts.max_batch = 2;
  serve::Replica replica(opts, std::make_unique<FlakyBackend>(1), metrics);
  replica.start(shard);
  replica.join();

  // One fault, no redispatch hook installed: the faulted batch must be
  // retried locally and every frame still answered bit-identically.
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(futures[i].get().output, expected[i]) << i;
  }
  EXPECT_EQ(replica.backend_faults(), 1u);
  EXPECT_EQ(replica.restarts(), 0u);  // streak 1 < quarantine_after
  EXPECT_EQ(replica.health(), serve::ReplicaHealth::kHealthy);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.backend_faults, 1u);
  EXPECT_EQ(snap.quarantines, 0u);
}

TEST(Replica, FaultStreakQuarantinesBacksOffAndRestarts) {
  serve::Metrics metrics(1, 3.0);
  BoundedQueue<serve::Request> shard(16);
  SyntheticBackend oracle;
  constexpr std::size_t kFrames = 5;
  std::vector<std::future<serve::Response>> futures(kFrames);
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = test_frame(8, 60 + i);
    expected.push_back(oracle.infer(frame));
    auto req =
        make_request(i + 1, frame, Clock::time_point::max(), futures[i]);
    ASSERT_TRUE(shard.try_push(req));
  }
  shard.close();

  serve::Replica::Options opts;
  opts.max_batch = 2;
  opts.quarantine_after = 2;
  opts.backoff_initial_ms = 0.25;
  opts.backoff_max_ms = 1.0;
  serve::Replica replica(opts, std::make_unique<FlakyBackend>(3), metrics);
  replica.start(shard);
  replica.join();

  // Three consecutive faults against quarantine_after = 2: the replica must
  // quarantine, back off, restart, and still deliver every frame.
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(futures[i].get().output, expected[i]) << i;
  }
  EXPECT_EQ(replica.backend_faults(), 3u);
  EXPECT_GE(replica.restarts(), 1u);
  EXPECT_EQ(replica.health(), serve::ReplicaHealth::kHealthy);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.backend_faults, 3u);
  EXPECT_GE(snap.quarantines, 1u);
  EXPECT_GE(snap.restarts, 1u);
}

// --------------------------------------------------------------- Gateway

TEST(GatewayTest, ServesBitIdenticalToDirectInference) {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;  // no deadline: everything is admitted
  cfg.max_batch = 3;
  serve::Gateway gateway(synthetic_backends(2), cfg);

  SyntheticBackend oracle;
  constexpr std::size_t kFrames = 64;
  std::vector<serve::Ticket> tickets;
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = test_frame(8, 100 + i);
    expected.push_back(oracle.infer(frame));
    tickets.push_back(gateway.submit(frame, /*stream=*/i % 5));
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(tickets[i].admitted);
    auto resp = tickets[i].response.get();
    EXPECT_EQ(resp.output, expected[i]) << "frame " << i;
    EXPECT_EQ(resp.stream, i % 5);
  }
  gateway.stop();
  const auto snap = gateway.metrics().snapshot();
  EXPECT_EQ(snap.arrived, kFrames);
  EXPECT_EQ(snap.admitted, kFrames);
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.sheds(), 0u);
}

TEST(GatewayTest, EveryAdmittedFrameAnsweredExactlyOnceThroughShutdown) {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;
  cfg.queue_capacity = 128;
  serve::Gateway gateway(synthetic_backends(2, 500us), cfg);

  const auto frame = test_frame(8, 3);
  std::vector<serve::Ticket> tickets;
  for (std::size_t i = 0; i < 40; ++i) {
    tickets.push_back(gateway.submit(frame, i));
  }
  gateway.stop();  // closes shards; replicas must drain the backlog

  std::size_t admitted = 0;
  std::size_t answered = 0;
  for (auto& t : tickets) {
    if (!t.admitted) continue;
    ++admitted;
    // future::get() succeeds exactly once per admitted frame; a dropped
    // request would leave a broken promise and throw here.
    auto resp = t.response.get();
    EXPECT_EQ(resp.output.numel(), frame.numel());
    ++answered;
  }
  EXPECT_GT(admitted, 0u);
  EXPECT_EQ(answered, admitted);
  EXPECT_EQ(gateway.metrics().snapshot().completed, admitted);

  // After stop(), new arrivals are refused as shutdown sheds.
  auto late = gateway.submit(frame, 0);
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.reason, RejectReason::kShutdown);
}

TEST(GatewayTest, AdmissionControlShedsPredictedLateFrames) {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 20.0;
  cfg.initial_service_est_ms = 5.0;
  cfg.queue_capacity = 64;
  serve::Gateway gateway(synthetic_backends(1, 5000us), cfg);

  const auto frame = test_frame(8, 4);
  std::vector<serve::Ticket> tickets;
  for (std::size_t i = 0; i < 12; ++i) {
    tickets.push_back(gateway.submit(frame, i));
  }
  std::size_t admitted = 0;
  std::size_t shed = 0;
  for (auto& t : tickets) {
    if (t.admitted) {
      ++admitted;
      t.response.get();  // still exactly-once for everything admitted
    } else {
      EXPECT_EQ(t.reason, RejectReason::kPredictedLate);
      ++shed;
    }
  }
  // 12 frames x 5 ms against a 20 ms budget: the gateway must admit the
  // head of the burst and shed the tail at admission, not after service.
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(shed, 0u);
  gateway.stop();
  const auto snap = gateway.metrics().snapshot();
  EXPECT_EQ(snap.shed_predicted_late, shed);
  EXPECT_EQ(snap.completed, admitted);
}

TEST(GatewayTest, FullShardShedsAtAdmission) {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;  // capacity is the only limiter
  cfg.queue_capacity = 2;
  serve::Gateway gateway(synthetic_backends(1, 2000us), cfg);

  const auto frame = test_frame(8, 5);
  std::vector<serve::Ticket> tickets;
  for (std::size_t i = 0; i < 16; ++i) {
    tickets.push_back(gateway.submit(frame, i));
  }
  std::size_t queue_full = 0;
  for (auto& t : tickets) {
    if (!t.admitted && t.reason == RejectReason::kQueueFull) ++queue_full;
    if (t.admitted) t.response.get();
  }
  EXPECT_GT(queue_full, 0u);
  gateway.stop();
  EXPECT_EQ(gateway.metrics().snapshot().shed_queue_full, queue_full);
}

TEST(GatewayTest, ByStreamShardingPinsStreamsToReplicas) {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;
  cfg.sharding = serve::ShardPolicy::kByStream;
  serve::Gateway gateway(synthetic_backends(3), cfg);

  const auto frame = test_frame(8, 6);
  std::vector<serve::Ticket> tickets;
  std::vector<std::uint64_t> streams;
  for (std::size_t i = 0; i < 30; ++i) {
    const std::uint64_t stream = i % 7;
    streams.push_back(stream);
    tickets.push_back(gateway.submit(frame, stream));
  }
  std::map<std::uint64_t, std::set<std::size_t>> replicas_by_stream;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].admitted);
    replicas_by_stream[streams[i]].insert(tickets[i].response.get().replica);
  }
  for (const auto& [stream, replicas] : replicas_by_stream) {
    EXPECT_EQ(replicas.size(), 1u) << "stream " << stream;
    EXPECT_EQ(*replicas.begin(), stream % gateway.replica_count());
  }
}

TEST(GatewayTest, FaultedFramesRedispatchToAHealthyPeer) {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;
  cfg.quarantine_after = 1;
  cfg.backoff_initial_ms = 0.25;
  cfg.backoff_max_ms = 1.0;
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(
      std::make_unique<FlakyBackend>(100000));  // replica 0 never recovers
  backends.push_back(std::make_unique<SyntheticBackend>());
  serve::Gateway gateway(std::move(backends), cfg);

  SyntheticBackend oracle;
  constexpr std::size_t kFrames = 20;
  std::vector<serve::Ticket> tickets;
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = test_frame(8, 70 + i);
    expected.push_back(oracle.infer(frame));
    tickets.push_back(gateway.submit(frame, i));
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(tickets[i].admitted);
    auto resp = tickets[i].response.get();
    EXPECT_EQ(resp.output, expected[i]) << "frame " << i;
    // The sick replica can never complete a batch, so every answer comes
    // from its healthy peer — via redispatch for the frames it was dealt.
    EXPECT_EQ(resp.replica, 1u) << "frame " << i;
  }
  gateway.stop();
  const auto snap = gateway.metrics().snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_GT(snap.backend_faults, 0u);
  EXPECT_GE(snap.quarantines, 1u);
  EXPECT_GE(snap.redispatched, 1u);
  EXPECT_EQ(snap.replicas[0].faults, gateway.replica(0).backend_faults());
}

TEST(GatewayTest, QuantizedBackendMatchesDirectModel) {
  // A real (tiny) quantized model across 2 replicas: gateway outputs must
  // be bit-identical to single-threaded QuantizedModel::forward.
  auto model = nn::build_mlp({.inputs = 16, .hidden = 8, .outputs = 6});
  nn::init_he_uniform(model, 21);
  std::vector<Tensor> calib;
  for (std::uint64_t s = 0; s < 4; ++s) {
    calib.push_back(test_frame(16, 300 + s).reshaped({1, 16}));
  }
  const auto profile = hls::profile_model(model, calib);
  hls::HlsConfig hls_cfg;
  hls_cfg.quant = hls::layer_based_config(model, profile, 16);
  const auto firmware = hls::compile(model, hls_cfg);
  const hls::QuantizedModel direct(firmware);

  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;
  cfg.max_batch = 4;
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<serve::QuantizedBackend>(firmware));
  backends.push_back(std::make_unique<serve::QuantizedBackend>(firmware));
  serve::Gateway gateway(std::move(backends), cfg);

  constexpr std::size_t kFrames = 32;
  std::vector<serve::Ticket> tickets;
  std::vector<Tensor> expected;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = test_frame(16, 400 + i).reshaped({1, 16});
    expected.push_back(direct.forward(frame));
    tickets.push_back(gateway.submit(frame, i % 3));
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(tickets[i].admitted);
    EXPECT_EQ(tickets[i].response.get().output, expected[i]) << "frame " << i;
  }
}

// --------------------------------------------------------- ServeMetrics

TEST(ServeMetrics, SnapshotAndJsonCarryAllStages) {
  serve::Metrics metrics(2, 3.0);
  metrics.record_arrival();
  metrics.record_arrival();
  metrics.record_arrival();
  metrics.record_admitted();
  metrics.record_admitted();
  metrics.record_shed_predicted_late();
  const double queue_ms[] = {0.5, 1.0};
  const double e2e_ms[] = {2.5, 3.5};
  metrics.record_batch(1, 4.0, queue_ms, e2e_ms, 1);

  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.arrived, 3u);
  EXPECT_EQ(snap.admitted, 2u);
  EXPECT_EQ(snap.sheds(), 1u);
  EXPECT_NEAR(snap.shed_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.deadline_misses, 1u);
  EXPECT_EQ(snap.replicas[1].frames, 2u);
  EXPECT_EQ(snap.replicas[1].batches, 1u);
  EXPECT_NEAR(snap.replicas[1].busy_ms, 4.0, 1e-6);
  // goodput counts only in-deadline completions
  EXPECT_NEAR(snap.goodput_fps(2.0), 0.5, 1e-12);

  const auto json = snap.to_json(2.0);
  for (const char* key :
       {"\"arrived\"", "\"admitted\"", "\"shed\"", "\"goodput_fps\"",
        "\"e2e_ms\"", "\"queue_hist\"", "\"e2e_hist\"", "\"replicas\"",
        "\"utilization\"", "\"max_batch\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The embedded histogram is itself valid util::stats JSON.
  const auto hist_pos = json.find("\"e2e_hist\": ");
  auto hist = util::Histogram::from_json(json.substr(hist_pos + 12));
  EXPECT_EQ(hist.total(), 2u);
}

TEST(ServeMetrics, JsonRoundTripsExactlyIncludingHistogramTails) {
  serve::Metrics metrics(2, 3.0);
  for (int i = 0; i < 5; ++i) metrics.record_arrival();
  for (int i = 0; i < 4; ++i) metrics.record_admitted();
  metrics.record_shed_predicted_late();
  metrics.record_backend_fault(0);
  metrics.record_quarantine(0);
  metrics.record_restart(0);
  metrics.record_redispatched();
  // One latency beyond the histogram range (overflow tally) and one below
  // zero (underflow tally): the wire snapshot must carry both, or a merged
  // cluster report would silently shrink its totals.
  const double queue_ms[] = {0.25, -1.0};
  const double e2e_ms[] = {1e9, 2.25};
  metrics.record_batch(1, 3.5, queue_ms, e2e_ms, 1);

  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.e2e_ms.overflow(), 1u);
  EXPECT_EQ(snap.queue_ms.underflow(), 1u);

  const auto json = snap.to_json(2.0, /*include_samples=*/true);
  auto back = serve::MetricsSnapshot::from_json(json);
  EXPECT_EQ(back.arrived, snap.arrived);
  EXPECT_EQ(back.admitted, snap.admitted);
  EXPECT_EQ(back.shed_predicted_late, snap.shed_predicted_late);
  EXPECT_EQ(back.completed, snap.completed);
  EXPECT_EQ(back.deadline_misses, snap.deadline_misses);
  EXPECT_EQ(back.backend_faults, snap.backend_faults);
  EXPECT_EQ(back.quarantines, snap.quarantines);
  EXPECT_EQ(back.restarts, snap.restarts);
  EXPECT_EQ(back.redispatched, snap.redispatched);
  ASSERT_EQ(back.replicas.size(), snap.replicas.size());
  EXPECT_EQ(back.replicas[1].frames, snap.replicas[1].frames);
  EXPECT_NEAR(back.replicas[1].busy_ms, snap.replicas[1].busy_ms, 1e-12);
  EXPECT_EQ(back.e2e_ms.total(), snap.e2e_ms.total());
  EXPECT_EQ(back.e2e_ms.overflow(), 1u);
  EXPECT_EQ(back.queue_ms.underflow(), 1u);
  // Strongest form: the re-parsed snapshot re-exports byte-identically.
  EXPECT_EQ(back.to_json(2.0, true), json);
}

TEST(ServeMetrics, MergeAggregatesPerProcessSnapshotsExactly) {
  // Two "processes", one replica each, same deadline (same histogram
  // layout) — exactly the shape the cluster stats path merges.
  serve::Metrics a(1, 3.0);
  serve::Metrics b(1, 3.0);
  a.record_arrival();
  a.record_arrival();
  a.record_admitted();
  const double qa[] = {0.5};
  const double ea[] = {1.0};
  a.record_batch(0, 1.0, qa, ea, 0);
  b.record_arrival();
  b.record_admitted();
  b.record_shed_queue_full();
  const double qb[] = {0.75, 0.25};
  const double eb[] = {3.0, 5.0};
  b.record_batch(0, 2.0, qb, eb, 2);

  // Through the wire: to_json with samples, from_json, then merge — the
  // exact route router stats take for N replica processes.
  auto merged = serve::MetricsSnapshot::from_json(
      a.snapshot().to_json(1.0, true));
  merged.merge(serve::MetricsSnapshot::from_json(
      b.snapshot().to_json(1.0, true)));

  EXPECT_EQ(merged.arrived, 3u);
  EXPECT_EQ(merged.admitted, 2u);
  EXPECT_EQ(merged.sheds(), 1u);
  EXPECT_EQ(merged.completed, 3u);
  EXPECT_EQ(merged.deadline_misses, 2u);
  // Replica rows concatenate: each process owns distinct hardware.
  ASSERT_EQ(merged.replicas.size(), 2u);
  EXPECT_EQ(merged.replicas[0].frames, 1u);
  EXPECT_EQ(merged.replicas[1].frames, 2u);
  EXPECT_EQ(merged.e2e_ms.total(), 3u);
  // Percentiles over the union of retained samples are exact: the median
  // of {1, 3, 5} is 3, which neither process saw as its own median.
  EXPECT_NEAR(merged.e2e_samples.median(), 3.0, 1e-12);

  // Merging into a default-constructed snapshot adopts the layout (the
  // cluster report starts from an empty accumulator).
  serve::MetricsSnapshot acc;
  acc.merge(merged);
  EXPECT_EQ(acc.arrived, 3u);
  EXPECT_EQ(acc.e2e_ms.total(), 3u);
  EXPECT_EQ(acc.replicas.size(), 2u);
}

// ------------------------------------------------- DeblendServing (heavy)

TEST(DeblendServing, GatewayDecisionsMatchDirectQuantizedPath) {
  core::GatewayDeblendConfig cfg;
  cfg.replicas = 2;
  cfg.gateway.deadline_ms = 0.0;  // functional test: no shedding
  cfg.gateway.max_batch = 2;
  auto server = core::GatewayDeblender::build(cfg);

  const auto& system = server.system();
  blm::FrameGenerator gen(blm::MachineConfig::fermilab_like(),
                          system.config().seed + 99);

  for (int i = 0; i < 6; ++i) {
    const auto frame = gen.next();
    auto ticket = server.submit(frame.raw, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(ticket.admitted);
    const auto resp = ticket.response.get();
    const auto direct = system.quantized().forward(
        system.standardizer().transform(frame.raw));
    EXPECT_EQ(resp.output, direct) << "frame " << i;

    const auto decision = server.decide(resp);
    const auto expected =
        core::decide(direct, system.config().trip_threshold);
    EXPECT_EQ(decision.target, expected.target);
    EXPECT_DOUBLE_EQ(decision.mi_score, expected.mi_score);
    EXPECT_DOUBLE_EQ(decision.rr_score, expected.rr_score);
  }
  server.stop();
  const auto snap = server.gateway().metrics().snapshot();
  EXPECT_EQ(snap.completed, 6u);
  EXPECT_EQ(snap.sheds(), 0u);
}

// -------------------------------------------- hot-swap / shadow rollout

/// Deterministic y = a*x + b backend; distinct (a, b) distinguish model
/// generations bit-exactly.
class AffineBackend final : public serve::Backend {
 public:
  AffineBackend(float a, float b) : a_(a), b_(b) {}

  std::string_view name() const noexcept override { return "affine"; }

  Tensor infer(const Tensor& frame) override {
    Tensor out = frame;
    for (auto& v : out.flat()) v = a_ * v + b_;
    return out;
  }

 private:
  float a_;
  float b_;
};

serve::GatewayConfig swap_test_config() {
  serve::GatewayConfig cfg;
  cfg.deadline_ms = 0.0;  // functional tests: no shedding
  cfg.queue_capacity = 256;
  return cfg;
}

TEST(GatewayTest, SwapAllServesNewGenerationWithEpochStamps) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  serve::Gateway gw(std::move(backends), swap_test_config());
  AffineBackend v1_oracle(2.0f, 1.0f);
  AffineBackend v2_oracle(3.0f, -1.0f);

  EXPECT_EQ(gw.model_epoch(), 1u);
  for (int i = 0; i < 8; ++i) {
    const auto f = test_frame(16, 100u + static_cast<unsigned>(i));
    auto t = gw.submit(f, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(t.admitted);
    auto r = t.response.get();
    EXPECT_EQ(r.model_epoch, 1u);
    EXPECT_EQ(r.output, v1_oracle.infer(f));
  }

  gw.swap_all([] { return std::make_unique<AffineBackend>(3.0f, -1.0f); },
              2);
  EXPECT_EQ(gw.model_epoch(), 2u);

  // Frames submitted after swap_all() returns are served by the new
  // generation, bit-identical to its oracle and stamped with its epoch.
  for (int i = 0; i < 8; ++i) {
    const auto f = test_frame(16, 200u + static_cast<unsigned>(i));
    auto t = gw.submit(f, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(t.admitted);
    auto r = t.response.get();
    EXPECT_EQ(r.model_epoch, 2u);
    EXPECT_EQ(r.output, v2_oracle.infer(f));
  }
  gw.stop();
}

TEST(Replica, SwapModelRejectsNullBackend) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(1.0f, 0.0f));
  serve::Gateway gw(std::move(backends), swap_test_config());
  EXPECT_THROW(gw.replica(0).swap_model(nullptr, 2), std::invalid_argument);
  gw.stop();
}

TEST(GatewayTest, ShadowPromotesCleanCandidateFleetWide) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  serve::Gateway gw(std::move(backends), swap_test_config());
  // Candidate differs by a constant 0.2 — inside the default judge's 0.25
  // elementwise tolerance, so every mirror verdict is clean.
  AffineBackend cand_oracle(2.0f, 1.2f);

  serve::ShadowConfig sc;
  sc.fraction = 1.0;  // mirror everything: deterministic window progress
  sc.window = 4;
  sc.max_rejects = 0;
  sc.promote_after = 2;
  ASSERT_TRUE(gw.begin_shadow(
      [] { return std::make_unique<AffineBackend>(2.0f, 1.2f); }, sc));
  EXPECT_FALSE(gw.begin_shadow(
      [] { return std::make_unique<AffineBackend>(2.0f, 1.2f); }, sc))
      << "second session while one is active must be refused";

  for (int i = 0;
       i < 200 &&
       gw.shadow_status().outcome != serve::ShadowOutcome::kPromoted;
       ++i) {
    auto t = gw.submit(test_frame(16, 300u + static_cast<unsigned>(i)));
    ASSERT_TRUE(t.admitted);
    t.response.get();
  }
  const auto status = gw.end_shadow();
  EXPECT_EQ(status.outcome, serve::ShadowOutcome::kPromoted);
  EXPECT_GE(status.judged, 8u);
  EXPECT_EQ(status.rejects, 0u);
  EXPECT_GE(status.clean_windows, 2u);
  EXPECT_EQ(gw.model_epoch(), 2u);

  for (int i = 0; i < 4; ++i) {
    const auto f = test_frame(16, 400u + static_cast<unsigned>(i));
    auto t = gw.submit(f);
    ASSERT_TRUE(t.admitted);
    auto r = t.response.get();
    EXPECT_EQ(r.model_epoch, 2u);
    EXPECT_EQ(r.output, cand_oracle.infer(f));
  }
  gw.stop();
}

TEST(GatewayTest, ShadowRollsBackRegressingCandidateBitIdentically) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  serve::Gateway gw(std::move(backends), swap_test_config());
  AffineBackend v1_oracle(2.0f, 1.0f);

  serve::ShadowConfig sc;
  sc.fraction = 1.0;
  sc.window = 4;
  sc.max_rejects = 0;
  sc.promote_after = 2;
  // Candidate is wrong by +9 on every element: every verdict rejects and
  // the first completed window must roll it back.
  ASSERT_TRUE(gw.begin_shadow(
      [] { return std::make_unique<AffineBackend>(2.0f, 10.0f); }, sc));

  for (int i = 0;
       i < 200 &&
       gw.shadow_status().outcome != serve::ShadowOutcome::kRolledBack;
       ++i) {
    auto t = gw.submit(test_frame(16, 500u + static_cast<unsigned>(i)));
    ASSERT_TRUE(t.admitted);
    t.response.get();
  }
  const auto status = gw.end_shadow();
  EXPECT_EQ(status.outcome, serve::ShadowOutcome::kRolledBack);
  EXPECT_GT(status.rejects, sc.max_rejects);

  // Live traffic never saw the candidate: the fleet still serves the prior
  // generation bit-identically, same epoch as before.
  EXPECT_EQ(gw.model_epoch(), 1u);
  for (int i = 0; i < 4; ++i) {
    const auto f = test_frame(16, 600u + static_cast<unsigned>(i));
    auto t = gw.submit(f);
    ASSERT_TRUE(t.admitted);
    auto r = t.response.get();
    EXPECT_EQ(r.model_epoch, 1u);
    EXPECT_EQ(r.output, v1_oracle.infer(f));
  }

  // A terminal session does not block the next rollout attempt.
  EXPECT_TRUE(gw.begin_shadow(
      [] { return std::make_unique<AffineBackend>(2.0f, 1.1f); }, sc));
  gw.end_shadow();
  gw.stop();
}

TEST(GatewayTest, SwapAllThrowingFactoryLeavesFleetUntouched) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  auto cfg = swap_test_config();
  cfg.sharding = serve::ShardPolicy::kByStream;  // hit both shards below
  serve::Gateway gw(std::move(backends), cfg);
  AffineBackend v1_oracle(2.0f, 1.0f);

  // Succeeds for replica 0's backend, throws for replica 1's: swap_all must
  // build every backend before staging any, so neither replica swaps.
  auto calls = std::make_shared<std::atomic<int>>(0);
  EXPECT_THROW(gw.swap_all(
                   [calls]() -> std::unique_ptr<serve::Backend> {
                     if (calls->fetch_add(1) > 0) {
                       throw std::runtime_error("factory failure");
                     }
                     return std::make_unique<AffineBackend>(3.0f, -1.0f);
                   },
                   2),
               std::runtime_error);
  EXPECT_EQ(gw.model_epoch(), 1u);

  // Both shards still serve the incumbent generation, epoch 1.
  for (std::uint64_t stream = 0; stream < 2; ++stream) {
    const auto f = test_frame(16, 900u + stream);
    auto t = gw.submit(f, stream);
    ASSERT_TRUE(t.admitted);
    auto r = t.response.get();
    EXPECT_EQ(r.model_epoch, 1u);
    EXPECT_EQ(r.output, v1_oracle.infer(f));
  }
  gw.stop();
}

TEST(GatewayTest, ShadowPromotionFactoryThrowRollsBackInsteadOfTerminating) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(2.0f, 1.0f));
  serve::Gateway gw(std::move(backends), swap_test_config());
  AffineBackend v1_oracle(2.0f, 1.0f);

  serve::ShadowConfig sc;
  sc.fraction = 1.0;
  sc.window = 2;
  sc.max_rejects = 0;
  sc.promote_after = 1;
  // First call builds the (clean, incumbent-identical) shadow candidate;
  // every later call — i.e. swap_all at promotion, on the shadow worker
  // thread — throws. The exception must be absorbed as a rollback, not
  // escape the thread and std::terminate the process.
  auto calls = std::make_shared<std::atomic<int>>(0);
  ASSERT_TRUE(gw.begin_shadow(
      [calls]() -> std::unique_ptr<serve::Backend> {
        if (calls->fetch_add(1) > 0) {
          throw std::runtime_error("promotion factory failure");
        }
        return std::make_unique<AffineBackend>(2.0f, 1.0f);
      },
      sc));

  for (int i = 0; i < 200 && gw.shadow_status().active; ++i) {
    auto t = gw.submit(test_frame(16, 950u + static_cast<unsigned>(i)));
    ASSERT_TRUE(t.admitted);
    t.response.get();
  }
  const auto status = gw.end_shadow();
  EXPECT_EQ(status.outcome, serve::ShadowOutcome::kRolledBack);
  EXPECT_EQ(status.rejects, 0u) << "candidate itself was clean";

  // The fleet never changed generation.
  EXPECT_EQ(gw.model_epoch(), 1u);
  const auto f = test_frame(16, 999);
  auto t = gw.submit(f);
  ASSERT_TRUE(t.admitted);
  auto r = t.response.get();
  EXPECT_EQ(r.model_epoch, 1u);
  EXPECT_EQ(r.output, v1_oracle.infer(f));
  gw.stop();
}

TEST(GatewayTest, ShadowJudgeSeesStreamAndGroundTruthHook) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  backends.push_back(std::make_unique<AffineBackend>(1.0f, 0.0f));
  serve::Gateway gw(std::move(backends), swap_test_config());

  std::atomic<std::uint64_t> judged_streams{0};
  serve::ShadowConfig sc;
  sc.fraction = 1.0;
  sc.window = 2;
  sc.max_rejects = 0;
  sc.promote_after = 1;
  ASSERT_TRUE(gw.begin_shadow(
      [] { return std::make_unique<AffineBackend>(1.0f, 0.0f); }, sc,
      [&judged_streams](std::uint64_t stream, const Tensor& frame,
                        const Tensor& primary, const Tensor& shadow) {
        judged_streams.fetch_add(stream);
        return frame.numel() == primary.numel() &&
               primary.numel() == shadow.numel();
      }));
  for (int i = 1; i <= 8; ++i) {
    auto t = gw.submit(test_frame(16, 700u + static_cast<unsigned>(i)),
                       static_cast<std::uint64_t>(i));
    ASSERT_TRUE(t.admitted);
    t.response.get();
  }
  const auto status = gw.end_shadow();
  EXPECT_GE(status.judged, 2u);
  EXPECT_GT(judged_streams.load(), 0u) << "judge must receive stream ids";
  gw.stop();
}

// ----------------------------------------------------- zero-alloc submit

TEST(GatewayTest, SubmitIntoDeliversIntoSlotAndRecyclesBuffers) {
  serve::GatewayConfig cfg;
  cfg.max_batch = 2;
  cfg.queue_capacity = 8;
  cfg.deadline_ms = 0.0;  // no deadline: only capacity can reject
  serve::Gateway gw(synthetic_backends(1), cfg);

  serve::ResponseSlot slot;
  Tensor frame;
  std::uint64_t last_id = 0;
  for (unsigned lap = 0; lap < 12; ++lap) {
    if (lap == 0) {
      frame = test_frame(8, 1000);
    } else {
      // Steady state: the replica hands the input buffer back through the
      // slot; reuse its storage for the next frame.
      frame = std::move(slot.frame_return());
      ASSERT_EQ(frame.numel(), 8u) << "frame buffer must come back";
      for (auto& v : frame.flat()) v = static_cast<float>(lap);
    }
    const Tensor sent = frame;  // copy for the expectation check
    ASSERT_EQ(gw.submit_into(frame, slot, /*stream=*/5u + lap, 0.0),
              RejectReason::kNone)
        << lap;
    serve::Response& resp = slot.wait();
    EXPECT_EQ(resp.stream, 5u + lap);
    EXPECT_GT(resp.id, last_id) << "ids must keep increasing";
    last_id = resp.id;
    ASSERT_EQ(resp.output.numel(), sent.numel());
    for (std::size_t i = 0; i < sent.numel(); ++i) {
      EXPECT_EQ(resp.output[i], 2.0f * sent[i] + 1.0f) << "lap " << lap;
    }
  }

  gw.stop();
  // After shutdown the frame must stay with the caller, untouched.
  Tensor again = test_frame(8, 2000);
  serve::ResponseSlot slot2;
  EXPECT_EQ(gw.submit_into(again, slot2, 0, 0.0), RejectReason::kShutdown);
  EXPECT_EQ(again.numel(), 8u);
}

TEST(GatewayTest, SubmitIntoAndSubmitCoexist) {
  // Slot-based and promise-based submissions may interleave on one shard;
  // each delivery channel must get exactly its own response.
  serve::GatewayConfig cfg;
  cfg.max_batch = 4;
  cfg.queue_capacity = 16;
  cfg.deadline_ms = 0.0;
  serve::Gateway gw(synthetic_backends(1), cfg);

  for (unsigned lap = 0; lap < 6; ++lap) {
    auto ticket = gw.submit(test_frame(8, 30u + lap), 1);
    ASSERT_TRUE(ticket.admitted);
    serve::ResponseSlot slot;
    Tensor frame = test_frame(8, 60u + lap);
    const Tensor sent = frame;
    ASSERT_EQ(gw.submit_into(frame, slot, 2, 0.0), RejectReason::kNone);
    const auto from_future = ticket.response.get();
    serve::Response& from_slot = slot.wait();
    EXPECT_EQ(from_future.stream, 1u);
    EXPECT_EQ(from_slot.stream, 2u);
    for (std::size_t i = 0; i < sent.numel(); ++i) {
      EXPECT_EQ(from_slot.output[i], 2.0f * sent[i] + 1.0f);
    }
  }
  gw.stop();
}

}  // namespace
