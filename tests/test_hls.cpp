// hls module tests: precision math, profiling, firmware lowering, the
// bit-accurate quantized executor (including the wrap-accumulator overflow
// semantics behind the paper's Table II / Fig. 5b), and the resource /
// latency models with their paper-shaped properties.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hls/accuracy.hpp"
#include "hls/firmware.hpp"
#include "hls/latency.hpp"
#include "hls/precision.hpp"
#include "hls/profiler.hpp"
#include "hls/qmodel.hpp"
#include "hls/resource.hpp"
#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "nn/layers/activations.hpp"
#include "nn/layers/batchnorm.hpp"
#include "nn/layers/dense.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

Tensor random_frame(const std::vector<std::size_t>& shape, std::uint64_t seed,
                    double scale = 1.0) {
  util::Xoshiro256 rng(seed);
  Tensor t(shape);
  for (auto& v : t.flat()) v = static_cast<float>(scale * rng.normal());
  return t;
}

// ------------------------------------------------------------- precision

TEST(Precision, IntBitsForCoversPowerBoundaries) {
  EXPECT_EQ(hls::int_bits_for(0.0), 1);
  EXPECT_EQ(hls::int_bits_for(0.5), 1);
  EXPECT_EQ(hls::int_bits_for(1.5), 2);
  EXPECT_EQ(hls::int_bits_for(63.9), 7);
  EXPECT_EQ(hls::int_bits_for(64.1), 8);
  EXPECT_EQ(hls::int_bits_for(500.0), 10);
}

TEST(Precision, IntBitsAreSufficient) {
  // Property: a spec with int_bits_for(v) integer bits represents v without
  // saturation (the paper's layer-based sizing rule).
  for (double v : {0.3, 1.0, 2.5, 17.0, 63.0, 100.0, 450.0, 1200.0}) {
    const hls::FixedSpec spec{16, std::min(16, hls::int_bits_for(v))};
    if (spec.int_bits == 16 && v > spec.format().max_value()) continue;
    EXPECT_LE(v, spec.format().max_value() + 1e-9) << v;
  }
}

TEST(Precision, QuantConfigUniformAndOverride) {
  auto cfg = hls::QuantConfig::uniform({18, 10});
  EXPECT_EQ(cfg.layer("anything").weight, (hls::FixedSpec{18, 10}));
  cfg.per_layer["special"] = {{16, 2}, {16, 2}, {16, 9}};
  EXPECT_EQ(cfg.layer("special").activation, (hls::FixedSpec{16, 9}));
}

// -------------------------------------------------------------- profiler

TEST(Profiler, CapturesMaxRanges) {
  auto model = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 2});
  nn::init_he_uniform(model, 1);
  std::vector<Tensor> inputs = {random_frame({1, 4}, 2, 10.0),
                                random_frame({1, 4}, 3, 0.1)};
  const auto prof = hls::profile_model(model, inputs);
  EXPECT_EQ(prof.calibration_frames, 2u);
  EXPECT_GT(prof.max_activation.at("blm_frame"), 1.0);
  EXPECT_GT(prof.max_weight.at("dense1"), 0.0);
  EXPECT_THROW(hls::profile_model(model, {}), std::invalid_argument);
}

TEST(Profiler, LayerBasedConfigSizesIntBitsFromProfile) {
  auto model = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 2});
  nn::init_he_uniform(model, 5);
  std::vector<Tensor> inputs = {random_frame({1, 4}, 6, 40.0)};
  const auto prof = hls::profile_model(model, inputs);
  const auto cfg = hls::layer_based_config(model, prof, 16);
  const auto in_spec = cfg.layer("blm_frame").activation;
  EXPECT_EQ(in_spec.width, 16);
  EXPECT_EQ(in_spec.int_bits,
            hls::int_bits_for(prof.max_activation.at("blm_frame")));
  // extra_int_bits adds guard bits.
  const auto cfg1 = hls::layer_based_config(model, prof, 16, 1);
  EXPECT_EQ(cfg1.layer("blm_frame").activation.int_bits,
            std::min(16, in_spec.int_bits + 1));
}

TEST(Profiler, CoverageHistogramConsistentWithMax) {
  auto model = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 2});
  nn::init_he_uniform(model, 9);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(random_frame({1, 4}, 700u + static_cast<unsigned>(i), 5.0));
  const auto prof = hls::profile_model(model, inputs);
  for (const auto& node : model.nodes()) {
    // Full coverage must reproduce the max-abs integer-bit count.
    EXPECT_EQ(prof.int_bits_for_coverage(node.name, 1.0),
              hls::int_bits_for(prof.max_activation.at(node.name)))
        << node.name;
    // Lower coverage can only shrink (or keep) the requirement.
    EXPECT_LE(prof.int_bits_for_coverage(node.name, 0.9),
              prof.int_bits_for_coverage(node.name, 1.0));
  }
}

TEST(Profiler, CoverageConfigMatchesMaxRuleAtFullCoverage) {
  auto model = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 2});
  nn::init_he_uniform(model, 11);
  std::vector<Tensor> inputs = {random_frame({1, 4}, 800, 3.0)};
  const auto prof = hls::profile_model(model, inputs);
  const auto a = hls::layer_based_config(model, prof, 16);
  const auto b = hls::layer_based_config(model, prof, 16, 0, 1.0);
  for (const auto& [name, lq] : a.per_layer) {
    EXPECT_EQ(lq.activation, b.layer(name).activation) << name;
  }
  EXPECT_THROW(hls::layer_based_config(model, prof, 16, 0, 0.0),
               std::invalid_argument);
}

// -------------------------------------------------------------- firmware

TEST(Firmware, CompileMapsEveryNodeAndQuantizesWeights) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 7);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 7});
  const auto fw = hls::compile(model, cfg);
  EXPECT_EQ(fw.layers.size(), model.nodes().size());
  EXPECT_EQ(fw.input_values, 16u);
  EXPECT_EQ(fw.output_values, 32u);
  const auto& enc1a = fw.layer("enc1a");
  EXPECT_EQ(enc1a.kind, hls::LayerKind::kConv1D);
  EXPECT_EQ(enc1a.weights_raw.size(), 3u * 3u * 1u);
  EXPECT_EQ(enc1a.bias_raw.size(), 3u);
  for (auto w : enc1a.weights_raw) {
    EXPECT_GE(w, -(std::int64_t{1} << 15));
    EXPECT_LT(w, std::int64_t{1} << 15);
  }
}

TEST(Firmware, ReuseClampsToPerPositionMults) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 7);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 7});
  cfg.reuse.default_reuse = 10'000;  // absurdly serial
  const auto fw = hls::compile(model, cfg);
  const auto& head = fw.layer("head");
  EXPECT_EQ(head.mults_per_output, 3u * 2u);
  EXPECT_EQ(head.reuse, 6u);               // clamped
  EXPECT_EQ(head.instantiated_mults, 1u);  // fully serial
}

TEST(Firmware, DeployedPoliciesMatchPaper) {
  const auto unet = hls::ReusePolicy::deployed_unet();
  EXPECT_EQ(unet.default_reuse, 32u);
  EXPECT_EQ(unet.requested("bot_b"), 260u);
  EXPECT_EQ(unet.requested("head"), 260u);
  EXPECT_EQ(unet.requested("enc1a"), 32u);
  EXPECT_EQ(hls::ReusePolicy::deployed_mlp().default_reuse, 128u);
}

TEST(Firmware, BatchNormFoldsToScaleShift) {
  nn::Model model("in", {4, 2});
  auto bn = std::make_unique<nn::BatchNorm1D>(2);
  bn->set_running_stats(Tensor::from({2}, {1.0f, 2.0f}),
                        Tensor::from({2}, {4.0f, 9.0f}));
  model.add("bn", std::move(bn), {"in"});
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 4});
  const auto fw = hls::compile(model, cfg);
  const auto& l = fw.layer("bn");
  EXPECT_EQ(l.kind, hls::LayerKind::kBatchNorm);
  ASSERT_EQ(l.weights_raw.size(), 2u);
  const auto fmt = l.quant.weight.format();
  EXPECT_NEAR(fmt.to_double(l.weights_raw[0]), 1.0 / std::sqrt(4.001), 1e-2);
}

// ---------------------------------------------------------------- qmodel

TEST(QuantizedModel, MatchesFloatModelOnBenignRanges) {
  auto model = nn::build_mlp({.inputs = 8, .hidden = 6, .outputs = 4});
  nn::init_he_uniform(model, 11);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(random_frame({1, 8}, 100u + static_cast<unsigned>(i)));
  const auto prof = hls::profile_model(model, inputs);
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(model, prof, 16);
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  for (const auto& in : inputs) {
    EXPECT_LT(tensor::max_abs_diff(model.forward(in), qm.forward(in)), 0.02);
  }
}

TEST(QuantizedModel, WiderBitsReduceError) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 13);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(random_frame({16, 1}, 200u + static_cast<unsigned>(i)));
  const auto prof = hls::profile_model(model, inputs);
  double prev_err = 1e9;
  for (int bits : {8, 12, 16, 20}) {
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(model, prof, bits);
    const hls::QuantizedModel qm(hls::compile(model, cfg));
    double err = 0.0;
    for (const auto& in : inputs) {
      err = std::max<double>(err,
                             tensor::max_abs_diff(model.forward(in), qm.forward(in)));
    }
    EXPECT_LE(err, prev_err + 1e-6) << bits << " bits";
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.01);
}

TEST(QuantizedModel, AccumulatorWrapsOnOverflow) {
  // One dense layer whose true output (200) exceeds the <16,7> ring (+-64):
  // the wrap accumulator must NOT saturate to 63.998 but wrap to garbage —
  // the paper's "inner layer overflow".
  nn::Model model("in", {1, 2});
  auto dense = std::make_unique<nn::Dense>(2, 1);
  dense->weight() = Tensor::from({1, 2}, {10.0f, 10.0f});
  dense->bias() = Tensor::from({1}, {0.0f});
  model.add("d", std::move(dense), {"in"});
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 7});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  const auto in = Tensor::from({1, 2}, {10.0f, 10.0f});
  hls::ForwardStats stats;
  const auto out = qm.forward(in, &stats);
  EXPECT_EQ(stats.total_overflows(), 1u);
  EXPECT_LT(out[0], 64.0f);       // not the true 200
  EXPECT_NE(out[0], 63.998047f);  // and not a clean saturation either
}

TEST(QuantizedModel, NoOverflowWithEnoughIntBits) {
  nn::Model model("in", {1, 2});
  auto dense = std::make_unique<nn::Dense>(2, 1);
  dense->weight() = Tensor::from({1, 2}, {10.0f, 10.0f});
  dense->bias() = Tensor::from({1}, {0.0f});
  model.add("d", std::move(dense), {"in"});
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 9});  // range +-256 covers 200
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  hls::ForwardStats stats;
  const auto out = qm.forward(Tensor::from({1, 2}, {10.0f, 10.0f}), &stats);
  EXPECT_EQ(stats.total_overflows(), 0u);
  EXPECT_NEAR(out[0], 200.0f, 0.5f);
}

TEST(QuantizedModel, ExtraIntBitReducesOverflows) {
  // Fig. 5b's claim, as a property: +1 integer bit never increases and
  // typically halves the overflow count.
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 17);
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_frame({16, 1}, 300u + static_cast<unsigned>(i), 3.0));
  const auto prof = hls::profile_model(model, calib);
  std::vector<Tensor> hot;
  for (int i = 0; i < 16; ++i) hot.push_back(random_frame({16, 1}, 400u + static_cast<unsigned>(i), 9.0));
  std::size_t counts[2] = {0, 0};
  for (int extra = 0; extra < 2; ++extra) {
    hls::HlsConfig cfg;
    cfg.quant = hls::layer_based_config(model, prof, 12, extra);
    const hls::QuantizedModel qm(hls::compile(model, cfg));
    hls::ForwardStats stats;
    for (const auto& in : hot) qm.forward(in, &stats);
    counts[extra] = stats.total_overflows();
  }
  EXPECT_LE(counts[1], counts[0]);
}

TEST(QuantizedModel, SigmoidLutAccuracy) {
  nn::Model model("in", {1, 4});
  model.add("s", std::make_unique<nn::Sigmoid>(), {"in"});
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 6});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  const auto in = Tensor::from({1, 4}, {-6.0f, -0.5f, 0.5f, 6.0f});
  const auto out = qm.forward(in);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(out[i], 1.0f / (1.0f + std::exp(-in[i])), 0.02f) << i;
  }
}

TEST(QuantizedModel, RawPathMatchesFloatPath) {
  auto model = nn::build_mlp({.inputs = 6, .hidden = 4, .outputs = 3});
  nn::init_he_uniform(model, 19);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 7});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  const auto in = random_frame({1, 6}, 500);
  const auto via_float = qm.forward(in);
  const auto via_raw = qm.dequantize_output(qm.forward_raw(qm.quantize_input(in)));
  EXPECT_EQ(tensor::max_abs_diff(via_float, via_raw), 0.0f);
}

TEST(QuantizedModel, InputSizeValidated) {
  auto model = nn::build_mlp({.inputs = 6, .hidden = 4, .outputs = 3});
  nn::init_he_uniform(model, 19);
  hls::HlsConfig cfg;
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  EXPECT_THROW(qm.forward(Tensor({1, 5})), std::invalid_argument);
  EXPECT_THROW(qm.forward_raw(std::vector<std::int64_t>(5)),
               std::invalid_argument);
}

// --------------------------------------------------------------- resource

hls::FirmwareModel unet_firmware(hls::FixedSpec spec,
                                 std::size_t default_reuse = 32) {
  static auto model = [] {
    auto m = nn::build_unet();
    nn::init_he_uniform(m, 23);
    return m;
  }();
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform(spec);
  cfg.reuse = hls::ReusePolicy::deployed_unet();
  cfg.reuse.default_reuse = default_reuse;
  return hls::compile(model, cfg);
}

TEST(ResourceModel, PaperCliff18BitsExceedsDevice) {
  const hls::ResourceModel rm;
  const auto r18 = rm.estimate(unet_firmware({18, 10}));
  const auto r16 = rm.estimate(unet_firmware({16, 7}));
  EXPECT_GT(r18.alut_utilization(), 1.0);   // paper: 115%
  EXPECT_LT(r16.alut_utilization(), 0.45);  // paper: 22%
  EXPECT_FALSE(r18.fits());
  EXPECT_TRUE(r16.fits());
}

TEST(ResourceModel, DspCountNearPaper) {
  const hls::ResourceModel rm;
  const auto r = rm.estimate(unet_firmware({16, 7}));
  EXPECT_NEAR(static_cast<double>(r.total_dsps), 273.0, 120.0);  // Table III
  EXPECT_LT(r.dsp_utilization(), 0.5);
}

TEST(ResourceModel, MonotonicInReuse) {
  const hls::ResourceModel rm;
  double prev = 1e18;
  for (std::size_t reuse : {8u, 16u, 32u, 64u, 128u}) {
    const auto r = rm.estimate(unet_firmware({16, 7}, reuse));
    EXPECT_LT(r.alut_utilization(), prev) << "reuse " << reuse;
    prev = r.alut_utilization();
  }
}

TEST(ResourceModel, RamBlocksTrackPartitions) {
  const hls::ResourceModel rm;
  const auto fw = unet_firmware({16, 7});
  std::size_t mults = 0;
  for (const auto& l : fw.layers) mults += l.instantiated_mults;
  const auto r = rm.estimate(fw);
  EXPECT_GE(r.total_ram_blocks, mults);  // one ROM partition per multiplier
}

TEST(ResourceModel, CycloneIsSmallerThanArria) {
  const auto arria = hls::DeviceSpec::arria10_sx660();
  const auto cyclone = hls::DeviceSpec::cyclone5();
  EXPECT_GT(arria.aluts, cyclone.aluts);
  EXPECT_GT(arria.dsp_blocks, cyclone.dsp_blocks);
}

// ---------------------------------------------------------------- latency

TEST(LatencyModel, MonotonicInReuse) {
  const hls::LatencyModel lm;
  std::size_t prev = 0;
  for (std::size_t reuse : {8u, 16u, 32u, 64u}) {
    const auto rep = lm.estimate(unet_firmware({16, 7}, reuse));
    EXPECT_GT(rep.total_cycles, prev) << "reuse " << reuse;
    prev = rep.total_cycles;
  }
}

TEST(LatencyModel, UNetIpLatencyNearPaper) {
  const auto rep = hls::LatencyModel().estimate(unet_firmware({16, 7}));
  // Paper: 1.57 ms FPGA IP latency at 100 MHz; accept the model within ~25%.
  EXPECT_GT(rep.total_ms(), 1.1);
  EXPECT_LT(rep.total_ms(), 2.0);
}

TEST(LatencyModel, IoCyclesMatchWordCounts) {
  const auto fw = unet_firmware({16, 7});
  const auto rep = hls::LatencyModel().estimate(fw);
  EXPECT_EQ(rep.io_cycles, fw.input_values + fw.output_values);
  EXPECT_EQ(rep.total_cycles, rep.compute_cycles + rep.io_cycles);
}

TEST(LatencyModel, ClockScalesTime) {
  auto fw = unet_firmware({16, 7});
  fw.config.clock_mhz = 200.0;
  const auto rep = hls::LatencyModel().estimate(fw);
  EXPECT_NEAR(rep.total_ms() * 2.0,
              static_cast<double>(rep.total_cycles) / 1e5, 1e-9);
}

// ---------------------------------------------------------------- accuracy

TEST(Accuracy, PerfectModelScoresOne) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 29);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(random_frame({16, 1}, 600u + static_cast<unsigned>(i)));
  const auto prof = hls::profile_model(model, inputs);
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(model, prof, 20);
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  const auto rep = hls::evaluate_quantization(model, qm, inputs);
  EXPECT_EQ(rep.accuracy_mi, 1.0);
  EXPECT_EQ(rep.accuracy_rr, 1.0);
  EXPECT_EQ(rep.outliers_total(), 0u);
  EXPECT_EQ(rep.frames, 4u);
  EXPECT_EQ(rep.outputs_per_channel, 64u);
}

// Sigmoid LUT must be monotone non-decreasing for every activation width —
// a property sweep in the spirit of the paper's bit-width scans.
class SigmoidLutSweep : public ::testing::TestWithParam<int> {};

TEST_P(SigmoidLutSweep, MonotoneAndBounded) {
  const int bits = GetParam();
  nn::Model model("in", {1, 1});
  model.add("s", std::make_unique<nn::Sigmoid>(), {"in"});
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({bits, 6});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  float prev = -1.0f;
  for (double x = -10.0; x <= 10.0; x += 0.25) {
    const auto out = qm.forward(Tensor::from({1, 1}, {static_cast<float>(x)}));
    EXPECT_GE(out[0], prev - 1e-6) << "x=" << x << " bits=" << bits;
    EXPECT_GE(out[0], 0.0f);
    EXPECT_LE(out[0], 1.0f);
    prev = out[0];
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SigmoidLutSweep,
                         ::testing::Values(10, 12, 14, 16, 18));

TEST(QuantizedModel, ForwardIsDeterministic) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 41);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 8});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  const auto in = random_frame({16, 1}, 42);
  EXPECT_EQ(tensor::max_abs_diff(qm.forward(in), qm.forward(in)), 0.0f);
}

// The scratch-arena executor with blocked kernels must be bit-identical to
// the seed per-layer-vector implementation: same raw output words AND same
// per-layer saturation/overflow counts (int64 accumulation is exact, so
// reassociating the adds cannot change any finalize result).
TEST(QuantizedModel, FastPathBitIdenticalToReference) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 47);
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    calib.push_back(random_frame({16, 1}, 600u + static_cast<unsigned>(i)));
  }
  const auto prof = hls::profile_model(model, calib);
  hls::HlsConfig cfg;
  cfg.quant = hls::layer_based_config(model, prof, 16);
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  for (int f = 0; f < 6; ++f) {
    // Large-scale frames provoke saturations so the stats comparison bites.
    const double scale = f < 3 ? 1.0 : 25.0;
    const auto raw = qm.quantize_input(
        random_frame({16, 1}, 700u + static_cast<unsigned>(f), scale));
    hls::ForwardStats fast_stats;
    hls::ForwardStats ref_stats;
    const auto fast = qm.forward_raw(raw, &fast_stats);
    const auto ref = qm.forward_raw_reference(raw, &ref_stats);
    EXPECT_EQ(fast, ref) << "frame " << f;
    EXPECT_EQ(fast_stats.saturations, ref_stats.saturations) << "frame " << f;
    EXPECT_EQ(fast_stats.overflows, ref_stats.overflows) << "frame " << f;
  }
}

TEST(QuantizedModel, FastPathBitIdenticalOnOverflowingMlp) {
  // Narrow accumulator + hot inputs: wrap-around overflows must be counted
  // identically by the blocked Dense kernel and the reference loop.
  auto model = nn::build_mlp({.inputs = 6, .hidden = 5, .outputs = 3});
  nn::init_he_uniform(model, 53);
  // He-uniform weights are too tame to wrap the <16,7> accumulator ring;
  // inflate them so hot frames genuinely overflow.
  for (auto* p : model.parameters()) {
    for (auto& v : p->flat()) v *= 12.0f;
  }
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 7});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  std::size_t total_overflows = 0;
  for (int f = 0; f < 4; ++f) {
    const auto raw = qm.quantize_input(
        random_frame({1, 6}, 800u + static_cast<unsigned>(f), 8.0));
    hls::ForwardStats fast_stats;
    hls::ForwardStats ref_stats;
    EXPECT_EQ(qm.forward_raw(raw, &fast_stats),
              qm.forward_raw_reference(raw, &ref_stats));
    EXPECT_EQ(fast_stats.overflows, ref_stats.overflows);
    EXPECT_EQ(fast_stats.saturations, ref_stats.saturations);
    total_overflows += fast_stats.total_overflows();
  }
  EXPECT_GT(total_overflows, 0u);  // the comparison actually exercised wraps
}

TEST(QuantizedModel, ForwardBatchMatchesPerFrameForward) {
  auto model = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(model, 59);
  hls::HlsConfig cfg;
  cfg.quant = hls::QuantConfig::uniform({16, 8});
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  std::vector<Tensor> inputs;
  for (int i = 0; i < 9; ++i) {
    inputs.push_back(random_frame({16, 1}, 900u + static_cast<unsigned>(i), 4.0));
  }
  hls::ForwardStats batch_stats;
  const auto outs = qm.forward_batch(inputs, &batch_stats);
  ASSERT_EQ(outs.size(), inputs.size());
  hls::ForwardStats serial_stats;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto one = qm.forward(inputs[i], &serial_stats);
    EXPECT_EQ(tensor::max_abs_diff(outs[i], one), 0.0f) << i;
  }
  EXPECT_EQ(batch_stats.saturations, serial_stats.saturations);
  EXPECT_EQ(batch_stats.overflows, serial_stats.overflows);
}

TEST(ResourceModel, LayerBasedCostsSlightlyMoreThanUniformSameWidth) {
  // Alignment shifters between differently-scaled layers are the only
  // delta; they must exist but stay small (paper: 22% vs 31%).
  static auto model = [] {
    auto m = nn::build_unet();
    nn::init_he_uniform(m, 43);
    return m;
  }();
  std::vector<Tensor> calib = {random_frame({260, 1}, 44, 30.0)};
  const auto profile = hls::profile_model(model, calib);
  hls::HlsConfig uniform_cfg;
  uniform_cfg.quant = hls::QuantConfig::uniform({16, 7});
  uniform_cfg.reuse = hls::ReusePolicy::deployed_unet();
  hls::HlsConfig layered_cfg = uniform_cfg;
  layered_cfg.quant = hls::layer_based_config(model, profile, 16);
  const hls::ResourceModel rm;
  const auto u = rm.estimate(hls::compile(model, uniform_cfg));
  const auto l = rm.estimate(hls::compile(model, layered_cfg));
  EXPECT_GE(l.total_aluts, u.total_aluts);
  EXPECT_LT(static_cast<double>(l.total_aluts),
            static_cast<double>(u.total_aluts) * 1.6);
}

TEST(Accuracy, RequiresTwoChannelOutput) {
  auto model = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 3});
  nn::init_he_uniform(model, 1);
  hls::HlsConfig cfg;
  const hls::QuantizedModel qm(hls::compile(model, cfg));
  std::vector<Tensor> inputs = {random_frame({1, 4}, 2)};
  EXPECT_THROW(hls::evaluate_quantization(model, qm, inputs),
               std::invalid_argument);
}

}  // namespace
