#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace {

using reads::tensor::Tensor;
using reads::tensor::max_abs_diff;

TEST(Tensor, ConstructZeroFilled) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12u);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::from({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({3, 0}), std::invalid_argument);
}

TEST(Tensor, RowMajorAt) {
  auto t = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 2), std::out_of_range);
  Tensor r1({4});
  EXPECT_THROW(r1.at(0, 0), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  auto t = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, AddScaledAndScale) {
  auto a = Tensor::from({3}, {1, 2, 3});
  const auto b = Tensor::from({3}, {10, 20, 30});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[0], 6.0f);
  EXPECT_EQ(a[2], 18.0f);
  a.scale(2.0f);
  EXPECT_EQ(a[1], 24.0f);
}

TEST(Tensor, MaxAbsAndSum) {
  const auto t = Tensor::from({4}, {1, -5, 3, -2});
  EXPECT_EQ(t.max_abs(), 5.0f);
  EXPECT_DOUBLE_EQ(t.sum(), -3.0);
}

TEST(Tensor, MaxAbsDiffRequiresSameShape) {
  const auto a = Tensor::from({2}, {1, 2});
  const auto b = Tensor::from({2}, {1, 5});
  EXPECT_EQ(max_abs_diff(a, b), 3.0f);
  const Tensor c({3});
  EXPECT_THROW(max_abs_diff(a, c), std::invalid_argument);
}

TEST(Tensor, EqualityIsValueBased) {
  const auto a = Tensor::from({2}, {1, 2});
  auto b = Tensor::from({2}, {1, 2});
  EXPECT_EQ(a, b);
  b[0] = 9;
  EXPECT_NE(a, b);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({260, 1}).shape_string(), "(260, 1)");
}

}  // namespace
