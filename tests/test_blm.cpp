// Machine-model tests: geometry validation, determinism, blending physics,
// target semantics, raw magnitude ranges, and the statistics the paper's
// evaluation depends on (MI/RR asymmetry, wide standardized dynamic range).
#include <gtest/gtest.h>

#include <cmath>

#include "blm/data.hpp"
#include "blm/generator.hpp"
#include "blm/machine.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using blm::MachineConfig;

TEST(MachineConfig, FermilabLikeGeometry) {
  const auto cfg = MachineConfig::fermilab_like();
  EXPECT_EQ(cfg.monitors, 260u);
  EXPECT_EQ(cfg.mi.source_positions.size(), 8u);
  EXPECT_EQ(cfg.rr.source_positions.size(), 10u);
  EXPECT_GT(cfg.rr.event_probability, cfg.mi.event_probability);
  EXPECT_NEAR(cfg.baseline, 105'000.0, 1.0);
  EXPECT_NEAR(cfg.full_scale, 120'000.0, 1.0);
}

TEST(MachineConfig, FingerprintSensitivity) {
  const auto a = MachineConfig::fermilab_like();
  auto b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.noise_sigma += 1.0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  auto c = a;
  c.mi.event_probability += 0.01;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(MachineConfig, BackgroundScalesEventRates) {
  const auto cfg = MachineConfig::fermilab_like();
  const auto bg = cfg.background();
  EXPECT_NEAR(bg.mi.event_probability,
              cfg.mi.event_probability * cfg.background_event_scale, 1e-12);
  EXPECT_EQ(bg.monitors, cfg.monitors);
}

TEST(MachineModel, RejectsSourceBeyondRing) {
  auto cfg = MachineConfig::fermilab_like();
  cfg.mi.source_positions.push_back(500);
  EXPECT_THROW(blm::MachineModel(cfg, 1), std::invalid_argument);
}

TEST(MachineModel, ReadingsAreBaselinePlusBlend) {
  const auto cfg = MachineConfig::fermilab_like();
  blm::MachineModel machine(cfg, 7);
  util::Xoshiro256 rng(8);
  const auto truth = machine.sample_truth(rng);
  const auto readings = machine.readings(truth, rng);
  ASSERT_EQ(readings.size(), 260u);
  for (auto r : readings) {
    EXPECT_GT(r, cfg.baseline - cfg.pedestal_spread - 10 * cfg.noise_sigma);
  }
  // Raw magnitudes live in the paper's quoted regime.
  double mx = 0.0;
  for (auto r : readings) mx = std::max(mx, r);
  EXPECT_GT(mx, 100'000.0);
}

TEST(MachineModel, TargetsAreProbabilitiesSummingBelowOne) {
  blm::MachineModel machine(MachineConfig::fermilab_like(), 9);
  util::Xoshiro256 rng(10);
  for (int f = 0; f < 20; ++f) {
    const auto targets = machine.targets(machine.sample_truth(rng));
    for (const auto& [mi, rr] : targets) {
      EXPECT_GE(mi, 0.0);
      EXPECT_GE(rr, 0.0);
      EXPECT_LE(mi + rr, 1.0 + 1e-9);
    }
  }
}

TEST(MachineModel, PureMiLossAttributesToMi) {
  auto cfg = MachineConfig::fermilab_like();
  cfg.rr.event_probability = 0.0;  // silence RR
  cfg.mi.event_probability = 1.0;
  blm::MachineModel machine(cfg, 11);
  util::Xoshiro256 rng(12);
  const auto targets = machine.targets(machine.sample_truth(rng));
  double mi_sum = 0.0;
  double rr_sum = 0.0;
  for (const auto& [mi, rr] : targets) {
    mi_sum += mi;
    rr_sum += rr;
  }
  EXPECT_GT(mi_sum, 1.0);
  EXPECT_EQ(rr_sum, 0.0);
}

TEST(MachineModel, ResponseDecaysWithDistance) {
  auto cfg = MachineConfig::fermilab_like();
  cfg.mi.source_positions = {100};
  cfg.mi.event_probability = 1.0;
  cfg.mi.intensity_sigma = 0.0;  // deterministic intensity
  cfg.rr.event_probability = 0.0;
  blm::MachineModel machine(cfg, 13);
  util::Xoshiro256 rng(14);
  const auto truth = machine.sample_truth(rng);
  EXPECT_GT(truth.mi[100], truth.mi[105]);
  EXPECT_GT(truth.mi[105], truth.mi[120]);
  // Ring wrap: monitor 0 is 100 away, monitor 259 is 101 away going back.
  EXPECT_GT(truth.mi[0], 0.0);
}

TEST(FrameGenerator, DeterministicPerSeed) {
  blm::FrameGenerator a(MachineConfig::fermilab_like(), 21);
  blm::FrameGenerator b(MachineConfig::fermilab_like(), 21);
  for (int i = 0; i < 3; ++i) {
    const auto fa = a.next();
    const auto fb = b.next();
    EXPECT_EQ(fa.raw, fb.raw);
    EXPECT_EQ(fa.target, fb.target);
  }
  blm::FrameGenerator c(MachineConfig::fermilab_like(), 22);
  EXPECT_NE(a.next().raw, c.next().raw);
}

TEST(FrameGenerator, ShapesMatchUNetContract) {
  blm::FrameGenerator gen(MachineConfig::fermilab_like(), 31);
  const auto f = gen.next();
  EXPECT_EQ(f.raw.shape(), (std::vector<std::size_t>{260, 1}));
  EXPECT_EQ(f.target.shape(), (std::vector<std::size_t>{260, 2}));
}

TEST(BuildData, StandardizedInputsHaveWideDynamicRange) {
  const auto built = blm::build_data(64, 5);
  EXPECT_EQ(built.dataset.size(), 64u);
  float mx = 0.0f;
  for (const auto& in : built.dataset.inputs) mx = std::max(mx, in.max_abs());
  // The long-run-normalized loss events must reach far beyond unit scale —
  // this is the property behind the paper's precision findings.
  EXPECT_GT(mx, 64.0f);
}

TEST(BuildData, RawModeKeepsMagnitudes) {
  const auto built =
      blm::build_data(8, 5, blm::InputScaling::kRaw);
  float mx = 0.0f;
  for (const auto& in : built.dataset.inputs) mx = std::max(mx, in.max_abs());
  EXPECT_GT(mx, 100'000.0f);
}

TEST(TargetStats, MatchesPaperAsymmetry) {
  const auto stats = blm::compute_target_stats(256, 45);
  EXPECT_GT(stats.mean_rr, 1.8 * stats.mean_mi);  // paper: 0.42 vs 0.17
  EXPECT_NEAR(stats.mean_mi, 0.17, 0.08);
  EXPECT_NEAR(stats.mean_rr, 0.42, 0.12);
  EXPECT_GT(stats.max_standardized_input, 50.0);
}

TEST(BuildEvalInputs, UsesProvidedStandardizer) {
  const auto st = blm::fit_background_standardizer(77, MachineConfig::fermilab_like());
  const auto inputs = blm::build_eval_inputs(4, 78, st);
  ASSERT_EQ(inputs.size(), 4u);
  EXPECT_EQ(inputs[0].shape(), (std::vector<std::size_t>{260, 1}));
}

// ------------------------------------------------------- drift schedule

TEST(DriftSchedule, DisabledScheduleIsBitIdenticalToNoSchedule) {
  const auto cfg = blm::MachineConfig::fermilab_like();
  blm::FrameGenerator plain(cfg, 99);
  blm::FrameGenerator off(cfg, 99, blm::DriftSchedule{});
  for (int i = 0; i < 32; ++i) {
    const auto a = plain.next();
    const auto b = off.next();
    EXPECT_EQ(a.raw, b.raw);
    EXPECT_EQ(a.target, b.target);
  }
}

TEST(DriftSchedule, EnabledWithZeroRatesIsInactiveAndBitIdentical) {
  blm::DriftSchedule zero;
  zero.enabled = true;  // all rates zero: nothing to apply
  EXPECT_FALSE(zero.active());

  const auto cfg = blm::MachineConfig::fermilab_like();
  blm::FrameGenerator plain(cfg, 7);
  blm::FrameGenerator zeroed(cfg, 7, zero);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(plain.next().raw, zeroed.next().raw);
  }
}

TEST(DriftSchedule, IdenticalBeforeOnsetThenDiverges) {
  blm::DriftSchedule drift;
  drift.enabled = true;
  drift.onset_frame = 8;
  drift.rotation_monitors_per_kframe = 40.0;
  drift.event_rate_shift_per_kframe = 2.0;
  drift.intensity_shift_per_kframe = 1.0;

  const auto cfg = blm::MachineConfig::fermilab_like();
  blm::FrameGenerator plain(cfg, 31);
  blm::FrameGenerator drifted(cfg, 31, drift);
  for (std::size_t i = 0; i < drift.onset_frame; ++i) {
    EXPECT_EQ(plain.next().raw, drifted.next().raw) << "pre-onset frame " << i;
  }
  // Past onset the effective machine shifts, so the streams must part ways.
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = !(plain.next().raw == drifted.next().raw);
  }
  EXPECT_TRUE(diverged);
}

TEST(DriftSchedule, SameSeedReplaysDriftedStreamExactly) {
  blm::DriftSchedule drift;
  drift.enabled = true;
  drift.onset_frame = 4;
  drift.rotation_monitors_per_kframe = 25.0;
  drift.event_rate_shift_per_kframe = 1.5;

  const auto cfg = blm::MachineConfig::fermilab_like();
  blm::FrameGenerator a(cfg, 555, drift);
  blm::FrameGenerator b(cfg, 555, drift);
  for (int i = 0; i < 48; ++i) {
    const auto fa = a.next();
    const auto fb = b.next();
    EXPECT_EQ(fa.raw, fb.raw);
    EXPECT_EQ(fa.target, fb.target);
  }
  EXPECT_EQ(a.frames_generated(), 48u);
}

TEST(DriftSchedule, EffectiveConfigTracksOnsetAndClamps) {
  blm::DriftSchedule drift;
  drift.enabled = true;
  drift.onset_frame = 2;
  drift.event_rate_shift_per_kframe = 1000.0;  // absurd rate: must clamp

  const auto cfg = blm::MachineConfig::fermilab_like();
  blm::FrameGenerator gen(cfg, 1, drift);
  EXPECT_EQ(gen.effective_config().fingerprint(), cfg.fingerprint());
  for (int i = 0; i < 40; ++i) gen.next();
  const auto eff = gen.effective_config();
  EXPECT_NE(eff.fingerprint(), cfg.fingerprint());
  EXPECT_LE(eff.mi.event_probability, 1.0);
  EXPECT_LE(eff.rr.event_probability, 1.0);
}

}  // namespace
