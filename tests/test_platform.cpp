// Platform comparison tests: MAC counting, the GPU model's batch-amortization
// property (Fig. 3's message), and the measured-CPU harness contract.
#include <gtest/gtest.h>

#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "platform/comparison.hpp"
#include "platform/cpu.hpp"
#include "platform/gpu.hpp"

namespace {

using namespace reads;
using tensor::Tensor;

TEST(ModelMacs, MlpCountsDensePositions) {
  const auto m = nn::build_mlp({.inputs = 4, .hidden = 3, .outputs = 2});
  // 4*3 + 3*2 = 18 MACs at one position.
  EXPECT_EQ(platform::model_macs(m), 18u);
}

TEST(ModelMacs, UNetScalesWithPositions) {
  const auto small = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  const auto big = nn::build_unet({.monitors = 32, .c1 = 3, .c2 = 4, .c3 = 5});
  EXPECT_NEAR(static_cast<double>(platform::model_macs(big)),
              2.0 * static_cast<double>(platform::model_macs(small)),
              0.05 * static_cast<double>(platform::model_macs(big)));
}

TEST(GpuModel, LargeBatchAmortizesToMicroseconds) {
  const auto m = nn::build_unet();
  const auto b1 = platform::estimate_gpu(m, 1);
  const auto b256 = platform::estimate_gpu(m, 256);
  EXPECT_GT(b1.mean_ms_per_frame, 10.0 * b256.mean_ms_per_frame);
  EXPECT_LT(b256.mean_ms_per_frame, 0.05);  // microseconds-class
}

TEST(GpuModel, Batch1IsLaunchAndTransferBound) {
  const auto m = nn::build_unet();
  const auto lat = platform::estimate_gpu(m, 1);
  EXPECT_GT(lat.launch_ms + lat.transfer_ms, lat.kernel_ms);
}

TEST(GpuModel, MonotonicNonIncreasingInBatch) {
  const auto m = nn::build_mlp();
  double prev = 1e30;
  for (std::size_t b : {1u, 2u, 8u, 32u, 128u, 512u}) {
    const auto lat = platform::estimate_gpu(m, b);
    EXPECT_LE(lat.mean_ms_per_frame, prev + 1e-12) << "batch " << b;
    prev = lat.mean_ms_per_frame;
  }
}

TEST(CpuMeasure, ReturnsPositiveOrderedStats) {
  auto m = nn::build_mlp({.inputs = 16, .hidden = 8, .outputs = 4});
  nn::init_he_uniform(m, 3);
  const Tensor in({1, 16});
  const auto lat = platform::measure_cpu(m, in, /*reps=*/3, /*batch=*/2);
  EXPECT_GT(lat.mean_ms_per_frame, 0.0);
  EXPECT_LE(lat.min_ms, lat.mean_ms_per_frame + 1e-9);
  EXPECT_GE(lat.max_ms, lat.mean_ms_per_frame - 1e-9);
  EXPECT_EQ(lat.batch, 2u);
  EXPECT_THROW(platform::measure_cpu(m, in, 0, 1), std::invalid_argument);
}

TEST(Comparison, HostRowsCoverCpuAndGpu) {
  auto m = nn::build_mlp({.inputs = 16, .hidden = 8, .outputs = 4});
  nn::init_he_uniform(m, 3);
  const Tensor in({1, 16});
  const auto rows = platform::host_platform_rows("mlp", m, in, {1, 4}, 2);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].platform, "CPU (measured)");
  EXPECT_EQ(rows[2].platform, "GPU (modelled)");
  for (const auto& r : rows) EXPECT_GT(r.latency_ms, 0.0);
}

}  // namespace
