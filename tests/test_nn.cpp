// Layer and model-graph tests: hand-computed forward references, shape
// validation, serialization, builder parameter counts, and finite-difference
// gradient checks for every trainable layer (the property that really
// matters for the from-scratch trainer).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/builders.hpp"
#include "nn/init.hpp"
#include "nn/layers/activations.hpp"
#include "nn/layers/batchnorm.hpp"
#include "nn/layers/concat.hpp"
#include "nn/layers/conv1d.hpp"
#include "nn/layers/dense.hpp"
#include "nn/layers/flatten.hpp"
#include "nn/layers/pool.hpp"
#include "nn/layers/upsample.hpp"
#include "nn/model.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace reads;
using nn::Model;
using tensor::Tensor;

Tensor random_tensor(const std::vector<std::size_t>& shape,
                     std::uint64_t seed, double scale = 1.0) {
  util::Xoshiro256 rng(seed);
  Tensor t(shape);
  for (auto& v : t.flat()) v = static_cast<float>(scale * rng.normal());
  return t;
}

// ---------------------------------------------------------------- forward

TEST(Dense, HandComputedForward) {
  nn::Dense d(2, 2);
  d.weight() = Tensor::from({2, 2}, {1, 2, 3, 4});
  d.bias() = Tensor::from({2}, {0.5, -0.5});
  const auto x = Tensor::from({1, 2}, {1, 1});
  const Tensor* in[] = {&x};
  const auto y = d.forward(in, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3+4-0.5
}

TEST(Dense, AppliedPositionWise) {
  nn::Dense d(1, 1);
  d.weight() = Tensor::from({1, 1}, {2});
  d.bias() = Tensor::from({1}, {1});
  const auto x = Tensor::from({3, 1}, {1, 2, 3});
  const Tensor* in[] = {&x};
  const auto y = d.forward(in, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(2, 0), 7.0f);
}

TEST(Conv1D, HandComputedSamePadding) {
  nn::Conv1D c(1, 1, 3);
  c.weight() = Tensor::from({1, 3, 1}, {1, 2, 1});  // (out, k, in)
  c.bias() = Tensor::from({1}, {0});
  const auto x = Tensor::from({4, 1}, {1, 2, 3, 4});
  const Tensor* in[] = {&x};
  const auto y = c.forward(in, false);
  // same padding: y[p] = x[p-1] + 2 x[p] + x[p+1], zeros beyond edges
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 8.0f);
  EXPECT_FLOAT_EQ(y.at(2, 0), 12.0f);
  EXPECT_FLOAT_EQ(y.at(3, 0), 11.0f);
}

TEST(Conv1D, RejectsEvenKernel) {
  EXPECT_THROW(nn::Conv1D(1, 1, 2), std::invalid_argument);
}

TEST(MaxPool1D, ForwardAndDivisibility) {
  nn::MaxPool1D p(2);
  const auto x = Tensor::from({4, 2}, {1, 8, 2, 7, 3, 6, 4, 5});
  const Tensor* in[] = {&x};
  const auto y = p.forward(in, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 6.0f);
  const std::vector<nn::Shape> bad = {{5, 2}};
  EXPECT_THROW(p.output_shape(bad), std::invalid_argument);
}

TEST(UpSampling1D, RepeatsPositions) {
  nn::UpSampling1D u(2);
  const auto x = Tensor::from({2, 1}, {3, 7});
  const Tensor* in[] = {&x};
  const auto y = u.forward(in, false);
  ASSERT_EQ(y.dim(0), 4u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(2, 0), 7.0f);
  EXPECT_FLOAT_EQ(y.at(3, 0), 7.0f);
}

TEST(Concatenate, ChannelAxis) {
  nn::Concatenate cat;
  const auto a = Tensor::from({2, 1}, {1, 2});
  const auto b = Tensor::from({2, 2}, {10, 11, 20, 21});
  const Tensor* in[] = {&a, &b};
  const auto y = cat.forward(in, false);
  ASSERT_EQ(y.dim(1), 3u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(y.at(1, 2), 21.0f);
}

TEST(Concatenate, RejectsMismatchedPositions) {
  nn::Concatenate cat;
  const std::vector<nn::Shape> bad = {{2, 1}, {3, 1}};
  EXPECT_THROW(cat.output_shape(bad), std::invalid_argument);
}

TEST(Activations, ReluAndSigmoidValues) {
  nn::ReLU relu;
  nn::Sigmoid sig;
  const auto x = Tensor::from({1, 3}, {-1, 0, 2});
  const Tensor* in[] = {&x};
  const auto yr = relu.forward(in, false);
  EXPECT_FLOAT_EQ(yr[0], 0.0f);
  EXPECT_FLOAT_EQ(yr[2], 2.0f);
  const auto ys = sig.forward(in, false);
  EXPECT_NEAR(ys[1], 0.5f, 1e-6);
  EXPECT_NEAR(ys[2], 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
}

TEST(Flatten, ShapeOnly) {
  nn::Flatten f;
  const auto x = random_tensor({4, 3}, 1);
  const Tensor* in[] = {&x};
  const auto y = f.forward(in, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 12}));
  EXPECT_EQ(y[5], x[5]);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  nn::BatchNorm1D bn(1);
  bn.set_running_stats(Tensor::from({1}, {2.0f}), Tensor::from({1}, {4.0f}));
  const auto x = Tensor::from({2, 1}, {2, 6});
  const Tensor* in[] = {&x};
  const auto y = bn.forward(in, /*training=*/false);
  EXPECT_NEAR(y[0], 0.0f, 1e-3);
  EXPECT_NEAR(y[1], 4.0f / std::sqrt(4.001f), 1e-3);
}

TEST(BatchNorm, TrainingNormalizesOverPositions) {
  nn::BatchNorm1D bn(1);
  const auto x = Tensor::from({4, 1}, {1, 2, 3, 4});
  const Tensor* in[] = {&x};
  const auto y = bn.forward(in, /*training=*/true);
  double mean = 0.0;
  for (std::size_t i = 0; i < 4; ++i) mean += y[i];
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-5);
}

// ------------------------------------------------------------- model graph

std::unique_ptr<nn::Layer> relu() { return std::make_unique<nn::ReLU>(); }

TEST(Model, SkipConnectionFanOutAccumulatesGradients) {
  // x -> a (identity-ish relu) feeds both b and concat; gradient w.r.t. a
  // must be the sum of both consumers' contributions.
  Model m("in", {2, 1});
  m.add("a", relu(), {"in"});
  m.add("b", relu(), {"a"});
  m.add("cat", std::make_unique<nn::Concatenate>(), {"a", "b"});
  const auto x = Tensor::from({2, 1}, {1, 2});
  const auto acts = m.forward_all(x);
  nn::GradStore store(m.parameter_shapes());
  Tensor gout(acts.output().shape());
  gout.fill(1.0f);
  m.backward(acts, gout, store);
  // No params, but the pass must not crash and output must be the concat.
  EXPECT_EQ(acts.output().dim(1), 2u);
}

// Model::forward runs over per-thread scratch Activations and the blocked
// kernels reuse the scratch arena; interleaving differently-shaped models on
// the same thread must not leak state between them, and results must match
// the allocating forward_all path exactly.
TEST(Model, ScratchForwardMatchesForwardAllAcrossModels) {
  auto unet = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(unet, 91);
  auto mlp = nn::build_mlp({.inputs = 8, .hidden = 5, .outputs = 2});
  nn::init_he_uniform(mlp, 92);
  for (int i = 0; i < 3; ++i) {
    const auto xu = random_tensor({16, 1}, 930u + static_cast<unsigned>(i));
    const auto xm = random_tensor({1, 8}, 960u + static_cast<unsigned>(i));
    const auto yu = unet.forward(xu);
    const auto ym = mlp.forward(xm);
    EXPECT_EQ(tensor::max_abs_diff(yu, unet.forward_all(xu).output()), 0.0f);
    EXPECT_EQ(tensor::max_abs_diff(ym, mlp.forward_all(xm).output()), 0.0f);
  }
}

TEST(Model, ForwardBatchMatchesPerFrame) {
  auto unet = nn::build_unet({.monitors = 16, .c1 = 3, .c2 = 4, .c3 = 5});
  nn::init_he_uniform(unet, 93);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 7; ++i) {
    inputs.push_back(random_tensor({16, 1}, 970u + static_cast<unsigned>(i)));
  }
  const auto outs = unet.forward_batch(inputs);
  ASSERT_EQ(outs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(outs[i], unet.forward(inputs[i])), 0.0f)
        << i;
  }
}

TEST(Model, RejectsDuplicateAndUnknownNames) {
  Model m("in", {2, 1});
  m.add("a", relu(), {"in"});
  EXPECT_THROW(m.add("a", relu(), {"in"}), std::invalid_argument);
  EXPECT_THROW(m.add("b", relu(), {"nope"}), std::invalid_argument);
}

TEST(Model, RejectsWrongArity) {
  Model m("in", {2, 1});
  EXPECT_THROW(m.add("cat", std::make_unique<nn::Concatenate>(), {"in"}),
               std::invalid_argument);
}

TEST(Model, ForwardValidatesInputShape) {
  Model m("in", {2, 1});
  m.add("a", relu(), {"in"});
  EXPECT_THROW(m.forward(Tensor({3, 1})), std::invalid_argument);
}

TEST(Builders, UNetHasExactly134434Params) {
  const auto m = nn::build_unet();
  EXPECT_EQ(m.param_count(), 134'434u);
  EXPECT_EQ(nn::unet_param_count(nn::UNetConfig{}), 134'434u);
  EXPECT_EQ(m.input_shape(), (nn::Shape{260, 1}));
  EXPECT_EQ(m.output_shape(), (nn::Shape{260, 2}));
}

TEST(Builders, UNetParamFormulaMatchesGraph) {
  nn::UNetConfig cfg;
  cfg.c1 = 9;
  cfg.c2 = 73;
  cfg.c3 = 107;  // the other exact-134434 solution
  EXPECT_EQ(nn::build_unet(cfg).param_count(), nn::unet_param_count(cfg));
  EXPECT_EQ(nn::unet_param_count(cfg), 134'434u);
}

TEST(Builders, MlpMatchesStatedLayerSizes) {
  const auto m = nn::build_mlp();
  // 261*128 + 129*518; the paper reports 100,102 (see DESIGN.md §4).
  EXPECT_EQ(m.param_count(), 100'230u);
  EXPECT_EQ(m.output_shape(), (nn::Shape{1, 518}));
}

TEST(Builders, UNetWithBatchNormAddsTwoParams) {
  nn::UNetConfig cfg;
  cfg.input_batchnorm = true;
  EXPECT_EQ(nn::build_unet(cfg).param_count(), 134'436u);
}

TEST(Builders, RejectsIndivisibleMonitorCount) {
  nn::UNetConfig cfg;
  cfg.monitors = 258;
  EXPECT_THROW(nn::build_unet(cfg), std::invalid_argument);
}

TEST(Init, Uniform01PutsAllParamsInUnitInterval) {
  auto m = nn::build_mlp({.inputs = 8, .hidden = 4, .outputs = 2});
  nn::init_uniform01(m, 5);
  for (const auto* p : m.parameters()) {
    for (std::size_t i = 0; i < p->numel(); ++i) {
      EXPECT_GE((*p)[i], 0.0f);
      EXPECT_LT((*p)[i], 1.0f);
    }
  }
}

TEST(Serialize, RoundTripPreservesWeightsAndBnStats) {
  nn::UNetConfig cfg;
  cfg.monitors = 16;
  cfg.c1 = 3;
  cfg.c2 = 4;
  cfg.c3 = 5;
  cfg.input_batchnorm = true;
  auto m = nn::build_unet(cfg);
  nn::init_he_uniform(m, 77);
  const std::string path = ::testing::TempDir() + "/weights.bin";
  nn::save_weights(m, path);
  auto m2 = nn::build_unet(cfg);
  nn::load_weights(m2, path);
  const auto x = random_tensor({16, 1}, 3);
  EXPECT_EQ(tensor::max_abs_diff(m.forward(x), m2.forward(x)), 0.0f);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto mlp = nn::build_mlp({.inputs = 8, .hidden = 4, .outputs = 2});
  nn::init_he_uniform(mlp, 1);
  const std::string path = ::testing::TempDir() + "/mlp.bin";
  nn::save_weights(mlp, path);
  auto other = nn::build_mlp({.inputs = 9, .hidden = 4, .outputs = 2});
  EXPECT_THROW(nn::load_weights(other, path), std::runtime_error);
}

// -------------------------------------------------- gradient verification

/// Finite-difference check of dLoss/dParam for a model, with
/// Loss = sum(coeff .* output). `training` must match between the analytic
/// backward and the numeric re-evaluation (BatchNorm behaves differently).
/// `allowed_kink_fraction` tolerates probes that land on ReLU kinks or
/// MaxPool ties, where the numeric two-sided difference straddles a
/// non-differentiable point and legitimately disagrees with any subgradient.
void check_gradients(Model& m, const Tensor& x, std::uint64_t seed,
                     double tol = 2e-2, bool training = false,
                     double allowed_kink_fraction = 0.0) {
  util::Xoshiro256 rng(seed);
  Tensor coeff(m.output_shape());
  for (auto& v : coeff.flat()) v = static_cast<float>(rng.normal());

  const auto loss_of = [&](const Tensor& input) {
    const auto y = m.forward_all(input, training).output();
    double l = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) l += coeff[i] * y[i];
    return l;
  };

  const auto acts = m.forward_all(x, training);
  nn::GradStore store(m.parameter_shapes());
  m.backward(acts, coeff, store);

  const float eps = 1e-3f;
  auto params = m.parameters();
  std::size_t probes = 0;
  std::size_t mismatches = 0;
  std::string first_mismatch;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    // Spot-check a handful of coordinates per tensor.
    for (std::size_t probe = 0; probe < std::min<std::size_t>(p.numel(), 6);
         ++probe) {
      const auto i = probe * (p.numel() / std::min<std::size_t>(p.numel(), 6));
      const float orig = p[i];
      p[i] = orig + eps;
      const double lp = loss_of(x);
      p[i] = orig - eps;
      const double lm = loss_of(x);
      p[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = store.tensors()[pi][i];
      ++probes;
      if (std::fabs(analytic - numeric) >
          tol * std::max({1.0, std::fabs(numeric), std::fabs(analytic)})) {
        ++mismatches;
        if (first_mismatch.empty()) {
          first_mismatch = "param tensor " + std::to_string(pi) + " index " +
                           std::to_string(i) + ": analytic " +
                           std::to_string(analytic) + " vs numeric " +
                           std::to_string(numeric);
        }
      }
    }
  }
  EXPECT_LE(static_cast<double>(mismatches),
            allowed_kink_fraction * static_cast<double>(probes))
      << mismatches << "/" << probes << " probes off; first: "
      << first_mismatch;
}

TEST(Gradients, Dense) {
  Model m("in", {3, 4});
  m.add("d", std::make_unique<nn::Dense>(4, 5), {"in"});
  nn::init_he_uniform(m, 21);
  check_gradients(m, random_tensor({3, 4}, 22), 23);
}

TEST(Gradients, Conv1D) {
  Model m("in", {8, 3});
  m.add("c", std::make_unique<nn::Conv1D>(3, 4, 3), {"in"});
  nn::init_he_uniform(m, 31);
  check_gradients(m, random_tensor({8, 3}, 32), 33);
}

// Regression guard for the 'same'-padding backward boundary handling: the
// `q < 0 || q >= positions` tap guard means the first/last positions see
// fewer taps than interior ones, and an off-by-one there corrupts exactly
// those rows' input gradients. k = 5 hangs two taps off each edge; every
// boundary row's dLoss/dInput must match a finite difference.
TEST(Gradients, Conv1DSamePaddingBoundaryInputGrad) {
  constexpr std::size_t positions = 6;
  constexpr std::size_t in_ch = 2;
  constexpr std::size_t out_ch = 3;
  constexpr std::size_t k = 5;
  nn::Conv1D conv(in_ch, out_ch, k);
  util::Xoshiro256 rng(81);
  for (auto* p : conv.params()) {
    for (auto& v : p->flat()) v = static_cast<float>(rng.normal() * 0.5);
  }
  Tensor x = random_tensor({positions, in_ch}, 82);
  Tensor coeff({positions, out_ch});
  for (auto& v : coeff.flat()) v = static_cast<float>(rng.normal());

  const auto loss_of = [&](const Tensor& input) {
    const Tensor* in_ptr = &input;
    const Tensor y = conv.forward({&in_ptr, 1}, /*training=*/false);
    double l = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) l += coeff[i] * y[i];
    return l;
  };

  const Tensor* x_ptr = &x;
  const Tensor y = conv.forward({&x_ptr, 1}, /*training=*/false);
  Tensor gx({positions, in_ch});
  auto params = conv.params();
  Tensor gw(params[0]->shape());
  Tensor gb(params[1]->shape());
  Tensor* grad_ins[] = {&gx};
  Tensor* param_grads[] = {&gw, &gb};
  conv.backward({&x_ptr, 1}, y, coeff, {grad_ins, 1}, {param_grads, 2});

  const float eps = 1e-3f;
  for (const std::size_t p : {std::size_t{0}, std::size_t{1},
                              positions - 2, positions - 1}) {
    for (std::size_t c = 0; c < in_ch; ++c) {
      const std::size_t i = p * in_ch + c;
      const float orig = x[i];
      x[i] = orig + eps;
      const double lp = loss_of(x);
      x[i] = orig - eps;
      const double lm = loss_of(x);
      x[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = gx[i];
      EXPECT_NEAR(analytic, numeric,
                  2e-2 * std::max({1.0, std::fabs(numeric)}))
          << "position " << p << " channel " << c;
    }
  }
}

TEST(Gradients, DenseReluChain) {
  Model m("in", {2, 4});
  m.add("d1", std::make_unique<nn::Dense>(4, 6), {"in"});
  m.add("r", relu());
  m.add("d2", std::make_unique<nn::Dense>(6, 3));
  nn::init_he_uniform(m, 41);
  check_gradients(m, random_tensor({2, 4}, 42), 43);
}

TEST(Gradients, SigmoidHead) {
  Model m("in", {2, 3});
  m.add("d", std::make_unique<nn::Dense>(3, 2), {"in"});
  m.add("s", std::make_unique<nn::Sigmoid>());
  nn::init_he_uniform(m, 51);
  check_gradients(m, random_tensor({2, 3}, 52), 53);
}

TEST(Gradients, PoolUpsampleConcat) {
  Model m("in", {8, 2});
  m.add("c1", std::make_unique<nn::Conv1D>(2, 3, 3), {"in"});
  m.add("p", std::make_unique<nn::MaxPool1D>(2));
  m.add("u", std::make_unique<nn::UpSampling1D>(2));
  m.add("cat", std::make_unique<nn::Concatenate>(), {"u", "c1"});
  m.add("c2", std::make_unique<nn::Conv1D>(6, 2, 3));
  nn::init_he_uniform(m, 61);
  check_gradients(m, random_tensor({8, 2}, 62), 63);
}

TEST(Gradients, BatchNormTrainingMode) {
  Model m("in", {6, 2});
  m.add("bn", std::make_unique<nn::BatchNorm1D>(2), {"in"});
  m.add("d", std::make_unique<nn::Dense>(2, 2));
  nn::init_he_uniform(m, 71);
  check_gradients(m, random_tensor({6, 2}, 72, 2.0), 73, 4e-2,
                  /*training=*/true);
}

TEST(Gradients, TinyUNetEndToEnd) {
  nn::UNetConfig cfg;
  cfg.monitors = 12;
  cfg.c1 = 2;
  cfg.c2 = 3;
  cfg.c3 = 4;
  auto m = nn::build_unet(cfg);
  nn::init_he_uniform(m, 81);
  // The narrow random net hits ReLU kinks / MaxPool ties on a few probes.
  check_gradients(m, random_tensor({12, 1}, 82), 83, 4e-2,
                  /*training=*/false, /*allowed_kink_fraction=*/0.2);
}

// ------------------------------------------- serialize: full round trips

TEST(Serialize, UNetRoundTripBitIdenticalAcrossEveryLayerType) {
  // input_batchnorm=true makes the graph exercise every layer type the
  // builders emit: BatchNorm, Conv1D, ReLU, MaxPool, UpSample, Concatenate,
  // and the Sigmoid head.
  nn::UNetConfig cfg;
  cfg.monitors = 16;
  cfg.c1 = 3;
  cfg.c2 = 4;
  cfg.c3 = 5;
  cfg.input_batchnorm = true;
  auto m = nn::build_unet(cfg);
  nn::init_he_uniform(m, 2024);
  const std::string path = ::testing::TempDir() + "/unet_rt.bin";
  nn::save_weights(m, path);

  auto m2 = nn::build_unet(cfg);
  nn::init_he_uniform(m2, 999);  // divergent start: the load must overwrite
  nn::load_weights(m2, path);
  EXPECT_EQ(nn::weights_hash(m2), nn::weights_hash(m));
  const auto x = random_tensor({16, 1}, 7);
  EXPECT_EQ(tensor::max_abs_diff(m.forward(x), m2.forward(x)), 0.0f);
}

TEST(Serialize, MlpRoundTripBitIdentical) {
  const nn::MlpConfig cfg{.inputs = 8, .hidden = 6, .outputs = 4};
  auto m = nn::build_mlp(cfg);
  nn::init_he_uniform(m, 31);
  const std::string path = ::testing::TempDir() + "/mlp_rt.bin";
  nn::save_weights(m, path);

  auto m2 = nn::build_mlp(cfg);
  nn::load_weights(m2, path);
  EXPECT_EQ(nn::weights_hash(m2), nn::weights_hash(m));
  const auto x = random_tensor({1, 8}, 11);
  EXPECT_EQ(tensor::max_abs_diff(m.forward(x), m2.forward(x)), 0.0f);
}

TEST(Serialize, CopyWeightsMakesForwardBitIdentical) {
  nn::UNetConfig cfg;
  cfg.monitors = 16;
  cfg.c1 = 3;
  cfg.c2 = 4;
  cfg.c3 = 5;
  auto src = nn::build_unet(cfg);
  nn::init_he_uniform(src, 5);
  auto dst = nn::build_unet(cfg);
  nn::init_he_uniform(dst, 6);
  ASSERT_NE(nn::weights_hash(src), nn::weights_hash(dst));

  nn::copy_weights(src, dst);
  EXPECT_EQ(nn::weights_hash(dst), nn::weights_hash(src));
  const auto x = random_tensor({16, 1}, 9);
  EXPECT_EQ(tensor::max_abs_diff(src.forward(x), dst.forward(x)), 0.0f);
}

TEST(Serialize, CopyWeightsRejectsArchitectureMismatch) {
  auto mlp = nn::build_mlp({.inputs = 8, .hidden = 4, .outputs = 2});
  auto other = nn::build_mlp({.inputs = 9, .hidden = 4, .outputs = 2});
  EXPECT_THROW(nn::copy_weights(mlp, other), std::runtime_error);
}

TEST(Serialize, WeightsHashSensitiveToSingleParamFlip) {
  auto m = nn::build_mlp({.inputs = 8, .hidden = 4, .outputs = 2});
  nn::init_he_uniform(m, 17);
  const auto before = nn::weights_hash(m);
  auto params = m.parameters();
  ASSERT_FALSE(params.empty());
  params.back()->data()[0] += 1.0f;
  EXPECT_NE(nn::weights_hash(m), before);
}

}  // namespace
