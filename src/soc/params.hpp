// Timing parameters of the Arria 10 SoC platform model. Values are typical
// of an ARM Cortex-A9 HPS doing uncached MMIO through the HPS-to-FPGA
// bridge under Linux, chosen so the end-to-end numbers land in the paper's
// measured ranges (1.74 ms U-Net / 0.31 ms MLP system latency).
#pragma once

#include <cstdint>

namespace reads::soc {

struct BridgeParams {
  /// Posted 32-bit MMIO write, HPS -> FPGA (ns).
  double write_ns = 150.0;
  /// Non-posted 32-bit MMIO read, FPGA -> HPS (ns).
  double read_ns = 400.0;
  /// 16-bit values packed per 32-bit bridge word.
  std::size_t values_per_word = 2;
};

/// Scatter-gather DMA engine used only by the interface ablation: great for
/// bulk transfers, poor for 260-word control frames because of the fixed
/// setup and completion-interrupt costs (Table I discussion).
struct DmaParams {
  double setup_us = 18.0;       ///< descriptor build + doorbell + driver
  double per_word_ns = 10.0;    ///< streaming burst throughput
  double completion_irq_us = 55.0;
};

/// How the HPS learns that the IP finished: a completion interrupt through
/// the kernel (the paper's deployment; pays IRQ delivery + scheduler wakeup
/// ~100 us with OS-jitter tails), or user-space busy-polling of the control
/// IP's status register over the bridge (bounded, jitter-free, but burns a
/// CPU and bridge bandwidth — the classic embedded trade-off).
enum class NotifyMode : std::uint8_t { kInterrupt, kPolling };

struct OsParams {
  NotifyMode notify = NotifyMode::kInterrupt;
  /// Status-register poll period in polling mode (one bridge read each).
  double poll_interval_us = 2.0;
  /// Interrupt delivery + handler + wakeup of the user-space process (us);
  /// jittered per frame with a lognormal factor.
  double irq_base_us = 110.0;
  double irq_sigma = 0.05;
  /// Minor scheduler disturbances (timer ticks, softirqs).
  double minor_jitter_p = 0.02;
  double minor_jitter_mean_us = 30.0;
  /// Rare preemption by another task — the paper's >2 ms stragglers
  /// ("fluctuations above 2 ms may originate from task scheduling in the
  /// operating system").
  double major_jitter_p = 0.0004;
  double major_jitter_min_us = 150.0;
  double major_jitter_max_us = 520.0;
};

struct FpgaParams {
  double clock_mhz = 100.0;  ///< IP/OCRAM/control clock
  double cycle_ns() const { return 1e3 / clock_mhz; }
  /// Control IP handshake: trigger synchronizer + FSM transitions (cycles).
  std::size_t control_latency_cycles = 4;
};

/// Recovery policy for a wedged NN IP. An SEU or a clock-domain-crossing
/// glitch can leave the accelerator busy forever; the HPS application arms a
/// timer around every trigger and, on expiry, resets the IP and retries. If
/// the retry also times out, the frame falls back to float inference on the
/// ARM core so the 3 ms decision still goes out (degraded, and flagged so).
struct WatchdogParams {
  /// HPS-side timeout from frame start to completion (us). The default sits
  /// well above the worst observed U-Net service time (~1.9 ms) but leaves
  /// room inside the 3 ms budget for one reset + software fallback.
  /// <= 0 disables the watchdog (a hang then throws, as before).
  double timeout_us = 1500.0;
  /// Reset-and-retry attempts after the first timeout before giving up on
  /// the fabric for this frame.
  std::size_t max_retries = 1;
  /// Cost of an IP reset pulse + re-arm (us).
  double reset_us = 25.0;
};

struct SocParams {
  BridgeParams bridge;
  DmaParams dma;
  OsParams os;
  FpgaParams fpga;
  WatchdogParams watchdog;
  /// Hard real-time requirement: the BLM digitizer poll rate (ms).
  double deadline_ms = 3.0;
  /// Estimated CPU time of one float-model forward on the ARM core (us),
  /// charged to every frame the HPS float fallback serves — reconfiguration
  /// windows and watchdog-exhausted wedges — so their deadline verdicts are
  /// measured against a modelled cost instead of asserted by construction.
  /// The default sits inside the budget the watchdog policy reserves for a
  /// software fallback (timeout + reset + forward < deadline).
  double hps_float_forward_us = 1200.0;
  /// When false, the NN IP skips the functional (bit-accurate) execution
  /// and emits zeros — timing is data-independent, so long latency-
  /// distribution runs (Fig. 5c) use this to avoid redundant compute.
  bool functional_ip = true;
};

}  // namespace reads::soc
