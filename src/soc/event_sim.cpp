#include "soc/event_sim.hpp"

#include <stdexcept>
#include <utility>

namespace reads::soc {

void EventSim::schedule_at(SimTime t, Callback cb) {
  if (t < now_) throw std::logic_error("EventSim: scheduling into the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool EventSim::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move via const_cast is well-defined here
  // because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.cb();
  return true;
}

void EventSim::run() {
  while (step()) {
  }
}

void EventSim::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace reads::soc
