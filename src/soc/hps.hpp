// The Hard Processor System model: a Linux user-space control application
// on the ARM side that stages input frames into the FPGA input buffer over
// the HPS-to-FPGA bridge (uncached MMIO), triggers the control IP, sleeps
// until the completion interrupt, and reads results back — steps 1–8 of
// Fig. 2. Interrupt delivery and process wake-up go through the OS, whose
// scheduling noise is modelled by OsJitterModel (the source of the paper's
// latency tail in Fig. 5c).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "soc/control_ip.hpp"
#include "soc/event_sim.hpp"
#include "soc/ocram.hpp"
#include "soc/params.hpp"
#include "util/rng.hpp"

namespace reads::soc {

/// Samples the per-frame OS overhead (interrupt + wakeup + stray preemption).
class OsJitterModel {
 public:
  OsJitterModel(OsParams params, std::uint64_t seed);

  /// Nanoseconds of OS-side delay between IRQ assertion and the user-space
  /// application resuming with the data available.
  SimTime sample();

 private:
  OsParams params_;
  util::Xoshiro256 rng_;
};

struct TransferCounters {
  std::size_t bridge_writes = 0;  ///< 32-bit MMIO writes issued
  std::size_t bridge_reads = 0;   ///< 32-bit MMIO reads issued
};

/// Per-frame latency breakdown, all in microseconds (totals also in ms).
struct FrameTiming {
  double write_us = 0.0;     ///< step 1: stage inputs over the bridge
  double trigger_us = 0.0;   ///< step 2: CTRL write
  double ip_us = 0.0;        ///< steps 3–6: IP read + compute + write
  double irq_os_us = 0.0;    ///< step 7: IRQ delivery + OS wakeup
  double read_us = 0.0;      ///< step 8: read outputs over the bridge
  double queue_us = 0.0;     ///< step 0: wait for the previous frame (stream)
  double total_ms = 0.0;     ///< service time, steps 1–8 only
  double latency_ms = 0.0;   ///< end-to-end: queueing wait + service time
  /// Deadline verdict against end-to-end latency_ms — the same quantity
  /// stream-level miss counts use, so the two always agree.
  bool deadline_met = false;
};

class Hps {
 public:
  Hps(EventSim& sim, OnChipRam& input, OnChipRam& output, ControlIp& control,
      BridgeParams bridge, OsParams os, std::uint64_t seed,
      WatchdogParams watchdog = {});

  /// Launch the steps 1..8 sequence for one frame of input words (16-bit
  /// raw fixed-point). `on_complete` fires when the outputs have landed
  /// back in "SDRAM" (the provided vector).
  void process_frame(std::vector<std::int16_t> input_words,
                     std::size_t output_words,
                     std::function<void(std::vector<std::int16_t>, FrameTiming)>
                         on_complete);

  /// IRQ line from the control IP.
  void irq();

  /// Watchdog path: drop the in-flight frame without completing it. The
  /// completion callback is discarded (the caller owns recovery), and the
  /// HPS is immediately ready for the retry's process_frame.
  void abort_frame() noexcept;

  bool busy() const noexcept { return busy_; }
  const TransferCounters& counters() const noexcept { return counters_; }

 private:
  void schedule_poll();
  void poll_status();
  void begin_readback();

  EventSim& sim_;
  OnChipRam& input_;
  OnChipRam& output_;
  ControlIp& control_;
  BridgeParams bridge_;
  OsParams os_;
  WatchdogParams watchdog_;
  OsJitterModel jitter_;
  TransferCounters counters_;

  // in-flight frame state
  bool busy_ = false;
  std::vector<std::int16_t> pending_input_;
  std::size_t pending_output_words_ = 0;
  std::function<void(std::vector<std::int16_t>, FrameTiming)> on_complete_;
  FrameTiming timing_;
  SimTime frame_start_ = 0;
  SimTime ip_start_ = 0;
};

}  // namespace reads::soc
