#include "soc/nn_ip.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace reads::soc {

NnIpCore::NnIpCore(EventSim& sim, const hls::QuantizedModel& model,
                   OnChipRam& input, OnChipRam& output, ControlIp& control,
                   FpgaParams fpga, hls::LatencyModelParams latency_params,
                   bool functional)
    : sim_(sim),
      model_(&model),
      input_(input),
      output_(output),
      control_(control),
      fpga_(fpga),
      latency_params_(latency_params),
      latency_(validate_and_estimate(model)),
      functional_(functional) {
  run_cycles_ = latency_.total_cycles;
}

hls::LatencyReport NnIpCore::validate_and_estimate(
    const hls::QuantizedModel& model) const {
  const auto& fw = model.firmware();
  if (input_.size() < fw.input_values) {
    throw std::invalid_argument("NnIpCore: input buffer too small");
  }
  if (output_.size() < fw.output_values) {
    throw std::invalid_argument("NnIpCore: output buffer too small");
  }
  if (fw.input_spec.width > 16 || fw.output_spec.width > 16) {
    throw std::invalid_argument(
        "NnIpCore: the memory-mapped interface carries 16-bit words; "
        "deploy a <=16-bit firmware (wider precisions are analysis-only)");
  }
  return hls::LatencyModel(latency_params_).estimate(fw);
}

void NnIpCore::rebind(const hls::QuantizedModel& model) {
  if (busy_) {
    throw std::logic_error("NnIpCore: rebind while a run is in flight");
  }
  auto latency = validate_and_estimate(model);
  model_ = &model;
  latency_ = std::move(latency);
  run_cycles_ = latency_.total_cycles;
}

void NnIpCore::trigger() {
  if (busy_) throw std::logic_error("NnIpCore: trigger while busy");
  busy_ = true;
  ++runs_;
  if (hang_hook_ && hang_hook_(runs_)) {
    // Wedged: the FSM is stuck busy and the done pulse never comes. Only a
    // watchdog reset gets the core back.
    ++hangs_;
    return;
  }
  const auto duration = static_cast<SimTime>(std::llround(
      static_cast<double>(run_cycles_) * fpga_.cycle_ns()));
  const std::uint64_t epoch = epoch_;
  sim_.schedule_in(duration, [this, epoch] {
    if (epoch == epoch_) finish();
  });
}

void NnIpCore::reset() noexcept {
  ++epoch_;
  ++resets_;
  busy_ = false;
}

void NnIpCore::finish() {
  // Functional execution happens at completion time: read the input buffer
  // words the HPS staged, run the integer pipeline, stage the outputs.
  const auto& fw = model_->firmware();
  if (functional_) {
    std::vector<std::int64_t> in_raw(fw.input_values);
    for (std::size_t i = 0; i < fw.input_values; ++i) {
      in_raw[i] = input_.read16(i);
    }
    const auto out_raw = model_->forward_raw(in_raw);
    for (std::size_t i = 0; i < out_raw.size(); ++i) {
      output_.write16(i, static_cast<std::int16_t>(out_raw[i]));
    }
  } else {
    for (std::size_t i = 0; i < fw.output_values; ++i) output_.write16(i, 0);
  }
  busy_ = false;
  control_.ip_done();
}

}  // namespace reads::soc
