// Dual-port on-chip RAM: a 32-bit port toward the HPS bridge and a 16-bit
// port toward the NN IP, exactly the paper's buffer arrangement. Stores
// 16-bit raw fixed-point words; access counters feed the tests and the
// performance-counter readout.
#pragma once

#include <cstdint>
#include <vector>

namespace reads::soc {

class OnChipRam {
 public:
  explicit OnChipRam(std::size_t words16);

  std::size_t size() const noexcept { return mem_.size(); }

  /// 16-bit IP-side port.
  std::int16_t read16(std::size_t addr) const;
  void write16(std::size_t addr, std::int16_t value);

  /// 32-bit HPS-side port: two consecutive 16-bit words, little-endian
  /// (word at the lower address in the low half).
  std::uint32_t read32(std::size_t word32_addr) const;
  void write32(std::size_t word32_addr, std::uint32_t value);

  std::size_t reads16() const noexcept { return reads16_; }
  std::size_t writes16() const noexcept { return writes16_; }
  std::size_t reads32() const noexcept { return reads32_; }
  std::size_t writes32() const noexcept { return writes32_; }
  void reset_counters() noexcept;

 private:
  std::vector<std::int16_t> mem_;
  mutable std::size_t reads16_ = 0;
  std::size_t writes16_ = 0;
  mutable std::size_t reads32_ = 0;
  std::size_t writes32_ = 0;
};

}  // namespace reads::soc
