// The NN IP core as deployed on the FPGA fabric: on a start pulse it
// actively reads the input buffer through its 16-bit memory-mapped host
// port, runs the quantized network, writes the output buffer, and pulses
// done. Functionally it executes the bit-accurate QuantizedModel; its
// timing comes from the hls::LatencyModel estimate.
#pragma once

#include <cstdint>
#include <functional>

#include "hls/latency.hpp"
#include "hls/qmodel.hpp"
#include "soc/control_ip.hpp"
#include "soc/event_sim.hpp"
#include "soc/ocram.hpp"
#include "soc/params.hpp"

namespace reads::soc {

class NnIpCore {
 public:
  NnIpCore(EventSim& sim, const hls::QuantizedModel& model, OnChipRam& input,
           OnChipRam& output, ControlIp& control, FpgaParams fpga,
           hls::LatencyModelParams latency_params = {},
           bool functional = true);

  /// Fault hook: consulted on every trigger with the 1-based run index.
  /// Returning true wedges this run — the IP goes busy and never pulses
  /// done, exactly like a radiation-upset FSM. Used only by the fault
  /// harness; absent, the trigger path is unchanged.
  using HangHook = std::function<bool(std::uint64_t run)>;
  void set_hang_hook(HangHook hook) { hang_hook_ = std::move(hook); }

  /// Start pulse from the control IP.
  void trigger();

  /// Hardware reset from the HPS watchdog: drop any in-flight run (a
  /// completion scheduled before the reset is disarmed by the epoch guard)
  /// and return to idle, ready for a fresh trigger.
  void reset() noexcept;

  /// Partial reconfiguration landed: point the core at new firmware and
  /// re-derive its cycle budget from the new layer plan. The caller (the
  /// system's reconfiguration window) guarantees the core is idle — the
  /// fabric region cannot be reprogrammed mid-run — and that the new
  /// firmware has the same I/O geometry as the buffers wired to the core.
  /// Throws std::logic_error if busy, std::invalid_argument on a geometry
  /// or word-width mismatch.
  void rebind(const hls::QuantizedModel& model);

  /// Cycle budget of one run (read + compute + write), at the FPGA clock.
  std::size_t run_cycles() const noexcept { return run_cycles_; }
  const hls::LatencyReport& latency_report() const noexcept { return latency_; }
  std::uint64_t runs() const noexcept { return runs_; }
  std::uint64_t hangs() const noexcept { return hangs_; }
  std::uint64_t resets() const noexcept { return resets_; }

 private:
  void finish();

  /// Validate geometry/width and compute the latency report for `model`
  /// (shared by the constructor and rebind()).
  hls::LatencyReport validate_and_estimate(
      const hls::QuantizedModel& model) const;

  EventSim& sim_;
  const hls::QuantizedModel* model_;
  OnChipRam& input_;
  OnChipRam& output_;
  ControlIp& control_;
  FpgaParams fpga_;
  hls::LatencyModelParams latency_params_;
  hls::LatencyReport latency_;
  std::size_t run_cycles_ = 0;
  std::uint64_t runs_ = 0;
  std::uint64_t hangs_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped on reset; stale completions no-op
  bool busy_ = false;
  bool functional_ = true;
  HangHook hang_hook_;
};

}  // namespace reads::soc
