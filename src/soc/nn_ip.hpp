// The NN IP core as deployed on the FPGA fabric: on a start pulse it
// actively reads the input buffer through its 16-bit memory-mapped host
// port, runs the quantized network, writes the output buffer, and pulses
// done. Functionally it executes the bit-accurate QuantizedModel; its
// timing comes from the hls::LatencyModel estimate.
#pragma once

#include <cstdint>

#include "hls/latency.hpp"
#include "hls/qmodel.hpp"
#include "soc/control_ip.hpp"
#include "soc/event_sim.hpp"
#include "soc/ocram.hpp"
#include "soc/params.hpp"

namespace reads::soc {

class NnIpCore {
 public:
  NnIpCore(EventSim& sim, const hls::QuantizedModel& model, OnChipRam& input,
           OnChipRam& output, ControlIp& control, FpgaParams fpga,
           hls::LatencyModelParams latency_params = {},
           bool functional = true);

  /// Start pulse from the control IP.
  void trigger();

  /// Cycle budget of one run (read + compute + write), at the FPGA clock.
  std::size_t run_cycles() const noexcept { return run_cycles_; }
  const hls::LatencyReport& latency_report() const noexcept { return latency_; }
  std::uint64_t runs() const noexcept { return runs_; }

 private:
  void finish();

  EventSim& sim_;
  const hls::QuantizedModel& model_;
  OnChipRam& input_;
  OnChipRam& output_;
  ControlIp& control_;
  FpgaParams fpga_;
  hls::LatencyReport latency_;
  std::size_t run_cycles_ = 0;
  std::uint64_t runs_ = 0;
  bool busy_ = false;
  bool functional_ = true;
};

}  // namespace reads::soc
