#include "soc/ocram.hpp"

#include <stdexcept>

namespace reads::soc {

OnChipRam::OnChipRam(std::size_t words16) : mem_(words16, 0) {
  if (words16 == 0) throw std::invalid_argument("OnChipRam: zero size");
}

std::int16_t OnChipRam::read16(std::size_t addr) const {
  if (addr >= mem_.size()) throw std::out_of_range("OnChipRam::read16");
  ++reads16_;
  return mem_[addr];
}

void OnChipRam::write16(std::size_t addr, std::int16_t value) {
  if (addr >= mem_.size()) throw std::out_of_range("OnChipRam::write16");
  ++writes16_;
  mem_[addr] = value;
}

std::uint32_t OnChipRam::read32(std::size_t word32_addr) const {
  const std::size_t base = word32_addr * 2;
  if (base + 1 >= mem_.size() + 1 || base >= mem_.size()) {
    throw std::out_of_range("OnChipRam::read32");
  }
  ++reads32_;
  const auto lo = static_cast<std::uint16_t>(mem_[base]);
  const std::uint16_t hi =
      base + 1 < mem_.size() ? static_cast<std::uint16_t>(mem_[base + 1]) : 0;
  return static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
}

void OnChipRam::write32(std::size_t word32_addr, std::uint32_t value) {
  const std::size_t base = word32_addr * 2;
  if (base >= mem_.size()) throw std::out_of_range("OnChipRam::write32");
  ++writes32_;
  mem_[base] = static_cast<std::int16_t>(static_cast<std::uint16_t>(value & 0xFFFF));
  if (base + 1 < mem_.size()) {
    mem_[base + 1] =
        static_cast<std::int16_t>(static_cast<std::uint16_t>(value >> 16));
  }
}

void OnChipRam::reset_counters() noexcept {
  reads16_ = writes16_ = reads32_ = writes32_ = 0;
}

}  // namespace reads::soc
