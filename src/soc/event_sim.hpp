// Minimal discrete-event simulation core. Time is in nanoseconds; events at
// equal timestamps execute in scheduling order (deterministic).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace reads::soc {

using SimTime = std::uint64_t;  ///< nanoseconds

class EventSim {
 public:
  using Callback = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  void schedule_at(SimTime t, Callback cb);
  void schedule_in(SimTime delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Execute the earliest event; returns false when the queue is empty.
  bool step();
  /// Run until no events remain.
  void run();
  /// Run until the given time (events at exactly `t` are executed).
  void run_until(SimTime t);

  std::size_t events_processed() const noexcept { return processed_; }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace reads::soc
