#include "soc/control_ip.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::soc {

ControlIp::ControlIp(EventSim& sim, FpgaParams fpga) : sim_(sim), fpga_(fpga) {}

void ControlIp::connect(std::function<void()> start_ip,
                        std::function<void()> raise_irq) {
  start_ip_ = std::move(start_ip);
  raise_irq_ = std::move(raise_irq);
}

void ControlIp::write_reg(std::size_t reg, std::uint32_t value) {
  if (reg != kCtrl) {
    throw std::invalid_argument("ControlIp: only CTRL is writable");
  }
  if (value & 0x1u) {
    if (state_ == State::kRunning) {
      throw std::logic_error("ControlIp: trigger while busy");
    }
    state_ = State::kRunning;
    run_start_ = sim_.now();
    ++runs_;
    // Trigger crosses a synchronizer and the FSM before the IP sees it.
    const auto delay = static_cast<SimTime>(
        std::llround(static_cast<double>(fpga_.control_latency_cycles) *
                     fpga_.cycle_ns()));
    sim_.schedule_in(delay, [this] {
      if (start_ip_) start_ip_();
    });
  }
  if (value & 0x2u) {
    if (state_ == State::kDone) state_ = State::kIdle;
  }
}

std::uint32_t ControlIp::read_reg(std::size_t reg) const {
  switch (reg) {
    case kCtrl:
      return 0;
    case kStatus:
      return (state_ == State::kRunning ? 0x1u : 0x0u) |
             (state_ == State::kDone ? 0x2u : 0x0u);
    case kPerfCounter:
      return perf_counter_;
    default:
      throw std::invalid_argument("ControlIp: bad register");
  }
}

void ControlIp::ip_done() {
  if (state_ != State::kRunning) {
    throw std::logic_error("ControlIp: done pulse while not running");
  }
  state_ = State::kDone;
  perf_counter_ = static_cast<std::uint32_t>(
      static_cast<double>(sim_.now() - run_start_) / fpga_.cycle_ns());
  // Interrupt line asserts one cycle later.
  sim_.schedule_in(static_cast<SimTime>(std::llround(fpga_.cycle_ns())),
                   [this] {
                     if (raise_irq_) raise_irq_();
                   });
}

}  // namespace reads::soc
