// The dedicated HDL control IP of Fig. 2: a small register-mapped FSM that
// arms the NN IP on a trigger write, tracks busy/done, counts run cycles
// with a performance counter, and raises the interrupt line toward the HPS.
#pragma once

#include <cstdint>
#include <functional>

#include "soc/event_sim.hpp"
#include "soc/params.hpp"

namespace reads::soc {

class ControlIp {
 public:
  enum Reg : std::size_t {
    kCtrl = 0,    ///< write 1 to start; write 2 to clear done
    kStatus = 1,  ///< bit0 busy, bit1 done
    kPerfCounter = 2,  ///< FPGA cycles of the last IP run
  };

  enum class State { kIdle, kRunning, kDone };

  ControlIp(EventSim& sim, FpgaParams fpga);

  /// Wire the outputs: start pulse to the NN IP, interrupt to the HPS.
  void connect(std::function<void()> start_ip, std::function<void()> raise_irq);

  /// Register interface (HPS side, via the bridge).
  void write_reg(std::size_t reg, std::uint32_t value);
  std::uint32_t read_reg(std::size_t reg) const;

  /// Signal from the NN IP that it finished writing the output buffer.
  void ip_done();

  /// Watchdog reset: return the FSM to idle regardless of state. Pending
  /// done pulses from before the reset are the NN IP's problem (its epoch
  /// guard drops them), so no spurious ip_done can follow.
  void reset() noexcept { state_ = State::kIdle; }

  State state() const noexcept { return state_; }
  std::uint64_t runs() const noexcept { return runs_; }

 private:
  EventSim& sim_;
  FpgaParams fpga_;
  std::function<void()> start_ip_;
  std::function<void()> raise_irq_;
  State state_ = State::kIdle;
  SimTime run_start_ = 0;
  std::uint32_t perf_counter_ = 0;
  std::uint64_t runs_ = 0;
};

}  // namespace reads::soc
