#include "soc/hps.hpp"

#include <cmath>
#include <stdexcept>

namespace reads::soc {

OsJitterModel::OsJitterModel(OsParams params, std::uint64_t seed)
    : params_(params), rng_(util::derive_seed(seed, /*purpose=*/0x05)) {}

SimTime OsJitterModel::sample() {
  // Base IRQ + wakeup path with mild lognormal spread.
  double us = params_.irq_base_us *
              std::exp(params_.irq_sigma * rng_.normal());
  if (rng_.bernoulli(params_.minor_jitter_p)) {
    us += rng_.exponential(1.0 / params_.minor_jitter_mean_us);
  }
  if (rng_.bernoulli(params_.major_jitter_p)) {
    us += rng_.uniform(params_.major_jitter_min_us, params_.major_jitter_max_us);
  }
  return static_cast<SimTime>(std::llround(us * 1e3));
}

Hps::Hps(EventSim& sim, OnChipRam& input, OnChipRam& output,
         ControlIp& control, BridgeParams bridge, OsParams os,
         std::uint64_t seed, WatchdogParams watchdog)
    : sim_(sim),
      input_(input),
      output_(output),
      control_(control),
      bridge_(bridge),
      os_(os),
      watchdog_(watchdog),
      jitter_(os, seed) {}

void Hps::process_frame(
    std::vector<std::int16_t> input_words, std::size_t output_words,
    std::function<void(std::vector<std::int16_t>, FrameTiming)> on_complete) {
  if (busy_) throw std::logic_error("Hps: frame already in flight");
  busy_ = true;
  pending_input_ = std::move(input_words);
  pending_output_words_ = output_words;
  on_complete_ = std::move(on_complete);
  timing_ = FrameTiming{};
  frame_start_ = sim_.now();

  // Step 1: write the input words through the bridge, two 16-bit values per
  // 32-bit MMIO word. Modelled as one bulk phase whose duration is the sum
  // of per-word posted-write costs.
  const std::size_t words32 =
      (pending_input_.size() + bridge_.values_per_word - 1) /
      bridge_.values_per_word;
  const auto write_phase = static_cast<SimTime>(
      std::llround(static_cast<double>(words32) * bridge_.write_ns));
  counters_.bridge_writes += words32;

  sim_.schedule_in(write_phase, [this] {
    // Perform the actual stores now (timing already accounted).
    for (std::size_t i = 0; i < pending_input_.size(); ++i) {
      input_.write16(i, pending_input_[i]);
    }
    timing_.write_us =
        static_cast<double>(sim_.now() - frame_start_) / 1e3;

    // Step 2: trigger the control IP (one more MMIO write).
    const auto trig = static_cast<SimTime>(std::llround(bridge_.write_ns));
    counters_.bridge_writes += 1;
    sim_.schedule_in(trig, [this] {
      timing_.trigger_us =
          static_cast<double>(sim_.now() - frame_start_) / 1e3 -
          timing_.write_us;
      ip_start_ = sim_.now();
      control_.write_reg(ControlIp::kCtrl, 0x1);
      // Steps 3-6 run on the fabric; we resume in irq() or via polling.
      if (os_.notify == NotifyMode::kPolling) {
        schedule_poll();
      }
    });
  });
}

void Hps::schedule_poll() {
  const auto period = static_cast<SimTime>(
      std::llround(os_.poll_interval_us * 1e3 + bridge_.read_ns));
  sim_.schedule_in(period, [this] { poll_status(); });
}

void Hps::poll_status() {
  if (!busy_) return;  // frame already finished (defensive)
  counters_.bridge_reads += 1;
  const bool done = (control_.read_reg(ControlIp::kStatus) & 0x2u) != 0;
  if (!done) {
    // Watchdog give-up: if the IP has been silent past the timeout, stop
    // polling so the event loop can drain and the caller's recovery runs.
    // Without this bound a wedged IP would spin the poll loop forever —
    // the simulation's equivalent of a hung CPU.
    if (watchdog_.timeout_us > 0.0 &&
        static_cast<double>(sim_.now() - ip_start_) / 1e3 >=
            watchdog_.timeout_us) {
      return;
    }
    schedule_poll();
    return;
  }
  // Detection time includes the poll quantization; there is no kernel in
  // the path, so the "irq+OS" contribution is only the final status read.
  timing_.ip_us = static_cast<double>(sim_.now() - ip_start_) / 1e3;
  timing_.irq_os_us = bridge_.read_ns / 1e3;
  begin_readback();
}

void Hps::abort_frame() noexcept {
  busy_ = false;
  pending_input_.clear();
  pending_output_words_ = 0;
  on_complete_ = nullptr;
  timing_ = FrameTiming{};
}

void Hps::irq() {
  if (!busy_) throw std::logic_error("Hps: spurious interrupt");
  if (os_.notify == NotifyMode::kPolling) {
    return;  // line is masked; completion is detected by the poll loop
  }
  timing_.ip_us = static_cast<double>(sim_.now() - ip_start_) / 1e3;

  // Step 7: interrupt delivery and user-space wakeup through the OS.
  const SimTime os_delay = jitter_.sample();
  sim_.schedule_in(os_delay, [this] {
    timing_.irq_os_us = static_cast<double>(sim_.now() - ip_start_) / 1e3 -
                        timing_.ip_us;
    begin_readback();
  });
}

void Hps::begin_readback() {
  // Step 8: read the outputs back (non-posted MMIO reads).
  const std::size_t words32 =
      (pending_output_words_ + bridge_.values_per_word - 1) /
      bridge_.values_per_word;
  const auto read_phase = static_cast<SimTime>(
      std::llround(static_cast<double>(words32) * bridge_.read_ns));
  counters_.bridge_reads += words32;

  sim_.schedule_in(read_phase, [this] {
    std::vector<std::int16_t> out(pending_output_words_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = output_.read16(i);
    timing_.read_us = static_cast<double>(sim_.now()) / 1e3 -
                      static_cast<double>(frame_start_) / 1e3 -
                      timing_.write_us - timing_.trigger_us - timing_.ip_us -
                      timing_.irq_os_us;
    timing_.total_ms = static_cast<double>(sim_.now() - frame_start_) / 1e6;
    // Clear the done latch for the next frame.
    control_.write_reg(ControlIp::kCtrl, 0x2);
    counters_.bridge_writes += 1;
    busy_ = false;
    auto cb = std::move(on_complete_);
    if (cb) cb(std::move(out), timing_);
  });
}

}  // namespace reads::soc
