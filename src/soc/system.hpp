// ArriaSocSystem: the complete central node of Fig. 2 — input/output
// on-chip RAMs, control IP, NN IP core, and the HPS application — wired on
// one event simulation. This is the object the benches drive to reproduce
// the paper's end-to-end latency numbers (Table I, Fig. 3, Fig. 5c) and the
// 320 fps / 3 ms deployment requirement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hls/qmodel.hpp"
#include "soc/control_ip.hpp"
#include "soc/event_sim.hpp"
#include "soc/hps.hpp"
#include "soc/nn_ip.hpp"
#include "soc/ocram.hpp"
#include "soc/params.hpp"
#include "tensor/tensor.hpp"

namespace reads::soc {

using tensor::Tensor;

struct FrameResult {
  Tensor output;       ///< dequantized (monitors, 2) probabilities
  FrameTiming timing;
  /// Watchdog expiries while serving this frame (0 on the clean path; a
  /// successful reset-and-retry still reports its timeouts here, with the
  /// recovery time folded into timing).
  std::size_t watchdog_timeouts = 0;
  /// True when every fabric attempt wedged and no IP output exists for this
  /// frame (`output` is empty). The caller must compute the frame on the
  /// HPS instead — the system cannot, because float fallback lives a layer
  /// up where the float model is held.
  bool ip_fallback = false;
  /// True when the frame arrived inside a partial-reconfiguration window:
  /// the fabric region holding the NN IP is being reprogrammed, so
  /// `ip_fallback` is also set (the HPS float model must serve the tick).
  /// Distinguishes planned firmware swaps from watchdog-exhausted wedges.
  bool reconfiguring = false;
};

struct StreamReport {
  std::size_t frames = 0;
  /// Latency statistics are end-to-end (arrival to output-in-SDRAM,
  /// including queueing behind the previous frame).
  double mean_latency_ms = 0.0;
  double min_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Frames whose end-to-end latency exceeded the deadline; by construction
  /// equals the number of per-frame timings with deadline_met == false.
  std::size_t deadline_misses = 0;
  /// Sustainable back-to-back rate from service (busy) time alone — what the
  /// node could do if frames were always waiting.
  double capacity_fps = 0.0;
  /// Rate actually delivered over the stream's wall-clock span (arrival of
  /// the first frame to completion of the last); <= max(capacity, offered).
  double observed_fps = 0.0;
  /// Per-frame breakdowns, in arrival order (queue_us/latency_ms filled in).
  std::vector<FrameTiming> timings;
};

class ArriaSocSystem {
 public:
  ArriaSocSystem(const hls::QuantizedModel& model, SocParams params,
                 std::uint64_t seed,
                 hls::LatencyModelParams latency_params = {});

  /// Process one standardized frame end-to-end (steps 1–8); blocking.
  FrameResult process(const Tensor& frame);

  /// Stream frames arriving at `fps`; a frame whose predecessor is still in
  /// flight queues (the HPS application is single-threaded). Latency is
  /// measured from arrival to output-in-SDRAM.
  StreamReport run_stream(std::span<const Tensor> frames, double fps);

  /// Begin an FPGA partial reconfiguration of the NN IP region: for the
  /// next `window_frames` calls to process(), the IP is offline and every
  /// frame returns `ip_fallback = reconfiguring = true` (the HPS float
  /// fallback a layer up serves those ticks, so the decision loop never
  /// skips one). The window models the milliseconds the PR bitstream takes
  /// to stream into the fabric, expressed in decision ticks by the caller.
  /// A window of 0 makes the next install_firmware() immediate.
  void begin_reconfigure(std::size_t window_frames);

  /// Frames left in the current reconfiguration window (0 = IP online).
  bool reconfiguring() const noexcept { return reconfig_remaining_ > 0; }

  /// Complete a reconfiguration: rebind the NN IP to `model`. Must only be
  /// called with the window drained (reconfiguring() == false) and no frame
  /// in flight; the new firmware must match the installed buffer geometry.
  /// `model` must outlive the system, exactly like the constructor model.
  void install_firmware(const hls::QuantizedModel& model);

  /// Install a fault hook on the NN IP (see NnIpCore::HangHook).
  void set_ip_hang_hook(NnIpCore::HangHook hook) {
    ip_.set_hang_hook(std::move(hook));
  }

  std::uint64_t watchdog_timeouts() const noexcept { return watchdog_timeouts_; }
  std::uint64_t ip_resets() const noexcept { return ip_.resets(); }
  std::uint64_t fallback_frames() const noexcept { return fallback_frames_; }
  /// Frames served by HPS fallback because they landed inside a
  /// reconfiguration window (a subset of history, not of fallback_frames()).
  std::uint64_t reconfig_fallback_frames() const noexcept {
    return reconfig_fallback_frames_;
  }
  /// Number of completed install_firmware() swaps.
  std::uint64_t firmware_swaps() const noexcept { return firmware_swaps_; }

  const SocParams& params() const noexcept { return params_; }
  const NnIpCore& ip() const noexcept { return ip_; }
  const ControlIp& control() const noexcept { return control_; }
  const TransferCounters& transfer_counters() const noexcept {
    return hps_.counters();
  }
  const OnChipRam& input_ram() const noexcept { return input_ram_; }
  const OnChipRam& output_ram() const noexcept { return output_ram_; }

 private:
  const hls::QuantizedModel* model_;
  SocParams params_;
  EventSim sim_;
  OnChipRam input_ram_;
  OnChipRam output_ram_;
  ControlIp control_;
  NnIpCore ip_;
  Hps hps_;
  std::uint64_t watchdog_timeouts_ = 0;
  std::uint64_t fallback_frames_ = 0;
  std::size_t reconfig_remaining_ = 0;
  std::uint64_t reconfig_fallback_frames_ = 0;
  std::uint64_t firmware_swaps_ = 0;
};

/// Transfer-interface ablation (Table I discussion): time to move a frame's
/// input+output words by per-word MMIO through the bridge vs. a DMA engine
/// with setup and completion-interrupt costs.
struct TransferEstimate {
  double mmio_us = 0.0;
  double dma_us = 0.0;
};
TransferEstimate compare_transfer(std::size_t input_values,
                                  std::size_t output_values,
                                  const SocParams& params);

}  // namespace reads::soc
