#include "soc/system.hpp"

#include <algorithm>
#include <stdexcept>

namespace reads::soc {

ArriaSocSystem::ArriaSocSystem(const hls::QuantizedModel& model,
                               SocParams params, std::uint64_t seed,
                               hls::LatencyModelParams latency_params)
    : model_(&model),
      params_(params),
      input_ram_(model.firmware().input_values),
      output_ram_(model.firmware().output_values),
      control_(sim_, params.fpga),
      ip_(sim_, model, input_ram_, output_ram_, control_, params.fpga,
          latency_params, params.functional_ip),
      hps_(sim_, input_ram_, output_ram_, control_, params.bridge, params.os,
           seed, params.watchdog) {
  control_.connect([this] { ip_.trigger(); }, [this] { hps_.irq(); });
}

void ArriaSocSystem::begin_reconfigure(std::size_t window_frames) {
  reconfig_remaining_ = window_frames;
}

void ArriaSocSystem::install_firmware(const hls::QuantizedModel& model) {
  if (reconfig_remaining_ > 0) {
    throw std::logic_error(
        "ArriaSocSystem: install_firmware inside the reconfiguration window");
  }
  if (model.firmware().input_values != model_->firmware().input_values ||
      model.firmware().output_values != model_->firmware().output_values) {
    throw std::invalid_argument(
        "ArriaSocSystem: new firmware's I/O geometry does not match the "
        "installed on-chip buffers");
  }
  ip_.rebind(model);
  model_ = &model;
  ++firmware_swaps_;
}

FrameResult ArriaSocSystem::process(const Tensor& frame) {
  if (reconfig_remaining_ > 0) {
    // The PR bitstream is still streaming into the fabric: the IP region is
    // dark, so the frame is handed straight back for HPS float fallback.
    // No bridge traffic happens (there is nothing to write into); the
    // frame's cost is the configured estimate of the float forward on the
    // ARM core, and its deadline verdict is judged against that — a window
    // tick is only "on time" because the fallback actually fits the budget,
    // not by construction.
    --reconfig_remaining_;
    ++reconfig_fallback_frames_;
    FrameResult result;
    result.ip_fallback = true;
    result.reconfiguring = true;
    result.timing = FrameTiming{};
    result.timing.ip_us = params_.hps_float_forward_us;
    result.timing.total_ms = params_.hps_float_forward_us / 1e3;
    result.timing.queue_us = 0.0;
    result.timing.latency_ms = result.timing.total_ms;
    result.timing.deadline_met =
        result.timing.latency_ms <= params_.deadline_ms;
    return result;
  }
  const auto raw = model_->quantize_input(frame);
  std::vector<std::int16_t> words;
  words.reserve(raw.size());
  for (auto v : raw) words.push_back(static_cast<std::int16_t>(v));

  // Watchdog protocol around the fabric: a hang is detected when the event
  // queue drains with the completion callback never fired (in hardware, the
  // HPS timer expiring). Each expiry costs the full timeout plus a reset
  // pulse — the dominant terms on the real platform, where the write/trigger
  // microseconds of the doomed attempt are noise — and is folded into ip_us
  // so the per-frame breakdown identity (total == sum of phases) survives
  // recovery.
  const WatchdogParams& wd = params_.watchdog;
  const bool wd_enabled = wd.timeout_us > 0.0;
  const std::size_t attempts = 1 + (wd_enabled ? wd.max_retries : 0);
  FrameResult result;
  double penalty_us = 0.0;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    bool done = false;
    hps_.process_frame(words, model_->firmware().output_values,
                       [&](std::vector<std::int16_t> out, FrameTiming timing) {
                         std::vector<std::int64_t> out_raw(out.begin(),
                                                           out.end());
                         result.output = model_->dequantize_output(out_raw);
                         result.timing = timing;
                         done = true;
                       });
    sim_.run();
    if (done) {
      result.timing.ip_us += penalty_us;
      result.timing.total_ms += penalty_us / 1e3;
      // A standalone frame has no queueing wait, so end-to-end latency is
      // the service time; the deadline is always judged against latency_ms.
      result.timing.queue_us = 0.0;
      result.timing.latency_ms = result.timing.total_ms;
      result.timing.deadline_met =
          result.timing.latency_ms <= params_.deadline_ms;
      return result;
    }
    if (!wd_enabled) {
      throw std::logic_error("ArriaSocSystem: frame did not complete");
    }
    ++watchdog_timeouts_;
    ++result.watchdog_timeouts;
    penalty_us += wd.timeout_us + wd.reset_us;
    hps_.abort_frame();
    ip_.reset();
    control_.reset();
  }

  // Every fabric attempt wedged. Hand the frame back for HPS-side fallback;
  // this frame costs the accumulated timeouts and resets plus the float
  // forward the ARM core must now run in their place.
  ++fallback_frames_;
  result.ip_fallback = true;
  result.output = Tensor{};
  result.timing = FrameTiming{};
  result.timing.ip_us = penalty_us + params_.hps_float_forward_us;
  result.timing.total_ms = result.timing.ip_us / 1e3;
  result.timing.queue_us = 0.0;
  result.timing.latency_ms = result.timing.total_ms;
  result.timing.deadline_met = result.timing.latency_ms <= params_.deadline_ms;
  return result;
}

StreamReport ArriaSocSystem::run_stream(std::span<const Tensor> frames,
                                        double fps) {
  if (fps <= 0.0) throw std::invalid_argument("run_stream: fps must be > 0");
  StreamReport report;
  report.frames = frames.size();
  if (frames.empty()) return report;

  const double period_ms = 1e3 / fps;
  double prev_done_ms = 0.0;
  double sum = 0.0;
  double busy_sum = 0.0;
  report.min_latency_ms = 1e30;
  report.timings.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const double arrival_ms = static_cast<double>(i) * period_ms;
    const auto res = process(frames[i]);
    const double start_ms = std::max(arrival_ms, prev_done_ms);
    const double done_ms = start_ms + res.timing.total_ms;
    prev_done_ms = done_ms;

    // Per-frame accounting on end-to-end latency: queueing wait behind the
    // previous frame plus service time. deadline_met and the stream-level
    // miss count use the same quantity, so they cannot disagree.
    FrameTiming timing = res.timing;
    timing.queue_us = (start_ms - arrival_ms) * 1e3;
    timing.latency_ms = (start_ms - arrival_ms) + timing.total_ms;
    timing.deadline_met = timing.latency_ms <= params_.deadline_ms;
    if (!timing.deadline_met) ++report.deadline_misses;

    sum += timing.latency_ms;
    busy_sum += timing.total_ms;
    report.min_latency_ms = std::min(report.min_latency_ms, timing.latency_ms);
    report.max_latency_ms = std::max(report.max_latency_ms, timing.latency_ms);
    report.timings.push_back(timing);
  }
  report.mean_latency_ms = sum / static_cast<double>(frames.size());
  // Capacity is what back-to-back service times sustain; observed is what
  // this stream actually delivered from first arrival to last completion.
  report.capacity_fps = 1e3 / (busy_sum / static_cast<double>(frames.size()));
  report.observed_fps =
      prev_done_ms > 0.0
          ? static_cast<double>(frames.size()) * 1e3 / prev_done_ms
          : 0.0;
  return report;
}

TransferEstimate compare_transfer(std::size_t input_values,
                                  std::size_t output_values,
                                  const SocParams& params) {
  TransferEstimate est;
  const auto& b = params.bridge;
  const std::size_t in32 =
      (input_values + b.values_per_word - 1) / b.values_per_word;
  const std::size_t out32 =
      (output_values + b.values_per_word - 1) / b.values_per_word;
  est.mmio_us = (static_cast<double>(in32) * b.write_ns +
                 static_cast<double>(out32) * b.read_ns) /
                1e3;
  const auto& d = params.dma;
  // Two DMA descriptors (in and out), each paying setup + completion IRQ;
  // payload streams at burst rate.
  est.dma_us = 2.0 * (d.setup_us + d.completion_irq_us) +
               (static_cast<double>(in32 + out32) * d.per_word_ns) / 1e3;
  return est;
}

}  // namespace reads::soc
