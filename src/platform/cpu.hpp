// Host-CPU baseline: wall-clock measurement of the float (Keras-equivalent)
// model, the "CPU" series of Fig. 3. Unlike the other platforms this is a
// real measurement, not a model — the repository's float inference engine
// plays the role of the paper's Keras-on-CPU run.
#pragma once

#include <cstddef>

#include "nn/model.hpp"

namespace reads::platform {

struct CpuLatency {
  double mean_ms_per_frame = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::size_t batch = 1;
  std::size_t reps = 0;
};

/// Time `reps` repetitions of a batch of `batch` sequential forwards.
/// The input is a representative frame (contents are irrelevant to timing).
CpuLatency measure_cpu(const nn::Model& model, const tensor::Tensor& input,
                       std::size_t reps = 20, std::size_t batch = 1);

}  // namespace reads::platform
