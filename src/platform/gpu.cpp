#include "platform/gpu.hpp"

#include "nn/layers/conv1d.hpp"
#include "nn/layers/dense.hpp"

namespace reads::platform {

std::size_t model_macs(const nn::Model& model) {
  std::size_t macs = 0;
  for (const auto& node : model.nodes()) {
    if (!node.layer) continue;
    const std::size_t positions = node.shape.at(0);
    if (const auto* d = dynamic_cast<const nn::Dense*>(node.layer.get())) {
      macs += positions * d->in_features() * d->out_features();
    } else if (const auto* c =
                   dynamic_cast<const nn::Conv1D*>(node.layer.get())) {
      macs += positions * c->kernel_size() * c->in_channels() * c->out_channels();
    }
  }
  return macs;
}

GpuLatency estimate_gpu(const nn::Model& model, std::size_t batch,
                        const GpuModelParams& p) {
  GpuLatency lat;
  lat.batch = batch;

  const auto layers = static_cast<double>(model.nodes().size() - 1);
  const auto b = static_cast<double>(batch);

  // One framework dispatch + launch sequence per batch (kernels operate on
  // the whole batch).
  lat.launch_ms =
      (p.framework_overhead_us + layers * p.launch_us_per_layer) / 1e3 / b;

  // Host<->device transfer of inputs and outputs for the batch.
  const double in_bytes =
      static_cast<double>(model.input_shape()[0] * model.input_shape()[1]) * 4.0;
  const double out_bytes =
      static_cast<double>(model.output_shape()[0] * model.output_shape()[1]) * 4.0;
  const double bytes = (in_bytes + out_bytes) * b;
  lat.transfer_ms =
      (p.pcie_base_us / 1e3 + bytes / (p.pcie_gbps * 1e9) * 1e3) / b;

  // Kernel time: compute-bound vs bandwidth-bound, whichever dominates.
  const double flops = 2.0 * static_cast<double>(model_macs(model)) * b;
  const double weight_bytes = static_cast<double>(model.param_count()) * 4.0;
  const double act_bytes = bytes * 8.0;  // intermediate traffic proxy
  const double compute_ms =
      flops / (p.peak_tflops * 1e12 * p.efficiency) * 1e3;
  const double mem_ms =
      (weight_bytes + act_bytes) / (p.mem_gbps * 1e9) * 1e3;
  lat.kernel_ms = std::max(compute_ms, mem_ms) / b;

  lat.mean_ms_per_frame = lat.launch_ms + lat.transfer_ms + lat.kernel_ms;
  return lat;
}

}  // namespace reads::platform
