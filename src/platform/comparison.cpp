#include "platform/comparison.hpp"

#include "platform/cpu.hpp"
#include "platform/gpu.hpp"
#include "util/stats.hpp"

namespace reads::platform {

std::vector<ComparisonRow> host_platform_rows(
    const std::string& model_name, const nn::Model& model,
    const tensor::Tensor& representative_input,
    const std::vector<std::size_t>& batches, std::size_t cpu_reps) {
  std::vector<ComparisonRow> rows;
  for (auto batch : batches) {
    const auto cpu = measure_cpu(model, representative_input, cpu_reps, batch);
    rows.push_back({model_name, "CPU (measured)", batch,
                    cpu.mean_ms_per_frame,
                    "host float inference, sequential frames"});
  }
  for (auto batch : batches) {
    const auto gpu = estimate_gpu(model, batch);
    rows.push_back({model_name, "GPU (modelled)", batch,
                    gpu.mean_ms_per_frame,
                    "launch+PCIe+roofline model"});
  }
  return rows;
}

ComparisonRow fpga_row(const std::string& model_name,
                       soc::ArriaSocSystem& system,
                       std::span<const tensor::Tensor> frames) {
  util::RunningStats stats;
  for (const auto& f : frames) {
    stats.add(system.process(f).timing.total_ms);
  }
  return {model_name, "FPGA SoC (simulated)", 1, stats.mean(),
          "steps 1-8 incl. bridge + OS"};
}

}  // namespace reads::platform
