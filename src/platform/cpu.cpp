#include "platform/cpu.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace reads::platform {

CpuLatency measure_cpu(const nn::Model& model, const tensor::Tensor& input,
                       std::size_t reps, std::size_t batch) {
  if (reps == 0 || batch == 0) {
    throw std::invalid_argument("measure_cpu: reps/batch must be positive");
  }
  using Clock = std::chrono::steady_clock;
  // Warm-up to populate caches / fault in pages.
  volatile float sink = model.forward(input)[0];

  CpuLatency result;
  result.batch = batch;
  result.reps = reps;
  result.min_ms = 1e30;
  double total = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (std::size_t b = 0; b < batch; ++b) {
      sink = model.forward(input)[0];
    }
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        static_cast<double>(batch);
    total += ms;
    result.min_ms = std::min(result.min_ms, ms);
    result.max_ms = std::max(result.max_ms, ms);
  }
  (void)sink;
  result.mean_ms_per_frame = total / static_cast<double>(reps);
  return result;
}

}  // namespace reads::platform
