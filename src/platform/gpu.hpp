// Analytical GPU latency model, the "GPU" series of Fig. 3.
//
// No GPU is available offline, so this substitutes a documented roofline-
// plus-overhead model: per-inference latency is kernel-launch overhead (one
// launch per layer, amortized over the batch) plus host<->device transfer
// plus the max of compute-bound and bandwidth-bound kernel time. The model
// captures exactly the behaviour the paper reports: at batch 1 the GPU is
// launch/transfer-bound and lands near the CPU; at large batch it amortizes
// to microseconds per frame.
#pragma once

#include <cstddef>

#include "nn/model.hpp"

namespace reads::platform {

struct GpuModelParams {
  /// Framework (Keras/TF session) overhead per predict() call; dominates at
  /// batch 1 and is what makes the paper's GPU "perform similarly to the
  /// CPU" for single frames.
  double framework_overhead_us = 2'000.0;
  double launch_us_per_layer = 6.5;  ///< CUDA kernel launch + sync overhead
  double pcie_base_us = 28.0;        ///< fixed transfer round-trip cost
  double pcie_gbps = 12.0;           ///< effective H2D+D2H bandwidth
  double peak_tflops = 9.0;          ///< FP32 throughput
  double mem_gbps = 450.0;           ///< device memory bandwidth
  /// Fraction of peak achievable on these small kernels.
  double efficiency = 0.25;
};

struct GpuLatency {
  double mean_ms_per_frame = 0.0;
  std::size_t batch = 1;
  double launch_ms = 0.0;
  double transfer_ms = 0.0;
  double kernel_ms = 0.0;
};

/// MACs for one forward pass of the model (counted from layer geometry).
std::size_t model_macs(const nn::Model& model);

GpuLatency estimate_gpu(const nn::Model& model, std::size_t batch,
                        const GpuModelParams& params = {});

}  // namespace reads::platform
