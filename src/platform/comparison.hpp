// The Fig. 3 harness: one row per (model, platform, batch).
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"
#include "soc/system.hpp"

namespace reads::platform {

struct ComparisonRow {
  std::string model;
  std::string platform;
  std::size_t batch = 1;
  double latency_ms = 0.0;   ///< per-frame
  std::string note;
};

/// CPU (measured) + GPU (modelled) rows for the given batch sizes.
std::vector<ComparisonRow> host_platform_rows(
    const std::string& model_name, const nn::Model& model,
    const tensor::Tensor& representative_input,
    const std::vector<std::size_t>& batches, std::size_t cpu_reps = 10);

/// FPGA row: mean end-to-end latency over `frames` simulated frames.
ComparisonRow fpga_row(const std::string& model_name,
                       soc::ArriaSocSystem& system,
                       std::span<const tensor::Tensor> frames);

}  // namespace reads::platform
