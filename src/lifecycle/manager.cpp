#include "lifecycle/manager.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace reads::lifecycle {

std::string_view to_string(LifecyclePhase phase) noexcept {
  switch (phase) {
    case LifecyclePhase::kStable: return "stable";
    case LifecyclePhase::kRequalifying: return "requalifying";
    case LifecyclePhase::kSwapping: return "swapping";
  }
  return "?";
}

LifecycleManager::LifecycleManager(core::DeblendingSystem& system,
                                   LifecycleConfig config, ModelFactory factory)
    : system_(system),
      cfg_(std::move(config)),
      factory_(std::move(factory)),
      registry_(cfg_.persist_dir),
      monitor_(cfg_.drift),
      requalifier_(cfg_.requalify, factory_) {
  if (!factory_) {
    throw std::invalid_argument("LifecycleManager: null model factory");
  }
  if (cfg_.fps <= 0.0) {
    throw std::invalid_argument("LifecycleManager: fps must be positive");
  }
  if (cfg_.recent_capacity < 8 || cfg_.min_frames > cfg_.recent_capacity) {
    throw std::invalid_argument(
        "LifecycleManager: need recent_capacity >= 8 and min_frames <= "
        "recent_capacity");
  }
  window_frames_ = static_cast<std::size_t>(
      std::ceil(cfg_.reconfig_window_ms * cfg_.fps / 1e3));

  // Version 1: the generation the system was built with. Qualified by
  // construction (it is the paper's deployed, verified firmware).
  QualificationReport initial;
  initial.passed = true;
  initial.reason = "initial deployment";
  registry_.publish(ModelArtifact(clone_model(system_.float_model()),
                                  system_.standardizer(),
                                  system_.quantized_ptr(), initial));
}

nn::Model LifecycleManager::clone_model(const nn::Model& src) const {
  nn::Model copy = factory_();
  nn::copy_weights(src, copy);
  return copy;
}

void LifecycleManager::maybe_submit() {
  if (requalifier_.busy() || recent_.size() < cfg_.min_frames) return;

  RequalifyRequest request;
  request.frames.assign(recent_.begin(), recent_.end());
  request.incumbent = registry_.current();
  request.seed =
      util::derive_seed(cfg_.seed, /*purpose=*/0x9E00 + submissions_);
  ++submissions_;
  request.mutate = std::move(next_mutator_);
  next_mutator_ = nullptr;

  const bool accepted = requalifier_.submit(
      std::move(request), [this](RequalifyResult result) {
        std::lock_guard lock(result_mutex_);
        pending_result_.emplace(std::move(result));
      });
  if (accepted) phase_ = LifecyclePhase::kRequalifying;
}

void LifecycleManager::consume_result() {
  std::optional<RequalifyResult> result;
  {
    std::lock_guard lock(result_mutex_);
    result = std::move(pending_result_);
    pending_result_.reset();
  }
  if (!result) return;

  if (!result->qualified) {
    // Gate failure: the candidate never reaches the registry or the
    // fabric. Stay triggered — the next tick resubmits on fresher frames.
    ++rejected_candidates_;
    ++cycle_rejected_;
    phase_ = LifecyclePhase::kStable;
    return;
  }

  auto published = registry_.publish(std::move(*result->artifact));
  swap_from_version_ = published->version - 1;
  system_.swap_model(clone_model(published->model), published->standardizer,
                     published->quantized, window_frames_);
  phase_ = LifecyclePhase::kSwapping;
}

core::Decision LifecycleManager::tick(const tensor::Tensor& raw_frame,
                                      const tensor::Tensor& target) {
  auto decision = system_.process(raw_frame);
  ++ticks_;
  if (decision.degraded) ++degraded_ticks_;
  if (decision.reconfiguring) ++reconfig_ticks_;

  // Swap-landing detection: process() installs a pending swap at the first
  // tick past the reconfiguration window.
  if (phase_ == LifecyclePhase::kSwapping && !system_.swap_pending()) {
    auto current = registry_.current();
    SwapRecord record;
    record.from_version = swap_from_version_;
    record.to_version = current->version;
    record.landed_tick = ticks_;
    record.trigger_tick = trigger_tick_;
    record.reconfig_ticks = window_frames_;
    record.rejected_candidates = cycle_rejected_;
    swaps_.push_back(record);
    cycle_rejected_ = 0;
    trigger_tick_ = 0;
    monitor_.rearm();
    phase_ = LifecyclePhase::kStable;
  }

  // Feed the monitor what the model saw; during a reconfiguration window
  // that is the incumbent standardizer's view, which is exactly what the
  // serving fallback used.
  monitor_.observe(system_.standardizer().transform(raw_frame),
                   decision.probabilities);

  recent_.push_back(blm::BlmFrame{raw_frame, target});
  while (recent_.size() > cfg_.recent_capacity) recent_.pop_front();

  if (phase_ == LifecyclePhase::kRequalifying) {
    consume_result();
  }
  if (phase_ == LifecyclePhase::kStable && monitor_.triggered()) {
    if (trigger_tick_ == 0) {
      // First tick of this cycle's latched trigger (resubmits after a
      // rejected candidate belong to the same cycle).
      trigger_tick_ = ticks_;
      ++triggers_;
    }
    maybe_submit();
  }

  return decision;
}

}  // namespace reads::lifecycle
