// LifecycleManager: the closed loop that keeps a deployed DeblendingSystem
// qualified as the machine drifts.
//
//   drift detected  ->  background requalification on recent frames
//                   ->  candidate gated (accuracy-vs-float + holdout MSE)
//                   ->  published to the registry (versioned, hashed)
//                   ->  hot-swapped: partial-reconfiguration window opens,
//                       the HPS float fallback serves every tick inside it,
//                       the new firmware lands at the first tick after
//
// The decision loop never skips a tick and never blocks on training: the
// manager's tick() is the loop body, requalification runs on the
// Requalifier's worker thread, and the swap itself is the deblender's
// pending-install mechanism. After a swap the DriftMonitor is rearmed so
// the new generation defines the new baseline — the whole cycle can repeat
// indefinitely, which is exactly what bench_lifecycle drives.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/deblender.hpp"
#include "lifecycle/drift.hpp"
#include "lifecycle/registry.hpp"
#include "lifecycle/requalify.hpp"

namespace reads::lifecycle {

enum class LifecyclePhase : std::uint8_t {
  kStable,        ///< serving; drift monitor watching
  kRequalifying,  ///< worker training/qualifying a candidate
  kSwapping,      ///< reconfiguration window open, install pending
};

std::string_view to_string(LifecyclePhase phase) noexcept;

struct LifecycleConfig {
  DriftConfig drift;
  RequalifyConfig requalify;
  /// Labelled-frame ring buffer capacity (recent traffic for retraining).
  std::size_t recent_capacity = 192;
  /// Frames required before a trigger may submit a requalification.
  std::size_t min_frames = 96;
  /// Partial-reconfiguration window: how long the PR bitstream takes to
  /// stream into the fabric, converted to decision ticks at `fps`.
  double reconfig_window_ms = 40.0;
  double fps = 320.0;
  std::uint64_t seed = 2026;
  /// Registry persistence directory ("" = in-memory only).
  std::string persist_dir;
};

/// One completed drift->requalify->swap cycle, for audit and benching.
struct SwapRecord {
  std::uint64_t from_version = 0;
  std::uint64_t to_version = 0;
  std::uint64_t landed_tick = 0;    ///< tick index at which the swap landed
  std::uint64_t trigger_tick = 0;   ///< tick at which drift latched
  std::size_t reconfig_ticks = 0;   ///< fallback ticks inside the window
  std::size_t rejected_candidates = 0;  ///< gate failures in this cycle
};

class LifecycleManager {
 public:
  /// `system` must outlive the manager. `factory` builds the deployed
  /// topology (used to clone artifacts — nn::Model is move-only — and to
  /// warm-start candidates). Publishes the system's current model as
  /// registry version 1.
  LifecycleManager(core::DeblendingSystem& system, LifecycleConfig config,
                   ModelFactory factory);

  LifecycleManager(const LifecycleManager&) = delete;
  LifecycleManager& operator=(const LifecycleManager&) = delete;

  /// The decision-loop body: serve the frame through the system, feed the
  /// drift monitor, bank the labelled frame, and advance the lifecycle
  /// state machine. `target` is the frame's ground truth — in production
  /// it arrives from the accelerator's logging chain, possibly delayed; the
  /// manager only reads it when banking frames for retraining, never to
  /// make the tick's decision. Single-threaded.
  core::Decision tick(const tensor::Tensor& raw_frame,
                      const tensor::Tensor& target);

  /// Fault injection / testing: applied to the next candidate after
  /// training, before qualification, then cleared. A corrupting mutator
  /// must be caught by the gates (bench_lifecycle asserts it).
  void set_next_candidate_mutator(std::function<void(nn::Model&)> mutate) {
    next_mutator_ = std::move(mutate);
  }

  LifecyclePhase phase() const noexcept { return phase_; }
  const ModelRegistry& registry() const noexcept { return registry_; }
  const DriftMonitor& monitor() const noexcept { return monitor_; }
  const std::vector<SwapRecord>& swaps() const noexcept { return swaps_; }
  std::uint64_t ticks() const noexcept { return ticks_; }
  std::uint64_t degraded_ticks() const noexcept { return degraded_ticks_; }
  std::uint64_t reconfig_ticks() const noexcept { return reconfig_ticks_; }
  std::uint64_t triggers() const noexcept { return triggers_; }
  std::uint64_t rejected_candidates() const noexcept {
    return rejected_candidates_;
  }
  /// Completed drift->requalify->swap cycles (== swaps().size()).
  std::uint64_t cycles() const noexcept { return swaps_.size(); }
  std::size_t reconfig_window_frames() const noexcept {
    return window_frames_;
  }

 private:
  nn::Model clone_model(const nn::Model& src) const;
  void maybe_submit();
  void consume_result();

  core::DeblendingSystem& system_;
  LifecycleConfig cfg_;
  ModelFactory factory_;
  ModelRegistry registry_;
  DriftMonitor monitor_;

  /// Finished requalifications parked by the worker for the tick thread.
  /// Declared BEFORE requalifier_: members destroy in reverse declaration
  /// order, so ~Requalifier() joins the worker — whose done callback locks
  /// result_mutex_ — while the mutex and slot are still alive. Destroying
  /// the manager mid-requalification is safe only because of this ordering.
  std::mutex result_mutex_;
  std::optional<RequalifyResult> pending_result_;

  Requalifier requalifier_;
  std::size_t window_frames_ = 0;

  std::deque<blm::BlmFrame> recent_;
  LifecyclePhase phase_ = LifecyclePhase::kStable;
  std::function<void(nn::Model&)> next_mutator_;

  std::uint64_t ticks_ = 0;
  std::uint64_t degraded_ticks_ = 0;
  std::uint64_t reconfig_ticks_ = 0;
  std::uint64_t triggers_ = 0;
  std::uint64_t rejected_candidates_ = 0;
  /// Requalification submissions so far; sole seed-derivation counter, so
  /// every attempt — first try or post-rejection retry — trains under a
  /// distinct RNG stream.
  std::uint64_t submissions_ = 0;
  std::uint64_t cycle_rejected_ = 0;
  std::uint64_t trigger_tick_ = 0;
  std::uint64_t swap_from_version_ = 0;
  std::vector<SwapRecord> swaps_;
};

}  // namespace reads::lifecycle
