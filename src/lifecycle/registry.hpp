// ModelRegistry: versioned, immutable, content-hashed model artifacts with
// RCU-style publication.
//
// Every qualified model generation — float weights, the standardizer they
// were trained against, and the quantized firmware lowered from them — is
// frozen into one ModelArtifact and published atomically. Readers (the
// decision loop, the serving gateway, benches) grab current() lock-free and
// keep a shared_ptr for as long as they serve from it; a publish or
// rollback never invalidates an artifact somebody still holds, which is
// exactly the property a zero-downtime hot-swap needs: the old firmware
// stays alive until the last frame served from it has left the building.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hls/qmodel.hpp"
#include "nn/model.hpp"
#include "train/standardize.hpp"

namespace reads::lifecycle {

/// Machine-countable reason a candidate was rejected pre-traffic; kNone
/// when it qualified. kResourceBudget/kDeadline come from the compiled
/// firmware's measured estimate violating the device budget or the control
/// deadline at validation time — the guard against an autotuned point whose
/// predicted fit did not survive compilation.
enum class RejectCode {
  kNone,
  kQuantAccuracy,
  kHoldoutMse,
  kResourceBudget,
  kDeadline,
};

std::string_view to_string(RejectCode code) noexcept;

/// Outcome of the qualification gate a candidate passed (or failed) before
/// reaching the registry. Kept with the artifact for audit.
struct QualificationReport {
  double quant_accuracy_mi = 0.0;  ///< vs float, fraction within tolerance
  double quant_accuracy_rr = 0.0;
  double holdout_mse = 0.0;            ///< candidate float MSE on holdout
  double incumbent_holdout_mse = 0.0;  ///< incumbent float MSE, same holdout
  std::size_t holdout_frames = 0;
  bool passed = false;
  RejectCode reject_code = RejectCode::kNone;  ///< first failing gate
  std::string reason;  ///< human-readable verdict ("qualified", or why not)

  // Autotune stage (RequalifyConfig::autotune; see src/autotune/).
  bool autotuned = false;          ///< candidate config came from the tuner
  bool tuned_dominates = false;    ///< tuner found a baseline-dominating point
  double predicted_latency_ms = 0.0;  ///< LatencyModel on the compiled fw
  double alut_utilization = 0.0;      ///< ResourceModel on the compiled fw
};

/// One immutable model generation. Never mutated after publication; the
/// registry only ever hands out shared_ptr<const ModelArtifact>.
/// enable_shared_from_this lets the registry's reader fast path turn its
/// atomic raw pointer back into shared ownership without touching a lock.
struct ModelArtifact : std::enable_shared_from_this<ModelArtifact> {
  ModelArtifact(nn::Model model_, train::Standardizer standardizer_,
                std::shared_ptr<const hls::QuantizedModel> quantized_,
                QualificationReport report_ = {})
      : model(std::move(model_)),
        standardizer(std::move(standardizer_)),
        quantized(std::move(quantized_)),
        report(std::move(report_)) {}

  /// Registry-assigned, dense from 1 in publication order.
  std::uint64_t version = 0;
  /// FNV-1a over the float model's shapes and weight bytes
  /// (nn::weights_hash): two artifacts with the same hash serve the same
  /// bits. Computed at publication.
  std::uint64_t content_hash = 0;
  nn::Model model;  ///< float weights (HPS fallback + future warm starts)
  train::Standardizer standardizer;
  std::shared_ptr<const hls::QuantizedModel> quantized;
  QualificationReport report;
};

/// Thread-safe versioned store. Writers (publish/rollback) serialize on a
/// mutex; readers are a lock-free atomic pointer load (see current()).
class ModelRegistry {
 public:
  /// `persist_dir` non-empty: every published artifact's float weights are
  /// also written to `<dir>/v<version>_<hash>.weights` (nn::save_weights
  /// format) so a generation can be audited or resurrected offline.
  explicit ModelRegistry(std::string persist_dir = "");

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Freeze `artifact` (version and content_hash are assigned here),
  /// persist it if configured, and publish it as current. Returns the
  /// published artifact. Throws std::invalid_argument if the artifact has
  /// no quantized model.
  std::shared_ptr<const ModelArtifact> publish(ModelArtifact artifact);

  /// The serving generation; never null after the first publish. Lock-free:
  /// one acquire load of a raw pointer plus an atomic refcount bump
  /// (shared_from_this). The pointee is pinned by history_, which never
  /// shrinks, so the pointer can't dangle while the registry is alive.
  /// (Not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic::load
  /// releases its embedded spinlock with memory_order_relaxed, which TSan —
  /// correctly, per the formal model — reports as a reader/writer race on
  /// the stored pointer.)
  std::shared_ptr<const ModelArtifact> current() const noexcept {
    const ModelArtifact* p = current_.load(std::memory_order_acquire);
    return p ? p->shared_from_this() : nullptr;
  }

  /// A specific generation (nullptr if `v` was never published).
  std::shared_ptr<const ModelArtifact> version(std::uint64_t v) const;

  /// Repoint current at the generation preceding it (publication order,
  /// skipping nothing — rollback of a rollback walks further back).
  /// Returns the new current, or nullptr (and no change) when there is no
  /// earlier generation to fall back to.
  std::shared_ptr<const ModelArtifact> rollback();

  /// Number of generations ever published.
  std::size_t size() const;

  const std::string& persist_dir() const noexcept { return persist_dir_; }

 private:
  std::string persist_dir_;
  mutable std::mutex mutex_;  ///< guards history_ and writer ordering
  std::vector<std::shared_ptr<const ModelArtifact>> history_;
  std::atomic<const ModelArtifact*> current_{nullptr};
};

}  // namespace reads::lifecycle
