#include "lifecycle/registry.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace reads::lifecycle {

std::string_view to_string(RejectCode code) noexcept {
  switch (code) {
    case RejectCode::kNone: return "none";
    case RejectCode::kQuantAccuracy: return "quant_accuracy";
    case RejectCode::kHoldoutMse: return "holdout_mse";
    case RejectCode::kResourceBudget: return "resource_budget";
    case RejectCode::kDeadline: return "deadline";
  }
  return "unknown";
}

ModelRegistry::ModelRegistry(std::string persist_dir)
    : persist_dir_(std::move(persist_dir)) {
  if (!persist_dir_.empty()) {
    std::filesystem::create_directories(persist_dir_);
  }
}

std::shared_ptr<const ModelArtifact> ModelRegistry::publish(
    ModelArtifact artifact) {
  if (!artifact.quantized) {
    throw std::invalid_argument(
        "ModelRegistry::publish: artifact has no quantized model");
  }
  std::lock_guard lock(mutex_);
  artifact.version = history_.size() + 1;
  artifact.content_hash = nn::weights_hash(artifact.model);
  if (!persist_dir_.empty()) {
    std::ostringstream name;
    name << "v" << artifact.version << "_" << std::hex << artifact.content_hash
         << ".weights";
    nn::save_weights(artifact.model,
                     (std::filesystem::path(persist_dir_) / name.str())
                         .string());
  }
  auto frozen =
      std::make_shared<const ModelArtifact>(std::move(artifact));
  history_.push_back(frozen);
  current_.store(frozen.get(), std::memory_order_release);
  return frozen;
}

std::shared_ptr<const ModelArtifact> ModelRegistry::version(
    std::uint64_t v) const {
  std::lock_guard lock(mutex_);
  if (v == 0 || v > history_.size()) return nullptr;
  return history_[v - 1];
}

std::shared_ptr<const ModelArtifact> ModelRegistry::rollback() {
  std::lock_guard lock(mutex_);
  const ModelArtifact* cur = current_.load(std::memory_order_acquire);
  if (!cur || cur->version <= 1) return nullptr;
  auto prev = history_[cur->version - 2];
  current_.store(prev.get(), std::memory_order_release);
  return prev;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mutex_);
  return history_.size();
}

}  // namespace reads::lifecycle
