// Requalifier: background retraining and re-qualification of the deployed
// model on recent traffic.
//
// When the DriftMonitor fires, the lifecycle manager hands the requalifier
// the most recent labelled frames (in the paper's setting, labels arrive
// out-of-band from the accelerator's logging chain — here the bench keeps
// the generator's ground truth) and the incumbent artifact. On its own
// thread the requalifier re-runs the paper's full codesign loop:
//
//   1. refit the standardizer on the recent raw frames (facility-style
//      fit_global — one scale for all monitors),
//   2. warm-start a fresh topology from the incumbent's weights and train
//      a few epochs on the recent frames,
//   3. lower to firmware exactly like the original deployment: profile on
//      the held-out frames, layer-based PTQ at total_bits, compile with
//      the deployed reuse plan,
//   4. gate: quantized-vs-float accuracy (the paper's within-0.20 rule)
//      must clear min_quant_accuracy on both channels, AND the candidate's
//      float holdout MSE must not exceed max_mse_ratio x the incumbent's
//      on the same held-out frames (each model judged under its own
//      standardizer — a candidate must beat the incumbent at the
//      incumbent's best, not at serving the candidate's preprocessing).
//
// Only a candidate that passes both gates produces an artifact eligible
// for the registry; a failed candidate is returned with the report saying
// why, and the caller decides whether to retry with more data.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/tuner.hpp"
#include "blm/generator.hpp"
#include "hls/firmware.hpp"
#include "lifecycle/registry.hpp"
#include "nn/model.hpp"

namespace reads::lifecycle {

/// Builds one untrained instance of the deployed topology (weights are
/// copied or initialized by the requalifier). nn::Model is move-only, so
/// "clone the incumbent" is factory() + nn::copy_weights.
using ModelFactory = std::function<nn::Model()>;

struct RequalifyConfig {
  std::size_t epochs = 3;
  std::size_t batch_size = 16;
  double learning_rate = 1e-3;
  /// Fraction of the recent frames held out of training for the MSE gate
  /// and PTQ calibration/qualification.
  double holdout_fraction = 0.25;
  int total_bits = 16;
  hls::ReusePolicy reuse;  ///< default: ReusePolicy::deployed_unet()
  double clock_mhz = 100.0;
  /// Gate 1: quantized-vs-float accuracy (within quant_tolerance) on both
  /// channels over the holdout.
  double min_quant_accuracy = 0.98;
  double quant_tolerance = 0.20;
  /// Gate 2: candidate holdout MSE <= this multiple of the incumbent's.
  double max_mse_ratio = 1.05;

  /// Opt-in autotune stage: after profiling, run the src/autotune/ search
  /// from the layer_based_config seed and deploy the selected per-layer
  /// <W, I, reuse> plan when the tuner finds a baseline-dominating point
  /// (falls back to the seed plan when it does not).
  bool autotune = false;
  autotune::TuneConfig tune{};
  /// Device budget / deadline the tuner screens against AND the compiled
  /// candidate firmware is measured against before publication.
  autotune::EvaluatorConfig tune_eval{};
  /// Enforce the tune_eval resource/deadline budget on the compiled
  /// firmware even when the autotune stage is off. Always enforced when
  /// autotune is on.
  bool enforce_budget = false;

  RequalifyConfig() : reuse(hls::ReusePolicy::deployed_unet()) {}
};

struct RequalifyRequest {
  /// Recent labelled frames, oldest first; the newest holdout_fraction are
  /// held out (qualify on the data closest to "now").
  std::vector<blm::BlmFrame> frames;
  /// Serving generation to warm-start from and to beat on the holdout;
  /// null = cold start (seed-initialized weights, MSE gate vacuous).
  std::shared_ptr<const ModelArtifact> incumbent;
  std::uint64_t seed = 1;
  /// Test/fault-injection hook applied to the trained candidate before
  /// qualification — a corrupted candidate must be caught by the gates.
  std::function<void(nn::Model&)> mutate;
  /// Test/fault-injection hook applied to the chosen HlsConfig after the
  /// autotune stage but before the final compile — a plan that violates
  /// the resource budget must be rejected by the pre-traffic guard.
  std::function<void(hls::HlsConfig&)> mutate_hls;
};

struct RequalifyResult {
  bool qualified = false;
  QualificationReport report;
  /// Complete (model + standardizer + quantized firmware) only when
  /// qualified; report is always filled.
  std::optional<ModelArtifact> artifact;
};

class Requalifier {
 public:
  Requalifier(RequalifyConfig config, ModelFactory factory);
  ~Requalifier();

  Requalifier(const Requalifier&) = delete;
  Requalifier& operator=(const Requalifier&) = delete;

  /// Synchronous codesign loop; safe from any thread (touches no shared
  /// state). Throws std::invalid_argument on an unusable request (< 8
  /// frames, or no factory).
  RequalifyResult run(RequalifyRequest request) const;

  /// Hand the request to the background worker. Returns false (request
  /// untouched) when a job is already in flight. `done` runs on the worker
  /// thread after qualification finishes.
  bool submit(RequalifyRequest request,
              std::function<void(RequalifyResult)> done);

  bool busy() const noexcept {
    return busy_.load(std::memory_order_acquire);
  }
  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Candidates rejected pre-traffic because the compiled firmware's
  /// measured estimate violated the resource budget or the deadline.
  std::uint64_t budget_rejects() const noexcept {
    return budget_rejects_.load(std::memory_order_relaxed);
  }

  const RequalifyConfig& config() const noexcept { return cfg_; }

 private:
  void worker_loop();

  RequalifyConfig cfg_;
  ModelFactory factory_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<RequalifyRequest> job_;
  std::function<void(RequalifyResult)> done_;
  bool stop_ = false;
  std::atomic<bool> busy_{false};
  std::atomic<std::uint64_t> completed_{0};
  /// mutable: run() is const (stateless apart from counters).
  mutable std::atomic<std::uint64_t> budget_rejects_{0};
  std::thread worker_;
};

}  // namespace reads::lifecycle
