#include "lifecycle/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reads::lifecycle {

namespace {
/// Scale floor: a monitor that never varies in the baseline (pedestal-only
/// channel) must not turn numerical dust into an infinite z-score.
constexpr double kScaleFloor = 1e-6;
}  // namespace

DriftMonitor::DriftMonitor(DriftConfig config) : cfg_(config) {
  if (cfg_.window == 0) {
    throw std::invalid_argument("DriftMonitor: window must be positive");
  }
  if (cfg_.baseline_windows == 0) {
    throw std::invalid_argument(
        "DriftMonitor: baseline_windows must be positive");
  }
  if (cfg_.consecutive == 0) {
    throw std::invalid_argument("DriftMonitor: consecutive must be positive");
  }
  if (cfg_.clear_threshold > cfg_.trigger_threshold) {
    throw std::invalid_argument(
        "DriftMonitor: clear_threshold must not exceed trigger_threshold");
  }
}

void DriftMonitor::observe(const Tensor& standardized_frame,
                           const Tensor& probabilities) {
  const std::size_t n = standardized_frame.numel();
  if (monitors_ == 0) {
    monitors_ = n;
    win_input_sum_.assign(monitors_, 0.0);
    base_sum_.assign(monitors_, 0.0);
    base_sumsq_.assign(monitors_, 0.0);
  } else if (n != monitors_) {
    throw std::invalid_argument("DriftMonitor: monitor count changed");
  }
  if (probabilities.numel() != 2 * monitors_) {
    throw std::invalid_argument(
        "DriftMonitor: probabilities must be (monitors, 2)");
  }

  double mi = 0.0, rr = 0.0;
  for (std::size_t m = 0; m < monitors_; ++m) {
    const double v = static_cast<double>(standardized_frame[m]);
    win_input_sum_[m] += v;
    if (!baseline_frozen_) {
      base_sum_[m] += v;
      base_sumsq_[m] += v * v;
    }
    mi += static_cast<double>(probabilities[m * 2 + 0]);
    rr += static_cast<double>(probabilities[m * 2 + 1]);
  }
  win_mi_sum_ += mi;
  win_rr_sum_ += rr;
  if (!baseline_frozen_) {
    ++base_frames_;
    base_mi_sum_ += mi;
    base_mi_sumsq_ += mi * mi;
    base_rr_sum_ += rr;
    base_rr_sumsq_ += rr * rr;
  }

  if (++win_count_ >= cfg_.window) finish_window();
}

void DriftMonitor::freeze_baseline() {
  const auto frames = static_cast<double>(base_frames_);
  base_mean_.resize(monitors_);
  base_scale_.resize(monitors_);
  for (std::size_t m = 0; m < monitors_; ++m) {
    const double mean = base_sum_[m] / frames;
    const double var =
        std::max(0.0, base_sumsq_[m] / frames - mean * mean);
    base_mean_[m] = mean;
    base_scale_[m] = std::max(kScaleFloor, std::sqrt(var));
  }
  mi_mean_ = base_mi_sum_ / frames;
  mi_scale_ = std::max(
      kScaleFloor,
      std::sqrt(std::max(0.0, base_mi_sumsq_ / frames - mi_mean_ * mi_mean_)));
  rr_mean_ = base_rr_sum_ / frames;
  rr_scale_ = std::max(
      kScaleFloor,
      std::sqrt(std::max(0.0, base_rr_sumsq_ / frames - rr_mean_ * rr_mean_)));
  baseline_frozen_ = true;
  snap_.baseline_frozen = true;
}

void DriftMonitor::finish_window() {
  const auto w = static_cast<double>(win_count_);

  if (!baseline_frozen_) {
    if (++base_windows_done_ >= cfg_.baseline_windows) freeze_baseline();
  } else {
    // The window mean of W iid samples has std sigma/sqrt(W): z-score each
    // monitor's window mean at that scale, then average |z| over monitors.
    // Under no drift this sits near 0.8 (E|N(0,1)|); real drift moves whole
    // groups of monitors coherently and pushes it past any sane trigger.
    const double root_w = std::sqrt(w);
    double input_shift = 0.0;
    for (std::size_t m = 0; m < monitors_; ++m) {
      const double win_mean = win_input_sum_[m] / w;
      input_shift +=
          std::abs(win_mean - base_mean_[m]) / (base_scale_[m] / root_w);
    }
    input_shift /= static_cast<double>(monitors_);

    const double z_mi =
        std::abs(win_mi_sum_ / w - mi_mean_) / (mi_scale_ / root_w);
    const double z_rr =
        std::abs(win_rr_sum_ / w - rr_mean_) / (rr_scale_ / root_w);
    const double output_shift = std::max(z_mi, z_rr);

    const double score = std::max(input_shift, output_shift);
    if (score >= cfg_.trigger_threshold) {
      ++alarm_streak_;
    } else if (score <= cfg_.clear_threshold) {
      alarm_streak_ = 0;
    }  // hysteresis band: hold the streak
    if (alarm_streak_ >= cfg_.consecutive) triggered_ = true;

    snap_.input_shift = input_shift;
    snap_.output_shift = output_shift;
    snap_.score = score;
    ++snap_.windows;
    snap_.alarm_streak = alarm_streak_;
    snap_.triggered = triggered_;
  }

  win_count_ = 0;
  std::fill(win_input_sum_.begin(), win_input_sum_.end(), 0.0);
  win_mi_sum_ = 0.0;
  win_rr_sum_ = 0.0;
}

void DriftMonitor::rearm() {
  triggered_ = false;
  alarm_streak_ = 0;
  baseline_frozen_ = false;
  base_windows_done_ = 0;
  base_frames_ = 0;
  if (monitors_ != 0) {
    std::fill(base_sum_.begin(), base_sum_.end(), 0.0);
    std::fill(base_sumsq_.begin(), base_sumsq_.end(), 0.0);
    std::fill(win_input_sum_.begin(), win_input_sum_.end(), 0.0);
  }
  base_mi_sum_ = base_mi_sumsq_ = 0.0;
  base_rr_sum_ = base_rr_sumsq_ = 0.0;
  win_count_ = 0;
  win_mi_sum_ = win_rr_sum_ = 0.0;
  snap_ = DriftSnapshot{};
}

}  // namespace reads::lifecycle
