#include "lifecycle/requalify.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "autotune/space.hpp"
#include "autotune/tuner.hpp"
#include "hls/accuracy.hpp"
#include "hls/latency.hpp"
#include "hls/profiler.hpp"
#include "hls/resource.hpp"
#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/standardize.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace reads::lifecycle {

namespace {

/// Mean per-element squared error of `model` over (standardized input,
/// target) pairs, averaged across frames.
double holdout_mse(const nn::Model& model,
                   const std::vector<tensor::Tensor>& inputs,
                   const std::vector<const tensor::Tensor*>& targets) {
  double total = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto pred = model.forward(inputs[i]);
    const auto& t = *targets[i];
    double se = 0.0;
    for (std::size_t j = 0; j < pred.numel(); ++j) {
      const double d = static_cast<double>(pred[j]) -
                       static_cast<double>(t[j]);
      se += d * d;
    }
    total += se / static_cast<double>(pred.numel());
  }
  return total / static_cast<double>(inputs.size());
}

}  // namespace

Requalifier::Requalifier(RequalifyConfig config, ModelFactory factory)
    : cfg_(std::move(config)), factory_(std::move(factory)) {
  if (!factory_) {
    throw std::invalid_argument("Requalifier: null model factory");
  }
  if (cfg_.holdout_fraction <= 0.0 || cfg_.holdout_fraction >= 1.0) {
    throw std::invalid_argument(
        "Requalifier: holdout_fraction must be in (0, 1)");
  }
  worker_ = std::thread([this] { worker_loop(); });
}

Requalifier::~Requalifier() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool Requalifier::submit(RequalifyRequest request,
                         std::function<void(RequalifyResult)> done) {
  std::lock_guard lock(mutex_);
  if (job_ || busy_.load(std::memory_order_relaxed)) return false;
  job_.emplace(std::move(request));
  done_ = std::move(done);
  busy_.store(true, std::memory_order_release);
  cv_.notify_one();
  return true;
}

void Requalifier::worker_loop() {
  for (;;) {
    RequalifyRequest request;
    std::function<void(RequalifyResult)> done;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || job_.has_value(); });
      if (stop_) return;
      request = std::move(*job_);
      job_.reset();
      done = std::move(done_);
      done_ = nullptr;
    }
    RequalifyResult result;
    try {
      result = run(std::move(request));
    } catch (const std::exception& e) {
      result.qualified = false;
      result.report.reason = std::string("requalification error: ") + e.what();
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    busy_.store(false, std::memory_order_release);
    if (done) done(std::move(result));
  }
}

RequalifyResult Requalifier::run(RequalifyRequest request) const {
  if (request.frames.size() < 8) {
    throw std::invalid_argument(
        "Requalifier::run: need at least 8 recent frames");
  }

  const std::size_t holdout_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(cfg_.holdout_fraction *
                          static_cast<double>(request.frames.size()))));
  const std::size_t train_count = request.frames.size() - holdout_count;
  if (train_count < 4) {
    throw std::invalid_argument(
        "Requalifier::run: holdout leaves too few training frames");
  }

  // 1. Refit the standardizer on the training slice's raw readings.
  std::vector<tensor::Tensor> train_raw;
  train_raw.reserve(train_count);
  for (std::size_t i = 0; i < train_count; ++i) {
    train_raw.push_back(request.frames[i].raw);
  }
  train::Standardizer standardizer;
  standardizer.fit_global(train_raw);

  // 2. Warm-start the candidate and train on the recent frames.
  nn::Model candidate = factory_();
  if (request.incumbent) {
    nn::copy_weights(request.incumbent->model, candidate);
  } else {
    nn::init_he_uniform(candidate,
                        util::derive_seed(request.seed, /*purpose=*/0x11));
  }
  train::Dataset data;
  for (std::size_t i = 0; i < train_count; ++i) {
    data.add(standardizer.transform(request.frames[i].raw),
             request.frames[i].target);
  }
  train::MseLoss loss;
  train::Adam adam(cfg_.learning_rate);
  train::Trainer trainer(candidate, loss, adam);
  train::TrainConfig tc;
  tc.epochs = cfg_.epochs;
  tc.batch_size = cfg_.batch_size;
  tc.shuffle_seed = util::derive_seed(request.seed, /*purpose=*/0x12);
  trainer.fit(std::move(data), tc);

  if (request.mutate) request.mutate(candidate);

  // 3/4. Qualify on the held-out (newest) frames: float-vs-truth MSE for
  // candidate and incumbent, each under its own standardizer, and the
  // quantized-vs-float accuracy of the candidate's lowered firmware.
  std::vector<tensor::Tensor> holdout_cand;
  std::vector<tensor::Tensor> holdout_incumbent;
  std::vector<const tensor::Tensor*> holdout_targets;
  holdout_cand.reserve(holdout_count);
  holdout_targets.reserve(holdout_count);
  for (std::size_t i = train_count; i < request.frames.size(); ++i) {
    holdout_cand.push_back(standardizer.transform(request.frames[i].raw));
    if (request.incumbent) {
      holdout_incumbent.push_back(
          request.incumbent->standardizer.transform(request.frames[i].raw));
    }
    holdout_targets.push_back(&request.frames[i].target);
  }

  RequalifyResult result;
  auto& report = result.report;
  report.holdout_frames = holdout_count;
  report.holdout_mse = holdout_mse(candidate, holdout_cand, holdout_targets);
  if (request.incumbent) {
    report.incumbent_holdout_mse = holdout_mse(
        request.incumbent->model, holdout_incumbent, holdout_targets);
  }

  const auto profile = hls::profile_model(candidate, holdout_cand);
  hls::HlsConfig hls_cfg;
  hls_cfg.quant = hls::layer_based_config(candidate, profile, cfg_.total_bits);
  hls_cfg.reuse = cfg_.reuse;
  hls_cfg.clock_mhz = cfg_.clock_mhz;

  // Opt-in autotune stage: search per-layer <W, I, reuse> from the
  // layer_based_config seed; deploy the selected plan only when it
  // dominates the seed (>= accuracy, lower latency or resources). The
  // tuner seed derives from the request so repeated requalifications
  // explore independently yet reproducibly.
  if (cfg_.autotune) {
    autotune::SearchSpace space(hls::compile(candidate, hls_cfg));
    autotune::Evaluator evaluator(space, candidate, holdout_cand,
                                  cfg_.tune_eval);
    autotune::TuneConfig tune = cfg_.tune;
    tune.seed = util::derive_seed(request.seed, /*purpose=*/0x13);
    const auto outcome = autotune::Autotuner(space, evaluator, tune).run();
    report.autotuned = true;
    report.tuned_dominates = outcome.selected_dominates;
    if (const auto* selected = outcome.selected()) {
      hls_cfg = space.materialize(selected->candidate);
    }
  }
  if (request.mutate_hls) request.mutate_hls(hls_cfg);

  auto quantized = std::make_shared<const hls::QuantizedModel>(
      hls::compile(candidate, hls_cfg));

  std::ostringstream verdict;
  bool passed = true;
  const auto fail = [&](RejectCode code) {
    passed = false;
    if (report.reject_code == RejectCode::kNone) report.reject_code = code;
  };

  // Pre-traffic budget guard on the *compiled* firmware: an autotuned (or
  // hook-mutated) plan whose measured estimate violates the device budget
  // or the deadline must never reach the registry, whatever the accuracy
  // gates say.
  if (cfg_.autotune || cfg_.enforce_budget) {
    const hls::ResourceModel resource_model(cfg_.tune_eval.device,
                                            cfg_.tune_eval.resource);
    const hls::LatencyModel latency_model(cfg_.tune_eval.latency);
    const auto res = resource_model.estimate(quantized->firmware());
    const auto lat = latency_model.estimate(quantized->firmware());
    report.predicted_latency_ms = lat.total_ms();
    report.alut_utilization = res.alut_utilization();
    const bool over_budget = !res.fits();
    const bool over_deadline = lat.total_ms() > cfg_.tune_eval.deadline_ms;
    if (over_budget) {
      fail(RejectCode::kResourceBudget);
      verdict << "resource budget violated (ALUT "
              << res.alut_utilization() * 100.0 << "%, DSP "
              << res.dsp_utilization() * 100.0 << "% of "
              << cfg_.tune_eval.device.name << "); ";
    }
    if (over_deadline) {
      fail(RejectCode::kDeadline);
      verdict << "predicted latency " << lat.total_ms() << " ms exceeds "
              << cfg_.tune_eval.deadline_ms << " ms deadline; ";
    }
    if (over_budget || over_deadline) {
      budget_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const auto accuracy = hls::evaluate_quantization(
      candidate, *quantized, holdout_cand, cfg_.quant_tolerance);
  report.quant_accuracy_mi = accuracy.accuracy_mi;
  report.quant_accuracy_rr = accuracy.accuracy_rr;

  if (accuracy.accuracy_mi < cfg_.min_quant_accuracy ||
      accuracy.accuracy_rr < cfg_.min_quant_accuracy) {
    fail(RejectCode::kQuantAccuracy);
    verdict << "quantization accuracy (" << accuracy.accuracy_mi << ", "
            << accuracy.accuracy_rr << ") below " << cfg_.min_quant_accuracy
            << "; ";
  }
  if (request.incumbent &&
      report.holdout_mse >
          cfg_.max_mse_ratio * report.incumbent_holdout_mse) {
    fail(RejectCode::kHoldoutMse);
    verdict << "holdout MSE " << report.holdout_mse << " exceeds "
            << cfg_.max_mse_ratio << "x incumbent ("
            << report.incumbent_holdout_mse << "); ";
  }
  report.passed = passed;
  report.reason = passed ? "qualified" : verdict.str();
  result.qualified = passed;
  if (passed) {
    result.artifact.emplace(std::move(candidate), std::move(standardizer),
                            std::move(quantized), report);
  }
  return result;
}

}  // namespace reads::lifecycle
