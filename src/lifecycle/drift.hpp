// DriftMonitor: windowed detection of machine drift from the decision
// loop's own traffic, with a frozen baseline sketch and hysteresis-guarded
// triggering.
//
// The monitor sees exactly what the deployed model sees — the standardized
// input frame and the (monitors, 2) output probabilities — and never the
// ground truth (production has none). Two shift proxies are maintained per
// window of `window` frames:
//
//  - input shift: per-monitor z-score of the window-mean reading against a
//    baseline sketch (mean and variance per monitor) frozen over the first
//    `baseline_windows` windows, averaged across monitors. Loss-pattern
//    rotation and intensity drift both move it.
//  - output shift: z-scores of the window-mean total MI and RR probability
//    mass against the same baseline. A model serving drifted optics starts
//    mis-assigning mass long before anyone labels a frame.
//
// The drift score is the max of the two. Hysteresis: a window with score
// >= trigger_threshold extends the alarm streak, a window with score <=
// clear_threshold resets it, scores in between hold it; `consecutive`
// alarmed windows latch triggered(). The latch (and the baseline) survive
// until rearm() — called after a model swap, when the new generation
// defines a new normal and the sketch must be rebuilt.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace reads::lifecycle {

using tensor::Tensor;

struct DriftConfig {
  std::size_t window = 64;           ///< frames per evaluation window
  std::size_t baseline_windows = 2;  ///< windows frozen into the sketch
  double trigger_threshold = 4.0;    ///< window score >= this: alarm window
  double clear_threshold = 2.0;      ///< window score <= this: streak reset
  std::size_t consecutive = 2;       ///< alarm windows to latch a trigger
};

struct DriftSnapshot {
  double input_shift = 0.0;   ///< last completed window
  double output_shift = 0.0;
  double score = 0.0;         ///< max(input_shift, output_shift)
  std::size_t windows = 0;    ///< completed monitoring windows (post-baseline)
  std::size_t alarm_streak = 0;
  bool baseline_frozen = false;
  bool triggered = false;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = {});

  /// Feed one decision tick. `standardized_frame` is the (monitors, 1)
  /// model input; `probabilities` the (monitors, 2) model output.
  /// Single-threaded, like the decision loop that calls it.
  void observe(const Tensor& standardized_frame, const Tensor& probabilities);

  /// Latched: a drift trigger fired and rearm() has not been called.
  bool triggered() const noexcept { return triggered_; }

  /// Clear the latch AND discard the baseline sketch; the next
  /// `baseline_windows` windows rebuild it. Call after a model swap.
  void rearm();

  DriftSnapshot snapshot() const noexcept { return snap_; }
  const DriftConfig& config() const noexcept { return cfg_; }

 private:
  void finish_window();
  void freeze_baseline();

  DriftConfig cfg_;
  std::size_t monitors_ = 0;  ///< inferred from the first frame

  // Current-window accumulators.
  std::size_t win_count_ = 0;
  std::vector<double> win_input_sum_;  ///< per monitor
  double win_mi_sum_ = 0.0;            ///< per-frame total MI mass, summed
  double win_rr_sum_ = 0.0;

  // Baseline accumulation (first baseline_windows windows after (re)arm).
  std::size_t base_frames_ = 0;
  std::vector<double> base_sum_;    ///< per monitor
  std::vector<double> base_sumsq_;  ///< per monitor
  double base_mi_sum_ = 0.0, base_mi_sumsq_ = 0.0;
  double base_rr_sum_ = 0.0, base_rr_sumsq_ = 0.0;
  std::size_t base_windows_done_ = 0;

  // Frozen sketch.
  bool baseline_frozen_ = false;
  std::vector<double> base_mean_;
  std::vector<double> base_scale_;  ///< per-monitor std, floored
  double mi_mean_ = 0.0, mi_scale_ = 1.0;
  double rr_mean_ = 0.0, rr_scale_ = 1.0;

  std::size_t alarm_streak_ = 0;
  bool triggered_ = false;
  DriftSnapshot snap_;
};

}  // namespace reads::lifecycle
