#include "fixed/format.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace reads::fixed {

namespace {

constexpr int kMaxWidth = 48;

/// 2^e as double for |e| well within double range.
double pow2(int e) noexcept { return std::ldexp(1.0, e); }

}  // namespace

FixedFormat::FixedFormat(int width, int int_bits, bool is_signed,
                         QuantMode quant, OverflowMode overflow)
    : width_(width),
      int_bits_(int_bits),
      is_signed_(is_signed),
      quant_(quant),
      overflow_(overflow) {
  if (width < 1 || width > kMaxWidth) {
    throw std::invalid_argument("FixedFormat: width must be in [1, 48]");
  }
  if (is_signed && width < 2 && int_bits >= width) {
    // A 1-bit signed format holds only the sign; allow it (ac_fixed does)
    // but nothing else needs guarding here.
  }
}

std::int64_t FixedFormat::raw_max() const noexcept {
  return is_signed_ ? (std::int64_t{1} << (width_ - 1)) - 1
                    : (std::int64_t{1} << width_) - 1;
}

std::int64_t FixedFormat::raw_min() const noexcept {
  return is_signed_ ? -(std::int64_t{1} << (width_ - 1)) : 0;
}

double FixedFormat::max_value() const noexcept {
  return static_cast<double>(raw_max()) * pow2(-frac_bits());
}

double FixedFormat::min_value() const noexcept {
  return static_cast<double>(raw_min()) * pow2(-frac_bits());
}

double FixedFormat::epsilon() const noexcept { return pow2(-frac_bits()); }

std::int64_t FixedFormat::clamp_or_wrap(std::int64_t scaled) const noexcept {
  const std::int64_t lo = raw_min();
  const std::int64_t hi = raw_max();
  if (scaled >= lo && scaled <= hi) return scaled;
  if (overflow_ == OverflowMode::kSaturate) {
    return scaled < lo ? lo : hi;
  }
  // Wrap: keep the low `width_` bits, then sign-extend if signed.
  const auto u = static_cast<std::uint64_t>(scaled);
  const std::uint64_t mask =
      width_ == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width_) - 1;
  std::uint64_t low = u & mask;
  if (is_signed_ && (low & (std::uint64_t{1} << (width_ - 1)))) {
    low |= ~mask;  // sign-extend
  }
  return static_cast<std::int64_t>(low);
}

std::int64_t FixedFormat::quantize(double value) const noexcept {
  if (std::isnan(value)) return 0;
  const double scaled = value * pow2(frac_bits());
  // Guard doubles beyond int64 range before converting.
  constexpr double kInt64Lim = 9.0e18;
  if (scaled >= kInt64Lim) return clamp_or_wrap(raw_max());
  if (scaled <= -kInt64Lim) return clamp_or_wrap(raw_min());
  double q = 0.0;
  switch (quant_) {
    case QuantMode::kTruncate:
      q = std::floor(scaled);
      break;
    case QuantMode::kRound:
      // Nearest, ties away from zero (ac_fixed AC_RND rounds half up toward
      // +inf; ties-away matches it for positive values and differs only on
      // exact negative half-quanta — documented deviation, irrelevant at the
      // noise floor of trained weights).
      q = std::round(scaled);
      break;
  }
  return clamp_or_wrap(static_cast<std::int64_t>(q));
}

double FixedFormat::to_double(std::int64_t raw) const noexcept {
  return static_cast<double>(raw) * pow2(-frac_bits());
}

std::int64_t FixedFormat::requantize_raw(std::int64_t raw,
                                         int from_frac_bits) const noexcept {
  const int shift = from_frac_bits - frac_bits();
  std::int64_t scaled = 0;
  if (shift > 0) {
    // Dropping `shift` low bits: arithmetic right shift is floor division by
    // 2^shift, which is exactly AC_TRN; AC_RND adds half an output quantum
    // before the shift.
    if (shift >= 63) {
      scaled = raw < 0 ? -1 : 0;
      if (quant_ == QuantMode::kRound) scaled = 0;
    } else if (quant_ == QuantMode::kRound) {
      const std::int64_t half = std::int64_t{1} << (shift - 1);
      // Ties away from zero, consistent with quantize().
      scaled = raw >= 0 ? (raw + half) >> shift : -((-raw + half) >> shift);
    } else {
      scaled = raw >> shift;
    }
  } else if (shift < 0) {
    const int up = -shift;
    // Widening: detect shift overflow before it happens.
    if (up >= 63 || std::llabs(raw) > (std::int64_t{1} << (62 - up))) {
      return clamp_or_wrap(raw < 0 ? raw_min() : raw_max());
    }
    scaled = raw << up;
  } else {
    scaled = raw;
  }
  return clamp_or_wrap(scaled);
}

std::string FixedFormat::to_string() const {
  std::string s = "ac_fixed<" + std::to_string(width_) + ", " +
                  std::to_string(int_bits_);
  if (!is_signed_) s += ", false";
  return s + ">";
}

}  // namespace reads::fixed
