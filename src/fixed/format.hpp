// Runtime-parameterized fixed-point formats mirroring Intel HLS `ac_fixed`.
//
// An `ac_fixed<W, I, S>` value has W total bits of which I are integer bits
// (the sign bit counts toward I when S = true). The remaining F = W - I bits
// are fraction bits. READS-Edge sweeps W and I at runtime (Fig. 5a/5b of the
// paper), so the workhorse representation is a runtime FixedFormat plus raw
// two's-complement values held in int64_t, scaled by 2^F.
//
// Quantization (rounding) and overflow handling match the ac_fixed modes the
// paper's flow uses: AC_TRN (truncate toward negative infinity, the HLS
// default), AC_RND (round to nearest, ties away from zero), AC_SAT
// (saturate), and AC_WRAP (drop carry bits, the HLS default).
#pragma once

#include <cstdint>
#include <string>

namespace reads::fixed {

enum class QuantMode : std::uint8_t {
  kTruncate,  ///< AC_TRN: floor of the scaled value.
  kRound,     ///< AC_RND: nearest, ties away from zero.
};

enum class OverflowMode : std::uint8_t {
  kSaturate,  ///< AC_SAT: clamp to representable range.
  kWrap,      ///< AC_WRAP: keep low-order bits (two's-complement wrap).
};

/// Description of one fixed-point format. Immutable value type.
class FixedFormat {
 public:
  /// width in [1, 48]; int_bits may be negative (all-fraction formats with
  /// leading implied zeros) or exceed width (trailing implied zeros), exactly
  /// as ac_fixed allows, but must leave at least one significant bit.
  FixedFormat(int width, int int_bits, bool is_signed = true,
              QuantMode quant = QuantMode::kTruncate,
              OverflowMode overflow = OverflowMode::kSaturate);

  int width() const noexcept { return width_; }
  int int_bits() const noexcept { return int_bits_; }
  int frac_bits() const noexcept { return width_ - int_bits_; }
  bool is_signed() const noexcept { return is_signed_; }
  QuantMode quant() const noexcept { return quant_; }
  OverflowMode overflow() const noexcept { return overflow_; }

  /// Largest / smallest representable value, and the quantum (2^-F).
  double max_value() const noexcept;
  double min_value() const noexcept;
  double epsilon() const noexcept;

  /// Raw two's-complement bounds of the W-bit container.
  std::int64_t raw_max() const noexcept;
  std::int64_t raw_min() const noexcept;

  /// Convert a real value to raw representation (scaled by 2^F) applying the
  /// quantization and overflow modes of this format.
  std::int64_t quantize(double value) const noexcept;

  /// Interpret a raw representation as a real value.
  double to_double(std::int64_t raw) const noexcept;

  /// Re-quantize a raw value expressed with `from_frac_bits` fraction bits
  /// into this format. This is the bit-accurate post-accumulation step of the
  /// quantized inference engine: HLS accumulators are wider than the layer
  /// output type and are cast down on write-out.
  std::int64_t requantize_raw(std::int64_t raw, int from_frac_bits) const noexcept;

  /// Round-trip through the format: quantize then convert back.
  double apply(double value) const noexcept { return to_double(quantize(value)); }

  /// ac_fixed-style spelling, e.g. "ac_fixed<16, 7>".
  std::string to_string() const;

  friend bool operator==(const FixedFormat&, const FixedFormat&) = default;

 private:
  std::int64_t clamp_or_wrap(std::int64_t scaled) const noexcept;

  int width_;
  int int_bits_;
  bool is_signed_;
  QuantMode quant_;
  OverflowMode overflow_;
};

}  // namespace reads::fixed
