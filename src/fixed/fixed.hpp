// Compile-time fixed-point value type, a thin typed wrapper over FixedFormat
// semantics. Mirrors `ac_fixed<W, I, true, Q, O>` closely enough to port HLS
// kernels verbatim. Arithmetic widens exactly as HLS does (full-precision
// products and sums) and conversion back to a narrower type applies the
// destination's quantization/overflow modes.
#pragma once

#include <compare>
#include <cstdint>

#include "fixed/format.hpp"

namespace reads::fixed {

template <int W, int I, QuantMode Q = QuantMode::kTruncate,
          OverflowMode O = OverflowMode::kSaturate>
class Fixed {
  static_assert(W >= 1 && W <= 48, "width out of supported range");

 public:
  static constexpr int kWidth = W;
  static constexpr int kIntBits = I;
  static constexpr int kFracBits = W - I;

  constexpr Fixed() noexcept = default;

  /// Quantizing constructor from a real value.
  explicit Fixed(double v) noexcept : raw_(format().quantize(v)) {}

  /// Bit-exact constructor from raw scaled integer.
  static Fixed from_raw(std::int64_t raw) noexcept {
    Fixed f;
    f.raw_ = format().requantize_raw(raw, kFracBits);
    return f;
  }

  /// Convert from another fixed format, applying this type's Q/O modes.
  template <int W2, int I2, QuantMode Q2, OverflowMode O2>
  static Fixed from(const Fixed<W2, I2, Q2, O2>& other) noexcept {
    Fixed f;
    f.raw_ = format().requantize_raw(other.raw(), W2 - I2);
    return f;
  }

  std::int64_t raw() const noexcept { return raw_; }
  double to_double() const noexcept { return format().to_double(raw_); }

  static const FixedFormat& format() noexcept {
    static const FixedFormat fmt(W, I, true, Q, O);
    return fmt;
  }

  /// Same-type arithmetic: compute exactly, re-quantize into this type.
  friend Fixed operator+(Fixed a, Fixed b) noexcept {
    return from_raw(a.raw_ + b.raw_);
  }
  friend Fixed operator-(Fixed a, Fixed b) noexcept {
    return from_raw(a.raw_ - b.raw_);
  }
  friend Fixed operator*(Fixed a, Fixed b) noexcept {
    // Product has 2F fraction bits; shift back with this type's rounding.
    Fixed f;
    f.raw_ = format().requantize_raw(a.raw_ * b.raw_, 2 * kFracBits);
    return f;
  }
  Fixed operator-() const noexcept { return from_raw(-raw_); }

  Fixed& operator+=(Fixed b) noexcept { return *this = *this + b; }
  Fixed& operator-=(Fixed b) noexcept { return *this = *this - b; }
  Fixed& operator*=(Fixed b) noexcept { return *this = *this * b; }

  friend auto operator<=>(const Fixed&, const Fixed&) = default;

 private:
  std::int64_t raw_ = 0;
};

/// The paper's default IP-core data type.
using Ap16_7 = Fixed<16, 7>;
/// The wide uniform precision that exceeded the Arria 10 ALUT budget.
using Ap18_10 = Fixed<18, 10>;

}  // namespace reads::fixed
