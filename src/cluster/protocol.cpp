#include "cluster/protocol.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace reads::cluster {

namespace {

using net::get_u16;
using net::get_u32;
using net::get_u64;
using net::put_u16;
using net::put_u32;
using net::put_u64;
using net::put_u8;

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked forward reader over a payload span.
struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t off = 0;

  void need(std::size_t n) const {
    if (data.size() - off < n) {
      throw std::runtime_error("cluster protocol: truncated payload");
    }
  }
  std::uint8_t u8() {
    need(1);
    return data[off++];
  }
  std::uint16_t u16() {
    need(2);
    const auto v = get_u16(data.data() + off);
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    const auto v = get_u32(data.data() + off);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const auto v = get_u64(data.data() + off);
    off += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data.data() + off), n);
    off += n;
    return s;
  }
  net::BlmPacket packet() {
    net::BlmPacket p;
    p.hub_id = u8();
    p.sequence = u32();
    p.first_monitor = u16();
    p.crc = u32();
    const std::uint32_t count = u32();
    // An inner packet cannot be larger than the (already bounded) envelope
    // that carries it; this check just keeps resize honest on garbage.
    need(4 * std::size_t{count});
    p.readings.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) p.readings[i] = u32();
    return p;
  }
  void done() const {
    if (off != data.size()) {
      throw std::runtime_error("cluster protocol: trailing payload bytes");
    }
  }
};

}  // namespace

namespace {

/// Envelope seal: CRC-32 over the type byte followed by the payload.
std::uint32_t envelope_crc(std::uint8_t type, const std::uint8_t* payload,
                           std::size_t len) noexcept {
  net::Crc32 crc;
  crc.add_byte(type);
  for (std::size_t i = 0; i < len; ++i) crc.add_byte(payload[i]);
  return crc.value();
}

void patch_u32(std::vector<std::uint8_t>& out, std::size_t at,
               std::uint32_t v) noexcept {
  out[at] = static_cast<std::uint8_t>(v & 0xFFu);
  out[at + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFFu);
  out[at + 2] = static_cast<std::uint8_t>((v >> 16) & 0xFFu);
  out[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::size_t begin_msg(std::vector<std::uint8_t>& out, MsgType type) {
  const std::size_t at = out.size();
  put_u32(out, 0);  // payload length, patched by end_msg
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, 0);  // envelope CRC, patched by end_msg
  return at;
}

void end_msg(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::size_t payload = out.size() - at - kEnvelopeHeader;
  patch_u32(out, at, static_cast<std::uint32_t>(payload));
  patch_u32(out, at + 5,
            envelope_crc(out[at + 4], out.data() + at + kEnvelopeHeader,
                         payload));
}

void append_hello(std::vector<std::uint8_t>& out, const Hello& m) {
  const auto at = begin_msg(out, MsgType::kHello);
  put_u8(out, static_cast<std::uint8_t>(m.role));
  put_u32(out, m.version);
  end_msg(out, at);
}

void append_submit(std::vector<std::uint8_t>& out, const Submit& m) {
  const auto at = begin_msg(out, MsgType::kSubmit);
  put_u64(out, m.stream);
  put_u64(out, m.req_id);
  put_u8(out, m.slo);
  put_u8(out, static_cast<std::uint8_t>(m.packets.size()));
  for (const auto& p : m.packets) net::append_packet(out, p);
  end_msg(out, at);
}

void append_job(std::vector<std::uint8_t>& out, const Job& m) {
  const auto at = begin_msg(out, MsgType::kJob);
  put_u64(out, m.gid);
  put_u64(out, m.stream);
  put_u8(out, m.slo);
  put_f64(out, m.deadline_ms);
  net::append_packet(out, m.packet);
  end_msg(out, at);
}

void append_result(std::vector<std::uint8_t>& out, const Result& m) {
  const auto at = begin_msg(out, MsgType::kResult);
  put_u64(out, m.id);
  put_u8(out, m.deadline_met);
  put_u64(out, m.model_epoch);
  put_u8(out, static_cast<std::uint8_t>(m.dims.size()));
  for (std::uint32_t d : m.dims) put_u32(out, d);
  put_u32(out, static_cast<std::uint32_t>(m.data.size()));
  for (float v : m.data) put_u32(out, std::bit_cast<std::uint32_t>(v));
  end_msg(out, at);
}

void append_shed(std::vector<std::uint8_t>& out, const Shed& m) {
  const auto at = begin_msg(out, MsgType::kShed);
  put_u64(out, m.id);
  put_u8(out, static_cast<std::uint8_t>(m.reason));
  end_msg(out, at);
}

void append_add_replica(std::vector<std::uint8_t>& out, const AddReplica& m) {
  const auto at = begin_msg(out, MsgType::kAddReplica);
  put_string(out, m.endpoint);
  end_msg(out, at);
}

void append_remove_replica(std::vector<std::uint8_t>& out,
                           const RemoveReplica& m) {
  const auto at = begin_msg(out, MsgType::kRemoveReplica);
  put_u64(out, m.node);
  end_msg(out, at);
}

void append_admin_ok(std::vector<std::uint8_t>& out, const AdminOk& m) {
  const auto at = begin_msg(out, MsgType::kAdminOk);
  put_u64(out, m.token);
  put_string(out, m.info);
  end_msg(out, at);
}

void append_stats_request(std::vector<std::uint8_t>& out) {
  const auto at = begin_msg(out, MsgType::kStatsRequest);
  end_msg(out, at);
}

void append_stats_reply(std::vector<std::uint8_t>& out, const StatsReply& m) {
  const auto at = begin_msg(out, MsgType::kStatsReply);
  put_string(out, m.json);
  end_msg(out, at);
}

void append_shutdown(std::vector<std::uint8_t>& out) {
  const auto at = begin_msg(out, MsgType::kShutdown);
  end_msg(out, at);
}

Hello decode_hello(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  Hello m;
  m.role = static_cast<Role>(c.u8());
  m.version = c.u32();
  c.done();
  return m;
}

Submit decode_submit(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  Submit m;
  m.stream = c.u64();
  m.req_id = c.u64();
  m.slo = c.u8();
  const std::uint8_t n = c.u8();
  m.packets.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i) m.packets.push_back(c.packet());
  c.done();
  return m;
}

Job decode_job(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  Job m;
  m.gid = c.u64();
  m.stream = c.u64();
  m.slo = c.u8();
  m.deadline_ms = c.f64();
  m.packet = c.packet();
  c.done();
  return m;
}

Result decode_result(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  Result m;
  m.id = c.u64();
  m.deadline_met = c.u8();
  m.model_epoch = c.u64();
  const std::uint8_t rank = c.u8();
  m.dims.resize(rank);
  for (std::uint8_t i = 0; i < rank; ++i) m.dims[i] = c.u32();
  const std::uint32_t n = c.u32();
  c.need(4 * std::size_t{n});
  m.data.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.data[i] = std::bit_cast<float>(c.u32());
  }
  c.done();
  return m;
}

Shed decode_shed(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  Shed m;
  m.id = c.u64();
  m.reason = static_cast<ShedReason>(c.u8());
  c.done();
  return m;
}

AddReplica decode_add_replica(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  AddReplica m;
  m.endpoint = c.str();
  c.done();
  return m;
}

RemoveReplica decode_remove_replica(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  RemoveReplica m;
  m.node = c.u64();
  c.done();
  return m;
}

AdminOk decode_admin_ok(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  AdminOk m;
  m.token = c.u64();
  m.info = c.str();
  c.done();
  return m;
}

StatsReply decode_stats_reply(std::span<const std::uint8_t> payload) {
  Cursor c{payload};
  StatsReply m;
  m.json = c.str();
  c.done();
  return m;
}

bool MessageReader::feed(std::span<const std::uint8_t> bytes) {
  if (broken_) return false;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  std::size_t off = 0;
  // The length field alone decides plausibility, so it is checked as soon
  // as its 4 bytes arrive — a corrupted length must not make the reader
  // wait forever for a phantom payload.
  while (buf_.size() - off >= 4) {
    const std::uint32_t len = net::get_u32(buf_.data() + off);
    if (len > limits_.max_payload) {
      broken_ = true;
      buf_.clear();
      return false;
    }
    const std::size_t need = kEnvelopeHeader + len;
    if (buf_.size() - off < need) break;
    const std::uint8_t type = buf_[off + 4];
    const std::uint32_t wire_crc = net::get_u32(buf_.data() + off + 5);
    if (wire_crc !=
        envelope_crc(type, buf_.data() + off + kEnvelopeHeader, len)) {
      // One flipped bit anywhere in the envelope (header or payload) lands
      // here: latch broken instead of handing a mis-framed or silently
      // altered message upward.
      broken_ = true;
      buf_.clear();
      return false;
    }
    Message m;
    m.type = static_cast<MsgType>(type);
    m.payload.assign(
        buf_.begin() + static_cast<std::ptrdiff_t>(off + kEnvelopeHeader),
        buf_.begin() + static_cast<std::ptrdiff_t>(off + need));
    ready_.push_back(std::move(m));
    off += need;
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

std::optional<Message> MessageReader::next() {
  if (ready_.empty()) return std::nullopt;
  Message m = std::move(ready_.front());
  ready_.pop_front();
  return m;
}

}  // namespace reads::cluster
