// Synchronous cluster client: the counterpart of the router's wire API for
// benches, tests, and command-line demos.
//
// One connection, blocking convenience calls on top of the nonblocking io
// layer: submit() writes a kSubmit envelope, poll() reassembles whatever
// the router answers, and the admin helpers (add/remove replica, stats,
// shutdown) each send a request and wait for the matching reply type.
// Interleaved non-matching messages (results racing an admin reply on a
// shared connection) are buffered in arrival order and handed back by the
// next poll() — waiting for one reply type never loses another.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cluster/io.hpp"
#include "cluster/protocol.hpp"

namespace reads::cluster {

class ClusterClient {
 public:
  /// Connect and introduce ourselves. Throws std::system_error when the
  /// router is unreachable.
  explicit ClusterClient(const std::string& endpoint,
                         Role role = Role::kClient,
                         double connect_timeout_ms = 5000.0);

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  bool connected() const noexcept { return fd_.valid(); }

  /// True once the connection can never produce another message: the
  /// socket died or the envelope stream latched broken. (poll() returning
  /// nullopt alone is ambiguous — it also means a timeout.)
  bool dead() const noexcept {
    return (!fd_.valid() || reader_.broken()) && pending_.empty();
  }

  /// Send one tick. False when the connection died mid-write.
  bool submit(const Submit& s);

  /// Next reassembled message from the router, waiting up to `timeout_ms`;
  /// nullopt on timeout or a dead connection.
  std::optional<Message> poll(double timeout_ms);

  // ---- admin conveniences (dedicated admin connection only) --------------

  /// Returns the new node id, 0 when the router could not connect to it
  /// (or the wait timed out).
  std::uint64_t add_replica(const std::string& endpoint, double timeout_ms);

  /// True once the router acknowledged the drained removal. The reply is
  /// deferred until every in-flight job on the node settled, so the
  /// timeout must cover a full drain.
  bool remove_replica(std::uint64_t node, double timeout_ms);

  /// Router stats JSON; empty string on timeout.
  std::string stats(double timeout_ms);

  /// Fire-and-forget graceful shutdown request.
  void shutdown_router();

 private:
  bool send(const std::vector<std::uint8_t>& bytes);
  /// Read the wire directly, bypassing `pending_` (wait_for's loop would
  /// otherwise re-examine what it just set aside, forever).
  std::optional<Message> next_from_wire(double timeout_ms);
  std::optional<Message> wait_for(MsgType type, double timeout_ms);

  Fd fd_;
  MessageReader reader_;
  /// Messages that arrived while wait_for() wanted a different type, in
  /// arrival order; poll() serves these before touching the socket.
  std::deque<Message> pending_;
};

}  // namespace reads::cluster
