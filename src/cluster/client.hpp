// Synchronous cluster client: the counterpart of the router's wire API for
// benches, tests, and command-line demos.
//
// One connection, blocking convenience calls on top of the nonblocking io
// layer: submit() writes a kSubmit envelope, poll() reassembles whatever
// the router answers, and the admin helpers (add/remove replica, stats,
// shutdown) each send a request and wait for the matching reply type.
// Admin helpers assume a dedicated connection — they discard interleaved
// non-matching messages, which would lose results on a traffic connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/io.hpp"
#include "cluster/protocol.hpp"

namespace reads::cluster {

class ClusterClient {
 public:
  /// Connect and introduce ourselves. Throws std::system_error when the
  /// router is unreachable.
  explicit ClusterClient(const std::string& endpoint,
                         Role role = Role::kClient,
                         double connect_timeout_ms = 5000.0);

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  bool connected() const noexcept { return fd_.valid(); }

  /// Send one tick. False when the connection died mid-write.
  bool submit(const Submit& s);

  /// Next reassembled message from the router, waiting up to `timeout_ms`;
  /// nullopt on timeout or a dead connection.
  std::optional<Message> poll(double timeout_ms);

  // ---- admin conveniences (dedicated admin connection only) --------------

  /// Returns the new node id, 0 when the router could not connect to it
  /// (or the wait timed out).
  std::uint64_t add_replica(const std::string& endpoint, double timeout_ms);

  /// True once the router acknowledged the drained removal. The reply is
  /// deferred until every in-flight job on the node settled, so the
  /// timeout must cover a full drain.
  bool remove_replica(std::uint64_t node, double timeout_ms);

  /// Router stats JSON; empty string on timeout.
  std::string stats(double timeout_ms);

  /// Fire-and-forget graceful shutdown request.
  void shutdown_router();

 private:
  bool send(const std::vector<std::uint8_t>& bytes);
  std::optional<Message> wait_for(MsgType type, double timeout_ms);

  Fd fd_;
  MessageReader reader_;
};

}  // namespace reads::cluster
