// Write-ahead journal for router survivability.
//
// The router's hard problem after a SIGKILL is not its own state — jobs in
// flight re-execute bit-identically anywhere — it is the promises it made
// to *other* processes: which replicas form the ring (so a restart can
// re-register them without an operator), which (stream, req_id) ticks were
// already answered (so a reconnecting client's resubmission is deduped to
// the stored reply instead of double-answered), and which SLO budgets were
// configured. RouterJournal persists exactly that minimal set as an
// append-only record stream:
//
//   [type : u8] [len : u32 LE] [payload : len bytes] [crc : u32 LE]
//
// with a CRC-32 (net::Crc32) over type + payload per record. Records are
// write(2)-appended with no fsync: the threat model is process death
// (SIGKILL, OOM-kill, crash) — the page cache survives all of those —
// not kernel or power failure, which for an edge control rack is the
// facility-wide machine-protection system's problem, not the router's.
// Replay stops at the first short or CRC-failing record, so a record torn
// by the kill itself is discarded instead of trusted.
//
// Record types:
//   kNode  — ring membership change: node id, endpoint, alive flag.
//            Replay is last-writer-wins per node id.
//   kSlo   — per-tenant SLO config (hard/best-effort budgets + margin).
//   kReply — one terminal answer: stream, req_id, serialized reply
//            envelope. Replay refills the dedup windows (bounded, FIFO).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/io.hpp"

namespace reads::cluster {

struct JournalNode {
  std::uint64_t node = 0;
  std::string endpoint;
  bool alive = true;
};

struct JournalSlo {
  double hard_deadline_ms = 3.0;
  double best_effort_deadline_ms = 100.0;
  double admission_margin = 0.9;
};

struct JournalReply {
  std::uint64_t stream = 0;
  std::uint64_t req_id = 0;
  std::vector<std::uint8_t> reply;  ///< the terminal envelope, verbatim
};

/// Everything a replay recovered, in record order.
struct JournalState {
  std::vector<JournalNode> nodes;    ///< last-writer-wins, alive only
  std::optional<JournalSlo> slo;     ///< last kSlo record
  std::vector<JournalReply> replies;
  std::uint64_t max_node_id = 0;     ///< highest node id ever journaled
};

class RouterJournal {
 public:
  RouterJournal() = default;

  /// Open (creating if absent) for appending. Throws std::system_error.
  explicit RouterJournal(const std::string& path);

  bool open() const noexcept { return fd_.valid(); }
  const std::string& path() const noexcept { return path_; }

  void record_node(const JournalNode& n);
  void record_slo(const JournalSlo& s);
  void record_reply(std::uint64_t stream, std::uint64_t req_id,
                    const std::vector<std::uint8_t>& reply);

  /// Replay an existing journal file; empty state when the file is missing
  /// or empty. Replay never throws on a damaged tail — it returns what was
  /// durable and valid.
  static JournalState replay(const std::string& path);

 private:
  void append(std::uint8_t type, const std::vector<std::uint8_t>& payload);

  std::string path_;
  Fd fd_;
};

}  // namespace reads::cluster
