// EINTR-safe nonblocking socket and event layer for the cluster tier.
//
// Everything above this file (protocol framing, the router's event loop,
// the replica server) speaks in terms of four primitives: listen_on /
// connect_to producing RAII fds, read_some / write_some that convert the
// POSIX error zoo into three clean outcomes (progress, would-block,
// connection gone), and a Poller that wraps poll(2) with per-fd read/write
// interest. Every syscall here retries EINTR internally — a SIGTERM landing
// mid-read must reach the shutdown logic as a flag check, never as a
// spurious connection error.
//
// Endpoints are spelled "tcp:host:port" or "uds:/path.sock"; binding
// tcp port 0 reports the kernel-assigned port back so test harnesses can
// spawn listeners without port coordination.
//
// The layer also exposes one deliberate seam for the chaos harness: an
// installable IoTap (set_io_tap) consulted by connect_to / accept_conn /
// read_some / write_some. A tap can refuse connects, clamp or stall
// writes, simulate EAGAIN storms, tear a connection mid-envelope, and
// corrupt bytes in transit — all without the protocol or router layers
// knowing chaos exists. Production runs leave the tap null; the check is
// a single relaxed atomic load per call.
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reads::cluster {

/// RAII file descriptor (EINTR-proof close; never throws).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

enum class Transport : std::uint8_t { kTcp, kUds };

struct Endpoint;

/// Chaos seam: an installed tap sees every socket the io layer creates
/// (connect_to / accept_conn register, Fd::reset unregisters) and may
/// perturb each read/write. Implementations must be thread-safe — client
/// threads and event loops call concurrently. Wake pipes and listeners
/// never register, so only real peer connections are ever perturbed.
class IoTap {
 public:
  /// gate_write verdict: tear the connection now (shutdown(2) + "gone").
  static constexpr std::ptrdiff_t kTear = -1;

  virtual ~IoTap() = default;

  /// A peer socket came into being (outbound = we connected, else accepted).
  virtual void on_open(int fd, bool outbound) = 0;
  /// The fd is being closed (also fires for untracked fds; ignore those).
  virtual void on_close(int fd) = 0;

  /// True to refuse this connect attempt (caller throws ECONNREFUSED).
  virtual bool refuse_connect(const Endpoint& ep) = 0;

  /// Called before a write of `len` bytes: return the number of bytes the
  /// wire will accept this attempt (0 simulates EAGAIN; may exceed actual
  /// socket capacity — the real send still governs), or kTear.
  virtual std::ptrdiff_t gate_write(int fd, std::size_t len) = 0;
  /// May corrupt the outgoing bytes; `data` is a private copy of what is
  /// about to hit the wire, never the caller's buffer.
  virtual void mangle_write(int fd, std::uint8_t* data, std::size_t len) = 0;

  /// False to make this read attempt spuriously would-block.
  virtual bool gate_read(int fd) = 0;
  /// May corrupt the bytes a successful read returned.
  virtual void mangle_read(int fd, std::uint8_t* data, std::size_t len) = 0;
};

/// Install (or clear, with nullptr) the process-wide tap. The caller keeps
/// ownership and must clear the tap before destroying it.
void set_io_tap(IoTap* tap) noexcept;
IoTap* io_tap() noexcept;

/// Parsed address: "tcp:host:port" (IPv4 dotted quad or "localhost") or
/// "uds:/absolute/path.sock".
struct Endpoint {
  Transport transport = Transport::kTcp;
  std::string host = "127.0.0.1";  ///< tcp only
  std::uint16_t port = 0;          ///< tcp only (0 = kernel-assigned)
  std::string path;                ///< uds only

  /// Throws std::invalid_argument on malformed specs (including UDS paths
  /// longer than sun_path allows).
  static Endpoint parse(const std::string& spec);
  std::string str() const;
};

struct Listener {
  Fd fd;
  Endpoint bound;  ///< actual address (tcp port 0 resolved via getsockname)
};

/// Bind + listen, nonblocking + CLOEXEC (+ SO_REUSEADDR for tcp; stale UDS
/// socket files are unlinked first). Throws std::system_error.
Listener listen_on(const Endpoint& ep);

/// Nonblocking connect, waiting up to `timeout_ms` for establishment; the
/// returned fd is nonblocking (+ TCP_NODELAY for tcp). Throws
/// std::system_error on refusal/timeout.
Fd connect_to(const Endpoint& ep, double timeout_ms);

/// Accept one pending connection (nonblocking + CLOEXEC + TCP_NODELAY);
/// invalid Fd when none is pending.
Fd accept_conn(int listen_fd);

void set_nonblocking(int fd);

/// One nonblocking read: >0 bytes read, 0 would-block, -1 peer gone
/// (EOF/ECONNRESET/EPIPE). EINTR retried internally.
std::ptrdiff_t read_some(int fd, std::uint8_t* buf, std::size_t len);

/// One nonblocking write: >=0 bytes written (0 = would-block), -1
/// connection gone. EINTR retried internally.
std::ptrdiff_t write_some(int fd, const std::uint8_t* buf, std::size_t len);

/// Write the whole buffer, parking in poll(2) while the socket is full.
/// `timeout_ms` < 0 waits indefinitely. False when the connection dies or
/// the timeout expires mid-message (the stream is unusable either way).
bool write_all(int fd, const std::uint8_t* data, std::size_t len,
               double timeout_ms = -1.0);

/// Read exactly `len` bytes, parking in poll(2) between fragments. False on
/// EOF, error, or timeout.
bool read_exact(int fd, std::uint8_t* data, std::size_t len,
                double timeout_ms = -1.0);

/// Nonblocking CLOEXEC pipe; the read end joins a Poller so another thread
/// (or a signal handler) can wake an event loop by writing one byte.
struct WakePipe {
  Fd r;
  Fd w;
  /// Async-signal-safe nudge (one byte; a full pipe is already a wakeup).
  void wake() const noexcept;
  /// Drain pending wake bytes (event-loop side).
  void drain() const noexcept;
};
WakePipe make_wake_pipe();

/// poll(2) wrapper: declare per-fd interest, wait once, query readiness.
/// Readiness queries are linear scans — connection tables here are tens of
/// entries, not thousands.
class Poller {
 public:
  void clear() { fds_.clear(); }
  void want(int fd, bool read, bool write);
  /// Number of ready fds (0 on timeout or EINTR).
  int wait(int timeout_ms);
  bool readable(int fd) const;  ///< POLLIN | POLLHUP | POLLERR
  bool writable(int fd) const;  ///< POLLOUT | POLLHUP | POLLERR

 private:
  short revents(int fd) const;
  std::vector<pollfd> fds_;
};

}  // namespace reads::cluster
