#include "cluster/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace reads::cluster {

namespace {

/// FNV-1a alone places structured input (sequential node ids, small stream
/// numbers — most bytes zero) into tight clumps on the 64-bit ring; with 3
/// nodes x 64 vnodes one node can end up owning no low-numbered stream at
/// all. A SplitMix64-style avalanche on the digest restores uniform
/// spreading while staying a pure function of its input (placement must be
/// identical across processes and runs).
std::uint64_t avalanche(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t point_hash(std::uint64_t node, std::uint64_t vnode) {
  std::uint8_t bytes[16];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>((node >> (8 * i)) & 0xFFu);
    bytes[8 + i] = static_cast<std::uint8_t>((vnode >> (8 * i)) & 0xFFu);
  }
  return avalanche(util::fnv1a64(bytes, sizeof(bytes)));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  if (vnodes_ == 0) {
    throw std::invalid_argument("HashRing: need at least one vnode");
  }
}

std::uint64_t HashRing::stream_hash(std::uint64_t stream) noexcept {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>((stream >> (8 * i)) & 0xFFu);
  }
  return avalanche(util::fnv1a64(bytes, sizeof(bytes)));
}

void HashRing::add(std::uint64_t node) {
  if (contains(node)) return;
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), node), node);
  points_.reserve(points_.size() + vnodes_);
  for (std::uint64_t v = 0; v < vnodes_; ++v) {
    points_.emplace_back(point_hash(node, v), node);
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::remove(std::uint64_t node) {
  const auto n = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (n == nodes_.end() || *n != node) return;
  nodes_.erase(n);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node](const auto& p) {
                                 return p.second == node;
                               }),
                points_.end());
}

bool HashRing::contains(std::uint64_t node) const noexcept {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

std::uint64_t HashRing::owner(std::uint64_t stream) const {
  if (points_.empty()) throw std::logic_error("HashRing: empty ring");
  const std::uint64_t h = stream_hash(stream);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const auto& p, std::uint64_t v) { return p.first < v; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

}  // namespace reads::cluster
