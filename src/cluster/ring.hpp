// Consistent-hash ring for stream -> replica pinning.
//
// Each node contributes `vnodes` points on a 64-bit ring (FNV-1a over the
// node id and vnode index); a stream belongs to the first point clockwise
// from its own hash. Adding or removing one node therefore moves only the
// streams in the arcs that node's points cover (~1/N of them) — the router
// builds its live-resharding drain set from exactly that delta, so ring
// placement must be deterministic across processes and runs (it is: pure
// FNV-1a, no RNG).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace reads::cluster {

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64);

  void add(std::uint64_t node);
  void remove(std::uint64_t node);
  bool contains(std::uint64_t node) const noexcept;
  /// Distinct nodes on the ring.
  std::size_t size() const noexcept { return nodes_.size(); }
  bool empty() const noexcept { return nodes_.empty(); }
  const std::vector<std::uint64_t>& nodes() const noexcept { return nodes_; }

  /// Owning node of `stream`; throws std::logic_error on an empty ring.
  std::uint64_t owner(std::uint64_t stream) const;

  /// Ring position of a stream (exposed for tests/diagnostics).
  static std::uint64_t stream_hash(std::uint64_t stream) noexcept;

 private:
  std::size_t vnodes_;
  std::vector<std::uint64_t> nodes_;  ///< sorted distinct node ids
  /// Sorted (point hash, node). Ties (astronomically unlikely) are broken
  /// by node id via the pair ordering, identically on every process.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> points_;
};

}  // namespace reads::cluster
