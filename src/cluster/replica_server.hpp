// Replica server: one process's serving capacity behind the cluster router.
//
// Wraps the in-process serve::Gateway stack (PR 3/4) behind a socket: an
// event loop accepts router connections, decodes kJob envelopes (one jumbo
// whole-ring packet each), converts readings to the backend's input frame
// via a caller-supplied decoder (the bench applies the deployed model's
// standardizer; tests use cheap synthetic backends), and submits to the
// gateway. A dedicated completion thread collects the gateway's futures in
// admission order and writes kResult envelopes back — so the event loop
// never blocks on inference and slow inference never stalls socket reads.
//
// Exactly-once from this process's perspective: every admitted job yields
// exactly one kResult (stop() drains the gateway before the completion
// thread exits, so a graceful shutdown never drops an admitted frame), and
// every refused job yields exactly one kShed. Determinism across replicas
// is inherited from the backend: QuantizedBackend is bit-exact, so any
// replica process loading the same cached firmware returns bit-identical
// answers — the property the router's crash-redispatch relies on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "cluster/io.hpp"
#include "cluster/protocol.hpp"
#include "serve/gateway.hpp"

namespace reads::cluster {

struct ReplicaServerConfig {
  Endpoint listen;
  serve::GatewayConfig gateway;
  /// Expected readings per jumbo packet; jobs with any other count are
  /// shed as kBadFrame (a framing-level sanity check — content integrity
  /// is the packet CRC).
  std::size_t monitors = 260;
  /// Completion FIFO capacity. The event loop blocks here when the backend
  /// falls this far behind — explicit backpressure to the router, whose
  /// per-replica outstanding cap should be smaller than this.
  std::size_t completion_capacity = 1024;
};

/// Convert a validated jumbo packet's readings into the backend's input
/// tensor (shape it (monitors, 1), decode counts, standardize, ...).
using FrameDecoder =
    std::function<void(std::span<const std::uint32_t>, tensor::Tensor&)>;

class ReplicaServer {
 public:
  /// Binds immediately (so bound() reports the kernel-assigned port before
  /// run()); one gateway replica per backend.
  ReplicaServer(ReplicaServerConfig cfg,
                std::vector<std::unique_ptr<serve::Backend>> backends,
                FrameDecoder decoder);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Actual listen address (tcp port 0 resolved).
  const Endpoint& bound() const noexcept { return listener_.bound; }

  /// Serve until request_stop(); runs the event loop on the calling thread
  /// and performs the graceful drain (gateway stop + completion flush)
  /// before returning.
  void run();

  /// Thread-safe and async-signal-safe stop request (atomic flag + pipe
  /// write): a SIGTERM handler may call this directly.
  void request_stop() noexcept {
    stop_.store(1, std::memory_order_relaxed);
    wake_.wake();
  }

  serve::Gateway& gateway() noexcept { return *gateway_; }

 private:
  struct Conn {
    Fd fd;
    MessageReader reader;
    /// Serializes kResult/kShed/kStatsReply writes from the completion
    /// thread and the event loop.
    std::mutex write_mutex;
    bool alive = true;
  };

  struct Pending {
    std::uint64_t gid = 0;
    std::shared_ptr<Conn> conn;
    std::future<serve::Response> response;
  };

  void completion_loop();
  void handle_message(const std::shared_ptr<Conn>& conn, const Message& msg);
  void handle_job(const std::shared_ptr<Conn>& conn, const Job& job);
  void send_on(const std::shared_ptr<Conn>& conn,
               const std::vector<std::uint8_t>& bytes);
  void send_shed(const std::shared_ptr<Conn>& conn, std::uint64_t gid,
                 ShedReason reason);

  ReplicaServerConfig cfg_;
  Listener listener_;
  WakePipe wake_;
  std::unique_ptr<serve::Gateway> gateway_;
  FrameDecoder decoder_;
  serve::BoundedQueue<Pending> completions_;
  std::thread completion_thread_;
  std::atomic<int> stop_{0};
  std::map<int, std::shared_ptr<Conn>> conns_;
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace reads::cluster
