// Resilient cluster client: at-least-once delivery over an unreliable wire.
//
// Wraps the synchronous ClusterClient with the client half of the cluster's
// exactly-once contract. The router remembers every terminal answer in a
// per-stream dedup window keyed by (stream, req_id); this client's job is
// the other half:
//
//  * Track every submitted tick until its terminal reply (kResult or kShed)
//    arrives, bounded by `max_unacked` — the window the router's dedup
//    depth must exceed.
//  * When the connection dies (torn socket, CRC-latched stream, refused
//    reconnect, SIGKILLed router), reconnect with exponential backoff and
//    deterministic jitter (seeded SplitMix64 — wall-clock never feeds the
//    decision stream), then resubmit every unacknowledged tick in req_id
//    order before anything new.
//
// A resubmitted tick the router already answered is served verbatim from
// its dedup window; one still in flight has its answer re-aimed at the new
// connection; one the router never saw just runs. In every case the client
// observes exactly one reply per tick, bit-identical to the single-process
// oracle — at-least-once on the wire, exactly-once in effect.
//
// Retries are bounded by each call's deadline, not a global attempt budget:
// a router outage longer than a poll() timeout surfaces as nullopt, and the
// next call picks the campaign back up where the backoff left it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cluster/client.hpp"
#include "cluster/protocol.hpp"

namespace reads::cluster {

struct ResilientClientConfig {
  double connect_timeout_ms = 1000.0;
  double backoff_initial_ms = 5.0;
  double backoff_max_ms = 250.0;
  /// Seed for the deterministic backoff jitter stream.
  std::uint64_t jitter_seed = 1;
  /// Submission window: submit() refuses (returns false) past this many
  /// unacknowledged ticks. Keep below the router's dedup_window.
  std::size_t max_unacked = 32;
};

class ResilientClient {
 public:
  /// Does NOT connect eagerly — the first submit()/poll() does, so a
  /// client may outlive (and predate) the router it talks to.
  explicit ResilientClient(std::string endpoint,
                           ResilientClientConfig cfg = {});

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Queue one tick for at-least-once delivery and try to send it now.
  /// False only when the unacked window is full (poll() first). A send
  /// that fails mid-wire still returns true: the tick is tracked and will
  /// be resubmitted on the next reconnect.
  bool submit(const Submit& s);

  /// Next message from the router, reconnecting and resubmitting as needed
  /// within `timeout_ms`. Terminal replies (kResult/kShed) acknowledge
  /// their tick before being returned.
  std::optional<Message> poll(double timeout_ms);

  bool connected() const noexcept { return conn_ && !conn_->dead(); }
  std::size_t unacked() const noexcept { return unacked_.size(); }
  std::uint64_t reconnects() const noexcept { return reconnects_; }
  std::uint64_t resubmissions() const noexcept { return resubmissions_; }

 private:
  /// Reconnect (backoff + jitter) and resubmit until connected or the
  /// deadline passes. True when a live connection exists on return.
  bool ensure_connected(double deadline_ms);
  void note_ack(const Message& msg);

  std::string endpoint_;
  ResilientClientConfig cfg_;
  std::optional<ClusterClient> conn_;
  /// Unacknowledged ticks by req_id (ascending = per-stream submit order,
  /// which the resubmission pass must preserve).
  std::map<std::uint64_t, Submit> unacked_;
  std::uint64_t jitter_state_ = 0;
  std::size_t attempt_ = 0;  ///< consecutive failures this outage
  std::uint64_t reconnects_ = 0;
  std::uint64_t resubmissions_ = 0;
};

}  // namespace reads::cluster
