#include "cluster/client.hpp"

#include <chrono>

namespace reads::cluster {

namespace {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClusterClient::ClusterClient(const std::string& endpoint, Role role,
                             double connect_timeout_ms)
    : fd_(connect_to(Endpoint::parse(endpoint), connect_timeout_ms)) {
  std::vector<std::uint8_t> out;
  append_hello(out, Hello{role, kProtocolVersion});
  send(out);
}

bool ClusterClient::send(const std::vector<std::uint8_t>& bytes) {
  if (!fd_.valid()) return false;
  if (!write_all(fd_.get(), bytes.data(), bytes.size(), 5000.0)) {
    fd_.reset();
    return false;
  }
  return true;
}

bool ClusterClient::submit(const Submit& s) {
  std::vector<std::uint8_t> out;
  append_submit(out, s);
  return send(out);
}

std::optional<Message> ClusterClient::poll(double timeout_ms) {
  if (!pending_.empty()) {
    Message msg = std::move(pending_.front());
    pending_.pop_front();
    return msg;
  }
  return next_from_wire(timeout_ms);
}

std::optional<Message> ClusterClient::next_from_wire(double timeout_ms) {
  const double deadline = steady_ms() + timeout_ms;
  Poller poller;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    if (auto msg = reader_.next()) return msg;
    if (!fd_.valid() || reader_.broken()) return std::nullopt;
    const double remaining = deadline - steady_ms();
    if (remaining <= 0.0) return std::nullopt;
    poller.clear();
    poller.want(fd_.get(), true, false);
    poller.wait(static_cast<int>(remaining) + 1);
    for (;;) {
      const std::ptrdiff_t n = read_some(fd_.get(), buf, sizeof(buf));
      if (n == 0) break;
      if (n < 0) {
        fd_.reset();
        break;
      }
      reader_.feed(buf, static_cast<std::size_t>(n));
    }
  }
}

std::optional<Message> ClusterClient::wait_for(MsgType type,
                                               double timeout_ms) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->type == type) {
      Message msg = std::move(*it);
      pending_.erase(it);
      return msg;
    }
  }
  const double deadline = steady_ms() + timeout_ms;
  for (;;) {
    const double remaining = deadline - steady_ms();
    if (remaining <= 0.0) return std::nullopt;
    auto msg = next_from_wire(remaining);
    if (!msg) return std::nullopt;
    if (msg->type == type) return msg;
    // A result racing an admin reply on a shared connection: set it aside
    // for the next poll() instead of losing it.
    pending_.push_back(std::move(*msg));
  }
}

std::uint64_t ClusterClient::add_replica(const std::string& endpoint,
                                         double timeout_ms) {
  std::vector<std::uint8_t> out;
  append_add_replica(out, AddReplica{endpoint});
  if (!send(out)) return 0;
  auto msg = wait_for(MsgType::kAdminOk, timeout_ms);
  if (!msg) return 0;
  return decode_admin_ok(msg->payload).token;
}

bool ClusterClient::remove_replica(std::uint64_t node, double timeout_ms) {
  std::vector<std::uint8_t> out;
  append_remove_replica(out, RemoveReplica{node});
  if (!send(out)) return false;
  auto msg = wait_for(MsgType::kAdminOk, timeout_ms);
  if (!msg) return false;
  const auto ok = decode_admin_ok(msg->payload);
  return ok.token == node && ok.info == "drained";
}

std::string ClusterClient::stats(double timeout_ms) {
  std::vector<std::uint8_t> out;
  append_stats_request(out);
  if (!send(out)) return {};
  auto msg = wait_for(MsgType::kStatsReply, timeout_ms);
  if (!msg) return {};
  return decode_stats_reply(msg->payload).json;
}

void ClusterClient::shutdown_router() {
  std::vector<std::uint8_t> out;
  append_shutdown(out);
  send(out);
}

}  // namespace reads::cluster
