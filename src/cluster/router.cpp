#include "cluster/router.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/stats.hpp"

namespace reads::cluster {

namespace {

double tp_ms(std::chrono::steady_clock::time_point t) noexcept {
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

}  // namespace

double Router::now_ms() noexcept { return tp_ms(Clock::now()); }

Router::Router(RouterConfig cfg)
    : cfg_(std::move(cfg)),
      listener_(listen_on(cfg_.listen)),
      wake_(make_wake_pipe()),
      ring_(cfg_.ring_vnodes),
      metrics_(1, cfg_.hard_deadline_ms) {
  for (const auto& ep : cfg_.replicas) {
    if (do_add_replica(ep) == 0) {
      throw std::runtime_error("Router: cannot reach initial replica " + ep);
    }
  }
}

Router::~Router() = default;

// ---- admin API (any thread) ---------------------------------------------

void Router::enqueue(Command cmd) {
  {
    std::lock_guard lock(command_mutex_);
    commands_.push_back(std::move(cmd));
  }
  wake_.wake();
}

std::uint64_t Router::add_replica(const std::string& endpoint) {
  Command cmd;
  cmd.kind = Command::Kind::kAdd;
  cmd.endpoint = endpoint;
  auto fut = cmd.add_result.get_future();
  enqueue(std::move(cmd));
  return fut.get();
}

bool Router::remove_replica(std::uint64_t node) {
  Command cmd;
  cmd.kind = Command::Kind::kRemove;
  cmd.node = node;
  auto fut = cmd.remove_result.get_future();
  enqueue(std::move(cmd));
  return fut.get();
}

std::string Router::stats_json() {
  Command cmd;
  cmd.kind = Command::Kind::kStats;
  auto fut = cmd.stats_result.get_future();
  enqueue(std::move(cmd));
  return fut.get();
}

void Router::process_commands() {
  std::vector<Command> batch;
  {
    std::lock_guard lock(command_mutex_);
    batch.swap(commands_);
  }
  for (auto& cmd : batch) {
    switch (cmd.kind) {
      case Command::Kind::kAdd:
        cmd.add_result.set_value(do_add_replica(cmd.endpoint));
        break;
      case Command::Kind::kRemove: {
        auto it = replicas_.find(cmd.node);
        if (it == replicas_.end()) {
          cmd.remove_result.set_value(false);
          break;
        }
        ReplicaConn& rc = *it->second;
        if (rc.state == NodeState::kReconnecting) {
          // Already off the ring and drained (the crash path redispatched
          // its jobs); removing it just cancels the reconnect campaign.
          cmd.remove_result.set_value(true);
          replicas_.erase(it);
          break;
        }
        rc.remove_promise.emplace(std::move(cmd.remove_result));
        do_remove_replica(rc);
        break;
      }
      case Command::Kind::kStats:
        cmd.stats_result.set_value(stats_json_now());
        break;
      case Command::Kind::kStop:
        begin_shutdown();
        break;
    }
  }
}

// ---- fleet membership ---------------------------------------------------

std::uint64_t Router::do_add_replica(const std::string& endpoint) {
  Endpoint ep;
  Fd fd;
  try {
    ep = Endpoint::parse(endpoint);
    fd = connect_to(ep, cfg_.connect_timeout_ms);
  } catch (const std::exception&) {
    return 0;
  }
  auto rc = std::make_unique<ReplicaConn>();
  rc->node = next_node_id_++;
  rc->endpoint = ep;
  rc->fd = std::move(fd);
  rc->rtt = serve::ServiceEstimator(cfg_.initial_rtt_est_ms);
  append_hello(rc->outbuf, Hello{Role::kAdmin, kProtocolVersion});
  const std::uint64_t node = rc->node;
  replicas_.emplace(node, std::move(rc));
  ring_.add(node);
  for (auto& [id, st] : streams_) reevaluate_stream(id, st);
  return node;
}

void Router::do_remove_replica(ReplicaConn& rc) {
  ring_.remove(rc.node);
  rc.state = NodeState::kRemoving;
  for (auto& [id, st] : streams_) reevaluate_stream(id, st);
  if (rc.outstanding.empty()) finished_removes_.push_back(rc.node);
}

void Router::finish_remove(std::uint64_t node, bool ok) {
  auto it = replicas_.find(node);
  if (it == replicas_.end()) return;
  ReplicaConn& rc = *it->second;
  if (rc.remove_promise) {
    rc.remove_promise->set_value(ok);
    rc.remove_promise.reset();
  }
  if (rc.remove_waiter_client != 0) {
    std::vector<std::uint8_t> out;
    append_admin_ok(out, AdminOk{node, ok ? "drained" : "dropped"});
    send_to_client(rc.remove_waiter_client, out);
  }
  replicas_.erase(it);
}

void Router::replica_gone(std::uint64_t node) {
  auto it = replicas_.find(node);
  if (it == replicas_.end()) return;
  ReplicaConn& rc = *it->second;
  ++counters_.replica_crashes;
  rc.fd.reset();
  rc.reader = MessageReader();
  rc.outbuf.clear();
  const bool removing = rc.state == NodeState::kRemoving;
  ring_.remove(node);  // no-op when already off (remove-drain crash)
  redispatch_outstanding(rc);
  if (removing) {
    // The drain can't complete, but the node is gone and its jobs were
    // re-homed — from the admin's perspective that IS the handoff.
    finished_removes_.push_back(node);
    return;
  }
  rc.state = NodeState::kReconnecting;
  rc.attempts = 0;
  rc.next_reconnect_ms = now_ms() + cfg_.reconnect_backoff_initial_ms;
}

void Router::redispatch_outstanding(ReplicaConn& rc) {
  auto jobs = std::move(rc.outstanding);
  rc.outstanding.clear();
  for (auto& [gid, inf] : jobs) {
    auto sit = streams_.find(inf.job.stream);
    if (sit != streams_.end() && sit->second.inflight > 0) {
      --sit->second.inflight;
    }
  }
  for (auto& [id, st] : streams_) reevaluate_stream(id, st);
  for (auto& [gid, inf] : jobs) {
    ++counters_.redispatched_jobs;
    metrics_.record_redispatched();
    ShedReason reason = ShedReason::kNoReplica;
    const std::uint64_t client = inf.client;
    const std::uint64_t req_id = inf.req_id;
    // Accepted jobs are never re-judged: route with admission bypassed.
    // The surviving replica re-executes bit-identically, so the client
    // still observes exactly one answer with exactly the same bits.
    if (route_job(std::move(inf), false, &reason) == RouteOutcome::kShed) {
      reply_shed(client, req_id, reason);
    }
  }
}

void Router::try_reconnects() {
  const double now = now_ms();
  std::vector<std::uint64_t> give_up;
  for (auto& [node, rcp] : replicas_) {
    ReplicaConn& rc = *rcp;
    if (rc.state != NodeState::kReconnecting) continue;
    if (now < rc.next_reconnect_ms) continue;
    try {
      // Short budget: this blocks the loop, and a dead host answers with
      // ECONNREFUSED immediately anyway.
      rc.fd = connect_to(rc.endpoint, 200.0);
      rc.reader = MessageReader();
      rc.outbuf.clear();
      append_hello(rc.outbuf, Hello{Role::kAdmin, kProtocolVersion});
      rc.state = NodeState::kConnected;
      rc.rtt = serve::ServiceEstimator(cfg_.initial_rtt_est_ms);
      ++counters_.reconnects;
      ring_.add(node);
      for (auto& [id, st] : streams_) reevaluate_stream(id, st);
    } catch (const std::exception&) {
      ++rc.attempts;
      if (rc.attempts >= cfg_.reconnect_attempts) {
        give_up.push_back(node);
        continue;
      }
      const double factor = static_cast<double>(
          1ull << std::min<std::size_t>(rc.attempts, 20));
      rc.next_reconnect_ms =
          now + std::min(cfg_.reconnect_backoff_max_ms,
                         cfg_.reconnect_backoff_initial_ms * factor);
    }
  }
  for (std::uint64_t node : give_up) finish_remove(node, false);
}

// ---- stream routing -----------------------------------------------------

void Router::send_job(ReplicaConn& rc, InFlight&& inf) {
  const double budget = inf.job.slo == 0 ? cfg_.hard_deadline_ms
                                         : cfg_.best_effort_deadline_ms;
  const double elapsed = now_ms() - tp_ms(inf.arrival);
  inf.job.deadline_ms = std::max(0.05, budget - elapsed);
  inf.send_ms = now_ms();
  append_job(rc.outbuf, inf.job);
  auto sit = streams_.find(inf.job.stream);
  if (sit != streams_.end()) ++sit->second.inflight;
  const std::uint64_t gid = inf.job.gid;
  rc.outstanding.emplace(gid, std::move(inf));
}

Router::RouteOutcome Router::route_job(InFlight&& inf, bool run_admission,
                                       ShedReason* shed_reason) {
  auto sit = streams_.find(inf.job.stream);
  StreamState& st = sit->second;
  if (st.draining) {
    if (st.held.size() >= cfg_.max_held_per_stream) {
      ++counters_.held_overflow;
      *shed_reason = ShedReason::kHeldTooLong;
      return RouteOutcome::kShed;
    }
    ++counters_.held_jobs;
    st.held.push_back(std::move(inf));
    return RouteOutcome::kHeld;
  }
  if (ring_.empty()) {
    ++counters_.no_replica;
    *shed_reason = ShedReason::kNoReplica;
    return RouteOutcome::kShed;
  }
  if (!st.pinned) {
    st.pin = ring_.owner(inf.job.stream);
    st.pinned = true;
  }
  ReplicaConn& rc = *replicas_.find(st.pin)->second;
  if (run_admission) {
    if (rc.outstanding.size() >= cfg_.max_outstanding_per_replica) {
      *shed_reason = ShedReason::kQueueFull;
      return RouteOutcome::kShed;
    }
    if (inf.job.slo == 0) {
      // Same RFC-6298 prediction the in-process gateway runs, against the
      // endpoint's round-trip estimator: backlog x mean + mean + 4 x dev.
      const double elapsed = now_ms() - tp_ms(inf.arrival);
      const double predicted = rc.rtt.predicted_ms(rc.outstanding.size());
      if (elapsed + predicted >
          cfg_.admission_margin * cfg_.hard_deadline_ms) {
        *shed_reason = ShedReason::kPredictedLate;
        return RouteOutcome::kShed;
      }
    }
  }
  send_job(rc, std::move(inf));
  return RouteOutcome::kSent;
}

void Router::on_job_settled(std::uint64_t stream_id) {
  auto sit = streams_.find(stream_id);
  if (sit == streams_.end()) return;
  StreamState& st = sit->second;
  if (st.inflight > 0) --st.inflight;
  if (st.draining && st.inflight == 0) reevaluate_stream(stream_id, st);
}

void Router::reevaluate_stream(std::uint64_t stream_id, StreamState& st) {
  if (!st.pinned) return;
  if (ring_.empty()) {
    st.pinned = false;
    st.draining = false;
    while (!st.held.empty()) {
      InFlight inf = std::move(st.held.front());
      st.held.pop_front();
      ++counters_.no_replica;
      reply_shed(inf.client, inf.req_id, ShedReason::kNoReplica);
    }
    return;
  }
  const std::uint64_t owner = ring_.owner(stream_id);
  if (owner == st.pin) {
    st.draining = false;
    flush_held(stream_id, st);
    return;
  }
  if (st.inflight == 0) {
    // The drain point: nothing of this stream is in flight anywhere, so
    // the pin can move without ever having the stream on two replicas.
    st.pin = owner;
    st.draining = false;
    ++counters_.resharded_streams;
    flush_held(stream_id, st);
  } else {
    st.draining = true;
  }
}

void Router::flush_held(std::uint64_t stream_id, StreamState& st) {
  while (!st.held.empty() && !st.draining) {
    InFlight inf = std::move(st.held.front());
    st.held.pop_front();
    ShedReason reason = ShedReason::kNoReplica;
    const std::uint64_t client = inf.client;
    const std::uint64_t req_id = inf.req_id;
    if (route_job(std::move(inf), false, &reason) == RouteOutcome::kShed) {
      reply_shed(client, req_id, reason);
    }
  }
  (void)stream_id;
}

// ---- client handling ----------------------------------------------------

void Router::reply_shed(std::uint64_t client_id, std::uint64_t req_id,
                        ShedReason reason) {
  std::vector<std::uint8_t> out;
  append_shed(out, Shed{req_id, reason});
  send_to_client(client_id, out);
}

void Router::send_to_client(std::uint64_t client_id,
                            const std::vector<std::uint8_t>& bytes) {
  auto it = clients_.find(client_id);
  if (it == clients_.end() || !it->second.alive) {
    ++counters_.undeliverable_results;
    return;
  }
  ClientConn& c = it->second;
  c.outbuf.insert(c.outbuf.end(), bytes.begin(), bytes.end());
  flush_outbuf(c.fd.get(), c.outbuf, c.alive);
}

void Router::flush_outbuf(int fd, std::vector<std::uint8_t>& outbuf,
                          bool& alive) {
  if (!alive || outbuf.empty()) return;
  const std::ptrdiff_t n = write_some(fd, outbuf.data(), outbuf.size());
  if (n < 0) {
    alive = false;
    outbuf.clear();
    return;
  }
  if (n > 0) {
    outbuf.erase(outbuf.begin(), outbuf.begin() + n);
  }
}

void Router::handle_submit(ClientConn& c, Submit&& submit) {
  metrics_.record_arrival();
  if (shutting_down_) {
    metrics_.record_shed_shutdown();
    reply_shed(c.id, submit.req_id, ShedReason::kShutdown);
    return;
  }
  StreamState& st =
      streams_.try_emplace(submit.stream, cfg_.assembler).first->second;
  if (submit.packets.empty()) {
    ++counters_.bad_frames;
    reply_shed(c.id, submit.req_id, ShedReason::kBadFrame);
    return;
  }
  const std::uint32_t seq = submit.packets.front().sequence;
  deliveries_.clear();
  for (auto& p : submit.packets) {
    deliveries_.push_back(net::Delivery{std::move(p), 0.0, false});
  }
  const auto frame = st.assembler.assemble(seq, deliveries_);
  if (!frame.complete()) {
    // Some hub packet failed the gauntlet (CRC, layout, sequence,
    // duplicate). The frame the assembler substituted is last-known data —
    // fine for a resilient control loop, but a cluster client asked us to
    // serve *this* tick, so the honest terminal answer is a shed.
    ++counters_.bad_frames;
    reply_shed(c.id, submit.req_id, ShedReason::kBadFrame);
    return;
  }

  // Re-seal the whole assembled ring as one jumbo packet. encode/decode is
  // lossless at digitizer magnitudes, so the replica reconstructs the
  // assembler's output bit-for-bit.
  net::BlmPacket jumbo;
  jumbo.hub_id = 0;
  jumbo.sequence = seq;
  jumbo.first_monitor = 0;
  const auto raw = frame.raw.flat();
  jumbo.readings.reserve(raw.size());
  for (float v : raw) {
    jumbo.readings.push_back(net::encode_reading(static_cast<double>(v)));
  }
  net::seal_packet(jumbo);

  InFlight inf;
  inf.job.gid = next_gid_++;
  inf.job.stream = submit.stream;
  inf.job.slo = submit.slo;
  inf.job.packet = std::move(jumbo);
  inf.client = c.id;
  inf.req_id = submit.req_id;
  inf.arrival = Clock::now();

  ShedReason reason = ShedReason::kNoReplica;
  const auto outcome = route_job(std::move(inf), cfg_.admission_control,
                                 &reason);
  if (outcome == RouteOutcome::kShed) {
    switch (reason) {
      case ShedReason::kPredictedLate:
        metrics_.record_shed_predicted_late();
        break;
      case ShedReason::kQueueFull:
        metrics_.record_shed_queue_full();
        break;
      case ShedReason::kShutdown:
        metrics_.record_shed_shutdown();
        break;
      default:
        // Cluster-only outcomes (kNoReplica/kHeldTooLong) live in
        // counters_, already incremented at the routing decision.
        break;
    }
    reply_shed(c.id, submit.req_id, reason);
    return;
  }
  metrics_.record_admitted();
}

void Router::handle_client_message(ClientConn& c, const Message& msg) {
  switch (msg.type) {
    case MsgType::kHello:
      (void)decode_hello(msg.payload);
      break;
    case MsgType::kSubmit:
      handle_submit(c, decode_submit(msg.payload));
      break;
    case MsgType::kAddReplica: {
      const auto add = decode_add_replica(msg.payload);
      const std::uint64_t node = do_add_replica(add.endpoint);
      std::vector<std::uint8_t> out;
      append_admin_ok(out, AdminOk{node, node ? add.endpoint
                                              : "connect failed"});
      send_to_client(c.id, out);
      break;
    }
    case MsgType::kRemoveReplica: {
      const auto rem = decode_remove_replica(msg.payload);
      auto it = replicas_.find(rem.node);
      if (it == replicas_.end()) {
        std::vector<std::uint8_t> out;
        append_admin_ok(out, AdminOk{0, "unknown node"});
        send_to_client(c.id, out);
        break;
      }
      ReplicaConn& rc = *it->second;
      rc.remove_waiter_client = c.id;
      if (rc.state == NodeState::kReconnecting) {
        finished_removes_.push_back(rc.node);
      } else {
        // The kAdminOk reply is deferred until the node is fully drained:
        // the acknowledgement IS the exactly-once handoff confirmation.
        do_remove_replica(rc);
      }
      break;
    }
    case MsgType::kStatsRequest: {
      std::vector<std::uint8_t> out;
      append_stats_reply(out, StatsReply{stats_json_now()});
      send_to_client(c.id, out);
      break;
    }
    case MsgType::kShutdown:
      begin_shutdown();
      break;
    default:
      break;
  }
}

void Router::handle_replica_message(ReplicaConn& rc, const Message& msg) {
  if (msg.type == MsgType::kResult) {
    Result r = decode_result(msg.payload);
    auto it = rc.outstanding.find(r.id);
    if (it == rc.outstanding.end()) {
      // Exactly-once dedup: a ghost of a crash-redispatch (both the dying
      // and the surviving replica executed the job) or a stale answer.
      ++counters_.duplicate_results;
      return;
    }
    InFlight inf = std::move(it->second);
    rc.outstanding.erase(it);
    rc.rtt.observe(now_ms() - inf.send_ms);

    const double budget = inf.job.slo == 0 ? cfg_.hard_deadline_ms
                                           : cfg_.best_effort_deadline_ms;
    const double e2e = now_ms() - tp_ms(inf.arrival);
    const double queue = std::max(0.0, inf.send_ms - tp_ms(inf.arrival));
    const bool miss = e2e > budget;
    metrics_.record_batch(0, 0.0, std::span<const double>(&queue, 1),
                          std::span<const double>(&e2e, 1), miss ? 1 : 0);

    r.id = inf.req_id;
    r.deadline_met = miss ? 0 : 1;
    std::vector<std::uint8_t> out;
    append_result(out, r);
    send_to_client(inf.client, out);
    on_job_settled(inf.job.stream);
  } else if (msg.type == MsgType::kShed) {
    const Shed s = decode_shed(msg.payload);
    auto it = rc.outstanding.find(s.id);
    if (it == rc.outstanding.end()) {
      ++counters_.duplicate_results;
      return;
    }
    InFlight inf = std::move(it->second);
    rc.outstanding.erase(it);
    ++counters_.replica_sheds;
    reply_shed(inf.client, inf.req_id, s.reason);
    on_job_settled(inf.job.stream);
  }
  if (rc.state == NodeState::kRemoving && rc.outstanding.empty()) {
    finished_removes_.push_back(rc.node);
  }
}

// ---- event loop ---------------------------------------------------------

void Router::accept_clients() {
  for (;;) {
    Fd fd = accept_conn(listener_.fd.get());
    if (!fd.valid()) break;
    ClientConn c;
    c.id = next_client_id_++;
    c.fd = std::move(fd);
    clients_.emplace(c.id, std::move(c));
  }
}

void Router::read_client(ClientConn& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n = read_some(c.fd.get(), buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      c.alive = false;
      return;
    }
    c.reader.feed(buf, static_cast<std::size_t>(n));
  }
  if (c.reader.broken()) {
    c.alive = false;
    return;
  }
  while (auto msg = c.reader.next()) {
    try {
      handle_client_message(c, *msg);
    } catch (const std::exception&) {
      c.alive = false;
      return;
    }
  }
}

void Router::read_replica(ReplicaConn& rc) {
  std::uint8_t buf[64 * 1024];
  bool gone = false;
  for (;;) {
    const std::ptrdiff_t n = read_some(rc.fd.get(), buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      gone = true;
      break;
    }
    rc.reader.feed(buf, static_cast<std::size_t>(n));
  }
  if (rc.reader.broken()) gone = true;
  while (auto msg = rc.reader.next()) {
    try {
      handle_replica_message(rc, *msg);
    } catch (const std::exception&) {
      gone = true;
      break;
    }
  }
  if (gone) gone_replicas_.push_back(rc.node);
}

void Router::begin_shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  shutdown_start_ms_ = now_ms();
  listener_.fd.reset();
  // Close-then-drain: everything already accepted is flushed to the fleet
  // (admission bypassed — acceptance is a promise), then the loop stays up
  // until every outstanding job has answered.
  for (auto& [id, st] : streams_) {
    st.draining = false;
    flush_held(id, st);
  }
}

bool Router::shutdown_drained() const {
  for (const auto& [node, rc] : replicas_) {
    if (!rc->outstanding.empty()) return false;
    if (!rc->outbuf.empty() && rc->state != NodeState::kReconnecting) {
      return false;
    }
  }
  for (const auto& [id, st] : streams_) {
    if (!st.held.empty()) return false;
  }
  for (const auto& [id, c] : clients_) {
    if (c.alive && !c.outbuf.empty()) return false;
  }
  return true;
}

void Router::run() {
  started_ = Clock::now();
  Poller poller;
  std::vector<std::uint64_t> dead_clients;
  for (;;) {
    poller.clear();
    if (listener_.fd.valid()) poller.want(listener_.fd.get(), true, false);
    poller.want(wake_.r.get(), true, false);
    for (auto& [id, c] : clients_) {
      poller.want(c.fd.get(), true, !c.outbuf.empty());
    }
    for (auto& [node, rc] : replicas_) {
      if (rc->state == NodeState::kReconnecting) continue;
      poller.want(rc->fd.get(), true, !rc->outbuf.empty());
    }
    poller.wait(20);
    wake_.drain();

    process_commands();
    if (stop_.load(std::memory_order_relaxed) != 0) begin_shutdown();

    if (listener_.fd.valid() && poller.readable(listener_.fd.get())) {
      accept_clients();
    }

    for (auto& [id, c] : clients_) {
      if (c.alive && poller.readable(c.fd.get())) read_client(c);
      if (c.alive && poller.writable(c.fd.get())) {
        flush_outbuf(c.fd.get(), c.outbuf, c.alive);
      }
    }
    dead_clients.clear();
    for (auto& [id, c] : clients_) {
      if (!c.alive) dead_clients.push_back(id);
    }
    for (std::uint64_t id : dead_clients) clients_.erase(id);

    for (auto& [node, rc] : replicas_) {
      if (rc->state == NodeState::kReconnecting) continue;
      if (poller.readable(rc->fd.get())) read_replica(*rc);
      if (rc->fd.valid() && poller.writable(rc->fd.get())) {
        bool alive = true;
        flush_outbuf(rc->fd.get(), rc->outbuf, alive);
        if (!alive) gone_replicas_.push_back(node);
      }
    }
    for (std::uint64_t node : gone_replicas_) replica_gone(node);
    gone_replicas_.clear();

    for (std::uint64_t node : finished_removes_) finish_remove(node, true);
    finished_removes_.clear();

    try_reconnects();

    if (shutting_down_) {
      const bool timed_out =
          now_ms() - shutdown_start_ms_ > cfg_.drain_timeout_ms;
      if (shutdown_drained() || timed_out) break;
    }
  }

  // Last-gasp delivery: push any remaining buffered replies synchronously
  // so a drained shutdown really leaves no accepted frame unanswered.
  for (auto& [id, c] : clients_) {
    if (c.alive && !c.outbuf.empty()) {
      write_all(c.fd.get(), c.outbuf.data(), c.outbuf.size(), 500.0);
    }
  }
  for (auto& [node, rc] : replicas_) {
    if (rc->remove_promise) rc->remove_promise->set_value(false);
  }
  process_commands();  // answer any admin stragglers instead of hanging them
  clients_.clear();
  replicas_.clear();
}

// ---- stats --------------------------------------------------------------

std::string Router::stats_json_now() {
  auto snap = metrics_.snapshot();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - started_).count();
  std::ostringstream out;
  out << "{\"router\": " << snap.to_json(wall_s, true)
      << ", \"cluster_counters\": {"
      << "\"bad_frames\": " << counters_.bad_frames
      << ", \"no_replica\": " << counters_.no_replica
      << ", \"held_overflow\": " << counters_.held_overflow
      << ", \"held_jobs\": " << counters_.held_jobs
      << ", \"resharded_streams\": " << counters_.resharded_streams
      << ", \"replica_crashes\": " << counters_.replica_crashes
      << ", \"reconnects\": " << counters_.reconnects
      << ", \"redispatched_jobs\": " << counters_.redispatched_jobs
      << ", \"duplicate_results\": " << counters_.duplicate_results
      << ", \"undeliverable_results\": " << counters_.undeliverable_results
      << ", \"replica_sheds\": " << counters_.replica_sheds << "}"
      << ", \"nodes\": [";
  bool first = true;
  for (const auto& [node, rc] : replicas_) {
    if (!first) out << ", ";
    first = false;
    const char* state = rc->state == NodeState::kConnected ? "connected"
                        : rc->state == NodeState::kRemoving ? "removing"
                                                             : "reconnecting";
    out << "{\"node\": " << node << ", \"endpoint\": \""
        << rc->endpoint.str() << "\", \"outstanding\": "
        << rc->outstanding.size() << ", \"rtt_est_ms\": "
        << util::json_double(rc->rtt.est_ms()) << ", \"state\": \"" << state
        << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace reads::cluster
