#include "cluster/router.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/stats.hpp"

namespace reads::cluster {

namespace {

double tp_ms(std::chrono::steady_clock::time_point t) noexcept {
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

/// The journaled SLO config must win before `metrics_` is built from the
/// deadline fields, so it is applied to the config on the way into the
/// member-initializer list (the membership/reply replay happens in the
/// constructor body, where members exist).
RouterConfig apply_journal_slo(RouterConfig cfg) {
  if (!cfg.journal_path.empty()) {
    const JournalState st = RouterJournal::replay(cfg.journal_path);
    if (st.slo) {
      cfg.hard_deadline_ms = st.slo->hard_deadline_ms;
      cfg.best_effort_deadline_ms = st.slo->best_effort_deadline_ms;
      cfg.admission_margin = st.slo->admission_margin;
    }
  }
  return cfg;
}

}  // namespace

double Router::now_ms() noexcept { return tp_ms(Clock::now()); }

Router::Router(RouterConfig cfg)
    : cfg_(apply_journal_slo(std::move(cfg))),
      listener_(listen_on(cfg_.listen)),
      wake_(make_wake_pipe()),
      ring_(cfg_.ring_vnodes),
      metrics_(1, cfg_.hard_deadline_ms) {
  JournalState recovered;
  if (!cfg_.journal_path.empty()) {
    recovered = RouterJournal::replay(cfg_.journal_path);
    journal_ = RouterJournal(cfg_.journal_path);
    // Re-journal the effective SLO so a journal truncated to just this
    // incarnation's records still replays the full config.
    journal_.record_slo(JournalSlo{cfg_.hard_deadline_ms,
                                   cfg_.best_effort_deadline_ms,
                                   cfg_.admission_margin});
  }
  if (!recovered.nodes.empty()) {
    // Recovery mode: the journaled membership IS the fleet — cfg_.replicas
    // described the cluster that first formed, the journal describes the
    // cluster as the previous incarnation last knew it. Forced node ids
    // keep every stream's ring placement exactly where it was.
    next_node_id_ = recovered.max_node_id + 1;
    for (const auto& n : recovered.nodes) {
      recover_replica(n.node, n.endpoint);
      ++counters_.journal_recovered_nodes;
    }
  } else {
    for (const auto& ep : cfg_.replicas) {
      if (do_add_replica(ep) == 0) {
        throw std::runtime_error("Router: cannot reach initial replica " + ep);
      }
    }
  }
  for (const auto& r : recovered.replies) {
    dedup_store(r.stream, r.req_id, r.reply, /*journal=*/false);
    ++counters_.journal_recovered_replies;
  }
}

Router::~Router() = default;

// ---- admin API (any thread) ---------------------------------------------

void Router::enqueue(Command cmd) {
  {
    std::lock_guard lock(command_mutex_);
    commands_.push_back(std::move(cmd));
  }
  wake_.wake();
}

std::uint64_t Router::add_replica(const std::string& endpoint) {
  Command cmd;
  cmd.kind = Command::Kind::kAdd;
  cmd.endpoint = endpoint;
  auto fut = cmd.add_result.get_future();
  enqueue(std::move(cmd));
  return fut.get();
}

bool Router::remove_replica(std::uint64_t node) {
  Command cmd;
  cmd.kind = Command::Kind::kRemove;
  cmd.node = node;
  auto fut = cmd.remove_result.get_future();
  enqueue(std::move(cmd));
  return fut.get();
}

std::string Router::stats_json() {
  Command cmd;
  cmd.kind = Command::Kind::kStats;
  auto fut = cmd.stats_result.get_future();
  enqueue(std::move(cmd));
  return fut.get();
}

void Router::process_commands() {
  std::vector<Command> batch;
  {
    std::lock_guard lock(command_mutex_);
    batch.swap(commands_);
  }
  for (auto& cmd : batch) {
    switch (cmd.kind) {
      case Command::Kind::kAdd:
        cmd.add_result.set_value(do_add_replica(cmd.endpoint));
        break;
      case Command::Kind::kRemove: {
        auto it = replicas_.find(cmd.node);
        if (it == replicas_.end()) {
          cmd.remove_result.set_value(false);
          break;
        }
        ReplicaConn& rc = *it->second;
        if (rc.state == NodeState::kReconnecting) {
          // Already off the ring and drained (the crash path redispatched
          // its jobs); removing it just cancels the reconnect campaign.
          cmd.remove_result.set_value(true);
          replicas_.erase(it);
          break;
        }
        rc.remove_promise.emplace(std::move(cmd.remove_result));
        do_remove_replica(rc);
        break;
      }
      case Command::Kind::kStats:
        cmd.stats_result.set_value(stats_json_now());
        break;
      case Command::Kind::kStop:
        begin_shutdown();
        break;
    }
  }
}

// ---- fleet membership ---------------------------------------------------

std::uint64_t Router::do_add_replica(const std::string& endpoint) {
  Endpoint ep;
  Fd fd;
  try {
    ep = Endpoint::parse(endpoint);
    fd = connect_to(ep, cfg_.connect_timeout_ms);
  } catch (const std::exception&) {
    return 0;
  }
  auto rc = std::make_unique<ReplicaConn>();
  rc->node = next_node_id_++;
  rc->endpoint = ep;
  rc->fd = std::move(fd);
  rc->rtt = serve::ServiceEstimator(cfg_.initial_rtt_est_ms);
  rc->last_progress_ms = now_ms();
  append_hello(rc->outbuf, Hello{Role::kAdmin, kProtocolVersion});
  const std::uint64_t node = rc->node;
  replicas_.emplace(node, std::move(rc));
  ring_.add(node);
  if (journal_.open()) journal_.record_node(JournalNode{node, ep.str(), true});
  for (auto& [id, st] : streams_) reevaluate_stream(id, st);
  return node;
}

void Router::recover_replica(std::uint64_t node, const std::string& endpoint) {
  auto rc = std::make_unique<ReplicaConn>();
  rc->node = node;
  rc->rtt = serve::ServiceEstimator(cfg_.initial_rtt_est_ms);
  try {
    rc->endpoint = Endpoint::parse(endpoint);
    rc->fd = connect_to(rc->endpoint, cfg_.connect_timeout_ms);
    append_hello(rc->outbuf, Hello{Role::kAdmin, kProtocolVersion});
    rc->last_progress_ms = now_ms();
    replicas_.emplace(node, std::move(rc));
    ring_.add(node);
  } catch (const std::exception&) {
    // Journaled but unreachable right now. A fresh cluster that never
    // formed is a config error worth throwing for; a *restarting* router
    // refusing to come back up because one replica is still rebooting
    // would turn a partial outage into a total one — quarantine it and
    // let the backoff campaign decide.
    rc->state = NodeState::kReconnecting;
    rc->attempts = 0;
    rc->next_reconnect_ms = now_ms() + cfg_.reconnect_backoff_initial_ms;
    replicas_.emplace(node, std::move(rc));
  }
}

void Router::do_remove_replica(ReplicaConn& rc) {
  ring_.remove(rc.node);
  rc.state = NodeState::kRemoving;
  for (auto& [id, st] : streams_) reevaluate_stream(id, st);
  if (rc.outstanding.empty()) finished_removes_.push_back(rc.node);
}

void Router::finish_remove(std::uint64_t node, bool ok) {
  auto it = replicas_.find(node);
  if (it == replicas_.end()) return;
  ReplicaConn& rc = *it->second;
  if (rc.remove_promise) {
    rc.remove_promise->set_value(ok);
    rc.remove_promise.reset();
  }
  if (rc.remove_waiter_client != 0) {
    std::vector<std::uint8_t> out;
    append_admin_ok(out, AdminOk{node, ok ? "drained" : "dropped"});
    send_to_client(rc.remove_waiter_client, out);
  }
  if (journal_.open()) {
    journal_.record_node(JournalNode{node, std::string(), false});
  }
  replicas_.erase(it);
}

void Router::replica_gone(std::uint64_t node) {
  auto it = replicas_.find(node);
  if (it == replicas_.end()) return;
  ReplicaConn& rc = *it->second;
  // Already quarantined: a second verdict in the same loop pass (stall kick
  // + read error, or an overflow during its own redispatch) is stale.
  if (rc.state == NodeState::kReconnecting) return;
  ++counters_.replica_crashes;
  rc.fd.reset();
  rc.reader = MessageReader();
  rc.outbuf.clear();
  const bool removing = rc.state == NodeState::kRemoving;
  ring_.remove(node);  // no-op when already off (remove-drain crash)
  redispatch_outstanding(rc);
  if (removing) {
    // The drain can't complete, but the node is gone and its jobs were
    // re-homed — from the admin's perspective that IS the handoff.
    finished_removes_.push_back(node);
    return;
  }
  rc.state = NodeState::kReconnecting;
  rc.attempts = 0;
  rc.next_reconnect_ms = now_ms() + cfg_.reconnect_backoff_initial_ms;
}

void Router::redispatch_outstanding(ReplicaConn& rc) {
  auto jobs = std::move(rc.outstanding);
  rc.outstanding.clear();
  for (auto& [gid, inf] : jobs) {
    auto sit = streams_.find(inf.job.stream);
    if (sit != streams_.end() && sit->second.inflight > 0) {
      --sit->second.inflight;
    }
  }
  for (auto& [id, st] : streams_) reevaluate_stream(id, st);
  for (auto& [gid, inf] : jobs) {
    ++counters_.redispatched_jobs;
    metrics_.record_redispatched();
    ShedReason reason = ShedReason::kNoReplica;
    const std::uint64_t stream = inf.job.stream;
    const std::uint64_t client = inf.client;
    const std::uint64_t req_id = inf.req_id;
    // Accepted jobs are never re-judged: route with admission bypassed.
    // The surviving replica re-executes bit-identically, so the client
    // still observes exactly one answer with exactly the same bits.
    if (route_job(std::move(inf), false, &reason) == RouteOutcome::kShed) {
      reply_shed(stream, client, req_id, reason);
    }
  }
}

void Router::try_reconnects() {
  const double now = now_ms();
  std::vector<std::uint64_t> give_up;
  for (auto& [node, rcp] : replicas_) {
    ReplicaConn& rc = *rcp;
    if (rc.state != NodeState::kReconnecting) continue;
    if (now < rc.next_reconnect_ms) continue;
    try {
      // Short budget: this blocks the loop, and a dead host answers with
      // ECONNREFUSED immediately anyway.
      rc.fd = connect_to(rc.endpoint, 200.0);
      rc.reader = MessageReader();
      rc.outbuf.clear();
      append_hello(rc.outbuf, Hello{Role::kAdmin, kProtocolVersion});
      rc.state = NodeState::kConnected;
      rc.rtt = serve::ServiceEstimator(cfg_.initial_rtt_est_ms);
      rc.last_progress_ms = now;
      ++counters_.reconnects;
      ring_.add(node);
      for (auto& [id, st] : streams_) reevaluate_stream(id, st);
    } catch (const std::exception&) {
      ++rc.attempts;
      if (rc.attempts >= cfg_.reconnect_attempts) {
        give_up.push_back(node);
        continue;
      }
      const double factor = static_cast<double>(
          1ull << std::min<std::size_t>(rc.attempts, 20));
      rc.next_reconnect_ms =
          now + std::min(cfg_.reconnect_backoff_max_ms,
                         cfg_.reconnect_backoff_initial_ms * factor);
    }
  }
  for (std::uint64_t node : give_up) finish_remove(node, false);
}

// ---- stream routing -----------------------------------------------------

void Router::send_job(ReplicaConn& rc, InFlight&& inf) {
  const double budget = inf.job.slo == 0 ? cfg_.hard_deadline_ms
                                         : cfg_.best_effort_deadline_ms;
  const double elapsed = now_ms() - tp_ms(inf.arrival);
  inf.job.deadline_ms = std::max(0.05, budget - elapsed);
  inf.send_ms = now_ms();
  append_job(rc.outbuf, inf.job);
  auto sit = streams_.find(inf.job.stream);
  if (sit != streams_.end()) ++sit->second.inflight;
  const std::uint64_t gid = inf.job.gid;
  rc.outstanding.emplace(gid, std::move(inf));
  rc.outbuf_high_water = std::max(rc.outbuf_high_water, rc.outbuf.size());
  if (cfg_.max_outbuf_bytes != 0 && rc.outbuf.size() > cfg_.max_outbuf_bytes) {
    // Slow-consumer defense: a replica that stopped draining its socket is
    // indistinguishable from a dead one. Kick it onto the crash path — the
    // job just queued (and everything else outstanding) redispatches.
    ++counters_.outbuf_overflows;
    gone_replicas_.push_back(rc.node);
  }
}

Router::RouteOutcome Router::route_job(InFlight&& inf, bool run_admission,
                                       ShedReason* shed_reason) {
  auto sit = streams_.find(inf.job.stream);
  StreamState& st = sit->second;
  if (st.draining) {
    if (st.held.size() >= cfg_.max_held_per_stream) {
      ++counters_.held_overflow;
      *shed_reason = ShedReason::kHeldTooLong;
      return RouteOutcome::kShed;
    }
    ++counters_.held_jobs;
    st.held.push_back(std::move(inf));
    return RouteOutcome::kHeld;
  }
  if (ring_.empty()) {
    ++counters_.no_replica;
    *shed_reason = ShedReason::kNoReplica;
    return RouteOutcome::kShed;
  }
  if (!st.pinned) {
    st.pin = ring_.owner(inf.job.stream);
    st.pinned = true;
  }
  ReplicaConn& rc = *replicas_.find(st.pin)->second;
  if (run_admission) {
    if (rc.outstanding.size() >= cfg_.max_outstanding_per_replica) {
      *shed_reason = ShedReason::kQueueFull;
      return RouteOutcome::kShed;
    }
    if (inf.job.slo == 0) {
      // Same RFC-6298 prediction the in-process gateway runs, against the
      // endpoint's round-trip estimator: backlog x mean + mean + 4 x dev.
      const double elapsed = now_ms() - tp_ms(inf.arrival);
      const double predicted = rc.rtt.predicted_ms(rc.outstanding.size());
      if (elapsed + predicted >
          cfg_.admission_margin * cfg_.hard_deadline_ms) {
        *shed_reason = ShedReason::kPredictedLate;
        return RouteOutcome::kShed;
      }
    }
  }
  send_job(rc, std::move(inf));
  return RouteOutcome::kSent;
}

void Router::on_job_settled(std::uint64_t stream_id) {
  auto sit = streams_.find(stream_id);
  if (sit == streams_.end()) return;
  StreamState& st = sit->second;
  if (st.inflight > 0) --st.inflight;
  if (st.draining && st.inflight == 0) reevaluate_stream(stream_id, st);
}

void Router::reevaluate_stream(std::uint64_t stream_id, StreamState& st) {
  if (!st.pinned) return;
  if (ring_.empty()) {
    st.pinned = false;
    st.draining = false;
    while (!st.held.empty()) {
      InFlight inf = std::move(st.held.front());
      st.held.pop_front();
      ++counters_.no_replica;
      reply_shed(inf.job.stream, inf.client, inf.req_id,
                 ShedReason::kNoReplica);
    }
    return;
  }
  const std::uint64_t owner = ring_.owner(stream_id);
  if (owner == st.pin) {
    st.draining = false;
    flush_held(stream_id, st);
    return;
  }
  if (st.inflight == 0) {
    // The drain point: nothing of this stream is in flight anywhere, so
    // the pin can move without ever having the stream on two replicas.
    st.pin = owner;
    st.draining = false;
    ++counters_.resharded_streams;
    flush_held(stream_id, st);
  } else {
    st.draining = true;
  }
}

void Router::flush_held(std::uint64_t stream_id, StreamState& st) {
  while (!st.held.empty() && !st.draining) {
    InFlight inf = std::move(st.held.front());
    st.held.pop_front();
    ShedReason reason = ShedReason::kNoReplica;
    const std::uint64_t client = inf.client;
    const std::uint64_t req_id = inf.req_id;
    if (route_job(std::move(inf), false, &reason) == RouteOutcome::kShed) {
      reply_shed(stream_id, client, req_id, reason);
    }
  }
}

// ---- client handling ----------------------------------------------------

void Router::reply_shed(std::uint64_t stream, std::uint64_t client_id,
                        std::uint64_t req_id, ShedReason reason) {
  std::vector<std::uint8_t> out;
  append_shed(out, Shed{req_id, reason});
  finish_reply(stream, req_id, client_id, std::move(out));
}

void Router::finish_reply(std::uint64_t stream, std::uint64_t req_id,
                          std::uint64_t client_id,
                          std::vector<std::uint8_t>&& bytes) {
  // Terminal means terminal: the (stream, req_id) key leaves the in-flight
  // table and enters the dedup window in the same step, so a resubmission
  // racing this reply finds exactly one of the two — never neither.
  inflight_keys_.erase({stream, req_id});
  dedup_store(stream, req_id, bytes, /*journal=*/true);
  send_to_client(client_id, bytes);
}

const std::vector<std::uint8_t>* Router::dedup_find(
    std::uint64_t stream, std::uint64_t req_id) const {
  const auto it = dedup_.find(stream);
  if (it == dedup_.end()) return nullptr;
  const auto rit = it->second.replies.find(req_id);
  return rit == it->second.replies.end() ? nullptr : &rit->second;
}

void Router::dedup_store(std::uint64_t stream, std::uint64_t req_id,
                         const std::vector<std::uint8_t>& bytes,
                         bool journal) {
  if (cfg_.dedup_window == 0) return;
  DedupWindow& w = dedup_[stream];
  const auto [it, inserted] = w.replies.emplace(req_id, bytes);
  if (inserted) {
    w.order.push_back(req_id);
    ++dedup_entries_;
    while (w.order.size() > cfg_.dedup_window) {
      w.replies.erase(w.order.front());
      w.order.pop_front();
      --dedup_entries_;
    }
  }
  if (journal && journal_.open()) journal_.record_reply(stream, req_id, bytes);
}

void Router::rebind_inflight(std::uint64_t stream, std::uint64_t gid,
                             std::uint64_t client_id) {
  for (auto& [node, rcp] : replicas_) {
    const auto it = rcp->outstanding.find(gid);
    if (it != rcp->outstanding.end()) {
      it->second.client = client_id;
      return;
    }
  }
  auto sit = streams_.find(stream);
  if (sit == streams_.end()) return;
  for (InFlight& inf : sit->second.held) {
    if (inf.job.gid == gid) {
      inf.client = client_id;
      return;
    }
  }
}

void Router::send_to_client(std::uint64_t client_id,
                            const std::vector<std::uint8_t>& bytes) {
  auto it = clients_.find(client_id);
  if (it == clients_.end() || !it->second.alive) {
    ++counters_.undeliverable_results;
    return;
  }
  ClientConn& c = it->second;
  c.outbuf.insert(c.outbuf.end(), bytes.begin(), bytes.end());
  c.outbuf_high_water = std::max(c.outbuf_high_water, c.outbuf.size());
  client_outbuf_high_water_ =
      std::max(client_outbuf_high_water_, c.outbuf.size());
  if (cfg_.max_outbuf_bytes != 0 && c.outbuf.size() > cfg_.max_outbuf_bytes) {
    // Slow-consumer defense: drop the connection rather than buffer without
    // bound. Nothing is lost — every reply just queued is in the dedup
    // window, and a resilient client resubmits what it never saw.
    ++counters_.outbuf_overflows;
    c.alive = false;
    c.outbuf.clear();
    return;
  }
  flush_outbuf(c.fd.get(), c.outbuf, c.alive, &c.last_progress_ms);
}

void Router::flush_outbuf(int fd, std::vector<std::uint8_t>& outbuf,
                          bool& alive, double* last_progress_ms) {
  if (!alive || outbuf.empty()) return;
  const std::ptrdiff_t n = write_some(fd, outbuf.data(), outbuf.size());
  if (n < 0) {
    alive = false;
    outbuf.clear();
    return;
  }
  if (n > 0) {
    outbuf.erase(outbuf.begin(), outbuf.begin() + n);
    if (last_progress_ms != nullptr) *last_progress_ms = now_ms();
  }
}

void Router::handle_submit(ClientConn& c, Submit&& submit) {
  // Idempotent resubmission, checked before anything else touches state.
  // Ordering is load-bearing: the assembler keeps per-stream sequence and
  // duplicate history, so letting a resubmitted tick reach the gauntlet
  // would shed it kBadFrame instead of answering it.
  if (const std::vector<std::uint8_t>* stored =
          dedup_find(submit.stream, submit.req_id)) {
    ++counters_.dedup_hits;
    send_to_client(c.id, *stored);
    return;
  }
  if (const auto kit = inflight_keys_.find({submit.stream, submit.req_id});
      kit != inflight_keys_.end()) {
    // Still being answered: re-aim the eventual reply at this connection
    // (the original one is usually the torn socket the client gave up on).
    ++counters_.inflight_rebinds;
    rebind_inflight(submit.stream, kit->second, c.id);
    return;
  }

  metrics_.record_arrival();
  if (shutting_down_) {
    metrics_.record_shed_shutdown();
    reply_shed(submit.stream, c.id, submit.req_id, ShedReason::kShutdown);
    return;
  }
  StreamState& st =
      streams_.try_emplace(submit.stream, cfg_.assembler).first->second;
  if (submit.packets.empty()) {
    ++counters_.bad_frames;
    reply_shed(submit.stream, c.id, submit.req_id, ShedReason::kBadFrame);
    return;
  }
  const std::uint32_t seq = submit.packets.front().sequence;
  deliveries_.clear();
  for (auto& p : submit.packets) {
    deliveries_.push_back(net::Delivery{std::move(p), 0.0, false});
  }
  const auto frame = st.assembler.assemble(seq, deliveries_);
  if (!frame.complete()) {
    // Some hub packet failed the gauntlet (CRC, layout, sequence,
    // duplicate). The frame the assembler substituted is last-known data —
    // fine for a resilient control loop, but a cluster client asked us to
    // serve *this* tick, so the honest terminal answer is a shed.
    ++counters_.bad_frames;
    reply_shed(submit.stream, c.id, submit.req_id, ShedReason::kBadFrame);
    return;
  }

  // Re-seal the whole assembled ring as one jumbo packet. encode/decode is
  // lossless at digitizer magnitudes, so the replica reconstructs the
  // assembler's output bit-for-bit.
  net::BlmPacket jumbo;
  jumbo.hub_id = 0;
  jumbo.sequence = seq;
  jumbo.first_monitor = 0;
  const auto raw = frame.raw.flat();
  jumbo.readings.reserve(raw.size());
  for (float v : raw) {
    jumbo.readings.push_back(net::encode_reading(static_cast<double>(v)));
  }
  net::seal_packet(jumbo);

  InFlight inf;
  inf.job.gid = next_gid_++;
  inf.job.stream = submit.stream;
  inf.job.slo = submit.slo;
  inf.job.packet = std::move(jumbo);
  inf.client = c.id;
  inf.req_id = submit.req_id;
  inf.arrival = Clock::now();
  const std::uint64_t gid = inf.job.gid;

  ShedReason reason = ShedReason::kNoReplica;
  const auto outcome = route_job(std::move(inf), cfg_.admission_control,
                                 &reason);
  if (outcome == RouteOutcome::kShed) {
    switch (reason) {
      case ShedReason::kPredictedLate:
        metrics_.record_shed_predicted_late();
        break;
      case ShedReason::kQueueFull:
        metrics_.record_shed_queue_full();
        break;
      case ShedReason::kShutdown:
        metrics_.record_shed_shutdown();
        break;
      default:
        // Cluster-only outcomes (kNoReplica/kHeldTooLong) live in
        // counters_, already incremented at the routing decision.
        break;
    }
    reply_shed(submit.stream, c.id, submit.req_id, reason);
    return;
  }
  // Accepted (sent or held): register the idempotency key so a duplicate
  // rebinds to this job instead of re-executing it.
  inflight_keys_[{submit.stream, submit.req_id}] = gid;
  metrics_.record_admitted();
}

void Router::handle_client_message(ClientConn& c, const Message& msg) {
  switch (msg.type) {
    case MsgType::kHello:
      (void)decode_hello(msg.payload);
      break;
    case MsgType::kSubmit:
      handle_submit(c, decode_submit(msg.payload));
      break;
    case MsgType::kAddReplica: {
      const auto add = decode_add_replica(msg.payload);
      const std::uint64_t node = do_add_replica(add.endpoint);
      std::vector<std::uint8_t> out;
      append_admin_ok(out, AdminOk{node, node ? add.endpoint
                                              : "connect failed"});
      send_to_client(c.id, out);
      break;
    }
    case MsgType::kRemoveReplica: {
      const auto rem = decode_remove_replica(msg.payload);
      auto it = replicas_.find(rem.node);
      if (it == replicas_.end()) {
        std::vector<std::uint8_t> out;
        append_admin_ok(out, AdminOk{0, "unknown node"});
        send_to_client(c.id, out);
        break;
      }
      ReplicaConn& rc = *it->second;
      rc.remove_waiter_client = c.id;
      if (rc.state == NodeState::kReconnecting) {
        finished_removes_.push_back(rc.node);
      } else {
        // The kAdminOk reply is deferred until the node is fully drained:
        // the acknowledgement IS the exactly-once handoff confirmation.
        do_remove_replica(rc);
      }
      break;
    }
    case MsgType::kStatsRequest: {
      std::vector<std::uint8_t> out;
      append_stats_reply(out, StatsReply{stats_json_now()});
      send_to_client(c.id, out);
      break;
    }
    case MsgType::kShutdown:
      begin_shutdown();
      break;
    default:
      break;
  }
}

void Router::handle_replica_message(ReplicaConn& rc, const Message& msg) {
  if (msg.type == MsgType::kResult) {
    Result r = decode_result(msg.payload);
    auto it = rc.outstanding.find(r.id);
    if (it == rc.outstanding.end()) {
      // Exactly-once dedup: a ghost of a crash-redispatch (both the dying
      // and the surviving replica executed the job) or a stale answer.
      ++counters_.duplicate_results;
      return;
    }
    InFlight inf = std::move(it->second);
    rc.outstanding.erase(it);
    rc.rtt.observe(now_ms() - inf.send_ms);

    const double budget = inf.job.slo == 0 ? cfg_.hard_deadline_ms
                                           : cfg_.best_effort_deadline_ms;
    const double e2e = now_ms() - tp_ms(inf.arrival);
    const double queue = std::max(0.0, inf.send_ms - tp_ms(inf.arrival));
    const bool miss = e2e > budget;
    metrics_.record_batch(0, 0.0, std::span<const double>(&queue, 1),
                          std::span<const double>(&e2e, 1), miss ? 1 : 0);

    r.id = inf.req_id;
    r.deadline_met = miss ? 0 : 1;
    std::vector<std::uint8_t> out;
    append_result(out, r);
    finish_reply(inf.job.stream, inf.req_id, inf.client, std::move(out));
    on_job_settled(inf.job.stream);
  } else if (msg.type == MsgType::kShed) {
    const Shed s = decode_shed(msg.payload);
    auto it = rc.outstanding.find(s.id);
    if (it == rc.outstanding.end()) {
      ++counters_.duplicate_results;
      return;
    }
    InFlight inf = std::move(it->second);
    rc.outstanding.erase(it);
    ++counters_.replica_sheds;
    reply_shed(inf.job.stream, inf.client, inf.req_id, s.reason);
    on_job_settled(inf.job.stream);
  }
  if (rc.state == NodeState::kRemoving && rc.outstanding.empty()) {
    finished_removes_.push_back(rc.node);
  }
}

// ---- event loop ---------------------------------------------------------

void Router::accept_clients() {
  for (;;) {
    Fd fd = accept_conn(listener_.fd.get());
    if (!fd.valid()) break;
    ClientConn c;
    c.id = next_client_id_++;
    c.fd = std::move(fd);
    clients_.emplace(c.id, std::move(c));
  }
}

void Router::read_client(ClientConn& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n = read_some(c.fd.get(), buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      c.alive = false;
      return;
    }
    c.last_progress_ms = now_ms();
    c.reader.feed(buf, static_cast<std::size_t>(n));
  }
  if (c.reader.broken()) {
    // The envelope CRC latched: everything past the damage is noise, and
    // already-verified messages were drained on earlier passes. Cut the
    // connection — a resilient client reconnects and resubmits.
    ++counters_.malformed_disconnects;
    c.alive = false;
    return;
  }
  while (auto msg = c.reader.next()) {
    try {
      handle_client_message(c, *msg);
    } catch (const std::exception&) {
      ++counters_.malformed_disconnects;
      c.alive = false;
      return;
    }
  }
}

void Router::read_replica(ReplicaConn& rc) {
  std::uint8_t buf[64 * 1024];
  bool gone = false;
  for (;;) {
    const std::ptrdiff_t n = read_some(rc.fd.get(), buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      gone = true;
      break;
    }
    rc.last_progress_ms = now_ms();
    rc.reader.feed(buf, static_cast<std::size_t>(n));
  }
  if (rc.reader.broken()) {
    ++counters_.malformed_disconnects;
    gone = true;
  }
  while (auto msg = rc.reader.next()) {
    try {
      handle_replica_message(rc, *msg);
    } catch (const std::exception&) {
      gone = true;
      break;
    }
  }
  if (gone) gone_replicas_.push_back(rc.node);
}

void Router::check_stalls() {
  if (cfg_.stall_timeout_ms <= 0.0) return;
  const double now = now_ms();
  for (auto& [node, rcp] : replicas_) {
    ReplicaConn& rc = *rcp;
    if (rc.state == NodeState::kReconnecting) continue;
    const bool pending = !rc.outstanding.empty() || !rc.outbuf.empty();
    if (!pending) {
      // An idle connection owes us nothing; the stall clock only runs
      // while bytes are due.
      rc.last_progress_ms = now;
      continue;
    }
    if (now - rc.last_progress_ms > cfg_.stall_timeout_ms) {
      ++counters_.stalled_peers;
      rc.last_progress_ms = now;
      gone_replicas_.push_back(node);  // quarantine path, jobs redispatch
    }
  }
  for (auto& [id, c] : clients_) {
    if (!c.alive || c.outbuf.empty()) {
      c.last_progress_ms = now;
      continue;
    }
    if (now - c.last_progress_ms > cfg_.stall_timeout_ms) {
      ++counters_.stalled_peers;
      c.alive = false;
      c.outbuf.clear();
    }
  }
}

void Router::begin_shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  shutdown_start_ms_ = now_ms();
  listener_.fd.reset();
  // Close-then-drain: everything already accepted is flushed to the fleet
  // (admission bypassed — acceptance is a promise), then the loop stays up
  // until every outstanding job has answered.
  for (auto& [id, st] : streams_) {
    st.draining = false;
    flush_held(id, st);
  }
}

bool Router::shutdown_drained() const {
  for (const auto& [node, rc] : replicas_) {
    if (!rc->outstanding.empty()) return false;
    if (!rc->outbuf.empty() && rc->state != NodeState::kReconnecting) {
      return false;
    }
  }
  for (const auto& [id, st] : streams_) {
    if (!st.held.empty()) return false;
  }
  for (const auto& [id, c] : clients_) {
    if (c.alive && !c.outbuf.empty()) return false;
  }
  return true;
}

void Router::run() {
  started_ = Clock::now();
  Poller poller;
  std::vector<std::uint64_t> dead_clients;
  for (;;) {
    poller.clear();
    if (listener_.fd.valid()) poller.want(listener_.fd.get(), true, false);
    poller.want(wake_.r.get(), true, false);
    for (auto& [id, c] : clients_) {
      poller.want(c.fd.get(), true, !c.outbuf.empty());
    }
    for (auto& [node, rc] : replicas_) {
      if (rc->state == NodeState::kReconnecting) continue;
      poller.want(rc->fd.get(), true, !rc->outbuf.empty());
    }
    poller.wait(20);
    wake_.drain();

    process_commands();
    if (stop_.load(std::memory_order_relaxed) != 0) begin_shutdown();

    if (listener_.fd.valid() && poller.readable(listener_.fd.get())) {
      accept_clients();
    }

    for (auto& [id, c] : clients_) {
      if (c.alive && poller.readable(c.fd.get())) read_client(c);
      if (c.alive && poller.writable(c.fd.get())) {
        flush_outbuf(c.fd.get(), c.outbuf, c.alive, &c.last_progress_ms);
      }
    }
    dead_clients.clear();
    for (auto& [id, c] : clients_) {
      if (!c.alive) dead_clients.push_back(id);
    }
    for (std::uint64_t id : dead_clients) clients_.erase(id);

    for (auto& [node, rc] : replicas_) {
      if (rc->state == NodeState::kReconnecting) continue;
      if (poller.readable(rc->fd.get())) read_replica(*rc);
      if (rc->fd.valid() && poller.writable(rc->fd.get())) {
        bool alive = true;
        flush_outbuf(rc->fd.get(), rc->outbuf, alive,
                     &rc->last_progress_ms);
        if (!alive) gone_replicas_.push_back(node);
      }
    }
    check_stalls();
    // Index loop on purpose: replica_gone redispatches, and a redispatch
    // that overflows the new owner's outbuf appends to gone_replicas_
    // mid-walk (a range-for iterator would be invalidated).
    for (std::size_t i = 0; i < gone_replicas_.size(); ++i) {
      replica_gone(gone_replicas_[i]);
    }
    gone_replicas_.clear();

    for (std::uint64_t node : finished_removes_) finish_remove(node, true);
    finished_removes_.clear();

    try_reconnects();

    if (shutting_down_) {
      const bool timed_out =
          now_ms() - shutdown_start_ms_ > cfg_.drain_timeout_ms;
      if (shutdown_drained() || timed_out) break;
    }
  }

  // Last-gasp delivery: push any remaining buffered replies synchronously
  // so a drained shutdown really leaves no accepted frame unanswered.
  for (auto& [id, c] : clients_) {
    if (c.alive && !c.outbuf.empty()) {
      write_all(c.fd.get(), c.outbuf.data(), c.outbuf.size(), 500.0);
    }
  }
  for (auto& [node, rc] : replicas_) {
    if (rc->remove_promise) rc->remove_promise->set_value(false);
  }
  process_commands();  // answer any admin stragglers instead of hanging them
  clients_.clear();
  replicas_.clear();
}

// ---- stats --------------------------------------------------------------

std::string Router::stats_json_now() {
  auto snap = metrics_.snapshot();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - started_).count();
  std::ostringstream out;
  out << "{\"router\": " << snap.to_json(wall_s, true)
      << ", \"cluster_counters\": {"
      << "\"bad_frames\": " << counters_.bad_frames
      << ", \"no_replica\": " << counters_.no_replica
      << ", \"held_overflow\": " << counters_.held_overflow
      << ", \"held_jobs\": " << counters_.held_jobs
      << ", \"resharded_streams\": " << counters_.resharded_streams
      << ", \"replica_crashes\": " << counters_.replica_crashes
      << ", \"reconnects\": " << counters_.reconnects
      << ", \"redispatched_jobs\": " << counters_.redispatched_jobs
      << ", \"duplicate_results\": " << counters_.duplicate_results
      << ", \"undeliverable_results\": " << counters_.undeliverable_results
      << ", \"replica_sheds\": " << counters_.replica_sheds
      << ", \"dedup_hits\": " << counters_.dedup_hits
      << ", \"inflight_rebinds\": " << counters_.inflight_rebinds
      << ", \"malformed_disconnects\": " << counters_.malformed_disconnects
      << ", \"stalled_peers\": " << counters_.stalled_peers
      << ", \"outbuf_overflows\": " << counters_.outbuf_overflows
      << ", \"journal_recovered_nodes\": "
      << counters_.journal_recovered_nodes
      << ", \"journal_recovered_replies\": "
      << counters_.journal_recovered_replies << "}"
      << ", \"dedup_entries\": " << dedup_entries_
      << ", \"client_outbuf_high_water\": " << client_outbuf_high_water_
      << ", \"nodes\": [";
  const double now = now_ms();
  bool first = true;
  for (const auto& [node, rc] : replicas_) {
    if (!first) out << ", ";
    first = false;
    const char* state = rc->state == NodeState::kConnected ? "connected"
                        : rc->state == NodeState::kRemoving ? "removing"
                                                             : "reconnecting";
    const double next_in =
        rc->state == NodeState::kReconnecting
            ? std::max(0.0, rc->next_reconnect_ms - now)
            : 0.0;
    out << "{\"node\": " << node << ", \"endpoint\": \""
        << rc->endpoint.str() << "\", \"outstanding\": "
        << rc->outstanding.size() << ", \"rtt_est_ms\": "
        << util::json_double(rc->rtt.est_ms()) << ", \"state\": \"" << state
        << "\", \"attempts\": " << rc->attempts
        << ", \"next_reconnect_in_ms\": " << util::json_double(next_in)
        << ", \"outbuf_high_water\": " << rc->outbuf_high_water << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace reads::cluster
