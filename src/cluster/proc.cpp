#include "cluster/proc.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <thread>

namespace reads::cluster {

namespace {

pid_t waitpid_eintr(pid_t pid, int* status, int options) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, options);
    if (r >= 0 || errno != EINTR) return r;
  }
}

}  // namespace

bool ChildProcess::running() {
  if (pid_ <= 0) return false;
  int status = 0;
  const pid_t r = waitpid_eintr(pid_, &status, WNOHANG);
  if (r == pid_) {
    pid_ = -1;
    return false;
  }
  return r == 0;
}

std::string ChildProcess::read_line(double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  for (;;) {
    const auto nl = line_buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = line_buf_.substr(0, nl);
      line_buf_.erase(0, nl + 1);
      return line;
    }
    if (!stdout_fd_.valid()) return {};
    const auto remaining = std::chrono::duration<double, std::milli>(
                               deadline - std::chrono::steady_clock::now())
                               .count();
    if (remaining <= 0.0) return {};
    pollfd pfd{stdout_fd_.get(), POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (pr < 0 && errno != EINTR) return {};
    if (pr <= 0) continue;
    char buf[4096];
    const ssize_t n = ::read(stdout_fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      line_buf_.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || (errno != EINTR && errno != EAGAIN)) {
      stdout_fd_.reset();  // EOF: child closed stdout (likely exited)
    }
  }
}

bool ChildProcess::terminate(double timeout_ms) {
  if (pid_ <= 0) return true;
  ::kill(pid_, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t r = waitpid_eintr(pid_, &status, WNOHANG);
    if (r == pid_) {
      pid_ = -1;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill_hard();
  return false;
}

void ChildProcess::kill_hard() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  int status = 0;
  waitpid_eintr(pid_, &status, 0);
  pid_ = -1;
}

int ChildProcess::wait() {
  if (pid_ <= 0) return -1;
  int status = 0;
  const pid_t r = waitpid_eintr(pid_, &status, 0);
  pid_ = -1;
  return r > 0 ? status : -1;
}

ChildProcess spawn(const std::vector<std::string>& argv) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    throw std::system_error(err, std::generic_category(), "fork");
  }
  if (pid == 0) {
    // Child: stdout -> pipe, exec. Only async-signal-safe calls here.
    ::close(pipefd[0]);
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    _exit(127);
  }
  ::close(pipefd[1]);
  ChildProcess child;
  child.pid_ = pid;
  child.stdout_fd_ = Fd(pipefd[0]);
  return child;
}

}  // namespace reads::cluster
