#include "cluster/replica_server.hpp"

#include <utility>
#include <vector>

namespace reads::cluster {

namespace {

ShedReason to_shed_reason(serve::RejectReason r) {
  switch (r) {
    case serve::RejectReason::kPredictedLate:
      return ShedReason::kPredictedLate;
    case serve::RejectReason::kQueueFull:
      return ShedReason::kQueueFull;
    default:
      return ShedReason::kShutdown;
  }
}

}  // namespace

ReplicaServer::ReplicaServer(
    ReplicaServerConfig cfg,
    std::vector<std::unique_ptr<serve::Backend>> backends,
    FrameDecoder decoder)
    : cfg_(std::move(cfg)),
      listener_(listen_on(cfg_.listen)),
      wake_(make_wake_pipe()),
      gateway_(std::make_unique<serve::Gateway>(std::move(backends),
                                                cfg_.gateway)),
      decoder_(std::move(decoder)),
      completions_(cfg_.completion_capacity) {}

ReplicaServer::~ReplicaServer() {
  request_stop();
  completions_.close();
  if (completion_thread_.joinable()) completion_thread_.join();
}

void ReplicaServer::send_on(const std::shared_ptr<Conn>& conn,
                            const std::vector<std::uint8_t>& bytes) {
  std::lock_guard lock(conn->write_mutex);
  if (!conn->alive) return;
  if (!write_all(conn->fd.get(), bytes.data(), bytes.size())) {
    // Peer gone mid-write; the event loop will reap the fd on its next
    // read. Results for a dead router are undeliverable by definition.
    conn->alive = false;
  }
}

void ReplicaServer::send_shed(const std::shared_ptr<Conn>& conn,
                              std::uint64_t gid, ShedReason reason) {
  std::vector<std::uint8_t> out;
  append_shed(out, Shed{gid, reason});
  send_on(conn, out);
}

void ReplicaServer::handle_job(const std::shared_ptr<Conn>& conn,
                               const Job& job) {
  if (stop_.load(std::memory_order_relaxed) != 0) {
    send_shed(conn, job.gid, ShedReason::kShutdown);
    return;
  }
  if (job.packet.readings.size() != cfg_.monitors ||
      !net::packet_crc_ok(job.packet)) {
    send_shed(conn, job.gid, ShedReason::kBadFrame);
    return;
  }
  tensor::Tensor frame;
  decoder_(job.packet.readings, frame);
  auto ticket = gateway_->submit(std::move(frame), job.stream,
                                 job.deadline_ms > 0.0 ? job.deadline_ms
                                                       : 0.0);
  if (!ticket.admitted) {
    send_shed(conn, job.gid, to_shed_reason(ticket.reason));
    return;
  }
  // Blocking push = backpressure: if the backend is this far behind, the
  // socket read loop (and thus the router) slows down with it.
  completions_.push(Pending{job.gid, conn, std::move(ticket.response)});
}

void ReplicaServer::handle_message(const std::shared_ptr<Conn>& conn,
                                   const Message& msg) {
  switch (msg.type) {
    case MsgType::kHello:
      (void)decode_hello(msg.payload);
      break;
    case MsgType::kJob:
      handle_job(conn, decode_job(msg.payload));
      break;
    case MsgType::kStatsRequest: {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_)
              .count();
      auto snap = gateway_->metrics().snapshot();
      std::vector<std::uint8_t> out;
      append_stats_reply(out, StatsReply{snap.to_json(wall_s, true)});
      send_on(conn, out);
      break;
    }
    case MsgType::kShutdown:
      request_stop();
      break;
    default:
      // Unknown/unexpected types are ignored: version skew on an auxiliary
      // message must not kill a serving replica.
      break;
  }
}

void ReplicaServer::completion_loop() {
  std::vector<std::uint8_t> out;
  while (auto pending = completions_.pop()) {
    serve::Response resp = pending->response.get();
    Result r;
    r.id = pending->gid;
    r.deadline_met = resp.deadline_met ? 1 : 0;
    r.model_epoch = resp.model_epoch;
    r.dims.reserve(resp.output.rank());
    for (std::size_t i = 0; i < resp.output.rank(); ++i) {
      r.dims.push_back(static_cast<std::uint32_t>(resp.output.dim(i)));
    }
    const auto flat = resp.output.flat();
    r.data.assign(flat.begin(), flat.end());
    out.clear();
    append_result(out, r);
    send_on(pending->conn, out);
  }
}

void ReplicaServer::run() {
  started_ = std::chrono::steady_clock::now();
  completion_thread_ = std::thread([this] { completion_loop(); });

  Poller poller;
  std::uint8_t buf[64 * 1024];
  std::vector<int> dead;
  while (stop_.load(std::memory_order_relaxed) == 0) {
    poller.clear();
    poller.want(listener_.fd.get(), true, false);
    poller.want(wake_.r.get(), true, false);
    for (const auto& [fd, conn] : conns_) poller.want(fd, true, false);
    poller.wait(100);
    wake_.drain();

    if (poller.readable(listener_.fd.get())) {
      for (;;) {
        Fd accepted = accept_conn(listener_.fd.get());
        if (!accepted.valid()) break;
        auto conn = std::make_shared<Conn>();
        conn->fd = std::move(accepted);
        conns_.emplace(conn->fd.get(), std::move(conn));
      }
    }

    dead.clear();
    for (auto& [fd, conn] : conns_) {
      if (!conn->alive) {
        dead.push_back(fd);
        continue;
      }
      if (!poller.readable(fd)) continue;
      bool gone = false;
      for (;;) {
        const std::ptrdiff_t n = read_some(fd, buf, sizeof(buf));
        if (n == 0) break;
        if (n < 0) {
          gone = true;
          break;
        }
        conn->reader.feed(buf, static_cast<std::size_t>(n));
      }
      if (conn->reader.broken()) gone = true;
      while (auto msg = conn->reader.next()) {
        try {
          handle_message(conn, *msg);
        } catch (const std::exception&) {
          // Malformed payload: this peer's stream can't be trusted.
          gone = true;
          break;
        }
      }
      if (gone) dead.push_back(fd);
    }
    for (int fd : dead) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      // Take ownership before erasing: if the map held the last reference,
      // erase() would destroy the Conn while its write_mutex is still
      // locked, and the guard would unlock a dead mutex.
      std::shared_ptr<Conn> conn = std::move(it->second);
      conns_.erase(it);
      std::lock_guard lock(conn->write_mutex);
      conn->alive = false;
      conn->fd.reset();
    }
  }

  // Graceful drain: stop listening, serve everything already admitted
  // (gateway stop blocks until the replicas drain their shards), then let
  // the completion thread flush every pending result before exiting — an
  // accepted frame is answered even across shutdown.
  listener_.fd.reset();
  gateway_->stop();
  completions_.close();
  completion_thread_.join();
  for (auto& [fd, conn] : conns_) {
    std::lock_guard lock(conn->write_mutex);
    conn->alive = false;
    conn->fd.reset();
  }
  conns_.clear();
}

}  // namespace reads::cluster
