// Length-delimited message protocol of the cluster tier.
//
// Every message is one envelope on a reliable byte stream:
//
//   [payload_len : u32 LE] [type : u8] [crc : u32 LE] [payload : len bytes]
//
// The CRC-32 (net::Crc32, the hub-packet polynomial) covers the type byte
// and the payload. TCP/UDS already guarantee ordered delivery, so the CRC
// is not about random line noise — it is the torn-stream detector: a
// chaos-injected (or radiation-flipped) byte anywhere in an envelope makes
// the reader latch broken() instead of mis-framing, and the connection
// owner tears the connection down. Retries then ride the (stream, seq)
// idempotency contract (router dedup window), so corruption degrades to a
// reconnect, never to a wrong answer.
//
// Payloads reuse the little-endian primitives of net/wire.hpp; BlmPackets
// inside kSubmit/kJob payloads use net::append_packet's canonical
// serialization, so the hub wire format and the cluster wire format are the
// same bytes. MessageReader reassembles envelopes across arbitrary read()
// fragment boundaries exactly as net::PacketDecoder does for raw packet
// streams; an implausible length field or a CRC mismatch permanently
// breaks the stream (length-delimited framing has nothing to resync on).
//
// Message flow:
//   client -> router   kHello, kSubmit (one tick: the stream's hub packets)
//   router -> client   kResult | kShed  (exactly one per accepted submit)
//   router -> replica  kHello, kJob (one jumbo whole-ring packet)
//   replica -> router  kResult | kShed  (exactly one per job)
//   admin  -> router   kAddReplica / kRemoveReplica / kStatsRequest /
//                      kShutdown; router answers kAdminOk / kStatsReply
//     (kRemoveReplica's kAdminOk is deferred until the node is fully
//      drained — the reply IS the exactly-once handoff acknowledgement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/wire.hpp"

namespace reads::cluster {

inline constexpr std::uint32_t kProtocolVersion = 2;
/// Envelope header: payload length (4) + type (1) + CRC-32 (4).
inline constexpr std::size_t kEnvelopeHeader = 9;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kSubmit = 2,
  kJob = 3,
  kResult = 4,
  kShed = 5,
  kAddReplica = 6,
  kRemoveReplica = 7,
  kAdminOk = 8,
  kStatsRequest = 9,
  kStatsReply = 10,
  kShutdown = 11,
};

enum class Role : std::uint8_t { kClient = 1, kReplica = 2, kAdmin = 3 };

/// Why a submit/job was refused. Mirrors serve::RejectReason numerically
/// for the reasons both layers share, and extends it with cluster-only
/// outcomes.
enum class ShedReason : std::uint8_t {
  kPredictedLate = 1,
  kQueueFull = 2,
  kShutdown = 3,
  kNoReplica = 10,   ///< ring empty (every replica crashed out)
  kBadFrame = 11,    ///< the tick failed the assembler's validation gauntlet
  kHeldTooLong = 12, ///< resharding hold overflowed or outlived the deadline
};

struct Hello {
  Role role = Role::kClient;
  std::uint32_t version = kProtocolVersion;
};

/// One client tick: the stream's hub packets for one sequence number.
struct Submit {
  std::uint64_t stream = 0;
  std::uint64_t req_id = 0;
  std::uint8_t slo = 1;  ///< 0 = hard real-time, 1 = best effort
  std::vector<net::BlmPacket> packets;
};

/// One routed frame: the assembled whole-ring readings re-sealed as a
/// single jumbo packet (hub_id 0, first_monitor 0, `monitors` readings).
struct Job {
  std::uint64_t gid = 0;  ///< router-global id (dedup key for exactly-once)
  std::uint64_t stream = 0;
  std::uint8_t slo = 1;
  double deadline_ms = 0.0;  ///< remaining budget when the job was sent
  net::BlmPacket packet;
};

/// One inference answer. `id` is the job gid on the replica->router leg and
/// the client req_id on the router->client leg (the router rewrites it).
struct Result {
  std::uint64_t id = 0;
  std::uint8_t deadline_met = 1;
  std::uint64_t model_epoch = 0;
  std::vector<std::uint32_t> dims;  ///< tensor shape
  std::vector<float> data;          ///< row-major values, bit-exact
};

struct Shed {
  std::uint64_t id = 0;  ///< gid or req_id, same rewriting as Result
  ShedReason reason = ShedReason::kQueueFull;
};

struct AddReplica {
  std::string endpoint;  ///< "tcp:host:port" / "uds:path"
};

struct RemoveReplica {
  std::uint64_t node = 0;
};

struct AdminOk {
  std::uint64_t token = 0;  ///< echoes the request's identifying value
  std::string info;
};

struct StatsReply {
  std::string json;
};

// ---- encoding -----------------------------------------------------------
// begin_msg/end_msg bracket a payload written directly into `out`, so a
// message is serialized in place with no intermediate buffer:
//   auto at = begin_msg(out, MsgType::kJob); ...payload...; end_msg(out, at);

std::size_t begin_msg(std::vector<std::uint8_t>& out, MsgType type);
void end_msg(std::vector<std::uint8_t>& out, std::size_t at);

void append_hello(std::vector<std::uint8_t>& out, const Hello& m);
void append_submit(std::vector<std::uint8_t>& out, const Submit& m);
void append_job(std::vector<std::uint8_t>& out, const Job& m);
void append_result(std::vector<std::uint8_t>& out, const Result& m);
void append_shed(std::vector<std::uint8_t>& out, const Shed& m);
void append_add_replica(std::vector<std::uint8_t>& out, const AddReplica& m);
void append_remove_replica(std::vector<std::uint8_t>& out,
                           const RemoveReplica& m);
void append_admin_ok(std::vector<std::uint8_t>& out, const AdminOk& m);
void append_stats_request(std::vector<std::uint8_t>& out);
void append_stats_reply(std::vector<std::uint8_t>& out, const StatsReply& m);
void append_shutdown(std::vector<std::uint8_t>& out);

// ---- decoding -----------------------------------------------------------
// Payload parsers throw std::runtime_error on truncated/overlong payloads;
// connection owners treat that as a broken peer and drop the connection
// (never the process).

Hello decode_hello(std::span<const std::uint8_t> payload);
Submit decode_submit(std::span<const std::uint8_t> payload);
Job decode_job(std::span<const std::uint8_t> payload);
Result decode_result(std::span<const std::uint8_t> payload);
Shed decode_shed(std::span<const std::uint8_t> payload);
AddReplica decode_add_replica(std::span<const std::uint8_t> payload);
RemoveReplica decode_remove_replica(std::span<const std::uint8_t> payload);
AdminOk decode_admin_ok(std::span<const std::uint8_t> payload);
StatsReply decode_stats_reply(std::span<const std::uint8_t> payload);

/// One reassembled envelope.
struct Message {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> payload;
};

/// Reassembles envelopes from arbitrary read() fragments (same contract as
/// net::PacketDecoder: feed buffers bytes, next() drains complete
/// messages). An implausible length or an envelope CRC mismatch
/// permanently breaks the stream — next() keeps draining messages that
/// were already verified, but no later byte is ever trusted.
class MessageReader {
 public:
  struct Limits {
    /// Generous bound: the largest legitimate message is a stats reply with
    /// retained latency samples, a few MB at bench scale.
    std::size_t max_payload = 64u << 20;
  };

  MessageReader() = default;
  explicit MessageReader(Limits limits) : limits_(limits) {}

  bool feed(std::span<const std::uint8_t> bytes);
  bool feed(const std::uint8_t* data, std::size_t len) {
    return feed(std::span<const std::uint8_t>(data, len));
  }
  std::optional<Message> next();

  bool broken() const noexcept { return broken_; }
  std::size_t ready() const noexcept { return ready_.size(); }
  std::size_t pending_bytes() const noexcept { return buf_.size(); }

 private:
  Limits limits_;
  std::vector<std::uint8_t> buf_;
  std::deque<Message> ready_;
  bool broken_ = false;
};

}  // namespace reads::cluster
