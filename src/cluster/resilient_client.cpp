#include "cluster/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace reads::cluster {

namespace {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ResilientClient::ResilientClient(std::string endpoint,
                                 ResilientClientConfig cfg)
    : endpoint_(std::move(endpoint)),
      cfg_(cfg),
      jitter_state_(util::derive_seed(cfg.jitter_seed, 0xBAC0FFull)) {}

bool ResilientClient::ensure_connected(double deadline_ms) {
  if (connected()) return true;
  for (;;) {
    conn_.reset();
    if (attempt_ > 0) {
      // Exponential backoff with deterministic jitter in [0.5, 1.0)x:
      // jitter decorrelates a fleet of clients hammering a restarting
      // router, determinism keeps the whole chaos run replayable.
      util::SplitMix64 sm(jitter_state_);
      jitter_state_ = sm.next();
      const double factor = static_cast<double>(
          1ull << std::min<std::size_t>(attempt_ - 1, 20));
      const double base = std::min(cfg_.backoff_max_ms,
                                   cfg_.backoff_initial_ms * factor);
      const double unit =
          static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;
      const double delay = base * (0.5 + 0.5 * unit);
      if (steady_ms() + delay > deadline_ms) return false;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delay));
    }
    if (steady_ms() >= deadline_ms) return false;
    try {
      conn_.emplace(endpoint_, Role::kClient,
                    std::min(cfg_.connect_timeout_ms,
                             std::max(1.0, deadline_ms - steady_ms())));
    } catch (const std::exception&) {
      ++attempt_;
      continue;
    }
    if (!conn_->connected()) {
      ++attempt_;
      continue;
    }
    ++reconnects_;
    attempt_ = 0;
    // Resubmit everything unacknowledged, oldest first. The router's
    // dedup/rebind front door makes this safe whether the original was
    // answered, in flight, or never arrived.
    for (const auto& [req_id, s] : unacked_) {
      ++resubmissions_;
      if (!conn_->submit(s)) break;  // died again; next pass retries
    }
    if (connected()) return true;
    ++attempt_;
  }
}

bool ResilientClient::submit(const Submit& s) {
  if (unacked_.size() >= cfg_.max_unacked) return false;
  unacked_[s.req_id] = s;
  const double deadline = steady_ms() + cfg_.connect_timeout_ms;
  if (!connected()) {
    // ensure_connected resubmits the whole window — including the tick
    // just queued — so a successful campaign has already delivered it.
    ensure_connected(deadline);
    return true;
  }
  // A mid-wire failure is not an error at this layer: the tick is in the
  // window and rides the next reconnect's resubmission pass.
  conn_->submit(s);
  return true;
}

void ResilientClient::note_ack(const Message& msg) {
  if (msg.type == MsgType::kResult) {
    unacked_.erase(decode_result(msg.payload).id);
  } else if (msg.type == MsgType::kShed) {
    unacked_.erase(decode_shed(msg.payload).id);
  }
}

std::optional<Message> ResilientClient::poll(double timeout_ms) {
  const double deadline = steady_ms() + timeout_ms;
  for (;;) {
    if (!ensure_connected(deadline)) return std::nullopt;
    const double remaining = deadline - steady_ms();
    if (remaining <= 0.0) return std::nullopt;
    auto msg = conn_->poll(remaining);
    if (msg) {
      note_ack(*msg);
      return msg;
    }
    if (!conn_->dead()) return std::nullopt;  // a plain timeout
    ++attempt_;  // torn mid-poll: reconnect and resubmit, same deadline
  }
}

}  // namespace reads::cluster
