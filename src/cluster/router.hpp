// Cluster router: the front-end process of the multi-process serving tier.
//
// One poll(2) event loop owns every connection: clients submit ticks (the
// stream's seven hub packets) over kSubmit; the router runs the per-stream
// FrameAssembler gauntlet — the trust boundary stays at the front door, a
// replica never sees an unvalidated byte — re-seals the assembled 260-value
// frame as one jumbo packet, and routes it to the replica process that owns
// the stream on a consistent-hash ring.
//
// Responsibilities, each with a hard invariant:
//
//  * Stream pinning. A stream's jobs go to exactly one replica at a time
//    (per-stream FIFO through the replica's kByStream gateway shard), so
//    per-stream response order equals submit order.
//
//  * SLO admission. Hard-real-time submits (slo 0) are admitted against the
//    same RFC-6298 mathematics the in-process gateway uses — per-replica
//    round-trip EWMA + deviation, predicted completion vs margin x budget
//    (serve/estimator.hpp) — and shed kPredictedLate in microseconds when
//    the cluster cannot make the 3 ms budget. Best-effort submits (slo 1)
//    are bounded only by the per-replica outstanding cap.
//
//  * Exactly-once. Every accepted job (sent or held) yields exactly one
//    terminal reply to its client. A job lives in exactly one replica's
//    outstanding table; crash redispatch moves it (bit-identical backends
//    make re-execution invisible), and a late duplicate finds no table
//    entry and is dropped.
//
//  * Live resharding. Ring changes (add/remove/crash) never interleave a
//    stream across two replicas: a moved stream with jobs still in flight
//    enters draining — new jobs are held, bounded — and the pin moves only
//    when the old replica has answered everything; held jobs then flush in
//    order to the new owner, admission bypassed (they were already
//    accepted). kRemoveReplica's kAdminOk is sent only when the node is
//    fully drained.
//
//  * Crash recovery. A replica connection dying removes the node from the
//    ring, redispatches its outstanding jobs to the new owners, and
//    quarantines the endpoint with exponentially backed-off reconnects
//    (the PR 3 replica quarantine policy, lifted to processes); a node
//    that stays dead past the attempt budget is dropped for good.
//
//  * Graceful shutdown (close-then-drain). request_stop() (async-signal-
//    safe, SIGTERM handlers call it) closes the listener, sheds new
//    submits kShutdown, flushes held jobs, and drains every outstanding
//    job before run() returns — no accepted frame is lost.
//
//  * Idempotent resubmission. (stream, req_id) is the tick's idempotency
//    key. Every terminal reply is remembered in a bounded per-stream dedup
//    window; a resubmitted tick (a reconnected client retrying what it
//    never saw acknowledged) is answered verbatim from the window, and a
//    duplicate of a still-in-flight tick re-aims the eventual answer at
//    the new connection instead of re-executing. At-least-once on the
//    wire, exactly-once in effect.
//
//  * Survivable restart. With a journal_path configured, ring membership,
//    the dedup windows, and the SLO config ride a write-ahead journal
//    (journal.hpp); a SIGKILLed router restarts on the same endpoint,
//    re-registers the journaled replicas (unreachable ones enter the
//    quarantine/backoff path instead of failing construction), and serves
//    resubmissions from the recovered dedup state — clients just
//    reconnect and resume.
//
//  * Slow-consumer defense. Per-connection write buffers are bounded
//    (overflow drops the peer — resubmission makes the replies
//    recoverable), a connection with pending work but no byte progress
//    past the stall timeout is kicked (replicas into the quarantine path,
//    clients dropped), and a peer that sends a malformed envelope is
//    disconnected on the spot.
//
// The loop itself is single-threaded; the public admin/stats API is
// thread-safe through a command queue + wake pipe (the TSan suite drives
// it concurrently with traffic).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/io.hpp"
#include "cluster/journal.hpp"
#include "cluster/protocol.hpp"
#include "cluster/ring.hpp"
#include "net/assembler.hpp"
#include "net/hub.hpp"
#include "serve/estimator.hpp"
#include "serve/metrics.hpp"

namespace reads::cluster {

struct RouterConfig {
  Endpoint listen;
  /// Endpoints of the initial replica fleet, connected in the constructor.
  std::vector<std::string> replicas;
  /// SLO budgets: hard real-time (slo 0) and best-effort (slo 1).
  double hard_deadline_ms = 3.0;
  double best_effort_deadline_ms = 100.0;
  /// Hard-RT admission: admit only when elapsed + predicted round-trip
  /// <= margin x budget.
  double admission_margin = 0.9;
  bool admission_control = true;
  /// Per-replica outstanding-job cap (kQueueFull shed beyond it).
  std::size_t max_outstanding_per_replica = 128;
  /// Resharding hold bound per stream (kHeldTooLong shed beyond it).
  std::size_t max_held_per_stream = 256;
  /// Crash quarantine: reconnect attempts with exponential backoff.
  std::size_t reconnect_attempts = 5;
  double reconnect_backoff_initial_ms = 50.0;
  double reconnect_backoff_max_ms = 1000.0;
  double connect_timeout_ms = 2000.0;
  /// Graceful-shutdown drain bound.
  double drain_timeout_ms = 5000.0;
  std::size_t ring_vnodes = 64;
  /// Per-stream assembly parameters (monitors/hubs/validation gauntlet).
  net::AssemblerParams assembler;
  /// Seed for each replica's round-trip estimator.
  double initial_rtt_est_ms = 2.0;
  /// Write-ahead journal path (empty = no persistence). When the file
  /// already holds a previous incarnation's records, the constructor
  /// recovers: journaled membership replaces `replicas` (unreachable nodes
  /// quarantine instead of throwing), the dedup windows refill, and the
  /// journaled SLO config overrides the deadline/margin fields.
  std::string journal_path;
  /// Per-stream dedup window (entries). Must exceed any client's maximum
  /// unacknowledged in-flight window for resubmission to stay exactly-once.
  /// 0 disables dedup (and with it safe resubmission).
  std::size_t dedup_window = 256;
  /// Slow-consumer defense: a peer whose outbound buffer exceeds this is
  /// dropped (0 = unbounded).
  std::size_t max_outbuf_bytes = 8u << 20;
  /// A connection with pending work but no byte-level progress for this
  /// long is stalled: replicas are kicked into the quarantine path,
  /// clients are dropped. 0 disables.
  double stall_timeout_ms = 2000.0;
};

/// Cluster-specific counters beside the serve::Metrics admission/latency
/// view (exported inside the stats JSON as "cluster_counters").
struct RouterCounters {
  std::uint64_t bad_frames = 0;      ///< assembler gauntlet refusals
  std::uint64_t no_replica = 0;      ///< ring empty at routing time
  std::uint64_t held_overflow = 0;   ///< resharding hold bound exceeded
  std::uint64_t held_jobs = 0;       ///< jobs held during a drain
  std::uint64_t resharded_streams = 0;  ///< pins moved by ring changes
  std::uint64_t replica_crashes = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t redispatched_jobs = 0;  ///< moved after a crash
  std::uint64_t duplicate_results = 0;  ///< dropped by the dedup table
  std::uint64_t undeliverable_results = 0;  ///< client gone before reply
  std::uint64_t replica_sheds = 0;  ///< refusals forwarded from a replica
  std::uint64_t dedup_hits = 0;  ///< resubmissions answered from the window
  std::uint64_t inflight_rebinds = 0;  ///< duplicates re-aimed, not re-run
  std::uint64_t malformed_disconnects = 0;  ///< broken envelope streams
  std::uint64_t stalled_peers = 0;       ///< stall-timeout kicks
  std::uint64_t outbuf_overflows = 0;    ///< slow-consumer buffer drops
  std::uint64_t journal_recovered_nodes = 0;
  std::uint64_t journal_recovered_replies = 0;
};

class Router {
 public:
  /// Binds the listener and connects the initial fleet (throws if any
  /// initial replica is unreachable — a cluster that never formed).
  explicit Router(RouterConfig cfg);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  const Endpoint& bound() const noexcept { return listener_.bound; }

  /// Event loop; returns after a completed graceful shutdown.
  void run();

  /// Begin close-then-drain shutdown. Thread- and async-signal-safe.
  void request_stop() noexcept {
    stop_.store(1, std::memory_order_relaxed);
    wake_.wake();
  }

  // ---- thread-safe admin API (mirrors the wire admin messages) ----------

  /// Connect and add a replica; blocks until the ring changed. Returns the
  /// node id, or 0 when the connect failed.
  std::uint64_t add_replica(const std::string& endpoint);

  /// Remove a node; blocks until its in-flight jobs drained and every
  /// pinned stream moved (the exactly-once handoff point). False when the
  /// node is unknown.
  bool remove_replica(std::uint64_t node);

  /// Stats snapshot: {"router": <MetricsSnapshot JSON incl. samples>,
  ///  "cluster_counters": {...}, "nodes": [{"node", "endpoint",
  ///  "outstanding", "rtt_est_ms", "state"}]}. Blocks for the loop's reply.
  std::string stats_json();

 private:
  using Clock = std::chrono::steady_clock;

  struct ClientConn {
    std::uint64_t id = 0;
    Fd fd;
    MessageReader reader;
    std::vector<std::uint8_t> outbuf;
    bool alive = true;
    std::size_t outbuf_high_water = 0;
    double last_progress_ms = 0.0;  ///< steady ms of last byte in/out
  };

  /// A routed-but-unanswered job; kept serialized-enough (the Job struct)
  /// to be re-sent verbatim after a replica crash.
  struct InFlight {
    Job job;
    std::uint64_t client = 0;  ///< ClientConn id (0 = internal/lost client)
    std::uint64_t req_id = 0;
    Clock::time_point arrival{};
    double send_ms = 0.0;  ///< steady timestamp of the last dispatch
  };

  enum class NodeState : std::uint8_t { kConnected, kRemoving, kReconnecting };

  struct ReplicaConn {
    std::uint64_t node = 0;
    Endpoint endpoint;
    Fd fd;
    MessageReader reader;
    std::vector<std::uint8_t> outbuf;
    serve::ServiceEstimator rtt{1.0};
    std::map<std::uint64_t, InFlight> outstanding;  ///< by gid
    NodeState state = NodeState::kConnected;
    std::size_t attempts = 0;      ///< reconnects tried this quarantine
    double next_reconnect_ms = 0;  ///< steady ms
    /// Deferred kRemoveReplica acknowledgements (admin client id + local
    /// promise), fulfilled when the drain completes.
    std::uint64_t remove_waiter_client = 0;
    std::optional<std::promise<bool>> remove_promise;
    std::size_t outbuf_high_water = 0;
    double last_progress_ms = 0.0;  ///< steady ms of last byte in/out
  };

  struct StreamState {
    net::FrameAssembler assembler;
    bool pinned = false;
    std::uint64_t pin = 0;
    std::size_t inflight = 0;
    bool draining = false;
    std::deque<InFlight> held;
    explicit StreamState(const net::AssemblerParams& p) : assembler(p) {}
  };

  struct Command {
    enum class Kind : std::uint8_t { kAdd, kRemove, kStats, kStop } kind;
    std::string endpoint;
    std::uint64_t node = 0;
    std::promise<std::uint64_t> add_result;
    std::promise<bool> remove_result;
    std::promise<std::string> stats_result;
  };

  static double now_ms() noexcept;

  void enqueue(Command cmd);
  void process_commands();

  std::uint64_t do_add_replica(const std::string& endpoint);
  void do_remove_replica(ReplicaConn& rc);
  void finish_remove(std::uint64_t node, bool ok);

  void accept_clients();
  void read_client(ClientConn& c);
  void read_replica(ReplicaConn& rc);
  void handle_client_message(ClientConn& c, const Message& msg);
  void handle_submit(ClientConn& c, Submit&& submit);
  void handle_replica_message(ReplicaConn& rc, const Message& msg);

  /// Route (or hold, or shed) one accepted job. `admitted` jobs bypass the
  /// SLO admission check (held flushes and crash redispatches were already
  /// accepted and must not be silently re-judged).
  enum class RouteOutcome : std::uint8_t { kSent, kHeld, kShed };
  RouteOutcome route_job(InFlight&& inflight, bool run_admission,
                         ShedReason* shed_reason);
  void send_job(ReplicaConn& rc, InFlight&& inflight);

  void on_job_settled(std::uint64_t stream_id);
  void reevaluate_stream(std::uint64_t stream_id, StreamState& st);
  void flush_held(std::uint64_t stream_id, StreamState& st);
  void redispatch_outstanding(ReplicaConn& rc);
  void replica_gone(std::uint64_t node);
  void try_reconnects();

  void reply_shed(std::uint64_t stream, std::uint64_t client_id,
                  std::uint64_t req_id, ShedReason reason);
  /// Terminal-answer funnel: every result or shed that reaches a client
  /// passes through here, so the dedup window (and the journal) see every
  /// promise the router ever made.
  void finish_reply(std::uint64_t stream, std::uint64_t req_id,
                    std::uint64_t client_id, std::vector<std::uint8_t>&& bytes);
  void send_to_client(std::uint64_t client_id,
                      const std::vector<std::uint8_t>& bytes);
  void flush_outbuf(int fd, std::vector<std::uint8_t>& outbuf, bool& alive,
                    double* last_progress_ms);

  // ---- idempotent resubmission ------------------------------------------
  const std::vector<std::uint8_t>* dedup_find(std::uint64_t stream,
                                              std::uint64_t req_id) const;
  void dedup_store(std::uint64_t stream, std::uint64_t req_id,
                   const std::vector<std::uint8_t>& bytes, bool journal);
  /// Re-aim a still-in-flight duplicate's eventual answer at `client_id`.
  void rebind_inflight(std::uint64_t stream, std::uint64_t gid,
                       std::uint64_t client_id);

  // ---- survivable restart / slow-consumer defense -----------------------
  /// Re-register a journaled replica under its old node id; connect
  /// failures quarantine (backoff path) instead of throwing.
  void recover_replica(std::uint64_t node, const std::string& endpoint);
  void check_stalls();

  void begin_shutdown();
  bool shutdown_drained() const;
  std::string stats_json_now();

  RouterConfig cfg_;
  Listener listener_;
  WakePipe wake_;
  std::atomic<int> stop_{0};
  bool shutting_down_ = false;
  double shutdown_start_ms_ = 0.0;

  std::mutex command_mutex_;
  std::vector<Command> commands_;

  HashRing ring_;
  std::map<std::uint64_t, ClientConn> clients_;          ///< by client id
  std::map<std::uint64_t, std::unique_ptr<ReplicaConn>> replicas_;  ///< by node
  std::unordered_map<std::uint64_t, StreamState> streams_;

  /// Bounded FIFO of remembered terminal replies, per stream.
  struct DedupWindow {
    std::deque<std::uint64_t> order;  ///< req_ids, oldest first
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> replies;
  };
  std::unordered_map<std::uint64_t, DedupWindow> dedup_;
  std::size_t dedup_entries_ = 0;
  /// (stream, req_id) -> gid for accepted-but-unanswered jobs, so a
  /// duplicate submission rebinds instead of re-executing.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
      inflight_keys_;
  RouterJournal journal_;
  /// High-water mark across every client connection ever (survives drops).
  std::size_t client_outbuf_high_water_ = 0;

  std::uint64_t next_client_id_ = 1;
  std::uint64_t next_node_id_ = 1;
  std::uint64_t next_gid_ = 1;

  /// Scratch + deferred work collected while iterating the connection
  /// tables (mutating them mid-iteration would invalidate the iteration).
  std::vector<net::Delivery> deliveries_;
  std::vector<std::uint64_t> gone_replicas_;
  std::vector<std::uint64_t> finished_removes_;

  serve::Metrics metrics_;
  RouterCounters counters_;
  Clock::time_point started_{};
};

}  // namespace reads::cluster
