#include "cluster/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <span>
#include <system_error>

#include "net/packet.hpp"
#include "net/wire.hpp"

namespace reads::cluster {

namespace {

constexpr std::uint8_t kNode = 1;
constexpr std::uint8_t kSlo = 2;
constexpr std::uint8_t kReply = 3;

std::uint32_t record_crc(std::uint8_t type, const std::uint8_t* payload,
                         std::size_t len) noexcept {
  net::Crc32 crc;
  crc.add_byte(type);
  for (std::size_t i = 0; i < len; ++i) crc.add_byte(payload[i]);
  return crc.value();
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  net::put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

RouterJournal::RouterJournal(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "RouterJournal: open " + path);
  }
  fd_ = Fd(fd);
}

void RouterJournal::append(std::uint8_t type,
                           const std::vector<std::uint8_t>& payload) {
  if (!fd_.valid()) return;
  std::vector<std::uint8_t> rec;
  rec.reserve(payload.size() + 9);
  net::put_u8(rec, type);
  net::put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  rec.insert(rec.end(), payload.begin(), payload.end());
  net::put_u32(rec, record_crc(type, payload.data(), payload.size()));
  // One write(2) per record: O_APPEND makes the append atomic enough for a
  // single-writer journal, and a record torn by a mid-write kill fails its
  // CRC on replay.
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_.get(), rec.data() + off, rec.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // journal degraded (disk full?): serving must not stop
    }
    off += static_cast<std::size_t>(n);
  }
}

void RouterJournal::record_node(const JournalNode& n) {
  std::vector<std::uint8_t> p;
  net::put_u64(p, n.node);
  net::put_u8(p, n.alive ? 1 : 0);
  put_string(p, n.endpoint);
  append(kNode, p);
}

void RouterJournal::record_slo(const JournalSlo& s) {
  std::vector<std::uint8_t> p;
  net::put_u64(p, std::bit_cast<std::uint64_t>(s.hard_deadline_ms));
  net::put_u64(p, std::bit_cast<std::uint64_t>(s.best_effort_deadline_ms));
  net::put_u64(p, std::bit_cast<std::uint64_t>(s.admission_margin));
  append(kSlo, p);
}

void RouterJournal::record_reply(std::uint64_t stream, std::uint64_t req_id,
                                 const std::vector<std::uint8_t>& reply) {
  std::vector<std::uint8_t> p;
  net::put_u64(p, stream);
  net::put_u64(p, req_id);
  net::put_u32(p, static_cast<std::uint32_t>(reply.size()));
  p.insert(p.end(), reply.begin(), reply.end());
  append(kReply, p);
}

JournalState RouterJournal::replay(const std::string& path) {
  JournalState state;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return state;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  // Membership is last-writer-wins per node; dead nodes drop out.
  std::vector<JournalNode> nodes;
  std::size_t off = 0;
  while (bytes.size() - off >= 9) {
    const std::uint8_t type = bytes[off];
    const std::uint32_t len = net::get_u32(bytes.data() + off + 1);
    if (bytes.size() - off < 9u + len) break;  // torn tail record
    const std::uint8_t* payload = bytes.data() + off + 5;
    const std::uint32_t crc = net::get_u32(payload + len);
    if (crc != record_crc(type, payload, len)) break;
    off += 9u + len;

    const std::span<const std::uint8_t> p(payload, len);
    if (type == kNode && len >= 13) {
      JournalNode n;
      n.node = net::get_u64(p.data());
      n.alive = p[8] != 0;
      const std::uint32_t slen = net::get_u32(p.data() + 9);
      if (13u + slen > len) break;
      n.endpoint.assign(reinterpret_cast<const char*>(p.data() + 13), slen);
      state.max_node_id = std::max(state.max_node_id, n.node);
      bool found = false;
      for (auto& existing : nodes) {
        if (existing.node == n.node) {
          existing = n;
          found = true;
          break;
        }
      }
      if (!found) nodes.push_back(std::move(n));
    } else if (type == kSlo && len >= 24) {
      JournalSlo s;
      s.hard_deadline_ms = std::bit_cast<double>(net::get_u64(p.data()));
      s.best_effort_deadline_ms =
          std::bit_cast<double>(net::get_u64(p.data() + 8));
      s.admission_margin = std::bit_cast<double>(net::get_u64(p.data() + 16));
      state.slo = s;
    } else if (type == kReply && len >= 20) {
      JournalReply r;
      r.stream = net::get_u64(p.data());
      r.req_id = net::get_u64(p.data() + 8);
      const std::uint32_t rlen = net::get_u32(p.data() + 16);
      if (20u + rlen > len) break;
      r.reply.assign(p.data() + 20, p.data() + 20 + rlen);
      state.replies.push_back(std::move(r));
    }
    // Unknown record types are skipped (CRC already vouched for framing):
    // a newer router's journal must not brick an older one.
  }
  for (auto& n : nodes) {
    if (n.alive) state.nodes.push_back(std::move(n));
  }
  return state;
}

}  // namespace reads::cluster
