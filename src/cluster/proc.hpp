// Child-process management for the multi-process bench and tests.
//
// spawn() forks and execs a command (typically /proc/self/exe with a role
// flag, so the bench binary is its own replica/router image) with the
// child's stdout on a pipe; the parent reads the "LISTENING <endpoint>"
// handshake line to learn kernel-assigned ports before wiring the cluster
// together. Termination is two-stage: SIGTERM for the graceful
// close-then-drain path under test, SIGKILL as the crash injection (and
// the cleanup backstop).
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "cluster/io.hpp"

namespace reads::cluster {

class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess() { kill_hard(); }

  ChildProcess(ChildProcess&& o) noexcept
      : pid_(o.pid_),
        stdout_fd_(std::move(o.stdout_fd_)),
        line_buf_(std::move(o.line_buf_)) {
    o.pid_ = -1;
  }
  ChildProcess& operator=(ChildProcess&& o) noexcept {
    if (this != &o) {
      kill_hard();
      pid_ = o.pid_;
      o.pid_ = -1;
      stdout_fd_ = std::move(o.stdout_fd_);
      line_buf_ = std::move(o.line_buf_);
    }
    return *this;
  }
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  pid_t pid() const noexcept { return pid_; }
  bool valid() const noexcept { return pid_ > 0; }

  /// Still running (non-blocking reap check).
  bool running();

  /// Read one '\n'-terminated line from the child's stdout (the startup
  /// handshake). Empty string on timeout/EOF.
  std::string read_line(double timeout_ms);

  /// SIGTERM, wait up to `timeout_ms` for a clean exit, then escalate to
  /// SIGKILL. True when the child exited without the escalation.
  bool terminate(double timeout_ms);

  /// Immediate SIGKILL + reap (crash injection; also the destructor path).
  void kill_hard();

  /// Blocking reap; returns the raw waitpid status (-1 when not running).
  int wait();

 private:
  friend ChildProcess spawn(const std::vector<std::string>& argv);

  pid_t pid_ = -1;
  Fd stdout_fd_;
  std::string line_buf_;
};

/// Fork + exec `argv` (argv[0] is the executable path) with stdout piped
/// back to the parent. Throws std::system_error when the fork/pipe fails;
/// exec failure surfaces as the child exiting 127.
ChildProcess spawn(const std::vector<std::string>& argv);

}  // namespace reads::cluster
