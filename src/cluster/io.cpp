#include "cluster/io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <vector>

namespace reads::cluster {

namespace {

std::atomic<IoTap*> g_io_tap{nullptr};

}  // namespace

void set_io_tap(IoTap* tap) noexcept {
  g_io_tap.store(tap, std::memory_order_release);
}

IoTap* io_tap() noexcept { return g_io_tap.load(std::memory_order_acquire); }

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// sockaddr for `ep`; returns the usable length.
socklen_t fill_sockaddr(const Endpoint& ep, sockaddr_storage& ss) {
  std::memset(&ss, 0, sizeof(ss));
  if (ep.transport == Transport::kTcp) {
    auto* in = reinterpret_cast<sockaddr_in*>(&ss);
    in->sin_family = AF_INET;
    in->sin_port = htons(ep.port);
    const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
    if (::inet_pton(AF_INET, host.c_str(), &in->sin_addr) != 1) {
      throw std::invalid_argument("Endpoint: bad IPv4 host '" + ep.host + "'");
    }
    return sizeof(sockaddr_in);
  }
  auto* un = reinterpret_cast<sockaddr_un*>(&ss);
  un->sun_family = AF_UNIX;
  if (ep.path.size() + 1 > sizeof(un->sun_path)) {
    throw std::invalid_argument("Endpoint: UDS path too long: " + ep.path);
  }
  std::memcpy(un->sun_path, ep.path.c_str(), ep.path.size() + 1);
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                ep.path.size() + 1);
}

Fd make_socket(Transport t) {
  const int domain = t == Transport::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  if (t == Transport::kTcp) set_nodelay(fd.get());
  return fd;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// poll one fd for `events`; true when ready before the deadline.
/// `deadline_ms` < 0 waits forever.
bool poll_one(int fd, short events, double deadline_ms) {
  for (;;) {
    int wait = -1;
    if (deadline_ms >= 0.0) {
      const double left = deadline_ms - now_ms();
      if (left <= 0.0) return false;
      wait = static_cast<int>(left) + 1;
    }
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) continue;  // re-check deadline
    return true;
  }
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    if (IoTap* tap = io_tap()) tap->on_close(fd_);
    // POSIX leaves the fd state unspecified on EINTR from close(); Linux
    // always releases it, so retrying would race a concurrent open. Close
    // once and move on.
    ::close(fd_);
    fd_ = -1;
  }
}

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("uds:", 0) == 0) {
    ep.transport = Transport::kUds;
    ep.path = spec.substr(4);
    if (ep.path.empty()) {
      throw std::invalid_argument("Endpoint: empty UDS path in '" + spec + "'");
    }
    sockaddr_un probe;
    if (ep.path.size() + 1 > sizeof(probe.sun_path)) {
      throw std::invalid_argument("Endpoint: UDS path too long: " + ep.path);
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.transport = Transport::kTcp;
    const auto colon = spec.rfind(':');
    if (colon == 3) {
      throw std::invalid_argument("Endpoint: missing port in '" + spec + "'");
    }
    ep.host = spec.substr(4, colon - 4);
    const std::string port = spec.substr(colon + 1);
    if (ep.host.empty() || port.empty() ||
        port.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("Endpoint: bad tcp spec '" + spec + "'");
    }
    const unsigned long v = std::stoul(port);
    if (v > 65535) {
      throw std::invalid_argument("Endpoint: port out of range in '" + spec +
                                  "'");
    }
    ep.port = static_cast<std::uint16_t>(v);
    return ep;
  }
  throw std::invalid_argument("Endpoint: expected tcp:host:port or uds:path, "
                              "got '" +
                              spec + "'");
}

std::string Endpoint::str() const {
  if (transport == Transport::kUds) return "uds:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Listener listen_on(const Endpoint& ep) {
  Fd fd = make_socket(ep.transport);
  if (ep.transport == Transport::kTcp) {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    ::unlink(ep.path.c_str());  // stale socket file from a dead process
  }
  sockaddr_storage ss;
  const socklen_t len = fill_sockaddr(ep, ss);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&ss), len) != 0) {
    throw_errno("bind " + ep.str());
  }
  if (::listen(fd.get(), 64) != 0) throw_errno("listen " + ep.str());

  Listener out{std::move(fd), ep};
  if (ep.transport == Transport::kTcp && ep.port == 0) {
    sockaddr_in actual{};
    socklen_t alen = sizeof(actual);
    if (::getsockname(out.fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &alen) != 0) {
      throw_errno("getsockname");
    }
    out.bound.port = ntohs(actual.sin_port);
  }
  return out;
}

Fd connect_to(const Endpoint& ep, double timeout_ms) {
  if (IoTap* tap = io_tap(); tap != nullptr && tap->refuse_connect(ep)) {
    errno = ECONNREFUSED;
    throw_errno("connect " + ep.str());
  }
  Fd fd = make_socket(ep.transport);
  sockaddr_storage ss;
  const socklen_t len = fill_sockaddr(ep, ss);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&ss), len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) throw_errno("connect " + ep.str());
  if (rc != 0) {
    const double deadline = now_ms() + timeout_ms;
    if (!poll_one(fd.get(), POLLOUT, deadline)) {
      errno = ETIMEDOUT;
      throw_errno("connect " + ep.str());
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0) {
      throw_errno("getsockopt " + ep.str());
    }
    if (soerr != 0) {
      errno = soerr;
      throw_errno("connect " + ep.str());
    }
  }
  if (IoTap* tap = io_tap()) tap->on_open(fd.get(), true);
  return fd;
}

Fd accept_conn(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      set_nodelay(fd);  // no-op (ENOTSUP) on UDS
      if (IoTap* tap = io_tap()) tap->on_open(fd, false);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    return Fd();  // EAGAIN / transient accept error: nothing pending
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

std::ptrdiff_t read_some(int fd, std::uint8_t* buf, std::size_t len) {
  IoTap* const tap = io_tap();
  if (tap != nullptr && !tap->gate_read(fd)) return 0;
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) {
      if (tap != nullptr) {
        tap->mangle_read(fd, buf, static_cast<std::size_t>(n));
      }
      return n;
    }
    if (n == 0) return -1;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;  // ECONNRESET and friends: peer gone
  }
}

namespace {

std::ptrdiff_t send_some(int fd, const std::uint8_t* buf, std::size_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

}  // namespace

std::ptrdiff_t write_some(int fd, const std::uint8_t* buf, std::size_t len) {
  IoTap* const tap = io_tap();
  if (tap == nullptr || len == 0) return send_some(fd, buf, len);
  const std::ptrdiff_t allow = tap->gate_write(fd, len);
  if (allow == IoTap::kTear) {
    // Tear both directions so the peer observes the reset too — a chaos
    // "connection reset" must look like the real thing from both ends.
    ::shutdown(fd, SHUT_RDWR);
    return -1;
  }
  if (allow == 0) return 0;  // simulated EAGAIN
  const std::size_t clamped =
      std::min(len, static_cast<std::size_t>(allow));
  // Mangle a private copy: the caller's buffer is immutable, and on a
  // partial send the unsent suffix is re-offered (and re-mangled) later.
  thread_local std::vector<std::uint8_t> scratch;
  scratch.assign(buf, buf + clamped);
  tap->mangle_write(fd, scratch.data(), clamped);
  return send_some(fd, scratch.data(), clamped);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len,
               double timeout_ms) {
  const double deadline = timeout_ms < 0.0 ? -1.0 : now_ms() + timeout_ms;
  std::size_t off = 0;
  while (off < len) {
    const std::ptrdiff_t n = write_some(fd, data + off, len - off);
    if (n < 0) return false;
    if (n == 0) {
      if (!poll_one(fd, POLLOUT, deadline)) return false;
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len,
                double timeout_ms) {
  const double deadline = timeout_ms < 0.0 ? -1.0 : now_ms() + timeout_ms;
  std::size_t off = 0;
  while (off < len) {
    const std::ptrdiff_t n = read_some(fd, data + off, len - off);
    if (n < 0) return false;
    if (n == 0) {
      if (!poll_one(fd, POLLIN, deadline)) return false;
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void WakePipe::wake() const noexcept {
  const std::uint8_t b = 1;
  // A full pipe already guarantees the loop will wake; EINTR on a 1-byte
  // pipe write cannot leave a partial write behind.
  [[maybe_unused]] const ssize_t n = ::write(w.get(), &b, 1);
}

void WakePipe::drain() const noexcept {
  std::uint8_t buf[64];
  while (read_some(r.get(), buf, sizeof(buf)) > 0) {
  }
}

WakePipe make_wake_pipe() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) throw_errno("pipe2");
  return WakePipe{Fd(fds[0]), Fd(fds[1])};
}

void Poller::want(int fd, bool read, bool write) {
  short events = 0;
  if (read) events |= POLLIN;
  if (write) events |= POLLOUT;
  fds_.push_back(pollfd{fd, events, 0});
}

int Poller::wait(int timeout_ms) {
  if (fds_.empty()) return 0;
  const int rc = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (rc < 0) {
    if (errno != EINTR) throw_errno("poll");
    return 0;
  }
  return rc;
}

short Poller::revents(int fd) const {
  for (const auto& p : fds_) {
    if (p.fd == fd) return p.revents;
  }
  return 0;
}

bool Poller::readable(int fd) const {
  return (revents(fd) & (POLLIN | POLLHUP | POLLERR)) != 0;
}

bool Poller::writable(int fd) const {
  return (revents(fd) & (POLLOUT | POLLHUP | POLLERR)) != 0;
}

}  // namespace reads::cluster
