// Streaming statistics and histograms used by the latency/accuracy harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace reads::util {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Forget every sample (re-arm for a new measurement window).
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a retained sample vector. Retention is fine at the
/// scales we run (<= a few million doubles); nearest-rank definition.
class Percentiles {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }
  std::size_t count() const noexcept { return values_.size(); }

  /// Drop all samples but keep the retained capacity, so a per-epoch
  /// metrics window can be re-armed without reallocating its sample buffer
  /// (serve/lifecycle reset distributions at every model-swap epoch).
  void reset() noexcept {
    values_.clear();
    sorted_ = false;
  }

  /// p in [0, 100]. Sorts lazily on first query after the last insertion.
  double percentile(double p);
  double median() { return percentile(50.0); }

  /// JSON object of nearest-rank percentiles, e.g.
  /// {"count": 12, "p50": 1.5, "p99": 3.2, "p99.97": 3.9, "max": 4.0}.
  /// Empty samples yield {"count": 0}.
  std::string summary_json(
      std::initializer_list<double> percents = {50.0, 90.0, 99.0, 99.97});

  /// Append every retained sample from `other`; percentiles over the merged
  /// set are then exact (the cluster report folds per-process samples this
  /// way rather than averaging per-process percentiles).
  void merge(const Percentiles& other);

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  void ensure_sorted();
  std::vector<double> values_;
  bool sorted_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are counted by
/// the underflow/overflow tallies (and rendered as explicit `< lo` / `>= hi`
/// rows by ascii()) so nothing is silently dropped — and edge bins hold only
/// in-range samples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Zero every bin and the under/overflow tallies in place; the bin layout
  /// (lo, hi, bin count) is preserved and no memory is released, so swap
  /// epochs can re-arm histograms on the hot path without reallocation.
  void reset() noexcept;

  std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  std::size_t bins() const noexcept { return bins_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }

  /// Render an ASCII bar chart (one line per non-empty bin).
  std::string ascii(std::size_t width = 50) const;

  /// JSON object carrying the full state, including the underflow/overflow
  /// tallies:
  ///   {"lo": .., "hi": .., "bins": [..], "underflow": n, "overflow": n,
  ///    "total": n}
  /// from_json(to_json()) reconstructs an identical histogram (round-trip
  /// regression-tested); from_json throws std::invalid_argument on
  /// malformed input or inconsistent totals.
  std::string to_json() const;
  static Histogram from_json(const std::string& json);

  /// Add `other`'s bins and underflow/overflow/total tallies into this
  /// histogram. Both must share the exact layout (lo, hi, bin count) —
  /// cross-process aggregation only makes sense bin-for-bin — otherwise
  /// std::invalid_argument.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Shortest decimal string that round-trips the double. Every JSON export
/// in this codebase that may be re-parsed (histogram snapshots, cluster
/// metrics aggregation) formats doubles through this so parse(emit(x)) == x
/// and re-emitting a parsed snapshot reproduces the original text.
std::string json_double(double v);

}  // namespace reads::util
