#include "util/cli.hpp"

#include <stdexcept>

namespace reads::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag[=value], got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // bare flag => boolean true
      seen_[arg] = false;
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      seen_[arg.substr(0, eq)] = false;
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) {
  auto it = values_.find(name);
  seen_[name] = true;
  if (it == values_.end()) return def;
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double def) {
  auto it = values_.find(name);
  seen_[name] = true;
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

std::string Cli::get_string(const std::string& name, const std::string& def) {
  auto it = values_.find(name);
  seen_[name] = true;
  if (it == values_.end()) return def;
  return it->second;
}

bool Cli::get_bool(const std::string& name, bool def) {
  auto it = values_.find(name);
  seen_[name] = true;
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Cli::check_unknown() const {
  for (const auto& [name, used] : seen_) {
    if (!used && name.rfind("benchmark_", 0) != 0) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
  }
}

}  // namespace reads::util
