// ASCII table / CSV rendering for the benchmark harnesses, so every bench
// prints rows in the same layout as the paper's tables.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace reads::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Formatting helpers for cells.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  /// Render with column-aligned ASCII borders.
  void print(std::ostream& out) const;
  std::string to_string() const;
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reads::util
