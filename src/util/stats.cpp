#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reads::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Percentiles::ensure_sorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double p) {
  if (values_.empty()) throw std::logic_error("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  ensure_sorted();
  if (p == 0.0) return values_.front();
  const auto n = static_cast<double>(values_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return values_[std::min(values_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  // Out-of-range samples are tracked only by the underflow/overflow
  // counters; folding them into the edge bins as well would double-count
  // them against total() and skew the edge bars.
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(bins_.size()));
  if (idx >= bins_.size()) idx = bins_.size() - 1;  // guard fp edge
  ++bins_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(bins_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = std::max(underflow_, overflow_);
  for (auto c : bins_) peak = std::max(peak, c);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(4);
  const auto row = [&](const std::string& label, std::size_t count) {
    const auto bar = peak == 0 ? std::size_t{0} : count * width / peak;
    out << label << ' ' << std::string(std::max<std::size_t>(bar, 1), '#')
        << ' ' << count << '\n';
  };
  if (underflow_ > 0) {
    std::ostringstream label;
    label.setf(std::ios::fixed);
    label.precision(4);
    label << "< " << lo_ << "        ";
    row(label.str(), underflow_);
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    std::ostringstream label;
    label.setf(std::ios::fixed);
    label.precision(4);
    label << '[' << bin_lo(i) << ", " << bin_hi(i) << ")";
    row(label.str(), bins_[i]);
  }
  if (overflow_ > 0) {
    std::ostringstream label;
    label.setf(std::ios::fixed);
    label.precision(4);
    label << ">= " << hi_ << "       ";
    row(label.str(), overflow_);
  }
  return out.str();
}

}  // namespace reads::util
