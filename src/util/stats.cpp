#include "util/stats.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace reads::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Percentiles::ensure_sorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double p) {
  if (values_.empty()) throw std::logic_error("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  ensure_sorted();
  if (p == 0.0) return values_.front();
  const auto n = static_cast<double>(values_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return values_[std::min(values_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string json_double(double v) {
  std::ostringstream s;
  s.precision(std::numeric_limits<double>::max_digits10);
  s << v;
  return s.str();
}

void Percentiles::merge(const Percentiles& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  if (!other.values_.empty()) sorted_ = false;
}

namespace {

/// Shortest decimal that round-trips the double (snapshots get re-parsed).
void append_double(std::ostringstream& out, double v) {
  out << json_double(v);
}

/// Trim a percent label: 99.0 -> "p99", 99.97 -> "p99.97".
std::string percent_key(double p) {
  std::ostringstream s;
  s << 'p' << p;
  return s.str();
}

}  // namespace

std::string Percentiles::summary_json(std::initializer_list<double> percents) {
  std::ostringstream out;
  out << "{\"count\": " << values_.size();
  if (!values_.empty()) {
    for (double p : percents) {
      out << ", \"" << percent_key(p) << "\": ";
      append_double(out, percentile(p));
    }
    out << ", \"max\": ";
    append_double(out, percentile(100.0));
  }
  out << "}";
  return out.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::reset() noexcept {
  std::fill(bins_.begin(), bins_.end(), std::size_t{0});
  total_ = 0;
  underflow_ = 0;
  overflow_ = 0;
}

void Histogram::add(double x) noexcept {
  ++total_;
  // Out-of-range samples are tracked only by the underflow/overflow
  // counters; folding them into the edge bins as well would double-count
  // them against total() and skew the edge bars.
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(bins_.size()));
  if (idx >= bins_.size()) idx = bins_.size() - 1;  // guard fp edge
  ++bins_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      bins_.size() != other.bins_.size()) {
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(bins_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = std::max(underflow_, overflow_);
  for (auto c : bins_) peak = std::max(peak, c);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(4);
  const auto row = [&](const std::string& label, std::size_t count) {
    const auto bar = peak == 0 ? std::size_t{0} : count * width / peak;
    out << label << ' ' << std::string(std::max<std::size_t>(bar, 1), '#')
        << ' ' << count << '\n';
  };
  if (underflow_ > 0) {
    std::ostringstream label;
    label.setf(std::ios::fixed);
    label.precision(4);
    label << "< " << lo_ << "        ";
    row(label.str(), underflow_);
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    std::ostringstream label;
    label.setf(std::ios::fixed);
    label.precision(4);
    label << '[' << bin_lo(i) << ", " << bin_hi(i) << ")";
    row(label.str(), bins_[i]);
  }
  if (overflow_ > 0) {
    std::ostringstream label;
    label.setf(std::ios::fixed);
    label.precision(4);
    label << ">= " << hi_ << "       ";
    row(label.str(), overflow_);
  }
  return out.str();
}

std::string Histogram::to_json() const {
  std::ostringstream out;
  out << "{\"lo\": ";
  append_double(out, lo_);
  out << ", \"hi\": ";
  append_double(out, hi_);
  out << ", \"bins\": [";
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (i) out << ", ";
    out << bins_[i];
  }
  out << "], \"underflow\": " << underflow_ << ", \"overflow\": " << overflow_
      << ", \"total\": " << total_ << "}";
  return out.str();
}

namespace {

/// Minimal scanning parser for the flat objects this module emits. Finds
/// `"key":` and parses the value after it; not a general JSON library.
struct JsonScan {
  const std::string& text;

  std::size_t value_pos(const std::string& key) const {
    const std::string needle = "\"" + key + "\"";
    const auto k = text.find(needle);
    if (k == std::string::npos) {
      throw std::invalid_argument("stats JSON: missing key '" + key + "'");
    }
    auto p = text.find(':', k + needle.size());
    if (p == std::string::npos) {
      throw std::invalid_argument("stats JSON: key '" + key + "' has no value");
    }
    ++p;
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    return p;
  }

  double number(const std::string& key) const {
    const auto p = value_pos(key);
    const char* start = text.c_str() + p;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      throw std::invalid_argument("stats JSON: key '" + key +
                                  "' is not a number");
    }
    return v;
  }

  std::size_t count(const std::string& key) const {
    const double v = number(key);
    if (v < 0.0 || v != std::floor(v)) {
      throw std::invalid_argument("stats JSON: key '" + key +
                                  "' is not a count");
    }
    return static_cast<std::size_t>(v);
  }

  std::vector<std::size_t> count_array(const std::string& key) const {
    auto p = value_pos(key);
    if (text[p] != '[') {
      throw std::invalid_argument("stats JSON: key '" + key +
                                  "' is not an array");
    }
    ++p;
    std::vector<std::size_t> out;
    for (;;) {
      while (p < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[p])) ||
              text[p] == ',')) {
        ++p;
      }
      if (p >= text.size()) {
        throw std::invalid_argument("stats JSON: unterminated array");
      }
      if (text[p] == ']') break;
      const char* start = text.c_str() + p;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end == start || v < 0.0 || v != std::floor(v)) {
        throw std::invalid_argument("stats JSON: bad array element");
      }
      out.push_back(static_cast<std::size_t>(v));
      p += static_cast<std::size_t>(end - start);
    }
    return out;
  }
};

}  // namespace

Histogram Histogram::from_json(const std::string& json) {
  const JsonScan scan{json};
  const double lo = scan.number("lo");
  const double hi = scan.number("hi");
  const auto bins = scan.count_array("bins");
  Histogram h(lo, hi, bins.size());  // validates hi > lo, bins > 0
  h.bins_ = bins;
  h.underflow_ = scan.count("underflow");
  h.overflow_ = scan.count("overflow");
  h.total_ = scan.count("total");
  std::size_t in_range = 0;
  for (auto c : bins) in_range += c;
  if (in_range + h.underflow_ + h.overflow_ != h.total_) {
    throw std::invalid_argument("stats JSON: histogram totals inconsistent");
  }
  return h;
}

}  // namespace reads::util
