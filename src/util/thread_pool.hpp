// A small fixed-size thread pool with a blocking parallel_for.
//
// Training and the accuracy sweeps are embarrassingly parallel over samples;
// on multi-core hosts the pool gives near-linear speedup, and on single-core
// hosts parallel_for degrades to a plain loop with no thread overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reads::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() - 1 (the calling thread
  /// participates in parallel_for, so one fewer worker is spawned).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks.
  /// Blocks until every index has been processed. fn must be safe to call
  /// concurrently for distinct indices. Exceptions from fn terminate (the
  /// workloads here are noexcept in practice; keep it simple and honest).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized from the hardware. Lazily constructed.
  static ThreadPool& global();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace reads::util
