// A small fixed-size thread pool with a blocking parallel_for.
//
// Training and the accuracy sweeps are embarrassingly parallel over samples;
// on multi-core hosts the pool gives near-linear speedup, and on single-core
// hosts parallel_for degrades to a plain loop with no thread overhead.
//
// Shutdown-safety contract (audited; stress-tested in test_util, run under
// TSan by tools/check.sh):
//  - The destructor closes the queue, wakes every worker, drains all
//    already-enqueued tasks, and joins. It must only race with nothing:
//    no thread may call parallel_for concurrently with destruction (the
//    blocking parallel_for makes that impossible for well-formed callers —
//    every task a caller enqueued has completed before its call returns).
//  - enqueue() after stop would strand a task (its parallel_for would wait
//    forever), so it throws std::logic_error instead of silently accepting.
//  - parallel_for is safe to call concurrently from many threads, including
//    from inside tasks running on *another* pool; calling it from inside
//    one of this pool's own tasks risks deadlock (workers waiting on
//    workers) and is not supported.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reads::util {

/// Where batch-style entry points run their per-item work: fanned out on
/// the global pool (default), or inline on the calling thread — the serving
/// gateway pins each replica's batches to the replica's own core this way.
enum class Exec : unsigned char { kPool, kCaller };

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() - 1 (the calling thread
  /// participates in parallel_for, so one fewer worker is spawned).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks.
  /// Blocks until every index has been processed. fn must be safe to call
  /// concurrently for distinct indices. Exceptions from fn terminate (the
  /// workloads here are noexcept in practice; keep it simple and honest).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized from the hardware. Lazily constructed.
  static ThreadPool& global();

  /// Fix the global pool's size before anything has used it (benches pin
  /// worker counts for reproducible runs). Throws std::logic_error if the
  /// global pool already exists.
  static void set_global_threads(std::size_t threads);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool. Exec::kCaller (or an empty
/// pool) runs the loop inline on the calling thread.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  Exec exec = Exec::kPool);

}  // namespace reads::util
