// Per-thread scratch arena backing the inference hot paths.
//
// The float and quantized forward passes are called once per frame inside
// parallel_for loops (accuracy sweeps, training, the SoC stream harness);
// allocating activation buffers per frame dominated the profile. The arena
// is a bump allocator over one grow-only block: a pass reserves its total
// footprint up front with require(), carves typed spans with alloc(), and
// an ArenaScope rewinds everything on exit so nested passes stack.
//
// Storage is kept in 8-byte words, so any T with alignof(T) <= 8 (the
// int64/float/int32 buffers used by the kernels) is served aligned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace reads::util {

class ScratchArena {
 public:
  /// Ensure capacity for at least `words` 8-byte words. Growth is only legal
  /// while no allocation is outstanding: live spans point into the block.
  void require_words(std::size_t words) {
    if (words <= buf_.size()) return;
    if (used_ != 0) {
      throw std::logic_error(
          "ScratchArena: cannot grow with outstanding allocations");
    }
    buf_.resize(words);
  }

  template <typename T>
  void require(std::size_t count) {
    require_words(words_for<T>(count));
  }

  /// Carve `count` elements of T from the reserved block. The span stays
  /// valid until the enclosing ArenaScope rewinds past it.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(alignof(T) <= alignof(std::int64_t),
                  "ScratchArena serves 8-byte-aligned storage");
    const std::size_t words = words_for<T>(count);
    if (used_ + words > buf_.size()) {
      // Growing here would invalidate spans handed out earlier in the
      // scope; callers must size the arena with require() first.
      if (used_ == 0) {
        buf_.resize(used_ + words);
      } else {
        throw std::logic_error("ScratchArena: alloc exceeds reserved scratch");
      }
    }
    T* base = reinterpret_cast<T*>(buf_.data() + used_);
    used_ += words;
    return {base, count};
  }

  std::size_t used_words() const noexcept { return used_; }
  std::size_t capacity_words() const noexcept { return buf_.size(); }
  void rewind(std::size_t mark) noexcept { used_ = mark; }

  /// The calling thread's arena (thread pool workers each get their own).
  static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

 private:
  template <typename T>
  static std::size_t words_for(std::size_t count) {
    return (count * sizeof(T) + sizeof(std::int64_t) - 1) /
           sizeof(std::int64_t);
  }

  std::vector<std::int64_t> buf_;
  std::size_t used_ = 0;
};

/// RAII mark/rewind over a ScratchArena, so a pass frees its scratch on any
/// exit path and nested passes (e.g. a kernel inside a model forward) stack.
class ArenaScope {
 public:
  explicit ArenaScope(ScratchArena& arena)
      : arena_(arena), mark_(arena.used_words()) {}
  ~ArenaScope() { arena_.rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  ScratchArena& arena_;
  std::size_t mark_;
};

}  // namespace reads::util
