// Deterministic, seedable random number generation.
//
// Everything in READS-Edge that involves randomness (synthetic beam-loss
// events, weight initialization, OS-jitter sampling) draws from these
// generators so that every experiment is bit-reproducible from its seed.
// std::mt19937 is avoided because its distribution implementations are not
// specified to be identical across standard libraries; the generators and
// distributions here are fully self-contained.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace reads::util {

/// SplitMix64: tiny, fast generator mainly used to seed Xoshiro streams and
/// to derive independent per-purpose seeds from one master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Passes BigCrush; 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (no trig, deterministic).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept {
    return -std::log(1.0 - uniform()) / lambda;
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Derive an independent seed for a named purpose from a master seed.
/// Purposes are small integers documented at the call site; the same
/// (master, purpose) pair always yields the same stream.
constexpr std::uint64_t derive_seed(std::uint64_t master,
                                    std::uint64_t purpose) noexcept {
  SplitMix64 sm(master ^ (0xA076'1D64'78BD'642FULL + purpose));
  // burn a few outputs so adjacent purposes decorrelate
  sm.next();
  sm.next();
  return sm.next();
}

}  // namespace reads::util
