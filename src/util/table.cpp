#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace reads::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& out) const { out << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string Table::to_csv() const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += quote(header_[c]);
    out += c + 1 < header_.size() ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += quote(row[c]);
      out += c + 1 < row.size() ? "," : "\n";
    }
  }
  return out;
}

}  // namespace reads::util
