// Content hashing for immutable artifacts.
//
// The model registry and the pretrained weight cache key artifacts by the
// bytes of their parameters, so "same hash" must mean "same bits" across
// runs and across processes. FNV-1a/64 is used for its simplicity and
// stable definition — this is an integrity/identity digest, not a
// cryptographic one.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reads::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold `len` bytes into a running FNV-1a state (start from kFnvOffset).
constexpr std::uint64_t fnv1a64(const unsigned char* bytes, std::size_t len,
                                std::uint64_t state = kFnvOffset) noexcept {
  for (std::size_t i = 0; i < len; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

inline std::uint64_t fnv1a64(const void* bytes, std::size_t len,
                             std::uint64_t state = kFnvOffset) noexcept {
  return fnv1a64(static_cast<const unsigned char*>(bytes), len, state);
}

}  // namespace reads::util
