#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

namespace reads::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const auto hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      // A task enqueued after shutdown would never run and its
      // parallel_for would block forever; fail loudly instead.
      throw std::logic_error("ThreadPool: enqueue after shutdown");
    }
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parties = workers_.size() + 1;  // workers + caller
  if (parties == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, parties);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  // Caller handles the first chunk.
  for (std::size_t i = begin; i < std::min(end, begin + chunk); ++i) fn(i);

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
bool g_global_created = false;

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(g_global_mutex);
  auto& slot = global_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>();
    g_global_created = true;
  }
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard lock(g_global_mutex);
  auto& slot = global_slot();
  if (g_global_created) {
    throw std::logic_error(
        "ThreadPool: set_global_threads after the global pool was created");
  }
  slot = std::make_unique<ThreadPool>(threads);
  g_global_created = true;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, Exec exec) {
  if (exec == Exec::kCaller) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace reads::util
