// Minimal --flag=value command-line parsing for the benches and examples.
// Every experiment binary accepts the same style: `--frames=10000 --seed=7`.
// Unknown flags are rejected so typos don't silently fall back to defaults,
// except flags with a `benchmark_` prefix, which are passed through to
// google-benchmark binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace reads::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare and fetch flags (declaration registers the flag as known).
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, const std::string& def);
  bool get_bool(const std::string& name, bool def);

  /// Throws std::invalid_argument if any provided flag was never declared.
  void check_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> seen_;
};

}  // namespace reads::util
