#include "util/allocguard.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// Sanitizer runtimes interpose operator new themselves; do not fight them
// for the symbol. GCC defines __SANITIZE_*; clang exposes __has_feature.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define READS_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define READS_ALLOC_COUNTING 0
#else
#define READS_ALLOC_COUNTING 1
#endif
#else
#define READS_ALLOC_COUNTING 1
#endif

namespace reads::util {

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

bool alloc_counting_active() noexcept { return READS_ALLOC_COUNTING != 0; }

std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

namespace detail {
inline void count_one() noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace reads::util

#if READS_ALLOC_COUNTING

namespace {

void* counted_alloc(std::size_t size) noexcept {
  reads::util::detail::count_one();
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  reads::util::detail::count_one();
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

// posix_memalign storage is free()-able, so every delete maps to free.
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // READS_ALLOC_COUNTING
