// Process-wide heap-allocation counter for the zero-allocation serving
// gates.
//
// allocguard.cpp replaces the global operator new/delete family with
// malloc-backed versions that bump one relaxed atomic per allocation. The
// serving benchmark snapshots the counter around a steady-state window to
// prove the assembler -> queue -> replica frame path performs zero heap
// allocations per frame; the counter is process-wide (one relaxed fetch_add
// per allocation, noise even on the MAC hot path) so a measurement window
// only means something while the threads running are the ones under test.
//
// Under AddressSanitizer/ThreadSanitizer the replacement is compiled out —
// the sanitizer runtimes own malloc and interpose their own operator new,
// and fighting them for the symbol breaks their bookkeeping. In those
// builds alloc_counting_active() returns false and callers must skip (and
// report skipping) any gate built on the counter.
#pragma once

#include <cstdint>

namespace reads::util {

/// True when the counting operator new/delete are linked in (i.e. not a
/// sanitizer build). When false, alloc_count() stays 0 forever and
/// allocation gates must report "skipped" rather than a vacuous pass.
bool alloc_counting_active() noexcept;

/// Number of operator-new-family calls (scalar, array, nothrow, aligned)
/// process-wide since start. Monotonic; frees are not counted — the gates
/// care about allocation *events* on the hot path, and a path that frees
/// also allocated.
std::uint64_t alloc_count() noexcept;

}  // namespace reads::util
