#include "serve/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace reads::serve {

namespace {
// Latency histograms cover [0, 4 deadlines): admission keeps accepted
// latency near or under one deadline, so four covers the interesting tail
// while the overflow counter still catches pathological stragglers.
constexpr double kDeadlineSpan = 4.0;
constexpr std::size_t kLatencyBins = 80;

bool same_layout(const util::Histogram& a, const util::Histogram& b) {
  return a.bins() == b.bins() && a.bin_lo(0) == b.bin_lo(0) &&
         a.bin_hi(a.bins() - 1) == b.bin_hi(b.bins() - 1);
}

/// Snapshot-level histogram fold. A default-constructed MetricsSnapshot
/// carries a 1-bin placeholder histogram; adopting the first real layout it
/// meets lets callers start a cluster aggregation from an empty snapshot.
/// Two *populated* histograms with different layouts cannot be combined.
void fold_hist(util::Histogram& into, const util::Histogram& from) {
  if (!same_layout(into, from)) {
    if (into.total() == 0) {
      into = from;
      return;
    }
    if (from.total() == 0) return;
  }
  into.merge(from);  // layout mismatch of populated histograms throws here
}

[[noreturn]] void bad_json(const std::string& what) {
  throw std::invalid_argument("metrics JSON: " + what);
}

/// Position just past `"key":` (and any whitespace), searching from `from`.
std::size_t key_pos(const std::string& text, const std::string& key,
                    std::size_t from = 0) {
  const std::string needle = "\"" + key + "\"";
  const auto k = text.find(needle, from);
  if (k == std::string::npos) bad_json("missing key '" + key + "'");
  auto p = text.find(':', k + needle.size());
  if (p == std::string::npos) bad_json("key '" + key + "' has no value");
  ++p;
  while (p < text.size() &&
         std::isspace(static_cast<unsigned char>(text[p]))) {
    ++p;
  }
  return p;
}

double scan_double(const std::string& text, const std::string& key) {
  const auto p = key_pos(text, key);
  const char* start = text.c_str() + p;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) bad_json("key '" + key + "' is not a number");
  return v;
}

std::size_t scan_count(const std::string& text, const std::string& key) {
  const double v = scan_double(text, key);
  if (v < 0.0 || v != std::floor(v)) {
    bad_json("key '" + key + "' is not a count");
  }
  return static_cast<std::size_t>(v);
}

/// Balanced `open`..`close` substring starting at `p`. None of the emitted
/// values contain brackets inside strings, so bracket counting suffices.
std::string balanced(const std::string& text, std::size_t p, char open,
                     char close) {
  if (p >= text.size() || text[p] != open) {
    bad_json(std::string("expected '") + open + "'");
  }
  std::size_t depth = 0;
  for (std::size_t q = p; q < text.size(); ++q) {
    if (text[q] == open) ++depth;
    if (text[q] == close && --depth == 0) {
      return text.substr(p, q - p + 1);
    }
  }
  bad_json(std::string("unbalanced '") + open + "'");
}

std::vector<double> scan_double_array(const std::string& text,
                                      const std::string& key) {
  auto p = key_pos(text, key);
  if (text[p] != '[') bad_json("key '" + key + "' is not an array");
  ++p;
  std::vector<double> out;
  for (;;) {
    while (p < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[p])) ||
            text[p] == ',')) {
      ++p;
    }
    if (p >= text.size()) bad_json("unterminated array");
    if (text[p] == ']') break;
    const char* start = text.c_str() + p;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) bad_json("bad array element");
    out.push_back(v);
    p += static_cast<std::size_t>(end - start);
  }
  return out;
}
}  // namespace

Metrics::Metrics(std::size_t replicas, double deadline_ms)
    : replicas_(replicas),
      queue_ms_(0.0, kDeadlineSpan * deadline_ms, kLatencyBins),
      e2e_ms_(0.0, kDeadlineSpan * deadline_ms, kLatencyBins) {}

void Metrics::reserve_e2e_samples(std::size_t n) {
  std::lock_guard lock(dist_mutex_);
  e2e_samples_.reserve(n);
}

void Metrics::record_batch(std::size_t replica, double busy_ms,
                           std::span<const double> frame_queue_ms,
                           std::span<const double> frame_e2e_ms,
                           std::size_t deadline_misses) {
  auto& r = replicas_.at(replica);
  const std::size_t n = frame_e2e_ms.size();
  r.frames.fetch_add(n, kRelaxed);
  r.batches.fetch_add(1, kRelaxed);
  r.busy_ns.fetch_add(static_cast<std::uint64_t>(busy_ms * 1e6), kRelaxed);
  std::size_t seen = r.max_batch.load(kRelaxed);
  while (seen < n && !r.max_batch.compare_exchange_weak(seen, n, kRelaxed)) {
  }
  completed_.fetch_add(n, kRelaxed);
  deadline_misses_.fetch_add(deadline_misses, kRelaxed);

  std::lock_guard lock(dist_mutex_);
  for (double q : frame_queue_ms) queue_ms_.add(q);
  for (double e : frame_e2e_ms) {
    e2e_ms_.add(e);
    e2e_samples_.add(e);
  }
}

void Metrics::merge(const Metrics& other) {
  if (&other == this) {
    throw std::invalid_argument("Metrics::merge: cannot merge with self");
  }
  if (other.replicas_.size() != replicas_.size()) {
    throw std::invalid_argument("Metrics::merge: replica count mismatch");
  }
  arrived_.fetch_add(other.arrived_.load(kRelaxed), kRelaxed);
  admitted_.fetch_add(other.admitted_.load(kRelaxed), kRelaxed);
  shed_predicted_late_.fetch_add(other.shed_predicted_late_.load(kRelaxed),
                                 kRelaxed);
  shed_queue_full_.fetch_add(other.shed_queue_full_.load(kRelaxed), kRelaxed);
  shed_shutdown_.fetch_add(other.shed_shutdown_.load(kRelaxed), kRelaxed);
  completed_.fetch_add(other.completed_.load(kRelaxed), kRelaxed);
  deadline_misses_.fetch_add(other.deadline_misses_.load(kRelaxed), kRelaxed);
  backend_faults_.fetch_add(other.backend_faults_.load(kRelaxed), kRelaxed);
  quarantines_.fetch_add(other.quarantines_.load(kRelaxed), kRelaxed);
  restarts_.fetch_add(other.restarts_.load(kRelaxed), kRelaxed);
  redispatched_.fetch_add(other.redispatched_.load(kRelaxed), kRelaxed);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto& mine = replicas_[i];
    const auto& theirs = other.replicas_[i];
    mine.frames.fetch_add(theirs.frames.load(kRelaxed), kRelaxed);
    mine.batches.fetch_add(theirs.batches.load(kRelaxed), kRelaxed);
    mine.busy_ns.fetch_add(theirs.busy_ns.load(kRelaxed), kRelaxed);
    mine.faults.fetch_add(theirs.faults.load(kRelaxed), kRelaxed);
    const std::size_t n = theirs.max_batch.load(kRelaxed);
    std::size_t seen = mine.max_batch.load(kRelaxed);
    while (seen < n &&
           !mine.max_batch.compare_exchange_weak(seen, n, kRelaxed)) {
    }
  }
  // scoped_lock orders the two mutexes internally, so two threads merging
  // the same pair in opposite directions cannot deadlock.
  std::scoped_lock lock(dist_mutex_, other.dist_mutex_);
  queue_ms_.merge(other.queue_ms_);
  e2e_ms_.merge(other.e2e_ms_);
  e2e_samples_.merge(other.e2e_samples_);
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.arrived = arrived_.load(kRelaxed);
  s.admitted = admitted_.load(kRelaxed);
  s.shed_predicted_late = shed_predicted_late_.load(kRelaxed);
  s.shed_queue_full = shed_queue_full_.load(kRelaxed);
  s.shed_shutdown = shed_shutdown_.load(kRelaxed);
  s.completed = completed_.load(kRelaxed);
  s.deadline_misses = deadline_misses_.load(kRelaxed);
  s.backend_faults = backend_faults_.load(kRelaxed);
  s.quarantines = quarantines_.load(kRelaxed);
  s.restarts = restarts_.load(kRelaxed);
  s.redispatched = redispatched_.load(kRelaxed);
  s.replicas.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    ReplicaSnapshot rs;
    rs.frames = r.frames.load(kRelaxed);
    rs.batches = r.batches.load(kRelaxed);
    rs.busy_ms = static_cast<double>(r.busy_ns.load(kRelaxed)) / 1e6;
    rs.max_batch = r.max_batch.load(kRelaxed);
    rs.faults = r.faults.load(kRelaxed);
    s.replicas.push_back(rs);
  }
  std::lock_guard lock(dist_mutex_);
  s.queue_ms = queue_ms_;
  s.e2e_ms = e2e_ms_;
  s.e2e_samples = e2e_samples_;
  return s;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  arrived += other.arrived;
  admitted += other.admitted;
  shed_predicted_late += other.shed_predicted_late;
  shed_queue_full += other.shed_queue_full;
  shed_shutdown += other.shed_shutdown;
  completed += other.completed;
  deadline_misses += other.deadline_misses;
  backend_faults += other.backend_faults;
  quarantines += other.quarantines;
  restarts += other.restarts;
  redispatched += other.redispatched;
  replicas.insert(replicas.end(), other.replicas.begin(),
                  other.replicas.end());
  fold_hist(queue_ms, other.queue_ms);
  fold_hist(e2e_ms, other.e2e_ms);
  e2e_samples.merge(other.e2e_samples);
}

std::string MetricsSnapshot::to_json(double wall_s, bool include_samples) {
  // All doubles go through json_double (shortest round-trip form): the
  // cluster report re-parses these snapshots with from_json, and derived
  // rates recomputed from the parsed counters must re-emit byte-identically.
  std::ostringstream out;
  out << "{\"arrived\": " << arrived << ", \"admitted\": " << admitted
      << ", \"completed\": " << completed
      << ", \"deadline_misses\": " << deadline_misses << ", \"shed\": {"
      << "\"predicted_late\": " << shed_predicted_late
      << ", \"queue_full\": " << shed_queue_full
      << ", \"shutdown\": " << shed_shutdown
      << ", \"rate\": " << util::json_double(shed_rate()) << "}"
      << ", \"goodput_fps\": " << util::json_double(goodput_fps(wall_s))
      << ", \"faults\": {"
      << "\"backend_faults\": " << backend_faults
      << ", \"quarantines\": " << quarantines
      << ", \"restarts\": " << restarts
      << ", \"redispatched\": " << redispatched << "}"
      << ", \"e2e_ms\": " << e2e_samples.summary_json();
  if (include_samples) {
    // summary_json above already sorted the retained samples, so this array
    // is emitted sorted and round-trips in a canonical order.
    out << ", \"e2e_values\": [";
    const auto& vs = e2e_samples.values();
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (i) out << ", ";
      out << util::json_double(vs[i]);
    }
    out << "]";
  }
  out << ", \"queue_hist\": " << queue_ms.to_json()
      << ", \"e2e_hist\": " << e2e_ms.to_json() << ", \"replicas\": [";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const auto& r = replicas[i];
    if (i) out << ", ";
    out << "{\"frames\": " << r.frames << ", \"batches\": " << r.batches
        << ", \"busy_ms\": " << util::json_double(r.busy_ms)
        << ", \"utilization\": "
        << util::json_double(wall_s > 0.0 ? r.busy_ms / (wall_s * 1e3) : 0.0)
        << ", \"max_batch\": " << r.max_batch
        << ", \"faults\": " << r.faults << "}";
  }
  out << "]}";
  return out.str();
}

MetricsSnapshot MetricsSnapshot::from_json(const std::string& json) {
  MetricsSnapshot s;
  s.arrived = scan_count(json, "arrived");
  s.admitted = scan_count(json, "admitted");
  s.completed = scan_count(json, "completed");
  s.deadline_misses = scan_count(json, "deadline_misses");
  s.shed_predicted_late = scan_count(json, "predicted_late");
  s.shed_queue_full = scan_count(json, "queue_full");
  s.shed_shutdown = scan_count(json, "shutdown");
  s.backend_faults = scan_count(json, "backend_faults");
  s.quarantines = scan_count(json, "quarantines");
  s.restarts = scan_count(json, "restarts");
  s.redispatched = scan_count(json, "redispatched");
  s.queue_ms = util::Histogram::from_json(
      balanced(json, key_pos(json, "queue_hist"), '{', '}'));
  s.e2e_ms = util::Histogram::from_json(
      balanced(json, key_pos(json, "e2e_hist"), '{', '}'));
  const std::string arr =
      balanced(json, key_pos(json, "replicas"), '[', ']');
  std::size_t pos = 1;
  while (true) {
    const auto b = arr.find('{', pos);
    if (b == std::string::npos) break;
    const std::string obj = balanced(arr, b, '{', '}');
    ReplicaSnapshot r;
    r.frames = scan_count(obj, "frames");
    r.batches = scan_count(obj, "batches");
    r.busy_ms = scan_double(obj, "busy_ms");
    r.max_batch = scan_count(obj, "max_batch");
    r.faults = scan_count(obj, "faults");
    s.replicas.push_back(r);
    pos = b + obj.size();
  }
  if (json.find("\"e2e_values\"") != std::string::npos) {
    const auto vs = scan_double_array(json, "e2e_values");
    s.e2e_samples.reserve(vs.size());
    for (double v : vs) s.e2e_samples.add(v);
  }
  return s;
}

}  // namespace reads::serve
