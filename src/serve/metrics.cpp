#include "serve/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace reads::serve {

namespace {
// Latency histograms cover [0, 4 deadlines): admission keeps accepted
// latency near or under one deadline, so four covers the interesting tail
// while the overflow counter still catches pathological stragglers.
constexpr double kDeadlineSpan = 4.0;
constexpr std::size_t kLatencyBins = 80;
}  // namespace

Metrics::Metrics(std::size_t replicas, double deadline_ms)
    : replicas_(replicas),
      queue_ms_(0.0, kDeadlineSpan * deadline_ms, kLatencyBins),
      e2e_ms_(0.0, kDeadlineSpan * deadline_ms, kLatencyBins) {}

void Metrics::reserve_e2e_samples(std::size_t n) {
  std::lock_guard lock(dist_mutex_);
  e2e_samples_.reserve(n);
}

void Metrics::record_batch(std::size_t replica, double busy_ms,
                           std::span<const double> frame_queue_ms,
                           std::span<const double> frame_e2e_ms,
                           std::size_t deadline_misses) {
  auto& r = replicas_.at(replica);
  const std::size_t n = frame_e2e_ms.size();
  r.frames.fetch_add(n, kRelaxed);
  r.batches.fetch_add(1, kRelaxed);
  r.busy_ns.fetch_add(static_cast<std::uint64_t>(busy_ms * 1e6), kRelaxed);
  std::size_t seen = r.max_batch.load(kRelaxed);
  while (seen < n && !r.max_batch.compare_exchange_weak(seen, n, kRelaxed)) {
  }
  completed_.fetch_add(n, kRelaxed);
  deadline_misses_.fetch_add(deadline_misses, kRelaxed);

  std::lock_guard lock(dist_mutex_);
  for (double q : frame_queue_ms) queue_ms_.add(q);
  for (double e : frame_e2e_ms) {
    e2e_ms_.add(e);
    e2e_samples_.add(e);
  }
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.arrived = arrived_.load(kRelaxed);
  s.admitted = admitted_.load(kRelaxed);
  s.shed_predicted_late = shed_predicted_late_.load(kRelaxed);
  s.shed_queue_full = shed_queue_full_.load(kRelaxed);
  s.shed_shutdown = shed_shutdown_.load(kRelaxed);
  s.completed = completed_.load(kRelaxed);
  s.deadline_misses = deadline_misses_.load(kRelaxed);
  s.backend_faults = backend_faults_.load(kRelaxed);
  s.quarantines = quarantines_.load(kRelaxed);
  s.restarts = restarts_.load(kRelaxed);
  s.redispatched = redispatched_.load(kRelaxed);
  s.replicas.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    ReplicaSnapshot rs;
    rs.frames = r.frames.load(kRelaxed);
    rs.batches = r.batches.load(kRelaxed);
    rs.busy_ms = static_cast<double>(r.busy_ns.load(kRelaxed)) / 1e6;
    rs.max_batch = r.max_batch.load(kRelaxed);
    rs.faults = r.faults.load(kRelaxed);
    s.replicas.push_back(rs);
  }
  std::lock_guard lock(dist_mutex_);
  s.queue_ms = queue_ms_;
  s.e2e_ms = e2e_ms_;
  s.e2e_samples = e2e_samples_;
  return s;
}

std::string MetricsSnapshot::to_json(double wall_s) {
  std::ostringstream out;
  out << "{\"arrived\": " << arrived << ", \"admitted\": " << admitted
      << ", \"completed\": " << completed
      << ", \"deadline_misses\": " << deadline_misses << ", \"shed\": {"
      << "\"predicted_late\": " << shed_predicted_late
      << ", \"queue_full\": " << shed_queue_full
      << ", \"shutdown\": " << shed_shutdown
      << ", \"rate\": " << shed_rate() << "}"
      << ", \"goodput_fps\": " << goodput_fps(wall_s) << ", \"faults\": {"
      << "\"backend_faults\": " << backend_faults
      << ", \"quarantines\": " << quarantines
      << ", \"restarts\": " << restarts
      << ", \"redispatched\": " << redispatched << "}"
      << ", \"e2e_ms\": " << e2e_samples.summary_json()
      << ", \"queue_hist\": " << queue_ms.to_json()
      << ", \"e2e_hist\": " << e2e_ms.to_json() << ", \"replicas\": [";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const auto& r = replicas[i];
    if (i) out << ", ";
    out << "{\"frames\": " << r.frames << ", \"batches\": " << r.batches
        << ", \"busy_ms\": " << r.busy_ms << ", \"utilization\": "
        << (wall_s > 0.0 ? r.busy_ms / (wall_s * 1e3) : 0.0)
        << ", \"max_batch\": " << r.max_batch
        << ", \"faults\": " << r.faults << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace reads::serve
