// Per-stage counters and latency distributions for the serving gateway.
//
// Counter writes are lock-free atomics on the admission and replica hot
// paths; the latency histograms/percentile samples are guarded by one mutex
// taken once per completed micro-batch (not per frame). snapshot() copies
// everything at once so exports are internally consistent, and to_json()
// emits the BENCH_serve.json building blocks via the util::stats JSON
// export.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace reads::serve {

/// Aggregated view of one replica's work.
struct ReplicaSnapshot {
  std::size_t frames = 0;
  std::size_t batches = 0;
  double busy_ms = 0.0;
  std::size_t max_batch = 0;
  std::size_t faults = 0;  ///< backend faults attributed to this replica
};

/// Consistent copy of all gateway metrics at one instant.
struct MetricsSnapshot {
  std::size_t arrived = 0;
  std::size_t admitted = 0;
  std::size_t shed_predicted_late = 0;
  std::size_t shed_queue_full = 0;
  std::size_t shed_shutdown = 0;
  std::size_t completed = 0;
  std::size_t deadline_misses = 0;
  /// Self-healing activity: backend faults seen, quarantine entries,
  /// restarts after backoff, and frames re-homed to a peer mid-recovery.
  std::size_t backend_faults = 0;
  std::size_t quarantines = 0;
  std::size_t restarts = 0;
  std::size_t redispatched = 0;
  std::vector<ReplicaSnapshot> replicas;
  util::Histogram queue_ms{0.0, 1.0, 1};
  util::Histogram e2e_ms{0.0, 1.0, 1};
  util::Percentiles e2e_samples;
  std::size_t sheds() const noexcept {
    return shed_predicted_late + shed_queue_full + shed_shutdown;
  }
  double shed_rate() const noexcept {
    return arrived ? static_cast<double>(sheds()) / static_cast<double>(arrived)
                   : 0.0;
  }
  /// Completions that met their deadline, per wall-clock second.
  double goodput_fps(double wall_s) const noexcept {
    return wall_s > 0.0 ? static_cast<double>(completed - deadline_misses) /
                              wall_s
                        : 0.0;
  }

  /// Fold another snapshot into this one for a cluster-wide report: scalar
  /// counters sum, per-replica rows CONCATENATE (each serving process owns
  /// distinct replicas, so a router snapshot with zero replicas plus N
  /// single-replica process snapshots yields N rows), latency histograms
  /// merge bin-for-bin (layouts must match unless one side is empty —
  /// std::invalid_argument otherwise), and retained e2e samples append so
  /// merged percentiles are exact.
  void merge(const MetricsSnapshot& other);

  /// JSON object (schema: DESIGN.md §7) with counters, shed/goodput rates,
  /// p50/p99/p99.97, per-replica utilization over `wall_s`, and the e2e
  /// histogram. With `include_samples` the retained e2e latency samples are
  /// emitted as an "e2e_values" array (sorted, round-trip precision) so
  /// from_json + merge can recompute exact cluster-wide percentiles; wire
  /// snapshots set it, bench artifacts do not.
  std::string to_json(double wall_s, bool include_samples = false);

  /// Parse a to_json() export back into a snapshot (derived rates are
  /// recomputed, "e2e_values" restores the percentile samples when
  /// present). Throws std::invalid_argument on malformed input.
  /// from_json(to_json(w, true)) round-trips exactly, histogram
  /// under/overflow tallies included.
  static MetricsSnapshot from_json(const std::string& json);
};

class Metrics {
 public:
  /// Histogram ranges scale with the deadline so the interesting region
  /// (0 .. a few deadlines) keeps bin resolution.
  Metrics(std::size_t replicas, double deadline_ms);

  void record_arrival() noexcept { arrived_.fetch_add(1, kRelaxed); }
  void record_admitted() noexcept { admitted_.fetch_add(1, kRelaxed); }
  void record_shed_predicted_late() noexcept {
    shed_predicted_late_.fetch_add(1, kRelaxed);
  }
  void record_shed_queue_full() noexcept {
    shed_queue_full_.fetch_add(1, kRelaxed);
  }
  void record_shed_shutdown() noexcept {
    shed_shutdown_.fetch_add(1, kRelaxed);
  }

  /// Self-healing events (replica worker threads).
  void record_backend_fault(std::size_t replica) noexcept {
    backend_faults_.fetch_add(1, kRelaxed);
    replicas_[replica].faults.fetch_add(1, kRelaxed);
  }
  void record_quarantine(std::size_t replica) noexcept {
    (void)replica;
    quarantines_.fetch_add(1, kRelaxed);
  }
  void record_restart(std::size_t replica) noexcept {
    (void)replica;
    restarts_.fetch_add(1, kRelaxed);
  }
  void record_redispatched() noexcept { redispatched_.fetch_add(1, kRelaxed); }

  /// One completed micro-batch on `replica`: per-frame queue/e2e latencies
  /// plus the batch's busy time. Takes the distribution lock once. Spans so
  /// the replica hands over its reused scratch arrays without copying.
  void record_batch(std::size_t replica, double busy_ms,
                    std::span<const double> frame_queue_ms,
                    std::span<const double> frame_e2e_ms,
                    std::size_t deadline_misses);

  /// Pre-grow the retained e2e percentile samples. The histograms are
  /// fixed-bin (never allocate), but Percentiles retains every sample in a
  /// growing vector; a zero-allocation measurement window must reserve its
  /// expected frame count up front or the gate would charge the serving
  /// path for the sample vector's doubling.
  void reserve_e2e_samples(std::size_t n);

  MetricsSnapshot snapshot() const;

  /// Fold another live Metrics into this one (atomic counters and
  /// distributions both). Slot-wise: both objects must track the same
  /// replica count (std::invalid_argument otherwise) — heterogeneous
  /// aggregation across processes goes through MetricsSnapshot::merge,
  /// which concatenates replica rows instead. Thread-safe against
  /// concurrent recording on either side.
  void merge(const Metrics& other);

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  struct PerReplica {
    std::atomic<std::size_t> frames{0};
    std::atomic<std::size_t> batches{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::size_t> max_batch{0};
    std::atomic<std::size_t> faults{0};
  };

  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> shed_predicted_late_{0};
  std::atomic<std::size_t> shed_queue_full_{0};
  std::atomic<std::size_t> shed_shutdown_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> deadline_misses_{0};
  std::atomic<std::size_t> backend_faults_{0};
  std::atomic<std::size_t> quarantines_{0};
  std::atomic<std::size_t> restarts_{0};
  std::atomic<std::size_t> redispatched_{0};
  std::vector<PerReplica> replicas_;

  mutable std::mutex dist_mutex_;
  util::Histogram queue_ms_;
  util::Histogram e2e_ms_;
  util::Percentiles e2e_samples_;
};

}  // namespace reads::serve
