#include "serve/backend.hpp"

#include <utility>

#include "util/thread_pool.hpp"

namespace reads::serve {

std::vector<Tensor> Backend::infer_batch(std::span<const Tensor> frames) {
  std::vector<Tensor> out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(infer(f));
  return out;
}

void Backend::infer_into(const Tensor& frame, Tensor& out) {
  // Virtual dispatch through infer() keeps decorators (chaos wrapper) on
  // this path; backends that can reuse `out`'s storage override.
  out = infer(frame);
}

void Backend::infer_batch_into(std::span<const Tensor> frames,
                               std::span<Tensor> outputs) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    infer_into(frames[i], outputs[i]);
  }
}

QuantizedBackend::QuantizedBackend(hls::FirmwareModel firmware)
    : model_(std::move(firmware)) {}

Tensor QuantizedBackend::infer(const Tensor& frame) {
  return model_.forward(frame);
}

std::vector<Tensor> QuantizedBackend::infer_batch(
    std::span<const Tensor> frames) {
  // Exec::kCaller keeps the whole batch on the replica's thread: replicas
  // are already one-per-core, so fanning each batch back out to the global
  // pool would just make replicas contend with each other.
  return model_.forward_batch(frames, nullptr, util::Exec::kCaller);
}

void QuantizedBackend::infer_into(const Tensor& frame, Tensor& out) {
  model_.forward_into(frame, out);
}

void QuantizedBackend::infer_batch_into(std::span<const Tensor> frames,
                                        std::span<Tensor> outputs) {
  // Sequential on the replica's thread, same as infer_batch's Exec::kCaller
  // (replicas are one-per-core), but writing into the caller's reused
  // output buffers instead of allocating a fresh tensor per frame.
  for (std::size_t i = 0; i < frames.size(); ++i) {
    model_.forward_into(frames[i], outputs[i]);
  }
}

FloatBackend::FloatBackend(nn::Model model) : model_(std::move(model)) {}

Tensor FloatBackend::infer(const Tensor& frame) { return model_.forward(frame); }

std::vector<Tensor> FloatBackend::infer_batch(std::span<const Tensor> frames) {
  return model_.forward_batch(frames, util::Exec::kCaller);
}

SocBackend::SocBackend(hls::FirmwareModel firmware, soc::SocParams params,
                       std::uint64_t seed)
    : model_(std::move(firmware)), system_(model_, params, seed) {}

Tensor SocBackend::infer(const Tensor& frame) {
  auto result = system_.process(frame);
  last_sim_latency_ms_ = result.timing.total_ms;
  return std::move(result.output);
}

}  // namespace reads::serve
