#include "serve/backend.hpp"

#include <utility>

#include "util/thread_pool.hpp"

namespace reads::serve {

std::vector<Tensor> Backend::infer_batch(std::span<const Tensor> frames) {
  std::vector<Tensor> out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(infer(f));
  return out;
}

QuantizedBackend::QuantizedBackend(hls::FirmwareModel firmware)
    : model_(std::move(firmware)) {}

Tensor QuantizedBackend::infer(const Tensor& frame) {
  return model_.forward(frame);
}

std::vector<Tensor> QuantizedBackend::infer_batch(
    std::span<const Tensor> frames) {
  // Exec::kCaller keeps the whole batch on the replica's thread: replicas
  // are already one-per-core, so fanning each batch back out to the global
  // pool would just make replicas contend with each other.
  return model_.forward_batch(frames, nullptr, util::Exec::kCaller);
}

FloatBackend::FloatBackend(nn::Model model) : model_(std::move(model)) {}

Tensor FloatBackend::infer(const Tensor& frame) { return model_.forward(frame); }

std::vector<Tensor> FloatBackend::infer_batch(std::span<const Tensor> frames) {
  return model_.forward_batch(frames, util::Exec::kCaller);
}

SocBackend::SocBackend(hls::FirmwareModel firmware, soc::SocParams params,
                       std::uint64_t seed)
    : model_(std::move(firmware)), system_(model_, params, seed) {}

Tensor SocBackend::infer(const Tensor& frame) {
  auto result = system_.process(frame);
  last_sim_latency_ms_ = result.timing.total_ms;
  return std::move(result.output);
}

}  // namespace reads::serve
