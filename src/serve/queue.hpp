// Bounded MPMC queue for the serving gateway.
//
// Capacity is explicit so overload is a decision made at admission time
// (shed, with a reason) rather than an unbounded buffer growing until the
// process dies. Producers never block in the gateway (try_push only); the
// blocking push/pop variants exist for tests and for consumers (replica
// threads park in pop() when their shard is idle).
//
// Storage is a fixed ring of `capacity` slots preallocated at construction:
// push move-assigns into a slot and pop moves out, so the steady-state
// frame path performs zero heap allocations in the queue itself (the
// previous std::deque backing allocated and freed block nodes as the
// window slid). T must therefore be default-constructible in addition to
// movable.
//
// Close semantics: close() refuses new items but lets consumers drain what
// is already queued; pop() returns nullopt only once the queue is closed
// AND empty, so every admitted item is consumed exactly once on shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace reads::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("BoundedQueue: capacity must be positive");
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return count_;
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Blocking push; waits for a free slot. Returns false (item dropped) if
  /// the queue is closed before a slot frees up.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || count_ < capacity_; });
    if (closed_) return false;
    emplace(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed. This is the gateway's
  /// admission path: a full shard is a capacity shed, never a stall. On
  /// false the item is untouched (not moved-from).
  bool try_push(T& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || count_ >= capacity_) return false;
      emplace(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;
    std::optional<T> item(std::move(slots_[head_]));
    advance_head();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (even if open).
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (count_ == 0) return std::nullopt;
    std::optional<T> item(std::move(slots_[head_]));
    advance_head();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Refuse new items; wake all waiters. Already-queued items stay poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  void emplace(T&& item) {
    slots_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
  }

  void advance_head() {
    head_ = (head_ + 1) % capacity_;
    --count_;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  /// Ring storage: live items occupy [head_, head_ + count_) mod capacity.
  /// Popped slots keep their moved-from husk until overwritten — a husk
  /// holds no resources, so nothing is freed on the frame path.
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace reads::serve
