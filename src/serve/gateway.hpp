// Gateway: multiplexes many client frame streams onto a pool of inference
// replicas.
//
// Dispatch is sharded: every replica owns a bounded queue, and submit()
// routes each frame to one shard — kByStream pins a stream to a replica
// (per-stream FIFO response order), kLeastLoaded picks the shard with the
// least predicted backlog (work-conserving, best goodput under skew).
//
// Admission control is deadline-aware and happens on arrival: using the
// shard's queue depth, the replica's EWMA service time and the in-flight
// batch's predicted residual, the gateway estimates when a new frame would
// complete; if that already exceeds the frame's deadline (times a safety
// margin) the frame is shed immediately — the client hears "no" in
// microseconds instead of receiving a useless answer after the deadline.
// A full shard likewise sheds at admission (kQueueFull). Once admitted, a
// frame is never dropped: exactly one Response is delivered, even through
// shutdown (stop() closes the shards and replicas drain them).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/replica.hpp"
#include "serve/request.hpp"

namespace reads::serve {

enum class ShardPolicy : std::uint8_t {
  kLeastLoaded,  ///< join the shard with the least predicted backlog
  kByStream,     ///< stream id -> fixed replica (per-stream ordering)
};

struct GatewayConfig {
  /// Per-shard queue capacity; overload beyond this sheds at admission.
  std::size_t queue_capacity = 64;
  /// Upper bound on opportunistic micro-batch size (1 = no batching).
  std::size_t max_batch = 1;
  /// Default per-frame latency budget; <= 0 means no deadline (and thus no
  /// deadline-based admission control, only capacity).
  double deadline_ms = 3.0;
  /// Master switch for predicted-late shedding.
  bool admission_control = true;
  /// Admit only when predicted completion <= margin * budget; the headroom
  /// absorbs service-time jitter between prediction and execution.
  double admission_margin = 0.9;
  /// EWMA seed until each replica has observed real service times.
  double initial_service_est_ms = 2.0;
  ShardPolicy sharding = ShardPolicy::kLeastLoaded;
  /// Self-healing knobs, forwarded to each replica (see Replica::Options).
  std::size_t quarantine_after = 3;
  double backoff_initial_ms = 1.0;
  double backoff_max_ms = 64.0;
  /// A faulted frame is offered to peers at most this many times before the
  /// faulting replica must retry it locally (bounds redispatch ping-pong
  /// when every backend is unhealthy at once).
  std::size_t max_redispatch = 8;
};

/// Produces one fresh Backend instance per call; used by fleet swaps (one
/// backend per replica — replicas never share mutable state) and by shadow
/// sessions (one more for the shadow worker).
using BackendFactory = std::function<std::unique_ptr<Backend>()>;

/// Verdict on one mirrored frame: true = the candidate's output is
/// acceptable. Runs on the shadow worker thread with the primary's output
/// for the same frame; `stream` lets a caller with ground truth (the bench
/// tags streams with frame indices) judge against labels instead of the
/// incumbent.
using ShadowJudge = std::function<bool(
    std::uint64_t stream, const Tensor& frame, const Tensor& primary,
    const Tensor& shadow)>;

struct ShadowConfig {
  /// Fraction of admitted frames mirrored to the candidate (deterministic
  /// per request id, so a replayed stream mirrors identically).
  double fraction = 0.25;
  /// Judged mirrors per evaluation window.
  std::size_t window = 64;
  /// A window with more rejects than this is a regression: the candidate
  /// is rolled back (discarded; the fleet never served it).
  std::size_t max_rejects = 3;
  /// Consecutive clean windows before the candidate is promoted fleet-wide.
  std::size_t promote_after = 2;
  /// Shadow queue capacity; mirrors beyond it are dropped (counted), never
  /// letting the candidate's speed stall the primary path.
  std::size_t queue_capacity = 256;
};

enum class ShadowOutcome : std::uint8_t {
  kNone,        ///< no shadow session has run
  kActive,      ///< candidate still under evaluation
  kPromoted,    ///< clean windows reached; fleet swapped to the candidate
  /// Candidate discarded: a window regressed, or its factory threw at
  /// promotion time. Either way the fleet only ever served the incumbent.
  kRolledBack,
  kEnded,       ///< end_shadow() before any verdict
};

std::string_view to_string(ShadowOutcome outcome) noexcept;

struct ShadowStatus {
  bool active = false;
  ShadowOutcome outcome = ShadowOutcome::kNone;
  std::uint64_t candidate_epoch = 0;
  std::uint64_t mirrored = 0;  ///< mirror copies enqueued to the shadow
  std::uint64_t dropped = 0;   ///< mirror copies shed (shadow queue full)
  std::uint64_t judged = 0;
  std::uint64_t rejects = 0;
  std::uint64_t windows = 0;        ///< completed evaluation windows
  std::uint64_t clean_windows = 0;  ///< consecutive clean windows so far
};

class Gateway {
 public:
  /// One replica per backend; replica i serves shard i.
  Gateway(std::vector<std::unique_ptr<Backend>> backends, GatewayConfig cfg);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Admit-or-shed `frame` from `stream` with the config's default budget.
  /// Never blocks.
  Ticket submit(Tensor frame, std::uint64_t stream = 0);
  /// Same with an explicit per-frame budget (<= 0: no deadline).
  Ticket submit(Tensor frame, std::uint64_t stream, double deadline_ms);

  /// Zero-allocation admission: on kNone the frame is admitted, `frame` is
  /// moved out, and exactly one response will be published into `slot`
  /// (which must stay alive and un-reset until then); the replica also
  /// returns the frame buffer via slot.frame_return() for reuse. On any
  /// other reason the frame was not enqueued and stays with the caller.
  /// Unlike submit(), no std::promise shared state is created — the steady
  /// state performs zero heap allocations end to end (see bench_serve's
  /// allocations-per-frame gate). Never blocks.
  RejectReason submit_into(Tensor& frame, ResponseSlot& slot,
                           std::uint64_t stream, double deadline_ms);

  /// Close all shards, serve everything already admitted, join replicas.
  /// Idempotent; called by the destructor.
  void stop();

  std::size_t replica_count() const noexcept { return replicas_.size(); }
  Replica& replica(std::size_t i) { return *replicas_.at(i); }
  Metrics& metrics() noexcept { return metrics_; }
  const GatewayConfig& config() const noexcept { return cfg_; }

  /// Hot-swap every replica to a fresh backend from `factory`, tagged
  /// `epoch`. Zero downtime: each replica lands the swap at its next batch
  /// boundary; frames submitted after swap_all() returns are served by the
  /// new generation (and stamped with its epoch), frames already in flight
  /// finish on whichever generation serves them — the stamp tells which.
  void swap_all(const BackendFactory& factory, std::uint64_t epoch);

  /// Fleet model generation (1 = the backends the gateway was built with).
  std::uint64_t model_epoch() const noexcept {
    return model_epoch_.load(std::memory_order_relaxed);
  }

  /// Start shadow evaluation of a candidate model: a deterministic
  /// `cfg.fraction` of admitted frames is mirrored — after the primary
  /// serves them — to a candidate backend on a dedicated shadow thread,
  /// where `judge` scores candidate outputs. After `cfg.promote_after`
  /// consecutive clean windows the candidate is promoted fleet-wide via
  /// swap_all(); a window with more than `cfg.max_rejects` rejects rolls it
  /// back (discards it — live traffic never saw it, so "rollback" restores
  /// nothing and the fleet's outputs stay bit-identical to before).
  /// Default judge: max |primary - shadow| <= 0.25 elementwise.
  /// Returns false if a session is already active or the gateway stopped.
  bool begin_shadow(BackendFactory factory, ShadowConfig cfg,
                    ShadowJudge judge = {});

  /// Finish the shadow session (if any): stop mirroring, drain and join the
  /// shadow worker, and return the final status. Idempotent.
  ShadowStatus end_shadow();

  /// Snapshot of the running (or most recently finished) shadow session.
  ShadowStatus shadow_status() const;

  /// Predicted ms from now until a frame submitted to `shard` would
  /// complete (queue backlog + in-flight residual + own service).
  double predicted_completion_ms(std::size_t shard) const;

 private:
  struct ShadowSession;

  std::size_t pick_shard(std::uint64_t stream) const;
  /// Replica fault hook: place `req` on a healthy shard other than `from`.
  /// Never blocks; false leaves the request with the caller.
  bool redispatch(std::size_t from, Request& req);
  /// Replica shadow tap: copy a served (frame, output) pair into the
  /// session's queue. Never blocks; drops (counted) when the queue is full.
  void on_mirror(std::uint64_t id, std::uint64_t stream, const Tensor& frame,
                 const Tensor& primary);
  /// Shadow worker: judge mirrored frames, promote or roll back.
  void shadow_run(std::shared_ptr<ShadowSession> session);
  std::shared_ptr<ShadowSession> shadow_session() const;

  GatewayConfig cfg_;
  Metrics metrics_;
  std::vector<std::unique_ptr<BoundedQueue<Request>>> shards_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> model_epoch_{1};
  mutable std::mutex shadow_mutex_;
  std::shared_ptr<ShadowSession> shadow_;
  ShadowStatus last_shadow_status_;
};

}  // namespace reads::serve
