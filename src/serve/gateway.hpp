// Gateway: multiplexes many client frame streams onto a pool of inference
// replicas.
//
// Dispatch is sharded: every replica owns a bounded queue, and submit()
// routes each frame to one shard — kByStream pins a stream to a replica
// (per-stream FIFO response order), kLeastLoaded picks the shard with the
// least predicted backlog (work-conserving, best goodput under skew).
//
// Admission control is deadline-aware and happens on arrival: using the
// shard's queue depth, the replica's EWMA service time and the in-flight
// batch's predicted residual, the gateway estimates when a new frame would
// complete; if that already exceeds the frame's deadline (times a safety
// margin) the frame is shed immediately — the client hears "no" in
// microseconds instead of receiving a useless answer after the deadline.
// A full shard likewise sheds at admission (kQueueFull). Once admitted, a
// frame is never dropped: exactly one Response is delivered, even through
// shutdown (stop() closes the shards and replicas drain them).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/replica.hpp"
#include "serve/request.hpp"

namespace reads::serve {

enum class ShardPolicy : std::uint8_t {
  kLeastLoaded,  ///< join the shard with the least predicted backlog
  kByStream,     ///< stream id -> fixed replica (per-stream ordering)
};

struct GatewayConfig {
  /// Per-shard queue capacity; overload beyond this sheds at admission.
  std::size_t queue_capacity = 64;
  /// Upper bound on opportunistic micro-batch size (1 = no batching).
  std::size_t max_batch = 1;
  /// Default per-frame latency budget; <= 0 means no deadline (and thus no
  /// deadline-based admission control, only capacity).
  double deadline_ms = 3.0;
  /// Master switch for predicted-late shedding.
  bool admission_control = true;
  /// Admit only when predicted completion <= margin * budget; the headroom
  /// absorbs service-time jitter between prediction and execution.
  double admission_margin = 0.9;
  /// EWMA seed until each replica has observed real service times.
  double initial_service_est_ms = 2.0;
  ShardPolicy sharding = ShardPolicy::kLeastLoaded;
  /// Self-healing knobs, forwarded to each replica (see Replica::Options).
  std::size_t quarantine_after = 3;
  double backoff_initial_ms = 1.0;
  double backoff_max_ms = 64.0;
  /// A faulted frame is offered to peers at most this many times before the
  /// faulting replica must retry it locally (bounds redispatch ping-pong
  /// when every backend is unhealthy at once).
  std::size_t max_redispatch = 8;
};

class Gateway {
 public:
  /// One replica per backend; replica i serves shard i.
  Gateway(std::vector<std::unique_ptr<Backend>> backends, GatewayConfig cfg);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Admit-or-shed `frame` from `stream` with the config's default budget.
  /// Never blocks.
  Ticket submit(Tensor frame, std::uint64_t stream = 0);
  /// Same with an explicit per-frame budget (<= 0: no deadline).
  Ticket submit(Tensor frame, std::uint64_t stream, double deadline_ms);

  /// Close all shards, serve everything already admitted, join replicas.
  /// Idempotent; called by the destructor.
  void stop();

  std::size_t replica_count() const noexcept { return replicas_.size(); }
  Replica& replica(std::size_t i) { return *replicas_.at(i); }
  Metrics& metrics() noexcept { return metrics_; }
  const GatewayConfig& config() const noexcept { return cfg_; }

  /// Predicted ms from now until a frame submitted to `shard` would
  /// complete (queue backlog + in-flight residual + own service).
  double predicted_completion_ms(std::size_t shard) const;

 private:
  std::size_t pick_shard(std::uint64_t stream) const;
  /// Replica fault hook: place `req` on a healthy shard other than `from`.
  /// Never blocks; false leaves the request with the caller.
  bool redispatch(std::size_t from, Request& req);

  GatewayConfig cfg_;
  Metrics metrics_;
  std::vector<std::unique_ptr<BoundedQueue<Request>>> shards_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> stopped_{false};
};

}  // namespace reads::serve
