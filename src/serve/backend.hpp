// Inference backends a Replica can wrap.
//
// Each replica owns its backend outright — its own weight copy, sigmoid
// tables and kernel plans (QuantizedBackend), its own nn::Model
// (FloatBackend), or its own simulated SoC (SocBackend) — so replicas never
// share mutable state and scale without cross-replica synchronization. All
// backends are deterministic: infer() on the same frame always returns the
// same bits, and infer_batch() equals per-frame infer() (the gateway's
// bit-exactness guarantee reduces to this property).
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "hls/firmware.hpp"
#include "hls/qmodel.hpp"
#include "nn/model.hpp"
#include "soc/params.hpp"
#include "soc/system.hpp"
#include "tensor/tensor.hpp"

namespace reads::serve {

using tensor::Tensor;

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string_view name() const noexcept = 0;

  /// One frame in, one output out. Must be deterministic and must not touch
  /// state shared with other Backend instances.
  virtual Tensor infer(const Tensor& frame) = 0;

  /// Micro-batch entry point; outputs in input order, each bit-identical to
  /// infer() on the same frame. Default: a plain loop on the calling
  /// (replica) thread.
  virtual std::vector<Tensor> infer_batch(std::span<const Tensor> frames);

  /// Buffer-reusing single-frame entry point: write the output into `out`,
  /// reusing its storage when the shape already matches. The default
  /// delegates to infer() (so decorators that only override infer(), like
  /// the fault-injection wrapper, keep working); backends on the
  /// zero-allocation serving path override this to perform no heap
  /// allocation once `out` is warm.
  virtual void infer_into(const Tensor& frame, Tensor& out);

  /// Buffer-reusing micro-batch: `outputs.size() == frames.size()`, each
  /// written as by infer_into. Default: a loop over infer_into.
  virtual void infer_batch_into(std::span<const Tensor> frames,
                                std::span<Tensor> outputs);
};

/// The PR 1 blocked-kernel integer pipeline; the production serving path.
class QuantizedBackend final : public Backend {
 public:
  /// Takes its own copy of the firmware (weights, plans, tables).
  explicit QuantizedBackend(hls::FirmwareModel firmware);

  std::string_view name() const noexcept override { return "quantized"; }
  Tensor infer(const Tensor& frame) override;
  std::vector<Tensor> infer_batch(std::span<const Tensor> frames) override;
  /// Zero heap allocations once `out` is warm: QuantizedModel::forward_into
  /// quantizes into the thread's scratch arena and writes the dequantized
  /// result into `out`'s reused storage.
  void infer_into(const Tensor& frame, Tensor& out) override;
  void infer_batch_into(std::span<const Tensor> frames,
                        std::span<Tensor> outputs) override;

  const hls::QuantizedModel& model() const noexcept { return model_; }

 private:
  hls::QuantizedModel model_;
};

/// Full-precision float path (accuracy reference / CPU-only deployments).
class FloatBackend final : public Backend {
 public:
  explicit FloatBackend(nn::Model model);

  std::string_view name() const noexcept override { return "float"; }
  Tensor infer(const Tensor& frame) override;
  std::vector<Tensor> infer_batch(std::span<const Tensor> frames) override;

 private:
  nn::Model model_;
};

/// Latency-faithful mode: every frame runs through a per-replica simulated
/// Arria SoC (bridge transfers, IP latency, OS jitter in virtual time), so
/// a gateway of SocBackends serves exactly what a rack of the paper's
/// boards would compute. Batch requests fall back to sequential process().
class SocBackend final : public Backend {
 public:
  SocBackend(hls::FirmwareModel firmware, soc::SocParams params,
             std::uint64_t seed);

  std::string_view name() const noexcept override { return "soc"; }
  Tensor infer(const Tensor& frame) override;

  /// Simulated (virtual-time) latency of the most recent infer() call.
  double last_sim_latency_ms() const noexcept { return last_sim_latency_ms_; }

 private:
  hls::QuantizedModel model_;
  soc::ArriaSocSystem system_;
  double last_sim_latency_ms_ = 0.0;
};

}  // namespace reads::serve
