// Request/response vocabulary of the serving gateway.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string_view>

#include "tensor/tensor.hpp"

namespace reads::serve {

using Clock = std::chrono::steady_clock;

/// One served inference result. `output` is bit-identical to what a direct
/// single-threaded call on the same backend would produce for the same
/// frame (tests and bench_serve gate on this).
struct Response {
  std::uint64_t id = 0;
  std::uint64_t stream = 0;
  tensor::Tensor output;
  std::size_t replica = 0;
  std::size_t batch_size = 1;   ///< frames in the micro-batch that served it
  double queue_ms = 0.0;        ///< arrival -> batch start
  double service_ms = 0.0;      ///< batch start -> batch done (whole batch)
  double e2e_ms = 0.0;          ///< arrival -> response ready
  bool deadline_met = true;
  /// Times the frame was handed to another replica after a backend fault
  /// before being served (0 on the clean path).
  std::size_t redispatches = 0;
  /// Model generation of the backend that served this frame (1 = the
  /// backends the gateway was built with; bumped by every fleet swap).
  std::uint64_t model_epoch = 1;
};

/// Why a frame was refused at admission. Both are *early* sheds: the client
/// hears immediately instead of a response arriving after its deadline.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kPredictedLate,  ///< predicted queue delay + service exceeds the deadline
  kQueueFull,      ///< shard at capacity (explicit backpressure)
  kShutdown,       ///< gateway stopping
};

std::string_view to_string(RejectReason reason) noexcept;

/// A frame in flight inside the gateway (move-only: carries the promise).
struct Request {
  std::uint64_t id = 0;
  std::uint64_t stream = 0;
  tensor::Tensor frame;
  Clock::time_point arrival{};
  Clock::time_point deadline{Clock::time_point::max()};
  std::promise<Response> promise;
  /// Fault-recovery hops so far; bounds redispatch ping-pong.
  std::size_t redispatches = 0;
  /// Selected for shadow mirroring: after the primary serves it, a copy of
  /// (frame, output) is offered to the gateway's shadow session.
  bool mirror = false;
};

/// Result of Gateway::submit. When not admitted, `response` is invalid and
/// `reason` says why; when admitted, exactly one Response will arrive.
struct Ticket {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  std::future<Response> response;
};

}  // namespace reads::serve
