// Request/response vocabulary of the serving gateway.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string_view>

#include "tensor/tensor.hpp"

namespace reads::serve {

using Clock = std::chrono::steady_clock;

/// One served inference result. `output` is bit-identical to what a direct
/// single-threaded call on the same backend would produce for the same
/// frame (tests and bench_serve gate on this).
struct Response {
  std::uint64_t id = 0;
  std::uint64_t stream = 0;
  tensor::Tensor output;
  std::size_t replica = 0;
  std::size_t batch_size = 1;   ///< frames in the micro-batch that served it
  double queue_ms = 0.0;        ///< arrival -> batch start
  double service_ms = 0.0;      ///< batch start -> batch done (whole batch)
  double e2e_ms = 0.0;          ///< arrival -> response ready
  bool deadline_met = true;
  /// Times the frame was handed to another replica after a backend fault
  /// before being served (0 on the clean path).
  std::size_t redispatches = 0;
  /// Model generation of the backend that served this frame (1 = the
  /// backends the gateway was built with; bumped by every fleet swap).
  std::uint64_t model_epoch = 1;
};

/// Why a frame was refused at admission. Both are *early* sheds: the client
/// hears immediately instead of a response arriving after its deadline.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kPredictedLate,  ///< predicted queue delay + service exceeds the deadline
  kQueueFull,      ///< shard at capacity (explicit backpressure)
  kShutdown,       ///< gateway stopping
};

std::string_view to_string(RejectReason reason) noexcept;

/// Preallocated completion for the zero-allocation submit path
/// (Gateway::submit_into). One slot serves one frame at a time: the client
/// arms it (reset), submits, blocks in wait(), reads the response in place,
/// and re-arms it for the next frame — no std::promise shared state, no
/// future, no heap traffic.
///
/// The slot is also the buffer-recycling rendezvous that makes the replica
/// path allocation-free in steady state: the replica *swaps* its pooled
/// output tensor with the response's previous output buffer (same shape, so
/// the pool never shrinks) and hands the request's input frame back via
/// frame_return(), where the producer reclaims it for the next assembly.
/// Buffers therefore cycle client -> queue -> replica -> client forever
/// after the first lap allocates them.
///
/// Thread contract: between publish() and the next reset(), `response` is
/// owned by the waiter; between reset() and publish(), it is owned by the
/// serving replica. The slot must outlive any frame submitted with it.
class ResponseSlot {
 public:
  /// Client: re-arm for the next frame. Must not race a pending delivery.
  void reset() noexcept { ready_.store(0, std::memory_order_relaxed); }

  /// Client: block until the replica publishes, then read the response in
  /// place (move fields out or leave them for recycling).
  Response& wait() noexcept {
    ready_.wait(0, std::memory_order_acquire);
    return response_;
  }

  bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire) != 0;
  }

  /// Replica: fill response() fields in place, then publish.
  Response& response() noexcept { return response_; }
  void publish() noexcept {
    ready_.store(1, std::memory_order_release);
    ready_.notify_one();
  }

  /// The served request's input frame, handed back by the replica so the
  /// producer can reuse its storage for a future frame.
  tensor::Tensor& frame_return() noexcept { return frame_return_; }

 private:
  Response response_;
  tensor::Tensor frame_return_;
  std::atomic<std::uint32_t> ready_{0};
};

/// A frame in flight inside the gateway (move-only: carries the delivery
/// channel). Exactly one of the two channels is set: `promise` for the
/// future-based submit(), `slot` for the preallocated submit_into() path
/// (the promise stays disengaged there — a default-constructed
/// std::promise heap-allocates its shared state, which is exactly what the
/// zero-allocation path exists to avoid).
struct Request {
  std::uint64_t id = 0;
  std::uint64_t stream = 0;
  tensor::Tensor frame;
  Clock::time_point arrival{};
  Clock::time_point deadline{Clock::time_point::max()};
  std::optional<std::promise<Response>> promise;
  ResponseSlot* slot = nullptr;
  /// Fault-recovery hops so far; bounds redispatch ping-pong.
  std::size_t redispatches = 0;
  /// Selected for shadow mirroring: after the primary serves it, a copy of
  /// (frame, output) is offered to the gateway's shadow session.
  bool mirror = false;
};

/// Result of Gateway::submit. When not admitted, `response` is invalid and
/// `reason` says why; when admitted, exactly one Response will arrive.
struct Ticket {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  std::future<Response> response;
};

}  // namespace reads::serve
