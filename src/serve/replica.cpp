#include "serve/replica.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace reads::serve {

namespace {

std::int64_t to_ns(Clock::time_point t) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

double ms_between(Clock::time_point a, Clock::time_point b) noexcept {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Replica::Replica(Options options, std::unique_ptr<Backend> backend,
                 Metrics& metrics)
    : opts_(options),
      backend_(std::move(backend)),
      metrics_(metrics),
      estimator_(options.initial_service_est_ms) {
  // Batch scratch is sized once here so serve_batch never allocates.
  // outputs_ holds max_batch persistent output tensors: infer_batch_into
  // reuses their storage, and slot deliveries swap client buffers back in,
  // so the pool stays warm forever.
  const std::size_t mb = std::max<std::size_t>(1, opts_.max_batch);
  outputs_.resize(mb);
  frames_.reserve(mb);
  queue_ms_.reserve(mb);
  e2e_ms_.reserve(mb);
}

Replica::~Replica() { join(); }

void Replica::start(BoundedQueue<Request>& shard) {
  thread_ = std::thread([this, &shard] { run(shard); });
}

void Replica::join() {
  if (thread_.joinable()) thread_.join();
}

void Replica::swap_model(std::unique_ptr<Backend> backend,
                         std::uint64_t epoch) {
  if (!backend) {
    throw std::invalid_argument("Replica::swap_model: null backend");
  }
  std::lock_guard lock(swap_mutex_);
  pending_backend_ = std::move(backend);
  pending_epoch_ = epoch;
  swap_staged_.store(true, std::memory_order_release);
}

void Replica::maybe_apply_swap() {
  if (!swap_staged_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(swap_mutex_);
  if (!pending_backend_) return;
  backend_ = std::move(pending_backend_);
  epoch_.store(pending_epoch_, std::memory_order_relaxed);
  swap_staged_.store(false, std::memory_order_relaxed);
}

double Replica::busy_residual_ms() const noexcept {
  const std::int64_t until = busy_until_ns_.load(std::memory_order_relaxed);
  const std::int64_t now = to_ns(Clock::now());
  if (until > now) return static_cast<double>(until - now) / 1e6;
  // The in-flight batch has overrun its prediction (or sits in the brief
  // window before one is posted). All we know is "still running" — and
  // returning 0 here is the worst possible answer: admission would
  // underestimate precisely when the replica is running late, admitting
  // frames that then wait behind the overrun. Assume one more service
  // quantum instead.
  return busy_.load(std::memory_order_relaxed) ? service_est_ms() : 0.0;
}

void Replica::run(BoundedQueue<Request>& shard) {
  std::vector<Request> batch;
  for (;;) {
    if (!carry_.empty()) {
      // Locally retried requests go first: they were admitted before
      // anything still in the queue, and no peer would take them.
      batch = std::move(carry_);
      carry_.clear();
    } else {
      auto first = shard.pop();
      if (!first) break;  // closed and drained, nothing carried
      batch.clear();
      batch.push_back(std::move(*first));

      // Deadline-aware greedy drain: grow the batch only while the
      // predicted completion (batch size x EWMA service) still meets every
      // already-drained frame's deadline. The candidate itself can only
      // gain: being served in this batch is never later than waiting
      // behind it.
      const double est = service_est_ms();
      auto min_deadline = batch.front().deadline;
      while (batch.size() < opts_.max_batch) {
        const auto predicted_done =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    est * static_cast<double>(batch.size() + 1)));
        if (predicted_done > min_deadline) break;
        auto next = shard.try_pop();
        if (!next) break;
        min_deadline = std::min(min_deadline, next->deadline);
        batch.push_back(std::move(*next));
      }
    }

    // Batch boundary: land a staged hot-swap before serving. Because the
    // stage completes before any subsequently submitted frame can be
    // popped, every such frame is served by the new backend.
    maybe_apply_swap();

    if (serve_batch(batch)) {
      consecutive_faults_ = 0;
    } else {
      handle_fault(batch, shard);
    }
  }
}

void Replica::handle_fault(std::vector<Request>& batch,
                           BoundedQueue<Request>& shard) {
  metrics_.record_backend_fault(opts_.id);
  faults_.fetch_add(1, std::memory_order_relaxed);
  ++consecutive_faults_;

  // Admitted frames are never lost: offer each to a healthy peer; whoever
  // the gateway cannot place stays here for a local retry. The promise
  // travels with the request, so exactly-once delivery is preserved no
  // matter how many hops recovery takes.
  for (auto& r : batch) {
    ++r.redispatches;
    if (redispatch_ && redispatch_(r)) {
      metrics_.record_redispatched();
    } else {
      carry_.push_back(std::move(r));
    }
  }
  batch.clear();

  if (consecutive_faults_ < opts_.quarantine_after) return;

  // Fault streak: quarantine. Routing already avoids us (health flips
  // before the drain), the backlog goes to peers, and we sleep an
  // exponentially backed-off restart delay. Anything nobody would take is
  // retried here after the backoff — better late than lost.
  health_.store(ReplicaHealth::kQuarantined, std::memory_order_relaxed);
  metrics_.record_quarantine(opts_.id);
  while (auto queued = shard.try_pop()) {
    ++queued->redispatches;
    if (redispatch_ && redispatch_(*queued)) {
      metrics_.record_redispatched();
    } else {
      carry_.push_back(std::move(*queued));
    }
  }

  const auto restarts = restarts_.load(std::memory_order_relaxed);
  const double factor =
      static_cast<double>(1ull << std::min<std::uint64_t>(restarts, 20));
  const double backoff_ms =
      std::min(opts_.backoff_max_ms, opts_.backoff_initial_ms * factor);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(backoff_ms));

  restarts_.fetch_add(1, std::memory_order_relaxed);
  metrics_.record_restart(opts_.id);
  consecutive_faults_ = 0;
  health_.store(ReplicaHealth::kHealthy, std::memory_order_relaxed);
}

bool Replica::serve_batch(std::vector<Request>& batch) {
  const std::size_t n = batch.size();
  const auto start = Clock::now();
  const double est = service_est_ms();
  busy_.store(true, std::memory_order_relaxed);
  busy_until_ns_.store(
      to_ns(start) +
          static_cast<std::int64_t>(est * static_cast<double>(n) * 1e6),
      std::memory_order_relaxed);

  // All batch scratch lives in members sized once (constructor): the
  // steady-state serve loop must not touch the heap. frames_ holds the
  // requests' input tensors during inference (returned on fault or via the
  // response slot); outputs_ is a persistent pool of output buffers that
  // infer_batch_into reuses in place.
  // Fault recovery can carry more requests than max_batch (the quarantine
  // drain funnels a whole queue into carry_); grow the pool to match. Only
  // that recovery path allocates — steady state never exceeds max_batch.
  if (outputs_.size() < n) outputs_.resize(n);
  frames_.clear();
  for (auto& r : batch) frames_.push_back(std::move(r.frame));
  try {
    backend_->infer_batch_into(frames_,
                               std::span<Tensor>(outputs_.data(), n));
  } catch (...) {
    // Backend fault (worker crash). Put the frames back where they came
    // from — the requests must survive intact for redispatch — and report
    // the batch unserved. The what() is deliberately not propagated: the
    // caller's recovery does not branch on it, and an admitted frame's
    // promise must never carry an exception.
    for (std::size_t i = 0; i < n; ++i) {
      batch[i].frame = std::move(frames_[i]);
    }
    busy_until_ns_.store(0, std::memory_order_relaxed);
    busy_.store(false, std::memory_order_relaxed);
    return false;
  }
  const auto done = Clock::now();
  busy_until_ns_.store(0, std::memory_order_relaxed);
  busy_.store(false, std::memory_order_relaxed);

  const double service_ms = ms_between(start, done);
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  queue_ms_.clear();
  e2e_ms_.clear();
  std::size_t misses = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto& r = batch[i];
    if (r.mirror && shadow_tap_) {
      // Mirror before the output leaves the pool; the tap copies
      // (frame, output) into the shadow queue and never blocks.
      shadow_tap_(r.id, r.stream, frames_[i], outputs_[i]);
    }
    const double q_ms = ms_between(r.arrival, start);
    const double end_ms = ms_between(r.arrival, done);
    const bool met = done <= r.deadline;
    queue_ms_.push_back(q_ms);
    e2e_ms_.push_back(end_ms);
    if (!met) ++misses;
    if (r.slot != nullptr) {
      // Zero-allocation delivery: fill the preallocated slot in place. The
      // swap recycles the client's previous output buffer into our pool
      // (same shape, so the next inference reuses it), and frame_return
      // hands the input buffer back for the producer's next assembly.
      Response& resp = r.slot->response();
      resp.id = r.id;
      resp.stream = r.stream;
      std::swap(resp.output, outputs_[i]);
      resp.replica = opts_.id;
      resp.batch_size = n;
      resp.queue_ms = q_ms;
      resp.service_ms = service_ms;
      resp.e2e_ms = end_ms;
      resp.deadline_met = met;
      resp.redispatches = r.redispatches;
      resp.model_epoch = epoch;
      r.slot->frame_return() = std::move(frames_[i]);
      r.slot->publish();
    } else if (r.promise) {
      Response resp;
      resp.id = r.id;
      resp.stream = r.stream;
      resp.output = std::move(outputs_[i]);
      resp.replica = opts_.id;
      resp.batch_size = n;
      resp.queue_ms = q_ms;
      resp.service_ms = service_ms;
      resp.e2e_ms = end_ms;
      resp.deadline_met = met;
      resp.redispatches = r.redispatches;
      resp.model_epoch = epoch;
      r.promise->set_value(std::move(resp));
    }
  }

  estimator_.observe(service_ms / static_cast<double>(n));
  metrics_.record_batch(opts_.id, service_ms, queue_ms_, e2e_ms_, misses);
  return true;
}

}  // namespace reads::serve
