#include "serve/gateway.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace reads::serve {

std::string_view to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kPredictedLate: return "predicted_late";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

Gateway::Gateway(std::vector<std::unique_ptr<Backend>> backends,
                 GatewayConfig cfg)
    : cfg_(cfg), metrics_(backends.size(), std::max(cfg.deadline_ms, 1.0)) {
  if (backends.empty()) {
    throw std::invalid_argument("Gateway: need at least one backend");
  }
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("Gateway: max_batch must be positive");
  }
  shards_.reserve(backends.size());
  replicas_.reserve(backends.size());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    shards_.push_back(
        std::make_unique<BoundedQueue<Request>>(cfg_.queue_capacity));
    Replica::Options opts;
    opts.id = i;
    opts.max_batch = cfg_.max_batch;
    opts.initial_service_est_ms = cfg_.initial_service_est_ms;
    opts.quarantine_after = cfg_.quarantine_after;
    opts.backoff_initial_ms = cfg_.backoff_initial_ms;
    opts.backoff_max_ms = cfg_.backoff_max_ms;
    replicas_.push_back(std::make_unique<Replica>(
        opts, std::move(backends[i]), metrics_));
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->set_redispatch(
        [this, i](Request& req) { return redispatch(i, req); });
    replicas_[i]->start(*shards_[i]);
  }
}

Gateway::~Gateway() { stop(); }

void Gateway::stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  for (auto& shard : shards_) shard->close();
  for (auto& replica : replicas_) replica->join();
}

double Gateway::predicted_completion_ms(std::size_t shard) const {
  const auto& replica = *replicas_.at(shard);
  const double est = replica.service_est_ms();
  // RFC 6298-style conservative estimate: mean + 4x mean deviation, so
  // admission is gated on a high service quantile. Admitting against the
  // mean would let ~half the borderline frames finish late — exactly the
  // frames admission control exists to refuse.
  return static_cast<double>(shards_[shard]->size()) * est +
         replica.busy_residual_ms() + est + 4.0 * replica.service_var_ms();
}

std::size_t Gateway::pick_shard(std::uint64_t stream) const {
  // A quarantined replica is in restart backoff: frames routed to it would
  // sit until it wakes, so healthy shards win even under kByStream (stream
  // pinning is a latency optimization, not a correctness property — the
  // pinned shard resumes on recovery). With every replica quarantined the
  // normal policy applies; queues still drain after restart.
  const auto healthy = [&](std::size_t i) {
    return replicas_[i]->health() == ReplicaHealth::kHealthy;
  };
  if (cfg_.sharding == ShardPolicy::kByStream || shards_.size() == 1) {
    const auto pinned = static_cast<std::size_t>(stream % shards_.size());
    if (healthy(pinned) || shards_.size() == 1) return pinned;
  }
  std::size_t best = 0;
  double best_ms = std::numeric_limits<double>::infinity();
  bool best_healthy = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const double ms = predicted_completion_ms(i);
    const bool h = healthy(i);
    // Any healthy shard beats any quarantined one; ties break on backlog.
    if ((h && !best_healthy) || (h == best_healthy && ms < best_ms)) {
      best_ms = ms;
      best = i;
      best_healthy = h;
    }
  }
  return best;
}

bool Gateway::redispatch(std::size_t from, Request& req) {
  if (req.redispatches > cfg_.max_redispatch) return false;
  // Cheapest healthy peer first; try_push only moves the request out on
  // success, so walking the candidates cannot lose it.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == from) continue;
    if (replicas_[i]->health() != ReplicaHealth::kHealthy) continue;
    order.emplace_back(predicted_completion_ms(i), i);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [ms, shard] : order) {
    if (shards_[shard]->try_push(req)) return true;
  }
  return false;
}

Ticket Gateway::submit(Tensor frame, std::uint64_t stream) {
  return submit(std::move(frame), stream, cfg_.deadline_ms);
}

Ticket Gateway::submit(Tensor frame, std::uint64_t stream, double deadline_ms) {
  metrics_.record_arrival();
  Ticket ticket;
  if (stopped_.load(std::memory_order_relaxed)) {
    ticket.reason = RejectReason::kShutdown;
    metrics_.record_shed_shutdown();
    return ticket;
  }

  const auto now = Clock::now();
  const std::size_t shard = pick_shard(stream);
  const bool has_deadline = deadline_ms > 0.0;

  // Work-conservation floor: an empty shard with an idle replica never
  // sheds. Shedding exists to protect *other* frames from queueing delay
  // and the node from wasted work; with nothing queued and nothing running
  // there is nobody to protect, and serving the frame keeps the EWMA
  // service estimate fresh — otherwise a transiently inflated estimate
  // (one slow batch on a noisy host) could exceed the whole budget and
  // latch the gateway shut with no new observations to correct it.
  const bool idle =
      shards_[shard]->size() == 0 && !replicas_[shard]->busy();
  if (cfg_.admission_control && has_deadline && !idle &&
      predicted_completion_ms(shard) > cfg_.admission_margin * deadline_ms) {
    ticket.reason = RejectReason::kPredictedLate;
    metrics_.record_shed_predicted_late();
    return ticket;
  }

  Request req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.stream = stream;
  req.frame = std::move(frame);
  req.arrival = now;
  req.deadline = has_deadline
                     ? now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadline_ms))
                     : Clock::time_point::max();
  ticket.response = req.promise.get_future();
  if (!shards_[shard]->try_push(req)) {
    // Full or closed under us; either way the frame was never enqueued.
    ticket.response = {};
    if (shards_[shard]->closed()) {
      ticket.reason = RejectReason::kShutdown;
      metrics_.record_shed_shutdown();
    } else {
      ticket.reason = RejectReason::kQueueFull;
      metrics_.record_shed_queue_full();
    }
    return ticket;
  }
  ticket.admitted = true;
  metrics_.record_admitted();
  return ticket;
}

}  // namespace reads::serve
