#include "serve/gateway.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace reads::serve {

namespace {

/// Deterministic mirror selection: a pure function of the request id, so a
/// replayed stream mirrors exactly the same frames regardless of timing.
bool mirror_selected(std::uint64_t id, double fraction) noexcept {
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  util::SplitMix64 sm(id);
  return static_cast<double>(sm.next()) <
         fraction * 18446744073709551616.0;  // 2^64
}

/// Default shadow verdict: elementwise agreement with the incumbent within
/// a loose band (quantization-level differences pass; a wrong model fails).
bool default_judge(const Tensor& primary, const Tensor& shadow) {
  if (primary.numel() != shadow.numel()) return false;
  for (std::size_t i = 0; i < primary.numel(); ++i) {
    if (std::abs(primary[i] - shadow[i]) > 0.25) return false;
  }
  return true;
}

}  // namespace

/// One mirrored frame awaiting a shadow verdict.
struct ShadowItem {
  std::uint64_t id = 0;
  std::uint64_t stream = 0;
  Tensor frame;
  Tensor primary;
};

struct Gateway::ShadowSession {
  explicit ShadowSession(ShadowConfig c) : cfg(c), queue(c.queue_capacity) {}

  ShadowConfig cfg;
  BackendFactory factory;
  ShadowJudge judge;
  std::unique_ptr<Backend> candidate;
  std::uint64_t candidate_epoch = 0;
  BoundedQueue<ShadowItem> queue;
  std::thread worker;
  /// Mirroring + judging continue only while true; flips on promote,
  /// rollback, or end_shadow().
  std::atomic<bool> active{true};
  std::atomic<ShadowOutcome> outcome{ShadowOutcome::kActive};
  std::atomic<std::uint64_t> mirrored{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> judged{0};
  std::atomic<std::uint64_t> rejects{0};
  std::atomic<std::uint64_t> windows{0};
  std::atomic<std::uint64_t> clean_windows{0};
  /// Shadow-worker private: verdicts within the current window.
  std::size_t window_judged = 0;
  std::size_t window_rejects = 0;

  ShadowStatus status() const {
    ShadowStatus s;
    s.active = active.load(std::memory_order_relaxed);
    s.outcome = outcome.load(std::memory_order_relaxed);
    s.candidate_epoch = candidate_epoch;
    s.mirrored = mirrored.load(std::memory_order_relaxed);
    s.dropped = dropped.load(std::memory_order_relaxed);
    s.judged = judged.load(std::memory_order_relaxed);
    s.rejects = rejects.load(std::memory_order_relaxed);
    s.windows = windows.load(std::memory_order_relaxed);
    s.clean_windows = clean_windows.load(std::memory_order_relaxed);
    return s;
  }
};

std::string_view to_string(ShadowOutcome outcome) noexcept {
  switch (outcome) {
    case ShadowOutcome::kNone: return "none";
    case ShadowOutcome::kActive: return "active";
    case ShadowOutcome::kPromoted: return "promoted";
    case ShadowOutcome::kRolledBack: return "rolled_back";
    case ShadowOutcome::kEnded: return "ended";
  }
  return "?";
}

std::string_view to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kPredictedLate: return "predicted_late";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

Gateway::Gateway(std::vector<std::unique_ptr<Backend>> backends,
                 GatewayConfig cfg)
    : cfg_(cfg), metrics_(backends.size(), std::max(cfg.deadline_ms, 1.0)) {
  if (backends.empty()) {
    throw std::invalid_argument("Gateway: need at least one backend");
  }
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("Gateway: max_batch must be positive");
  }
  shards_.reserve(backends.size());
  replicas_.reserve(backends.size());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    shards_.push_back(
        std::make_unique<BoundedQueue<Request>>(cfg_.queue_capacity));
    Replica::Options opts;
    opts.id = i;
    opts.max_batch = cfg_.max_batch;
    opts.initial_service_est_ms = cfg_.initial_service_est_ms;
    opts.quarantine_after = cfg_.quarantine_after;
    opts.backoff_initial_ms = cfg_.backoff_initial_ms;
    opts.backoff_max_ms = cfg_.backoff_max_ms;
    replicas_.push_back(std::make_unique<Replica>(
        opts, std::move(backends[i]), metrics_));
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->set_redispatch(
        [this, i](Request& req) { return redispatch(i, req); });
    replicas_[i]->set_shadow_tap(
        [this](std::uint64_t id, std::uint64_t stream, const Tensor& frame,
               const Tensor& output) { on_mirror(id, stream, frame, output); });
    replicas_[i]->start(*shards_[i]);
  }
}

Gateway::~Gateway() { stop(); }

void Gateway::stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  end_shadow();
  for (auto& shard : shards_) shard->close();
  for (auto& replica : replicas_) replica->join();
}

void Gateway::swap_all(const BackendFactory& factory, std::uint64_t epoch) {
  if (!factory) {
    throw std::invalid_argument("Gateway::swap_all: null backend factory");
  }
  // Build every fresh backend before staging any: a factory that throws on
  // the k-th call must not leave a mixed-generation fleet behind, so the
  // exception propagates with the incumbent generation fully intact.
  std::vector<std::unique_ptr<Backend>> fresh;
  fresh.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) fresh.push_back(factory());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->swap_model(std::move(fresh[i]), epoch);
  }
  model_epoch_.store(epoch, std::memory_order_relaxed);
}

std::shared_ptr<Gateway::ShadowSession> Gateway::shadow_session() const {
  std::lock_guard lock(shadow_mutex_);
  return shadow_;
}

bool Gateway::begin_shadow(BackendFactory factory, ShadowConfig cfg,
                           ShadowJudge judge) {
  if (!factory) {
    throw std::invalid_argument("Gateway::begin_shadow: null backend factory");
  }
  if (cfg.fraction <= 0.0 || cfg.window == 0 || cfg.queue_capacity == 0) {
    throw std::invalid_argument(
        "Gateway::begin_shadow: fraction, window, and queue_capacity must "
        "be positive");
  }
  if (stopped_.load(std::memory_order_relaxed)) return false;
  std::unique_lock lock(shadow_mutex_);
  if (shadow_ && shadow_->active.load(std::memory_order_relaxed)) {
    return false;
  }
  if (shadow_) {
    // A terminal session (promoted / rolled back) whose worker was never
    // reaped: finish it outside the lock before starting anew.
    lock.unlock();
    end_shadow();
    lock.lock();
    if (shadow_) return false;  // someone else began a session meanwhile
  }
  auto session = std::make_shared<ShadowSession>(cfg);
  session->candidate = factory();  // may throw; nothing published yet
  session->factory = std::move(factory);
  session->judge = judge ? std::move(judge)
                         : [](std::uint64_t, const Tensor&,
                              const Tensor& primary, const Tensor& shadow) {
                             return default_judge(primary, shadow);
                           };
  session->candidate_epoch = model_epoch_.load(std::memory_order_relaxed) + 1;
  session->worker = std::thread([this, session] { shadow_run(session); });
  shadow_ = session;
  return true;
}

ShadowStatus Gateway::end_shadow() {
  std::shared_ptr<ShadowSession> session;
  {
    std::lock_guard lock(shadow_mutex_);
    session = std::move(shadow_);
    shadow_.reset();
  }
  if (!session) {
    std::lock_guard lock(shadow_mutex_);
    return last_shadow_status_;
  }
  session->active.store(false, std::memory_order_relaxed);
  session->queue.close();
  if (session->worker.joinable()) session->worker.join();
  ShadowOutcome expected = ShadowOutcome::kActive;
  session->outcome.compare_exchange_strong(expected, ShadowOutcome::kEnded,
                                           std::memory_order_relaxed);
  auto status = session->status();
  status.active = false;
  {
    std::lock_guard lock(shadow_mutex_);
    last_shadow_status_ = status;
  }
  return status;
}

ShadowStatus Gateway::shadow_status() const {
  std::lock_guard lock(shadow_mutex_);
  if (shadow_) return shadow_->status();
  return last_shadow_status_;
}

void Gateway::on_mirror(std::uint64_t id, std::uint64_t stream,
                        const Tensor& frame, const Tensor& primary) {
  auto session = shadow_session();
  if (!session || !session->active.load(std::memory_order_relaxed)) return;
  ShadowItem item;
  item.id = id;
  item.stream = stream;
  item.frame = frame;
  item.primary = primary;
  if (session->queue.try_push(item)) {
    session->mirrored.fetch_add(1, std::memory_order_relaxed);
  } else {
    session->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void Gateway::shadow_run(std::shared_ptr<ShadowSession> session) {
  auto& s = *session;
  while (auto item = s.queue.pop()) {
    if (!s.active.load(std::memory_order_relaxed)) continue;  // drain only
    bool ok = false;
    try {
      const Tensor shadow_out = s.candidate->infer(item->frame);
      ok = s.judge(item->stream, item->frame, item->primary, shadow_out);
    } catch (...) {
      ok = false;  // a faulting candidate is a rejecting candidate
    }
    s.judged.fetch_add(1, std::memory_order_relaxed);
    ++s.window_judged;
    if (!ok) {
      s.rejects.fetch_add(1, std::memory_order_relaxed);
      ++s.window_rejects;
    }
    if (s.window_judged < s.cfg.window) continue;

    s.windows.fetch_add(1, std::memory_order_relaxed);
    if (s.window_rejects > s.cfg.max_rejects) {
      // Regression: discard the candidate. Live traffic only ever saw the
      // incumbent, so the fleet is already "rolled back" — bit-identically.
      s.clean_windows.store(0, std::memory_order_relaxed);
      s.outcome.store(ShadowOutcome::kRolledBack, std::memory_order_relaxed);
      s.active.store(false, std::memory_order_relaxed);
    } else {
      const auto clean =
          s.clean_windows.fetch_add(1, std::memory_order_relaxed) + 1;
      if (clean >= s.cfg.promote_after) {
        // This runs on the shadow worker thread: an escaping exception would
        // reach the thread entry point and std::terminate the process. A
        // user-supplied factory that throws at promotion therefore demotes
        // the candidate instead — swap_all builds every backend before
        // staging any, so the fleet still serves the incumbent generation.
        try {
          swap_all(s.factory, s.candidate_epoch);
          s.outcome.store(ShadowOutcome::kPromoted, std::memory_order_relaxed);
        } catch (...) {
          s.clean_windows.store(0, std::memory_order_relaxed);
          s.outcome.store(ShadowOutcome::kRolledBack,
                          std::memory_order_relaxed);
        }
        s.active.store(false, std::memory_order_relaxed);
      }
    }
    s.window_judged = 0;
    s.window_rejects = 0;
  }
}

double Gateway::predicted_completion_ms(std::size_t shard) const {
  const auto& replica = *replicas_.at(shard);
  const double est = replica.service_est_ms();
  // RFC 6298-style conservative estimate: mean + 4x mean deviation, so
  // admission is gated on a high service quantile. Admitting against the
  // mean would let ~half the borderline frames finish late — exactly the
  // frames admission control exists to refuse.
  return static_cast<double>(shards_[shard]->size()) * est +
         replica.busy_residual_ms() + est + 4.0 * replica.service_var_ms();
}

std::size_t Gateway::pick_shard(std::uint64_t stream) const {
  // A quarantined replica is in restart backoff: frames routed to it would
  // sit until it wakes, so healthy shards win even under kByStream (stream
  // pinning is a latency optimization, not a correctness property — the
  // pinned shard resumes on recovery). With every replica quarantined the
  // normal policy applies; queues still drain after restart.
  const auto healthy = [&](std::size_t i) {
    return replicas_[i]->health() == ReplicaHealth::kHealthy;
  };
  if (cfg_.sharding == ShardPolicy::kByStream || shards_.size() == 1) {
    const auto pinned = static_cast<std::size_t>(stream % shards_.size());
    if (healthy(pinned) || shards_.size() == 1) return pinned;
  }
  std::size_t best = 0;
  double best_ms = std::numeric_limits<double>::infinity();
  bool best_healthy = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const double ms = predicted_completion_ms(i);
    const bool h = healthy(i);
    // Any healthy shard beats any quarantined one; ties break on backlog.
    if ((h && !best_healthy) || (h == best_healthy && ms < best_ms)) {
      best_ms = ms;
      best = i;
      best_healthy = h;
    }
  }
  return best;
}

bool Gateway::redispatch(std::size_t from, Request& req) {
  if (req.redispatches > cfg_.max_redispatch) return false;
  // Cheapest healthy peer first; try_push only moves the request out on
  // success, so walking the candidates cannot lose it.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == from) continue;
    if (replicas_[i]->health() != ReplicaHealth::kHealthy) continue;
    order.emplace_back(predicted_completion_ms(i), i);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [ms, shard] : order) {
    if (shards_[shard]->try_push(req)) return true;
  }
  return false;
}

Ticket Gateway::submit(Tensor frame, std::uint64_t stream) {
  return submit(std::move(frame), stream, cfg_.deadline_ms);
}

Ticket Gateway::submit(Tensor frame, std::uint64_t stream, double deadline_ms) {
  metrics_.record_arrival();
  Ticket ticket;
  if (stopped_.load(std::memory_order_relaxed)) {
    ticket.reason = RejectReason::kShutdown;
    metrics_.record_shed_shutdown();
    return ticket;
  }

  const auto now = Clock::now();
  const std::size_t shard = pick_shard(stream);
  const bool has_deadline = deadline_ms > 0.0;

  // Work-conservation floor: an empty shard with an idle replica never
  // sheds. Shedding exists to protect *other* frames from queueing delay
  // and the node from wasted work; with nothing queued and nothing running
  // there is nobody to protect, and serving the frame keeps the EWMA
  // service estimate fresh — otherwise a transiently inflated estimate
  // (one slow batch on a noisy host) could exceed the whole budget and
  // latch the gateway shut with no new observations to correct it.
  const bool idle =
      shards_[shard]->size() == 0 && !replicas_[shard]->busy();
  if (cfg_.admission_control && has_deadline && !idle &&
      predicted_completion_ms(shard) > cfg_.admission_margin * deadline_ms) {
    ticket.reason = RejectReason::kPredictedLate;
    metrics_.record_shed_predicted_late();
    return ticket;
  }

  Request req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (auto session = shadow_session();
      session && session->active.load(std::memory_order_relaxed)) {
    req.mirror = mirror_selected(req.id, session->cfg.fraction);
  }
  req.stream = stream;
  req.frame = std::move(frame);
  req.arrival = now;
  req.deadline = has_deadline
                     ? now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadline_ms))
                     : Clock::time_point::max();
  req.promise.emplace();
  ticket.response = req.promise->get_future();
  if (!shards_[shard]->try_push(req)) {
    // Full or closed under us; either way the frame was never enqueued.
    ticket.response = {};
    if (shards_[shard]->closed()) {
      ticket.reason = RejectReason::kShutdown;
      metrics_.record_shed_shutdown();
    } else {
      ticket.reason = RejectReason::kQueueFull;
      metrics_.record_shed_queue_full();
    }
    return ticket;
  }
  ticket.admitted = true;
  metrics_.record_admitted();
  return ticket;
}

RejectReason Gateway::submit_into(Tensor& frame, ResponseSlot& slot,
                                  std::uint64_t stream, double deadline_ms) {
  metrics_.record_arrival();
  if (stopped_.load(std::memory_order_relaxed)) {
    metrics_.record_shed_shutdown();
    return RejectReason::kShutdown;
  }

  const auto now = Clock::now();
  const std::size_t shard = pick_shard(stream);
  const bool has_deadline = deadline_ms > 0.0;
  const bool idle =
      shards_[shard]->size() == 0 && !replicas_[shard]->busy();
  if (cfg_.admission_control && has_deadline && !idle &&
      predicted_completion_ms(shard) > cfg_.admission_margin * deadline_ms) {
    metrics_.record_shed_predicted_late();
    return RejectReason::kPredictedLate;
  }

  slot.reset();
  Request req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (auto session = shadow_session();
      session && session->active.load(std::memory_order_relaxed)) {
    req.mirror = mirror_selected(req.id, session->cfg.fraction);
  }
  req.stream = stream;
  req.frame = std::move(frame);
  req.arrival = now;
  req.deadline = has_deadline
                     ? now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadline_ms))
                     : Clock::time_point::max();
  req.slot = &slot;
  if (!shards_[shard]->try_push(req)) {
    // Full or closed under us; the frame stays with the caller.
    frame = std::move(req.frame);
    if (shards_[shard]->closed()) {
      metrics_.record_shed_shutdown();
      return RejectReason::kShutdown;
    }
    metrics_.record_shed_queue_full();
    return RejectReason::kQueueFull;
  }
  metrics_.record_admitted();
  return RejectReason::kNone;
}

}  // namespace reads::serve
