// RFC-6298-style service-time / round-trip estimator.
//
// One EWMA for the mean and one for the mean absolute deviation, exactly
// the SRTT/RTTVAR shape of RFC 6298 with the gateway's historical gains
// (alpha 0.2, beta 0.25). Extracted from Replica so the cluster router can
// run the same admission mathematics per replica *endpoint* (round-trip
// time over a socket) that the in-process gateway runs per replica thread
// (service time per frame) — predicted completion everywhere is
//   backlog x mean + mean + 4 x deviation,
// i.e. admission is gated on a high quantile, not the mean.
//
// Fields are atomics with relaxed ordering: writers are single (the replica
// worker / the router event loop) and readers only need a recent value, not
// a synchronized pair.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>

namespace reads::serve {

class ServiceEstimator {
 public:
  /// Historical gateway gains; RFC 6298 itself uses 1/8 and 1/4.
  static constexpr double kEwmaAlpha = 0.2;
  static constexpr double kVarBeta = 0.25;
  /// Initial deviation as a fraction of the seed estimate; shrinks as real
  /// observations arrive.
  static constexpr double kInitialVarFrac = 0.25;

  explicit ServiceEstimator(double initial_ms = 1.0) noexcept
      : est_ms_(std::max(1e-6, initial_ms)),
        var_ms_(kInitialVarFrac * std::max(1e-6, initial_ms)) {}

  ServiceEstimator(const ServiceEstimator& other) noexcept
      : est_ms_(other.est_ms()), var_ms_(other.var_ms()) {}
  ServiceEstimator& operator=(const ServiceEstimator& other) noexcept {
    est_ms_.store(other.est_ms(), std::memory_order_relaxed);
    var_ms_.store(other.var_ms(), std::memory_order_relaxed);
    return *this;
  }

  /// Fold one observation (ms) into the mean and deviation EWMAs. The
  /// deviation is measured against the *pre-update* mean, as in RFC 6298.
  void observe(double observed_ms) noexcept {
    const double est = est_ms_.load(std::memory_order_relaxed);
    est_ms_.store(
        std::max(1e-6, (1.0 - kEwmaAlpha) * est + kEwmaAlpha * observed_ms),
        std::memory_order_relaxed);
    const double var = var_ms_.load(std::memory_order_relaxed);
    var_ms_.store(
        (1.0 - kVarBeta) * var + kVarBeta * std::abs(observed_ms - est),
        std::memory_order_relaxed);
  }

  double est_ms() const noexcept {
    return est_ms_.load(std::memory_order_relaxed);
  }
  double var_ms() const noexcept {
    return var_ms_.load(std::memory_order_relaxed);
  }

  /// Predicted ms until a newly arriving item completes behind `backlog`
  /// queued items: backlog x mean + own mean + 4 x deviation.
  double predicted_ms(std::size_t backlog) const noexcept {
    const double est = est_ms();
    return static_cast<double>(backlog) * est + est + 4.0 * var_ms();
  }

 private:
  std::atomic<double> est_ms_;
  std::atomic<double> var_ms_;
};

}  // namespace reads::serve
