// Replica: one worker thread draining one shard queue into a Backend.
//
// Micro-batching is opportunistic and deadline-aware: after the blocking
// pop of the first request the replica greedily try_pop()s more — a frame
// that is already queued always completes no later by joining the current
// batch than by waiting for the next one — but only while the grown batch's
// predicted completion still meets the deadline of every frame already in
// it. Under light load batches stay at 1 (lowest latency); when the queue
// is deep and deadlines are loose, batches grow toward max_batch and the
// backend's batch entry point amortizes dispatch.
//
// The replica publishes two values the gateway's admission control reads
// lock-free: an EWMA per-frame service-time estimate and the predicted
// completion time of the in-flight batch (busy_residual_ms).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace reads::serve {

class Replica {
 public:
  struct Options {
    std::size_t id = 0;
    std::size_t max_batch = 1;
    /// Seed for the EWMA until real service times are observed.
    double initial_service_est_ms = 2.0;
  };

  Replica(Options options, std::unique_ptr<Backend> backend, Metrics& metrics);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Spawn the worker thread; `shard` must outlive join().
  void start(BoundedQueue<Request>& shard);
  /// Wait for the worker to drain its (closed) shard and exit.
  void join();

  std::size_t id() const noexcept { return opts_.id; }
  Backend& backend() noexcept { return *backend_; }

  /// EWMA per-frame service time (ms), updated after every batch.
  double service_est_ms() const noexcept {
    return service_est_ms_.load(std::memory_order_relaxed);
  }

  /// EWMA of |observed - estimate| (ms), RFC 6298-style: the admission
  /// predictor adds a multiple of this so jittery hosts admit against a
  /// high service quantile, not the mean.
  double service_var_ms() const noexcept {
    return service_var_ms_.load(std::memory_order_relaxed);
  }

  /// True from first frame of a batch until its responses are delivered.
  bool busy() const noexcept {
    return busy_.load(std::memory_order_relaxed);
  }

  /// Predicted ms until the in-flight batch finishes; 0 when idle (or when
  /// the batch has overrun its prediction — check busy() to distinguish).
  double busy_residual_ms() const noexcept;

 private:
  void run(BoundedQueue<Request>& shard);
  void serve_batch(std::vector<Request>& batch);

  Options opts_;
  std::unique_ptr<Backend> backend_;
  Metrics& metrics_;
  std::thread thread_;
  std::atomic<double> service_est_ms_;
  std::atomic<double> service_var_ms_;
  std::atomic<bool> busy_{false};
  /// steady_clock nanoseconds when the current batch should complete;
  /// 0 = idle.
  std::atomic<std::int64_t> busy_until_ns_{0};
};

}  // namespace reads::serve
