// Replica: one worker thread draining one shard queue into a Backend.
//
// Micro-batching is opportunistic and deadline-aware: after the blocking
// pop of the first request the replica greedily try_pop()s more — a frame
// that is already queued always completes no later by joining the current
// batch than by waiting for the next one — but only while the grown batch's
// predicted completion still meets the deadline of every frame already in
// it. Under light load batches stay at 1 (lowest latency); when the queue
// is deep and deadlines are loose, batches grow toward max_batch and the
// backend's batch entry point amortizes dispatch.
//
// The replica publishes two values the gateway's admission control reads
// lock-free: an EWMA per-frame service-time estimate and the predicted
// completion time of the in-flight batch (busy_residual_ms).
//
// Self-healing: a backend fault (an exception from infer/infer_batch — in a
// real deployment a crashed worker process) never loses an admitted frame
// and never kills the worker thread. Faulted requests are redispatched to
// healthy peers through the gateway's hook, or retried locally when no peer
// will take them. After `quarantine_after` consecutive faults the replica
// quarantines itself: it stops accepting work (the gateway routes around
// it), hands its backlog to peers, sleeps an exponentially backed-off
// restart delay, and returns to service with a clean fault streak.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/backend.hpp"
#include "serve/estimator.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace reads::serve {

enum class ReplicaHealth : std::uint8_t {
  kHealthy,
  kQuarantined,  ///< in backoff after a fault streak; routed around
};

class Replica {
 public:
  struct Options {
    std::size_t id = 0;
    std::size_t max_batch = 1;
    /// Seed for the EWMA until real service times are observed.
    double initial_service_est_ms = 2.0;
    /// Consecutive backend faults before the replica quarantines itself.
    std::size_t quarantine_after = 3;
    /// Restart backoff: initial delay, doubling per restart up to the cap.
    /// The cap also bounds how long stop() can wait on a quarantined
    /// replica, so keep it well under a second.
    double backoff_initial_ms = 1.0;
    double backoff_max_ms = 64.0;
  };

  /// Gateway hook: offer a faulted request to another replica. Returns true
  /// if the request was re-enqueued elsewhere (it is moved-from); on false
  /// the request is untouched and stays with the caller for a local retry.
  using Redispatch = std::function<bool(Request&)>;

  Replica(Options options, std::unique_ptr<Backend> backend, Metrics& metrics);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Spawn the worker thread; `shard` must outlive join().
  void start(BoundedQueue<Request>& shard);
  /// Wait for the worker to drain its (closed) shard and exit.
  void join();

  /// Install the gateway's peer-redispatch hook. Must be called before
  /// start(); the worker thread reads it without synchronization.
  void set_redispatch(Redispatch redispatch) {
    redispatch_ = std::move(redispatch);
  }

  /// Shadow-mirror hook: invoked on the worker thread for every served
  /// request whose mirror flag is set, with the request's id/stream, the
  /// input frame, and the primary output. Must be called before start();
  /// must be cheap (the gateway copies into a bounded queue and returns).
  using ShadowTap = std::function<void(std::uint64_t id, std::uint64_t stream,
                                       const Tensor& frame,
                                       const Tensor& output)>;
  void set_shadow_tap(ShadowTap tap) { shadow_tap_ = std::move(tap); }

  /// Stage a replacement backend for zero-downtime hot-swap. The worker
  /// applies it at the next batch boundary — never mid-batch, so every
  /// response is entirely one model generation and is stamped with the
  /// epoch that actually served it. Any frame submitted after swap_model()
  /// returns is guaranteed to be served by the new backend. A second stage
  /// before the first applies simply replaces it (last writer wins).
  /// Thread-safe; callable while the worker is running.
  void swap_model(std::unique_ptr<Backend> backend, std::uint64_t epoch);

  /// Model generation currently serving (1 = the constructor backend).
  std::uint64_t model_epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  std::size_t id() const noexcept { return opts_.id; }
  Backend& backend() noexcept { return *backend_; }

  ReplicaHealth health() const noexcept {
    return health_.load(std::memory_order_relaxed);
  }
  std::uint64_t backend_faults() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }

  /// EWMA per-frame service time (ms), updated after every batch.
  double service_est_ms() const noexcept { return estimator_.est_ms(); }

  /// EWMA of |observed - estimate| (ms), RFC 6298-style: the admission
  /// predictor adds a multiple of this so jittery hosts admit against a
  /// high service quantile, not the mean.
  double service_var_ms() const noexcept { return estimator_.var_ms(); }

  /// The underlying estimator (shared shape with the cluster router's
  /// per-endpoint round-trip estimators; see serve/estimator.hpp).
  const ServiceEstimator& estimator() const noexcept { return estimator_; }

  /// True from first frame of a batch until its responses are delivered.
  bool busy() const noexcept {
    return busy_.load(std::memory_order_relaxed);
  }

  /// Predicted ms until the in-flight batch finishes; 0 when idle (or when
  /// the batch has overrun its prediction — check busy() to distinguish).
  double busy_residual_ms() const noexcept;

 private:
  void run(BoundedQueue<Request>& shard);
  /// Worker-thread batch boundary: install a staged backend swap, if any.
  void maybe_apply_swap();
  /// Serve one batch; false when the backend faulted (batch is intact —
  /// frames restored — and no promise was touched).
  bool serve_batch(std::vector<Request>& batch);
  /// Fault recovery: redispatch the batch to peers (refusals go to carry_),
  /// and quarantine + backoff + restart once the streak is long enough.
  void handle_fault(std::vector<Request>& batch, BoundedQueue<Request>& shard);

  Options opts_;
  std::unique_ptr<Backend> backend_;
  Metrics& metrics_;
  Redispatch redispatch_;
  ShadowTap shadow_tap_;
  /// Staged hot-swap, guarded by swap_mutex_; the flag lets the worker
  /// skip the lock on the (overwhelmingly common) no-swap batch boundary.
  std::mutex swap_mutex_;
  std::unique_ptr<Backend> pending_backend_;
  std::uint64_t pending_epoch_ = 0;
  std::atomic<bool> swap_staged_{false};
  std::atomic<std::uint64_t> epoch_{1};
  std::thread thread_;
  ServiceEstimator estimator_;
  std::atomic<bool> busy_{false};
  /// steady_clock nanoseconds when the current batch should complete;
  /// 0 = idle.
  std::atomic<std::int64_t> busy_until_ns_{0};
  std::atomic<ReplicaHealth> health_{ReplicaHealth::kHealthy};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> restarts_{0};
  /// Worker-thread private: current fault streak and requests awaiting a
  /// local retry because no peer would take them. Served before any new
  /// work, so an admitted frame can never be stranded behind the queue.
  std::size_t consecutive_faults_ = 0;
  std::vector<Request> carry_;
  /// Worker-thread batch scratch, sized once in the constructor so the
  /// steady-state serve loop performs zero heap allocations: the requests'
  /// input tensors during inference, a persistent pool of reused output
  /// buffers, and the per-frame latency samples handed to Metrics as spans.
  std::vector<Tensor> frames_;
  std::vector<Tensor> outputs_;
  std::vector<double> queue_ms_;
  std::vector<double> e2e_ms_;
};

}  // namespace reads::serve
