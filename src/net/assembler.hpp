// Frame assembly on the central node's HPS: collect the seven hub packets
// of a tick into one 260-value frame, with a hold-off deadline for stragglers
// and per-monitor last-known-value substitution for lost packets (a trip
// decision must go out every 3 ms regardless).
//
// The assembler is the pipeline's trust boundary: packets arrive off a real
// network from crates in a radiation environment, so nothing in them may be
// believed until validated. Every delivery runs a fixed gauntlet — drop,
// deadline, sequence, layout, CRC, duplicate — and failures are *counted*,
// never thrown: an exception here would skip a tick, which is the one thing
// the controller must never do. Monitors whose hub fails the gauntlet fall
// back to their last-known values, and a per-hub staleness age bounds how
// long that substitution stays trustworthy before the frame is flagged
// degraded.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/hub.hpp"
#include "tensor/tensor.hpp"

namespace reads::net {

struct AssemblerParams {
  std::size_t monitors = 260;
  std::size_t hubs = 7;
  /// Packets arriving later than this after the tick count as lost.
  double deadline_us = 400.0;
  /// A hub may be substituted from last-known values for at most this many
  /// consecutive ticks before its monitors count as stale and the frame is
  /// flagged degraded.
  std::size_t max_stale_ticks = 3;
  /// Per-reading plausibility window (decoded units). Readings outside it are
  /// replaced by the monitor's last-known value and counted. The defaults
  /// disable the gate so the fault-free path is untouched; chaos configs
  /// tighten it to catch saturated/zeroed digitizers that pass the CRC.
  double plausible_min = -std::numeric_limits<double>::infinity();
  double plausible_max = std::numeric_limits<double>::infinity();
};

/// Why packets were refused, cumulatively since construction. All rejected
/// packets also leave their hub missing for the tick (last-known fill), so
/// these counters explain `packets_missing` rather than add to it.
struct AssemblerCounters {
  std::uint64_t crc_rejects = 0;        ///< failed integrity check
  std::uint64_t malformed_rejects = 0;  ///< hub_id/span disagree with layout
  std::uint64_t duplicate_rejects = 0;  ///< second delivery from a hub, one tick
  std::uint64_t sequence_rejects = 0;   ///< stale or future sequence number
  std::uint64_t late_packets = 0;       ///< arrived after the hold-off deadline
  std::uint64_t dropped_packets = 0;    ///< never arrived (link drop / outage)
  std::uint64_t implausible_readings = 0;  ///< individual readings substituted

  std::uint64_t total_rejects() const noexcept {
    return crc_rejects + malformed_rejects + duplicate_rejects +
           sequence_rejects + late_packets + dropped_packets;
  }
};

struct AssembledFrame {
  tensor::Tensor raw;            ///< (monitors, 1) raw readings
  std::uint32_t sequence = 0;
  double assembly_us = 0.0;      ///< last accepted packet arrival (or deadline)
  std::size_t packets_used = 0;
  std::size_t packets_missing = 0;
  std::size_t packets_rejected = 0;  ///< this tick's refusals (subset of missing causes)
  std::size_t stale_hubs = 0;        ///< hubs older than max_stale_ticks
  std::size_t max_staleness_ticks = 0;  ///< worst hub age this tick
  bool degraded = false;             ///< any hub beyond the staleness bound
  bool complete() const noexcept { return packets_missing == 0; }
};

class FrameAssembler {
 public:
  explicit FrameAssembler(AssemblerParams params = {});

  const AssemblerParams& params() const noexcept { return params_; }

  /// Assemble one tick from the hub deliveries. Deliveries whose arrival is
  /// beyond the deadline, that were dropped, or that fail validation fall
  /// back to the previous frame's values for their monitors (zero on the
  /// very first frame). Never throws on packet content — malformed input is
  /// counted and substituted, because a decision must go out regardless.
  AssembledFrame assemble(std::uint32_t sequence,
                          const std::vector<Delivery>& deliveries);

  /// Allocation-free variant: assembles the tick into `out`, reusing
  /// out.raw's storage when it already has the (monitors, 1) shape (the
  /// Tensor resize is a no-op on an equal shape). All other fields of `out`
  /// are reset. After the first call with a given output the steady state
  /// performs zero heap allocations — the per-hub accept flags live in a
  /// member scratch buffer sized at construction.
  void assemble_into(std::uint32_t sequence,
                     const std::vector<Delivery>& deliveries,
                     AssembledFrame& out);

  std::uint64_t frames_assembled() const noexcept { return frames_; }
  std::uint64_t packets_lost() const noexcept { return lost_; }
  const AssemblerCounters& counters() const noexcept { return counters_; }

  /// Ticks since hub `h` last delivered a valid packet (0 = delivered this
  /// tick; first-ever tick counts from construction).
  std::size_t hub_age(std::size_t h) const { return hub_age_.at(h); }

 private:
  AssemblerParams params_;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> layout_;
  std::vector<double> last_known_;
  std::vector<std::size_t> hub_age_;
  /// Per-hub "accepted this tick" scratch (char, not vector<bool>, so the
  /// clear is a cheap memset and no proxy-reference machinery runs per
  /// packet). Sized once at construction, reused every tick.
  std::vector<char> accepted_;
  std::uint64_t frames_ = 0;
  std::uint64_t lost_ = 0;
  AssemblerCounters counters_;
};

}  // namespace reads::net
