// Frame assembly on the central node's HPS: collect the seven hub packets
// of a tick into one 260-value frame, with a hold-off deadline for stragglers
// and per-monitor last-known-value substitution for lost packets (a trip
// decision must go out every 3 ms regardless).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/hub.hpp"
#include "tensor/tensor.hpp"

namespace reads::net {

struct AssemblerParams {
  std::size_t monitors = 260;
  std::size_t hubs = 7;
  /// Packets arriving later than this after the tick count as lost.
  double deadline_us = 400.0;
};

struct AssembledFrame {
  tensor::Tensor raw;            ///< (monitors, 1) raw readings
  std::uint32_t sequence = 0;
  double assembly_us = 0.0;      ///< last accepted packet arrival (or deadline)
  std::size_t packets_used = 0;
  std::size_t packets_missing = 0;
  bool complete() const noexcept { return packets_missing == 0; }
};

class FrameAssembler {
 public:
  explicit FrameAssembler(AssemblerParams params = {});

  const AssemblerParams& params() const noexcept { return params_; }

  /// Assemble one tick from the hub deliveries. Deliveries whose arrival is
  /// beyond the deadline, or that were dropped, fall back to the previous
  /// frame's values for their monitors (zero on the very first frame).
  AssembledFrame assemble(std::uint32_t sequence,
                          const std::vector<Delivery>& deliveries);

  std::uint64_t frames_assembled() const noexcept { return frames_; }
  std::uint64_t packets_lost() const noexcept { return lost_; }

 private:
  AssemblerParams params_;
  std::vector<double> last_known_;
  std::uint64_t frames_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace reads::net
