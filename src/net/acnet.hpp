// ACNET-facing status publishing (step 9 of Fig. 2): the central node sends
// the per-frame mitigation verdict back to the facility control system.
// Modelled as a bounded status journal plus an uplink latency estimate, with
// trip-rate accounting a machine-protection reviewer would ask about.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

namespace reads::net {

struct StatusMessage {
  std::uint32_t sequence = 0;
  std::string verdict;       ///< "MI", "RR", or "none"
  double mi_score = 0.0;
  double rr_score = 0.0;
  double publish_latency_us = 0.0;
};

struct AcnetParams {
  double uplink_latency_us = 45.0;  ///< to the ACNET front-end
  std::size_t journal_depth = 4096;
};

class AcnetPublisher {
 public:
  explicit AcnetPublisher(AcnetParams params = {});

  /// Publish a verdict; returns the message as journaled.
  const StatusMessage& publish(std::uint32_t sequence,
                               const std::string& verdict, double mi_score,
                               double rr_score);

  const std::deque<StatusMessage>& journal() const noexcept { return journal_; }
  std::uint64_t published() const noexcept { return published_; }
  std::uint64_t trips_mi() const noexcept { return trips_mi_; }
  std::uint64_t trips_rr() const noexcept { return trips_rr_; }

 private:
  AcnetParams params_;
  std::deque<StatusMessage> journal_;
  std::uint64_t published_ = 0;
  std::uint64_t trips_mi_ = 0;
  std::uint64_t trips_rr_ = 0;
};

}  // namespace reads::net
